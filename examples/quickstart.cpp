// Quickstart: the MittOS principle in ~80 lines.
//
// Build one simulated machine (disk + CFQ + MittCFQ predictor), make the
// disk busy, then issue the paper's signature call:
//
//     read(..., deadline)  ->  data, or an *instant* EBUSY.
//
// Along the way the obs tracer records every layer the reads cross and the
// run ends by exporting a Chrome trace (quickstart_trace.json — load it in
// chrome://tracing or ui.perfetto.dev).
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/os/os.h"
#include "src/sim/simulator.h"

int main() {
  using namespace mitt;

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  sim::Simulator sim;
  sim.set_tracer(&tracer);
  sim.set_metrics(&metrics);

  // A machine with a 1TB disk under the CFQ scheduler, MittOS enabled.
  os::OsOptions options;
  options.backend = os::BackendKind::kDiskCfq;
  options.mitt_enabled = true;  // Boot-time device profiling happens here.
  os::Os machine(&sim, options);

  const uint64_t db_file = machine.CreateFile(8LL << 30);
  const uint64_t tenant_file = machine.CreateFile(100LL << 30);

  // 1. A read on an idle disk meets a 20ms SLO easily.
  os::Os::ReadArgs read;
  read.file = db_file;
  read.offset = 1 << 20;
  read.size = 4096;
  read.deadline = Millis(20);
  read.bypass_cache = true;
  read.trace = {tracer.NewRequestId(), /*node=*/-1};

  machine.Read(read, [&](Status status) {
    std::printf("[%7.3f ms] idle disk:  read -> %s\n", ToMillis(sim.Now()),
                std::string(status.name()).c_str());
  });
  sim.Run();

  // 2. A noisy neighbor floods the disk with forty 1MB reads...
  for (int i = 0; i < 40; ++i) {
    os::Os::ReadArgs noise;
    noise.file = tenant_file;
    noise.offset = static_cast<int64_t>(i) << 30;
    noise.size = 1 << 20;
    noise.pid = 9001;  // A different tenant.
    noise.bypass_cache = true;
    machine.Read(noise, nullptr);
  }

  // ...and the same SLO-tagged read is now rejected *immediately*: the
  // predictor sees the queue cannot drain within 20ms, so the application
  // can fail over to a replica instead of waiting.
  const TimeNs before = sim.Now();
  read.trace = {tracer.NewRequestId(), /*node=*/-1};
  machine.Read(read, [&](Status status) {
    std::printf("[%7.3f ms] busy disk:  read(deadline=20ms) -> %s after %.1f us\n",
                ToMillis(sim.Now()), std::string(status.name()).c_str(),
                ToMicros(sim.Now() - before));
  });

  // 3. A deadline-less read on the same busy disk just waits (vanilla
  // behaviour is always available).
  os::Os::ReadArgs patient = read;
  patient.deadline = sched::kNoDeadline;
  patient.trace = {tracer.NewRequestId(), /*node=*/-1};
  machine.Read(patient, [&](Status status) {
    std::printf("[%7.3f ms] busy disk:  read(no SLO)        -> %s after %.1f ms\n",
                ToMillis(sim.Now()), std::string(status.name()).c_str(),
                ToMillis(sim.Now() - before));
  });

  sim.Run();
  std::printf("\nThat's MittOS: \"busy is error\" — the OS rejects IOs it cannot serve\n"
              "in time, so millisecond-scale applications never wait to find out.\n");

  // Export what the obs layer saw. With MITT_OBS_DISABLED the recording
  // hooks are compiled out, so there is nothing to export — skip gracefully.
  if (sim.tracer() == nullptr) {
    std::printf("\n(observability compiled out: no trace emitted)\n");
    return 0;
  }
  const std::string json = obs::ChromeTraceJson(tracer.OrderedSpans(), "quickstart");
  if (!obs::ValidateJsonSyntax(json)) {
    std::fprintf(stderr, "exported trace is not valid JSON\n");
    return 1;
  }
  const char* path = "quickstart_trace.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nWrote %zu spans (%lu EBUSY) to %s — open it in chrome://tracing.\n",
                tracer.size(), static_cast<unsigned long>(metrics.CounterTotal("ebusy_total")),
                path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
    return 1;
  }
  return 0;
}
