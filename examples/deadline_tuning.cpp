// Deadline tuning (§8.1): "too many EBUSYs imply that the deadline is too
// strict, but rare EBUSYs and longer tail latencies imply that the deadline
// is too relaxed. The open challenge is to find a sweet spot in between."
//
// This example sweeps the deadline on a noisy cluster and prints the
// trade-off curve: failover rate vs p95/p99 latency — the data an operator
// (or an automated SLO tuner) would look at.
//
// Run:  ./build/examples/deadline_tuning

#include <cstdio>

#include "src/common/table.h"
#include "src/harness/experiment.h"

int main() {
  using namespace mitt;
  using harness::StrategyKind;

  harness::ExperimentOptions opt;
  opt.num_nodes = 9;
  opt.num_clients = 9;
  opt.measure_requests = 2500;
  opt.warmup_requests = 200;
  opt.noise = harness::NoiseKind::kEc2;
  opt.ec2 = harness::CompressedEc2Noise();
  opt.seed = 81;

  std::printf("Deadline sweep on a 9-node cluster with EC2-style noise.\n\n");
  Table table({"deadline", "failover %", "p50 (ms)", "p95 (ms)", "p99 (ms)"});
  for (const DurationNs deadline :
       {Millis(6), Millis(10), Millis(13), Millis(20), Millis(40), Millis(80)}) {
    harness::ExperimentOptions run_opt = opt;
    run_opt.deadline = deadline;
    harness::Experiment experiment(run_opt);
    const auto result = experiment.Run(StrategyKind::kMittos);
    table.AddRow({FormatDuration(deadline),
                  Table::Num(100.0 * static_cast<double>(result.ebusy_failovers) /
                                 static_cast<double>(result.requests),
                             1),
                  Table::Num(ToMillis(result.get_latencies.Percentile(50)), 2),
                  Table::Num(ToMillis(result.get_latencies.Percentile(95)), 2),
                  Table::Num(ToMillis(result.get_latencies.Percentile(99)), 2)});
  }
  table.Print();
  std::printf("\nToo strict: every IO bounces (failover storms, wasted hops).\n"
              "Too relaxed: the tail grows back toward Base. The p95 of the\n"
              "workload's quiet-state latency is the paper's practical sweet spot.\n");
  return 0;
}
