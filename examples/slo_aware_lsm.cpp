// The two-level integration of §5: a LevelDB-like LSM engine whose block
// reads carry deadlines, under a Riak-like replicated coordinator that fails
// over on EBUSY. Shows writes (WAL + memtable + flush + compaction) creating
// the background noise, and SLO-aware reads cutting through it.
//
// Run:  ./build/examples/slo_aware_lsm

#include <cstdio>
#include <functional>
#include <memory>
#include <numeric>
#include <vector>

#include "src/common/latency_recorder.h"
#include "src/kv/ring_coordinator.h"
#include "src/lsm/lsm_node.h"
#include "src/sim/simulator.h"
#include "src/workload/ycsb.h"

int main() {
  using namespace mitt;

  sim::Simulator sim;
  cluster::Network network(&sim, cluster::NetworkParams{}, 3);

  // Three LSM nodes, bulk-loaded with 40k keys in L1.
  std::vector<std::unique_ptr<lsm::LsmNode>> nodes;
  std::vector<uint64_t> keys(40000);
  std::iota(keys.begin(), keys.end(), 0);
  for (int i = 0; i < 3; ++i) {
    lsm::LsmNode::Options opt;
    opt.os.mitt_enabled = true;
    opt.lsm.memtable_flush_bytes = 1 << 20;  // Frequent flushes/compactions.
    opt.lsm.l0_compaction_trigger = 3;
    nodes.push_back(std::make_unique<lsm::LsmNode>(&sim, i, opt));
    nodes.back()->lsm().BulkLoad(keys);
  }

  kv::RingCoordinator::Options copt;
  copt.deadline = Millis(13);
  kv::RingCoordinator ring(&sim, {nodes[0].get(), nodes[1].get(), nodes[2].get()}, &network,
                           copt);

  // A mixed workload: 20% puts keep compaction churning, 80% SLO reads.
  workload::YcsbWorkload::Options wopt;
  wopt.num_keys = keys.size();
  wopt.read_fraction = 0.8;
  workload::YcsbWorkload ycsb(wopt);

  LatencyRecorder read_latencies;
  size_t done = 0;
  size_t issued = 0;
  constexpr size_t kOps = 8000;
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&] {
    if (issued >= kOps) {
      return;
    }
    ++issued;
    const auto op = ycsb.Next();
    if (op.is_read) {
      const TimeNs start = sim.Now();
      ring.Get(op.key, [&, start](Status) {
        read_latencies.Record(sim.Now() - start);
        ++done;
        (*loop)();
      });
    } else {
      ring.Put(op.key, [&](Status) {
        ++done;
        (*loop)();
      });
    }
  };
  for (int c = 0; c < 6; ++c) {
    (*loop)();
  }
  sim.RunUntilPredicate([&] { return done >= kOps; });

  std::printf("SLO-aware LSM + ring replication, %zu ops (80%% reads, 13ms deadline):\n\n",
              kOps);
  std::printf("  read p50 / p95 / p99: %.2f / %.2f / %.2f ms\n",
              ToMillis(read_latencies.Percentile(50)), ToMillis(read_latencies.Percentile(95)),
              ToMillis(read_latencies.Percentile(99)));
  std::printf("  EBUSY replica failovers: %lu\n",
              static_cast<unsigned long>(ring.failovers()));
  for (int i = 0; i < 3; ++i) {
    std::printf("  node %d: %lu flushes, %lu compactions, L0=%zu L1=%zu, EBUSY=%lu\n", i,
                static_cast<unsigned long>(nodes[static_cast<size_t>(i)]->lsm().flushes_done()),
                static_cast<unsigned long>(
                    nodes[static_cast<size_t>(i)]->lsm().compactions_done()),
                nodes[static_cast<size_t>(i)]->lsm().level_size(0),
                nodes[static_cast<size_t>(i)]->lsm().level_size(1),
                static_cast<unsigned long>(nodes[static_cast<size_t>(i)]->ebusy_returned()));
  }
  return 0;
}
