// A replicated NoSQL store on a multi-tenant cluster, the paper's core use
// case (§3.1): 3 MongoDB-like replicas, a noisy neighbor saturating one
// machine's disk in bursts, and two clients — one using the classic
// wait-then-retry timeout, one using MittOS instant failover.
//
// The three strategy runs execute as parallel trials with span tracing on;
// afterwards the MittOS run's trace is broken down per layer (queue wait vs
// device service vs syscall overhead, split by request outcome) and all
// three traces are exported as one Chrome trace_event JSON
// (noisy_neighbor_trace.json) with one process group per strategy.
//
// Run:  ./build/examples/noisy_neighbor_cluster

#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"

int main() {
  using namespace mitt;
  using harness::StrategyKind;

  harness::ExperimentOptions opt;
  opt.num_nodes = 3;
  opt.num_clients = 2;
  opt.measure_requests = 2000;
  opt.warmup_requests = 100;
  opt.pin_primary_node = 0;                       // Every get first hits node 0...
  opt.noise = harness::NoiseKind::kContinuous;    // ...which a tenant keeps busy.
  opt.continuous_intensity = 2;
  opt.deadline = Millis(20);
  opt.app_timeout = Millis(20);
  opt.trace = true;
  opt.seed = 7;

  std::printf("A 3-replica DocStore; node 0 hosts a disk-hungry neighbor.\n");
  std::printf("Every get() is first routed to node 0 and takes ~6ms when quiet.\n\n");

  // One fresh world per strategy, run as parallel trials (merged in trial
  // order: results and traces are bit-identical for any MITT_TRIAL_WORKERS).
  const std::vector<harness::Trial> trials = {
      {opt, StrategyKind::kBase, ""},
      {opt, StrategyKind::kAppTimeout, ""},
      {opt, StrategyKind::kMittos, ""},
  };
  const std::vector<harness::RunResult> results = harness::RunTrialsParallel(trials);
  const harness::RunResult& mitt_run = results.back();

  harness::PrintPercentileTable(results, {50, 90, 95, 99}, /*user_level=*/false);

  std::printf("\nBase   : waits out the contention (no tail tolerance).\n");
  std::printf("AppTO  : retries after a 20ms timeout — pays the wait, then the retry.\n");
  std::printf("MittOS : %lu instant EBUSY failovers; the deadline was never waited out.\n",
              static_cast<unsigned long>(mitt_run.ebusy_failovers));

  if (mitt_run.trace_spans.empty()) {
    std::printf("\n(observability compiled out: no trace emitted)\n");
    return 0;
  }

  // Where did each MittOS request's time go?
  std::printf("\nMittOS run, per-layer latency breakdown:\n");
  obs::PrintLatencyBreakdown(obs::ComputeLatencyBreakdown(mitt_run.trace_spans));

  std::printf("\nMittOS run, OS/scheduler metrics:\n");
  obs::PrintMetricsTable(mitt_run.metrics);

  std::vector<obs::TraceGroup> groups;
  groups.reserve(results.size());
  for (const harness::RunResult& r : results) {
    groups.push_back({r.name, r.trace_spans});
  }
  const std::string json = obs::ChromeTraceJson(groups);
  if (!obs::ValidateJsonSyntax(json)) {
    std::fprintf(stderr, "exported trace is not valid JSON\n");
    return 1;
  }
  const char* path = "noisy_neighbor_trace.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not write %s\n", path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nWrote %s (%zu spans across %zu strategy runs) — open it in\n"
              "chrome://tracing; each strategy shows as its own process group.\n",
              path, mitt_run.trace_spans.size(), results.size());
  return 0;
}
