// A replicated NoSQL store on a multi-tenant cluster, the paper's core use
// case (§3.1): 3 MongoDB-like replicas, a noisy neighbor saturating one
// machine's disk in bursts, and two clients — one using the classic
// wait-then-retry timeout, one using MittOS instant failover.
//
// Run:  ./build/examples/noisy_neighbor_cluster

#include <cstdio>

#include "src/harness/experiment.h"

int main() {
  using namespace mitt;
  using harness::StrategyKind;

  harness::ExperimentOptions opt;
  opt.num_nodes = 3;
  opt.num_clients = 2;
  opt.measure_requests = 2000;
  opt.warmup_requests = 100;
  opt.pin_primary_node = 0;                       // Every get first hits node 0...
  opt.noise = harness::NoiseKind::kContinuous;    // ...which a tenant keeps busy.
  opt.continuous_intensity = 2;
  opt.deadline = Millis(20);
  opt.app_timeout = Millis(20);
  opt.seed = 7;

  std::printf("A 3-replica DocStore; node 0 hosts a disk-hungry neighbor.\n");
  std::printf("Every get() is first routed to node 0 and takes ~6ms when quiet.\n\n");

  harness::Experiment experiment(opt);
  const auto base = experiment.Run(StrategyKind::kBase);
  const auto appto = experiment.Run(StrategyKind::kAppTimeout);
  const auto mitt = experiment.Run(StrategyKind::kMittos);

  harness::PrintPercentileTable({base, appto, mitt}, {50, 90, 95, 99}, /*user_level=*/false);

  std::printf("\nBase   : waits out the contention (no tail tolerance).\n");
  std::printf("AppTO  : retries after a 20ms timeout — pays the wait, then the retry.\n");
  std::printf("MittOS : %lu instant EBUSY failovers; the deadline was never waited out.\n",
              static_cast<unsigned long>(mitt.ebusy_failovers));
  return 0;
}
