// Implementation microbenchmarks (google-benchmark): the wall-clock costs
// the paper puts bounds on —
//   * a MittCFQ deadline check must stay O(1)-ish and well under 5us/IO
//     even with many processes pending (§4.2);
//   * MittSSD's per-IO overhead is ~300ns (§4.3);
//   * AddrCheck costs ~82ns of kernel time (§4.4) — here we measure our
//     page-table probe;
//   * the simulator itself must sustain millions of events/second.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/device/disk_profile.h"
#include "src/device/ssd_profile.h"
#include "src/os/mitt_cfq.h"
#include "src/os/mitt_noop.h"
#include "src/os/mitt_ssd.h"
#include "src/os/page_cache.h"
#include "src/sim/simulator.h"

namespace {

using namespace mitt;

device::DiskProfile MakeDiskProfile() {
  sim::Simulator sim;
  device::DiskModel disk(&sim, device::DiskParams{}, 1);
  return ProfileDisk(&sim, &disk);
}

device::SsdProfile MakeSsdProfile(const device::SsdModel& ssd) {
  sim::Simulator sim;
  device::SsdModel twin(&sim, ssd.params(), 2);
  return ProfileSsd(&sim, &twin);
}

void BM_MittCfqDeadlineCheck(benchmark::State& state) {
  sim::Simulator sim;
  os::MittCfqPredictor predictor(&sim, MakeDiskProfile(), os::PredictorOptions{},
                                 os::MittCfqOptions{});
  // Load the predictor with pending IOs from `procs` processes.
  const int procs = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<sched::IoRequest>> pending;
  for (int p = 0; p < procs; ++p) {
    for (int i = 0; i < 8; ++i) {
      auto req = std::make_unique<sched::IoRequest>();
      req->id = static_cast<uint64_t>(p * 100 + i);
      req->pid = p;
      req->offset = static_cast<int64_t>(p) << 30;
      req->size = 4096;
      predictor.ShouldReject(req.get());
      predictor.OnAccepted(req.get());
      pending.push_back(std::move(req));
    }
  }
  sched::IoRequest probe;
  probe.id = 1'000'000;
  probe.pid = 9999;
  probe.offset = 500LL << 30;
  probe.size = 4096;
  probe.deadline = Millis(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.ShouldReject(&probe));
    probe.ebusy_flagged = false;
  }
}
BENCHMARK(BM_MittCfqDeadlineCheck)->Arg(1)->Arg(16)->Arg(128);

void BM_MittNoopDeadlineCheck(benchmark::State& state) {
  sim::Simulator sim;
  os::MittNoopPredictor predictor(&sim, MakeDiskProfile(), os::PredictorOptions{});
  sched::IoRequest probe;
  probe.id = 1;
  probe.offset = 100LL << 30;
  probe.size = 4096;
  probe.deadline = Millis(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.ShouldReject(&probe));
  }
}
BENCHMARK(BM_MittNoopDeadlineCheck);

void BM_MittSsdDeadlineCheck(benchmark::State& state) {
  sim::Simulator sim;
  device::SsdModel ssd(&sim, device::SsdParams{}, 1);
  os::MittSsdPredictor predictor(&sim, &ssd, MakeSsdProfile(ssd), os::PredictorOptions{},
                                 os::MittSsdOptions{});
  sched::IoRequest probe;
  probe.id = 1;
  probe.offset = 5 * ssd.params().page_size;
  probe.size = ssd.params().page_size;
  probe.deadline = kMillisecond;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.ShouldReject(&probe));
  }
}
BENCHMARK(BM_MittSsdDeadlineCheck);

void BM_AddrCheckProbe(benchmark::State& state) {
  os::PageCache cache(os::PageCacheParams{});
  cache.Insert(/*file=*/1, /*offset=*/0, /*len=*/1 << 20);
  int64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Resident(1, offset, 1024));
    offset = (offset + 4096) % (1 << 20);
  }
}
BENCHMARK(BM_AddrCheckProbe);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.Schedule(i, [&counter] { ++counter; });
    }
    state.ResumeTiming();
    sim.Run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace

BENCHMARK_MAIN();
