// Figure 13 (§7.8.4): MittOS-powered LevelDB + Riak. A 3-node ring of LSM
// nodes bulk-loaded with keys; EC2 disk noise replays on every node. The
// coordinator attaches the deadline to LevelDB's block reads; EBUSY
// propagates up and triggers replica failover.
//   (a) get() latency CDF, MittCFQ (mitt ring) vs Base (vanilla ring);
//   (b) timeline for one node: EBUSY is returned when (and only when) the
//       node is under noise.

#include <cstdio>
#include <functional>
#include <memory>
#include <numeric>
#include <vector>

#include "src/common/latency_recorder.h"
#include "src/common/table.h"
#include "src/kv/ring_coordinator.h"
#include "src/lsm/lsm_node.h"
#include "src/noise/ec2_noise.h"
#include "src/noise/noise_injector.h"
#include "src/sim/simulator.h"
#include "src/workload/ycsb.h"

namespace {

using namespace mitt;

struct RiakRun {
  LatencyRecorder latencies;
  uint64_t failovers = 0;
  // 500ms-bucketed timeline for node 0: (noise active?, EBUSYs returned).
  std::vector<std::pair<bool, uint64_t>> timeline;
};

RiakRun RunRing(bool mitt_enabled, uint64_t seed) {
  sim::Simulator sim;
  cluster::Network network(&sim, cluster::NetworkParams{}, seed);

  std::vector<std::unique_ptr<lsm::LsmNode>> nodes;
  std::vector<std::unique_ptr<noise::IoNoiseInjector>> injectors;
  std::vector<uint64_t> keys(600000);
  std::iota(keys.begin(), keys.end(), 0);

  noise::Ec2NoiseParams noise_params;
  noise_params.mean_off = Millis(2500);
  noise_params.min_on = Millis(100);
  noise_params.max_on = Millis(800);
  const noise::Ec2NoiseModel noise_model(noise_params, seed ^ 0xEC2);

  for (int i = 0; i < 3; ++i) {
    lsm::LsmNode::Options opt;
    opt.os.backend = os::BackendKind::kDiskCfq;
    opt.os.mitt_enabled = mitt_enabled;
    opt.os.cache.capacity_pages = 1 << 17;  // 512 MB cache under a ~2.4 GB dataset.
    opt.os.seed = seed ^ static_cast<uint64_t>(i);
    nodes.push_back(std::make_unique<lsm::LsmNode>(&sim, i, opt));
    nodes.back()->lsm().BulkLoad(keys);
    os::Os& node_os = nodes.back()->os();
    const int64_t noise_size = 150LL << 30;
    const uint64_t noise_file = node_os.CreateFile(noise_size);
    noise::IoNoiseInjector::Options nopt;
    injectors.push_back(std::make_unique<noise::IoNoiseInjector>(
        &sim, &node_os, noise_file, noise_size,
        noise_model.GenerateSchedule(i, Seconds(120)), nopt,
        seed ^ (0xAB0ULL + static_cast<uint64_t>(i))));
    injectors.back()->Start();
  }

  kv::RingCoordinator::Options copt;
  copt.deadline = Millis(13);
  copt.mitt_enabled = mitt_enabled;
  kv::RingCoordinator coordinator(
      &sim, {nodes[0].get(), nodes[1].get(), nodes[2].get()}, &network, copt);

  workload::YcsbWorkload::Options wopt;
  wopt.num_keys = keys.size();
  wopt.seed = seed ^ 0xCAFE;
  workload::YcsbWorkload ycsb(wopt);

  RiakRun run;
  size_t completed = 0;
  size_t issued = 0;
  constexpr size_t kTarget = 6000;
  constexpr int kClients = 4;

  // Timeline sampler: every 500ms, record whether node 0 had a noise episode
  // overlapping the bucket (from the deterministic schedule) and how many
  // EBUSYs it returned in the bucket.
  const auto node0_schedule = noise_model.GenerateSchedule(0, Seconds(120));
  auto bucket_noisy = [node0_schedule](TimeNs lo, TimeNs hi) {
    for (const auto& ep : node0_schedule) {
      if (ep.start < hi && ep.start + ep.duration > lo) {
        return true;
      }
    }
    return false;
  };
  auto sample = std::make_shared<std::function<void(uint64_t)>>();
  *sample = [&, sample, bucket_noisy](uint64_t last_ebusy) {
    if (completed >= kTarget) {
      return;
    }
    const uint64_t now_ebusy = nodes[0]->ebusy_returned();
    run.timeline.emplace_back(bucket_noisy(sim.Now() - Millis(500), sim.Now()),
                              now_ebusy - last_ebusy);
    sim.ScheduleDaemon(Millis(500), [sample, now_ebusy] { (*sample)(now_ebusy); });
  };
  sim.ScheduleDaemon(Millis(500), [sample] { (*sample)(0); });

  auto issue = std::make_shared<std::function<void()>>();
  *issue = [&, issue] {
    if (issued >= kTarget) {
      return;
    }
    ++issued;
    const uint64_t key = ycsb.Next().key;
    const TimeNs start = sim.Now();
    coordinator.Get(key, [&, start](Status) {
      run.latencies.Record(sim.Now() - start);
      ++completed;
      (*issue)();
    });
  };
  for (int c = 0; c < kClients; ++c) {
    (*issue)();
  }
  sim.RunUntilPredicate([&] { return completed >= kTarget; });
  run.failovers = coordinator.failovers();
  return run;
}

}  // namespace

int main() {
  std::printf("=== Figure 13: MittOS-powered LevelDB + Riak ===\n");
  const RiakRun base = RunRing(false, 1313);
  const RiakRun mitt = RunRing(true, 1313);

  std::printf("\n--- Fig 13a: Riak get() latency percentiles ---\n");
  Table table({"pct", "Base (ms)", "MittCFQ (ms)"});
  for (const double p : {50.0, 90.0, 92.0, 94.0, 96.0, 98.0, 99.0}) {
    table.AddRow({"p" + Table::Num(p, 0), Table::Num(ToMillis(base.latencies.Percentile(p)), 2),
                  Table::Num(ToMillis(mitt.latencies.Percentile(p)), 2)});
  }
  table.Print();
  std::printf("MittOS replica failovers: %lu\n", static_cast<unsigned long>(mitt.failovers));

  std::printf("\n--- Fig 13b: node-0 timeline (500ms buckets) ---\n");
  std::printf("bucket: N = noise active, . = quiet; digit row = EBUSYs returned\n");
  std::string noise_row;
  std::string ebusy_row;
  for (const auto& [noisy, ebusy] : mitt.timeline) {
    noise_row += noisy ? 'N' : '.';
    ebusy_row += ebusy == 0 ? '0' : (ebusy < 10 ? static_cast<char>('0' + ebusy) : '+');
  }
  std::printf("noise: %s\nEBUSY: %s\n", noise_row.c_str(), ebusy_row.c_str());
  std::printf("\nExpected: EBUSY bursts line up with noise episodes; stray EBUSYs in quiet\n"
              "buckets are self-load (several concurrent LSM block reads), which the\n"
              "predictor correctly reports as deadline-threatening busyness.\n");
  return 0;
}
