// Figure 10 (§7.7): tail sensitivity to prediction error. The same MittCFQ
// experiment as Fig. 5, but with injected false negatives (busy IOs let
// through) or false positives (good IOs rejected) at E in {20, 60, 100}%.
//
// Expected shape: false negatives only degrade toward Base (100% FN == no
// MittOS); small false-positive rates barely matter, but 100% FP rejects
// everything and is far worse than Base (failover storms).

#include <cstdio>

#include "src/harness/experiment.h"

int main() {
  using namespace mitt;
  using harness::StrategyKind;

  harness::ExperimentOptions base_opt;
  base_opt.num_nodes = 20;
  base_opt.num_clients = 20;
  base_opt.measure_requests = 5000;
  base_opt.warmup_requests = 300;
  base_opt.noise = harness::NoiseKind::kEc2;
  base_opt.ec2 = harness::CompressedEc2Noise();
  base_opt.deadline = -1;
  base_opt.seed = 20170106;

  std::printf("=== Figure 10: tail sensitivity to prediction error (MittCFQ) ===\n");
  harness::Experiment probe(base_opt);
  auto base_results = probe.RunAll({StrategyKind::kBase});
  const DurationNs p95 = probe.derived_p95();
  base_opt.deadline = p95;
  std::printf("deadline = Base p95 = %.2f ms\n", ToMillis(p95));

  auto run_with_error = [&](double fn_rate, double fp_rate, const char* label) {
    harness::ExperimentOptions opt = base_opt;
    opt.predictor.false_negative_rate = fn_rate;
    opt.predictor.false_positive_rate = fp_rate;
    harness::Experiment experiment(opt);
    auto result = experiment.Run(StrategyKind::kMittos);
    result.name = label;
    return result;
  };

  std::printf("\n--- Fig 10a: false-negative injection ---\n");
  {
    std::vector<harness::RunResult> results;
    results.push_back(run_with_error(0.0, 0.0, "NoError"));
    results.push_back(run_with_error(0.2, 0.0, "FN=20%"));
    results.push_back(run_with_error(0.6, 0.0, "FN=60%"));
    results.push_back(run_with_error(1.0, 0.0, "FN=100%"));
    results.push_back(base_results[0]);
    harness::PrintPercentileTable(results, {90, 92, 94, 96, 98, 99}, /*user_level=*/false);
  }

  std::printf("\n--- Fig 10b: false-positive injection ---\n");
  {
    std::vector<harness::RunResult> results;
    results.push_back(run_with_error(0.0, 0.0, "NoError"));
    results.push_back(run_with_error(0.0, 0.2, "FP=20%"));
    results.push_back(run_with_error(0.0, 0.6, "FP=60%"));
    results.push_back(run_with_error(0.0, 1.0, "FP=100%"));
    results.push_back(base_results[0]);
    harness::PrintPercentileTable(results, {50, 75, 90, 92, 94, 96, 98, 99},
                                  /*user_level=*/false);
  }
  return 0;
}
