// bench_tenant: multi-tenant SLO classes + SLO-aware placement
// (src/tenant/, DESIGN.md §4i, ROADMAP item 4).
//
// Thousands of tenants (a Zipf rate mix over gold/silver/bronze SLO
// classes) drive a small SSD cluster open-loop while one node sits under
// continuous IO contention. Three parts:
//
//   1. Melt vs hold — four runs over identical seeds:
//        healthy     no noise, naive uniform placement (reference tail)
//        Base        noisy node, uniform placement, timeout client: every
//                    get whose tenant lands on the hot node waits out its
//                    class SLO before failing over — the per-class p99
//                    melts to SLO+retry territory.
//        MittOS      noisy node, uniform placement, fast-reject failover:
//                    gold dodges the hot node per request (its 15 ms SLO is
//                    tighter than the contended wait, so the predictor
//                    rejects), but silver/bronze SLOs tolerate the wait —
//                    no reject fires and their tails still melt.
//        MittOS+plc  noisy node, SLO-aware PlacementController: drains the
//                    hot node tenant-by-tenant (strictest class first) and
//                    holds per-class p99 near the healthy baseline.
//      Reported as a per-class p50/p95/p99/miss% table plus controller
//      counters (migrations, hot ticks, breaker opens).
//   2. Scale note — tenant count, directory/placement footprint, measured
//      completions per second of wall time.
//   3. Determinism — the uniform + slo-aware pair re-run at every point of
//      the {trial workers 1,4} x {intra workers 1,2} grid with num_shards=2
//      (controller ticks become quiesced ScheduleGlobal events); the JSON
//      scorecards must be byte-identical or the bench exits nonzero.
//
// Usage: bench_tenant [--small] [out.json]   (default out: BENCH_tenant.json)
//   --small  CI mode: 1000 tenants, shorter measured window, same grid.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/obs/export.h"

namespace {

using namespace mitt;
using harness::StrategyKind;

harness::ExperimentOptions TenantWorld(uint32_t tenants, double rate_hz, bool noisy,
                                       bool slo_aware, DurationNs duration, uint64_t seed) {
  harness::ExperimentOptions opt;
  opt.num_nodes = 6;
  opt.num_clients = 0;  // The tenant drivers replace the closed-loop population.
  opt.backend = os::BackendKind::kSsd;
  opt.num_keys_per_node = 1 << 16;
  opt.cache_pages = 1 << 10;  // 4 MB cache over 256 MB/node: gets hit the SSD queues.
  opt.deadline = Millis(20);  // Per-get deadlines come from the class SLO instead.
  opt.seed = seed;
  opt.tenants.enabled = true;
  opt.tenants.mix.num_tenants = tenants;
  opt.tenants.mix.total_rate_hz = rate_hz;
  opt.tenants.mix.rate_zipf_theta = 1.0;
  opt.tenants.slo_aware = slo_aware;
  opt.tenants.warmup = Millis(300);
  opt.tenants.duration = duration;
  opt.noise = noisy ? harness::NoiseKind::kContinuous : harness::NoiseKind::kNone;
  opt.continuous_intensity = 60;  // Node 0 under constant 1 MB-read contention.
  opt.noise_horizon = Seconds(30);
  return opt;
}

// Deterministic scorecard over a result set: integers only (latencies in
// ns), so byte-compares across worker grids never hinge on float printing.
std::string TenantScorecardJson(const std::vector<harness::RunResult>& results) {
  std::string json = "[";
  for (size_t i = 0; i < results.size(); ++i) {
    const harness::RunResult& r = results[i];
    json += std::string(i == 0 ? "" : ", ") + "{\"name\": \"" + obs::JsonEscape(r.name) +
            "\", \"tenant_requests\": " + std::to_string(r.tenant_requests) +
            ", \"ebusy_failovers\": " + std::to_string(r.ebusy_failovers) +
            ", \"migrations\": " + std::to_string(r.tenant_migrations) +
            ", \"controller_ticks\": " + std::to_string(r.controller_ticks) +
            ", \"hot_ticks\": " + std::to_string(r.controller_hot_ticks) +
            ", \"breaker_opens\": " + std::to_string(r.breaker_opens) + ", \"classes\": [";
    for (size_t c = 0; c < r.tenant_classes.size(); ++c) {
      const harness::TenantClassStats& cls = r.tenant_classes[c];
      const auto ps = cls.latencies.Percentiles(std::vector<double>{50, 95, 99});
      json += std::string(c == 0 ? "" : ", ") + "{\"name\": \"" + obs::JsonEscape(cls.name) +
              "\", \"slo_ms\": " + std::to_string(cls.slo / 1'000'000) +
              ", \"tenants\": " + std::to_string(cls.tenants) +
              ", \"requests\": " + std::to_string(cls.requests) +
              ", \"deadline_miss\": " + std::to_string(cls.deadline_miss) +
              ", \"failovers\": " + std::to_string(cls.failovers) +
              ", \"errors\": " + std::to_string(cls.errors) +
              ", \"p50_ns\": " + std::to_string(ps[0]) +
              ", \"p95_ns\": " + std::to_string(ps[1]) +
              ", \"p99_ns\": " + std::to_string(ps[2]) +
              ", \"max_ns\": " + std::to_string(cls.latencies.Max()) + "}";
    }
    json += "]}";
  }
  return json + "]";
}

void PrintClassTable(const std::vector<harness::RunResult>& results) {
  std::printf("%-12s %-8s %8s %10s %10s %10s %8s %10s\n", "run", "class", "reqs", "p50 ms",
              "p95 ms", "p99 ms", "miss %", "failovers");
  for (const harness::RunResult& r : results) {
    for (const harness::TenantClassStats& cls : r.tenant_classes) {
      const auto ps = cls.latencies.Percentiles(std::vector<double>{50, 95, 99});
      const double miss_pct =
          cls.requests == 0 ? 0.0
                            : 100.0 * static_cast<double>(cls.deadline_miss) /
                                  static_cast<double>(cls.requests);
      std::printf("%-12s %-8s %8llu %10.2f %10.2f %10.2f %8.2f %10llu\n", r.name.c_str(),
                  cls.name.c_str(), static_cast<unsigned long long>(cls.requests),
                  ToMillis(ps[0]), ToMillis(ps[1]), ToMillis(ps[2]), miss_pct,
                  static_cast<unsigned long long>(cls.failovers));
    }
  }
}

DurationNs ClassP99(const harness::RunResult& r, const char* cls_name) {
  for (const harness::TenantClassStats& cls : r.tenant_classes) {
    if (cls.name == cls_name) {
      return cls.latencies.Percentile(99);
    }
  }
  return 0;
}

// The determinism grid re-runs the noisy uniform/slo-aware pair as two
// parallel trials: num_shards=2 puts the controller on the quiesced
// ScheduleGlobal path and splits the tenant drivers across shards.
std::string GridScorecard(uint32_t tenants, double rate_hz, DurationNs duration,
                          int trial_workers, int intra_workers) {
  std::vector<harness::Trial> trials;
  for (const bool slo_aware : {false, true}) {
    harness::Trial t;
    t.options = TenantWorld(tenants, rate_hz, /*noisy=*/true, slo_aware, duration,
                            /*seed=*/20170919);
    t.options.num_shards = 2;
    t.options.intra_workers = intra_workers;
    t.kind = StrategyKind::kMittos;
    t.rename = slo_aware ? "slo-aware" : "uniform";
    trials.push_back(t);
  }
  return TenantScorecardJson(harness::RunTrialsParallel(trials, trial_workers));
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  const char* json_path = "BENCH_tenant.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else {
      json_path = argv[i];
    }
  }

  const uint32_t tenants = small ? 1000 : 2000;
  const double rate_hz = small ? 12000 : 20000;
  const DurationNs duration = small ? Millis(1200) : Seconds(2);

  std::printf("=== bench_tenant: %u tenants, SLO classes, placement control ===\n", tenants);

  // --- Part 1: melt vs hold ---
  std::vector<harness::Trial> trials;
  {
    harness::Trial healthy;
    healthy.options =
        TenantWorld(tenants, rate_hz, /*noisy=*/false, /*slo_aware=*/false, duration, 42);
    healthy.kind = StrategyKind::kMittos;
    healthy.rename = "healthy";
    trials.push_back(healthy);

    harness::Trial base;
    base.options =
        TenantWorld(tenants, rate_hz, /*noisy=*/true, /*slo_aware=*/false, duration, 42);
    base.kind = StrategyKind::kBase;
    base.rename = "Base";
    trials.push_back(base);

    harness::Trial mitt;
    mitt.options = base.options;
    mitt.kind = StrategyKind::kMittos;
    mitt.rename = "MittOS";
    trials.push_back(mitt);

    harness::Trial plc;
    plc.options =
        TenantWorld(tenants, rate_hz, /*noisy=*/true, /*slo_aware=*/true, duration, 42);
    plc.kind = StrategyKind::kMittos;
    plc.rename = "MittOS+plc";
    trials.push_back(plc);
  }
  const auto start = std::chrono::steady_clock::now();
  const std::vector<harness::RunResult> results = harness::RunTrialsParallel(trials);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::printf("\n--- Per-class tails: node 0 under contention, gold SLO 15 ms ---\n");
  PrintClassTable(results);

  const harness::RunResult& healthy = results[0];
  const harness::RunResult& naive = results[2];
  const harness::RunResult& aware = results[3];
  // Silver is the placement story in one number: its 40 ms SLO tolerates the
  // contended wait, so fast reject never fires for it — only moving the
  // tenants off the hot node can fix its tail.
  auto p99_ratio = [&](const harness::RunResult& r, const char* cls) {
    return static_cast<double>(ClassP99(r, cls)) /
           static_cast<double>(std::max<DurationNs>(ClassP99(healthy, cls), 1));
  };
  const double melt = p99_ratio(naive, "silver");
  const double hold = p99_ratio(aware, "silver");
  std::printf("\nsilver p99 vs healthy: uniform %.2fx (melt), slo-aware %.2fx (hold)\n", melt,
              hold);
  std::printf("gold   p99 vs healthy: uniform %.2fx, slo-aware %.2fx\n",
              p99_ratio(naive, "gold"), p99_ratio(aware, "gold"));
  std::printf("controller: %llu migrations over %llu ticks (%llu hot), %llu breaker opens\n",
              static_cast<unsigned long long>(aware.tenant_migrations),
              static_cast<unsigned long long>(aware.controller_ticks),
              static_cast<unsigned long long>(aware.controller_hot_ticks),
              static_cast<unsigned long long>(aware.breaker_opens));

  // --- Part 2: scale note ---
  uint64_t measured = 0;
  for (const harness::RunResult& r : results) {
    measured += r.tenant_requests;
  }
  std::printf("\n--- Scale: %u tenants/run, %llu measured completions in %.1fs wall ---\n",
              tenants, static_cast<unsigned long long>(measured), wall_s);

  // --- Part 3: determinism grid ---
  const uint32_t grid_tenants = small ? 600 : 1000;
  const double grid_rate = small ? 6000 : 10000;
  const DurationNs grid_duration = Millis(800);
  std::printf("\n--- Determinism: scorecard at {trial 1,4} x {intra 1,2}, %u tenants ---\n",
              grid_tenants);
  std::string reference;
  bool identical = true;
  int variants = 0;
  for (const int trial_workers : {1, 4}) {
    for (const int intra_workers : {1, 2}) {
      const std::string scorecard =
          GridScorecard(grid_tenants, grid_rate, grid_duration, trial_workers, intra_workers);
      ++variants;
      if (reference.empty()) {
        reference = scorecard;
      } else if (scorecard != reference) {
        identical = false;
        std::fprintf(stderr, "DETERMINISM FAILURE at trial=%d intra=%d: scorecard differs\n",
                     trial_workers, intra_workers);
      }
      std::printf("  trial=%d intra=%d: %zu scorecard bytes %s\n", trial_workers, intra_workers,
                  scorecard.size(), scorecard == reference ? "(identical)" : "(DIFFERS)");
    }
  }

  // --- Artifact ---
  std::string json = "{\n  \"config\": {\"tenants\": " + std::to_string(tenants) +
                     ", \"rate_hz\": " + std::to_string(static_cast<uint64_t>(rate_hz)) +
                     ", \"small\": " + (small ? "true" : "false") + "},\n";
  json += "  \"runs\": " + TenantScorecardJson(results) + ",\n";
  json += "  \"silver_p99_ratio\": {\"uniform\": " + std::to_string(melt) +
          ", \"slo_aware\": " + std::to_string(hold) + "},\n";
  json += "  \"determinism\": {\"identical\": " + std::string(identical ? "true" : "false") +
          ", \"variants\": " + std::to_string(variants) +
          ", \"scorecard_bytes\": " + std::to_string(reference.size()) + "}\n}\n";
  if (!obs::ValidateJsonSyntax(json)) {
    std::fprintf(stderr, "bench_tenant: generated JSON failed validation\n");
    return 1;
  }
  std::ofstream out(json_path);
  out << json;
  std::printf("\nwrote tenant report to %s\n", json_path);

  return identical ? 0 : 1;
}
