// §7.8.5 "All in one": MittCFQ, MittSSD, and MittCache enabled in one
// deployment, three users with different data placements and deadlines
// (disk / 20ms, SSD / 2ms, OS cache / 0.1ms), three simultaneous noise
// sources (disk contention, SSD background writes, page swapouts).
//
// Substitution note (DESIGN.md): the paper mounts the SSD as a bcache flash
// cache under one partition; we host each user class on the matching backend
// directly. The claim being reproduced — all three MittOS resource managers
// can co-exist and each user's tail is cut to its own deadline — is
// preserved, since the managers are independent per resource.

#include <cstdio>

#include "src/harness/experiment.h"

namespace {

using namespace mitt;
using harness::StrategyKind;

harness::ExperimentOptions CommonUser() {
  harness::ExperimentOptions opt;
  opt.num_nodes = 3;
  opt.num_clients = 2;
  opt.measure_requests = 3000;
  opt.warmup_requests = 200;
  opt.pin_primary_node = 0;
  return opt;
}

}  // namespace

int main() {
  std::printf("=== §7.8.5: all three MittOS managers in one deployment ===\n");

  std::vector<const char*> labels;
  std::vector<harness::Trial> trials;
  auto add_user = [&](const char* label, const harness::ExperimentOptions& opt) {
    labels.push_back(label);
    trials.push_back({opt, StrategyKind::kBase, ""});
    trials.push_back({opt, StrategyKind::kMittos, ""});
  };

  {
    harness::ExperimentOptions opt = CommonUser();  // User 1: disk data, 20ms SLO.
    opt.noise = harness::NoiseKind::kContinuous;
    opt.deadline = Millis(20);
    opt.seed = 8501;
    add_user("User A: disk data, deadline 20ms, disk-contention noise (MittCFQ)", opt);
  }
  {
    harness::ExperimentOptions opt = CommonUser();  // User 2: SSD data, 2ms SLO.
    opt.backend = os::BackendKind::kSsd;
    opt.noise = harness::NoiseKind::kContinuous;
    opt.noise_op = sched::IoOp::kWrite;
    opt.noise_io_size = 256 << 10;  // Striped writes keep many chips busy.
    opt.noise_streams = 3;
    opt.continuous_intensity = 1;
    opt.deadline = Millis(2);
    opt.seed = 8502;
    add_user("User B: SSD data, deadline 2ms, background-write noise (MittSSD)", opt);
  }
  {
    harness::ExperimentOptions opt = CommonUser();  // User 3: cached data, 0.1ms SLO.
    opt.access = kv::AccessPath::kMmapAddrCheck;
    opt.warm_fraction = 1.0;
    opt.num_keys_per_node = 1 << 18;
    opt.cache_pages = 1 << 19;
    opt.noise = harness::NoiseKind::kStaticCacheDrop;
    opt.noise_only_node = 0;
    opt.cache_drop_fraction = 0.4;  // x0.5 node factor -> ~20% swapped out.
    opt.deadline = Micros(100);
    opt.seed = 8503;
    add_user("User C: cached data, deadline 0.1ms, swap-out noise (MittCache)", opt);
  }

  // All six worlds (three users x {Base, MittOS}) fan out across the trial
  // pool; the order-preserving merge keeps the per-user pairing.
  const auto results = harness::RunTrialsParallel(trials);
  for (size_t u = 0; u < labels.size(); ++u) {
    const auto& base = results[2 * u];
    const auto& mitt = results[2 * u + 1];
    std::printf("\n--- %s ---\n", labels[u]);
    harness::PrintPercentileTable({base, mitt}, {50, 80, 90, 95, 99}, /*user_level=*/false);
    std::printf("MittOS failovers: %lu\n", static_cast<unsigned long>(mitt.ebusy_failovers));
  }

  std::printf("\nExpected: each user's Base tail collapses toward its own deadline under\n"
              "MittOS, mirroring Fig. 4 — the three managers co-exist.\n");
  return 0;
}
