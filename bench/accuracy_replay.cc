#include "bench/accuracy_replay.h"

#include <algorithm>
#include <memory>

#include "src/common/latency_recorder.h"
#include "src/sim/simulator.h"
#include "src/trace/replay.h"

namespace mitt::bench {
namespace {

// Replays the trace against a fresh Os. If `deadline` > 0 it is attached to
// every read (writes go through sync so they contend at the device). Returns
// the read-latency recorder; `out_os` receives the Os for stats readout.
// Degrading-media ramp: service times climb to `multiplier`x in 8 steps.
// The predictor's profile was learned healthy, so its error grows with the
// ramp — organic, not injected.
void ScheduleFailSlowRamp(sim::Simulator* sim, os::Os* target, const AccuracyOptions& options) {
  constexpr int kSteps = 8;
  for (int s = 1; s <= kSteps; ++s) {
    const double m = 1.0 + (options.fail_slow_multiplier - 1.0) * s / kSteps;
    sim->ScheduleAt(options.fail_slow_start + options.fail_slow_ramp * s / kSteps,
                    [target, m] {
                      if (target->disk() != nullptr) {
                        target->disk()->set_service_time_multiplier(m);
                      }
                      if (target->ssd() != nullptr) {
                        for (int c = 0; c < target->ssd()->num_chips(); ++c) {
                          target->ssd()->set_chip_read_multiplier(c, m);
                        }
                      }
                    });
  }
}

LatencyRecorder Replay(const workload::TraceProfile& profile, const AccuracyOptions& options,
                       DurationNs deadline, bool accuracy_mode,
                       std::unique_ptr<os::Os>* out_os, sim::Simulator* sim) {
  os::OsOptions os_opt;
  os_opt.backend = options.backend;
  os_opt.mitt_enabled = true;
  os_opt.predictor.accuracy_mode = accuracy_mode;
  os_opt.predictor.calibrate = options.calibrate;
  os_opt.mitt_cfq = options.mitt_cfq;
  os_opt.mitt_ssd = options.mitt_ssd;
  os_opt.seed = options.seed;
  auto target = std::make_unique<os::Os>(sim, os_opt);

  const int64_t span = profile.span_bytes;
  const uint64_t file = target->CreateFile(span);

  if (accuracy_mode && options.fail_slow_multiplier != 1.0) {
    ScheduleFailSlowRamp(sim, target.get(), options);
  }

  // Same trace stream GenerateTrace used to materialize, now replayed
  // through the shared cursor + open-loop driver (constant memory, any
  // max_ios).
  workload::SyntheticTraceCursor cursor(profile, Seconds(600), options.seed ^ 0x7ACE);
  trace::TraceReplayDriver::Options ropt;
  ropt.rate_scale = options.rate_scale;
  ropt.max_events = options.max_ios;

  LatencyRecorder latencies;
  size_t completed = 0;
  trace::TraceReplayDriver driver(
      sim, &cursor, ropt,
      [&, target = target.get(), file, deadline](const trace::TraceEvent& event,
                                                 uint64_t /*global_index*/, bool /*measured*/) {
        if (event.op == trace::kOpRead) {
          os::Os::ReadArgs args;
          args.file = file;
          args.offset = event.offset;
          args.size = event.len;
          args.deadline = deadline;
          args.pid = 1;
          args.bypass_cache = true;
          const TimeNs start = sim->Now();
          target->Read(args, [&, start](Status) {
            latencies.Record(sim->Now() - start);
            ++completed;
          });
        } else {
          os::Os::WriteArgs args;
          args.file = file;
          args.offset = event.offset;
          args.size = event.len;
          args.pid = 2;
          args.sync = true;
          target->Write(args, [&](Status) { ++completed; });
        }
      });
  driver.Start();
  sim->RunUntilPredicate([&] { return driver.done() && completed >= driver.dispatched(); });

  *out_os = std::move(target);
  return latencies;
}

}  // namespace

AccuracyResult RunAccuracyReplay(const workload::TraceProfile& profile,
                                 const AccuracyOptions& options) {
  AccuracyResult result;
  result.trace = profile.name;

  // Pass 1: learn the p95 latency with no deadlines attached.
  DurationNs p95 = 0;
  {
    sim::Simulator sim;
    std::unique_ptr<os::Os> target;
    const LatencyRecorder base = Replay(profile, options, sched::kNoDeadline,
                                        /*accuracy_mode=*/false, &target, &sim);
    p95 = base.Percentile(95);
  }
  result.deadline = p95;

  // Pass 2: accuracy mode with deadline = p95 on every read.
  {
    sim::Simulator sim;
    std::unique_ptr<os::Os> target;
    const LatencyRecorder run =
        Replay(profile, options, p95, /*accuracy_mode=*/true, &target, &sim);
    result.ios = run.count();
    const os::PredictionStats* stats = nullptr;
    if (target->mitt_cfq() != nullptr) {
      stats = &target->mitt_cfq()->stats();
    } else if (target->mitt_ssd() != nullptr) {
      stats = &target->mitt_ssd()->stats();
    } else if (target->mitt_noop() != nullptr) {
      stats = &target->mitt_noop()->stats();
    }
    if (stats != nullptr && stats->total > 0) {
      result.false_positive_pct =
          100.0 * static_cast<double>(stats->false_positives) / static_cast<double>(stats->total);
      result.false_negative_pct =
          100.0 * static_cast<double>(stats->false_negatives) / static_cast<double>(stats->total);
      result.inaccuracy_pct = stats->InaccuracyPercent();
      result.mean_wrong_diff_ms = stats->MeanWrongDiffNs() / kMillisecond;
    }
  }
  return result;
}

}  // namespace mitt::bench
