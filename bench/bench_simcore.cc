// Simulator core microbenchmark: schedule/cancel/fire churn at >= 1M events.
//
// Measures the event-engine hot path that every figure reproduction funnels
// through (EXPERIMENTS.md "bench_simcore"). Two engines run the identical
// seeded workload:
//   - "legacy": the pre-overhaul design, embedded below as the fixed
//     baseline — std::priority_queue over full Event structs carrying
//     std::function closures, plus an unordered_set lazy-cancel path;
//   - "pooled": mitt::sim::Simulator — pooled slots, InlineFunction
//     closures, handle-ordered heap, tombstone cancels.
//
// The workload is a mixed churn: self-rescheduling event chains whose
// closures capture 32 bytes (over std::function's 16-byte SBO, inside
// InlineFunction's 48-byte buffer — the size class of the codebase's real
// closures), a daemon ticker, and decoy events of which half are cancelled
// while pending.
//
// A global operator new/delete counting hook reports allocations/event, and
// the run *asserts* that the pooled engine's steady-state schedule->fire
// path performs zero heap allocations (exit code 1 otherwise). Results are
// written to BENCH_simcore.json so the perf trajectory is tracked per PR.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sim/simulator.h"

// --- Allocation-counting hook -----------------------------------------------

// GCC pairs the inlined bodies of these replaced operators (malloc/free) with
// the standard declarations and emits -Wmismatched-new-delete; the pairing is
// in fact consistent (every path goes through these hooks).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using mitt::DurationNs;
using mitt::Micros;
using mitt::Rng;
using mitt::TimeNs;

// --- Legacy engine (fixed baseline, do not "improve") ------------------------
//
// Verbatim structure of the pre-overhaul mitt::sim::Simulator: the heap
// carries whole events (with their std::function closures), cancellation
// goes through an unordered_set, pops copy the event off the heap top.

namespace legacy {

using EventId = uint64_t;

class Simulator {
 public:
  TimeNs Now() const { return now_; }

  EventId Schedule(DurationNs delay, std::function<void()> fn) {
    if (delay < 0) {
      delay = 0;
    }
    return ScheduleInternal(now_ + delay, false, std::move(fn));
  }
  EventId ScheduleDaemon(DurationNs delay, std::function<void()> fn) {
    if (delay < 0) {
      delay = 0;
    }
    return ScheduleInternal(now_ + delay, true, std::move(fn));
  }
  bool Cancel(EventId id) {
    if (id == 0 || id >= next_seq_) {
      return false;
    }
    return cancelled_.insert(id).second;
  }
  void Run() {
    while (non_daemon_pending_ > 0 && Step()) {
    }
  }
  bool RunUntilPredicate(const std::function<bool()>& pred) {
    if (pred()) {
      return true;
    }
    while (non_daemon_pending_ > 0 && Step()) {
      if (pred()) {
        return true;
      }
    }
    return false;
  }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimeNs when;
    uint64_t seq;
    EventId id;
    bool daemon;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  EventId ScheduleInternal(TimeNs when, bool daemon, std::function<void()> fn) {
    if (when < now_) {
      when = now_;
    }
    const uint64_t seq = next_seq_++;
    heap_.push(Event{when, seq, seq, daemon, std::move(fn)});
    if (!daemon) {
      ++non_daemon_pending_;
    }
    return seq;
  }
  bool Step() {
    while (!heap_.empty()) {
      Event ev = heap_.top();  // Copy, as the original did.
      heap_.pop();
      if (!ev.daemon) {
        --non_daemon_pending_;
      }
      const auto it = cancelled_.find(ev.id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      now_ = ev.when;
      ++executed_;
      ev.fn();
      return true;
    }
    return false;
  }

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  size_t non_daemon_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace legacy

// --- Workload ----------------------------------------------------------------

struct ChurnResult {
  uint64_t executed = 0;     // Events fired during the measured phase.
  double elapsed_sec = 0;    // Wall time of the measured phase.
  uint64_t allocs = 0;       // Allocations across warmup + measured phases.
  uint64_t alloc_bytes = 0;
  uint64_t steady_allocs = 0;  // Allocations during the measured phase only.
  uint64_t cancelled = 0;
};

// Each chain callback captures the context pointer plus 24 bytes of payload:
// 32 bytes total, over std::function's inline buffer, inside InlineFunction's.
template <typename Sim, typename IdT>
struct Churn {
  struct Ctx {
    Sim* sim = nullptr;
    Rng rng{0};
    uint64_t fired = 0;
    uint64_t decoys_fired = 0;
    uint64_t scheduled = 0;
    uint64_t cancelled = 0;
    uint64_t target = 0;
    std::vector<IdT> cancel_pool;
  };

  static void ScheduleChain(Ctx* ctx) {
    ++ctx->scheduled;
    const uint64_t payload = ctx->rng.Next();
    ctx->sim->Schedule(
        static_cast<DurationNs>(ctx->rng.UniformInt(Micros(1), Micros(500))),
        [ctx, payload, salt = payload ^ 0x9E37ULL, tag = payload >> 7] {
          // Touch the payload so the capture is not optimized away.
          if ((payload ^ salt ^ tag) == 0x5EED5EED5EEDULL) {
            std::abort();
          }
          Tick(ctx);
        });
  }

  static void Tick(Ctx* ctx) {
    ++ctx->fired;
    if (ctx->fired + ctx->decoys_fired >= ctx->target) {
      return;  // Chain dies; Run() drains the remaining decoys.
    }
    ScheduleChain(ctx);
    // Every 4th fire adds a decoy; once 64 accumulate, cancel every other
    // one while still pending (interleaved schedule/cancel churn).
    if (ctx->fired % 4 == 0) {
      ++ctx->scheduled;
      const uint64_t payload = ctx->rng.Next();
      ctx->cancel_pool.push_back(ctx->sim->Schedule(
          static_cast<DurationNs>(ctx->rng.UniformInt(Micros(800), Micros(4000))),
          [ctx, payload, salt = payload ^ 0xABCDULL, tag = payload << 3] {
            if ((payload ^ salt ^ tag) == 0x0BADF00DULL) {
              std::abort();
            }
            ++ctx->decoys_fired;
          }));
      if (ctx->cancel_pool.size() >= 64) {
        for (size_t i = 0; i < ctx->cancel_pool.size(); i += 2) {
          if (ctx->sim->Cancel(ctx->cancel_pool[i])) {
            ++ctx->cancelled;
          }
        }
        ctx->cancel_pool.clear();  // Keeps capacity: no realloc next round.
      }
    }
  }

  static ChurnResult Run(uint64_t target_events, uint64_t warmup_events, uint64_t seed) {
    Sim sim;
    Ctx ctx;
    ctx.sim = &sim;
    ctx.rng = Rng(seed);
    ctx.target = target_events;
    ctx.cancel_pool.reserve(1024);

    // Daemon ticker churning alongside the chains.
    std::function<void()> beat_fn;
    auto* beat = &beat_fn;
    beat_fn = [&sim, beat] { sim.ScheduleDaemon(Micros(250), [beat] { (*beat)(); }); };
    sim.ScheduleDaemon(Micros(250), [beat] { (*beat)(); });

    // Capacity pre-pad: a burst of short-lived tombstones forces the event
    // pool and heap well past their steady-state population, so the measured
    // phase never triggers a container regrow on a random high-water mark.
    // Both engines get the identical burst.
    {
      std::vector<IdT> pad;
      pad.reserve(8192);
      for (int i = 0; i < 8192; ++i) {
        pad.push_back(sim.Schedule(
            static_cast<DurationNs>(ctx.rng.UniformInt(Micros(1), Micros(2000))), [] {}));
      }
      for (const IdT id : pad) {
        sim.Cancel(id);
      }
    }

    for (int i = 0; i < 256; ++i) {
      ScheduleChain(&ctx);
    }

    const uint64_t total_allocs_before = g_alloc_count.load();
    const uint64_t total_bytes_before = g_alloc_bytes.load();

    // Warmup: drains the pad burst and settles the decoy population.
    sim.RunUntilPredicate([&ctx, warmup_events] {
      return ctx.fired + ctx.decoys_fired >= warmup_events;
    });

    // Measured steady-state phase.
    const uint64_t executed_before = sim.executed_events();
    const uint64_t steady_allocs_before = g_alloc_count.load();
    const auto t0 = std::chrono::steady_clock::now();
    sim.Run();
    const auto t1 = std::chrono::steady_clock::now();

    ChurnResult r;
    r.executed = sim.executed_events() - executed_before;
    r.elapsed_sec = std::chrono::duration<double>(t1 - t0).count();
    r.allocs = g_alloc_count.load() - total_allocs_before;
    r.alloc_bytes = g_alloc_bytes.load() - total_bytes_before;
    r.steady_allocs = g_alloc_count.load() - steady_allocs_before;
    r.cancelled = ctx.cancelled;
    return r;
  }
};

double EventsPerSec(uint64_t events, double sec) {
  return sec > 0 ? static_cast<double>(events) / sec : 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t target = 1'200'000;  // >= 1M fired events per engine.
  int reps = 3;
  if (argc > 1) {
    char* end = nullptr;
    target = std::strtoull(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || target == 0 || target > 2'000'000'000ULL) {
      std::fprintf(stderr, "usage: %s [target_events, 1..2e9] [reps, 1..100]\n", argv[0]);
      return 2;
    }
  }
  if (argc > 2) {
    reps = std::atoi(argv[2]);
    if (reps < 1 || reps > 100) {
      std::fprintf(stderr, "usage: %s [target_events, 1..2e9] [reps, 1..100]\n", argv[0]);
      return 2;
    }
  }
  const uint64_t warmup = target / 12;
  const uint64_t seed = 0x51AC02E;

  std::printf("=== bench_simcore: %llu-event schedule/cancel/fire churn, best of %d ===\n",
              static_cast<unsigned long long>(target), reps);

  // Interleave repetitions and keep each engine's fastest run: on shared or
  // single-core machines a single rep is hostage to scheduler noise.
  ChurnResult legacy_r, pooled_r;
  for (int rep = 0; rep < reps; ++rep) {
    std::printf("[rep %d] legacy...\n", rep);
    const auto l = Churn<legacy::Simulator, legacy::EventId>::Run(target, warmup, seed);
    std::printf("[rep %d] pooled...\n", rep);
    const auto p = Churn<mitt::sim::Simulator, mitt::sim::EventId>::Run(target, warmup, seed);
    if (rep == 0 || l.elapsed_sec < legacy_r.elapsed_sec) {
      legacy_r = l;
    }
    // Steady-state allocation accounting must hold on *every* rep, so carry
    // the worst alloc counters with the best time.
    const uint64_t worst_steady = std::max(pooled_r.steady_allocs, p.steady_allocs);
    if (rep == 0 || p.elapsed_sec < pooled_r.elapsed_sec) {
      pooled_r = p;
    }
    pooled_r.steady_allocs = worst_steady;
  }

  const double legacy_eps = EventsPerSec(legacy_r.executed, legacy_r.elapsed_sec);
  const double pooled_eps = EventsPerSec(pooled_r.executed, pooled_r.elapsed_sec);
  const double speedup = legacy_eps > 0 ? pooled_eps / legacy_eps : 0;

  auto report = [](const char* name, const ChurnResult& r) {
    std::printf(
        "%-8s %9.0f events/s  %7.1f ns/event  %6.3f allocs/event  "
        "(executed=%llu cancelled=%llu steady_allocs=%llu)\n",
        name, EventsPerSec(r.executed, r.elapsed_sec),
        r.executed ? 1e9 * r.elapsed_sec / static_cast<double>(r.executed) : 0.0,
        r.executed ? static_cast<double>(r.allocs) / static_cast<double>(r.executed) : 0.0,
        static_cast<unsigned long long>(r.executed),
        static_cast<unsigned long long>(r.cancelled),
        static_cast<unsigned long long>(r.steady_allocs));
  };
  report("legacy", legacy_r);
  report("pooled", pooled_r);
  std::printf("speedup (events/s, pooled vs legacy): %.2fx\n", speedup);

  FILE* out = std::fopen("BENCH_simcore.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n"
        "  \"benchmark\": \"simcore\",\n"
        "  \"workload\": {\"target_events\": %llu, \"warmup_events\": %llu,\n"
        "               \"capture_bytes\": 32, \"seed\": %llu},\n"
        "  \"legacy\": {\"executed_events\": %llu, \"elapsed_sec\": %.6f,\n"
        "             \"events_per_sec\": %.0f, \"ns_per_event\": %.2f,\n"
        "             \"allocs\": %llu, \"alloc_bytes\": %llu,\n"
        "             \"allocs_per_event\": %.4f, \"cancelled\": %llu},\n"
        "  \"pooled\": {\"executed_events\": %llu, \"elapsed_sec\": %.6f,\n"
        "             \"events_per_sec\": %.0f, \"ns_per_event\": %.2f,\n"
        "             \"allocs\": %llu, \"alloc_bytes\": %llu,\n"
        "             \"allocs_per_event\": %.4f, \"cancelled\": %llu,\n"
        "             \"steady_state_allocs\": %llu},\n"
        "  \"speedup_events_per_sec\": %.3f\n"
        "}\n",
        static_cast<unsigned long long>(target), static_cast<unsigned long long>(warmup),
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(legacy_r.executed), legacy_r.elapsed_sec, legacy_eps,
        legacy_r.executed ? 1e9 * legacy_r.elapsed_sec / static_cast<double>(legacy_r.executed)
                          : 0.0,
        static_cast<unsigned long long>(legacy_r.allocs),
        static_cast<unsigned long long>(legacy_r.alloc_bytes),
        legacy_r.executed
            ? static_cast<double>(legacy_r.allocs) / static_cast<double>(legacy_r.executed)
            : 0.0,
        static_cast<unsigned long long>(legacy_r.cancelled),
        static_cast<unsigned long long>(pooled_r.executed), pooled_r.elapsed_sec, pooled_eps,
        pooled_r.executed ? 1e9 * pooled_r.elapsed_sec / static_cast<double>(pooled_r.executed)
                          : 0.0,
        static_cast<unsigned long long>(pooled_r.allocs),
        static_cast<unsigned long long>(pooled_r.alloc_bytes),
        pooled_r.executed
            ? static_cast<double>(pooled_r.allocs) / static_cast<double>(pooled_r.executed)
            : 0.0,
        static_cast<unsigned long long>(pooled_r.cancelled),
        static_cast<unsigned long long>(pooled_r.steady_allocs), speedup);
    std::fclose(out);
    std::printf("wrote BENCH_simcore.json\n");
  }

  // Acceptance gates: the pooled engine's steady-state Schedule->fire path
  // must be allocation-free for inline-sized captures.
  if (pooled_r.steady_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: pooled engine performed %llu heap allocations in the "
                 "steady-state phase (expected 0)\n",
                 static_cast<unsigned long long>(pooled_r.steady_allocs));
    return 1;
  }
  std::printf("OK: pooled steady-state phase performed zero heap allocations\n");
  return 0;
}
