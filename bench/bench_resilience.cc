// Resilience evaluation (src/resilience/): does the budgeted, health-ordered,
// gracefully-degrading client beat the paper's naive failover walk when the
// world misbehaves — without giving anything up when it doesn't?
//
// Four worlds, naive MittOS vs MittOS+res (plus Base for context):
//   healthy          — light one-node contention only. Acceptance: MittOS+res
//                      p99 within ~2% of MittOS (the resilience layer must be
//                      free when nothing is wrong).
//   failslow-primary — node 0's disk degrades 12x for 30 s while the
//                      predictor keeps its healthy profile. Acceptance:
//                      MittOS+res p99 < MittOS p99 (the circuit breaker stops
//                      re-probing the sick primary on every get).
//   drop-pause       — packet loss + stop-the-world pauses on node 0: the
//                      failures EBUSY cannot signal; timeout strikes + the
//                      retry budget carry the SLO.
//   all-busy         — every replica under continuous contention. Acceptance:
//                      MittOS+res finishes with 0 user errors and every sent
//                      deadline bounded (no deadline-disabled blasts), where
//                      naive MittOS falls back to unbounded last tries.
//
// `--chaos N` appends a seeded chaos sweep: GenerateChaosPlan over N seeds,
// each replayed against both strategies (report-only; the CI job uploads the
// JSON + traces).
//
// Usage: bench_resilience [scorecard.json] [chrome_trace.json] [--chaos N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/harness/scenario_runner.h"
#include "src/obs/export.h"

namespace {

using namespace mitt;
using harness::StrategyKind;

harness::ExperimentOptions MicroWorld(uint64_t seed) {
  harness::ExperimentOptions opt;
  opt.num_nodes = 3;
  opt.num_clients = 4;
  opt.measure_requests = 2500;
  opt.warmup_requests = 200;
  opt.pin_primary_node = 0;
  opt.backend = os::BackendKind::kDiskCfq;
  // Light background contention on the victim node; a busy device is what
  // the wait-time check can see (same rationale as bench_failslow).
  opt.noise = harness::NoiseKind::kContinuous;
  opt.continuous_intensity = 2;
  opt.noise_io_size = 4096;
  opt.noise_priority = 7;
  opt.seed = seed;
  return opt;
}

constexpr TimeNs kHorizon = Seconds(60);

std::vector<harness::FaultScenario> Scenarios() {
  std::vector<harness::FaultScenario> scenarios;
  // Healthy: no faults at all — the within-2% regression guard.
  scenarios.push_back({"healthy", fault::FaultPlan(), nullptr});
  {
    fault::FaultPlanBuilder b;
    b.FailSlowDisk(/*node=*/0, /*start=*/Millis(400), /*duration=*/Seconds(30),
                   /*multiplier=*/12.0);
    scenarios.push_back({"failslow-primary", b.Build(), nullptr});
  }
  {
    // Drops + pauses on the primary: no EBUSY is ever sent for these, so
    // only the timeout-strike breaker and retry governance can help.
    fault::FaultPlanBuilder b;
    b.RepeatEpisodes(fault::FaultKind::kNetworkDrop, /*node=*/0, kHorizon,
                     /*mean_gap=*/Millis(800), /*min_on=*/Millis(100), /*max_on=*/Millis(300),
                     /*severity=*/0.4, /*seed=*/301);
    b.RepeatEpisodes(fault::FaultKind::kNodePause, /*node=*/0, kHorizon,
                     /*mean_gap=*/Millis(900), /*min_on=*/Millis(60), /*max_on=*/Millis(140),
                     /*severity=*/1.0, /*seed=*/302);
    scenarios.push_back({"drop-pause", b.Build(), nullptr});
  }
  {
    // All-busy: flood *every* node, not just the pinned primary. The naive
    // walk's only exit is the deadline-disabled last try; the resilient walk
    // exits through the bounded degraded path.
    harness::FaultScenario s;
    s.name = "all-busy";
    s.customize = [](harness::ExperimentOptions& opt) {
      opt.continuous_all_nodes = true;
      opt.continuous_intensity = 3;
    };
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

double P99Of(const std::vector<harness::StrategyScore>& scores, const std::string& scenario,
             const std::string& strategy) {
  for (const auto& s : scores) {
    if (s.scenario == scenario && s.strategy == strategy) {
      return s.p99_ms;
    }
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== bench_resilience: deadline budgets, breakers, graceful degradation ===\n");

  int chaos_seeds = 0;
  const char* scorecard_path = nullptr;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      chaos_seeds = std::atoi(argv[++i]);
    } else if (scorecard_path == nullptr) {
      scorecard_path = argv[i];
    } else {
      trace_path = argv[i];
    }
  }

  const std::vector<StrategyKind> strategies = {StrategyKind::kBase, StrategyKind::kMittos,
                                                StrategyKind::kMittosResilient};

  harness::ScenarioRunner::Options opt;
  opt.base = MicroWorld(20170919);
  opt.base.trace = true;
  opt.base.mitt_cfq.gain_calibration = true;
  opt.base.mitt_cfq.gain_ewma_alpha = 0.2;
  opt.strategies = strategies;
  harness::ScenarioRunner runner(opt);
  const auto scenarios = Scenarios();
  const auto scores = runner.Run(scenarios);

  std::printf("\n--- Resilience scorecard, SLO = healthy Base p95 = %.2f ms ---\n",
              ToMillis(runner.slo_deadline()));
  harness::PrintScorecard(scores, runner.slo_deadline());

  // Acceptance summary (informational; CI treats the run as report-only).
  const double healthy_naive = P99Of(scores, "healthy", "MittOS");
  const double healthy_res = P99Of(scores, "healthy", "MittOS+res");
  const double failslow_naive = P99Of(scores, "failslow-primary", "MittOS");
  const double failslow_res = P99Of(scores, "failslow-primary", "MittOS+res");
  std::printf("\nhealthy   p99: MittOS %.2f ms vs MittOS+res %.2f ms (overhead %+.1f%%)\n",
              healthy_naive, healthy_res,
              healthy_naive > 0 ? 100.0 * (healthy_res - healthy_naive) / healthy_naive : 0.0);
  std::printf("fail-slow p99: MittOS %.2f ms vs MittOS+res %.2f ms (reduction %.1f%%)\n",
              failslow_naive, failslow_res,
              failslow_naive > 0 ? 100.0 * (failslow_naive - failslow_res) / failslow_naive
                                 : 0.0);

  // --- Optional chaos sweep ---
  std::vector<harness::StrategyScore> chaos_scores;
  if (chaos_seeds > 0) {
    std::printf("\n--- Chaos sweep: %d seeded plans x {MittOS, MittOS+res} ---\n", chaos_seeds);
    fault::ChaosOptions copt;
    copt.mean_gap = Seconds(4);
    std::vector<harness::FaultScenario> chaos;
    for (int s = 0; s < chaos_seeds; ++s) {
      harness::FaultScenario scenario;
      scenario.name = "chaos-seed-" + std::to_string(s);
      scenario.plan = fault::GenerateChaosPlan(copt, opt.base.num_nodes, kHorizon,
                                               static_cast<uint64_t>(1000 + s));
      chaos.push_back(std::move(scenario));
    }
    harness::ScenarioRunner::Options chaos_opt;
    chaos_opt.base = MicroWorld(20170920);
    chaos_opt.strategies = {StrategyKind::kMittos, StrategyKind::kMittosResilient};
    harness::ScenarioRunner chaos_runner(chaos_opt);
    chaos_scores = chaos_runner.Run(chaos);
    harness::PrintScorecard(chaos_scores, chaos_runner.slo_deadline());
  }

  // --- Artifacts ---
  if (scorecard_path != nullptr) {
    std::ofstream out(scorecard_path);
    out << "{\n  \"resilience\": " << harness::ScorecardJson(scores, runner.slo_deadline());
    if (!chaos_scores.empty()) {
      out << ",\n  \"chaos\": " << harness::ScorecardJson(chaos_scores, runner.slo_deadline());
    }
    out << "\n}\n";
    std::printf("\nwrote scorecard JSON to %s\n", scorecard_path);
  }
  if (trace_path != nullptr) {
    // Chrome trace of the failslow-primary MittOS+res run: breaker open /
    // half-open / close instants frame the windows where the walk reordered.
    const size_t index = 1 * strategies.size() + 2;  // scenario 1, strategy 2.
    const harness::RunResult& traced = runner.results()[index];
    std::ofstream out(trace_path);
    out << obs::ChromeTraceJson(traced.trace_spans, "failslow-primary/MittOS+res");
    std::printf("wrote Chrome trace (%zu spans) to %s\n", traced.trace_spans.size(), trace_path);
  }
  return 0;
}
