// Figure 3 (§6): millisecond-level latency dynamism in multi-tenant nodes.
// 20 nodes per device class, probe IOs on a fixed cadence (4KB / 100ms for
// disk; 4KB / 20ms for SSD and OS cache), EC2-style noisy-neighbor episodes.
// Reproduces the three observations:
//   #1 long tails start around p97 (disk >20ms, SSD >0.5ms, cache >0.05ms);
//   #2 noise inter-arrivals are bursty and spread over seconds;
//   #3 mostly only 1-2 of 20 nodes are busy simultaneously.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/latency_recorder.h"
#include "src/common/table.h"
#include "src/noise/ec2_noise.h"
#include "src/noise/noise_injector.h"
#include "src/os/os.h"
#include "src/sim/simulator.h"

namespace {

using namespace mitt;

struct DeviceStudy {
  const char* name;
  os::BackendKind backend;
  DurationNs probe_interval;
  DurationNs busy_threshold;  // "Noisy period" latency threshold (§6).
  bool cache_resident;
};

struct NodeSeries {
  LatencyRecorder latencies;
  std::vector<std::pair<TimeNs, DurationNs>> samples;
};

void RunStudy(const DeviceStudy& study, TimeNs horizon, uint64_t seed) {
  sim::Simulator sim;
  constexpr int kNodes = 20;
  noise::Ec2NoiseParams noise_params;  // Full-scale EC2 preset.
  const noise::Ec2NoiseModel model(noise_params, seed);

  std::vector<std::unique_ptr<os::Os>> systems;
  std::vector<std::unique_ptr<noise::IoNoiseInjector>> io_noise;
  std::vector<std::unique_ptr<noise::CacheNoiseInjector>> cache_noise;
  std::vector<uint64_t> probe_files;
  auto series = std::make_shared<std::vector<NodeSeries>>(kNodes);

  for (int node = 0; node < kNodes; ++node) {
    os::OsOptions opt;
    opt.backend = study.backend;
    opt.mitt_enabled = false;
    opt.seed = seed ^ static_cast<uint64_t>(node) * 31;
    systems.push_back(std::make_unique<os::Os>(&sim, opt));
    os::Os& target = *systems.back();
    const int64_t probe_size = 4LL << 30;  // 4 GB probe region (3.5GB file, §6).
    probe_files.push_back(target.CreateFile(probe_size));
    if (study.cache_resident) {
      target.Prefault(probe_files.back(), 0, probe_size);
      noise::CacheNoiseInjector::Options copt;
      copt.file = probe_files.back();
      copt.file_size = probe_size;
      copt.drop_fraction_per_intensity = 0.02;
      cache_noise.push_back(std::make_unique<noise::CacheNoiseInjector>(
          &sim, &target, model.GenerateSchedule(node, horizon), copt,
          seed ^ (0xCA0ULL + static_cast<uint64_t>(node))));
      cache_noise.back()->Start();
    } else {
      const int64_t noise_size = 200LL << 30;
      const uint64_t noise_file = target.CreateFile(noise_size);
      noise::IoNoiseInjector::Options nopt;
      // SSD noise must spread across chips to be visible to random probes:
      // large striped writes touch most of the 128 chips at once.
      nopt.io_size = study.backend == os::BackendKind::kSsd ? (512 << 10) : (1 << 20);
      nopt.streams_per_intensity = study.backend == os::BackendKind::kSsd ? 3 : 2;
      nopt.op = study.backend == os::BackendKind::kSsd ? sched::IoOp::kWrite
                                                       : sched::IoOp::kRead;
      io_noise.push_back(std::make_unique<noise::IoNoiseInjector>(
          &sim, &target, noise_file, noise_size, model.GenerateSchedule(node, horizon), nopt,
          seed ^ (0xAB00ULL + static_cast<uint64_t>(node))));
      io_noise.back()->Start();
    }
  }

  // Probers: one 4KB read per interval per node ("≥20ms sleep is used").
  Rng probe_rng(seed ^ 0x9807);
  for (int node = 0; node < kNodes; ++node) {
    auto loop = std::make_shared<std::function<void()>>();
    os::Os* target = systems[static_cast<size_t>(node)].get();
    const uint64_t file = probe_files[static_cast<size_t>(node)];
    *loop = [&sim, &probe_rng, series, node, target, file, horizon, &study, loop] {
      if (sim.Now() >= horizon) {
        return;
      }
      os::Os::ReadArgs args;
      args.file = file;
      args.offset = probe_rng.UniformInt(0, (4LL << 30) - 8192);
      args.size = 4096;
      args.bypass_cache = !study.cache_resident;
      const TimeNs start = sim.Now();
      target->Read(args, [&sim, series, node, start, loop, &study, horizon](Status) {
        NodeSeries& s = (*series)[static_cast<size_t>(node)];
        s.latencies.Record(sim.Now() - start);
        s.samples.emplace_back(start, sim.Now() - start);
        const TimeNs next = start + study.probe_interval;
        sim.ScheduleAt(next, [loop] { (*loop)(); });
      });
    };
    sim.Schedule(node * Millis(1), [loop] { (*loop)(); });
  }

  sim.RunUntil(horizon + Seconds(2));
  sim.Run();

  // --- Fig 3a-c: per-node latency percentiles (aggregate + spread) ---
  LatencyRecorder all;
  for (const auto& s : *series) {
    for (const DurationNs v : s.latencies.samples()) {
      all.Record(v);
    }
  }
  std::printf("\n--- Fig 3 (%s): probe latency CDF, %d nodes x %zu probes ---\n", study.name,
              kNodes, (*series)[0].latencies.count());
  Table lat({"pct", "aggregate (ms)", "min node (ms)", "max node (ms)"});
  for (const double p : {50.0, 90.0, 97.0, 99.0, 99.9}) {
    DurationNs lo = (*series)[0].latencies.Percentile(p);
    DurationNs hi = lo;
    for (const auto& s : *series) {
      lo = std::min(lo, s.latencies.Percentile(p));
      hi = std::max(hi, s.latencies.Percentile(p));
    }
    lat.AddRow({"p" + Table::Num(p, p == static_cast<int>(p) ? 0 : 1),
                Table::Num(ToMillis(all.Percentile(p)), 3), Table::Num(ToMillis(lo), 3),
                Table::Num(ToMillis(hi), 3)});
  }
  lat.Print();
  std::printf("fraction of probes above busy threshold (%.2fms): %.2f%%\n",
              ToMillis(study.busy_threshold), 100.0 * (1.0 - all.FractionBelow(study.busy_threshold)));

  // --- Fig 3d-f: noisy-period inter-arrival spread ---
  LatencyRecorder inter_arrivals;
  for (const auto& s : *series) {
    TimeNs last_noisy = -1;
    for (const auto& [at, lat_ns] : s.samples) {
      if (lat_ns > study.busy_threshold) {
        if (last_noisy >= 0 && at - last_noisy > study.probe_interval) {
          inter_arrivals.Record(at - last_noisy);
        }
        last_noisy = at;
      }
    }
  }
  if (!inter_arrivals.empty()) {
    std::printf("noise inter-arrivals: p25=%.1fs p50=%.1fs p75=%.1fs p95=%.1fs (bursty spread)\n",
                ToSeconds(inter_arrivals.Percentile(25)), ToSeconds(inter_arrivals.Percentile(50)),
                ToSeconds(inter_arrivals.Percentile(75)), ToSeconds(inter_arrivals.Percentile(95)));
  }

  // --- Fig 3g: #nodes busy simultaneously (100ms windows) ---
  const auto windows = static_cast<size_t>(horizon / Millis(100));
  std::vector<std::vector<char>> busy_by_window(kNodes, std::vector<char>(windows, 0));
  for (int node = 0; node < kNodes; ++node) {
    for (const auto& [at, lat_ns] : (*series)[static_cast<size_t>(node)].samples) {
      const auto w = static_cast<size_t>(at / Millis(100));
      if (w < windows && lat_ns > study.busy_threshold) {
        busy_by_window[static_cast<size_t>(node)][w] = 1;
      }
    }
  }
  std::vector<int> busy_hist(6, 0);
  for (size_t w = 0; w < windows; ++w) {
    int busy = 0;
    for (int node = 0; node < kNodes; ++node) {
      busy += busy_by_window[static_cast<size_t>(node)][w];
    }
    ++busy_hist[static_cast<size_t>(std::min(busy, 5))];
  }
  std::printf("P(N nodes busy simultaneously): ");
  for (int n = 0; n <= 4; ++n) {
    std::printf("N=%d:%.1f%% ", n, 100.0 * busy_hist[static_cast<size_t>(n)] / windows);
  }
  std::printf("N>=5:%.1f%%\n", 100.0 * busy_hist[5] / windows);
}

}  // namespace

int main() {
  std::printf("=== Figure 3: millisecond dynamism (EC2-style multi-tenant noise) ===\n");
  const TimeNs horizon = Seconds(240);  // 4 simulated minutes per device class.
  RunStudy({"Disk", os::BackendKind::kDiskCfq, Millis(100), Millis(20), false}, horizon, 31);
  RunStudy({"SSD", os::BackendKind::kSsd, Millis(20), kMillisecond, false}, horizon, 32);
  RunStudy({"OS cache", os::BackendKind::kDiskCfq, Millis(20), Micros(50), true}, horizon, 33);
  return 0;
}
