// Ablation (§7.6's side remarks): how much each precision feature buys.
//   * MittCFQ "without our precision improvements, its inaccuracy can be as
//     high as 47%": we disable (a) the calibration feedback loop and (b) the
//     profiled service model (flat 6ms estimate instead).
//   * MittSSD "without the improvements, inaccuracy can rise up to 6%": we
//     disable (a) the per-page program-time pattern and (b) per-chip
//     tracking (single-queue strawman).

#include <cstdio>

#include "bench/accuracy_replay.h"
#include "src/common/table.h"

namespace {

using namespace mitt;

double MeanCfqInaccuracy(const bench::AccuracyOptions& opt) {
  double sum = 0;
  int n = 0;
  for (const auto& profile : workload::PaperTraceProfiles()) {
    sum += bench::RunAccuracyReplay(profile, opt).inaccuracy_pct;
    ++n;
  }
  return sum / n;
}

}  // namespace

int main() {
  std::printf("=== Ablation: precision features vs prediction inaccuracy ===\n\n");

  Table cfq({"MittCFQ variant", "mean inaccuracy %"});
  {
    bench::AccuracyOptions opt;
    opt.backend = os::BackendKind::kDiskCfq;
    opt.rate_scale = 0.08;  // Disk-feasible replay rate (see bench_fig9).
    opt.max_ios = 2500;
    cfq.AddRow({"full (profile + calibration)", Table::Num(MeanCfqInaccuracy(opt), 2)});

    bench::AccuracyOptions no_cal = opt;
    no_cal.calibrate = false;
    cfq.AddRow({"no calibration", Table::Num(MeanCfqInaccuracy(no_cal), 2)});

    bench::AccuracyOptions flat = opt;
    flat.mitt_cfq.use_profile = false;  // Flat 6ms service estimate.
    cfq.AddRow({"no profiled model (flat 6ms)", Table::Num(MeanCfqInaccuracy(flat), 2)});

    bench::AccuracyOptions both = opt;
    both.calibrate = false;
    both.mitt_cfq.use_profile = false;
    cfq.AddRow({"neither (strawman)", Table::Num(MeanCfqInaccuracy(both), 2)});
  }
  cfq.Print();

  std::printf("\n");
  Table ssd({"MittSSD variant", "mean inaccuracy %"});
  {
    bench::AccuracyOptions opt;
    opt.backend = os::BackendKind::kSsd;
    opt.rate_scale = 16.0;
    opt.max_ios = 12000;
    double full = 0;
    double no_pattern = 0;
    double single_queue = 0;
    int n = 0;
    for (const auto& profile : workload::PaperTraceProfiles()) {
      full += bench::RunAccuracyReplay(profile, opt).inaccuracy_pct;
      bench::AccuracyOptions np = opt;
      np.mitt_ssd.use_program_pattern = false;
      no_pattern += bench::RunAccuracyReplay(profile, np).inaccuracy_pct;
      bench::AccuracyOptions sq = opt;
      sq.mitt_ssd.per_chip_tracking = false;
      single_queue += bench::RunAccuracyReplay(profile, sq).inaccuracy_pct;
      ++n;
    }
    ssd.AddRow({"full (per-chip + program pattern)", Table::Num(full / n, 2)});
    ssd.AddRow({"no program-time pattern", Table::Num(no_pattern / n, 2)});
    ssd.AddRow({"single-queue strawman (no per-chip)", Table::Num(single_queue / n, 2)});
  }
  ssd.Print();

  std::printf("\nExpected ordering: full < ablated variants; the paper quotes 47%% worst-case\n"
              "for CFQ without precision features and up to 6%% for SSD.\n");
  return 0;
}
