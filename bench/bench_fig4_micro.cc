// Figure 4 (§7.1): microbenchmarks. 3-node cluster, every get() initially
// directed at the noisy node, and three lines per plot: NoNoise, Base
// (vanilla OS, noise), Mitt* (MittOS, noise).
//
//   (a) MittCFQ, noise at lower priority than the DB  -> Base tail from ~p80;
//   (b) MittCFQ, noise at higher (RealTime) priority  -> Base hurt from p0;
//   (c) MittSSD, 64KB-write noise, 2ms deadline;
//   (d) MittCache, ~20% of cached data dropped, tiny deadline.

#include <chrono>
#include <cstdio>

#include "src/harness/experiment.h"

namespace {

using namespace mitt;
using harness::StrategyKind;

// Wall-clock of this bench on the dev box at f313402, the commit before the
// hot-path overhaul (median of repeated runs). Machine-dependent: recalibrate
// when moving boxes. Printed to stderr so stdout stays byte-comparable
// across commits.
constexpr double kPreOverhaulSeconds = 0.46;

harness::ExperimentOptions MicroBase(uint64_t seed) {
  harness::ExperimentOptions opt;
  opt.num_nodes = 3;
  opt.num_clients = 2;
  opt.measure_requests = 2500;
  opt.warmup_requests = 200;
  opt.pin_primary_node = 0;
  opt.noise = harness::NoiseKind::kContinuous;
  opt.continuous_intensity = 2;
  opt.seed = seed;
  return opt;
}

void RunCase(const char* title, harness::ExperimentOptions opt,
             const std::vector<double>& percentiles) {
  harness::ExperimentOptions quiet_opt = opt;
  quiet_opt.noise = harness::NoiseKind::kNone;
  // Three independent worlds, fanned out across the trial pool; results come
  // back in trial order, identical to a serial run.
  const auto results = harness::RunTrialsParallel({
      {quiet_opt, StrategyKind::kBase, "NoNoise"},
      {opt, StrategyKind::kBase, ""},
      {opt, StrategyKind::kMittos, ""},
  });
  const auto& mitt = results[2];

  std::printf("\n--- %s ---\n", title);
  harness::PrintPercentileTable(results, percentiles, /*user_level=*/false);
  std::printf("MittOS failovers: %lu / %lu gets\n",
              static_cast<unsigned long>(mitt.ebusy_failovers),
              static_cast<unsigned long>(mitt.requests));
}

}  // namespace

int main() {
  const auto wall_start = std::chrono::steady_clock::now();
  std::printf("=== Figure 4: microbenchmarks (3 nodes, requests hit the noisy node) ===\n");

  {
    harness::ExperimentOptions opt = MicroBase(41);
    opt.deadline = Millis(20);
    opt.noise_io_size = 4096;  // "4 threads of 4KB random reads" (§7.1).
    opt.noise_priority = 7;    // Noise *below* the DB's priority (Fig 4a).
    RunCase("Fig 4a: MittCFQ, low-priority noise (deadline 20ms)", opt,
            {20, 50, 80, 90, 95, 99});
  }
  {
    harness::ExperimentOptions opt = MicroBase(42);
    opt.deadline = Millis(20);
    opt.noise_io_size = 4096;
    opt.noise_class = sched::IoClass::kRealTime;  // Noise above the DB (Fig 4b).
    opt.noise_priority = 0;
    RunCase("Fig 4b: MittCFQ, high-priority noise (deadline 20ms)", opt,
            {5, 20, 50, 80, 90, 95, 99});
  }
  {
    harness::ExperimentOptions opt = MicroBase(43);
    opt.backend = os::BackendKind::kSsd;
    // Reads queued behind tenant writes wait 1-2ms (one or two page
    // programs); a 1ms SLO separates "clean chip" from "queued behind a
    // program", the distinction Fig 4c demonstrates.
    opt.deadline = kMillisecond;
    opt.noise_op = sched::IoOp::kWrite;
    // The writer tenant must keep a meaningful fraction of the 128 chips
    // programming (1-2ms each) for reads to queue behind writes.
    opt.noise_io_size = 256 << 10;
    opt.noise_streams = 3;
    opt.continuous_intensity = 1;
    RunCase("Fig 4c: MittSSD, 64KB-write noise (deadline 2ms)", opt,
            {20, 50, 80, 90, 95, 99});
  }
  {
    harness::ExperimentOptions opt = MicroBase(44);
    opt.access = kv::AccessPath::kMmapAddrCheck;
    opt.warm_fraction = 1.0;
    opt.num_keys_per_node = 1 << 18;  // 1 GB dataset...
    opt.cache_pages = 1 << 19;        // ...in a 2 GB page cache.
    opt.deadline = Micros(100);       // "The user expects an in-memory read."
    opt.noise = harness::NoiseKind::kStaticCacheDrop;
    opt.noise_only_node = 0;
    opt.cache_drop_fraction = 0.4;  // x0.5 node factor -> ~20% swapped out.
    RunCase("Fig 4d: MittCache, ~20% of cached data dropped (deadline 0.1ms)", opt,
            {20, 50, 80, 90, 95, 99});
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  std::fprintf(stderr, "[perf] fig4 wall-clock %.2fs; pre-overhaul baseline %.2fs (%.2fx)\n",
               wall, kPreOverhaulSeconds, kPreOverhaulSeconds / wall);
  return 0;
}
