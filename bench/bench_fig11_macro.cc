// Figure 11 (§7.8.1): MittCFQ colocated with filebench macrobenchmarks
// (fileserver / varmail / webserver on different nodes) and Hadoop FB2010
// batch jobs. Expected: Base shows a long heavy tail (~15% of IOs slow),
// Hedged shortens it, MittCFQ is more effective overall — but above ~p99
// Hedged can win (third-retry-with-disabled-deadline lands on busy nodes).

#include <cstdio>

#include "src/harness/experiment.h"

int main() {
  using namespace mitt;
  using harness::StrategyKind;

  harness::ExperimentOptions opt;
  opt.num_nodes = 20;
  opt.num_clients = 20;
  opt.measure_requests = 6000;
  opt.warmup_requests = 300;
  opt.noise = harness::NoiseKind::kMacroMix;
  opt.deadline = -1;
  opt.seed = 20170107;

  std::printf("=== Figure 11: MittCFQ with macrobenchmark + Hadoop noise ===\n");
  harness::Experiment experiment(opt);
  const auto results = experiment.RunAll({StrategyKind::kBase, StrategyKind::kHedged,
                                          StrategyKind::kMittos, StrategyKind::kMittosWait});
  std::printf("deadline / hedge delay = Base p95 = %.2f ms\n\n",
              ToMillis(experiment.derived_p95()));

  std::printf("--- Fig 11a: get() latency percentiles ---\n");
  harness::PrintPercentileTable(results, {20, 50, 75, 85, 90, 95, 99, 99.9},
                                /*user_level=*/false);

  std::printf("\n--- Fig 11b: %% latency reduction of MittCFQ vs Hedged per percentile ---\n");
  harness::PrintReductionTable(results[2], {results[1]}, {40, 60, 80, 90, 95, 99, 99.9},
                               /*user_level=*/false);

  std::printf(
      "\n--- §7.8.1 extension: EBUSY-with-wait-time (informed last try) ---\n"
      "The plain MittOS 3rd try disables the deadline blindly; with wait hints the\n"
      "last try goes to the least-busy replica, recovering the >p99 range:\n");
  harness::PrintReductionTable(results[3], {results[1]}, {90, 95, 99, 99.9},
                               /*user_level=*/false);
  return 0;
}
