// Figure 9 (§7.6): prediction inaccuracy of MittCFQ and MittSSD on five
// production-like block traces (synthetic DAPPS/DTRS/EXCH/LMBE/TPCC), with
// deadline = each trace's p95 latency. EBUSY is flagged on the descriptor
// rather than returned (accuracy-accounting mode), so false positives and
// false negatives can be measured against actual completion times.
// Expected: total inaccuracy well under a few percent for both predictors,
// and small mean deviations for the mispredicted IOs.

#include <cstdio>
#include <vector>

#include "bench/accuracy_replay.h"
#include "src/common/table.h"
#include "src/harness/experiment.h"

int main() {
  using namespace mitt;

  std::printf("=== Figure 9: prediction inaccuracy (p95 deadline per trace) ===\n\n");

  // Each (trace, backend) replay is an independent simulation; fan all of
  // them out across the trial pool. Trial 2k is trace k on disk+CFQ, trial
  // 2k+1 is trace k on the SSD.
  const auto profiles = workload::PaperTraceProfiles();
  const auto results = harness::RunTrials<bench::AccuracyResult>(
      profiles.size() * 2, [&profiles](size_t i) {
        const auto& profile = profiles[i / 2];
        bench::AccuracyOptions opt;
        if (i % 2 == 0) {
          opt.backend = os::BackendKind::kDiskCfq;
          // Slow each trace to a rate one spindle can absorb (~40 IOPS
          // foreground): the paper replays on a real disk, so the traces are
          // disk-feasible.
          opt.rate_scale = ToMillis(profile.mean_interarrival) / 25.0;
          opt.max_ios = 4000;
        } else {
          opt.backend = os::BackendKind::kSsd;
          opt.rate_scale = 16.0;  // Re-rate more intensive for 128 chips (§7.6).
          opt.max_ios = 20000;
        }
        return bench::RunAccuracyReplay(profile, opt);
      });

  Table table({"Trace", "CFQ FP%", "CFQ FN%", "CFQ total%", "CFQ wrong-diff",
               "SSD FP%", "SSD FN%", "SSD total%", "SSD wrong-diff"});
  for (size_t k = 0; k < profiles.size(); ++k) {
    const auto& profile = profiles[k];
    const auto& disk = results[2 * k];
    const auto& ssd = results[2 * k + 1];

    table.AddRow({profile.name, Table::Num(disk.false_positive_pct, 2),
                  Table::Num(disk.false_negative_pct, 2), Table::Num(disk.inaccuracy_pct, 2),
                  Table::Num(disk.mean_wrong_diff_ms, 2) + "ms",
                  Table::Num(ssd.false_positive_pct, 2), Table::Num(ssd.false_negative_pct, 2),
                  Table::Num(ssd.inaccuracy_pct, 2),
                  Table::Num(ssd.mean_wrong_diff_ms, 2) + "ms"});
  }
  table.Print();
  std::printf("\nExpected: sub-percent to low-percent inaccuracy with the full precision\n"
              "features (the paper reports 0.5-0.9%% for MittCFQ and <=0.8%% for MittSSD).\n");
  return 0;
}
