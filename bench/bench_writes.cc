// §7.8.6: write latencies. YCSB write-only workload against DocStore with
// heavy disk noise. Writes are buffered in memory and flushed in the
// background (and the drive's NVRAM absorbs sync writes), so the Base and
// NoNoise latency lines should sit nearly on top of each other.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/latency_recorder.h"
#include "src/common/table.h"
#include "src/noise/noise_injector.h"
#include "src/sim/simulator.h"
#include "src/workload/ycsb.h"

namespace {

using namespace mitt;

LatencyRecorder RunWrites(bool with_noise) {
  sim::Simulator sim;
  cluster::Cluster::Options copt;
  copt.num_nodes = 3;
  copt.node.num_keys = 1 << 20;
  copt.node.os.mitt_enabled = false;
  copt.seed = 99;
  cluster::Cluster cluster(&sim, copt);

  std::vector<std::unique_ptr<noise::IoNoiseInjector>> injectors;
  if (with_noise) {
    for (int node = 0; node < 3; ++node) {
      kv::DocStoreNode& n = cluster.node(node);
      const int64_t size = 100LL << 30;
      const uint64_t file = n.os().CreateFile(size);
      noise::IoNoiseInjector::Options nopt;
      injectors.push_back(std::make_unique<noise::IoNoiseInjector>(
          &sim, &n.os(), file, size,
          std::vector<noise::NoiseEpisode>{{0, Seconds(60), 3}}, nopt,
          static_cast<uint64_t>(node) + 5));
      injectors.back()->Start();
    }
  }

  workload::YcsbWorkload::Options wopt;
  wopt.num_keys = 1 << 20;
  wopt.read_fraction = 0.0;  // Write-only.
  wopt.seed = 7;
  workload::YcsbWorkload ycsb(wopt);

  LatencyRecorder latencies;
  size_t completed = 0;
  constexpr size_t kTarget = 6000;
  constexpr int kClients = 8;

  auto issue = std::make_shared<std::function<void()>>();
  size_t issued = 0;
  *issue = [&] {
    if (issued >= kTarget) {
      return;
    }
    ++issued;
    const uint64_t key = ycsb.Next().key;
    const int primary = cluster.ReplicasOf(key)[0];
    const TimeNs start = sim.Now();
    cluster.network().Deliver([&, key, primary, start] {
      cluster.node(primary).HandlePut(key, [&, start](Status) {
        cluster.network().Deliver([&, start] {
          latencies.Record(sim.Now() - start);
          ++completed;
          (*issue)();
        });
      });
    });
  };
  for (int c = 0; c < kClients; ++c) {
    (*issue)();
  }
  sim.RunUntilPredicate([&] { return completed >= kTarget; });
  return latencies;
}

}  // namespace

int main() {
  std::printf("=== §7.8.6: write latencies are unaffected by disk contention ===\n");
  const LatencyRecorder nonoise = RunWrites(false);
  const LatencyRecorder base = RunWrites(true);

  Table table({"pct", "NoNoise (ms)", "Base+noise (ms)"});
  for (const double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    table.AddRow({"p" + Table::Num(p, p == static_cast<int>(p) ? 0 : 1),
                  Table::Num(ToMillis(nonoise.Percentile(p)), 3),
                  Table::Num(ToMillis(base.Percentile(p)), 3)});
  }
  table.Print();
  std::printf("\nExpected: the two columns nearly coincide (buffered writes + NVRAM).\n");
  return 0;
}
