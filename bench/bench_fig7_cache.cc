// Figure 7 (§7.4): MittCache vs Hedged with EC2-style cache contention on 20
// nodes. All data starts in memory; episodic evictions (the EC2 cache-miss
// rates of Fig. 3c) force page faults; the addrcheck() path fails over
// instantly instead of waiting for the disk fill. Includes the SF sweep of
// Fig. 7b. Expected: large reductions at p95-p99, small/negative at low
// percentiles where the network hop dominates.

#include <cstdio>

#include "src/harness/experiment.h"

int main() {
  using namespace mitt;
  using harness::StrategyKind;

  harness::ExperimentOptions base_opt;
  base_opt.num_nodes = 20;
  base_opt.num_clients = 20;
  base_opt.measure_requests = 6000;
  base_opt.warmup_requests = 300;
  base_opt.access = kv::AccessPath::kMmapAddrCheck;
  base_opt.warm_fraction = 1.0;
  base_opt.num_keys_per_node = 1 << 18;  // 1 GB per node...
  base_opt.cache_pages = 1 << 19;      // ...in a 2 GB page cache.
  base_opt.noise = harness::NoiseKind::kStaticCacheDrop;
  base_opt.cache_drop_fraction = 0.12;  // Per-node P% from the Fig 3c miss rates.
  // A small deadline: "addrcheck returns EBUSY when the data is not cached."
  base_opt.deadline = Micros(100);
  base_opt.hedge_delay = -1;  // p95 of Base (sub-ms here).
  base_opt.seed = 20170104;

  std::printf("=== Figure 7: MittCache vs Hedged (20 nodes, cache contention) ===\n");
  harness::Experiment probe(base_opt);
  const auto probe_results = probe.RunAll({StrategyKind::kBase});
  const DurationNs p95 = probe.derived_p95();
  std::printf("hedge delay = Base p95 = %.3f ms; deadline = 0.100 ms\n", ToMillis(p95));

  for (const int sf : {1, 2, 5, 10}) {
    harness::ExperimentOptions opt = base_opt;
    opt.scale_factor = sf;
    opt.hedge_delay = p95;
    opt.measure_requests = static_cast<size_t>(6000 / sf) + 400;
    harness::Experiment experiment(opt);
    const auto base = experiment.Run(StrategyKind::kBase);
    const auto hedged = experiment.Run(StrategyKind::kHedged);
    const auto mitt = experiment.Run(StrategyKind::kMittos);

    std::printf("\n--- Fig 7, SF=%d (user-request latencies) ---\n", sf);
    harness::PrintPercentileTable({base, hedged, mitt}, {50, 75, 90, 95, 99},
                                  /*user_level=*/true);
    std::printf("reduction of MittCache vs Hedged:\n");
    harness::PrintReductionTable(mitt, {hedged}, {75, 90, 95, 99}, /*user_level=*/true);
  }
  return 0;
}
