// Figure 5 (§7.2): MITTCFQ with EC2 noise on a 20-node MongoDB-like cluster.
//
//   (a) latency CDF of YCSB get()s under Base / AppTO / Clone / Hedged /
//       MittCFQ with the EC2 disk-noise replay;
//   (b) % latency reduction of MittCFQ vs each technique at avg/p75/p90/
//       p95/p99.
//
// Expected shape (paper): Base > AppTO > Clone > Hedged > MittCFQ above p95;
// Clone worse than Base below ~p93 (self-inflicted load); MittCFQ cuts
// Hedged by ~20-30% at p95.

#include <cstdio>

#include "src/harness/experiment.h"

int main() {
  using namespace mitt;
  using harness::StrategyKind;

  harness::ExperimentOptions opt;
  opt.num_nodes = 20;
  opt.num_clients = 20;
  opt.measure_requests = 8000;
  opt.warmup_requests = 400;
  opt.backend = os::BackendKind::kDiskCfq;
  opt.access = kv::AccessPath::kRead;
  opt.noise = harness::NoiseKind::kEc2;
  opt.ec2 = harness::CompressedEc2Noise();
  opt.seed = 20170101;

  harness::Experiment experiment(opt);
  const auto results =
      experiment.RunAll({StrategyKind::kBase, StrategyKind::kAppTimeout, StrategyKind::kClone,
                         StrategyKind::kHedged, StrategyKind::kMittos});

  std::printf("=== Figure 5: MittCFQ with EC2 noise (20-node MongoDB-like cluster) ===\n");
  std::printf("deadline / timeout / hedge delay = Base p95 = %.2f ms\n\n",
              ToMillis(experiment.derived_p95()));

  std::printf("--- Fig 5a: get() latency percentiles (CDF view) ---\n");
  harness::PrintPercentileTable(results, {50, 75, 90, 93, 95, 97, 99, 99.9},
                                /*user_level=*/false);

  std::printf("\n--- Fig 5b: %% latency reduction of MittCFQ ---\n");
  harness::PrintReductionTable(results.back(), {results[3], results[2], results[1]},
                               {75, 90, 95, 99}, /*user_level=*/false);

  std::printf("\nMittOS EBUSY failovers: %lu of %lu requests; Hedged hedges: %lu\n",
              static_cast<unsigned long>(results[4].ebusy_failovers),
              static_cast<unsigned long>(results[4].requests),
              static_cast<unsigned long>(results[3].hedges_sent));
  return 0;
}
