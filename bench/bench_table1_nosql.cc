// Table 1 (§2): "no TT in NoSQL". Six NoSQL systems modelled by their
// client-side tail-tolerance configurations, driven against a severe
// one-second rotating contention across 3 replicas. Expected findings:
//   * no system fails over in its default configuration (5-75s timeouts);
//   * with a forced 100ms timeout, three systems fail over and three surface
//     read errors to the user;
//   * only two systems support cloning; none support hedged/tied requests.

#include <cstdio>
#include <string>

#include "src/common/table.h"
#include "src/study/nosql_study.h"

int main() {
  using namespace mitt;

  study::NosqlStudyOptions options;
  options.requests = 2000;
  const auto rows = study::RunNosqlStudy(options);

  std::printf("=== Table 1: tail tolerance in NoSQL ===\n");
  Table table({"System", "Def.TT", "TO Val.", "Failover@100ms", "Errors@100ms", "Clone",
               "Hedged/Tied", "default p99 (ms)"});
  for (const auto& row : rows) {
    table.AddRow({row.name, row.default_tt ? "yes" : "no",
                  Table::Num(ToSeconds(row.default_timeout), 0) + "s",
                  row.failover_at_100ms ? "yes" : "NO (read errors)",
                  std::to_string(row.errors_at_100ms), row.supports_clone ? "yes" : "no",
                  row.supports_hedged ? "yes" : "no",
                  Table::Num(ToMillis(row.default_p99), 1)});
  }
  table.Print();

  std::printf(
      "\nReading: every system rides out the 1s rotating contention in its default\n"
      "config (Def.TT = no), because default timeouts are tens of seconds. Forcing a\n"
      "100ms timeout helps only the systems that actually fail over on timeout.\n");
  return 0;
}
