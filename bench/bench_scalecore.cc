// Sharded-engine scale benchmark: one 1000-node ring trial, parallelized
// *inside* the trial by the conservative-window PDES engine
// (src/sim/sharded_engine.h), measured at 1/2/4/8 intra-trial workers.
//
// This is the tentpole deliverable of the sharded-engine PR: bench_simcore
// measures the single-threaded event loop, bench_hotpath the per-IO
// pipeline; this bench measures how far one *trial* scales when its event
// work is spread over shard worker threads. The scenario is the fleet shape
// the paper's figures never reach on one core — 1000 DocStore nodes,
// millions of keys, MittOS clients hammering the ring closed-loop — and the
// metric is simulator events per wall second at each worker count.
//
// Two speedup numbers are reported, because they answer different questions:
//   - events/s per worker count: measured wall clock on THIS host. On a
//     host with fewer cores than workers (CI containers are often 1-2
//     vCPUs) extra workers can only add barrier overhead, so this number
//     saturates at the core count.
//   - critical-path speedup: sim_events / critical_path_events(w) — the sum
//     over conservative windows of the busiest worker's event count, under
//     the engine's static shard map. This is the parallelism the engine
//     *exposes*, is independent of the host, and is bit-deterministic (it
//     is derived from event counts, not timers).
//
// Determinism is asserted, not assumed: every worker count must produce the
// same requests / sim_events / window count / latency percentiles, or the
// bench exits nonzero. Perf is report-only (CI runners are noisy); broken
// bit-identity is a correctness bug and fails loudly.
//
// Usage: bench_scalecore [small]
//   small: 128 nodes / ~0.26M keys / 20k requests — the CI smoke shape.
// Writes BENCH_scalecore.json into the working directory.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/experiment.h"

namespace {

struct WorkerRun {
  int workers = 0;
  double wall_sec = 0;
  double events_per_sec = 0;
  mitt::harness::RunResult result;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mitt;
  using harness::StrategyKind;

  const bool small = argc > 1 && std::strcmp(argv[1], "small") == 0;
  if (argc > 1 && !small) {
    std::fprintf(stderr, "usage: %s [small]\n", argv[0]);
    return 2;
  }

  harness::ExperimentOptions opt;
  opt.num_nodes = small ? 128 : 1000;
  opt.num_clients = small ? 256 : 2000;
  opt.num_keys_per_node = small ? 2048 : 4096;  // Full: 4.096M keys on the ring.
  opt.measure_requests = small ? 20'000 : 2'000'000;
  opt.warmup_requests = small ? 2'000 : 100'000;
  opt.scale_factor = small ? 1 : 10;  // Full: 10 gets per user request -> 21M gets.
  opt.distribution = workload::KeyDistribution::kZipfian;
  opt.backend = os::BackendKind::kSsd;  // µs-scale IO -> ~100x the event density
                                        // per conservative window of the disk
                                        // backend; this bench stresses the
                                        // engine, not the device model.
  opt.cache_pages = 8192;  // Nodes hold 16 MB of docs; keep 1000 cache tables small.
  opt.warm_fraction = 0.5;
  opt.deadline = Millis(13);  // Paper's SLO; skips the Base-derivation pass.
  opt.noise = harness::NoiseKind::kNone;
  opt.seed = 20171000;
  opt.num_shards = small ? 16 : 32;  // Explicit: shard count must not depend
                                     // on worker count (determinism contract).

  const size_t total_gets =
      (opt.measure_requests + opt.warmup_requests) * static_cast<size_t>(opt.scale_factor);
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("=== bench_scalecore: %d-node ring, %lld keys, %zu gets, %d shards ===\n",
              opt.num_nodes,
              static_cast<long long>(opt.num_keys_per_node) * opt.num_nodes, total_gets,
              opt.num_shards);
  std::printf("host cpus: %u (wall-clock scaling saturates at the core count; "
              "critical-path speedup below is host-independent)\n",
              host_cpus);

  const std::vector<int> worker_counts = {1, 2, 4, 8};
  std::vector<WorkerRun> runs;
  for (const int workers : worker_counts) {
    harness::ExperimentOptions wopt = opt;
    wopt.intra_workers = workers;
    harness::Experiment experiment(wopt);
    const auto t0 = std::chrono::steady_clock::now();
    harness::RunResult result = experiment.Run(StrategyKind::kMittos);
    const auto t1 = std::chrono::steady_clock::now();

    WorkerRun run;
    run.workers = workers;
    run.wall_sec = std::chrono::duration<double>(t1 - t0).count();
    run.events_per_sec =
        run.wall_sec > 0 ? static_cast<double>(result.sim_events) / run.wall_sec : 0;
    run.result = std::move(result);
    std::printf(
        "workers=%d  wall=%7.2fs  events=%llu  events/s=%11.0f  windows=%llu  "
        "xshard_msgs=%llu\n",
        workers, run.wall_sec, static_cast<unsigned long long>(run.result.sim_events),
        run.events_per_sec, static_cast<unsigned long long>(run.result.engine_windows),
        static_cast<unsigned long long>(run.result.cross_shard_messages));
    runs.push_back(std::move(run));
  }

  // --- Bit-identity gate: every worker count is the same simulation. ---------
  bool identical = true;
  const harness::RunResult& ref = runs[0].result;
  const std::vector<double> pcts = {50, 90, 95, 99, 99.9};
  const auto ref_get = ref.get_latencies.Percentiles(pcts);
  const auto ref_user = ref.user_latencies.Percentiles(pcts);
  for (size_t i = 1; i < runs.size(); ++i) {
    const harness::RunResult& r = runs[i].result;
    bool same = r.requests == ref.requests && r.sim_events == ref.sim_events &&
                r.engine_windows == ref.engine_windows &&
                r.cross_shard_messages == ref.cross_shard_messages &&
                r.user_errors == ref.user_errors && r.ebusy_failovers == ref.ebusy_failovers &&
                r.sim_duration == ref.sim_duration;
    same = same && r.get_latencies.Percentiles(pcts) == ref_get &&
           r.user_latencies.Percentiles(pcts) == ref_user;
    if (!same) {
      identical = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: workers=%d diverged from workers=%d "
                   "(requests %llu vs %llu, events %llu vs %llu, duration %lld vs %lld)\n",
                   runs[i].workers, runs[0].workers,
                   static_cast<unsigned long long>(r.requests),
                   static_cast<unsigned long long>(ref.requests),
                   static_cast<unsigned long long>(r.sim_events),
                   static_cast<unsigned long long>(ref.sim_events),
                   static_cast<long long>(r.sim_duration),
                   static_cast<long long>(ref.sim_duration));
    }
  }
  std::printf("determinism across worker counts: %s\n", identical ? "OK" : "FAILED");

  const double base_eps = runs[0].events_per_sec;
  std::printf("wall-clock scaling vs workers=1:");
  for (const WorkerRun& run : runs) {
    std::printf("  %dw %.2fx", run.workers,
                base_eps > 0 ? run.events_per_sec / base_eps : 0);
  }
  std::printf("\n");

  // Deterministic parallelism exposed by the engine: total events over the
  // busiest worker's events, per hypothetical worker count.
  std::printf("critical-path speedup (host-independent):");
  for (const auto& [w, cp] : ref.critical_path) {
    std::printf("  %dw %.2fx", w,
                cp > 0 ? static_cast<double>(ref.sim_events) / static_cast<double>(cp) : 0);
  }
  std::printf("\n");
  std::printf("p95 get latency: %.2f ms over %llu requests\n",
              ToMillis(ref_get[2]), static_cast<unsigned long long>(ref.requests));

  FILE* out = std::fopen("BENCH_scalecore.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"scalecore\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"workload\": {\"num_nodes\": %d, \"num_clients\": %d,\n"
                 "               \"keys_total\": %lld, \"requests\": %zu,\n"
                 "               \"scale_factor\": %d, \"gets_total\": %zu,\n"
                 "               \"num_shards\": %d, \"seed\": %llu},\n"
                 "  \"host_cpus\": %u,\n"
                 "  \"deterministic_across_workers\": %s,\n"
                 "  \"sim_events\": %llu,\n"
                 "  \"engine_windows\": %llu,\n"
                 "  \"cross_shard_messages\": %llu,\n"
                 "  \"runs\": [\n",
                 small ? "small" : "full", opt.num_nodes, opt.num_clients,
                 static_cast<long long>(opt.num_keys_per_node) * opt.num_nodes,
                 opt.measure_requests + opt.warmup_requests, opt.scale_factor, total_gets,
                 opt.num_shards, static_cast<unsigned long long>(opt.seed), host_cpus,
                 identical ? "true" : "false",
                 static_cast<unsigned long long>(ref.sim_events),
                 static_cast<unsigned long long>(ref.engine_windows),
                 static_cast<unsigned long long>(ref.cross_shard_messages));
    for (size_t i = 0; i < runs.size(); ++i) {
      double cp_speedup = 0;
      for (const auto& [w, cp] : ref.critical_path) {
        if (w == runs[i].workers && cp > 0) {
          cp_speedup = static_cast<double>(ref.sim_events) / static_cast<double>(cp);
        }
      }
      std::fprintf(out,
                   "    {\"workers\": %d, \"wall_sec\": %.3f, \"events_per_sec\": %.0f,\n"
                   "     \"speedup_vs_1\": %.3f, \"critical_path_speedup\": %.3f}%s\n",
                   runs[i].workers, runs[i].wall_sec, runs[i].events_per_sec,
                   base_eps > 0 ? runs[i].events_per_sec / base_eps : 0, cp_speedup,
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_scalecore.json\n");
  }
  return identical ? 0 : 1;
}
