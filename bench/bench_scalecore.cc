// Sharded-engine scale benchmark: one 1000-node ring trial, parallelized
// *inside* the trial by the conservative-window PDES engine
// (src/sim/sharded_engine.h), measured at 1/2/4/8 intra-trial workers.
//
// This bench measures how far one *trial* scales when its event work is
// spread over shard worker threads (bench_simcore measures the
// single-threaded event loop, bench_hotpath the per-IO pipeline). Two shapes:
//
//   ssd  (default): µs-scale IO -> dense conservative windows. Stresses the
//        barrier, the mailbox drain, and the adaptive shard->worker packing.
//   disk: ms-scale IO and low client concurrency -> sparse windows (a
//        handful of events per shard-window), where synchronization cost
//        dominates useful work. Stresses quiet-frontier window fusion; the
//        workers=1 run is repeated with fusion disabled to report the
//        barrier-count and events/s deltas fusion buys.
//
// Speedups reported, because they answer different questions:
//   - events/s per worker count: measured wall clock on THIS host. Only
//     meaningful when the host has at least `workers` cores (CI containers
//     are often 1-2 vCPUs), so each run carries a wall_speedup_valid flag
//     and invalid speedups print as n/a instead of a misleading < 1x.
//   - critical-path speedup: sim_events / critical_path_events(w) — the sum
//     over conservative windows of the busiest worker's event count, under
//     the engine's (adaptive) shard map, with the static s % w map reported
//     alongside. Host-independent and bit-deterministic (derived from event
//     counts, not timers).
//
// Determinism is asserted, not assumed: every worker count must produce the
// same requests / sim_events / window counts / latency percentiles, and the
// fusion-off comparison run must reproduce the same scorecard, or the bench
// exits nonzero. Perf is report-only (CI runners are noisy); broken
// bit-identity is a correctness bug and fails loudly.
//
// Usage: bench_scalecore [small] [disk]
//   small: CI smoke shape (128 nodes).
//   disk:  disk-bound sparse shape (writes BENCH_scalecore_disk.json).
// Writes BENCH_scalecore.json / BENCH_scalecore_disk.json into the cwd.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/experiment.h"

namespace {

struct WorkerRun {
  int workers = 0;
  double wall_sec = 0;
  double events_per_sec = 0;
  bool wall_valid = false;
  mitt::harness::RunResult result;
};

double Lookup(const std::vector<std::pair<int, uint64_t>>& v, int w, uint64_t total) {
  for (const auto& [workers, cp] : v) {
    if (workers == w && cp > 0) {
      return static_cast<double>(total) / static_cast<double>(cp);
    }
  }
  return 0;
}

double Lookup(const std::vector<std::pair<int, double>>& v, int w) {
  for (const auto& [workers, r] : v) {
    if (workers == w) {
      return r;
    }
  }
  return 0;
}

bool SameScorecard(const mitt::harness::RunResult& a, const mitt::harness::RunResult& b,
                   const std::vector<double>& pcts) {
  return a.requests == b.requests && a.sim_events == b.sim_events &&
         a.engine_windows == b.engine_windows &&
         a.cross_shard_messages == b.cross_shard_messages && a.user_errors == b.user_errors &&
         a.ebusy_failovers == b.ebusy_failovers && a.sim_duration == b.sim_duration &&
         a.get_latencies.Percentiles(pcts) == b.get_latencies.Percentiles(pcts) &&
         a.user_latencies.Percentiles(pcts) == b.user_latencies.Percentiles(pcts);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mitt;
  using harness::StrategyKind;

  bool small = false;
  bool disk = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "disk") == 0) {
      disk = true;
    } else {
      std::fprintf(stderr, "usage: %s [small] [disk]\n", argv[0]);
      return 2;
    }
  }

  harness::ExperimentOptions opt;
  opt.num_nodes = small ? 128 : 1000;
  opt.num_keys_per_node = small ? 2048 : 4096;  // Full: 4.096M keys on the ring.
  opt.distribution = workload::KeyDistribution::kZipfian;
  opt.cache_pages = 8192;  // Nodes hold 16 MB of docs; keep 1000 cache tables small.
  opt.warm_fraction = 0.5;
  opt.deadline = Millis(13);  // Paper's SLO; skips the Base-derivation pass.
  opt.noise = harness::NoiseKind::kNone;
  opt.seed = 20171000;
  opt.num_shards = small ? 16 : 32;  // Explicit: shard count must not depend
                                     // on worker count (determinism contract).
  if (disk) {
    // Sparse shape: ms-scale IO and few closed-loop clients leave each
    // conservative window (lookahead ~135µs) holding a handful of events on
    // one or two shards — the regime where barrier cost dominates and the
    // quiet-frontier fusion fast path carries most windows.
    // Client count is deliberately tiny: the quiet-frontier regime needs the
    // whole-world event rate times the lookahead (135µs) to stay well below
    // one, or concurrent request chains keep two shards under every window
    // horizon and no window is provably interaction-free.
    opt.backend = os::BackendKind::kDiskCfq;
    opt.num_clients = 2;
    opt.measure_requests = small ? 4'000 : 40'000;
    opt.warmup_requests = small ? 400 : 2'000;
    opt.scale_factor = 1;
  } else {
    opt.backend = os::BackendKind::kSsd;  // µs-scale IO -> ~100x the event
                                          // density per window of the disk
                                          // backend; stresses the engine,
                                          // not the device model.
    opt.num_clients = small ? 256 : 2000;
    opt.measure_requests = small ? 20'000 : 2'000'000;
    opt.warmup_requests = small ? 2'000 : 100'000;
    opt.scale_factor = small ? 1 : 10;  // Full: 10 gets per request -> 21M gets.
  }

  const size_t total_gets =
      (opt.measure_requests + opt.warmup_requests) * static_cast<size_t>(opt.scale_factor);
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("=== bench_scalecore[%s]: %d-node ring, %lld keys, %zu gets, %d shards ===\n",
              disk ? "disk" : "ssd", opt.num_nodes,
              static_cast<long long>(opt.num_keys_per_node) * opt.num_nodes, total_gets,
              opt.num_shards);
  std::printf("host cpus: %u (wall-clock speedups reported only up to the core count; "
              "critical-path speedup below is host-independent)\n",
              host_cpus);

  const auto run_once = [&opt, host_cpus](int workers, int fusion) {
    harness::ExperimentOptions wopt = opt;
    wopt.intra_workers = workers;
    wopt.engine_fusion = fusion;
    harness::Experiment experiment(wopt);
    const auto t0 = std::chrono::steady_clock::now();
    harness::RunResult result = experiment.Run(StrategyKind::kMittos);
    const auto t1 = std::chrono::steady_clock::now();
    WorkerRun run;
    run.workers = workers;
    run.wall_sec = std::chrono::duration<double>(t1 - t0).count();
    run.events_per_sec =
        run.wall_sec > 0 ? static_cast<double>(result.sim_events) / run.wall_sec : 0;
    run.wall_valid = host_cpus >= static_cast<unsigned>(workers);
    run.result = std::move(result);
    std::printf(
        "workers=%d%s  wall=%7.2fs  events=%llu  events/s=%11.0f  windows=%llu  "
        "fused=%llu  xshard_msgs=%llu\n",
        workers, fusion == 0 ? " (fusion off)" : "", run.wall_sec,
        static_cast<unsigned long long>(run.result.sim_events), run.events_per_sec,
        static_cast<unsigned long long>(run.result.engine_windows),
        static_cast<unsigned long long>(run.result.engine_fused_windows),
        static_cast<unsigned long long>(run.result.cross_shard_messages));
    return run;
  };

  std::vector<WorkerRun> runs;
  runs.push_back(run_once(1, /*fusion=*/-1));
  // The fusion A/B pair runs back to back, alternating, and each arm keeps
  // its fastest wall: small shared hosts show 1.5-2x wall-clock noise on
  // bit-identical work, and min-of-N is the standard de-noiser. Every rep's
  // scorecard is still gated (identical work is what makes min-of-N sound).
  WorkerRun unfused_run = run_once(1, /*fusion=*/0);
  bool fusion_reps_identical = true;
  {
    const std::vector<double> rep_pcts = {50, 90, 95, 99, 99.9};
    for (int rep = 1; rep < 3; ++rep) {
      WorkerRun on = run_once(1, /*fusion=*/-1);
      WorkerRun off = run_once(1, /*fusion=*/0);
      fusion_reps_identical = fusion_reps_identical &&
                              SameScorecard(on.result, runs[0].result, rep_pcts) &&
                              SameScorecard(off.result, unfused_run.result, rep_pcts);
      if (on.wall_sec < runs[0].wall_sec) {
        runs[0] = std::move(on);
      }
      if (off.wall_sec < unfused_run.wall_sec) {
        unfused_run = std::move(off);
      }
    }
  }
  for (const int workers : {2, 4, 8}) {
    runs.push_back(run_once(workers, /*fusion=*/-1));
  }

  // --- Bit-identity gate: every worker count is the same simulation. ---------
  bool identical = true;
  const harness::RunResult& ref = runs[0].result;
  const std::vector<double> pcts = {50, 90, 95, 99, 99.9};
  for (size_t i = 1; i < runs.size(); ++i) {
    const harness::RunResult& r = runs[i].result;
    // Fusion decisions are worker-independent too: the fast-path predicate
    // reads only simulation state, so the fused-window count must match.
    if (!SameScorecard(r, ref, pcts) ||
        r.engine_fused_windows != ref.engine_fused_windows) {
      identical = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: workers=%d diverged from workers=%d "
                   "(requests %llu vs %llu, events %llu vs %llu, duration %lld vs %lld)\n",
                   runs[i].workers, runs[0].workers,
                   static_cast<unsigned long long>(r.requests),
                   static_cast<unsigned long long>(ref.requests),
                   static_cast<unsigned long long>(r.sim_events),
                   static_cast<unsigned long long>(ref.sim_events),
                   static_cast<long long>(r.sim_duration),
                   static_cast<long long>(ref.sim_duration));
    }
  }
  if (!fusion_reps_identical) {
    identical = false;
    std::fprintf(stderr, "DETERMINISM VIOLATION: a fusion A/B rep diverged\n");
  }
  std::printf("determinism across worker counts: %s\n", identical ? "OK" : "FAILED");

  // --- Fusion value: the adjacent workers=1 run with the fast path disabled.
  // Same scorecard (fusion is schedule-preserving, gated), fewer barriers and
  // more events/s with it on (reported; perf itself is not gated).
  const harness::RunResult& unfused = unfused_run.result;
  const double fusion_wall_sec = unfused_run.wall_sec;
  double fusion_barrier_ratio = 0;
  double fusion_events_ratio = 0;
  const bool fusion_identical =
      SameScorecard(unfused, ref, pcts) && unfused.engine_fused_windows == 0;
  {
    if (!fusion_identical) {
      identical = false;
      std::fprintf(stderr, "DETERMINISM VIOLATION: fusion=off diverged from fusion=on\n");
    }
    const double unfused_barriers = static_cast<double>(unfused.engine_windows);
    const double fused_barriers =
        static_cast<double>(ref.engine_windows - ref.engine_fused_windows);
    fusion_barrier_ratio = fused_barriers > 0 ? unfused_barriers / fused_barriers : 0;
    fusion_events_ratio = unfused_run.events_per_sec > 0
                              ? runs[0].events_per_sec / unfused_run.events_per_sec
                              : 0;
    std::printf(
        "fusion (workers=1): barriers %llu -> %llu (%.1fx fewer), events/s %.2fx, "
        "scorecard %s\n",
        static_cast<unsigned long long>(unfused.engine_windows),
        static_cast<unsigned long long>(ref.engine_windows - ref.engine_fused_windows),
        fusion_barrier_ratio, fusion_events_ratio, fusion_identical ? "identical" : "DIVERGED");
  }

  const double base_eps = runs[0].events_per_sec;
  std::printf("wall-clock scaling vs workers=1:");
  for (const WorkerRun& run : runs) {
    if (run.wall_valid && base_eps > 0) {
      std::printf("  %dw %.2fx", run.workers, run.events_per_sec / base_eps);
    } else {
      std::printf("  %dw n/a", run.workers);  // Fewer cores than workers.
    }
  }
  std::printf("\n");

  // Deterministic parallelism exposed by the engine: total events over the
  // busiest worker's events, adaptive map vs the static s % w map.
  std::printf("critical-path speedup (host-independent, adaptive/static):");
  for (const auto& [w, cp] : ref.critical_path) {
    std::printf("  %dw %.2fx/%.2fx", w,
                cp > 0 ? static_cast<double>(ref.sim_events) / static_cast<double>(cp) : 0,
                Lookup(ref.critical_path_static, w, ref.sim_events));
  }
  std::printf("\n");
  std::printf("imbalance max/mean at 8w: adaptive %.3f, static %.3f\n",
              Lookup(ref.imbalance, 8), Lookup(ref.imbalance_static, 8));
  std::printf("events/window: p50 %.0f, p99 %.0f; windows=%llu fused=%llu\n",
              ref.events_per_window_p50, ref.events_per_window_p99,
              static_cast<unsigned long long>(ref.engine_windows),
              static_cast<unsigned long long>(ref.engine_fused_windows));
  const auto ref_get = ref.get_latencies.Percentiles(pcts);
  std::printf("p95 get latency: %.2f ms over %llu requests\n",
              ToMillis(ref_get[2]), static_cast<unsigned long long>(ref.requests));

  const char* json_name = disk ? "BENCH_scalecore_disk.json" : "BENCH_scalecore.json";
  FILE* out = std::fopen(json_name, "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"scalecore\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"shape\": \"%s\",\n"
                 "  \"workload\": {\"num_nodes\": %d, \"num_clients\": %d,\n"
                 "               \"keys_total\": %lld, \"requests\": %zu,\n"
                 "               \"scale_factor\": %d, \"gets_total\": %zu,\n"
                 "               \"num_shards\": %d, \"seed\": %llu},\n"
                 "  \"host_cpus\": %u,\n"
                 "  \"deterministic_across_workers\": %s,\n"
                 "  \"sim_events\": %llu,\n"
                 "  \"engine_windows\": %llu,\n"
                 "  \"fused_windows\": %llu,\n"
                 "  \"cross_shard_messages\": %llu,\n"
                 "  \"events_per_window_p50\": %.1f,\n"
                 "  \"events_per_window_p99\": %.1f,\n"
                 "  \"imbalance_adaptive_8w\": %.4f,\n"
                 "  \"imbalance_static_8w\": %.4f,\n"
                 "  \"fusion\": {\"scorecard_identical\": %s, \"barrier_ratio\": %.2f,\n"
                 "             \"events_per_sec_ratio\": %.3f, \"unfused_wall_sec\": %.3f},\n"
                 "  \"runs\": [\n",
                 small ? "small" : "full", disk ? "disk" : "ssd", opt.num_nodes,
                 opt.num_clients, static_cast<long long>(opt.num_keys_per_node) * opt.num_nodes,
                 opt.measure_requests + opt.warmup_requests, opt.scale_factor, total_gets,
                 opt.num_shards, static_cast<unsigned long long>(opt.seed), host_cpus,
                 identical ? "true" : "false",
                 static_cast<unsigned long long>(ref.sim_events),
                 static_cast<unsigned long long>(ref.engine_windows),
                 static_cast<unsigned long long>(ref.engine_fused_windows),
                 static_cast<unsigned long long>(ref.cross_shard_messages),
                 ref.events_per_window_p50, ref.events_per_window_p99,
                 Lookup(ref.imbalance, 8), Lookup(ref.imbalance_static, 8),
                 fusion_identical ? "true" : "false", fusion_barrier_ratio,
                 fusion_events_ratio, fusion_wall_sec);
    for (size_t i = 0; i < runs.size(); ++i) {
      const WorkerRun& run = runs[i];
      const double cp_speedup = Lookup(ref.critical_path, run.workers, ref.sim_events);
      const double cp_static = Lookup(ref.critical_path_static, run.workers, ref.sim_events);
      std::fprintf(out,
                   "    {\"workers\": %d, \"wall_sec\": %.3f, \"events_per_sec\": %.0f,\n"
                   "     \"wall_speedup_valid\": %s, \"speedup_vs_1\": %.3f,\n"
                   "     \"critical_path_speedup\": %.3f, "
                   "\"critical_path_speedup_static\": %.3f,\n"
                   "     \"imbalance\": %.4f, \"imbalance_static\": %.4f}%s\n",
                   run.workers, run.wall_sec, run.events_per_sec,
                   run.wall_valid ? "true" : "false",
                   run.wall_valid && base_eps > 0 ? run.events_per_sec / base_eps : 0,
                   cp_speedup, cp_static, Lookup(ref.imbalance, run.workers),
                   Lookup(ref.imbalance_static, run.workers),
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_name);
  }
  return identical ? 0 : 1;
}
