// Figure 12 (§7.8.3): "choose-the-fastest-replica" (Cassandra snitching and
// C3 adaptive replica selection) vs millisecond dynamism. Four regimes on a
// 3-replica cluster:
//   NoBusy      — no contention;
//   Bursty      — EC2-style sub-second bursts;
//   1B2F-1sec   — one busy / two free, rotating every second;
//   1B2F-5sec   — same, rotating every five seconds (slow enough to track).
// Expected: C3/snitch only close the gap in the 5-second regime; MittOS
// (shown for contrast) tracks NoBusy everywhere.

#include <cstdio>

#include "src/harness/experiment.h"

int main() {
  using namespace mitt;
  using harness::StrategyKind;

  harness::ExperimentOptions base_opt;
  base_opt.num_nodes = 3;
  base_opt.num_clients = 4;
  base_opt.measure_requests = 5000;
  base_opt.warmup_requests = 300;
  base_opt.deadline = Millis(15);
  base_opt.seed = 20170108;

  struct Regime {
    const char* name;
    harness::NoiseKind noise;
    DurationNs rotate;
  };
  const Regime regimes[] = {
      {"NoBusy", harness::NoiseKind::kNone, 0},
      {"Bursty", harness::NoiseKind::kEc2, 0},
      {"1B2F-1sec", harness::NoiseKind::kRotating, Seconds(1)},
      {"1B2F-5sec", harness::NoiseKind::kRotating, Seconds(5)},
  };

  std::printf("=== Figure 12: snitching / C3 vs bursty noise (3 replicas) ===\n");
  for (const StrategyKind kind :
       {StrategyKind::kC3, StrategyKind::kSnitch, StrategyKind::kMittos}) {
    std::vector<harness::RunResult> results;
    for (const Regime& regime : regimes) {
      harness::ExperimentOptions opt = base_opt;
      opt.noise = regime.noise;
      opt.rotate_period = regime.rotate;
      if (regime.noise == harness::NoiseKind::kEc2) {
        opt.ec2 = harness::CompressedEc2Noise();
        opt.ec2.mean_off = Millis(1200);  // Denser bursts on 3 nodes.
      }
      harness::Experiment experiment(opt);
      auto result = experiment.Run(kind);
      result.name = regime.name;
      results.push_back(std::move(result));
    }
    std::printf("\n--- %s under each noise regime (get() latencies) ---\n",
                std::string(harness::StrategyKindName(kind)).c_str());
    harness::PrintPercentileTable(results, {50, 80, 85, 90, 95, 99}, /*user_level=*/false);
  }
  return 0;
}
