// Figure 8 (§7.5): MittSSD vs Hedged on one machine hosting six DB
// partitions that share 8 CPU threads. SSD noise is a tenant issuing 64KB
// writes. The paper's surprise: Hedged is *worse* than Base here, because
// the duplicated requests double the number of busy handler threads (12 on
// an 8-thread machine) — CPU contention, not IO, creates the tail. MittSSD
// rejects at the chip level without spawning extra work.

#include <chrono>
#include <cstdio>

#include "src/harness/experiment.h"

namespace {

// Wall-clock of this bench on the dev box at f313402, the commit before the
// hot-path overhaul (median of repeated runs). Machine-dependent: recalibrate
// when moving boxes. Printed to stderr so stdout stays byte-comparable
// across commits.
constexpr double kPreOverhaulSeconds = 0.45;

}  // namespace

int main() {
  using namespace mitt;
  using harness::StrategyKind;
  const auto wall_start = std::chrono::steady_clock::now();

  harness::ExperimentOptions base_opt;
  base_opt.num_nodes = 6;  // Six partitions/processes on one machine.
  base_opt.num_clients = 8;  // Handler threads ~ cores: hedges overload the CPU.
  base_opt.shared_cpu_cores = 8;
  base_opt.cpu_cores = 8;
  // At SSD speeds the handlers are CPU-bound, not IO-bound (§7.5): request
  // parsing/serialization dominates the ~0.1ms device time.
  base_opt.handler_cpu = Micros(400);
  base_opt.measure_requests = 9000;
  base_opt.warmup_requests = 400;
  base_opt.backend = os::BackendKind::kSsd;
  base_opt.noise = harness::NoiseKind::kEc2;
  base_opt.ec2 = harness::CompressedEc2Noise();
  base_opt.noise_op = sched::IoOp::kWrite;
  // Striped writes keep a meaningful share of the 128 chips programming.
  base_opt.noise_io_size = 256 << 10;
  base_opt.noise_streams = 2;
  base_opt.deadline = -1;  // p95 of Base.
  base_opt.hedge_delay = -1;
  base_opt.seed = 20170105;

  std::printf("=== Figure 8: MittSSD vs Hedged (6 partitions, 8 shared CPU threads) ===\n");
  harness::Experiment experiment(base_opt);
  const auto results = experiment.RunAll(
      {StrategyKind::kBase, StrategyKind::kHedged, StrategyKind::kMittos});
  std::printf("deadline / hedge delay = Base p95 = %.3f ms\n\n",
              ToMillis(experiment.derived_p95()));

  std::printf("--- Fig 8a: get() latency percentiles ---\n");
  harness::PrintPercentileTable(results, {50, 75, 90, 95, 99, 99.9}, /*user_level=*/false);

  std::printf("\n--- Fig 8b: %% latency reduction of MittSSD vs Hedged, SF sweep ---\n");
  const DurationNs p95 = experiment.derived_p95();
  for (const int sf : {1, 2, 5, 10}) {
    harness::ExperimentOptions opt = base_opt;
    opt.scale_factor = sf;
    opt.deadline = p95;
    opt.hedge_delay = p95;
    opt.measure_requests = static_cast<size_t>(6000 / sf) + 300;
    harness::Experiment sweep(opt);
    const auto hedged = sweep.Run(StrategyKind::kHedged);
    const auto mitt = sweep.Run(StrategyKind::kMittos);
    std::printf("SF=%d:\n", sf);
    harness::PrintReductionTable(mitt, {hedged}, {75, 90, 95, 99}, /*user_level=*/true);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  std::fprintf(stderr, "[perf] fig8 wall-clock %.2fs; pre-overhaul baseline %.2fs (%.2fx)\n",
               wall, kPreOverhaulSeconds, kPreOverhaulSeconds / wall);
  return 0;
}
