// Chaos-search throughput report (DESIGN.md §4j): a time-budgeted,
// report-only search over the standard chaos world. No expectations are
// asserted — this is the perf-smoke artifact generator. Prints the human
// summary and (with --json) writes the machine-readable report so CI can
// track coverage growth and trials/second across commits.
//
//   bench_chaos [--budget-ms MS] [--trials N] [--seed S] [--json FILE]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/chaos/explorer.h"

int main(int argc, char** argv) {
  using namespace mitt;

  chaos::ExplorerOptions opt;
  opt.max_trials = 300;
  opt.time_budget_ms = 10000;
  opt.max_findings = 8;  // Report-only: keep searching past the first find.
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--budget-ms") {
      const char* v = next();
      if (v != nullptr) opt.time_budget_ms = std::atoll(v);
    } else if (arg == "--trials") {
      const char* v = next();
      if (v != nullptr) opt.max_trials = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v != nullptr) opt.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--json") {
      const char* v = next();
      if (v != nullptr) json_path = v;
    } else {
      std::fprintf(stderr, "usage: bench_chaos [--budget-ms MS] [--trials N] [--seed S] "
                           "[--json FILE]\n");
      return 64;
    }
  }

  std::printf("=== Chaos search throughput (budget %lld ms, <= %d trials) ===\n",
              static_cast<long long>(opt.time_budget_ms), opt.max_trials);
  const auto start = std::chrono::steady_clock::now();
  const chaos::SearchReport report = chaos::RunSearch(opt);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  const int total_trials = report.trials + report.shrink_trials;
  std::printf("trials            %d (+%d shrink)\n", report.trials, report.shrink_trials);
  std::printf("wall              %.2f s (%.1f trials/s)\n", secs,
              secs > 0 ? total_trials / secs : 0.0);
  std::printf("corpus            %zu plans\n", report.corpus_size);
  std::printf("coverage          %zu behavior features\n", report.coverage_features);
  std::printf("grid checks       %d\n", report.grid_checks);
  std::printf("findings          %zu%s\n", report.findings.size(),
              report.findings.empty() ? " (expected: the shipped code is clean)" : "");
  for (const chaos::Finding& f : report.findings) {
    std::printf("  [%s] %s: %s (plan %zu -> %zu episodes)\n", f.oracle.c_str(),
                f.strategy.c_str(), f.detail.c_str(), f.plan.size(), f.shrunk.size());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench_chaos: cannot write %s\n", json_path.c_str());
      return 64;
    }
    out << report.ToJson();
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;  // Report-only: findings are data here, not failures.
}
