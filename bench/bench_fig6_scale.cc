// Figure 6 (§7.3): tail amplified by scale. A user request fans out SF
// parallel get()s and waits for all of them; with SF in {1, 2, 5, 10} the
// fraction of user requests dragged past the deadline grows for Hedged
// (which must wait before reacting) while MittCFQ's instant rejection keeps
// the amplification small. Expected: MittCFQ's reduction vs Hedged grows
// with SF (up to ~35% at p95 with SF=5 in the paper).
//
// The grid also doubles as the intra-trial parallelism smoke: each trial is
// sharded (num_shards=4) and the whole grid is run twice — once pinned to
// one intra-trial worker, once with $MITT_INTRA_WORKERS (default 1) — with
// wall-clock for both passes on stderr. The printed tables come from the
// first pass and the second pass is asserted bit-identical, so stdout never
// depends on the worker count (the engine's determinism contract).

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/harness/experiment.h"
#include "src/sim/sharded_engine.h"

namespace {

// The fields the tables below are printed from, plus the raw counters that
// would catch a divergence the percentile grid rounds away.
bool SameResult(const mitt::harness::RunResult& a, const mitt::harness::RunResult& b) {
  const std::vector<double> pcts = {50, 75, 90, 95, 99, 99.9};
  return a.requests == b.requests && a.user_errors == b.user_errors &&
         a.ebusy_failovers == b.ebusy_failovers && a.sim_events == b.sim_events &&
         a.sim_duration == b.sim_duration &&
         a.get_latencies.Percentiles(pcts) == b.get_latencies.Percentiles(pcts) &&
         a.user_latencies.Percentiles(pcts) == b.user_latencies.Percentiles(pcts);
}

}  // namespace

int main() {
  using namespace mitt;
  using harness::StrategyKind;

  harness::ExperimentOptions base_opt;
  base_opt.num_nodes = 20;
  base_opt.num_clients = 20;
  base_opt.measure_requests = 5000;
  base_opt.warmup_requests = 300;
  base_opt.noise = harness::NoiseKind::kEc2;
  base_opt.ec2 = harness::CompressedEc2Noise();
  base_opt.seed = 20170102;
  base_opt.num_shards = 4;  // Shard even this small ring so the PDES engine
                            // (not the legacy loop) runs the trial.

  // Derive the p95 deadline once, at SF=1 (the paper keeps 13ms throughout).
  harness::Experiment probe(base_opt);
  const auto base_results = probe.RunAll({StrategyKind::kBase});
  const DurationNs p95 = probe.derived_p95();
  std::printf("=== Figure 6: tail amplified by scale (MittCFQ vs Hedged) ===\n");
  std::printf("deadline / hedge delay = SF=1 Base p95 = %.2f ms\n", ToMillis(p95));

  // All SF x strategy worlds are independent: fan the whole grid out across
  // the trial pool and print per-SF groups from the order-preserving merge.
  const std::vector<int> scale_factors = {1, 2, 5, 10};
  std::vector<harness::Trial> trials;
  for (const int sf : scale_factors) {
    harness::ExperimentOptions opt = base_opt;
    opt.scale_factor = sf;
    opt.deadline = p95;
    opt.hedge_delay = p95;
    opt.measure_requests = static_cast<size_t>(5000 / sf) + 500;
    trials.push_back({opt, StrategyKind::kBase, ""});
    trials.push_back({opt, StrategyKind::kHedged, ""});
    trials.push_back({opt, StrategyKind::kMittos, ""});
  }

  // Pass 1: every trial pinned to one intra-trial worker (the sequential
  // baseline). Pass 2: the env-configured worker count. Both on stderr so
  // stdout stays a pure function of the simulation.
  std::vector<harness::Trial> pinned = trials;
  for (auto& t : pinned) t.options.intra_workers = 1;
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = harness::RunTrialsParallel(pinned);
  const auto t1 = std::chrono::steady_clock::now();
  const auto results_mw = harness::RunTrialsParallel(trials);
  const auto t2 = std::chrono::steady_clock::now();
  std::fprintf(stderr, "[fig6_scale] grid wall before (intra_workers=1): %.2fs\n",
               std::chrono::duration<double>(t1 - t0).count());
  std::fprintf(stderr, "[fig6_scale] grid wall after  (intra_workers=%d): %.2fs\n",
               sim::DefaultIntraWorkers(),
               std::chrono::duration<double>(t2 - t1).count());

  for (size_t i = 0; i < results.size(); ++i) {
    if (!SameResult(results[i], results_mw[i])) {
      std::fprintf(stderr,
                   "[fig6_scale] DETERMINISM VIOLATION: trial %zu diverged between "
                   "intra_workers=1 and intra_workers=%d\n",
                   i, sim::DefaultIntraWorkers());
      return 1;
    }
  }

  for (size_t i = 0; i < scale_factors.size(); ++i) {
    const auto& base = results[3 * i];
    const auto& hedged = results[3 * i + 1];
    const auto& mitt = results[3 * i + 2];
    std::printf("\n--- Fig 6: scale factor SF=%d (user-request latencies) ---\n",
                scale_factors[i]);
    harness::PrintPercentileTable({base, hedged, mitt}, {50, 75, 90, 95, 99},
                                  /*user_level=*/true);
    std::printf("reduction of MittCFQ vs Hedged:\n");
    harness::PrintReductionTable(mitt, {hedged}, {75, 90, 95, 99}, /*user_level=*/true);
  }
  return 0;
}
