// Figure 6 (§7.3): tail amplified by scale. A user request fans out SF
// parallel get()s and waits for all of them; with SF in {1, 2, 5, 10} the
// fraction of user requests dragged past the deadline grows for Hedged
// (which must wait before reacting) while MittCFQ's instant rejection keeps
// the amplification small. Expected: MittCFQ's reduction vs Hedged grows
// with SF (up to ~35% at p95 with SF=5 in the paper).

#include <cstdio>

#include "src/harness/experiment.h"

int main() {
  using namespace mitt;
  using harness::StrategyKind;

  harness::ExperimentOptions base_opt;
  base_opt.num_nodes = 20;
  base_opt.num_clients = 20;
  base_opt.measure_requests = 5000;
  base_opt.warmup_requests = 300;
  base_opt.noise = harness::NoiseKind::kEc2;
  base_opt.ec2 = harness::CompressedEc2Noise();
  base_opt.seed = 20170102;

  // Derive the p95 deadline once, at SF=1 (the paper keeps 13ms throughout).
  harness::Experiment probe(base_opt);
  const auto base_results = probe.RunAll({StrategyKind::kBase});
  const DurationNs p95 = probe.derived_p95();
  std::printf("=== Figure 6: tail amplified by scale (MittCFQ vs Hedged) ===\n");
  std::printf("deadline / hedge delay = SF=1 Base p95 = %.2f ms\n", ToMillis(p95));

  // All SF x strategy worlds are independent: fan the whole grid out across
  // the trial pool and print per-SF groups from the order-preserving merge.
  const std::vector<int> scale_factors = {1, 2, 5, 10};
  std::vector<harness::Trial> trials;
  for (const int sf : scale_factors) {
    harness::ExperimentOptions opt = base_opt;
    opt.scale_factor = sf;
    opt.deadline = p95;
    opt.hedge_delay = p95;
    opt.measure_requests = static_cast<size_t>(5000 / sf) + 500;
    trials.push_back({opt, StrategyKind::kBase, ""});
    trials.push_back({opt, StrategyKind::kHedged, ""});
    trials.push_back({opt, StrategyKind::kMittos, ""});
  }
  const auto results = harness::RunTrialsParallel(trials);

  for (size_t i = 0; i < scale_factors.size(); ++i) {
    const auto& base = results[3 * i];
    const auto& hedged = results[3 * i + 1];
    const auto& mitt = results[3 * i + 2];
    std::printf("\n--- Fig 6: scale factor SF=%d (user-request latencies) ---\n",
                scale_factors[i]);
    harness::PrintPercentileTable({base, hedged, mitt}, {50, 75, 90, 95, 99},
                                  /*user_level=*/true);
    std::printf("reduction of MittCFQ vs Hedged:\n");
    harness::PrintReductionTable(mitt, {hedged}, {75, 90, 95, 99}, /*user_level=*/true);
  }
  return 0;
}
