// Fail-slow / chaos scenarios (src/fault/): do fast rejects still help when
// the hardware misbehaves underneath the predictor?
//
// Three parts:
//   1. Disk cluster scorecard — fail-slow disk, stop-the-world node pauses,
//      a degraded network link, and crash+cold-cache-restart, each swept
//      against Base / AppTO / Clone / Hedged / MittOS with the SLO deadline
//      derived from a healthy Base run (the paper's p95 rule).
//   2. SSD cluster scorecard — a read-retry latency storm across one node's
//      chips, same strategy sweep.
//   3. Organic prediction accuracy — the Fig. 9 replay methodology, but the
//      device degrades mid-replay while MittCFQ / MittSSD keep the profile
//      they learned on healthy hardware. False negatives grow with the
//      fail-slow multiplier: the model is stale, nothing is injected into
//      the predictor itself (contrast Fig. 10).
//
// Usage: bench_failslow [scorecard.json] [chrome_trace.json]

#include <cstdio>
#include <fstream>
#include <string>

#include "bench/accuracy_replay.h"
#include "src/harness/scenario_runner.h"
#include "src/obs/export.h"

namespace {

using namespace mitt;
using harness::StrategyKind;

// A 3-node micro world with every get() initially directed at node 0 — the
// node the faults strike — so the scorecard isolates the victim path.
harness::ExperimentOptions MicroWorld(os::BackendKind backend, uint64_t seed) {
  harness::ExperimentOptions opt;
  opt.num_nodes = 3;
  opt.num_clients = 4;
  opt.measure_requests = 2500;
  opt.warmup_requests = 200;
  opt.pin_primary_node = 0;
  opt.backend = backend;
  // Light background contention on the victim node (the Fig. 4a tenant: 4 KB
  // best-effort reads). Faults land on top of it, as they would in
  // production — and a busy device is what the wait-time check can see: on a
  // perfectly idle fail-slow disk the first IO is always admitted, because a
  // zero-queue wait estimate is below any deadline.
  opt.noise = harness::NoiseKind::kContinuous;
  opt.continuous_intensity = 2;
  opt.noise_io_size = 4096;
  opt.noise_priority = 7;
  opt.seed = seed;
  return opt;
}

// Episodes repeat far past any plausible run length; episodes the run never
// reaches simply don't fire (daemon events).
constexpr TimeNs kHorizon = Seconds(60);

std::vector<harness::FaultScenario> DiskScenarios() {
  std::vector<harness::FaultScenario> scenarios;
  {
    fault::FaultPlanBuilder b;
    // One long degradation: a failing disk misbehaves for seconds-to-minutes,
    // not milliseconds. The 8-step ramp across the first quarter gives the
    // predictor's online calibration a realistic curve to chase; the plateau
    // is where stale-profile rejects must carry the SLO.
    b.FailSlowDisk(/*node=*/0, /*start=*/Millis(400), /*duration=*/Seconds(30),
                   /*multiplier=*/12.0);
    scenarios.push_back({"failslow-disk", b.Build(), {}});
  }
  {
    fault::FaultPlanBuilder b;
    b.RepeatEpisodes(fault::FaultKind::kNodePause, /*node=*/0, kHorizon,
                     /*mean_gap=*/Millis(700), /*min_on=*/Millis(80), /*max_on=*/Millis(160),
                     /*severity=*/1.0, /*seed=*/102);
    scenarios.push_back({"node-pause", b.Build(), {}});
  }
  {
    fault::FaultPlanBuilder b;
    b.RepeatEpisodes(fault::FaultKind::kNetworkDegrade, /*node=*/0, kHorizon,
                     /*mean_gap=*/Millis(900), /*min_on=*/Millis(300), /*max_on=*/Millis(700),
                     /*severity=*/40.0, /*seed=*/103);
    scenarios.push_back({"net-degrade", b.Build(), {}});
  }
  {
    fault::FaultPlanBuilder b;
    for (TimeNs t = Seconds(1); t < kHorizon; t += Seconds(4)) {
      b.NodeCrashRestart(/*node=*/0, t, /*restart_time=*/Millis(300));
    }
    scenarios.push_back({"crash-restart", b.Build(), {}});
  }
  return scenarios;
}

std::vector<harness::FaultScenario> SsdScenarios() {
  std::vector<harness::FaultScenario> scenarios;
  // SSD gets finish in hundreds of microseconds, so the whole run spans well
  // under a second of simulated time — episodes are pinned densely from t=30ms
  // (60% duty cycle) instead of drawn from second-scale gaps.
  fault::FaultPlanBuilder b;
  for (TimeNs t = Millis(30); t < Seconds(10); t += Millis(250)) {
    b.SsdReadRetry(/*node=*/0, t, /*duration=*/Millis(150), /*multiplier=*/25.0, /*chip=*/-1);
  }
  scenarios.push_back({"ssd-read-retry", b.Build(), {}});
  return scenarios;
}

void PrintAccuracyRow(const char* label, const bench::AccuracyResult& r) {
  std::printf("  %-28s FP %6.2f%%  FN %6.2f%%  inacc %6.2f%%  wrong-by %7.2f ms  (SLO %.2f ms)\n",
              label, r.false_positive_pct, r.false_negative_pct, r.inaccuracy_pct,
              r.mean_wrong_diff_ms, ToMillis(r.deadline));
}

std::string AccuracyJson(const char* backend, double multiplier,
                         const bench::AccuracyResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"backend\": \"%s\", \"fail_slow_multiplier\": %.1f, "
                "\"false_positive_pct\": %.3f, \"false_negative_pct\": %.3f, "
                "\"inaccuracy_pct\": %.3f, \"mean_wrong_diff_ms\": %.3f}",
                backend, multiplier, r.false_positive_pct, r.false_negative_pct,
                r.inaccuracy_pct, r.mean_wrong_diff_ms);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== bench_failslow: fault scenarios x client strategies ===\n");

  const std::vector<StrategyKind> strategies = {StrategyKind::kBase, StrategyKind::kAppTimeout,
                                                StrategyKind::kClone, StrategyKind::kHedged,
                                                StrategyKind::kMittos};

  // --- Part 1: disk-backed cluster ---
  harness::ScenarioRunner::Options disk_opt;
  disk_opt.base = MicroWorld(os::BackendKind::kDiskCfq, 20170917);
  disk_opt.base.trace = true;  // fault_active + per-layer spans for export.
  // A degrading device is exactly the regime the multiplicative gain
  // calibration exists for: the additive next-free correction absorbs a
  // one-off misprediction, the gain follows a persistent service-time shift.
  disk_opt.base.mitt_cfq.gain_calibration = true;
  disk_opt.base.mitt_cfq.gain_ewma_alpha = 0.2;
  disk_opt.strategies = strategies;
  harness::ScenarioRunner disk_runner(disk_opt);
  const auto disk_scenarios = DiskScenarios();
  const auto disk_scores = disk_runner.Run(disk_scenarios);

  std::printf("\n--- Disk cluster (MittCFQ), SLO = healthy Base p95 = %.2f ms ---\n",
              ToMillis(disk_runner.slo_deadline()));
  harness::PrintScorecard(disk_scores, disk_runner.slo_deadline());

  // --- Part 2: SSD-backed cluster ---
  harness::ScenarioRunner::Options ssd_opt;
  ssd_opt.base = MicroWorld(os::BackendKind::kSsd, 20170918);
  ssd_opt.strategies = strategies;
  harness::ScenarioRunner ssd_runner(ssd_opt);
  const auto ssd_scores = ssd_runner.Run(SsdScenarios());

  std::printf("\n--- SSD cluster (MittSSD), SLO = healthy Base p95 = %.2f ms ---\n",
              ToMillis(ssd_runner.slo_deadline()));
  harness::PrintScorecard(ssd_scores, ssd_runner.slo_deadline());

  // --- Part 3: organic prediction error under degradation ---
  std::printf("\n--- Predictor accuracy on a degrading device (profile stays healthy) ---\n");
  workload::TraceProfile profile = workload::PaperTraceProfiles()[0];
  std::vector<std::string> accuracy_json;
  for (const os::BackendKind backend : {os::BackendKind::kDiskCfq, os::BackendKind::kSsd}) {
    const char* name = backend == os::BackendKind::kDiskCfq ? "MittCFQ" : "MittSSD";
    std::printf("%s:\n", name);
    for (const double multiplier : {1.0, 4.0, 16.0}) {
      bench::AccuracyOptions aopt;
      aopt.backend = backend;
      aopt.rate_scale = backend == os::BackendKind::kSsd ? 128.0 : 0.25;
      aopt.max_ios = 4000;
      aopt.fail_slow_multiplier = multiplier;
      // The 128x-compressed SSD replay spans ~60ms of simulated time; the
      // ramp must fit inside it or the device never actually degrades.
      aopt.fail_slow_ramp = backend == os::BackendKind::kSsd ? Millis(10) : Millis(500);
      const auto r = bench::RunAccuracyReplay(profile, aopt);
      char label[64];
      std::snprintf(label, sizeof(label), "%s x%.0f", multiplier == 1.0 ? "healthy" : "fail-slow",
                    multiplier);
      PrintAccuracyRow(label, r);
      accuracy_json.push_back(AccuracyJson(name, multiplier, r));
    }
  }

  // --- Artifacts ---
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << "{\n  \"disk\": " << harness::ScorecardJson(disk_scores, disk_runner.slo_deadline())
        << ",\n  \"ssd\": " << harness::ScorecardJson(ssd_scores, ssd_runner.slo_deadline())
        << ",\n  \"accuracy\": [\n";
    for (size_t i = 0; i < accuracy_json.size(); ++i) {
      out << accuracy_json[i] << (i + 1 < accuracy_json.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("\nwrote scorecard JSON to %s\n", argv[1]);
  }
  if (argc > 2) {
    // Chrome trace of the failslow-disk / MittOS pair: fault_active spans
    // frame the windows where EBUSY failovers cluster.
    const size_t mitt_index = strategies.size() - 1;  // failslow-disk is scenario 0.
    const harness::RunResult& traced = disk_runner.results()[mitt_index];
    std::ofstream out(argv[2]);
    out << obs::ChromeTraceJson(traced.trace_spans, "failslow-disk/MittOS");
    std::printf("wrote Chrome trace (%zu spans) to %s\n", traced.trace_spans.size(), argv[2]);
  }
  return 0;
}
