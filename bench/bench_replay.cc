// bench_replay: open-loop block-trace replay through the full
// client -> kv -> OS stack (src/trace/, DESIGN.md §4h).
//
// Three parts:
//   1. Scale — stream a multi-million-IO trace (synthetic five-profile mix,
//      or an imported CSV via --csv) through a MittOS cluster and prove the
//      replay path is constant-memory: the same world replays a 1/5 prefix
//      first, and the max-RSS growth from there to the full trace is
//      reported (a streaming cursor adds ~one block of scratch, not the
//      file).
//   2. Scorecard — healthy + fault scenarios x Base / AppTO / MittOS /
//      MittOS+res on the same trace via harness::ScenarioRunner, with the
//      SLO derived from the healthy Base replay's p95 (the paper's rule),
//      plus the obs latency breakdown of the traced MittOS run.
//   3. Determinism — the scorecard re-run at every point of the
//      {trial workers 1,4} x {intra workers 1,2} grid; the JSON scorecards
//      must be byte-identical or the bench exits nonzero (the CI gate).
//
// Usage: bench_replay [--small] [--csv FILE] [out.json]
//   --small  CI mode: ~50k-IO scale pass and a lighter grid.
//   --csv    import an MSR Cambridge / SNIA CSV instead of generating the
//            synthetic mix (offsets are remapped onto the keyspace span).

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/harness/scenario_runner.h"
#include "src/obs/export.h"
#include "src/trace/import.h"
#include "src/trace/writer.h"
#include "src/workload/synthetic_trace.h"

namespace {

using namespace mitt;
using harness::StrategyKind;

constexpr uint64_t kFullScaleEvents = 5'000'000;
constexpr uint64_t kSmallScaleEvents = 50'000;

long MaxRssKb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KB on Linux.
}

// The replay world: a small SSD cluster with no background noise, so the
// trace's own arrival process is the only load and replay throughput is
// bounded by the stack, not by a synthetic tenant.
harness::ExperimentOptions ReplayWorld(const std::string& trace_path, uint64_t seed) {
  harness::ExperimentOptions opt;
  opt.num_nodes = 3;
  opt.num_clients = 0;  // Replay replaces the closed-loop client population.
  opt.num_keys_per_node = 1 << 18;
  opt.backend = os::BackendKind::kSsd;
  opt.noise = harness::NoiseKind::kNone;
  opt.seed = seed;
  opt.replay.trace_path = trace_path;
  // The mix arrives at ~3k IOs/s of trace time; 4x compression keeps a
  // 3-node SSD cluster busy without open-loop queue collapse.
  opt.replay.rate_scale = 4.0;
  return opt;
}

int64_t KeyspaceSpanBytes(const harness::ExperimentOptions& opt) {
  return static_cast<int64_t>(opt.num_keys_per_node) * opt.num_nodes * 4096;
}

struct ScaleReport {
  uint64_t events = 0;
  uint64_t trace_records = 0;
  uint64_t trace_file_bytes = 0;
  uint64_t sim_events = 0;
  long maxrss_prefix_kb = 0;
  long maxrss_full_kb = 0;
  double wall_s = 0;
};

ScaleReport RunScalePass(const std::string& trace_path, uint64_t trace_records,
                         uint64_t trace_file_bytes, uint64_t events) {
  ScaleReport report;
  report.trace_records = trace_records;
  report.trace_file_bytes = trace_file_bytes;

  harness::ExperimentOptions opt = ReplayWorld(trace_path, /*seed=*/42);
  // Entirely unmeasured: the scale pass proves streaming memory behavior,
  // and per-sample recorders would reintroduce O(events) growth.
  opt.replay.warmup_events = ~0ULL;

  // Prefix run establishes the post-world-build high-water mark; the full
  // run then shows how much 5x the events add on top (a streaming replay:
  // almost nothing).
  {
    harness::ExperimentOptions prefix = opt;
    prefix.replay.max_events = events / 5;
    harness::Experiment experiment(prefix);
    (void)experiment.Run(StrategyKind::kMittos);
    report.maxrss_prefix_kb = MaxRssKb();
  }

  opt.replay.max_events = events;
  harness::Experiment experiment(opt);
  const auto start = std::chrono::steady_clock::now();
  const harness::RunResult result = experiment.Run(StrategyKind::kMittos);
  report.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  report.maxrss_full_kb = MaxRssKb();
  report.events = result.replay_events;
  report.sim_events = result.sim_events;
  return report;
}

// One fault scenario on top of healthy: a read-retry latency storm on node
// 0's chips, dense enough to overlap the compressed replay window.
std::vector<harness::FaultScenario> ReplayScenarios() {
  std::vector<harness::FaultScenario> scenarios;
  scenarios.push_back({"healthy", {}, {}});
  fault::FaultPlanBuilder b;
  for (TimeNs t = Millis(50); t < Seconds(120); t += Millis(400)) {
    b.SsdReadRetry(/*node=*/0, t, /*duration=*/Millis(250), /*multiplier=*/25.0, /*chip=*/-1);
  }
  scenarios.push_back({"ssd-read-retry", b.Build(), {}});
  return scenarios;
}

std::string DeterminismScorecard(const std::string& trace_path, uint64_t max_events,
                                 int trial_workers, int intra_workers) {
  harness::ScenarioRunner::Options opt;
  opt.base = ReplayWorld(trace_path, /*seed=*/20170919);
  opt.base.replay.max_events = max_events;
  opt.base.replay.warmup_events = max_events / 10;
  // Two engine shards so intra_workers exercises the conservative-PDES path;
  // the mix's five streams partition as stream % 2.
  opt.base.num_nodes = 4;
  opt.base.num_shards = 2;
  opt.base.intra_workers = intra_workers;
  opt.strategies = {StrategyKind::kBase, StrategyKind::kMittos, StrategyKind::kMittosResilient};
  opt.workers = trial_workers;
  harness::ScenarioRunner runner(opt);
  const auto scores = runner.Run({{"healthy", {}, {}}});
  return harness::ScorecardJson(scores, runner.slo_deadline());
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  const char* csv = nullptr;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv = argv[++i];
    } else {
      json_path = argv[i];
    }
  }
  const uint64_t scale_events = small ? kSmallScaleEvents : kFullScaleEvents;

  std::printf("=== bench_replay: open-loop trace replay through the full stack ===\n");

  // --- Trace preparation ---
  const std::string trace_path = "bench_replay_trace.mitttrace";
  uint64_t trace_records = 0;
  std::string source;
  if (csv != nullptr) {
    trace::CsvImportOptions iopt;
    iopt.remap_span_bytes = KeyspaceSpanBytes(ReplayWorld(trace_path, 42));
    iopt.max_records = scale_events;
    trace::ImportStats stats;
    std::string error;
    if (!trace::ImportBlockCsvFile(csv, trace_path, iopt, &stats, &error)) {
      std::fprintf(stderr, "bench_replay: import failed: %s\n", error.c_str());
      return 1;
    }
    trace_records = stats.imported;
    source = std::string("csv:") + csv;
    std::printf("imported %llu records from %s (%u streams)\n",
                static_cast<unsigned long long>(stats.imported), csv, stats.streams);
  } else {
    std::string error;
    auto writer = trace::TraceWriter::Open(trace_path, {}, &error);
    if (writer == nullptr ||
        !workload::WriteSyntheticMix(workload::PaperTraceProfiles(), Seconds(2400),
                                     /*seed=*/42, scale_events, writer.get()) ||
        !writer->Finish()) {
      std::fprintf(stderr, "bench_replay: trace generation failed: %s\n",
                   writer != nullptr ? writer->error().c_str() : error.c_str());
      return 1;
    }
    trace_records = writer->records_written();
    source = "synthetic-mix";
    std::printf("generated %llu-record synthetic mix (%u streams) -> %s\n",
                static_cast<unsigned long long>(trace_records), writer->streams_seen(),
                trace_path.c_str());
  }
  uint64_t trace_file_bytes = 0;
  {
    std::ifstream f(trace_path, std::ios::binary | std::ios::ate);
    trace_file_bytes = static_cast<uint64_t>(f.tellg());
  }

  // --- Part 1: scale / constant-memory pass ---
  const uint64_t replay_events = std::min(scale_events, trace_records);
  std::printf("\n--- Scale: %llu IOs, MittOS, open loop ---\n",
              static_cast<unsigned long long>(replay_events));
  const ScaleReport scale =
      RunScalePass(trace_path, trace_records, trace_file_bytes, replay_events);
  const long rss_growth = scale.maxrss_full_kb - scale.maxrss_prefix_kb;
  std::printf("replayed %llu events (%llu sim events) in %.1fs — %.0f IOs/s\n",
              static_cast<unsigned long long>(scale.events),
              static_cast<unsigned long long>(scale.sim_events), scale.wall_s,
              static_cast<double>(scale.events) / scale.wall_s);
  std::printf("max RSS after 1/5 prefix %ld KB, after full trace %ld KB (growth %ld KB; "
              "trace file %llu KB)\n",
              scale.maxrss_prefix_kb, scale.maxrss_full_kb, rss_growth,
              static_cast<unsigned long long>(trace_file_bytes / 1024));

  // --- Part 2: scorecard ---
  const uint64_t scorecard_events = small ? 20'000 : 200'000;
  harness::ScenarioRunner::Options sopt;
  sopt.base = ReplayWorld(trace_path, /*seed=*/20170919);
  sopt.base.replay.max_events = scorecard_events;
  sopt.base.replay.warmup_events = scorecard_events / 10;
  sopt.base.trace = true;  // Spans for the latency breakdown.
  sopt.strategies = {StrategyKind::kBase, StrategyKind::kAppTimeout, StrategyKind::kMittos,
                     StrategyKind::kMittosResilient};
  harness::ScenarioRunner runner(sopt);
  const auto scenarios = ReplayScenarios();
  const auto scores = runner.Run(scenarios);
  std::printf("\n--- Scorecard: %llu IOs/run, SLO = healthy Base p95 = %.2f ms ---\n",
              static_cast<unsigned long long>(scorecard_events),
              ToMillis(runner.slo_deadline()));
  harness::PrintScorecard(scores, runner.slo_deadline());

  // Latency breakdown of the healthy MittOS replay (scenario 0, strategy
  // index 2). Empty when the obs subsystem is compiled out.
  const size_t mitt_index = 2;
  const harness::RunResult& traced = runner.results()[mitt_index];
  const obs::LatencyBreakdown breakdown = obs::ComputeLatencyBreakdown(traced.trace_spans);
  if (!breakdown.rows.empty()) {
    std::printf("\n--- Latency breakdown: healthy / MittOS replay ---\n");
    obs::PrintLatencyBreakdown(breakdown);
  }

  // --- Part 3: determinism grid ---
  const uint64_t grid_events = small ? 8'000 : 30'000;
  std::printf("\n--- Determinism: scorecard at {trial 1,4} x {intra 1,2}, %llu IOs ---\n",
              static_cast<unsigned long long>(grid_events));
  std::string reference;
  bool identical = true;
  int variants = 0;
  for (const int trial_workers : {1, 4}) {
    for (const int intra_workers : {1, 2}) {
      const std::string scorecard =
          DeterminismScorecard(trace_path, grid_events, trial_workers, intra_workers);
      ++variants;
      if (reference.empty()) {
        reference = scorecard;
      } else if (scorecard != reference) {
        identical = false;
        std::fprintf(stderr, "DETERMINISM FAILURE at trial=%d intra=%d: scorecard differs\n",
                     trial_workers, intra_workers);
      }
      std::printf("  trial=%d intra=%d: %zu scorecard bytes %s\n", trial_workers, intra_workers,
                  scorecard.size(), scorecard == reference ? "(identical)" : "(DIFFERS)");
    }
  }

  // --- Artifact ---
  if (json_path != nullptr) {
    std::string json = "{\n  \"config\": {\"source\": \"" + obs::JsonEscape(source) +
                       "\", \"small\": " + (small ? "true" : "false") +
                       ", \"trace_records\": " + std::to_string(trace_records) +
                       ", \"trace_file_bytes\": " + std::to_string(trace_file_bytes) + "},\n";
    json += "  \"scale\": {\"events\": " + std::to_string(scale.events) +
            ", \"sim_events\": " + std::to_string(scale.sim_events) +
            ", \"wall_s\": " + std::to_string(scale.wall_s) +
            ", \"maxrss_prefix_kb\": " + std::to_string(scale.maxrss_prefix_kb) +
            ", \"maxrss_full_kb\": " + std::to_string(scale.maxrss_full_kb) +
            ", \"maxrss_growth_kb\": " + std::to_string(rss_growth) + "},\n";
    json += "  \"scorecard\": " + harness::ScorecardJson(scores, runner.slo_deadline()) + ",\n";
    json += "  \"breakdown\": [";
    for (size_t i = 0; i < breakdown.rows.size(); ++i) {
      const obs::BreakdownRow& row = breakdown.rows[i];
      json += std::string(i == 0 ? "" : ", ") + "{\"outcome\": \"" +
              std::string(obs::RequestOutcomeName(row.outcome)) +
              "\", \"requests\": " + std::to_string(row.requests) + "}";
    }
    json += "],\n";
    json += "  \"determinism\": {\"identical\": " + std::string(identical ? "true" : "false") +
            ", \"variants\": " + std::to_string(variants) +
            ", \"scorecard_bytes\": " + std::to_string(reference.size()) + "}\n}\n";
    if (!obs::ValidateJsonSyntax(json)) {
      std::fprintf(stderr, "bench_replay: generated JSON failed validation\n");
      return 1;
    }
    std::ofstream out(json_path);
    out << json;
    std::printf("\nwrote replay report to %s\n", json_path);
  }

  return identical ? 0 : 1;
}
