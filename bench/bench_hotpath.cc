// IO-pipeline hot-path microbenchmark: predict-call cost, per-IO heap
// allocations, and end-to-end closed-loop trial throughput for the three
// storage stacks (disk-CFQ, disk-noop, SSD).
//
// Three sections (EXPERIMENTS.md "bench_hotpath"):
//   1. predict: ns per PredictedWaitNow()/PredictedWait() call with the
//      scheduler preloaded to queue depth 1 vs 256. MittOS's admission check
//      runs on every Read syscall; the paper's premise is that it only
//      *reads* incrementally maintained aggregates, so the cost must not
//      depend on how many IOs are queued.
//   2. e2e: closed-loop clients (half with deadlines, half without, plus an
//      O_DIRECT noise tenant and a 1/32 buffered-write mix) hammer a full
//      Os stack; measures IOs/sec of simulated pipeline work per wall
//      second, and heap allocations per IO in the steady phase.
//   3. The committed BENCH_hotpath.json also embeds the fixed pre-overhaul
//      baseline (measured on the dev machine at the pre-PR commit, same
//      sources) and the resulting speedup, mirroring bench_simcore's
//      fixed-legacy-baseline reporting.
//
// Steady-state allocation *gating* lives in tests/alloc_test.cc (tier-1);
// this bench reports the same counters but never fails the build, so it is
// safe for noisy CI runners (the CI perf-smoke job is report-only).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/device/disk_model.h"
#include "src/device/disk_profile.h"
#include "src/device/ssd_model.h"
#include "src/device/ssd_profile.h"
#include "src/os/mitt_cfq.h"
#include "src/os/mitt_noop.h"
#include "src/os/mitt_ssd.h"
#include "src/os/os.h"
#include "src/sched/cfq_scheduler.h"
#include "src/sched/io_request.h"
#include "src/sim/simulator.h"

// --- Allocation-counting hook (same shape as bench_simcore) ------------------

#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using mitt::DurationNs;
using mitt::Micros;
using mitt::Millis;
using mitt::Rng;
using mitt::Status;
using mitt::TimeNs;
namespace os = mitt::os;
namespace sched = mitt::sched;
namespace device = mitt::device;

// --- Fixed pre-overhaul baseline ---------------------------------------------
//
// Measured at the pre-PR commit (f313402, identical workload constants and
// machine) before the incremental-aggregate/arena overhaul; kept fixed so
// the JSON tracks the speedup of the committed sources against that point,
// exactly as bench_simcore pins its legacy engine. Zeroed entries mean "no
// baseline recorded" and suppress the speedup lines.
struct Baseline {
  double cfq_iops = 0;
  double noop_iops = 0;
  double ssd_iops = 0;
  double cfq_allocs_per_io = 0;
  double noop_allocs_per_io = 0;
  double ssd_allocs_per_io = 0;
  double predict_cfq_d1_ns = 0;
  double predict_cfq_d256_ns = 0;
  const char* commit = "f313402";
};

Baseline FixedBaseline();  // Defined at the bottom, next to the JSON writer.

// --- Section 1: predict-call cost -------------------------------------------

// Builds a scheduler+predictor stack, preloads it to `depth` queued IOs
// (without ever running the simulator: the device stays busy, nothing
// completes), then times a tight PredictedWaitNow loop.
struct PredictResult {
  double cfq_ns = 0;
  double noop_ns = 0;
  double ssd_ns = 0;
};

PredictResult MeasurePredict(int depth, uint64_t calls) {
  PredictResult out;
  volatile DurationNs sink = 0;

  // Profiles are one-time offline passes on twin devices (see Os::Os).
  device::DiskParams dp;
  device::DiskProfile disk_profile;
  {
    mitt::sim::Simulator scratch;
    device::DiskModel twin(&scratch, dp, /*seed=*/0x5eedf00d);
    disk_profile = device::ProfileDisk(&scratch, &twin);
  }
  device::SsdParams sp;
  device::SsdProfile ssd_profile;
  {
    mitt::sim::Simulator scratch;
    device::SsdModel twin(&scratch, sp, /*seed=*/0x5eedf00d);
    ssd_profile = device::ProfileSsd(&scratch, &twin);
  }

  // disk-CFQ stack.
  {
    mitt::sim::Simulator sim;
    device::DiskModel disk(&sim, dp, /*seed=*/7);
    os::PredictorOptions popt;
    os::MittCfqOptions copt;
    os::MittCfqPredictor pred(&sim, disk_profile, popt, copt);
    sched::CfqScheduler cfq(&sim, &disk, &pred, sched::CfqParams{});

    Rng rng(11);
    std::vector<std::unique_ptr<sched::IoRequest>> reqs;
    reqs.reserve(static_cast<size_t>(depth));
    for (int i = 0; i < depth; ++i) {
      auto r = std::make_unique<sched::IoRequest>();
      r->id = static_cast<uint64_t>(i + 1);
      r->offset = rng.UniformInt(0, dp.capacity_bytes - 4096);
      r->size = 4096;
      r->pid = 1 + (i & 3);
      cfq.Submit(r.get());
      reqs.push_back(std::move(r));
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < calls; ++i) {
      sink = sink + pred.PredictedWaitNow(1 + static_cast<int32_t>(i & 3),
                                          sched::IoClass::kBestEffort);
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.cfq_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                 static_cast<double>(calls);
  }

  // disk-noop predictor (the scheduler adds nothing to the estimate).
  {
    mitt::sim::Simulator sim;
    os::PredictorOptions popt;
    os::MittNoopPredictor pred(&sim, disk_profile, popt);
    Rng rng(13);
    std::vector<std::unique_ptr<sched::IoRequest>> reqs;
    reqs.reserve(static_cast<size_t>(depth));
    for (int i = 0; i < depth; ++i) {
      auto r = std::make_unique<sched::IoRequest>();
      r->id = static_cast<uint64_t>(i + 1);
      r->offset = rng.UniformInt(0, dp.capacity_bytes - 4096);
      r->size = 4096;
      r->pid = 1;
      pred.ShouldReject(r.get());
      pred.OnAccepted(*r);
      reqs.push_back(std::move(r));
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < calls; ++i) {
      sink = sink + pred.PredictedWaitNow();
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.noop_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                  static_cast<double>(calls);
  }

  // SSD stack: probe a 1-page read while `depth` accepted IOs occupy chips.
  {
    mitt::sim::Simulator sim;
    device::SsdModel ssd(&sim, sp, /*seed=*/17);
    os::PredictorOptions popt;
    os::MittSsdOptions sopt;
    os::MittSsdPredictor pred(&sim, &ssd, ssd_profile, popt, sopt);
    Rng rng(19);
    const int64_t capacity = static_cast<int64_t>(sp.num_channels) * sp.chips_per_channel *
                             sp.pages_per_block * sp.page_size;
    std::vector<std::unique_ptr<sched::IoRequest>> reqs;
    reqs.reserve(static_cast<size_t>(depth));
    for (int i = 0; i < depth; ++i) {
      auto r = std::make_unique<sched::IoRequest>();
      r->id = static_cast<uint64_t>(i + 1);
      r->offset = rng.UniformInt(0, capacity - sp.page_size);
      r->size = sp.page_size;
      r->pid = 1;
      pred.ShouldReject(r.get());
      pred.OnAccepted(r.get());
      reqs.push_back(std::move(r));
    }
    sched::IoRequest probe;
    probe.id = 1'000'000;
    probe.size = sp.page_size;
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < calls; ++i) {
      probe.offset = static_cast<int64_t>((i & 1023) * static_cast<uint64_t>(sp.page_size));
      sink = sink + pred.PredictedWait(probe);
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.ssd_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                 static_cast<double>(calls);
  }

  (void)sink;
  return out;
}

// --- Section 2: end-to-end closed-loop throughput ----------------------------

struct E2eResult {
  uint64_t ios = 0;            // IOs finished in the measured phase.
  double elapsed_sec = 0;      // Wall time of the measured phase.
  uint64_t ebusy = 0;          // Across the whole run.
  uint64_t allocs = 0;         // Warmup + measured.
  uint64_t steady_allocs = 0;  // Measured phase only.
  double ios_per_sec() const {
    return elapsed_sec > 0 ? static_cast<double>(ios) / elapsed_sec : 0;
  }
  double steady_allocs_per_io() const {
    return ios != 0 ? static_cast<double>(steady_allocs) / static_cast<double>(ios) : 0;
  }
};

struct Stream {
  os::Os* o = nullptr;
  Rng rng{1};
  uint64_t file = 0;
  int64_t pages = 0;
  int32_t pid = 0;
  DurationNs deadline = sched::kNoDeadline;
  bool bypass = false;
  uint64_t ios = 0;
  uint64_t ebusy = 0;
  uint64_t* total = nullptr;

  void Issue() {
    if (!bypass && ios % 32 == 31) {
      os::Os::WriteArgs w;
      w.file = file;
      w.offset = rng.UniformInt(0, pages - 1) * 4096;
      w.size = 4096;
      w.pid = pid;
      o->Write(w, [this](Status) { Done(false); });
      return;
    }
    os::Os::ReadArgs a;
    a.file = file;
    a.offset = rng.UniformInt(0, pages - 1) * 4096;
    a.size = 4096;
    a.pid = pid;
    a.deadline = deadline;
    a.bypass_cache = bypass;
    o->ReadWithWaitHint(a, [this](Status s, DurationNs) { Done(s.busy()); });
  }
  void Done(bool busy) {
    if (busy) {
      ++ebusy;
    }
    ++ios;
    ++*total;
    Issue();
  }
};

E2eResult RunE2e(os::BackendKind backend, uint64_t target_ios, uint64_t warmup_ios,
                 uint64_t seed) {
  mitt::sim::Simulator sim;
  os::OsOptions opt;
  opt.backend = backend;
  opt.seed = seed;
  opt.cache.capacity_pages = 16 * 1024;  // 64 MiB cache over a 512 MiB file.
  os::Os osys(&sim, opt);

  const int64_t file_bytes = 512LL * 1024 * 1024;
  const uint64_t file = osys.CreateFile(file_bytes);
  const int64_t pages = file_bytes / 4096;
  // Warm a quarter of the file so the hit path is part of the mix.
  osys.Prefault(file, 0, file_bytes / 4);

  // Prime the background-flush path: the first flush after a cold start
  // pushes its whole accumulated dirty batch through the device queues in
  // one burst, setting ring/pool high-water marks. On the SSD the whole run
  // spans ~1 flush interval of simulated time, so without priming that
  // growth would land inside the measured phase and read as per-IO allocs.
  {
    Rng prime_rng(seed ^ 0xF1u);
    for (int i = 0; i < 4096; ++i) {
      os::Os::WriteArgs w;
      w.file = file;
      w.offset = prime_rng.UniformInt(0, pages - 1) * 4096;
      w.size = 4096;
      w.pid = 99;
      osys.Write(w, [](Status) {});
    }
    sim.RunUntil(sim.Now() + 2 * opt.flush_interval + Millis(1));
  }

  const bool is_ssd = backend == os::BackendKind::kSsd;
  const DurationNs dl = is_ssd ? Millis(2) : Millis(20);

  uint64_t total = 0;
  std::vector<std::unique_ptr<Stream>> streams;
  for (int i = 0; i < 9; ++i) {
    auto s = std::make_unique<Stream>();
    s->o = &osys;
    s->rng = Rng(seed * 977 + static_cast<uint64_t>(i));
    s->file = file;
    s->pages = pages;
    s->pid = 1 + i;
    s->total = &total;
    if (i == 8) {
      s->bypass = true;  // O_DIRECT noise tenant, never rejected.
    } else if (i < 4) {
      s->deadline = dl;  // SLO-carrying clients.
    }
    streams.push_back(std::move(s));
  }
  for (auto& s : streams) {
    s->Issue();
  }

  const uint64_t allocs_before = g_alloc_count.load();
  sim.RunUntilPredicate([&total, warmup_ios] { return total >= warmup_ios; });

  const uint64_t measured_start = total;
  const uint64_t steady_before = g_alloc_count.load();
  const auto t0 = std::chrono::steady_clock::now();
  sim.RunUntilPredicate([&total, target_ios] { return total >= target_ios; });
  const auto t1 = std::chrono::steady_clock::now();

  E2eResult r;
  r.ios = total - measured_start;
  r.elapsed_sec = std::chrono::duration<double>(t1 - t0).count();
  r.allocs = g_alloc_count.load() - allocs_before;
  r.steady_allocs = g_alloc_count.load() - steady_before;
  for (const auto& s : streams) {
    r.ebusy += s->ebusy;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t target = 60'000;  // IOs per stack per rep.
  int reps = 3;
  if (argc > 1) {
    char* end = nullptr;
    target = std::strtoull(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || target == 0 || target > 1'000'000'000ULL) {
      std::fprintf(stderr, "usage: %s [target_ios, 1..1e9] [reps, 1..100]\n", argv[0]);
      return 2;
    }
  }
  if (argc > 2) {
    reps = std::atoi(argv[2]);
    if (reps < 1 || reps > 100) {
      std::fprintf(stderr, "usage: %s [target_ios, 1..1e9] [reps, 1..100]\n", argv[0]);
      return 2;
    }
  }
  const uint64_t warmup = target / 6;
  const uint64_t predict_calls = 2'000'000;

  std::printf("=== bench_hotpath: predict cost + per-IO allocs + e2e throughput ===\n");

  // Section 1: predict-call cost at depth 1 vs 256 (best of reps).
  PredictResult d1, d256;
  for (int rep = 0; rep < reps; ++rep) {
    const auto a = MeasurePredict(1, predict_calls);
    const auto b = MeasurePredict(256, predict_calls);
    if (rep == 0 || a.cfq_ns < d1.cfq_ns) d1.cfq_ns = a.cfq_ns;
    if (rep == 0 || a.noop_ns < d1.noop_ns) d1.noop_ns = a.noop_ns;
    if (rep == 0 || a.ssd_ns < d1.ssd_ns) d1.ssd_ns = a.ssd_ns;
    if (rep == 0 || b.cfq_ns < d256.cfq_ns) d256.cfq_ns = b.cfq_ns;
    if (rep == 0 || b.noop_ns < d256.noop_ns) d256.noop_ns = b.noop_ns;
    if (rep == 0 || b.ssd_ns < d256.ssd_ns) d256.ssd_ns = b.ssd_ns;
  }
  std::printf("predict ns/call      depth=1    depth=256  ratio\n");
  std::printf("  mitt-cfq          %7.1f    %7.1f    %.2fx\n", d1.cfq_ns, d256.cfq_ns,
              d1.cfq_ns > 0 ? d256.cfq_ns / d1.cfq_ns : 0);
  std::printf("  mitt-noop         %7.1f    %7.1f    %.2fx\n", d1.noop_ns, d256.noop_ns,
              d1.noop_ns > 0 ? d256.noop_ns / d1.noop_ns : 0);
  std::printf("  mitt-ssd          %7.1f    %7.1f    %.2fx\n", d1.ssd_ns, d256.ssd_ns,
              d1.ssd_ns > 0 ? d256.ssd_ns / d1.ssd_ns : 0);

  // Section 2: end-to-end closed loop per stack (best wall time of reps;
  // carry the worst steady-alloc counter, as in bench_simcore).
  struct Named {
    const char* name;
    os::BackendKind kind;
    E2eResult r;
  };
  Named stacks[3] = {{"disk-cfq", os::BackendKind::kDiskCfq, {}},
                     {"disk-noop", os::BackendKind::kDiskNoop, {}},
                     {"ssd", os::BackendKind::kSsd, {}}};
  for (int rep = 0; rep < reps; ++rep) {
    for (auto& s : stacks) {
      const auto r = RunE2e(s.kind, target, warmup, /*seed=*/41);
      const uint64_t worst_steady = std::max(s.r.steady_allocs, r.steady_allocs);
      if (rep == 0 || r.elapsed_sec < s.r.elapsed_sec) {
        s.r = r;
      }
      s.r.steady_allocs = worst_steady;
    }
  }
  std::printf("e2e closed loop      IOs/sec    allocs/IO (steady)   ebusy\n");
  for (const auto& s : stacks) {
    std::printf("  %-12s  %10.0f    %8.3f             %llu\n", s.name, s.r.ios_per_sec(),
                s.r.steady_allocs_per_io(), static_cast<unsigned long long>(s.r.ebusy));
  }

  const Baseline base = FixedBaseline();
  const double cfq_speedup =
      base.cfq_iops > 0 ? stacks[0].r.ios_per_sec() / base.cfq_iops : 0;
  const double noop_speedup =
      base.noop_iops > 0 ? stacks[1].r.ios_per_sec() / base.noop_iops : 0;
  const double ssd_speedup =
      base.ssd_iops > 0 ? stacks[2].r.ios_per_sec() / base.ssd_iops : 0;
  if (base.cfq_iops > 0) {
    std::printf("speedup vs pre-overhaul baseline (%s): cfq %.2fx  noop %.2fx  ssd %.2fx\n",
                base.commit, cfq_speedup, noop_speedup, ssd_speedup);
  }

  FILE* out = std::fopen("BENCH_hotpath.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n"
        "  \"benchmark\": \"hotpath\",\n"
        "  \"workload\": {\"target_ios\": %llu, \"warmup_ios\": %llu,\n"
        "               \"predict_calls\": %llu, \"streams\": 9,\n"
        "               \"file_mib\": 512, \"cache_mib\": 64, \"seed\": 41},\n"
        "  \"predict_ns_per_call\": {\n"
        "    \"cfq_depth1\": %.1f, \"cfq_depth256\": %.1f,\n"
        "    \"noop_depth1\": %.1f, \"noop_depth256\": %.1f,\n"
        "    \"ssd_depth1\": %.1f, \"ssd_depth256\": %.1f,\n"
        "    \"cfq_depth_ratio\": %.3f},\n"
        "  \"e2e\": {\n"
        "    \"disk_cfq\":  {\"ios_per_sec\": %.0f, \"ios\": %llu, \"ebusy\": %llu,\n"
        "                  \"allocs\": %llu, \"steady_allocs\": %llu,\n"
        "                  \"steady_allocs_per_io\": %.4f},\n"
        "    \"disk_noop\": {\"ios_per_sec\": %.0f, \"ios\": %llu, \"ebusy\": %llu,\n"
        "                  \"allocs\": %llu, \"steady_allocs\": %llu,\n"
        "                  \"steady_allocs_per_io\": %.4f},\n"
        "    \"ssd\":       {\"ios_per_sec\": %.0f, \"ios\": %llu, \"ebusy\": %llu,\n"
        "                  \"allocs\": %llu, \"steady_allocs\": %llu,\n"
        "                  \"steady_allocs_per_io\": %.4f}},\n"
        "  \"baseline_pre_overhaul\": {\n"
        "    \"commit\": \"%s\",\n"
        "    \"disk_cfq_ios_per_sec\": %.0f, \"disk_noop_ios_per_sec\": %.0f,\n"
        "    \"ssd_ios_per_sec\": %.0f,\n"
        "    \"disk_cfq_steady_allocs_per_io\": %.3f,\n"
        "    \"disk_noop_steady_allocs_per_io\": %.3f,\n"
        "    \"ssd_steady_allocs_per_io\": %.3f,\n"
        "    \"predict_cfq_depth1_ns\": %.1f, \"predict_cfq_depth256_ns\": %.1f},\n"
        "  \"speedup_e2e\": {\"disk_cfq\": %.3f, \"disk_noop\": %.3f, \"ssd\": %.3f}\n"
        "}\n",
        static_cast<unsigned long long>(target), static_cast<unsigned long long>(warmup),
        static_cast<unsigned long long>(predict_calls), d1.cfq_ns, d256.cfq_ns, d1.noop_ns,
        d256.noop_ns, d1.ssd_ns, d256.ssd_ns, d1.cfq_ns > 0 ? d256.cfq_ns / d1.cfq_ns : 0,
        stacks[0].r.ios_per_sec(), static_cast<unsigned long long>(stacks[0].r.ios),
        static_cast<unsigned long long>(stacks[0].r.ebusy),
        static_cast<unsigned long long>(stacks[0].r.allocs),
        static_cast<unsigned long long>(stacks[0].r.steady_allocs),
        stacks[0].r.steady_allocs_per_io(), stacks[1].r.ios_per_sec(),
        static_cast<unsigned long long>(stacks[1].r.ios),
        static_cast<unsigned long long>(stacks[1].r.ebusy),
        static_cast<unsigned long long>(stacks[1].r.allocs),
        static_cast<unsigned long long>(stacks[1].r.steady_allocs),
        stacks[1].r.steady_allocs_per_io(), stacks[2].r.ios_per_sec(),
        static_cast<unsigned long long>(stacks[2].r.ios),
        static_cast<unsigned long long>(stacks[2].r.ebusy),
        static_cast<unsigned long long>(stacks[2].r.allocs),
        static_cast<unsigned long long>(stacks[2].r.steady_allocs),
        stacks[2].r.steady_allocs_per_io(), base.commit, base.cfq_iops, base.noop_iops,
        base.ssd_iops, base.cfq_allocs_per_io, base.noop_allocs_per_io, base.ssd_allocs_per_io,
        base.predict_cfq_d1_ns, base.predict_cfq_d256_ns, cfq_speedup, noop_speedup,
        ssd_speedup);
    std::fclose(out);
    std::printf("wrote BENCH_hotpath.json\n");
  }
  return 0;
}

namespace {

Baseline FixedBaseline() {
  // Recorded at commit f313402 with this exact bench source (60000 target
  // IOs, 3 reps, same single-core dev machine as the committed
  // BENCH_hotpath.json): the tree before incremental predictor aggregates,
  // the IoRequest arena, and the PageCache rebuild.
  Baseline b;
  b.cfq_iops = 5'797'136;
  b.noop_iops = 6'175'373;
  b.ssd_iops = 1'947'205;
  b.cfq_allocs_per_io = 2.607;
  b.noop_allocs_per_io = 2.597;
  b.ssd_allocs_per_io = 6.698;
  b.predict_cfq_d1_ns = 1.9;
  b.predict_cfq_d256_ns = 3.8;
  return b;
}

}  // namespace
