// Shared trace-replay machinery for the prediction-accuracy experiments
// (Fig. 9, §7.6, and the precision-feature ablations).
//
// Methodology follows the paper: replay a production-like block trace on one
// machine; use the trace's p95 latency as the per-IO deadline; run the
// predictor in accuracy mode (EBUSY is *flagged* on the IO descriptor, never
// returned, so the actual completion time can be compared with the deadline)
// and count false positives / false negatives.

#ifndef MITTOS_BENCH_ACCURACY_REPLAY_H_
#define MITTOS_BENCH_ACCURACY_REPLAY_H_

#include <string>

#include "src/os/os.h"
#include "src/workload/synthetic_trace.h"

namespace mitt::bench {

struct AccuracyResult {
  std::string trace;
  double false_positive_pct = 0;
  double false_negative_pct = 0;
  double inaccuracy_pct = 0;
  double mean_wrong_diff_ms = 0;
  DurationNs deadline = 0;
  size_t ios = 0;
};

struct AccuracyOptions {
  os::BackendKind backend = os::BackendKind::kDiskCfq;
  // Arrival-time scaling: >1 compresses the trace (more intense). The paper
  // re-rates traces 128x for the SSD's 128 chips; disk replays are slowed to
  // a rate a single spindle can absorb.
  double rate_scale = 1.0;
  size_t max_ios = 5000;
  os::MittCfqOptions mitt_cfq;   // Precision-feature knobs (ablations).
  os::MittSsdOptions mitt_ssd;
  bool calibrate = true;
  uint64_t seed = 5;

  // Fail-slow degradation (src/fault/ semantics on a bare Os), applied in
  // the accuracy pass only: the deadline is learned on the healthy device,
  // then the media ramps to `fail_slow_multiplier`x service time (8 steps
  // over `fail_slow_ramp`, starting at `fail_slow_start`) while the
  // predictor keeps its healthy profile. The resulting false negatives are
  // *organic* prediction error — the model is stale, not perturbed (contrast
  // Fig. 10's injected error).
  double fail_slow_multiplier = 1.0;  // 1.0 = healthy replay.
  TimeNs fail_slow_start = 0;
  DurationNs fail_slow_ramp = Millis(500);
};

// Replays `profile` twice: once without deadlines to learn the p95, then in
// accuracy mode with deadline = p95 attached to every read.
AccuracyResult RunAccuracyReplay(const workload::TraceProfile& profile,
                                 const AccuracyOptions& options);

}  // namespace mitt::bench

#endif  // MITTOS_BENCH_ACCURACY_REPLAY_H_
