file(REMOVE_RECURSE
  "libmitt_device.a"
)
