
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/disk_model.cc" "src/CMakeFiles/mitt_device.dir/device/disk_model.cc.o" "gcc" "src/CMakeFiles/mitt_device.dir/device/disk_model.cc.o.d"
  "/root/repo/src/device/disk_profile.cc" "src/CMakeFiles/mitt_device.dir/device/disk_profile.cc.o" "gcc" "src/CMakeFiles/mitt_device.dir/device/disk_profile.cc.o.d"
  "/root/repo/src/device/ssd_model.cc" "src/CMakeFiles/mitt_device.dir/device/ssd_model.cc.o" "gcc" "src/CMakeFiles/mitt_device.dir/device/ssd_model.cc.o.d"
  "/root/repo/src/device/ssd_profile.cc" "src/CMakeFiles/mitt_device.dir/device/ssd_profile.cc.o" "gcc" "src/CMakeFiles/mitt_device.dir/device/ssd_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mitt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
