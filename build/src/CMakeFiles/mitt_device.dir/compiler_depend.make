# Empty compiler generated dependencies file for mitt_device.
# This may be replaced when dependencies are built.
