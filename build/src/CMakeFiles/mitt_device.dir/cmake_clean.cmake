file(REMOVE_RECURSE
  "CMakeFiles/mitt_device.dir/device/disk_model.cc.o"
  "CMakeFiles/mitt_device.dir/device/disk_model.cc.o.d"
  "CMakeFiles/mitt_device.dir/device/disk_profile.cc.o"
  "CMakeFiles/mitt_device.dir/device/disk_profile.cc.o.d"
  "CMakeFiles/mitt_device.dir/device/ssd_model.cc.o"
  "CMakeFiles/mitt_device.dir/device/ssd_model.cc.o.d"
  "CMakeFiles/mitt_device.dir/device/ssd_profile.cc.o"
  "CMakeFiles/mitt_device.dir/device/ssd_profile.cc.o.d"
  "libmitt_device.a"
  "libmitt_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
