file(REMOVE_RECURSE
  "libmitt_study.a"
)
