file(REMOVE_RECURSE
  "CMakeFiles/mitt_study.dir/study/nosql_study.cc.o"
  "CMakeFiles/mitt_study.dir/study/nosql_study.cc.o.d"
  "libmitt_study.a"
  "libmitt_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
