# Empty dependencies file for mitt_study.
# This may be replaced when dependencies are built.
