
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cpu_pool.cc" "src/CMakeFiles/mitt_netbase.dir/cluster/cpu_pool.cc.o" "gcc" "src/CMakeFiles/mitt_netbase.dir/cluster/cpu_pool.cc.o.d"
  "/root/repo/src/cluster/network.cc" "src/CMakeFiles/mitt_netbase.dir/cluster/network.cc.o" "gcc" "src/CMakeFiles/mitt_netbase.dir/cluster/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mitt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
