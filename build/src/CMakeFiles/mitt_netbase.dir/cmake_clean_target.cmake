file(REMOVE_RECURSE
  "libmitt_netbase.a"
)
