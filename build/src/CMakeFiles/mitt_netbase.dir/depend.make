# Empty dependencies file for mitt_netbase.
# This may be replaced when dependencies are built.
