file(REMOVE_RECURSE
  "CMakeFiles/mitt_netbase.dir/cluster/cpu_pool.cc.o"
  "CMakeFiles/mitt_netbase.dir/cluster/cpu_pool.cc.o.d"
  "CMakeFiles/mitt_netbase.dir/cluster/network.cc.o"
  "CMakeFiles/mitt_netbase.dir/cluster/network.cc.o.d"
  "libmitt_netbase.a"
  "libmitt_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
