# Empty dependencies file for mitt_cluster.
# This may be replaced when dependencies are built.
