file(REMOVE_RECURSE
  "libmitt_cluster.a"
)
