file(REMOVE_RECURSE
  "CMakeFiles/mitt_cluster.dir/cluster/cluster.cc.o"
  "CMakeFiles/mitt_cluster.dir/cluster/cluster.cc.o.d"
  "libmitt_cluster.a"
  "libmitt_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
