file(REMOVE_RECURSE
  "libmitt_harness.a"
)
