# Empty compiler generated dependencies file for mitt_harness.
# This may be replaced when dependencies are built.
