file(REMOVE_RECURSE
  "CMakeFiles/mitt_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/mitt_harness.dir/harness/experiment.cc.o.d"
  "libmitt_harness.a"
  "libmitt_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
