# Empty compiler generated dependencies file for mitt_noise.
# This may be replaced when dependencies are built.
