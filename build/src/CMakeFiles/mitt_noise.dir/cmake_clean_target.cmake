file(REMOVE_RECURSE
  "libmitt_noise.a"
)
