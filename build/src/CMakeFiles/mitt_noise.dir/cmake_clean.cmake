file(REMOVE_RECURSE
  "CMakeFiles/mitt_noise.dir/noise/ec2_noise.cc.o"
  "CMakeFiles/mitt_noise.dir/noise/ec2_noise.cc.o.d"
  "CMakeFiles/mitt_noise.dir/noise/noise_injector.cc.o"
  "CMakeFiles/mitt_noise.dir/noise/noise_injector.cc.o.d"
  "libmitt_noise.a"
  "libmitt_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
