# Empty compiler generated dependencies file for mitt_os.
# This may be replaced when dependencies are built.
