file(REMOVE_RECURSE
  "libmitt_os.a"
)
