file(REMOVE_RECURSE
  "CMakeFiles/mitt_os.dir/os/os.cc.o"
  "CMakeFiles/mitt_os.dir/os/os.cc.o.d"
  "CMakeFiles/mitt_os.dir/os/page_cache.cc.o"
  "CMakeFiles/mitt_os.dir/os/page_cache.cc.o.d"
  "libmitt_os.a"
  "libmitt_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
