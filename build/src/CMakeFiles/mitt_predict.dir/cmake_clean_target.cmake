file(REMOVE_RECURSE
  "libmitt_predict.a"
)
