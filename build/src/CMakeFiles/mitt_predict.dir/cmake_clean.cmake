file(REMOVE_RECURSE
  "CMakeFiles/mitt_predict.dir/os/mitt_cfq.cc.o"
  "CMakeFiles/mitt_predict.dir/os/mitt_cfq.cc.o.d"
  "CMakeFiles/mitt_predict.dir/os/mitt_noop.cc.o"
  "CMakeFiles/mitt_predict.dir/os/mitt_noop.cc.o.d"
  "CMakeFiles/mitt_predict.dir/os/mitt_ssd.cc.o"
  "CMakeFiles/mitt_predict.dir/os/mitt_ssd.cc.o.d"
  "libmitt_predict.a"
  "libmitt_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
