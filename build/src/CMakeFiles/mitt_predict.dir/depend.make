# Empty dependencies file for mitt_predict.
# This may be replaced when dependencies are built.
