file(REMOVE_RECURSE
  "libmitt_sched.a"
)
