# Empty dependencies file for mitt_sched.
# This may be replaced when dependencies are built.
