file(REMOVE_RECURSE
  "CMakeFiles/mitt_sched.dir/sched/cfq_scheduler.cc.o"
  "CMakeFiles/mitt_sched.dir/sched/cfq_scheduler.cc.o.d"
  "CMakeFiles/mitt_sched.dir/sched/noop_scheduler.cc.o"
  "CMakeFiles/mitt_sched.dir/sched/noop_scheduler.cc.o.d"
  "libmitt_sched.a"
  "libmitt_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
