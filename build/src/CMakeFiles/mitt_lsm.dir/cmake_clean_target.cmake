file(REMOVE_RECURSE
  "libmitt_lsm.a"
)
