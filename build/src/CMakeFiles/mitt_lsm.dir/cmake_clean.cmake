file(REMOVE_RECURSE
  "CMakeFiles/mitt_lsm.dir/lsm/bloom.cc.o"
  "CMakeFiles/mitt_lsm.dir/lsm/bloom.cc.o.d"
  "CMakeFiles/mitt_lsm.dir/lsm/lsm_node.cc.o"
  "CMakeFiles/mitt_lsm.dir/lsm/lsm_node.cc.o.d"
  "CMakeFiles/mitt_lsm.dir/lsm/lsm_tree.cc.o"
  "CMakeFiles/mitt_lsm.dir/lsm/lsm_tree.cc.o.d"
  "CMakeFiles/mitt_lsm.dir/lsm/memtable.cc.o"
  "CMakeFiles/mitt_lsm.dir/lsm/memtable.cc.o.d"
  "CMakeFiles/mitt_lsm.dir/lsm/sstable.cc.o"
  "CMakeFiles/mitt_lsm.dir/lsm/sstable.cc.o.d"
  "libmitt_lsm.a"
  "libmitt_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
