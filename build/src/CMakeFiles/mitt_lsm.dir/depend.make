# Empty dependencies file for mitt_lsm.
# This may be replaced when dependencies are built.
