file(REMOVE_RECURSE
  "libmitt_kv.a"
)
