# Empty dependencies file for mitt_kv.
# This may be replaced when dependencies are built.
