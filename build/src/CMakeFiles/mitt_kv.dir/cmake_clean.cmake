file(REMOVE_RECURSE
  "CMakeFiles/mitt_kv.dir/kv/doc_store_node.cc.o"
  "CMakeFiles/mitt_kv.dir/kv/doc_store_node.cc.o.d"
  "libmitt_kv.a"
  "libmitt_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
