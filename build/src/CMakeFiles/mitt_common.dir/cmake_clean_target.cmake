file(REMOVE_RECURSE
  "libmitt_common.a"
)
