# Empty compiler generated dependencies file for mitt_common.
# This may be replaced when dependencies are built.
