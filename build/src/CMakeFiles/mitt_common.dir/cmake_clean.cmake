file(REMOVE_RECURSE
  "CMakeFiles/mitt_common.dir/common/latency_recorder.cc.o"
  "CMakeFiles/mitt_common.dir/common/latency_recorder.cc.o.d"
  "CMakeFiles/mitt_common.dir/common/rng.cc.o"
  "CMakeFiles/mitt_common.dir/common/rng.cc.o.d"
  "CMakeFiles/mitt_common.dir/common/status.cc.o"
  "CMakeFiles/mitt_common.dir/common/status.cc.o.d"
  "CMakeFiles/mitt_common.dir/common/table.cc.o"
  "CMakeFiles/mitt_common.dir/common/table.cc.o.d"
  "CMakeFiles/mitt_common.dir/common/time.cc.o"
  "CMakeFiles/mitt_common.dir/common/time.cc.o.d"
  "libmitt_common.a"
  "libmitt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
