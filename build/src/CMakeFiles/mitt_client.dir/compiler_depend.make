# Empty compiler generated dependencies file for mitt_client.
# This may be replaced when dependencies are built.
