file(REMOVE_RECURSE
  "CMakeFiles/mitt_client.dir/client/adaptive.cc.o"
  "CMakeFiles/mitt_client.dir/client/adaptive.cc.o.d"
  "CMakeFiles/mitt_client.dir/client/clone.cc.o"
  "CMakeFiles/mitt_client.dir/client/clone.cc.o.d"
  "CMakeFiles/mitt_client.dir/client/hedged.cc.o"
  "CMakeFiles/mitt_client.dir/client/hedged.cc.o.d"
  "CMakeFiles/mitt_client.dir/client/mittos_client.cc.o"
  "CMakeFiles/mitt_client.dir/client/mittos_client.cc.o.d"
  "CMakeFiles/mitt_client.dir/client/strategy.cc.o"
  "CMakeFiles/mitt_client.dir/client/strategy.cc.o.d"
  "CMakeFiles/mitt_client.dir/client/timeout.cc.o"
  "CMakeFiles/mitt_client.dir/client/timeout.cc.o.d"
  "libmitt_client.a"
  "libmitt_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
