file(REMOVE_RECURSE
  "libmitt_client.a"
)
