
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/adaptive.cc" "src/CMakeFiles/mitt_client.dir/client/adaptive.cc.o" "gcc" "src/CMakeFiles/mitt_client.dir/client/adaptive.cc.o.d"
  "/root/repo/src/client/clone.cc" "src/CMakeFiles/mitt_client.dir/client/clone.cc.o" "gcc" "src/CMakeFiles/mitt_client.dir/client/clone.cc.o.d"
  "/root/repo/src/client/hedged.cc" "src/CMakeFiles/mitt_client.dir/client/hedged.cc.o" "gcc" "src/CMakeFiles/mitt_client.dir/client/hedged.cc.o.d"
  "/root/repo/src/client/mittos_client.cc" "src/CMakeFiles/mitt_client.dir/client/mittos_client.cc.o" "gcc" "src/CMakeFiles/mitt_client.dir/client/mittos_client.cc.o.d"
  "/root/repo/src/client/strategy.cc" "src/CMakeFiles/mitt_client.dir/client/strategy.cc.o" "gcc" "src/CMakeFiles/mitt_client.dir/client/strategy.cc.o.d"
  "/root/repo/src/client/timeout.cc" "src/CMakeFiles/mitt_client.dir/client/timeout.cc.o" "gcc" "src/CMakeFiles/mitt_client.dir/client/timeout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mitt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
