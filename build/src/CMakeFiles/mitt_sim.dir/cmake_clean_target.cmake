file(REMOVE_RECURSE
  "libmitt_sim.a"
)
