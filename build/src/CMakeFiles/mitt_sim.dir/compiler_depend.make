# Empty compiler generated dependencies file for mitt_sim.
# This may be replaced when dependencies are built.
