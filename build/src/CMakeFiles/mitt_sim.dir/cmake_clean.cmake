file(REMOVE_RECURSE
  "CMakeFiles/mitt_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/mitt_sim.dir/sim/simulator.cc.o.d"
  "libmitt_sim.a"
  "libmitt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
