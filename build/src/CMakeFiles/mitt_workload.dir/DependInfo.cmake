
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/macro_workload.cc" "src/CMakeFiles/mitt_workload.dir/workload/macro_workload.cc.o" "gcc" "src/CMakeFiles/mitt_workload.dir/workload/macro_workload.cc.o.d"
  "/root/repo/src/workload/synthetic_trace.cc" "src/CMakeFiles/mitt_workload.dir/workload/synthetic_trace.cc.o" "gcc" "src/CMakeFiles/mitt_workload.dir/workload/synthetic_trace.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/mitt_workload.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/mitt_workload.dir/workload/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mitt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
