file(REMOVE_RECURSE
  "CMakeFiles/mitt_workload.dir/workload/macro_workload.cc.o"
  "CMakeFiles/mitt_workload.dir/workload/macro_workload.cc.o.d"
  "CMakeFiles/mitt_workload.dir/workload/synthetic_trace.cc.o"
  "CMakeFiles/mitt_workload.dir/workload/synthetic_trace.cc.o.d"
  "CMakeFiles/mitt_workload.dir/workload/ycsb.cc.o"
  "CMakeFiles/mitt_workload.dir/workload/ycsb.cc.o.d"
  "libmitt_workload.a"
  "libmitt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
