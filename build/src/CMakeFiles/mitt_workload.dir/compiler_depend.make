# Empty compiler generated dependencies file for mitt_workload.
# This may be replaced when dependencies are built.
