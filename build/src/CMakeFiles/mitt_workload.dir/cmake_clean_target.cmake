file(REMOVE_RECURSE
  "libmitt_workload.a"
)
