file(REMOVE_RECURSE
  "libmitt_ring.a"
)
