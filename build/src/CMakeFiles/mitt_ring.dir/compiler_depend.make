# Empty compiler generated dependencies file for mitt_ring.
# This may be replaced when dependencies are built.
