file(REMOVE_RECURSE
  "CMakeFiles/mitt_ring.dir/kv/ring_coordinator.cc.o"
  "CMakeFiles/mitt_ring.dir/kv/ring_coordinator.cc.o.d"
  "libmitt_ring.a"
  "libmitt_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitt_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
