# Empty dependencies file for bench_allinone.
# This may be replaced when dependencies are built.
