file(REMOVE_RECURSE
  "CMakeFiles/bench_allinone.dir/bench_allinone.cc.o"
  "CMakeFiles/bench_allinone.dir/bench_allinone.cc.o.d"
  "bench_allinone"
  "bench_allinone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allinone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
