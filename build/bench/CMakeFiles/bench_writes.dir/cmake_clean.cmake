file(REMOVE_RECURSE
  "CMakeFiles/bench_writes.dir/bench_writes.cc.o"
  "CMakeFiles/bench_writes.dir/bench_writes.cc.o.d"
  "bench_writes"
  "bench_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
