
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_micro.cc" "bench/CMakeFiles/bench_fig4_micro.dir/bench_fig4_micro.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_micro.dir/bench_fig4_micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mitt_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_study.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mitt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
