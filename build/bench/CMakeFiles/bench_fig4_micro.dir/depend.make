# Empty dependencies file for bench_fig4_micro.
# This may be replaced when dependencies are built.
