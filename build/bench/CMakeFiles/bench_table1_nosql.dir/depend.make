# Empty dependencies file for bench_table1_nosql.
# This may be replaced when dependencies are built.
