file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_nosql.dir/bench_table1_nosql.cc.o"
  "CMakeFiles/bench_table1_nosql.dir/bench_table1_nosql.cc.o.d"
  "bench_table1_nosql"
  "bench_table1_nosql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_nosql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
