file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_error_inject.dir/bench_fig10_error_inject.cc.o"
  "CMakeFiles/bench_fig10_error_inject.dir/bench_fig10_error_inject.cc.o.d"
  "bench_fig10_error_inject"
  "bench_fig10_error_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_error_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
