# Empty dependencies file for bench_fig10_error_inject.
# This may be replaced when dependencies are built.
