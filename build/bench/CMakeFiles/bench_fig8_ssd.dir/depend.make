# Empty dependencies file for bench_fig8_ssd.
# This may be replaced when dependencies are built.
