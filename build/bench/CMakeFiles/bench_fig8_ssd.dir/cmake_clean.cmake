file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ssd.dir/bench_fig8_ssd.cc.o"
  "CMakeFiles/bench_fig8_ssd.dir/bench_fig8_ssd.cc.o.d"
  "bench_fig8_ssd"
  "bench_fig8_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
