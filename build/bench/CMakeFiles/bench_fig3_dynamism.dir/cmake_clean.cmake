file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_dynamism.dir/bench_fig3_dynamism.cc.o"
  "CMakeFiles/bench_fig3_dynamism.dir/bench_fig3_dynamism.cc.o.d"
  "bench_fig3_dynamism"
  "bench_fig3_dynamism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_dynamism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
