file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_macro.dir/bench_fig11_macro.cc.o"
  "CMakeFiles/bench_fig11_macro.dir/bench_fig11_macro.cc.o.d"
  "bench_fig11_macro"
  "bench_fig11_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
