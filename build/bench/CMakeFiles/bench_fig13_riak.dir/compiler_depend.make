# Empty compiler generated dependencies file for bench_fig13_riak.
# This may be replaced when dependencies are built.
