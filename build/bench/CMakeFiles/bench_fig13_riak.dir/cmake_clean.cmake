file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_riak.dir/bench_fig13_riak.cc.o"
  "CMakeFiles/bench_fig13_riak.dir/bench_fig13_riak.cc.o.d"
  "bench_fig13_riak"
  "bench_fig13_riak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_riak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
