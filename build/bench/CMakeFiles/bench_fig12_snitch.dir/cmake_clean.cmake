file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_snitch.dir/bench_fig12_snitch.cc.o"
  "CMakeFiles/bench_fig12_snitch.dir/bench_fig12_snitch.cc.o.d"
  "bench_fig12_snitch"
  "bench_fig12_snitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_snitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
