# Empty dependencies file for bench_fig12_snitch.
# This may be replaced when dependencies are built.
