file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_ec2_cfq.dir/bench_fig5_ec2_cfq.cc.o"
  "CMakeFiles/bench_fig5_ec2_cfq.dir/bench_fig5_ec2_cfq.cc.o.d"
  "bench_fig5_ec2_cfq"
  "bench_fig5_ec2_cfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ec2_cfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
