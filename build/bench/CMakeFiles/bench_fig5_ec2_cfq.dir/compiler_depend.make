# Empty compiler generated dependencies file for bench_fig5_ec2_cfq.
# This may be replaced when dependencies are built.
