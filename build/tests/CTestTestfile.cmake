# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/predictor_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/noise_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/lsm_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
