file(REMOVE_RECURSE
  "CMakeFiles/deadline_tuning.dir/deadline_tuning.cpp.o"
  "CMakeFiles/deadline_tuning.dir/deadline_tuning.cpp.o.d"
  "deadline_tuning"
  "deadline_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
