# Empty dependencies file for deadline_tuning.
# This may be replaced when dependencies are built.
