# Empty compiler generated dependencies file for slo_aware_lsm.
# This may be replaced when dependencies are built.
