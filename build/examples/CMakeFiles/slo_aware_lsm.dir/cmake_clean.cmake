file(REMOVE_RECURSE
  "CMakeFiles/slo_aware_lsm.dir/slo_aware_lsm.cpp.o"
  "CMakeFiles/slo_aware_lsm.dir/slo_aware_lsm.cpp.o.d"
  "slo_aware_lsm"
  "slo_aware_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_aware_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
