file(REMOVE_RECURSE
  "CMakeFiles/noisy_neighbor_cluster.dir/noisy_neighbor_cluster.cpp.o"
  "CMakeFiles/noisy_neighbor_cluster.dir/noisy_neighbor_cluster.cpp.o.d"
  "noisy_neighbor_cluster"
  "noisy_neighbor_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noisy_neighbor_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
