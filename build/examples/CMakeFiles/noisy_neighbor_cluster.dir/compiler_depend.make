# Empty compiler generated dependencies file for noisy_neighbor_cluster.
# This may be replaced when dependencies are built.
