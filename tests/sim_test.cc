#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulator.h"

namespace mitt::sim {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Millis(30), [&] { order.push_back(3); });
  sim.Schedule(Millis(10), [&] { order.push_back(1); });
  sim.Schedule(Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Millis(30));
}

TEST(SimulatorTest, SameTimeFifoBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  TimeNs inner_fired = -1;
  sim.Schedule(Millis(1), [&] {
    sim.Schedule(Millis(2), [&] { inner_fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fired, Millis(3));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  TimeNs fired = -1;
  sim.Schedule(Millis(5), [&] {
    sim.Schedule(-Millis(3), [&] { fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired, Millis(5));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.Schedule(Millis(1), [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // Second cancel is a no-op.
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelUnknownIdFails) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(99999));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.Schedule(Millis(1), [&] { ++count; });
  sim.Schedule(Millis(2), [&] { ++count; });
  sim.Schedule(Millis(10), [&] { ++count; });
  sim.RunUntil(Millis(5));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), Millis(5));
  sim.Run();
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWhenIdle) {
  Simulator sim;
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(sim.Now(), Seconds(3));
}

TEST(SimulatorTest, RunUntilPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(Millis(i), [&] { ++count; });
  }
  EXPECT_TRUE(sim.RunUntilPredicate([&] { return count == 4; }));
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.Now(), Millis(4));
}

TEST(SimulatorTest, RunUntilPredicateExhaustsQueue) {
  Simulator sim;
  sim.Schedule(Millis(1), [] {});
  EXPECT_FALSE(sim.RunUntilPredicate([] { return false; }));
}

TEST(SimulatorTest, PendingAndExecutedCounts) {
  Simulator sim;
  const EventId a = sim.Schedule(Millis(1), [] {});
  sim.Schedule(Millis(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(sim.executed_events(), 1u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelledEventDoesNotAdvanceClock) {
  Simulator sim;
  const EventId id = sim.Schedule(Seconds(100), [] {});
  sim.Cancel(id);
  sim.Schedule(Millis(1), [] {});
  sim.Run();
  EXPECT_EQ(sim.Now(), Millis(1));
}

// --- Determinism regression ---
//
// A seeded multi-actor scenario (nested scheduling, deterministic cancels,
// daemon timers) whose execution trace — event count, fire times, per-event
// order — is hashed into a golden value. The golden hash was captured on the
// original std::priority_queue<std::function> engine, so the pooled
// inline-callback queue is pinned to byte-identical (time, seq) semantics.

struct TraceEntry {
  TimeNs when;
  int marker;
  bool operator==(const TraceEntry&) const = default;
};

uint64_t HashTrace(const std::vector<TraceEntry>& trace) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a.
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const TraceEntry& e : trace) {
    mix(static_cast<uint64_t>(e.when));
    mix(static_cast<uint64_t>(e.marker));
  }
  return h;
}

std::vector<TraceEntry> RunDeterminismScenario() {
  Simulator sim;
  std::vector<TraceEntry> trace;
  constexpr int kActors = 4;
  constexpr int kStepsPerActor = 200;

  struct Actor {
    Rng rng{0};
    int steps = 0;
    std::vector<EventId> throwaway;
  };
  auto actors = std::make_shared<std::vector<Actor>>(kActors);
  for (int a = 0; a < kActors; ++a) {
    (*actors)[static_cast<size_t>(a)].rng = Rng(0x5EED0000ULL + static_cast<uint64_t>(a));
  }

  auto tick = std::make_shared<std::function<void(int)>>();
  *tick = [&sim, &trace, actors, tick](int a) {
    Actor& actor = (*actors)[static_cast<size_t>(a)];
    trace.push_back({sim.Now(), a * 1000 + actor.steps});
    if (++actor.steps >= kStepsPerActor) {
      return;
    }
    // Nested rescheduling with a seeded delay.
    sim.Schedule(actor.rng.UniformInt(1, Millis(2)), [tick, a] { (*tick)(a); });
    // Churn: schedule a far-future decoy, cancel every other one while still
    // pending (legit-true cancels only — identical on old and new engines).
    const EventId decoy = sim.Schedule(
        Millis(450) + actor.rng.UniformInt(0, Millis(5)),
        [&trace, &sim, a] { trace.push_back({sim.Now(), -(a + 1)}); });
    actor.throwaway.push_back(decoy);
    if (actor.steps % 2 == 0) {
      sim.Cancel(actor.throwaway[actor.throwaway.size() / 2]);
    }
  };

  // A daemon heartbeat interleaves with actor events but must not keep the
  // run alive once the actors finish.
  auto beat = std::make_shared<std::function<void()>>();
  auto beats = std::make_shared<int>(0);
  *beat = [&sim, &trace, beat, beats] {
    trace.push_back({sim.Now(), 9000 + (*beats)++});
    sim.ScheduleDaemon(Micros(700), [beat] { (*beat)(); });
  };
  sim.ScheduleDaemon(Micros(700), [beat] { (*beat)(); });

  for (int a = 0; a < kActors; ++a) {
    sim.Schedule(Micros(100) * (a + 1), [tick, a] { (*tick)(a); });
  }
  sim.Run();
  // Break the drivers' self-referential shared_ptr captures (leak otherwise).
  *tick = nullptr;
  *beat = nullptr;
  return trace;
}

TEST(SimulatorDeterminismTest, SeededMultiActorTraceIsStable) {
  const std::vector<TraceEntry> first = RunDeterminismScenario();
  const std::vector<TraceEntry> second = RunDeterminismScenario();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first, second);

  // Times never go backwards.
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_GE(first[i].when, first[i - 1].when);
  }

  // Golden values captured on the pre-pool engine; any change to (time, seq)
  // ordering or cancellation semantics shows up here.
  EXPECT_EQ(first.size(), 2155u);
  EXPECT_EQ(HashTrace(first), 15155849216143701217ULL);
}

// --- Stale-id / cancel-after-fire regression ---
//
// The pre-pool engine recorded any plausible-looking id in its lazy-cancel
// set; cancelling an already-fired event returned true, permanently skewed
// pending_events() (size_t underflow), and leaked the id. The pooled engine
// detects staleness via slot generations.

TEST(SimulatorCancelTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.Schedule(Millis(1), [&] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
  // A later event still schedules and fires normally.
  int count = 0;
  sim.Schedule(Millis(1), [&] { ++count; });
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorCancelTest, CancelTwiceThenFireWindowStaysConsistent) {
  Simulator sim;
  const EventId a = sim.Schedule(Millis(1), [] {});
  EXPECT_TRUE(sim.Cancel(a));
  EXPECT_FALSE(sim.Cancel(a));
  sim.Schedule(Millis(2), [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(a));  // Still false after its slot was recycled.
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(SimulatorCancelTest, CancelOwnEventFromItsCallbackReturnsFalse) {
  Simulator sim;
  EventId self = kInvalidEventId;
  bool cancel_result = true;
  self = sim.Schedule(Millis(1), [&] { cancel_result = sim.Cancel(self); });
  sim.Run();
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorCancelTest, StaleIdOfRecycledSlotDoesNotCancelNewOccupant) {
  Simulator sim;
  const EventId old_id = sim.Schedule(Millis(1), [] {});
  sim.Run();  // Fires; the slot returns to the free list.
  bool ran = false;
  const EventId new_id = sim.Schedule(Millis(1), [&] { ran = true; });
  EXPECT_NE(old_id, new_id);  // Same slot, different generation.
  EXPECT_FALSE(sim.Cancel(old_id));
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(sim.Cancel(new_id));  // new_id fired too.
}

// Interleaved Schedule/Cancel/Run with daemon events and cancel-after-fire:
// pending_events() must track the live count exactly (no underflow) and every
// Cancel() verdict must match whether the event was genuinely pending.
TEST(SimulatorCancelTest, InterleavedCancellationStress) {
  Simulator sim;
  Rng rng(0xCA9CE1);
  uint64_t fired = 0;
  std::vector<EventId> inflight;
  std::vector<EventId> spent;  // Fired or cancelled: Cancel() must say false.
  size_t expected_live = 0;

  // A daemon ticker churning in the background. Exactly one daemon event is
  // pending at any time (each fire schedules the next), so it contributes a
  // constant 1 to pending_events().
  auto daemon = std::make_shared<std::function<void()>>();
  *daemon = [&sim, daemon] { sim.ScheduleDaemon(Micros(50), [daemon] { (*daemon)(); }); };
  sim.ScheduleDaemon(Micros(50), [daemon] { (*daemon)(); });
  ++expected_live;

  for (int round = 0; round < 200; ++round) {
    // Schedule a burst.
    const int burst = static_cast<int>(rng.UniformInt(1, 8));
    for (int i = 0; i < burst; ++i) {
      inflight.push_back(
          sim.Schedule(rng.UniformInt(Micros(10), Millis(3)), [&fired] { ++fired; }));
      ++expected_live;
    }
    EXPECT_EQ(sim.pending_events(), expected_live);
    // Cancel a random subset of whatever we still think is pending.
    for (size_t i = 0; i < inflight.size();) {
      if (rng.Bernoulli(0.3)) {
        EXPECT_TRUE(sim.Cancel(inflight[i]));
        --expected_live;
        spent.push_back(inflight[i]);
        inflight[i] = inflight.back();
        inflight.pop_back();
      } else {
        ++i;
      }
    }
    // Stale cancels must all fail and must not disturb the live count.
    for (const EventId id : spent) {
      EXPECT_FALSE(sim.Cancel(id));
    }
    EXPECT_EQ(sim.pending_events(), expected_live);
    // Periodically drain a slice of time; everything due fires.
    if (round % 5 == 4) {
      const uint64_t before = fired;
      sim.RunUntil(sim.Now() + Millis(1));
      expected_live -= static_cast<size_t>(fired - before);
      // Drop fired events from the inflight set (their cancels must fail).
      for (size_t i = 0; i < inflight.size();) {
        if (!sim.Cancel(inflight[i])) {
          spent.push_back(inflight[i]);
          inflight[i] = inflight.back();
          inflight.pop_back();
        } else {
          // It was still pending; cancelling it succeeded, so account for it.
          --expected_live;
          spent.push_back(inflight[i]);
          inflight[i] = inflight.back();
          inflight.pop_back();
        }
      }
      EXPECT_EQ(sim.pending_events(), expected_live);
    }
  }
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 1u);  // Only the daemon ticker remains.
  // pending_events() never underflowed into size_t territory.
  EXPECT_LT(sim.executed_events(), 1u << 20);
  // Break the ticker's self-referential shared_ptr capture (leak otherwise).
  *daemon = nullptr;
}

// --- Window API (the primitives ShardedEngine drives a shard with) ---

TEST(SimulatorWindowTest, RunWindowExecutesStrictlyBelowEnd) {
  Simulator sim;
  std::vector<TimeNs> fired;
  for (const TimeNs t : {Micros(10), Micros(50), Micros(100), Micros(150)}) {
    sim.ScheduleAt(t, [&fired, &sim] { fired.push_back(sim.Now()); });
  }
  EXPECT_EQ(sim.NextEventTime(), Micros(10));
  sim.RunWindow(Micros(100));  // End is exclusive: the t=100 event stays.
  EXPECT_EQ(fired, (std::vector<TimeNs>{Micros(10), Micros(50)}));
  EXPECT_EQ(sim.NextEventTime(), Micros(100));
  sim.RunWindow(Micros(200));
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(sim.NextEventTime(), -1);
}

TEST(SimulatorWindowTest, RunWindowPicksUpEventsScheduledInsideTheWindow) {
  Simulator sim;
  std::vector<TimeNs> fired;
  sim.ScheduleAt(Micros(10), [&] {
    // Lands inside the open window: must fire in this same window.
    sim.ScheduleAt(Micros(20), [&] { fired.push_back(sim.Now()); });
    // Lands at the horizon: must wait for the next window.
    sim.ScheduleAt(Micros(90), [&] { fired.push_back(sim.Now()); });
  });
  sim.RunWindow(Micros(90));
  EXPECT_EQ(fired, (std::vector<TimeNs>{Micros(20)}));
  sim.RunWindow(Micros(100));
  EXPECT_EQ(fired, (std::vector<TimeNs>{Micros(20), Micros(90)}));
}

TEST(SimulatorWindowTest, AdvanceToMovesClockWithoutExecuting) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(Micros(500), [&] { fired = true; });
  sim.AdvanceTo(Micros(200));
  EXPECT_EQ(sim.Now(), Micros(200));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.NextEventTime(), Micros(500));
  sim.AdvanceTo(Micros(100));  // Never rewinds.
  EXPECT_EQ(sim.Now(), Micros(200));
  sim.Run();
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace mitt::sim
