#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace mitt::sim {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Millis(30), [&] { order.push_back(3); });
  sim.Schedule(Millis(10), [&] { order.push_back(1); });
  sim.Schedule(Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Millis(30));
}

TEST(SimulatorTest, SameTimeFifoBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  TimeNs inner_fired = -1;
  sim.Schedule(Millis(1), [&] {
    sim.Schedule(Millis(2), [&] { inner_fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fired, Millis(3));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  TimeNs fired = -1;
  sim.Schedule(Millis(5), [&] {
    sim.Schedule(-Millis(3), [&] { fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired, Millis(5));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.Schedule(Millis(1), [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // Second cancel is a no-op.
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelUnknownIdFails) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(99999));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.Schedule(Millis(1), [&] { ++count; });
  sim.Schedule(Millis(2), [&] { ++count; });
  sim.Schedule(Millis(10), [&] { ++count; });
  sim.RunUntil(Millis(5));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), Millis(5));
  sim.Run();
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWhenIdle) {
  Simulator sim;
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(sim.Now(), Seconds(3));
}

TEST(SimulatorTest, RunUntilPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(Millis(i), [&] { ++count; });
  }
  EXPECT_TRUE(sim.RunUntilPredicate([&] { return count == 4; }));
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.Now(), Millis(4));
}

TEST(SimulatorTest, RunUntilPredicateExhaustsQueue) {
  Simulator sim;
  sim.Schedule(Millis(1), [] {});
  EXPECT_FALSE(sim.RunUntilPredicate([] { return false; }));
}

TEST(SimulatorTest, PendingAndExecutedCounts) {
  Simulator sim;
  const EventId a = sim.Schedule(Millis(1), [] {});
  sim.Schedule(Millis(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(sim.executed_events(), 1u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelledEventDoesNotAdvanceClock) {
  Simulator sim;
  const EventId id = sim.Schedule(Seconds(100), [] {});
  sim.Cancel(id);
  sim.Schedule(Millis(1), [] {});
  sim.Run();
  EXPECT_EQ(sim.Now(), Millis(1));
}

}  // namespace
}  // namespace mitt::sim
