// mitt::fault tests: plan construction and chaos generation (seeded,
// replayable), the injector's application/skip/logging behavior, the
// CpuPool and Network fault hooks it drives, and the subsystem's core
// promise — a fault-laden scenario is bit-identical at any worker count.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/cpu_pool.h"
#include "src/cluster/network.h"
#include "src/fault/fault_plan.h"
#include "src/fault/plan_serde.h"
#include "src/fault/injector.h"
#include "src/harness/experiment.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"

namespace mitt::fault {
namespace {

auto EpisodeKey(const FaultEpisode& e) {
  return std::make_tuple(e.kind, e.node, e.start, e.duration, e.severity, e.chip);
}

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlanTest, BuildSortsEpisodesIntoDeliveryOrder) {
  FaultPlanBuilder b;
  b.NodePause(/*node=*/2, /*start=*/Millis(50), /*duration=*/Millis(10));
  b.FailSlowDisk(/*node=*/0, /*start=*/Millis(10), /*duration=*/Millis(30), 4.0);
  b.NetworkDegrade(/*node=*/1, /*start=*/Millis(10), /*duration=*/Millis(5), 8.0);
  const FaultPlan plan = b.Build();
  ASSERT_EQ(plan.size(), 3u);
  for (size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan.episodes()[i - 1].start, plan.episodes()[i].start);
  }
  EXPECT_EQ(plan.episodes().back().kind, FaultKind::kNodePause);
}

TEST(FaultPlanTest, RepeatEpisodesIsSeededAndNonOverlapping) {
  const auto make = [](uint64_t seed) {
    FaultPlanBuilder b;
    b.RepeatEpisodes(FaultKind::kNodePause, /*node=*/0, /*horizon=*/Seconds(30),
                     /*mean_gap=*/Millis(500), /*min_on=*/Millis(50), /*max_on=*/Millis(200),
                     /*severity=*/1.0, seed);
    return b.Build();
  };
  const FaultPlan a = make(7);
  const FaultPlan b = make(7);
  const FaultPlan c = make(8);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 3u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(EpisodeKey(a.episodes()[i]), EpisodeKey(b.episodes()[i]));
    EXPECT_GE(a.episodes()[i].duration, Millis(50));
    EXPECT_LE(a.episodes()[i].duration, Millis(200));
    EXPECT_LT(a.episodes()[i].start, Seconds(30));
    if (i > 0) {
      // Quiet gap between consecutive episodes of one (kind, node) stream.
      EXPECT_GE(a.episodes()[i].start, a.episodes()[i - 1].end());
    }
  }
  // A different seed must produce a different schedule.
  bool differs = c.size() != a.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = EpisodeKey(a.episodes()[i]) != EpisodeKey(c.episodes()[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, ChaosPlanDeterministicAndRespectsToggles) {
  ChaosOptions opt;
  opt.fail_slow_disk = true;
  opt.node_pause = true;
  opt.network_degrade = false;
  opt.node_crash = false;
  opt.ssd_read_retry = false;
  opt.network_partition = false;
  opt.mean_gap = Seconds(2);
  const FaultPlan a = GenerateChaosPlan(opt, /*num_nodes=*/4, /*horizon=*/Seconds(20), 11);
  const FaultPlan b = GenerateChaosPlan(opt, 4, Seconds(20), 11);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(EpisodeKey(a.episodes()[i]), EpisodeKey(b.episodes()[i]));
    const FaultKind kind = a.episodes()[i].kind;
    EXPECT_TRUE(kind == FaultKind::kFailSlowDisk || kind == FaultKind::kNodePause)
        << FaultKindName(kind);
    EXPECT_GE(a.episodes()[i].node, 0);
    EXPECT_LT(a.episodes()[i].node, 4);
    EXPECT_LT(a.episodes()[i].start, Seconds(20));
  }
}

// Property sweep over seeds: every GenerateChaosPlan episode lies entirely
// within [0, horizon) with a severity legal for its kind, and distinct seeds
// produce distinct schedules.
TEST(FaultPlanPropertyTest, ChaosPlanEpisodesStayInHorizonWithLegalSeverity) {
  ChaosOptions opt;
  opt.fail_slow_disk = true;
  opt.network_degrade = true;
  opt.network_drop = true;  // Exercise the drop-probability severity branch.
  opt.network_partition = true;
  opt.node_pause = true;
  opt.node_crash = true;
  opt.mean_gap = Seconds(1);
  opt.blast_radius = 1.0;
  const TimeNs horizon = Seconds(10);
  std::string last;
  size_t distinct = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan plan = GenerateChaosPlan(opt, /*num_nodes=*/3, horizon, seed);
    ASSERT_GT(plan.size(), 0u) << "seed " << seed;
    for (const FaultEpisode& e : plan.episodes()) {
      EXPECT_GE(e.start, 0);
      EXPECT_LE(e.end(), horizon) << FaultKindName(e.kind) << " seed " << seed;
      switch (e.kind) {
        case FaultKind::kNetworkDrop:
          EXPECT_GT(e.severity, 0.0);
          EXPECT_LE(e.severity, 1.0);
          break;
        case FaultKind::kFailSlowDisk:
        case FaultKind::kSsdReadRetry:
        case FaultKind::kNetworkDegrade:
          EXPECT_GE(e.severity, 1.0);
          break;
        default:
          break;
      }
    }
    std::string sig;
    for (const FaultEpisode& e : plan.episodes()) {
      sig += EpisodeToLine(e) + "\n";
    }
    distinct += sig != last;
    last = std::move(sig);
  }
  EXPECT_EQ(distinct, 20u);  // Every seed produced a fresh schedule.
}

TEST(FaultPlanPropertyTest, RepeatEpisodesTruncatesAtHorizonAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FaultPlanBuilder b;
    b.RepeatEpisodes(FaultKind::kFailSlowDisk, /*node=*/1, /*horizon=*/Millis(700),
                     /*mean_gap=*/Millis(80), /*min_on=*/Millis(40), /*max_on=*/Millis(300),
                     /*severity=*/6.0, seed);
    const FaultPlan plan = b.Build();
    for (const FaultEpisode& e : plan.episodes()) {
      EXPECT_GE(e.start, 0);
      EXPECT_LE(e.end(), Millis(700)) << "seed " << seed;
      EXPECT_EQ(e.severity, 6.0);
    }
  }
}

// -------------------------------------------------- Overlap policy (builder)

TEST(FaultPlanOverlapTest, WarnPolicyBuildsAndRecordsDeterministicWarnings) {
  FaultPlanBuilder b;  // kWarn is the default policy.
  b.FailSlowDisk(/*node=*/0, /*start=*/Millis(10), /*duration=*/Millis(30), 4.0);
  b.FailSlowDisk(/*node=*/0, /*start=*/Millis(20), /*duration=*/Millis(30), 8.0);
  b.FailSlowDisk(/*node=*/1, /*start=*/Millis(20), /*duration=*/Millis(30), 8.0);
  const FaultPlan plan = b.Build();
  EXPECT_EQ(plan.size(), 3u);  // Overlaps are kept, only flagged.
  ASSERT_EQ(plan.overlap_warnings().size(), 1u);  // Node 1 does not collide.
  // Same input, same warning text — the warning list is part of plan identity.
  FaultPlanBuilder b2;
  b2.FailSlowDisk(0, Millis(10), Millis(30), 4.0);
  b2.FailSlowDisk(0, Millis(20), Millis(30), 8.0);
  b2.FailSlowDisk(1, Millis(20), Millis(30), 8.0);
  EXPECT_EQ(b2.Build().overlap_warnings(), plan.overlap_warnings());
}

TEST(FaultPlanOverlapTest, RejectPolicyThrowsAndAllowIsSilent) {
  const auto build = [](OverlapPolicy policy) {
    FaultPlanBuilder b;
    b.SetOverlapPolicy(policy);
    b.NodePause(/*node=*/2, /*start=*/Millis(5), /*duration=*/Millis(20));
    b.NodePause(/*node=*/2, /*start=*/Millis(15), /*duration=*/Millis(20));
    return b.Build();
  };
  EXPECT_THROW(build(OverlapPolicy::kReject), std::invalid_argument);
  const FaultPlan allowed = build(OverlapPolicy::kAllow);
  EXPECT_EQ(allowed.size(), 2u);
  EXPECT_TRUE(allowed.overlap_warnings().empty());
}

TEST(FaultPlanOverlapTest, AdjacentEpisodesDoNotOverlap) {
  FaultPlanBuilder b;
  b.SetOverlapPolicy(OverlapPolicy::kReject);
  b.NodePause(/*node=*/0, /*start=*/Millis(5), /*duration=*/Millis(10));
  b.NodePause(/*node=*/0, /*start=*/Millis(15), /*duration=*/Millis(10));  // Begins at end.
  EXPECT_NO_THROW(b.Build());
}

// ----------------------------------------------------------------- CpuPool

TEST(CpuPoolFaultTest, PauseDefersQueuedAndArrivingJobs) {
  sim::Simulator sim;
  cluster::CpuPool cpu(&sim, 1);
  std::vector<TimeNs> done;
  cpu.PauseFor(Millis(10));
  EXPECT_TRUE(cpu.paused());
  cpu.Execute(Micros(100), [&] { done.push_back(sim.Now()); });
  sim.Schedule(Millis(5), [&] { cpu.Execute(Micros(100), [&] { done.push_back(sim.Now()); }); });
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], Millis(10) + Micros(100));  // FIFO order survives the pause.
  EXPECT_EQ(done[1], Millis(10) + Micros(200));
  EXPECT_FALSE(cpu.paused());
  EXPECT_EQ(cpu.pauses(), 1u);
}

TEST(CpuPoolFaultTest, OverlappingPausesExtendToFurthestEnd) {
  sim::Simulator sim;
  cluster::CpuPool cpu(&sim, 1);
  TimeNs done = -1;
  cpu.PauseFor(Millis(10));
  sim.Schedule(Millis(4), [&] { cpu.PauseFor(Millis(10)); });  // Until 14ms.
  sim.Schedule(Millis(6), [&] { cpu.PauseFor(Millis(1)); });   // Shorter: no-op.
  cpu.Execute(0, [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done, Millis(14));
  EXPECT_EQ(cpu.pauses(), 2u);  // The subsumed pause does not count.
}

TEST(CpuPoolFaultTest, InFlightBurstFinishesDuringPause) {
  sim::Simulator sim;
  cluster::CpuPool cpu(&sim, 1);
  std::vector<TimeNs> done;
  cpu.Execute(Millis(2), [&] { done.push_back(sim.Now()); });  // On core at t=0.
  cpu.Execute(Millis(1), [&] { done.push_back(sim.Now()); });  // Queued.
  sim.Schedule(Millis(1), [&] { cpu.PauseFor(Millis(9)); });   // Mid-burst pause.
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], Millis(2));   // Stop-the-world does not preempt the core...
  EXPECT_EQ(done[1], Millis(11));  // ...but the next burst waits for the resume.
}

// ----------------------------------------------------------------- Network

TEST(NetworkFaultTest, DelayMultiplierStretchesOneLink) {
  sim::Simulator sim;
  cluster::NetworkParams params;
  params.jitter = 0;
  cluster::Network net(&sim, params, 5);
  net.SetLinkDelayMultiplier(/*peer=*/0, 10.0);
  TimeNs slow = -1, fast = -1;
  net.Deliver(0, [&]() mutable { slow = sim.Now(); });
  net.Deliver(1, [&]() mutable { fast = sim.Now(); });
  sim.Run();
  EXPECT_EQ(fast, params.one_way);
  EXPECT_EQ(slow, 10 * params.one_way);
  net.SetLinkDelayMultiplier(0, 1.0);  // Heal.
  TimeNs healed = -1;
  const TimeNs base = sim.Now();
  net.Deliver(0, [&]() mutable { healed = sim.Now(); });
  sim.Run();
  EXPECT_EQ(healed - base, params.one_way);
}

TEST(NetworkFaultTest, DropIsLostThenRetransmitted) {
  sim::Simulator sim;
  cluster::NetworkParams params;
  params.jitter = 0;
  cluster::Network net(&sim, params, 5);
  net.SetLinkDropProbability(/*peer=*/2, 1.0);
  TimeNs delivered = -1;
  net.Deliver(2, [&]() mutable { delivered = sim.Now(); });
  sim.Run();
  // Lost, then redelivered one retransmit timeout later — never vanished.
  EXPECT_EQ(delivered, params.one_way + params.retransmit_timeout);
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(NetworkFaultTest, PartitionHoldsUntilHealThenFlushesInOrder) {
  sim::Simulator sim;
  cluster::NetworkParams params;
  params.jitter = 0;
  cluster::Network net(&sim, params, 5);
  net.SetLinkPartitioned(/*peer=*/1, true);
  EXPECT_TRUE(net.LinkPartitioned(1));
  std::vector<int> order;
  net.Deliver(1, [&]() mutable { order.push_back(1); });
  net.Deliver(1, [&]() mutable { order.push_back(2); });
  sim.Run();
  EXPECT_TRUE(order.empty());  // Held, not dropped.
  EXPECT_EQ(net.messages_deferred(), 2u);
  net.SetLinkPartitioned(1, false);
  sim.Run();
  ASSERT_EQ(order.size(), 2u);  // Arrival order preserved across the heal.
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(net.messages_delivered(), 2u);
}

// ---------------------------------------------------------------- Injector

cluster::Cluster::Options SmallClusterOptions(int nodes) {
  cluster::Cluster::Options opt;
  opt.num_nodes = nodes;
  opt.node.num_keys = 1 << 12;
  opt.node.os.backend = os::BackendKind::kDiskCfq;
  return opt;
}

TEST(FaultInjectorTest, AppliesClearsAndLogsEpisodes) {
  sim::Simulator sim;
  obs::Tracer tracer;
  sim.set_tracer(&tracer);
  cluster::Cluster c(&sim, SmallClusterOptions(2));
  FaultPlanBuilder b;
  b.FailSlowDisk(/*node=*/0, Millis(1), Millis(4), 8.0);
  b.NodePause(/*node=*/1, Millis(2), Millis(3));
  FaultInjector inj(&sim, &c, b.Build());
  inj.Start();
  // Fault events are daemons: a workload event must keep Run() alive past
  // the last episode end.
  bool saw_peak = false;
  sim.Schedule(Millis(3), [&] {
    saw_peak = c.node(0).os().disk()->service_time_multiplier() > 1.0;
  });
  sim.Schedule(Millis(10), [] {});
  sim.Run();
  EXPECT_TRUE(saw_peak);
  EXPECT_EQ(inj.episodes_begun(), 2u);
  EXPECT_EQ(inj.episodes_skipped(), 0u);
  EXPECT_DOUBLE_EQ(c.node(0).os().disk()->service_time_multiplier(), 1.0);  // Healed.
  ASSERT_EQ(inj.applied().size(), 2u);
  EXPECT_EQ(inj.applied()[0].kind, FaultKind::kFailSlowDisk);
  EXPECT_EQ(inj.applied()[0].start, Millis(1));
  EXPECT_EQ(inj.applied()[0].end, Millis(5));
  EXPECT_EQ(inj.applied()[1].kind, FaultKind::kNodePause);
#if MITT_OBS_ENABLED
  // Episode windows show in the trace as fault_active spans, stamped at
  // begin so even run-outliving faults are visible.
  int fault_spans = 0;
  for (const auto& span : tracer.OrderedSpans()) {
    if (span.kind == obs::SpanKind::kFaultActive) {
      ++fault_spans;
      EXPECT_EQ(span.end - span.begin, span.node == 0 ? Millis(4) : Millis(3));
    }
  }
  EXPECT_EQ(fault_spans, 2);
#endif
}

TEST(FaultInjectorTest, SkipsEpisodesTheWorldCannotHost) {
  sim::Simulator sim;
  cluster::Cluster c(&sim, SmallClusterOptions(2));  // Disk backend, 2 nodes.
  FaultPlanBuilder b;
  b.SsdReadRetry(/*node=*/0, Millis(1), Millis(2), 25.0);  // No SSD here.
  b.NodePause(/*node=*/9, Millis(1), Millis(2));           // No such node.
  FaultInjector inj(&sim, &c, b.Build());
  inj.Start();
  sim.Schedule(Millis(5), [] {});
  sim.Run();
  EXPECT_EQ(inj.episodes_begun(), 0u);
  EXPECT_EQ(inj.episodes_skipped(), 2u);
  EXPECT_TRUE(inj.applied().empty());
}

// ------------------------------------------------- End-to-end determinism

// The subsystem's headline contract: a fault-laden scenario produces
// bit-identical latency samples, fault logs, and traces whether trials run
// serially or across 4 workers.
TEST(FaultDeterminismTest, ScenarioBitIdenticalAcrossWorkerCounts) {
  harness::ExperimentOptions opt;
  opt.num_nodes = 3;
  opt.num_clients = 2;
  opt.measure_requests = 400;
  opt.warmup_requests = 40;
  opt.pin_primary_node = 0;
  opt.noise = harness::NoiseKind::kNone;
  opt.deadline = Millis(15);
  opt.hedge_delay = Millis(15);
  opt.app_timeout = Millis(15);
  opt.trace = true;
  opt.seed = 99;
  FaultPlanBuilder b;
  b.FailSlowDisk(/*node=*/0, Millis(20), Millis(400), 6.0);
  b.NodePause(/*node=*/1, Millis(50), Millis(30));
  b.NetworkDegrade(/*node=*/2, Millis(10), Millis(200), 20.0);
  opt.fault_plan = b.Build();

  std::vector<harness::Trial> trials;
  for (const auto kind : {harness::StrategyKind::kBase, harness::StrategyKind::kAppTimeout,
                          harness::StrategyKind::kMittos}) {
    trials.push_back({opt, kind, ""});
  }
  const auto serial = harness::RunTrialsParallel(trials, /*workers=*/1);
  const auto fanned = harness::RunTrialsParallel(trials, /*workers=*/4);

  ASSERT_EQ(serial.size(), fanned.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const harness::RunResult& a = serial[i];
    const harness::RunResult& f = fanned[i];
    EXPECT_EQ(a.get_latencies.samples(), f.get_latencies.samples()) << a.name;
    EXPECT_EQ(a.ebusy_failovers, f.ebusy_failovers) << a.name;
    EXPECT_GT(a.fault_episodes, 0u) << a.name;
    EXPECT_EQ(a.fault_episodes, f.fault_episodes) << a.name;
    ASSERT_EQ(a.fault_log, f.fault_log) << a.name;
    ASSERT_EQ(a.trace_spans.size(), f.trace_spans.size()) << a.name;
    for (size_t s = 0; s < a.trace_spans.size(); ++s) {
      const obs::SpanRecord& x = a.trace_spans[s];
      const obs::SpanRecord& y = f.trace_spans[s];
      EXPECT_EQ(std::make_tuple(x.request_id, x.begin, x.end, x.node, x.kind),
                std::make_tuple(y.request_id, y.begin, y.end, y.node, y.kind));
    }
  }
  // And the faults genuinely fired: the fail-slow episode is in every log.
  bool saw_failslow = false;
  for (const auto& e : serial[0].fault_log) {
    saw_failslow |= e.kind == FaultKind::kFailSlowDisk;
  }
  EXPECT_TRUE(saw_failslow);
}

// Sharded analogue: a 128-node world auto-shards onto the PDES engine, the
// injector routes episodes through ScheduleGlobal (quiesced), and the fault
// log plus every latency sample must be bit-identical at any intra-trial
// worker count — including the env-resolved default (intra_workers=0).
TEST(FaultDeterminismTest, ShardedScenarioBitIdenticalAcrossIntraWorkers) {
  harness::ExperimentOptions opt;
  opt.num_nodes = 128;
  opt.num_clients = 32;
  opt.num_keys_per_node = 256;
  opt.cache_pages = 128;
  opt.warm_fraction = 0.5;
  opt.measure_requests = 600;
  opt.warmup_requests = 50;
  opt.noise = harness::NoiseKind::kNone;
  opt.deadline = Millis(15);
  opt.seed = 1234;
  FaultPlanBuilder b;
  b.FailSlowDisk(/*node=*/5, Millis(20), Millis(400), 6.0);
  b.NodePause(/*node=*/70, Millis(50), Millis(30));
  b.NetworkDegrade(/*node=*/100, Millis(10), Millis(200), 20.0);
  opt.fault_plan = b.Build();

  auto run = [&opt](int intra_workers) {
    harness::ExperimentOptions o = opt;
    o.intra_workers = intra_workers;
    harness::Experiment experiment(o);
    return experiment.Run(harness::StrategyKind::kMittos);
  };
  const harness::RunResult ref = run(1);
  EXPECT_EQ(ref.num_shards, 4) << "128 nodes must auto-shard";
  EXPECT_GT(ref.fault_episodes, 0u);
  for (const int workers : {4, 0}) {
    const harness::RunResult r = run(workers);
    EXPECT_EQ(r.get_latencies.samples(), ref.get_latencies.samples()) << workers;
    EXPECT_EQ(r.ebusy_failovers, ref.ebusy_failovers) << workers;
    EXPECT_EQ(r.fault_episodes, ref.fault_episodes) << workers;
    ASSERT_EQ(r.fault_log, ref.fault_log) << "intra_workers=" << workers;
  }
}

}  // namespace
}  // namespace mitt::fault
