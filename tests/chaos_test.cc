// Chaos-search subsystem tests (DESIGN.md §4j): plan/corpus serde
// round-trips, mutator canonicalization properties, coverage-map behavior,
// oracle unit checks, shrinker minimality, the end-to-end search demo over
// the planted liveness bug, and grid bit-identity of the checked-in corpus.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/chaos/corpus.h"
#include "src/chaos/coverage.h"
#include "src/chaos/explorer.h"
#include "src/chaos/mutator.h"
#include "src/chaos/oracles.h"
#include "src/chaos/shrinker.h"
#include "src/chaos/world.h"
#include "src/fault/fault_plan.h"
#include "src/fault/plan_serde.h"

namespace mitt {
namespace {

using chaos::ChaosWorldOptions;
using chaos::CorpusEntry;
using chaos::Violation;
using fault::FaultEpisode;
using fault::FaultKind;
using fault::FaultPlan;

FaultPlan SamplePlan() {
  return fault::FaultPlanBuilder()
      .NodePause(1, Millis(90), Millis(20))
      .NetworkDrop(0, Millis(300), Millis(50), 0.1871020748648054)
      .FailSlowDisk(2, Millis(400), Millis(30), 7.25)
      .Build();
}

// --- Serde -----------------------------------------------------------------

TEST(PlanSerdeTest, RoundTripIsExact) {
  const FaultPlan plan = SamplePlan();
  const std::string text = fault::FaultPlanToText(plan);
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(fault::FaultPlanFromText(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.episodes().size(), plan.episodes().size());
  for (size_t i = 0; i < plan.episodes().size(); ++i) {
    EXPECT_EQ(parsed.episodes()[i], plan.episodes()[i]) << "episode " << i;
  }
  // print(parse(print(p))) stabilizes on the first print (exact round-trip).
  EXPECT_EQ(fault::FaultPlanToText(parsed), text);
}

TEST(PlanSerdeTest, MalformedLinesAreHardErrors) {
  FaultPlan parsed;
  std::string error;
  EXPECT_FALSE(fault::FaultPlanFromText("episode kind=wat node=0 start=0 dur=1 severity=1",
                                        &parsed, &error));
  EXPECT_FALSE(fault::FaultPlanFromText(
      "episode kind=node_pause node=0 start=0 dur=1 severity=1 bogus=3", &parsed, &error));
}

TEST(CorpusSerdeTest, RoundTripPreservesWorldPlanAndExpectations) {
  CorpusEntry entry;
  entry.world.num_nodes = 5;
  entry.world.num_clients = 7;
  entry.world.requests = 123;
  entry.world.warmup = 11;
  entry.world.deadline = Millis(9);
  entry.world.horizon = Millis(321);
  entry.world.num_shards = 1;
  entry.world.seed = 99;
  entry.world.inject_bug = true;
  entry.world.tenants = true;
  entry.plan = SamplePlan();
  entry.expect = {"completion", "breaker_legal"};
  entry.note = "unit-test provenance";

  CorpusEntry parsed;
  std::string error;
  ASSERT_TRUE(chaos::CorpusEntryFromText(chaos::CorpusEntryToText(entry), &parsed, &error))
      << error;
  EXPECT_EQ(parsed.world.num_nodes, 5);
  EXPECT_EQ(parsed.world.num_clients, 7);
  EXPECT_EQ(parsed.world.requests, 123u);
  EXPECT_EQ(parsed.world.warmup, 11u);
  EXPECT_EQ(parsed.world.deadline, Millis(9));
  EXPECT_EQ(parsed.world.horizon, Millis(321));
  EXPECT_EQ(parsed.world.num_shards, 1);
  EXPECT_EQ(parsed.world.seed, 99u);
  EXPECT_TRUE(parsed.world.inject_bug);
  EXPECT_TRUE(parsed.world.tenants);
  EXPECT_EQ(parsed.expect, entry.expect);
  ASSERT_EQ(parsed.plan.episodes().size(), entry.plan.episodes().size());
  for (size_t i = 0; i < entry.plan.episodes().size(); ++i) {
    EXPECT_EQ(parsed.plan.episodes()[i], entry.plan.episodes()[i]);
  }
}

TEST(CorpusSerdeTest, MissingWorldLineAndUnknownKeysFailLoudly) {
  CorpusEntry parsed;
  std::string error;
  EXPECT_FALSE(chaos::CorpusEntryFromText("# mittos chaos corpus v1\nexpect completion\n",
                                          &parsed, &error));
  EXPECT_FALSE(chaos::CorpusEntryFromText(
      "# mittos chaos corpus v1\nworld nodes=3 clients=4 requests=10 warmup=1 "
      "deadline=1 horizon=1000 shards=1 seed=1 bug=0 tenants=0 wat=1\n",
      &parsed, &error));
}

// --- Mutator ---------------------------------------------------------------

void ExpectCanonical(const FaultPlan& plan, const chaos::MutatorOptions& opt) {
  EXPECT_LE(plan.size(), opt.max_episodes);
  for (const FaultEpisode& e : plan.episodes()) {
    EXPECT_GE(e.start, 0);
    EXPECT_LE(e.end(), opt.horizon) << fault::EpisodeToLine(e);
    EXPECT_GE(e.duration, opt.min_duration);
    EXPECT_GE(e.node, -1);
    EXPECT_LT(e.node, opt.num_nodes);
    if (e.kind == FaultKind::kNetworkDrop) {
      EXPECT_GE(e.severity, 0.05);
      EXPECT_LE(e.severity, 1.0);
    } else if (e.kind == FaultKind::kFailSlowDisk || e.kind == FaultKind::kSsdReadRetry ||
               e.kind == FaultKind::kNetworkDegrade) {
      EXPECT_GE(e.severity, 1.0);
      EXPECT_LE(e.severity, 100.0);
    }
  }
  // No same-target overlaps survive canonicalization.
  EXPECT_TRUE(fault::FindOverlaps(plan.episodes()).empty());
}

TEST(PlanMutatorTest, GeneratedChildrenAreAlwaysCanonical) {
  chaos::MutatorOptions opt;
  chaos::PlanMutator mutator(opt, /*seed=*/17);
  FaultPlan parent = mutator.RandomPlan();
  ExpectCanonical(parent, opt);
  FaultPlan other = mutator.RandomPlan();
  for (int i = 0; i < 200; ++i) {
    const FaultPlan child = i % 3 == 2 ? mutator.Splice(parent, other) : mutator.Mutate(parent);
    ExpectCanonical(child, opt);
    if (!child.empty()) {
      parent = child;
    }
  }
}

TEST(PlanMutatorTest, SameSeedSameChildrenDistinctSeedDistinct) {
  chaos::MutatorOptions opt;
  chaos::PlanMutator a(opt, 5);
  chaos::PlanMutator b(opt, 5);
  chaos::PlanMutator c(opt, 6);
  bool any_diff_from_c = false;
  for (int i = 0; i < 20; ++i) {
    const FaultPlan pa = a.RandomPlan();
    const FaultPlan pb = b.RandomPlan();
    const FaultPlan pc = c.RandomPlan();
    EXPECT_EQ(fault::FaultPlanToText(pa), fault::FaultPlanToText(pb)) << "draw " << i;
    any_diff_from_c = any_diff_from_c ||
                      fault::FaultPlanToText(pa) != fault::FaultPlanToText(pc);
  }
  EXPECT_TRUE(any_diff_from_c);
}

TEST(PlanMutatorTest, CanonicalizeSlidesBackEpisodesPastHorizon) {
  chaos::MutatorOptions opt;
  opt.horizon = Millis(100);
  chaos::PlanMutator mutator(opt, 1);
  FaultEpisode e;
  e.kind = FaultKind::kNodePause;
  e.node = 0;
  e.start = Millis(95);
  e.duration = Millis(40);  // Would end at 135ms.
  const FaultPlan canon = mutator.Canonicalize({e});
  ASSERT_EQ(canon.size(), 1u);
  EXPECT_EQ(canon.episodes()[0].end(), Millis(100));
  EXPECT_EQ(canon.episodes()[0].duration, Millis(40));  // Slid, not truncated.
}

// --- Coverage --------------------------------------------------------------

TEST(CoverageMapTest, SecondIdenticalTrialContributesNothing) {
  const ChaosWorldOptions world;
  const chaos::TrialOutcome outcome = chaos::RunChaosTrial(world, SamplePlan());
  const std::vector<chaos::Feature> features =
      chaos::CollectFeatures(SamplePlan(), outcome.results);
  EXPECT_FALSE(features.empty());

  chaos::CoverageMap map;
  EXPECT_GT(map.CountNovel(features), 0u);
  EXPECT_GT(map.AddAll(features), 0u);
  EXPECT_EQ(map.CountNovel(features), 0u);
  EXPECT_EQ(map.AddAll(features), 0u);

  // A different plan shape contributes at least a plan-namespace feature.
  const std::vector<chaos::Feature> empty_features =
      chaos::CollectFeatures(FaultPlan(), outcome.results);
  EXPECT_GT(map.CountNovel(empty_features), 0u);
}

// --- Oracles ---------------------------------------------------------------

harness::RunResult MakeCleanResult() {
  harness::RunResult r;
  r.name = "unit";
  r.oracle.enabled = true;
  r.oracle.gets_issued = 10;
  r.oracle.gets_done = 10;
  r.oracle.done_ok = 10;
  r.max_sent_deadline = Millis(1);
  return r;
}

std::set<std::string> OracleNames(const std::vector<Violation>& v) {
  std::set<std::string> names;
  for (const Violation& x : v) {
    names.insert(x.oracle);
  }
  return names;
}

TEST(OraclesTest, CleanHarvestIsViolationFree) {
  std::vector<Violation> v;
  chaos::CheckOracles(MakeCleanResult(), /*resilient=*/true, /*tenants=*/false, &v);
  EXPECT_TRUE(v.empty());
}

TEST(OraclesTest, CountersTripTheirOracles) {
  harness::RunResult r = MakeCleanResult();
  r.oracle.gets_done = 9;       // completion
  r.oracle.gets_done_duplicate = 1;  // exactly_once
  r.oracle.done_ok = 7;         // conservation (7 != 9)
  r.oracle.budget_regressions = 2;   // budget_monotone
  r.unbounded_deadline_tries = 1;    // bounded_sends
  std::vector<Violation> v;
  chaos::CheckOracles(r, /*resilient=*/true, /*tenants=*/false, &v);
  const std::set<std::string> names = OracleNames(v);
  EXPECT_TRUE(names.count("completion"));
  EXPECT_TRUE(names.count("exactly_once"));
  EXPECT_TRUE(names.count("conservation"));
  EXPECT_TRUE(names.count("budget_monotone"));
  EXPECT_TRUE(names.count("bounded_sends"));
}

TEST(OraclesTest, BreakerChainResetsAtSegmentBoundaries) {
  using resilience::BreakerState;
  harness::RunResult r = MakeCleanResult();
  // Two trackers (one per shard), each with a legal chain for replica 0 that
  // ends open. Concatenated WITHOUT segment info this would read
  // open -> closed->open: illegal.
  r.oracle.breaker_log = {
      {0, BreakerState::kClosed, BreakerState::kOpen, 100},
      {0, BreakerState::kClosed, BreakerState::kOpen, 150},
  };
  std::vector<Violation> v;
  chaos::CheckOracles(r, /*resilient=*/true, /*tenants=*/false, &v);
  EXPECT_EQ(OracleNames(v).count("breaker_legal"), 1u);

  r.oracle.breaker_segments = {0, 1};
  v.clear();
  chaos::CheckOracles(r, /*resilient=*/true, /*tenants=*/false, &v);
  EXPECT_TRUE(v.empty());

  // Within one segment, an illegal edge still fires.
  r.oracle.breaker_log = {
      {0, BreakerState::kClosed, BreakerState::kOpen, 100},
      {0, BreakerState::kOpen, BreakerState::kClosed, 150},  // open->closed: illegal.
  };
  r.oracle.breaker_segments = {0};
  v.clear();
  chaos::CheckOracles(r, /*resilient=*/true, /*tenants=*/false, &v);
  EXPECT_EQ(OracleNames(v).count("breaker_legal"), 1u);

  // A capped-out log is skipped rather than half-checked.
  r.oracle.breaker_log_dropped = 1;
  v.clear();
  chaos::CheckOracles(r, /*resilient=*/true, /*tenants=*/false, &v);
  EXPECT_TRUE(v.empty());
}

// --- Trials, shrinking, search --------------------------------------------

TEST(ChaosTrialTest, BenignWorldHasNoViolations) {
  const ChaosWorldOptions world;
  const chaos::TrialOutcome outcome = chaos::RunChaosTrial(world, FaultPlan());
  for (const Violation& v : outcome.violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.strategy << ": " << v.detail;
  }
  EXPECT_EQ(outcome.results.size(), world.strategies.size());
  EXPECT_FALSE(outcome.fingerprint.empty());
}

TEST(ChaosTrialTest, FingerprintBitIdenticalAcrossWorkerGrid) {
  const ChaosWorldOptions world;
  const FaultPlan plan = SamplePlan();
  const chaos::TrialOutcome base = chaos::RunChaosTrial(world, plan, 1, 1);
  for (const auto& [tw, iw] : std::vector<std::pair<int, int>>{{4, 1}, {1, 2}, {4, 2}}) {
    const chaos::TrialOutcome other = chaos::RunChaosTrial(world, plan, tw, iw);
    EXPECT_EQ(other.fingerprint, base.fingerprint) << "trial=" << tw << " intra=" << iw;
  }
}

// The acceptance demo: the planted PR-5 denied-retry hang (behind
// test_swallow_late_reply) is found by the coverage-guided search within a
// small trial budget and shrunk to a <=3-episode reproducer that still
// trips the completion oracle.
TEST(ChaosSearchTest, FindsAndShrinksPlantedLivenessBug) {
  chaos::ExplorerOptions opt;
  opt.world.inject_bug = true;
  opt.max_trials = 60;
  opt.seed = 7;
  opt.max_findings = 1;
  const chaos::SearchReport report = chaos::RunSearch(opt);
  ASSERT_EQ(report.findings.size(), 1u);
  const chaos::Finding& f = report.findings[0];
  EXPECT_EQ(f.oracle, "completion");
  EXPECT_LE(f.shrunk.size(), 3u);
  EXPECT_GT(f.shrunk.size(), 0u);

  // The minimized plan still reproduces, and does NOT fire once the bug
  // flag is dropped (the reproducer tracks the bug, not the schedule).
  chaos::ChaosWorldOptions fixed = opt.world;
  fixed.inject_bug = false;
  const chaos::TrialOutcome with_bug = chaos::RunChaosTrial(opt.world, f.shrunk);
  const chaos::TrialOutcome without = chaos::RunChaosTrial(fixed, f.shrunk);
  EXPECT_EQ(OracleNames(with_bug.violations).count("completion"), 1u);
  EXPECT_EQ(OracleNames(without.violations).count("completion"), 0u);
}

TEST(ChaosSearchTest, SearchIsDeterministic) {
  chaos::ExplorerOptions opt;
  opt.max_trials = 12;
  opt.seed = 3;
  const chaos::SearchReport a = chaos::RunSearch(opt);
  const chaos::SearchReport b = chaos::RunSearch(opt);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  EXPECT_EQ(a.coverage_features, b.coverage_features);
  EXPECT_EQ(a.findings.size(), b.findings.size());
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

TEST(ShrinkerTest, ShrunkPlanIsOneMinimal) {
  std::string error;
  CorpusEntry entry;
  ASSERT_TRUE(chaos::LoadCorpusEntry(
      std::string(MITT_TEST_DATA_DIR) + "/chaos_corpus/completion.chaos", &entry, &error))
      << error;
  ASSERT_FALSE(entry.expect.empty());
  const chaos::ShrinkResult result =
      chaos::ShrinkPlan(entry.world, entry.plan, entry.expect.front(), chaos::ShrinkOptions{});
  ASSERT_TRUE(result.reproduced);
  EXPECT_LE(result.plan.size(), entry.plan.size());
  // 1-minimality: removing any single episode stops the oracle firing.
  for (size_t skip = 0; skip < result.plan.size(); ++skip) {
    std::vector<FaultEpisode> eps;
    for (size_t i = 0; i < result.plan.size(); ++i) {
      if (i != skip) {
        eps.push_back(result.plan.episodes()[i]);
      }
    }
    const chaos::TrialOutcome outcome =
        chaos::RunChaosTrial(entry.world, FaultPlan(std::move(eps)));
    EXPECT_EQ(OracleNames(outcome.violations).count(entry.expect.front()), 0u)
        << "still fires without episode " << skip;
  }
}

// The checked-in reproducers replay exactly: expected oracles fire, nothing
// else does, and the fingerprint is grid-stable (the CI replay contract).
TEST(ChaosCorpusTest, CheckedInReproducersReplay) {
  for (const char* name : {"completion.chaos", "benign.chaos"}) {
    SCOPED_TRACE(name);
    std::string error;
    CorpusEntry entry;
    ASSERT_TRUE(chaos::LoadCorpusEntry(
        std::string(MITT_TEST_DATA_DIR) + "/chaos_corpus/" + name, &entry, &error))
        << error;
    const chaos::TrialOutcome base = chaos::RunChaosTrial(entry.world, entry.plan, 1, 1);
    const chaos::TrialOutcome far = chaos::RunChaosTrial(entry.world, entry.plan, 4, 2);
    EXPECT_EQ(base.fingerprint, far.fingerprint);
    EXPECT_EQ(OracleNames(base.violations),
              std::set<std::string>(entry.expect.begin(), entry.expect.end()));
  }
}

}  // namespace
}  // namespace mitt
