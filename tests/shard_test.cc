// ShardedEngine (src/sim/sharded_engine.h): conservative-PDES unit tests
// plus the end-to-end determinism properties the whole PR hangs on —
// scorecards and trace exports must be *byte-identical* at any
// MITT_INTRA_WORKERS x MITT_TRIAL_WORKERS combination.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/fault/fault_plan.h"
#include "src/harness/experiment.h"
#include "src/harness/scenario_runner.h"
#include "src/obs/export.h"
#include "src/sim/sharded_engine.h"

namespace mitt {
namespace {

using harness::StrategyKind;

// ------------------------------------------------------------ engine basics

TEST(ShardedEngineTest, SingleShardMatchesPlainSimulator) {
  // One shard, no lookahead needed: the engine degenerates to Simulator::Run.
  sim::ShardedEngine::Options opt;
  opt.num_shards = 1;
  sim::ShardedEngine engine(opt);
  std::vector<int> order;
  engine.shard(0)->ScheduleAt(Micros(20), [&] { order.push_back(2); });
  engine.shard(0)->ScheduleAt(Micros(10), [&] { order.push_back(1); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(engine.executed_events(), 2u);
  EXPECT_EQ(engine.cross_shard_messages(), 0u);
}

TEST(ShardedEngineTest, PostDeliversInDeterministicOrder) {
  // Messages from two source shards to one destination, tied on time: drain
  // order must be (when, src, send-seq) regardless of worker count.
  for (const int workers : {1, 2, 3}) {
    sim::ShardedEngine::Options opt;
    opt.num_shards = 3;
    opt.lookahead = Micros(100);
    opt.workers = workers;
    sim::ShardedEngine e2(opt);
    std::vector<int> arrivals;
    // Shards 1 and 2 each send two messages to shard 0 at the same time;
    // (src, k) is encoded in the arrival log to expose the tie-break.
    for (const int src : {2, 1}) {
      e2.shard(src)->ScheduleAt(Micros(10), [&e2, &arrivals, src] {
        for (int k = 0; k < 2; ++k) {
          e2.Post(0, Micros(500), [&arrivals, src, k] { arrivals.push_back(src * 10 + k); });
        }
      });
    }
    e2.Run();
    // Equal time -> ascending src, then send order within the pair.
    EXPECT_EQ(arrivals, (std::vector<int>{10, 11, 20, 21})) << "workers=" << workers;
    EXPECT_EQ(e2.cross_shard_messages(), 4u);
  }
}

TEST(ShardedEngineTest, GlobalEventsRunQuiescedBeforeEqualTimeShardEvents) {
  sim::ShardedEngine::Options opt;
  opt.num_shards = 2;
  opt.lookahead = Micros(100);
  sim::ShardedEngine engine(opt);
  std::vector<int> order;
  engine.shard(1)->ScheduleAt(Micros(50), [&] { order.push_back(2); });
  engine.ScheduleGlobal(Micros(50), [&] {
    // Quiesced: both shard clocks have been advanced to exactly this time.
    EXPECT_EQ(engine.shard(0)->Now(), Micros(50));
    EXPECT_EQ(engine.shard(1)->Now(), Micros(50));
    order.push_back(1);
  });
  engine.shard(0)->ScheduleAt(Micros(10), [&] { order.push_back(0); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ShardedEngineTest, CriticalPathAccountingIsConsistent) {
  // cp(1) counts every windowed event; cp is monotonically non-increasing in
  // the worker count; cp(w) is a fixed property of the schedule, not of the
  // worker count the engine actually ran with.
  std::vector<uint64_t> cp1, cp8;
  for (const int workers : {1, 4}) {
    sim::ShardedEngine::Options opt;
    opt.num_shards = 8;
    opt.lookahead = Micros(100);
    opt.workers = workers;
    sim::ShardedEngine engine(opt);
    std::vector<std::shared_ptr<std::function<void(int)>>> chains;
    for (int s = 0; s < 8; ++s) {
      // Uneven load: shard s runs s+1 chains of 50 self-rescheduling events.
      for (int c = 0; c <= s; ++c) {
        auto* sim = engine.shard(s);
        auto chain = std::make_shared<std::function<void(int)>>();
        *chain = [sim, chain](int left) {
          if (left > 0) {
            sim->ScheduleAt(sim->Now() + Micros(30), [chain, left] { (*chain)(left - 1); });
          }
        };
        sim->ScheduleAt(Micros(1) * (c + 1), [chain] { (*chain)(49); });
        chains.push_back(std::move(chain));
      }
    }
    engine.Run();
    for (auto& chain : chains) {
      *chain = nullptr;  // Break the self-reference cycle (LSan flags it).
    }
    EXPECT_EQ(engine.critical_path_events(1), engine.executed_events());
    EXPECT_GE(engine.critical_path_events(1), engine.critical_path_events(2));
    EXPECT_GE(engine.critical_path_events(2), engine.critical_path_events(4));
    EXPECT_GE(engine.critical_path_events(4), engine.critical_path_events(8));
    EXPECT_GT(engine.critical_path_events(8), 0u);
    EXPECT_EQ(engine.critical_path_events(3), 0u) << "untracked worker count";
    cp1.push_back(engine.critical_path_events(1));
    cp8.push_back(engine.critical_path_events(8));
  }
  EXPECT_EQ(cp1[0], cp1[1]);  // Same schedule -> same accounting at any workers.
  EXPECT_EQ(cp8[0], cp8[1]);
}

TEST(ShardedEngineTest, WorkerCountDoesNotChangeWindowCount) {
  auto run = [](int workers) {
    sim::ShardedEngine::Options opt;
    opt.num_shards = 4;
    opt.lookahead = Micros(100);
    opt.workers = workers;
    sim::ShardedEngine engine(opt);
    uint64_t bounces = 0;
    std::function<void(int)> bounce = [&](int dst) {
      if (++bounces >= 1000) {
        return;
      }
      engine.Post((dst + 1) % 4, engine.shard(dst)->Now() + Micros(120),
                  [&bounce, dst] { bounce((dst + 1) % 4); });
    };
    engine.shard(0)->ScheduleAt(Micros(5), [&bounce] { bounce(0); });
    engine.Run();
    return std::tuple(engine.windows_run(), engine.executed_events(),
                      engine.cross_shard_messages(), engine.Now());
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(4), base);
  EXPECT_EQ(run(8), base);  // Caps at num_shards.
}

TEST(ShardedEngineTest, FusionFastPathPreservesScheduleByteForByte) {
  // A world built to live in the quiet-frontier regime: shard 2 self-chains
  // with gaps smaller than the lookahead (so it is the lone shard below the
  // window horizon for long stretches) and every 40th link posts across the
  // ring (forcing fallbacks to the full barrier path). With fusion on, the
  // fast path must engage — and every observable, including the per-shard
  // event order and the *window count*, must be byte-identical to the
  // unfused engine at any worker count.
  auto run = [](int fusion, int workers) {
    sim::ShardedEngine::Options opt;
    opt.num_shards = 4;
    opt.lookahead = Micros(100);
    opt.workers = workers;
    opt.fusion = fusion;
    opt.rebalance_period = 0;
    sim::ShardedEngine engine(opt);
    std::vector<std::vector<int>> logs(4);  // Per-shard: written only by its owner.
    std::function<void(int, int)> link = [&](int shard, int left) {
      logs[static_cast<size_t>(shard)].push_back(left);
      if (left <= 0) {
        return;
      }
      auto* sim = engine.shard(shard);
      if (left % 40 == 0) {
        const int dst = (shard + 1) % 4;
        engine.Post(dst, sim->Now() + Micros(120),
                    [&link, dst, left] { link(dst, left - 1); });
      } else {
        sim->ScheduleAt(sim->Now() + Micros(30), [&link, shard, left] { link(shard, left - 1); });
      }
    };
    engine.shard(2)->ScheduleAt(Micros(5), [&link] { link(2, 400); });
    engine.Run();
    return std::tuple(engine.windows_run(), engine.fused_windows(), engine.executed_events(),
                      engine.cross_shard_messages(), engine.Now(), logs);
  };
  const auto fused = run(1, 1);
  const auto unfused = run(0, 1);
  EXPECT_GT(std::get<1>(fused), 0u) << "fast path never engaged";
  EXPECT_EQ(std::get<1>(unfused), 0u);
  EXPECT_EQ(std::get<0>(fused), std::get<0>(unfused)) << "fusion changed the window count";
  EXPECT_EQ(std::get<2>(fused), std::get<2>(unfused));
  EXPECT_EQ(std::get<3>(fused), std::get<3>(unfused));
  EXPECT_EQ(std::get<4>(fused), std::get<4>(unfused));
  EXPECT_EQ(std::get<5>(fused), std::get<5>(unfused)) << "event order diverged";
  EXPECT_EQ(run(1, 4), fused) << "fusion decisions depended on worker count";
}

TEST(ShardedEngineTest, AdaptiveRebalanceIsScheduleInvariantAndBalances) {
  // Skewed load (shard s runs s+1 event chains): the adaptive LPT repack
  // must leave every schedule observable untouched — it only moves shards
  // between threads — while packing the hypothetical 4-worker bins tighter
  // than the static s % 4 map. Period 0 keeps the static map, in which case
  // the adaptive and static imbalance ratios coincide by construction.
  auto run = [](int period, int workers) {
    sim::ShardedEngine::Options opt;
    opt.num_shards = 8;
    opt.lookahead = Micros(100);
    opt.workers = workers;
    opt.rebalance_period = period;
    opt.fusion = 0;
    sim::ShardedEngine engine(opt);
    std::vector<std::shared_ptr<std::function<void(int)>>> chains;
    for (int s = 0; s < 8; ++s) {
      for (int c = 0; c <= s; ++c) {
        auto* sim = engine.shard(s);
        auto chain = std::make_shared<std::function<void(int)>>();
        *chain = [sim, chain](int left) {
          if (left > 0) {
            sim->ScheduleAt(sim->Now() + Micros(30), [chain, left] { (*chain)(left - 1); });
          }
        };
        sim->ScheduleAt(Micros(1) * (c + 1), [chain] { (*chain)(199); });
        chains.push_back(std::move(chain));
      }
    }
    engine.Run();
    for (auto& chain : chains) {
      *chain = nullptr;  // Break the self-reference cycle (LSan flags it).
    }
    return std::tuple(engine.windows_run(), engine.executed_events(), engine.Now(),
                      engine.imbalance_ratio(4), engine.imbalance_ratio_static(4));
  };
  const auto statc = run(0, 1);
  const auto adaptive = run(8, 1);
  EXPECT_EQ(std::get<0>(statc), std::get<0>(adaptive));
  EXPECT_EQ(std::get<1>(statc), std::get<1>(adaptive));
  EXPECT_EQ(std::get<2>(statc), std::get<2>(adaptive));
  EXPECT_EQ(std::get<3>(statc), std::get<4>(statc)) << "period 0 must keep the static map";
  EXPECT_LT(std::get<3>(adaptive), std::get<4>(adaptive))
      << "LPT should beat s % w on a skewed world";
  // Accounting (including imbalance) is derived from event counts, so it is
  // itself bit-deterministic across worker counts.
  EXPECT_EQ(run(8, 4), adaptive);
}

// ------------------------------------- 1000-node chaos scorecard property

// The PR's headline property: a 1000-node chaos scenario — auto-sharded onto
// the PDES engine — produces a byte-identical scorecard across every
// MITT_INTRA_WORKERS x MITT_TRIAL_WORKERS combination. Workload is kept
// small (the property is about ordering, not statistics).
harness::ExperimentOptions ChaosWorld() {
  harness::ExperimentOptions base;
  base.num_nodes = 1000;
  base.num_clients = 250;
  base.num_keys_per_node = 64;
  base.cache_pages = 64;
  base.warm_fraction = 0.5;
  base.measure_requests = 1200;
  base.warmup_requests = 100;
  base.noise = harness::NoiseKind::kNone;
  base.deadline = Millis(13);
  base.seed = 20170917;
  return base;
}

std::string ChaosScorecard(int intra_workers, int trial_workers, int engine_fusion = -1,
                           int engine_rebalance = -1) {
  harness::ScenarioRunner::Options opt;
  opt.base = ChaosWorld();
  opt.base.intra_workers = intra_workers;
  opt.base.engine_fusion = engine_fusion;
  opt.base.engine_rebalance = engine_rebalance;
  opt.strategies = {StrategyKind::kMittos};
  opt.workers = trial_workers;
  harness::ScenarioRunner runner(opt);

  fault::ChaosOptions chaos;
  chaos.mean_gap = Seconds(2);
  harness::FaultScenario scenario;
  scenario.name = "chaos-1000";
  scenario.plan = fault::GenerateChaosPlan(chaos, opt.base.num_nodes,
                                           /*horizon=*/Seconds(30), /*seed=*/7);
  const auto scores = runner.Run({scenario});
  EXPECT_EQ(runner.results().back().num_shards, 31) << "1000 nodes must auto-shard";
  EXPECT_GT(runner.results().back().fault_episodes, 0u) << "chaos must land";
  return harness::ScorecardJson(scores, runner.slo_deadline());
}

TEST(ShardDeterminismTest, ChaosScorecardIsByteIdenticalAcrossWorkerGrids) {
  const std::string reference = ChaosScorecard(/*intra_workers=*/1, /*trial_workers=*/1);
  ASSERT_FALSE(reference.empty());
  for (const int intra : {2, 8}) {
    for (const int trial : {1, 4}) {
      EXPECT_EQ(ChaosScorecard(intra, trial), reference)
          << "intra_workers=" << intra << " trial_workers=" << trial;
    }
  }
  // intra=1 x trial=4 closes the grid.
  EXPECT_EQ(ChaosScorecard(1, 4), reference);
}

TEST(ShardDeterminismTest, FusionAndRebalanceKeepChaosScorecardByteIdentical) {
  // The scale-out machinery is schedule-preserving: the chaos scorecard with
  // window fusion disabled, or with the static shard map (rebalance period
  // 0), must be byte-identical to the default engine's (fusion on, adaptive
  // LPT repacks every 64 windows) — at every {intra} x {trial} grid corner.
  const std::string reference = ChaosScorecard(/*intra_workers=*/1, /*trial_workers=*/1);
  ASSERT_FALSE(reference.empty());
  // Unfused engine across the grid.
  EXPECT_EQ(ChaosScorecard(1, 1, /*engine_fusion=*/0), reference);
  EXPECT_EQ(ChaosScorecard(2, 4, /*engine_fusion=*/0), reference);
  EXPECT_EQ(ChaosScorecard(8, 1, /*engine_fusion=*/0), reference);
  // Static-map engine across the grid.
  EXPECT_EQ(ChaosScorecard(1, 4, -1, /*engine_rebalance=*/0), reference);
  EXPECT_EQ(ChaosScorecard(2, 1, -1, /*engine_rebalance=*/0), reference);
  EXPECT_EQ(ChaosScorecard(8, 4, -1, /*engine_rebalance=*/0), reference);
  // Both off at the far grid corner, and an aggressive repack cadence.
  EXPECT_EQ(ChaosScorecard(8, 4, 0, 0), reference);
  EXPECT_EQ(ChaosScorecard(2, 4, -1, /*engine_rebalance=*/4), reference);
}

TEST(ShardDeterminismTest, IntraWorkerEnvVarIsHonored) {
  // MITT_INTRA_WORKERS is the env knob CI sets; resolving through it must be
  // the same as setting intra_workers explicitly.
  ASSERT_EQ(setenv("MITT_INTRA_WORKERS", "2", /*overwrite=*/1), 0);
  EXPECT_EQ(sim::DefaultIntraWorkers(), 2);
  const std::string via_env = ChaosScorecard(/*intra_workers=*/0, /*trial_workers=*/1);
  ASSERT_EQ(unsetenv("MITT_INTRA_WORKERS"), 0);
  EXPECT_EQ(sim::DefaultIntraWorkers(), 1);
  EXPECT_EQ(via_env, ChaosScorecard(/*intra_workers=*/2, /*trial_workers=*/1));
}

// -------------------------------------------- trace export byte-identity

TEST(ShardDeterminismTest, TraceExportIsByteIdenticalAcrossWorkerCounts) {
  // Traced sharded run with a deliberately tiny ring, so the drop-oldest
  // path truncates: per-shard truncation plus the (begin, end, shard-order)
  // merge must still export byte-identical JSON at any worker count.
  auto run = [](int intra_workers) {
    harness::ExperimentOptions opt;
    opt.num_nodes = 128;
    opt.num_clients = 64;
    opt.num_keys_per_node = 256;
    opt.cache_pages = 128;
    opt.warm_fraction = 0.5;
    opt.measure_requests = 1500;
    opt.warmup_requests = 100;
    opt.noise = harness::NoiseKind::kNone;
    opt.deadline = Millis(13);
    opt.trace = true;
    opt.trace_capacity = 512;  // Small enough that every shard ring wraps.
    opt.num_shards = 8;
    opt.intra_workers = intra_workers;
    opt.seed = 20170918;
    harness::Experiment experiment(opt);
    return experiment.Run(StrategyKind::kMittos);
  };
  const harness::RunResult ref = run(1);
  ASSERT_EQ(ref.num_shards, 8);
  ASSERT_GT(ref.trace_dropped, 0u) << "ring must wrap to exercise drop-oldest";
  const std::string ref_json = obs::ChromeTraceJson(ref.trace_spans, "scale");
  for (const int workers : {2, 8}) {
    const harness::RunResult r = run(workers);
    EXPECT_EQ(r.trace_dropped, ref.trace_dropped) << "workers=" << workers;
    EXPECT_EQ(obs::ChromeTraceJson(r.trace_spans, "scale"), ref_json)
        << "workers=" << workers;
  }
}

}  // namespace
}  // namespace mitt
