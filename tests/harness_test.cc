#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "src/harness/experiment.h"
#include "src/study/nosql_study.h"

namespace mitt::harness {
namespace {

// A small but end-to-end experiment: 3 nodes, continuous noise on node 0,
// all keys pinned to node 0's primary ownership (the §7.1 microbenchmark
// shape). Small request counts keep the suite fast.
ExperimentOptions MicroOptions() {
  ExperimentOptions opt;
  opt.num_nodes = 3;
  opt.num_clients = 2;
  opt.measure_requests = 600;
  opt.warmup_requests = 50;
  opt.pin_primary_node = 0;
  opt.noise = NoiseKind::kContinuous;
  opt.continuous_intensity = 2;
  opt.deadline = Millis(20);
  opt.hedge_delay = Millis(20);
  opt.app_timeout = Millis(20);
  opt.num_keys_per_node = 1 << 19;
  opt.seed = 2024;
  return opt;
}

TEST(ExperimentTest, MittosBeatsBaseUnderContinuousNoise) {
  Experiment experiment(MicroOptions());
  const RunResult base = experiment.Run(StrategyKind::kBase);
  const RunResult mitt = experiment.Run(StrategyKind::kMittos);
  ASSERT_EQ(base.requests, 650u);
  ASSERT_EQ(mitt.requests, 650u);
  EXPECT_GT(mitt.ebusy_failovers, 0u);
  // The noisy primary dominates Base's distribution; MittOS fails over fast.
  EXPECT_LT(mitt.get_latencies.Percentile(90), base.get_latencies.Percentile(90));
  EXPECT_LT(mitt.get_latencies.Percentile(90), Millis(20));
}

TEST(ExperimentTest, MittosBeatsHedgedAtTail) {
  Experiment experiment(MicroOptions());
  const RunResult hedged = experiment.Run(StrategyKind::kHedged);
  const RunResult mitt = experiment.Run(StrategyKind::kMittos);
  EXPECT_GT(hedged.hedges_sent, 0u);
  // Hedged waits 20ms before reacting; MittOS does not wait.
  EXPECT_LT(mitt.get_latencies.Percentile(90), hedged.get_latencies.Percentile(90));
}

TEST(ExperimentTest, RunAllDerivesP95Values) {
  ExperimentOptions opt = MicroOptions();
  opt.deadline = -1;
  opt.hedge_delay = -1;
  opt.app_timeout = -1;
  opt.measure_requests = 300;
  Experiment experiment(opt);
  const auto results =
      experiment.RunAll({StrategyKind::kBase, StrategyKind::kMittos});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "Base");
  EXPECT_EQ(results[1].name, "MittOS");
  EXPECT_GT(experiment.derived_p95(), 0);
  EXPECT_EQ(experiment.options().deadline, experiment.derived_p95());
}

TEST(ExperimentTest, ScaleFactorAmplifiesUserLatency) {
  ExperimentOptions opt = MicroOptions();
  opt.noise = NoiseKind::kNone;
  opt.pin_primary_node = -1;
  opt.scale_factor = 5;
  opt.measure_requests = 300;
  Experiment experiment(opt);
  const RunResult result = experiment.Run(StrategyKind::kBase);
  // A user request waits for all 5 gets: its median exceeds the get median.
  EXPECT_GT(result.user_latencies.Percentile(50), result.get_latencies.Percentile(50));
  EXPECT_EQ(result.user_latencies.count() * 5, result.get_latencies.count());
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  Experiment a(MicroOptions());
  Experiment b(MicroOptions());
  const RunResult ra = a.Run(StrategyKind::kMittos);
  const RunResult rb = b.Run(StrategyKind::kMittos);
  EXPECT_EQ(ra.get_latencies.Percentile(95), rb.get_latencies.Percentile(95));
  EXPECT_EQ(ra.ebusy_failovers, rb.ebusy_failovers);
  EXPECT_EQ(ra.sim_duration, rb.sim_duration);
}

TEST(ExperimentTest, Ec2NoiseProducesTailsNotMedians) {
  ExperimentOptions opt = MicroOptions();
  opt.num_nodes = 9;
  opt.num_clients = 6;
  opt.pin_primary_node = -1;
  opt.noise = NoiseKind::kEc2;
  opt.ec2 = CompressedEc2Noise();
  opt.measure_requests = 1200;
  Experiment experiment(opt);
  const RunResult base = experiment.Run(StrategyKind::kBase);
  // Medians stay mechanical; the tail shows the noise.
  EXPECT_LT(base.get_latencies.Percentile(50), Millis(15));
  EXPECT_GT(base.get_latencies.Percentile(99),
            2 * base.get_latencies.Percentile(50));
}

// The parallel trial runner's determinism contract: merged results must be
// bit-identical regardless of worker count (ISSUE acceptance criterion).
TEST(RunTrialsTest, ParallelMergeBitIdenticalToSerial) {
  ExperimentOptions opt = MicroOptions();
  opt.measure_requests = 300;
  std::vector<Trial> trials;
  trials.push_back({opt, StrategyKind::kBase, ""});
  trials.push_back({opt, StrategyKind::kMittos, ""});
  opt.seed = 777;  // A second world with different randomness.
  trials.push_back({opt, StrategyKind::kHedged, ""});
  trials.push_back({opt, StrategyKind::kMittos, "Renamed"});

  const auto serial = RunTrialsParallel(trials, /*workers=*/1);
  const auto parallel = RunTrialsParallel(trials, /*workers=*/4);

  ASSERT_EQ(serial.size(), trials.size());
  ASSERT_EQ(parallel.size(), trials.size());
  EXPECT_EQ(serial[3].name, "Renamed");
  for (size_t i = 0; i < trials.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(serial[i].name, parallel[i].name);
    // Exact sample vectors, not just summary stats: bit-identical means the
    // full latency trace matches element by element.
    EXPECT_EQ(serial[i].get_latencies.samples(), parallel[i].get_latencies.samples());
    EXPECT_EQ(serial[i].user_latencies.samples(), parallel[i].user_latencies.samples());
    EXPECT_EQ(serial[i].requests, parallel[i].requests);
    EXPECT_EQ(serial[i].ebusy_failovers, parallel[i].ebusy_failovers);
    EXPECT_EQ(serial[i].hedges_sent, parallel[i].hedges_sent);
    EXPECT_EQ(serial[i].timeouts_fired, parallel[i].timeouts_fired);
    EXPECT_EQ(serial[i].noise_ios, parallel[i].noise_ios);
    EXPECT_EQ(serial[i].sim_duration, parallel[i].sim_duration);
  }
}

TEST(RunTrialsTest, GenericRunnerPreservesTrialOrder) {
  const auto results = RunTrials<size_t>(
      64, [](size_t i) { return i * i; }, /*workers=*/4);
  ASSERT_EQ(results.size(), 64u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(RunTrialsTest, PropagatesTrialExceptions) {
  EXPECT_THROW(RunTrials<int>(
                   8,
                   [](size_t i) {
                     if (i == 5) {
                       throw std::runtime_error("trial 5 failed");
                     }
                     return static_cast<int>(i);
                   },
                   /*workers=*/3),
               std::runtime_error);
}

TEST(NosqlStudyTest, ReproducesTableOneFindings) {
  study::NosqlStudyOptions opt;
  opt.requests = 400;
  const auto rows = study::RunNosqlStudy(opt);
  ASSERT_EQ(rows.size(), 6u);

  std::map<std::string, study::NosqlStudyRow> by_name;
  for (const auto& row : rows) {
    by_name[row.name] = row;
  }
  // Finding 1: no system fails over in its default configuration.
  for (const auto& row : rows) {
    EXPECT_FALSE(row.default_tt) << row.name;
    EXPECT_GE(row.default_timeout, Seconds(5)) << row.name;
    // And the rotating contention produces a long default tail.
    EXPECT_GT(row.default_p99, Millis(20)) << row.name;
  }
  // Finding 2: with a 100ms timeout, three systems fail over, three surface
  // read errors to the user.
  int failover = 0;
  int erroring = 0;
  for (const auto& row : rows) {
    if (row.failover_at_100ms) {
      ++failover;
      EXPECT_EQ(row.errors_at_100ms, 0u) << row.name;
    } else if (row.errors_at_100ms > 0) {
      ++erroring;
    }
  }
  EXPECT_EQ(failover, 3);
  EXPECT_EQ(erroring, 3);
  // Finding 3: only two systems support cloning; none support hedged.
  int clones = 0;
  for (const auto& row : rows) {
    clones += row.supports_clone ? 1 : 0;
    EXPECT_FALSE(row.supports_hedged) << row.name;
  }
  EXPECT_EQ(clones, 2);
}

}  // namespace
}  // namespace mitt::harness
