// Property-based tests: parameterized sweeps over seeds and configurations,
// asserting invariants that must hold for *every* instance — conservation
// (every submitted IO completes exactly once), ordering (simulated time never
// goes backwards; FIFO devices preserve order), bounds (cache capacity,
// generator ranges), and determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/common/latency_recorder.h"
#include "src/common/rng.h"
#include "src/device/disk_model.h"
#include "src/device/disk_profile.h"
#include "src/device/ssd_model.h"
#include "src/device/ssd_profile.h"
#include "src/noise/ec2_noise.h"
#include "src/os/mitt_cfq.h"
#include "src/os/mitt_ssd.h"
#include "src/os/page_cache.h"
#include "src/sched/cfq_scheduler.h"
#include "src/sched/noop_scheduler.h"
#include "src/sim/simulator.h"

namespace mitt {
namespace {

// ---------------------------------------------------------------- Simulator

class SimulatorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorProperty, RandomScheduleExecutesInTimeOrderAndCancelsHold) {
  Rng rng(GetParam());
  sim::Simulator sim;
  std::vector<TimeNs> fired;
  std::vector<sim::EventId> ids;
  std::set<sim::EventId> cancelled;

  for (int i = 0; i < 400; ++i) {
    ids.push_back(sim.Schedule(rng.UniformInt(0, Seconds(2)), [&] { fired.push_back(sim.Now()); }));
  }
  for (int i = 0; i < 100; ++i) {
    const auto pick = ids[static_cast<size_t>(rng.UniformInt(0, 399))];
    if (sim.Cancel(pick)) {
      cancelled.insert(pick);
    }
  }
  sim.Run();

  EXPECT_EQ(fired.size(), 400 - cancelled.size());
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);  // Time never goes backwards.
  }
}

TEST_P(SimulatorProperty, DaemonEventsDoNotKeepRunAlive) {
  Rng rng(GetParam());
  sim::Simulator sim;
  int daemon_fired = 0;
  int normal_fired = 0;
  // A self-rescheduling daemon (like the flush timer)...
  std::function<void()> tick = [&] {
    ++daemon_fired;
    sim.ScheduleDaemon(Millis(10), tick);
  };
  sim.ScheduleDaemon(Millis(10), tick);
  // ...plus a bounded set of normal events.
  const int n = static_cast<int>(rng.UniformInt(1, 50));
  for (int i = 0; i < n; ++i) {
    sim.Schedule(rng.UniformInt(0, Millis(500)), [&] { ++normal_fired; });
  }
  sim.Run();  // Must terminate.
  EXPECT_EQ(normal_fired, n);
  EXPECT_LE(sim.Now(), Millis(500) + Millis(10));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorProperty, ::testing::Values(1, 2, 3, 17, 99));

// ---------------------------------------------------------------- DiskModel

struct DiskCase {
  uint64_t seed;
  size_t queue_depth;
  int ios;
};

class DiskProperty : public ::testing::TestWithParam<DiskCase> {};

TEST_P(DiskProperty, EveryIoCompletesExactlyOnce) {
  const DiskCase param = GetParam();
  sim::Simulator sim;
  device::DiskParams dp;
  dp.queue_depth = param.queue_depth;
  device::DiskModel disk(&sim, dp, param.seed);
  sched::NoopScheduler sched(&sim, &disk, nullptr);

  Rng rng(param.seed);
  std::vector<std::unique_ptr<sched::IoRequest>> reqs;
  std::multiset<uint64_t> completed;
  for (int i = 0; i < param.ios; ++i) {
    auto req = std::make_unique<sched::IoRequest>();
    req->id = static_cast<uint64_t>(i);
    req->op = rng.Bernoulli(0.3) ? sched::IoOp::kWrite : sched::IoOp::kRead;
    req->offset = rng.UniformInt(0, dp.capacity_bytes - (1 << 20));
    req->size = rng.Bernoulli(0.5) ? 4096 : (256 << 10);
    req->on_complete = [&completed](const sched::IoRequest& r, Status s) {
      EXPECT_TRUE(s.ok());
      completed.insert(r.id);
    };
    // Stagger arrivals.
    sched::IoRequest* raw = req.get();
    sim.Schedule(rng.UniformInt(0, Millis(200)), [&sched, raw] { sched.Submit(raw); });
    reqs.push_back(std::move(req));
  }
  sim.Run();
  EXPECT_EQ(completed.size(), static_cast<size_t>(param.ios));
  for (int i = 0; i < param.ios; ++i) {
    EXPECT_EQ(completed.count(static_cast<uint64_t>(i)), 1u) << i;
  }
  EXPECT_TRUE(disk.idle());
}

TEST_P(DiskProperty, AgingBoundsStarvation) {
  // Under a continuous stream of near-head IOs, a single far IO must still
  // complete within max_starvation plus a few service times.
  const DiskCase param = GetParam();
  sim::Simulator sim;
  device::DiskParams dp;
  dp.queue_depth = param.queue_depth;
  device::DiskModel disk(&sim, dp, param.seed);
  sched::NoopScheduler sched(&sim, &disk, nullptr);

  Rng rng(param.seed ^ 77);
  std::vector<std::unique_ptr<sched::IoRequest>> stream;
  // Closed near-head stream: always one pending near offset 0.
  std::function<void()> pump = [&] {
    if (sim.Now() > Millis(400)) {
      return;
    }
    auto req = std::make_unique<sched::IoRequest>();
    req->id = 1000 + stream.size();
    req->offset = rng.UniformInt(0, 1 << 30);
    req->size = 4096;
    req->on_complete = [&](const sched::IoRequest&, Status) { pump(); };
    sched.Submit(req.get());
    stream.push_back(std::move(req));
  };
  pump();
  pump();

  auto far = std::make_unique<sched::IoRequest>();
  far->id = 1;
  far->offset = 900LL << 30;
  far->size = 4096;
  TimeNs far_done = -1;
  far->on_complete = [&](const sched::IoRequest&, Status) { far_done = sim.Now(); };
  sim.Schedule(Millis(10), [&] { sched.Submit(far.get()); });

  sim.Run();
  ASSERT_GE(far_done, 0);
  EXPECT_LE(far_done - Millis(10), dp.max_starvation + Millis(40));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiskProperty,
                         ::testing::Values(DiskCase{1, 1, 40}, DiskCase{2, 4, 80},
                                           DiskCase{3, 32, 120}, DiskCase{4, 32, 60},
                                           DiskCase{5, 8, 100}));

// ---------------------------------------------------------------- SsdModel

class SsdProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SsdProperty, EveryRequestCompletesOnceAcrossOpMix) {
  sim::Simulator sim;
  device::SsdModel ssd(&sim, device::SsdParams{}, GetParam());
  Rng rng(GetParam() ^ 0x55D);
  std::vector<std::unique_ptr<sched::IoRequest>> reqs;
  std::multiset<uint64_t> completed;
  ssd.set_completion_listener([&](sched::IoRequest* r) { completed.insert(r->id); });
  const int n = 150;
  for (int i = 0; i < n; ++i) {
    auto req = std::make_unique<sched::IoRequest>();
    req->id = static_cast<uint64_t>(i);
    const double pick = rng.NextDouble();
    req->op = pick < 0.6 ? sched::IoOp::kRead
                         : (pick < 0.9 ? sched::IoOp::kWrite : sched::IoOp::kErase);
    req->offset = rng.UniformInt(0, 1000) * ssd.params().page_size;
    req->size = req->op == sched::IoOp::kErase
                    ? ssd.params().page_size
                    : rng.UniformInt(1, 8) * ssd.params().page_size;
    sched::IoRequest* raw = req.get();
    sim.Schedule(rng.UniformInt(0, Millis(50)), [&ssd, raw] { ssd.Submit(raw); });
    reqs.push_back(std::move(req));
  }
  sim.Run();
  EXPECT_EQ(completed.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(completed.count(static_cast<uint64_t>(i)), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsdProperty, ::testing::Values(11, 12, 13, 14));

// ---------------------------------------------------------------- CFQ

class CfqProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CfqProperty, ConservationAcrossClassesAndProcesses) {
  sim::Simulator sim;
  device::DiskParams dp;
  dp.queue_depth = 4;
  device::DiskModel disk(&sim, dp, GetParam());
  sched::CfqScheduler cfq(&sim, &disk, nullptr);
  Rng rng(GetParam() ^ 0xCF0);
  std::vector<std::unique_ptr<sched::IoRequest>> reqs;
  int completed = 0;
  const int n = 120;
  for (int i = 0; i < n; ++i) {
    auto req = std::make_unique<sched::IoRequest>();
    req->id = static_cast<uint64_t>(i);
    req->pid = static_cast<int32_t>(rng.UniformInt(1, 6));
    req->io_class = static_cast<sched::IoClass>(rng.UniformInt(0, 2));
    req->priority = static_cast<int8_t>(rng.UniformInt(0, 7));
    req->offset = rng.UniformInt(0, dp.capacity_bytes - (1 << 20));
    req->size = 4096;
    req->on_complete = [&completed](const sched::IoRequest&, Status s) {
      EXPECT_TRUE(s.ok());
      ++completed;
    };
    sched::IoRequest* raw = req.get();
    sim.Schedule(rng.UniformInt(0, Millis(300)), [&cfq, raw] { cfq.Submit(raw); });
    reqs.push_back(std::move(req));
  }
  sim.Run();
  EXPECT_EQ(completed, n);
  EXPECT_EQ(cfq.PendingCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfqProperty, ::testing::Values(21, 22, 23, 24, 25));

// ---------------------------------------------------------------- PageCache

class PageCacheProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageCacheProperty, CapacityNeverExceededAndInsertedIsResident) {
  Rng rng(GetParam());
  os::PageCacheParams params;
  params.capacity_pages = static_cast<size_t>(rng.UniformInt(16, 512));
  os::PageCache cache(params);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t file = static_cast<uint64_t>(rng.UniformInt(1, 4));
    const int64_t offset = rng.UniformInt(0, 1 << 24);
    const int64_t len = rng.UniformInt(1, 4 * params.page_size);
    cache.Insert(file, offset, len);
    EXPECT_LE(cache.resident_pages(), params.capacity_pages);
    // The tail of the inserted range must be resident (it is the MRU end;
    // the head may already have been evicted if len ~ capacity).
    const int64_t last_page_off = (offset + len - 1) / params.page_size * params.page_size;
    EXPECT_TRUE(cache.Resident(file, last_page_off, 1));
  }
}

TEST_P(PageCacheProperty, EvictRangeRemovesExactlyThatRange) {
  Rng rng(GetParam() ^ 1);
  os::PageCacheParams params;
  os::PageCache cache(params);
  cache.Insert(1, 0, 64 * params.page_size);
  const int64_t victim_page = rng.UniformInt(8, 32);
  cache.EvictRange(1, victim_page * params.page_size, params.page_size);
  EXPECT_FALSE(cache.Resident(1, victim_page * params.page_size, 1));
  EXPECT_TRUE(cache.Resident(1, (victim_page - 1) * params.page_size, 1));
  EXPECT_TRUE(cache.Resident(1, (victim_page + 1) * params.page_size, 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageCacheProperty, ::testing::Values(31, 32, 33, 34));

// ------------------------------------------------------------- Ec2 noise

class NoiseProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NoiseProperty, EpisodesSortedAndNonOverlapping) {
  noise::Ec2NoiseModel model(noise::Ec2NoiseParams{}, GetParam());
  for (int node = 0; node < 8; ++node) {
    const auto schedule = model.GenerateSchedule(node, Seconds(1200));
    for (size_t i = 1; i < schedule.size(); ++i) {
      EXPECT_GE(schedule[i].start, schedule[i - 1].start + schedule[i - 1].duration);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoiseProperty, ::testing::Values(41, 42, 43));

// -------------------------------------------------- Predictor monotonicity
//
// The fast-reject decision compares a predicted *wait* against the deadline;
// the estimate must grow (or hold) as the queue behind a device deepens, or
// a busier device could look more admissible than an idler one. Verified at
// a fixed instant — submissions only, no completions in between.

class PredictorMonotoneProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredictorMonotoneProperty, CfqWaitNonDecreasingWithQueueDepth) {
  sim::Simulator sim;
  device::DiskParams dp;
  device::DiskModel disk(&sim, dp, GetParam());
  sim::Simulator scratch;
  device::DiskModel twin(&scratch, dp, 99);
  const device::DiskProfile profile = device::ProfileDisk(&scratch, &twin);
  os::MittCfqPredictor predictor(&sim, profile, os::PredictorOptions{}, os::MittCfqOptions{});
  sched::CfqScheduler cfq(&sim, &disk, &predictor);

  Rng rng(GetParam() ^ 0xA11);
  std::vector<std::unique_ptr<sched::IoRequest>> backlog;
  DurationNs prev = predictor.PredictedWaitNow(/*pid=*/1, sched::IoClass::kBestEffort);
  EXPECT_EQ(prev, 0);
  for (int depth = 0; depth < 40; ++depth) {
    auto req = std::make_unique<sched::IoRequest>();
    req->id = static_cast<uint64_t>(depth);
    req->op = sched::IoOp::kRead;
    req->pid = static_cast<int32_t>(2 + rng.UniformInt(0, 3));  // Other tenants.
    req->io_class = rng.Bernoulli(0.3) ? sched::IoClass::kRealTime : sched::IoClass::kBestEffort;
    req->offset = rng.UniformInt(0, dp.capacity_bytes - (1 << 20));
    req->size = 4096;
    req->on_complete = [](const sched::IoRequest&, Status) {};
    cfq.Submit(req.get());
    backlog.push_back(std::move(req));
    const DurationNs wait = predictor.PredictedWaitNow(1, sched::IoClass::kBestEffort);
    EXPECT_GE(wait, prev) << "queue depth " << depth + 1;
    prev = wait;
  }
  EXPECT_GT(prev, 0);
  sim.Run();
}

TEST_P(PredictorMonotoneProperty, SsdWaitNonDecreasingWithChipQueueDepth) {
  sim::Simulator sim;
  device::SsdParams sp;
  device::SsdModel ssd(&sim, sp, GetParam());
  sim::Simulator scratch;
  device::SsdModel twin(&scratch, sp, 99);
  const device::SsdProfile profile = device::ProfileSsd(&scratch, &twin);
  os::MittSsdPredictor predictor(&sim, &ssd, profile, os::PredictorOptions{},
                                 os::MittSsdOptions{});
  os::SsdBlockLayer layer(&sim, &ssd, &predictor);

  sched::IoRequest probe;  // Chip 0, one page: the IO whose wait we watch.
  probe.id = 1000;
  probe.op = sched::IoOp::kRead;
  probe.offset = 0;
  probe.size = sp.page_size;

  Rng rng(GetParam() ^ 0x55D);
  std::vector<std::unique_ptr<sched::IoRequest>> backlog;
  DurationNs prev = predictor.PredictedWait(probe);
  for (int depth = 0; depth < 24; ++depth) {
    auto req = std::make_unique<sched::IoRequest>();
    req->id = static_cast<uint64_t>(depth);
    // Same chip 0, mixed reads and (slower) writes.
    req->op = rng.Bernoulli(0.3) ? sched::IoOp::kWrite : sched::IoOp::kRead;
    req->offset = 0;
    req->size = sp.page_size;
    req->on_complete = [](const sched::IoRequest&, Status) {};
    layer.Submit(req.get());
    backlog.push_back(std::move(req));
    const DurationNs wait = predictor.PredictedWait(probe);
    EXPECT_GE(wait, prev) << "chip queue depth " << depth + 1;
    prev = wait;
  }
  EXPECT_GT(prev, 0);
  sim.Run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredictorMonotoneProperty, ::testing::Values(61, 62, 63, 64, 65));

// ----------------------------------------- Incremental-vs-oracle differential
//
// The predictors answer PredictedWaitNow from running aggregates updated
// incrementally on accept/dispatch/complete/cancel. Drive them with 10k
// random operations while the test recomputes the same quantities from
// scratch out of the surviving pending set, and demand exact agreement.
// (The -DMITT_PREDICT_CHECK=ON build additionally runs the predictors'
// internal lockstep oracles through this same test.)

class CfqDifferentialProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CfqDifferentialProperty, WaitAggregatesMatchRecomputeOracleOver10kOps) {
  sim::Simulator sim;
  device::DiskParams dp;
  sim::Simulator scratch;
  device::DiskModel twin(&scratch, dp, 99);
  const device::DiskProfile profile = device::ProfileDisk(&scratch, &twin);
  os::MittCfqOptions copt;
  // The per-proc SSTF margin is an EWMA of observed waits, not a function of
  // the pending set; disable it so the oracle is exact.
  copt.starvation_margin = false;
  os::MittCfqPredictor pred(&sim, profile, os::PredictorOptions{}, copt);

  Rng rng(GetParam());
  std::vector<std::unique_ptr<sched::IoRequest>> alive;
  std::vector<sched::IoRequest*> pending[3];  // Accepted, not yet dispatched.
  std::vector<sched::IoRequest*> in_device;
  uint64_t next_id = 1;

  auto erase_one = [](std::vector<sched::IoRequest*>& v, sched::IoRequest* r) {
    v.erase(std::remove(v.begin(), v.end(), r), v.end());
  };
  // Recompute-from-scratch: the queue part of a class-c wait estimate is the
  // total predicted processing time over all pending IOs of rank <= c.
  auto oracle_prefix = [&pending](int rank) {
    DurationNs total = 0;
    for (int c = 0; c <= rank; ++c) {
      for (const sched::IoRequest* r : pending[c]) {
        total += r->predicted_process;
      }
    }
    return total;
  };

  for (int op = 0; op < 10'000; ++op) {
    const double pick = rng.NextDouble();
    if (pick < 0.5) {
      // Accept a new IO. Pids recur across ops with varying io_class, so a
      // process' class changes over its lifetime.
      auto req = std::make_unique<sched::IoRequest>();
      req->id = next_id++;
      req->op = rng.Bernoulli(0.25) ? sched::IoOp::kWrite : sched::IoOp::kRead;
      req->pid = static_cast<int32_t>(rng.UniformInt(1, 8));
      req->io_class = static_cast<sched::IoClass>(rng.UniformInt(0, 2));
      req->priority = static_cast<int8_t>(rng.UniformInt(0, 7));
      req->offset = rng.UniformInt(0, dp.capacity_bytes - (1 << 20));
      req->size = rng.Bernoulli(0.5) ? 4096 : (64 << 10);
      req->deadline =
          rng.Bernoulli(0.6) ? sched::kNoDeadline : rng.UniformInt(Millis(2), Millis(40));
      req->submit_time = sim.Now();
      if (pred.ShouldReject(req.get())) {
        continue;  // Rejected before registration: nothing to mirror.
      }
      pending[static_cast<int>(req->io_class)].push_back(req.get());
      // Bump-cancellation: the predictor hands back lower-class IOs whose
      // deadline just became unmeetable; they leave the pending set.
      for (sched::IoRequest* victim : pred.OnAccepted(req.get())) {
        erase_one(pending[static_cast<int>(victim->io_class)], victim);
      }
      alive.push_back(std::move(req));
    } else if (pick < 0.75) {
      // Dispatch a random pending IO (the predictor is agnostic to the
      // scheduler's actual service order).
      const size_t total = pending[0].size() + pending[1].size() + pending[2].size();
      if (total == 0) {
        continue;
      }
      size_t k = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(total) - 1));
      int rank = 0;
      while (k >= pending[rank].size()) {
        k -= pending[rank].size();
        ++rank;
      }
      sched::IoRequest* r = pending[rank][k];
      pred.OnDispatch(r);
      pending[rank].erase(pending[rank].begin() + static_cast<int64_t>(k));
      in_device.push_back(r);
    } else if (pick < 0.95) {
      if (in_device.empty()) {
        continue;
      }
      const size_t k =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(in_device.size()) - 1));
      sched::IoRequest* r = in_device[k];
      pred.OnCompletion(*r, rng.UniformInt(Millis(1), Millis(20)));
      in_device.erase(in_device.begin() + static_cast<int64_t>(k));
    } else {
      // Let simulated time pass.
      sim.Schedule(rng.UniformInt(0, Millis(20)), [] {});
      sim.Run();
    }

    // Every op: class-to-class differences are pure prefix-sum deltas (the
    // device-queue part and any margin cancel out).
    const DurationNs w0 = pred.PredictedWaitNow(1, sched::IoClass::kRealTime);
    const DurationNs w1 = pred.PredictedWaitNow(1, sched::IoClass::kBestEffort);
    const DurationNs w2 = pred.PredictedWaitNow(1, sched::IoClass::kIdle);
    ASSERT_EQ(w1 - w0, oracle_prefix(1) - oracle_prefix(0)) << "op " << op;
    ASSERT_EQ(w2 - w0, oracle_prefix(2) - oracle_prefix(0)) << "op " << op;
    if (op % 64 == 63) {
      // Drain the device-queue part (next-free lies at most tens of ms
      // ahead) and compare absolute values.
      sim.Schedule(Seconds(60), [] {});
      sim.Run();
      for (int c = 0; c < 3; ++c) {
        ASSERT_EQ(pred.PredictedWaitNow(1, static_cast<sched::IoClass>(c)), oracle_prefix(c))
            << "op " << op << " class " << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfqDifferentialProperty, ::testing::Values(71, 72, 73));

class SsdDifferentialProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SsdDifferentialProperty, AccountingUnwindsExactlyToFreshState) {
  // Per-chip next-free times decay via max(0, t - now) and per-channel
  // outstanding counts are decremented from the request's own geometry on
  // completion. After every accepted IO completes and the next-free horizon
  // passes, the predictor must be indistinguishable from a freshly
  // constructed one on *every* probe — any leak or double-decrement in the
  // incremental accounting shows up as a disagreement.
  sim::Simulator sim;
  device::SsdParams sp;
  device::SsdModel ssd(&sim, sp, GetParam());
  sim::Simulator scratch;
  device::SsdModel twin(&scratch, sp, 99);
  const device::SsdProfile profile = device::ProfileSsd(&scratch, &twin);
  os::MittSsdPredictor pred(&sim, &ssd, profile, os::PredictorOptions{}, os::MittSsdOptions{});

  Rng rng(GetParam() ^ 0xD1F);
  std::vector<std::unique_ptr<sched::IoRequest>> alive;
  std::vector<sched::IoRequest*> outstanding;
  for (int round = 0; round < 2000; ++round) {
    if (outstanding.empty() || rng.Bernoulli(0.55)) {
      auto req = std::make_unique<sched::IoRequest>();
      req->id = static_cast<uint64_t>(round + 1);
      req->op = rng.Bernoulli(0.3) ? sched::IoOp::kWrite : sched::IoOp::kRead;
      req->offset = rng.UniformInt(0, 4000) * sp.page_size;
      req->size = rng.UniformInt(1, 8) * sp.page_size;
      req->pid = 1;
      req->deadline =
          rng.Bernoulli(0.5) ? sched::kNoDeadline : rng.UniformInt(Micros(200), Millis(20));
      if (!pred.ShouldReject(req.get())) {
        pred.OnAccepted(req.get());
        outstanding.push_back(req.get());
        alive.push_back(std::move(req));
      }
    } else {
      const size_t k =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(outstanding.size()) - 1));
      pred.OnCompletion(outstanding[k]);
      outstanding.erase(outstanding.begin() + static_cast<int64_t>(k));
    }
    if (round % 50 == 49) {
      sim.Schedule(rng.UniformInt(0, Millis(2)), [] {});
      sim.Run();
    }
  }
  for (sched::IoRequest* r : outstanding) {
    pred.OnCompletion(r);
  }
  sim.Schedule(Seconds(120), [] {});  // Outrun every chip's next-free time.
  sim.Run();

  os::MittSsdPredictor fresh(&sim, &ssd, profile, os::PredictorOptions{}, os::MittSsdOptions{});
  for (int i = 0; i < 200; ++i) {
    sched::IoRequest probe;
    probe.id = 1'000'000 + static_cast<uint64_t>(i);
    probe.op = rng.Bernoulli(0.5) ? sched::IoOp::kWrite : sched::IoOp::kRead;
    probe.offset = rng.UniformInt(0, 8000) * sp.page_size;
    probe.size = rng.UniformInt(1, 8) * sp.page_size;
    ASSERT_EQ(pred.PredictedWait(probe), fresh.PredictedWait(probe)) << "probe " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsdDifferentialProperty, ::testing::Values(81, 82, 83));

// ------------------------------------------------------------- Statistics

class RecorderProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecorderProperty, PercentilesMonotoneAndBounded) {
  Rng rng(GetParam());
  LatencyRecorder rec;
  const int n = static_cast<int>(rng.UniformInt(1, 3000));
  for (int i = 0; i < n; ++i) {
    rec.Record(rng.UniformInt(0, Seconds(1)));
  }
  DurationNs prev = rec.Min();
  for (double p = 0; p <= 100; p += 2.5) {
    const DurationNs v = rec.Percentile(p);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, rec.Min());
    EXPECT_LE(v, rec.Max());
    prev = v;
  }
  EXPECT_EQ(rec.Percentile(100), rec.Max());
}

TEST_P(RecorderProperty, FractionBelowIsAProperCdf) {
  Rng rng(GetParam() ^ 9);
  LatencyRecorder rec;
  for (int i = 0; i < 500; ++i) {
    rec.Record(rng.UniformInt(0, Millis(100)));
  }
  double prev = 0;
  for (DurationNs t = 0; t <= Millis(100); t += Millis(5)) {
    const double f = rec.FractionBelow(t);
    EXPECT_GE(f, prev);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(rec.FractionBelow(Millis(100)), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecorderProperty, ::testing::Values(51, 52, 53, 54));

// ------------------------------------------------------------- Zipfian

struct ZipfCase {
  uint64_t n;
  double theta;
};

class ZipfProperty : public ::testing::TestWithParam<ZipfCase> {};

TEST_P(ZipfProperty, AlwaysInRange) {
  Rng rng(7);
  ZipfianGenerator zipf(GetParam().n, GetParam().theta);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Next(rng), GetParam().n);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ZipfProperty,
                         ::testing::Values(ZipfCase{10, 0.99}, ZipfCase{1000, 0.99},
                                           ZipfCase{1000, 0.5}, ZipfCase{100000, 0.99}));

}  // namespace
}  // namespace mitt
