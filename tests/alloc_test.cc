// Steady-state allocation gating for the per-IO pipeline and the rebuilt
// PageCache: after a warmup phase that grows every pool/table to its working
// size, driving more IOs through a full Os stack (or more touches through
// the cache) must perform ZERO heap allocations. bench_hotpath reports the
// same counters; this binary fails the build if they regress.
//
// The counter hooks replace the global operator new/delete, which conflicts
// with sanitizer interceptors, and the MITT_PREDICT_CHECK oracle allocates
// map nodes per IO by design — in those builds the assertions are skipped.

#include <gtest/gtest.h>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MITT_ALLOC_HOOKS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define MITT_ALLOC_HOOKS 0
#endif
#endif
#ifndef MITT_ALLOC_HOOKS
#define MITT_ALLOC_HOOKS 1
#endif

#if MITT_ALLOC_HOOKS

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/os/os.h"
#include "src/os/page_cache.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/simulator.h"
#include "src/tenant/placement.h"
#include "src/tenant/tenant.h"
#include "src/tenant/workload.h"
#include "src/trace/cursor.h"
#include "src/trace/replay.h"
#include "src/trace/writer.h"

#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace mitt {
namespace {

// Closed-loop client: reissues on every completion. The callbacks capture a
// single pointer, so neither std::function nor InlineFunction allocates.
struct Stream {
  os::Os* o = nullptr;
  Rng rng{1};
  uint64_t file = 0;
  int64_t pages = 0;
  int32_t pid = 0;
  DurationNs deadline = sched::kNoDeadline;
  bool bypass = false;
  uint64_t* total = nullptr;

  void Issue() {
    if (!bypass && rng.Bernoulli(0.03)) {
      os::Os::WriteArgs w;
      w.file = file;
      w.offset = rng.UniformInt(0, pages - 1) * 4096;
      w.size = 4096;
      w.pid = pid;
      o->Write(w, [this](Status) { Done(); });
      return;
    }
    os::Os::ReadArgs a;
    a.file = file;
    a.offset = rng.UniformInt(0, pages - 1) * 4096;
    a.size = 4096;
    a.pid = pid;
    a.deadline = deadline;
    a.bypass_cache = bypass;
    o->ReadWithWaitHint(a, [this](Status, DurationNs) { Done(); });
  }
  void Done() {
    ++*total;
    Issue();
  }
};

// Runs `steady_ios` IOs after a `warmup_ios` warmup and returns the number
// of heap allocations in the steady phase.
uint64_t SteadyAllocs(os::BackendKind backend, uint64_t warmup_ios, uint64_t steady_ios) {
  sim::Simulator sim;
  os::OsOptions opt;
  opt.backend = backend;
  opt.seed = 7;
  opt.cache.capacity_pages = 4096;  // 16 MiB cache over a 64 MiB file.
  os::Os osys(&sim, opt);

  const int64_t file_bytes = 64LL * 1024 * 1024;
  const uint64_t file = osys.CreateFile(file_bytes);
  osys.Prefault(file, 0, file_bytes / 4);

  uint64_t total = 0;
  std::vector<std::unique_ptr<Stream>> streams;
  const DurationNs dl = backend == os::BackendKind::kSsd ? Millis(2) : Millis(20);
  for (int i = 0; i < 6; ++i) {
    auto s = std::make_unique<Stream>();
    s->o = &osys;
    s->rng = Rng(31 + static_cast<uint64_t>(i));
    s->file = file;
    s->pages = file_bytes / 4096;
    s->pid = 1 + i;
    s->total = &total;
    if (i == 5) {
      s->bypass = true;  // O_DIRECT tenant: keeps the device path hot.
    } else if (i < 3) {
      s->deadline = dl;  // SLO clients: exercises reject + tolerance wheel.
    }
    streams.push_back(std::move(s));
  }
  for (auto& s : streams) {
    s->Issue();
  }
  // Warm up by IO count *and* simulated time: the background flush fires
  // every flush_interval, and its batch submission sets the device queues'
  // high-water marks — several flush cycles must land inside warmup.
  const TimeNs warm_until = opt.flush_interval * 6;
  sim.RunUntilPredicate(
      [&total, warmup_ios, &sim, warm_until] { return total >= warmup_ios && sim.Now() >= warm_until; });

  const uint64_t target = total + steady_ios;
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  sim.RunUntilPredicate([&total, target] { return total >= target; });
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

#ifdef MITT_PREDICT_CHECK
#define MITT_SKIP_UNDER_PREDICT_CHECK() \
  GTEST_SKIP() << "MITT_PREDICT_CHECK oracles allocate per IO by design"
#else
#define MITT_SKIP_UNDER_PREDICT_CHECK() (void)0
#endif

TEST(SteadyStateAllocTest, DiskCfqPipelineIsAllocationFree) {
  MITT_SKIP_UNDER_PREDICT_CHECK();
  EXPECT_EQ(SteadyAllocs(os::BackendKind::kDiskCfq, 30'000, 30'000), 0u);
}

TEST(SteadyStateAllocTest, DiskNoopPipelineIsAllocationFree) {
  MITT_SKIP_UNDER_PREDICT_CHECK();
  EXPECT_EQ(SteadyAllocs(os::BackendKind::kDiskNoop, 30'000, 30'000), 0u);
}

TEST(SteadyStateAllocTest, SsdPipelineIsAllocationFree) {
  MITT_SKIP_UNDER_PREDICT_CHECK();
  EXPECT_EQ(SteadyAllocs(os::BackendKind::kSsd, 30'000, 30'000), 0u);
}

TEST(SteadyStateAllocTest, CrossShardMailboxIsAllocationFree) {
  MITT_SKIP_UNDER_PREDICT_CHECK();
  // Steady-state cross-shard traffic: Post -> mailbox row -> sorted drain ->
  // ScheduleAt -> RunWindow -> Post again. After warmup grows every mailbox
  // row, the drain scratch, the ready list, and the per-shard event arenas to
  // their working size, each further bounce must allocate nothing. The
  // closure captures two pointers, inside InlineFunction's SBO.
  sim::ShardedEngine::Options eopt;
  eopt.num_shards = 2;
  eopt.lookahead = Micros(50);
  eopt.workers = 2;          // Exercise the pool barrier, not just the inline path.
  eopt.rebalance_period = 4;  // Aggressive cadence: LPT repacks are steady-state too.
  sim::ShardedEngine engine(eopt);

  uint64_t bounces = 0;
  // Self-scheduling ping-pong chains; `next` alternates 0 <-> 1, so every
  // window moves messages across both mailbox rows.
  std::function<void(int)> bounce = [&](int dst) {
    ++bounces;
    const int next = 1 - dst;
    engine.Post(next, engine.shard(dst)->Now() + Micros(50), [&bounce, next] { bounce(next); });
  };
  for (int chain = 0; chain < 8; ++chain) {
    const int start = chain & 1;
    engine.shard(start)->ScheduleAt(Micros(10) * (chain + 1),
                                    [&bounce, start] { bounce(start); });
  }

  const uint64_t kWarmup = 20'000;
  engine.RunUntilPredicate([&bounces] { return bounces >= kWarmup; });

  const uint64_t target = bounces + 20'000;
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  engine.RunUntilPredicate([&bounces, target] { return bounces >= target; });
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u);
  EXPECT_GE(engine.cross_shard_messages(), kWarmup + 20'000);
}

TEST(SteadyStateAllocTest, FusionFastPathIsAllocationFree) {
  MITT_SKIP_UNDER_PREDICT_CHECK();
  // Quiet-frontier regime: one shard self-chains with gaps below the
  // lookahead, so it is the lone shard under the window horizon and the
  // engine's fused fast path carries the run — with a cross-shard hop every
  // 64 links so the drain fallback, the pool barrier, and the adaptive
  // repack all stay in the steady-state loop. Every path must allocate
  // nothing once warm.
  sim::ShardedEngine::Options eopt;
  eopt.num_shards = 4;
  eopt.lookahead = Micros(100);
  eopt.workers = 2;
  eopt.rebalance_period = 8;
  eopt.fusion = 1;
  sim::ShardedEngine engine(eopt);

  uint64_t links = 0;
  std::function<void(int)> link = [&](int shard) {
    ++links;
    auto* sim = engine.shard(shard);
    if (links % 64 == 0) {
      const int dst = (shard + 1) % 4;
      engine.Post(dst, sim->Now() + Micros(120), [&link, dst] { link(dst); });
    } else {
      sim->ScheduleAt(sim->Now() + Micros(20), [&link, shard] { link(shard); });
    }
  };
  engine.shard(1)->ScheduleAt(Micros(5), [&link] { link(1); });

  const uint64_t kWarmup = 20'000;
  engine.RunUntilPredicate([&links] { return links >= kWarmup; });

  const uint64_t target = links + 20'000;
  const uint64_t fused_before = engine.fused_windows();
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  engine.RunUntilPredicate([&links, target] { return links >= target; });
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u);
  // ~5 links land in each 100µs window, so 20k links span ~4k windows —
  // nearly all of them fused (the only fallbacks are the hop windows).
  EXPECT_GT(engine.fused_windows() - fused_before, 2'000u)
      << "the measured phase must actually run through the fast path";
}

TEST(SteadyStateAllocTest, TraceReplayHotLoopIsAllocationFree) {
  // Steady-state replay = cursor advance (block decode into reused scratch)
  // + one self-rescheduling ScheduleAt (captures only `this`, inside
  // InlineFunction's SBO) + the dispatch call. After the first block is
  // decoded and the sim's event pool has grown, every further arrival —
  // including block boundaries — must allocate nothing.
  const std::string path = "alloc_test_replay.mitttrace";
  {
    std::string error;
    auto writer = trace::TraceWriter::Open(path, {}, &error);
    ASSERT_NE(writer, nullptr) << error;
    trace::TraceEvent event;
    for (uint64_t i = 0; i < 60'000; ++i) {
      event.at = static_cast<TimeNs>(i) * Micros(2);
      event.offset = static_cast<int64_t>((i * 29) % 4096) * 4096;
      event.stream = static_cast<uint32_t>(i % 5);
      event.op = (i % 7 == 0) ? trace::kOpWrite : trace::kOpRead;
      ASSERT_TRUE(writer->Append(event));
    }
    ASSERT_TRUE(writer->Finish()) << writer->error();
  }

  sim::Simulator sim;
  std::string error;
  auto cursor = trace::FileTraceCursor::Open(path, &error);
  ASSERT_NE(cursor, nullptr) << error;
  uint64_t dispatched = 0;
  trace::TraceReplayDriver driver(&sim, cursor.get(), {},
                                  [&dispatched](const trace::TraceEvent&, uint64_t, bool) {
                                    ++dispatched;
                                  });
  driver.Start();

  // Warm past several block boundaries (4096-record blocks).
  sim.RunUntilPredicate([&dispatched] { return dispatched >= 10'000; });

  const uint64_t target = dispatched + 40'000;
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  sim.RunUntilPredicate([&dispatched, target] { return dispatched >= target; });
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u);
  std::remove(path.c_str());
}

TEST(SteadyStateAllocTest, TenantLookupAndDriverHotLoopIsAllocationFree) {
  // The per-request tenant path: one weighted draw + ScheduleAt in the
  // open-loop driver, then the directory lookups (class/SLO/priority) and
  // the placement-group read every routed get performs, plus the per-tenant
  // counter bump the node does. After the driver's prefix-sum table and the
  // sim's event pool are warm, none of it may allocate.
  tenant::MixOptions mix;
  mix.num_tenants = 256;
  mix.total_rate_hz = 400'000;  // Dense arrivals: ~40k in the steady window.
  const tenant::TenantDirectory directory = tenant::TenantDirectory::BuildMix(mix);
  const tenant::PlacementMap placement = tenant::PlacementMap::Uniform(256, 8, 3, 9);
  std::vector<uint64_t> tenant_gets(directory.num_tenants(), 0);

  sim::Simulator sim;
  uint64_t dispatched = 0;
  DurationNs slo_sum = 0;
  int64_t node_sum = 0;
  tenant::TenantLoadDriver::Options dopt;
  dopt.warmup = Millis(1);
  dopt.duration = Seconds(2);
  dopt.seed = 3;
  tenant::TenantLoadDriver driver(
      &sim, &directory, dopt,
      [&](tenant::TenantId t, uint64_t key, bool) {
        slo_sum += directory.slo_of(t) + directory.priority_of(t);
        const tenant::ReplicaGroup g = placement.group(t);
        for (int r = 0; r < g.size; ++r) {
          node_sum += g.node[r];
        }
        ++tenant_gets[t];
        dispatched += (key != ~0ULL) ? 1 : 0;
      });
  driver.Start();

  sim.RunUntilPredicate([&dispatched] { return dispatched >= 10'000; });

  const uint64_t target = dispatched + 40'000;
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  sim.RunUntilPredicate([&dispatched, target] { return dispatched >= target; });
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u);
  EXPECT_GT(slo_sum, 0);
  EXPECT_GT(node_sum, 0);
}

TEST(SteadyStateAllocTest, PageCacheHotOpsAreAllocationFree) {
  // Warm the table to its steady size (at capacity, with the hash array
  // grown past the load-factor bound), then hammer every hot operation.
  // EvictFraction is excluded: it collects victims into a scratch vector
  // (noise-injection path, runs per-episode rather than per-IO).
  os::PageCacheParams params;
  params.capacity_pages = 1024;
  os::PageCache cache(params);
  Rng rng(5);
  const int64_t span = 4 * static_cast<int64_t>(params.capacity_pages);
  for (int i = 0; i < 20'000; ++i) {
    cache.Insert(1, rng.UniformInt(0, span - 1) * params.page_size, params.page_size);
  }
  ASSERT_EQ(cache.resident_pages(), params.capacity_pages);

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 50'000; ++i) {
    const int64_t off = rng.UniformInt(0, span - 1) * params.page_size;
    switch (i & 3) {
      case 0:
        cache.Insert(1, off, params.page_size);
        break;
      case 1:
        cache.Touch(1, off, params.page_size);
        break;
      case 2:
        (void)cache.Resident(1, off, params.page_size);
        break;
      case 3:
        if ((i & 63) == 3) {
          cache.EvictRange(1, off, params.page_size);
        } else {
          cache.Insert(1, off, params.page_size);
        }
        break;
    }
  }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u);
}

}  // namespace
}  // namespace mitt

#else  // !MITT_ALLOC_HOOKS

TEST(SteadyStateAllocTest, SkippedUnderSanitizers) {
  GTEST_SKIP() << "operator new/delete hooks conflict with sanitizer interceptors";
}

#endif  // MITT_ALLOC_HOOKS
