#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/obs/export.h"
#include "src/obs/gate.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mitt::obs {
namespace {

SpanRecord Span(uint64_t id, SpanKind kind, TimeNs begin, TimeNs end, int32_t node = 0) {
  SpanRecord s;
  s.request_id = id;
  s.kind = kind;
  s.begin = begin;
  s.end = end;
  s.node = node;
  return s;
}

bool SameSpan(const SpanRecord& a, const SpanRecord& b) {
  return a.request_id == b.request_id && a.begin == b.begin && a.end == b.end &&
         a.node == b.node && a.kind == b.kind;
}

// --- Tracer ------------------------------------------------------------------

TEST(TracerTest, RequestIdsStartAtOne) {
  Tracer tracer;
  EXPECT_EQ(tracer.NewRequestId(), 1u);
  EXPECT_EQ(tracer.NewRequestId(), 2u);
  EXPECT_EQ(tracer.NewRequestId(), 3u);
}

TEST(TracerTest, RecordsInOrder) {
  Tracer tracer(8);
  tracer.RecordSpan(SpanKind::kSyscall, {1, 0}, 10, 100);
  tracer.RecordInstant(SpanKind::kEbusyReject, {1, 0}, 100);
  tracer.RecordSpan(SpanKind::kQueueWait, {0, 2}, 20, 30);
  ASSERT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const auto spans = tracer.OrderedSpans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_TRUE(SameSpan(spans[0], Span(1, SpanKind::kSyscall, 10, 100)));
  EXPECT_TRUE(SameSpan(spans[1], Span(1, SpanKind::kEbusyReject, 100, 100)));
  EXPECT_TRUE(SameSpan(spans[2], Span(0, SpanKind::kQueueWait, 20, 30, 2)));
}

TEST(TracerTest, RingDropsOldestWhenFull) {
  Tracer tracer(4);
  EXPECT_EQ(tracer.capacity(), 4u);
  for (uint64_t i = 1; i <= 6; ++i) {
    tracer.RecordSpan(SpanKind::kSyscall, {i, 0}, static_cast<TimeNs>(i),
                      static_cast<TimeNs>(i + 1));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto spans = tracer.OrderedSpans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-to-newest, with the two oldest (ids 1, 2) overwritten.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].request_id, i + 3);
  }
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(8);
  tracer.set_enabled(false);
  tracer.RecordSpan(SpanKind::kSyscall, {1, 0}, 0, 10);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
  tracer.set_enabled(true);
  tracer.RecordSpan(SpanKind::kSyscall, {1, 0}, 0, 10);
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(TracerTest, ClearEmptiesTheRing) {
  Tracer tracer(4);
  for (uint64_t i = 1; i <= 5; ++i) {
    tracer.RecordSpan(SpanKind::kSyscall, {i, 0}, 0, 1);
  }
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.OrderedSpans().empty());
  // Refilling after Clear behaves like a fresh ring.
  tracer.RecordSpan(SpanKind::kSyscall, {9, 0}, 0, 1);
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.OrderedSpans()[0].request_id, 9u);
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateAndLookups) {
  MetricsRegistry metrics;
  Counter& a = metrics.counter("ebusy_total", 0);
  a.Add();
  a.Add(2);
  metrics.counter("ebusy_total", 1).Add(5);
  // Same (name, node) resolves to the same instance.
  EXPECT_EQ(&metrics.counter("ebusy_total", 0), &a);
  EXPECT_EQ(metrics.CounterValue("ebusy_total", 0), 3u);
  EXPECT_EQ(metrics.CounterValue("ebusy_total", 1), 5u);
  EXPECT_EQ(metrics.CounterTotal("ebusy_total"), 8u);
  // Missing metrics read as zero instead of materializing.
  EXPECT_EQ(metrics.CounterValue("ebusy_total", 7), 0u);
  EXPECT_EQ(metrics.CounterTotal("no_such_metric"), 0u);
  EXPECT_EQ(metrics.counters().size(), 2u);

  metrics.gauge("queue_depth", 0).Set(12.0);
  metrics.gauge("queue_depth", 0).Add(1.0);
  EXPECT_DOUBLE_EQ(metrics.GaugeValue("queue_depth", 0), 13.0);
  EXPECT_DOUBLE_EQ(metrics.GaugeValue("queue_depth", 3), 0.0);

  metrics.histogram("wait_ns", 0).Record(Millis(4));
  EXPECT_EQ(metrics.histograms().size(), 1u);
  EXPECT_FALSE(metrics.empty());
  metrics.Clear();
  EXPECT_TRUE(metrics.empty());
}

TEST(MetricsRegistryTest, IterationOrderIsSortedNotInsertion) {
  MetricsRegistry metrics;
  // Insert out of order; the map iterates sorted by (name, node) so printed
  // tables are independent of which layer touched its metric first.
  metrics.counter("zeta", 1).Add();
  metrics.counter("alpha", 2).Add();
  metrics.counter("alpha", 0).Add();
  std::vector<std::pair<std::string, int>> keys;
  for (const auto& [key, unused] : metrics.counters()) {
    keys.emplace_back(key.name, key.node);
  }
  const std::vector<std::pair<std::string, int>> want = {
      {"alpha", 0}, {"alpha", 2}, {"zeta", 1}};
  EXPECT_EQ(keys, want);
}

// --- Chrome trace export + JSON validator ------------------------------------

TEST(ChromeTraceJsonTest, EmitsValidJsonWithEventShapes) {
  std::vector<SpanRecord> spans;
  spans.push_back(Span(1, SpanKind::kSyscall, Micros(10), Micros(60), 0));
  spans.push_back(Span(1, SpanKind::kEbusyReject, Micros(60), Micros(60), 0));
  spans.push_back(Span(2, SpanKind::kQueueWait, Micros(5), Micros(25), 1));
  const std::string json = ChromeTraceJson(spans, "test");
  EXPECT_TRUE(ValidateJsonSyntax(json));
  // A duration event, an instant event, and per-node process metadata.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("test/node0"), std::string::npos);
  EXPECT_NE(json.find("test/node1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"syscall\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ebusy_reject\""), std::string::npos);
}

TEST(ChromeTraceJsonTest, GroupsGetDistinctProcessBlocks) {
  TraceGroup a{"Base", {Span(1, SpanKind::kSyscall, 0, 100, 0)}};
  TraceGroup b{"MittOS", {Span(1, SpanKind::kSyscall, 0, 10, 0)}};
  const std::vector<TraceGroup> groups = {a, b};
  const std::string json = ChromeTraceJson(groups);
  EXPECT_TRUE(ValidateJsonSyntax(json));
  EXPECT_NE(json.find("Base/node0"), std::string::npos);
  EXPECT_NE(json.find("MittOS/node0"), std::string::npos);
  // Client-side spans (node -1) label as <group>/client.
  TraceGroup c{"Run", {Span(1, SpanKind::kFailover, 5, 5, -1)}};
  const std::vector<TraceGroup> client_only = {c};
  EXPECT_NE(ChromeTraceJson(client_only).find("Run/client"), std::string::npos);
}

TEST(ChromeTraceJsonTest, EmptyTraceIsStillValid) {
  const std::string json = ChromeTraceJson(std::vector<SpanRecord>{}, "empty");
  EXPECT_TRUE(ValidateJsonSyntax(json));
}

TEST(ChromeTraceJsonTest, HostileLabelsAreEscapedNotInjected) {
  // Labels flow in from scenario/strategy names; a quote or backslash must
  // not break (or rewrite) the exported document.
  // Note the literal splice: "\x01" "ctl", not "\x01ctl" — \x greedily eats
  // trailing hex digits, so the unspliced form is the single char 0x1c.
  const std::string hostile = "ev\"il\\label\n\twith\x01" "ctl";
  const std::string json =
      ChromeTraceJson({Span(1, SpanKind::kSyscall, 0, 10, 0)}, hostile);
  EXPECT_TRUE(ValidateJsonSyntax(json));
  EXPECT_NE(json.find("ev\\\"il\\\\label\\n\\twith\\u0001ctl/node0"), std::string::npos);
  // No raw quote survived inside the label (which would terminate the JSON
  // string early and smuggle in attacker-controlled keys).
  EXPECT_EQ(json.find("ev\"il"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("\n\r\t\b\f"), "\\n\\r\\t\\b\\f");
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  // Round trip through the validator when embedded as a string value.
  std::string quoted = "\"";
  quoted += JsonEscape("x\"\\\n\x02y");
  quoted += "\"";
  EXPECT_TRUE(ValidateJsonSyntax(quoted));
}

TEST(JsonValidatorTest, AcceptsWellFormed) {
  EXPECT_TRUE(ValidateJsonSyntax("{}"));
  EXPECT_TRUE(ValidateJsonSyntax("[1, 2.5, -3e2, \"x\", true, false, null]"));
  EXPECT_TRUE(ValidateJsonSyntax("{\"a\": {\"b\": [\"c\\\"d\"]}}"));
  EXPECT_TRUE(ValidateJsonSyntax("  42  "));
}

TEST(JsonValidatorTest, RejectsMalformed) {
  EXPECT_FALSE(ValidateJsonSyntax(""));
  EXPECT_FALSE(ValidateJsonSyntax("{"));
  EXPECT_FALSE(ValidateJsonSyntax("[1,]"));
  EXPECT_FALSE(ValidateJsonSyntax("{\"a\":}"));
  EXPECT_FALSE(ValidateJsonSyntax("{\"a\":1,}"));
  EXPECT_FALSE(ValidateJsonSyntax("{} trailing"));
  EXPECT_FALSE(ValidateJsonSyntax("\"unterminated"));
  EXPECT_FALSE(ValidateJsonSyntax("tru"));
  EXPECT_FALSE(ValidateJsonSyntax("{1: 2}"));
}

// --- Latency breakdown -------------------------------------------------------

TEST(BreakdownTest, ClassifiesOutcomesAndAttributesTime) {
  std::vector<SpanRecord> spans;
  // Request 1 — accepted device IO on node 0: 300ns queued, 500ns serviced,
  // 200ns of syscall overhead.
  spans.push_back(Span(1, SpanKind::kSyscall, 0, 1000, 0));
  spans.push_back(Span(1, SpanKind::kCacheLookup, 0, 0, 0));
  spans.push_back(Span(1, SpanKind::kQueueWait, 100, 400, 0));
  spans.push_back(Span(1, SpanKind::kDeviceService, 400, 900, 0));
  // Request 2 — cache hit: no queue/device time inside the syscall window.
  spans.push_back(Span(2, SpanKind::kSyscall, 0, 50, 0));
  spans.push_back(Span(2, SpanKind::kCacheLookup, 0, 0, 0));
  // Request 3 — rejected: the only syscall ends in EBUSY.
  spans.push_back(Span(3, SpanKind::kSyscall, 0, 10, 0));
  spans.push_back(Span(3, SpanKind::kEbusyReject, 10, 10, 0));
  // Request 4 — failed over: EBUSY on node 0, then success on node 1.
  spans.push_back(Span(4, SpanKind::kSyscall, 0, 10, 0));
  spans.push_back(Span(4, SpanKind::kEbusyReject, 10, 10, 0));
  spans.push_back(Span(4, SpanKind::kFailover, 15, 15, -1));
  spans.push_back(Span(4, SpanKind::kSyscall, 20, 1020, 1));
  spans.push_back(Span(4, SpanKind::kQueueWait, 30, 130, 1));
  spans.push_back(Span(4, SpanKind::kDeviceService, 130, 930, 1));
  // Untraced noise IO (request id 0) — counted, not attributed.
  spans.push_back(Span(0, SpanKind::kDeviceService, 0, 5000, 0));

  const LatencyBreakdown bd = ComputeLatencyBreakdown(spans);
  EXPECT_EQ(bd.untraced_spans, 1u);
  ASSERT_EQ(bd.rows.size(), 4u);
  // Rows come out in enum order: cache_hit, accepted, rejected, failed_over.
  ASSERT_EQ(bd.rows[0].outcome, RequestOutcome::kCacheHit);
  ASSERT_EQ(bd.rows[1].outcome, RequestOutcome::kAccepted);
  ASSERT_EQ(bd.rows[2].outcome, RequestOutcome::kRejected);
  ASSERT_EQ(bd.rows[3].outcome, RequestOutcome::kFailedOver);
  for (const BreakdownRow& row : bd.rows) {
    EXPECT_EQ(row.requests, 1u);
  }
  // Single-sample rows: Percentile(50) is the sample itself.
  EXPECT_EQ(bd.rows[0].end_to_end.Percentile(50), 50);
  EXPECT_EQ(bd.rows[0].syscall_overhead.Percentile(50), 50);
  EXPECT_EQ(bd.rows[1].queue_wait.Percentile(50), 300);
  EXPECT_EQ(bd.rows[1].device_service.Percentile(50), 500);
  EXPECT_EQ(bd.rows[1].syscall_overhead.Percentile(50), 200);
  EXPECT_EQ(bd.rows[1].end_to_end.Percentile(50), 1000);
  EXPECT_EQ(bd.rows[2].end_to_end.Percentile(50), 10);
  // Failed-over attribution covers the *successful* syscall only; the EBUSY
  // round trip is what the client already paid before failing over.
  EXPECT_EQ(bd.rows[3].queue_wait.Percentile(50), 100);
  EXPECT_EQ(bd.rows[3].device_service.Percentile(50), 800);
  EXPECT_EQ(bd.rows[3].syscall_overhead.Percentile(50), 100);
  EXPECT_EQ(bd.rows[3].end_to_end.Percentile(50), 1000);
}

TEST(BreakdownTest, SkipsRequestsWhoseSyscallWindowWasDropped) {
  // Only layer spans survive (the ring overwrote the syscall window): the
  // request cannot be attributed and must not show up as a row.
  std::vector<SpanRecord> spans;
  spans.push_back(Span(7, SpanKind::kQueueWait, 100, 400, 0));
  spans.push_back(Span(7, SpanKind::kDeviceService, 400, 900, 0));
  const LatencyBreakdown bd = ComputeLatencyBreakdown(spans);
  EXPECT_TRUE(bd.rows.empty());
  EXPECT_EQ(bd.untraced_spans, 0u);
}

// --- End-to-end: traced experiment runs --------------------------------------

harness::ExperimentOptions SmallTracedExperiment() {
  harness::ExperimentOptions opt;
  opt.num_nodes = 3;
  opt.num_clients = 2;
  opt.measure_requests = 300;
  opt.warmup_requests = 30;
  opt.pin_primary_node = 0;
  opt.noise = harness::NoiseKind::kContinuous;
  opt.continuous_intensity = 2;
  opt.deadline = Millis(20);
  opt.app_timeout = Millis(20);
  opt.hedge_delay = Millis(20);
  opt.trace = true;
  opt.seed = 7;
  return opt;
}

TEST(TracedRunTest, BreakdownAccountingIdentityHolds) {
  harness::Experiment exp(SmallTracedExperiment());
  const harness::RunResult run = exp.Run(harness::StrategyKind::kMittos);
#if MITT_OBS_ENABLED
  ASSERT_FALSE(run.trace_spans.empty());
  EXPECT_EQ(run.trace_dropped, 0u);
  const LatencyBreakdown bd = ComputeLatencyBreakdown(run.trace_spans);
  ASSERT_FALSE(bd.rows.empty());
  uint64_t attributed = 0;
  for (const BreakdownRow& row : bd.rows) {
    attributed += row.requests;
    // Per-sample identity: end_to_end == queue + device + overhead, so the
    // means (exact sums / n) must match to rounding error.
    const double parts = row.queue_wait.MeanNs() + row.device_service.MeanNs() +
                         row.syscall_overhead.MeanNs();
    EXPECT_NEAR(row.end_to_end.MeanNs(), parts, 1.0) << RequestOutcomeName(row.outcome);
  }
  EXPECT_GT(attributed, 0u);
  // The OS counted one EBUSY per rejection span the tracer saw.
  uint64_t reject_spans = 0;
  for (const SpanRecord& s : run.trace_spans) {
    if (s.kind == SpanKind::kEbusyReject) {
      ++reject_spans;
    }
  }
  EXPECT_EQ(run.metrics.CounterTotal("ebusy_total"), reject_spans);
  EXPECT_GT(reject_spans, 0u);  // The pinned noisy node must reject sometimes.
  // And the export of a real trace is valid JSON.
  EXPECT_TRUE(ValidateJsonSyntax(ChromeTraceJson(run.trace_spans, "mittos")));
#else
  EXPECT_TRUE(run.trace_spans.empty());
  EXPECT_TRUE(run.metrics.empty());
#endif
}

TEST(TracedRunTest, TraceBitIdenticalAcrossWorkerCounts) {
  const harness::ExperimentOptions opt = SmallTracedExperiment();
  const std::vector<harness::Trial> trials = {
      {opt, harness::StrategyKind::kBase, ""},
      {opt, harness::StrategyKind::kMittos, ""},
  };
  const auto serial = harness::RunTrialsParallel(trials, /*workers=*/1);
  const auto parallel = harness::RunTrialsParallel(trials, /*workers=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const harness::RunResult& a = serial[i];
    const harness::RunResult& b = parallel[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.user_latencies.samples(), b.user_latencies.samples());
    ASSERT_EQ(a.trace_spans.size(), b.trace_spans.size());
    for (size_t j = 0; j < a.trace_spans.size(); ++j) {
      ASSERT_TRUE(SameSpan(a.trace_spans[j], b.trace_spans[j]))
          << "trial " << i << " span " << j;
    }
    // Metrics registries must agree key-for-key, value-for-value.
    ASSERT_EQ(a.metrics.counters().size(), b.metrics.counters().size());
    auto bit = b.metrics.counters().begin();
    for (const auto& [key, counter] : a.metrics.counters()) {
      EXPECT_EQ(key.name, bit->first.name);
      EXPECT_EQ(key.node, bit->first.node);
      EXPECT_EQ(counter.value(), bit->second.value());
      ++bit;
    }
#if MITT_OBS_ENABLED
    EXPECT_FALSE(a.trace_spans.empty());
#endif
  }
}

}  // namespace
}  // namespace mitt::obs
