#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "src/kv/ring_coordinator.h"
#include "src/lsm/bloom.h"
#include "src/lsm/lsm_node.h"
#include "src/lsm/lsm_tree.h"
#include "src/lsm/memtable.h"
#include "src/lsm/sstable.h"
#include "src/noise/noise_injector.h"
#include "src/sim/simulator.h"

namespace mitt::lsm {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(1000);
  for (uint64_t k = 0; k < 1000; ++k) {
    bloom.Add(k * 7919);
  }
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(bloom.MayContain(k * 7919));
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilter bloom(1000);
  for (uint64_t k = 0; k < 1000; ++k) {
    bloom.Add(k * 7919);
  }
  int fp = 0;
  const int probes = 10000;
  for (uint64_t k = 0; k < probes; ++k) {
    if (bloom.MayContain(k * 7919 + 3)) {
      ++fp;
    }
  }
  EXPECT_LT(fp, probes / 50);  // Under 2%.
}

TEST(MemTableTest, PutContainsClear) {
  MemTable mem;
  EXPECT_TRUE(mem.empty());
  mem.Put(1, 1024);
  mem.Put(2, 1024);
  mem.Put(1, 1024);  // Update, not new entry.
  EXPECT_EQ(mem.entry_count(), 2u);
  EXPECT_TRUE(mem.Contains(1));
  EXPECT_FALSE(mem.Contains(3));
  EXPECT_EQ(mem.approximate_bytes(), 2 * (1024 + 8));
  const auto keys = mem.SortedKeys();
  EXPECT_EQ(keys, (std::vector<uint64_t>{1, 2}));
  mem.Clear();
  EXPECT_TRUE(mem.empty());
}

TEST(SsTableTest, LookupFindsBlocks) {
  std::vector<uint64_t> keys(100);
  std::iota(keys.begin(), keys.end(), 1000);
  SsTable table(1, 7, keys, /*level=*/1, /*block_size=*/4096, /*keys_per_block=*/4);
  EXPECT_EQ(table.min_key(), 1000u);
  EXPECT_EQ(table.max_key(), 1099u);
  EXPECT_EQ(table.size_bytes(), 25 * 4096);
  int64_t offset = -1;
  ASSERT_TRUE(table.Lookup(1000, &offset));
  EXPECT_EQ(offset, 0);
  ASSERT_TRUE(table.Lookup(1007, &offset));
  EXPECT_EQ(offset, 4096);  // Rank 7 -> block 1.
  EXPECT_FALSE(table.Lookup(999, &offset));
  EXPECT_FALSE(table.Lookup(5000, &offset));
}

TEST(SsTableTest, MayContainRangeAndBloom) {
  std::vector<uint64_t> keys = {10, 20, 30};
  SsTable table(1, 7, keys, 0);
  EXPECT_TRUE(table.MayContain(20));
  EXPECT_FALSE(table.MayContain(5));
  EXPECT_FALSE(table.MayContain(35));
}

class LsmTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    os::OsOptions opt;
    opt.backend = os::BackendKind::kDiskCfq;
    opt.mitt_enabled = false;
    os_ = std::make_unique<os::Os>(&sim_, opt);
  }

  sim::Simulator sim_;
  std::unique_ptr<os::Os> os_;
};

TEST_F(LsmTreeTest, PutsFlushToL0) {
  LsmTree::Options opt;
  opt.memtable_flush_bytes = 64 << 10;  // Tiny, to force flushes.
  LsmTree tree(&sim_, os_.get(), opt);
  int acked = 0;
  for (uint64_t k = 0; k < 200; ++k) {
    tree.Put(k, [&](Status s) {
      EXPECT_TRUE(s.ok());
      ++acked;
    });
  }
  sim_.Run();
  EXPECT_EQ(acked, 200);
  EXPECT_GT(tree.flushes_done(), 0u);
  EXPECT_GT(tree.level_size(0) + tree.level_size(1), 0u);
}

TEST_F(LsmTreeTest, CompactionMergesL0IntoL1) {
  LsmTree::Options opt;
  opt.memtable_flush_bytes = 32 << 10;
  opt.l0_compaction_trigger = 3;
  LsmTree tree(&sim_, os_.get(), opt);
  for (uint64_t k = 0; k < 500; ++k) {
    tree.Put(k * 13, nullptr);
  }
  sim_.Run();
  EXPECT_GT(tree.compactions_done(), 0u);
  EXPECT_LT(tree.level_size(0), 3u);
  EXPECT_GT(tree.level_size(1), 0u);
}

TEST_F(LsmTreeTest, GetFromMemtableIsInstant) {
  LsmTree tree(&sim_, os_.get(), LsmTree::Options{});
  tree.Put(42, nullptr);
  sim_.Run();
  Status status = Status::Internal();
  tree.Get(42, sched::kNoDeadline, [&](Status s) { status = s; });
  EXPECT_TRUE(status.ok());  // Synchronous memtable hit.
}

TEST_F(LsmTreeTest, GetFromSstableCostsOneRead) {
  LsmTree tree(&sim_, os_.get(), LsmTree::Options{});
  std::vector<uint64_t> keys(5000);
  std::iota(keys.begin(), keys.end(), 0);
  tree.BulkLoad(keys);
  Status status = Status::Internal();
  TimeNs done = -1;
  tree.Get(777, sched::kNoDeadline, [&](Status s) {
    status = s;
    done = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done >= 0; });
  EXPECT_TRUE(status.ok());
  EXPECT_GT(done, kMillisecond);  // One disk block read.
  EXPECT_LT(done, Millis(15));
}

TEST_F(LsmTreeTest, MissingKeyNotFoundWithoutIo) {
  LsmTree tree(&sim_, os_.get(), LsmTree::Options{});
  std::vector<uint64_t> keys(1000);
  std::iota(keys.begin(), keys.end(), 0);
  tree.BulkLoad(keys);
  Status status = Status::Internal();
  tree.Get(999999, sched::kNoDeadline, [&](Status s) { status = s; });
  // Range check rejects instantly; no IO, synchronous NotFound.
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(LsmTreeTest, EbusyPropagatesFromReadPath) {
  // Rebuild the OS with MittOS enabled.
  os::OsOptions opt;
  opt.backend = os::BackendKind::kDiskCfq;
  opt.mitt_enabled = true;
  os_ = std::make_unique<os::Os>(&sim_, opt);
  LsmTree tree(&sim_, os_.get(), LsmTree::Options{});
  std::vector<uint64_t> keys(5000);
  std::iota(keys.begin(), keys.end(), 0);
  tree.BulkLoad(keys);
  // Saturate the disk.
  const uint64_t noise_file = os_->CreateFile(100LL << 30);
  for (int i = 0; i < 40; ++i) {
    os::Os::ReadArgs args;
    args.file = noise_file;
    args.offset = static_cast<int64_t>(i) << 30;
    args.size = 1 << 20;
    args.pid = 99;
    args.bypass_cache = true;
    os_->Read(args, nullptr);
  }
  Status status = Status::Internal();
  TimeNs done = -1;
  tree.Get(777, Millis(10), [&](Status s) {
    status = s;
    done = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done >= 0; });
  EXPECT_TRUE(status.busy());
  EXPECT_LT(done, kMillisecond);  // Fast rejection, no queueing.
}

class RingTest : public ::testing::Test {
 protected:
  void Build(bool mitt_enabled) {
    network_ = std::make_unique<cluster::Network>(&sim_, cluster::NetworkParams{}, 5);
    std::vector<uint64_t> keys(20000);
    std::iota(keys.begin(), keys.end(), 0);
    for (int i = 0; i < 3; ++i) {
      LsmNode::Options opt;
      opt.os.backend = os::BackendKind::kDiskCfq;
      opt.os.mitt_enabled = mitt_enabled;
      nodes_.push_back(std::make_unique<LsmNode>(&sim_, i, opt));
      nodes_.back()->lsm().BulkLoad(keys);
    }
    kv::RingCoordinator::Options copt;
    copt.deadline = Millis(12);
    copt.mitt_enabled = mitt_enabled;
    coordinator_ = std::make_unique<kv::RingCoordinator>(
        &sim_,
        std::vector<LsmNode*>{nodes_[0].get(), nodes_[1].get(), nodes_[2].get()},
        network_.get(), copt);
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Network> network_;
  std::vector<std::unique_ptr<LsmNode>> nodes_;
  std::unique_ptr<kv::RingCoordinator> coordinator_;
};

TEST_F(RingTest, GetSucceedsQuietCluster) {
  Build(true);
  Status status = Status::Internal();
  TimeNs done = -1;
  coordinator_->Get(123, [&](Status s) {
    status = s;
    done = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done >= 0; });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(coordinator_->failovers(), 0u);
}

TEST_F(RingTest, EbusyTriggersReplicaFailover) {
  Build(true);
  // Saturate the primary replica of key 123.
  const int primary = coordinator_->ReplicasOf(123)[0];
  os::Os& primary_os = nodes_[static_cast<size_t>(primary)]->os();
  const uint64_t noise_file = primary_os.CreateFile(100LL << 30);
  for (int i = 0; i < 40; ++i) {
    os::Os::ReadArgs args;
    args.file = noise_file;
    args.offset = static_cast<int64_t>(i) << 30;
    args.size = 1 << 20;
    args.pid = 99;
    args.bypass_cache = true;
    primary_os.Read(args, nullptr);
  }
  Status status = Status::Internal();
  TimeNs done = -1;
  const TimeNs start = sim_.Now();
  coordinator_->Get(123, [&](Status s) {
    status = s;
    done = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done >= 0; });
  EXPECT_TRUE(status.ok());
  EXPECT_GE(coordinator_->failovers(), 1u);
  EXPECT_LT(done - start, Millis(15));  // No waiting on the busy primary.
}

TEST_F(RingTest, PutReplicatesAndAcks) {
  Build(true);
  Status status = Status::Internal();
  TimeNs done = -1;
  coordinator_->Put(55, [&](Status s) {
    status = s;
    done = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done >= 0; });
  EXPECT_TRUE(status.ok());
  EXPECT_LT(done, Millis(2));  // WAL hits NVRAM; buffered ack.
  sim_.Run();
  for (auto& node : nodes_) {
    EXPECT_GT(node->lsm().memtable_entries(), 0u);
  }
}

}  // namespace
}  // namespace mitt::lsm
