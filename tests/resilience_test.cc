// src/resilience/ tests: deadline budgets (the underflow audit), retry
// governance, the admission gate, the replica-health circuit breaker, and the
// end-to-end resilient client / ring behaviours the subsystem exists for —
// instant failover stays instant, the all-busy world completes without
// deadline-disabled sends, and everything is bit-identical across worker
// counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "src/client/mittos_client.h"
#include "src/client/resilient.h"
#include "src/client/timeout.h"
#include "src/fault/fault_plan.h"
#include "src/harness/scenario_runner.h"
#include "src/kv/ring_coordinator.h"
#include "src/lsm/lsm_node.h"
#include "src/noise/noise_injector.h"
#include "src/obs/export.h"
#include "src/resilience/admission_gate.h"
#include "src/resilience/deadline_budget.h"
#include "src/resilience/replica_health.h"
#include "src/resilience/retry_policy.h"
#include "src/sim/simulator.h"

namespace mitt {
namespace {

// ---------------------------------------------------------- DeadlineBudget

TEST(DeadlineBudgetTest, DeductsElapsedAndClampsAtZero) {
  resilience::DeadlineBudget budget(Millis(10), /*start=*/Millis(5));
  EXPECT_EQ(budget.Remaining(Millis(5)), Millis(10));
  EXPECT_EQ(budget.Remaining(Millis(9)), Millis(6));
  EXPECT_FALSE(budget.Exhausted(Millis(9)));
  // At and past the SLO edge: clamped to 0, never negative — a negative
  // remaining would alias into sched::kNoDeadline territory.
  EXPECT_EQ(budget.Remaining(Millis(15)), 0);
  EXPECT_EQ(budget.Remaining(Millis(500)), 0);
  EXPECT_TRUE(budget.Exhausted(Millis(15)));
  EXPECT_EQ(budget.Elapsed(Millis(9)), Millis(4));
}

TEST(DeadlineBudgetTest, UnlimitedPassesNoDeadlineThrough) {
  resilience::DeadlineBudget budget(sched::kNoDeadline, 0);
  EXPECT_TRUE(budget.unlimited());
  EXPECT_EQ(budget.Remaining(Seconds(100)), sched::kNoDeadline);
  EXPECT_FALSE(budget.Exhausted(Seconds(100)));
}

TEST(DeadlineBudgetTest, ClampDeadlineZeroesUnderflowButKeepsNoDeadline) {
  // The audit's core invariant: hop arithmetic that underflows must read as
  // "no time left" (0), never as "no deadline" (-1).
  EXPECT_EQ(resilience::ClampDeadline(sched::kNoDeadline), sched::kNoDeadline);
  EXPECT_EQ(resilience::ClampDeadline(-2), 0);
  EXPECT_EQ(resilience::ClampDeadline(-Millis(3)), 0);
  EXPECT_EQ(resilience::ClampDeadline(0), 0);
  EXPECT_EQ(resilience::ClampDeadline(Millis(7)), Millis(7));
}

// ------------------------------------------------------------- RetryBudget

TEST(RetryBudgetTest, DeniesWhenDryAndRefillsFractionallyOnSuccess) {
  resilience::RetryBudgetOptions opt;
  opt.initial = 2.0;
  opt.burst = 3.0;
  opt.refill_per_success = 0.5;
  resilience::RetryBudget budget(opt);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());  // Dry: a retry storm stops here.
  EXPECT_EQ(budget.denied(), 1u);
  budget.OnSuccess();
  EXPECT_FALSE(budget.TryAcquire());  // 0.5 tokens: still below one retry.
  budget.OnSuccess();
  EXPECT_TRUE(budget.TryAcquire());  // 1.0 accrued.
  for (int i = 0; i < 100; ++i) {
    budget.OnSuccess();
  }
  EXPECT_DOUBLE_EQ(budget.tokens(), opt.burst);  // Capped at burst.
  EXPECT_EQ(budget.granted(), 3u);
}

TEST(BackoffTest, DecorrelatedJitterIsDeterministicAndBounded) {
  resilience::BackoffOptions opt;
  opt.base = Micros(500);
  opt.cap = Millis(20);
  resilience::DecorrelatedJitterBackoff a(opt, 7);
  resilience::DecorrelatedJitterBackoff b(opt, 7);
  DurationNs prev = opt.base;
  for (int i = 0; i < 50; ++i) {
    const DurationNs next = a.Next();
    EXPECT_EQ(next, b.Next());  // Same seed, same ladder.
    EXPECT_GE(next, opt.base);
    EXPECT_LE(next, std::min<DurationNs>(opt.cap, std::max(opt.base, prev * 3)));
    prev = next;
  }
  a.Reset();
  const DurationNs after_reset = a.Next();
  EXPECT_LE(after_reset, opt.base * 3);  // Ladder restarted from base.
}

// ----------------------------------------------------------- AdmissionGate

TEST(AdmissionGateTest, ShedsAtCapacityAndReopensOnRelease) {
  resilience::AdmissionGateOptions opt;
  opt.max_inflight = 2;
  resilience::AdmissionGate gate(opt);
  EXPECT_TRUE(gate.TryAdmit());
  EXPECT_TRUE(gate.TryAdmit());
  EXPECT_FALSE(gate.TryAdmit());  // Bounded: the convoy cannot grow.
  EXPECT_EQ(gate.sheds(), 1u);
  gate.Release();
  EXPECT_TRUE(gate.TryAdmit());
  EXPECT_EQ(gate.admits(), 3u);
  EXPECT_EQ(gate.inflight(), 2);
}

// ----------------------------------------------------- ReplicaHealthTracker

class BreakerTest : public ::testing::Test {
 protected:
  resilience::ReplicaHealthOptions DefaultOptions() {
    resilience::ReplicaHealthOptions opt;
    opt.min_samples = 4;
    opt.open_base = Millis(40);
    opt.open_jitter = 0.0;  // Exact windows for the test.
    return opt;
  }

  sim::Simulator sim_;
};

TEST_F(BreakerTest, EbusyStormOpensAndProbeCloses) {
  resilience::ReplicaHealthTracker tracker(&sim_, 3, DefaultOptions(), 5);
  for (int i = 0; i < 8; ++i) {
    tracker.OnReply(/*replica=*/0, Micros(300), /*ebusy=*/true);
  }
  EXPECT_EQ(tracker.state(0), resilience::BreakerState::kOpen);
  EXPECT_EQ(tracker.breaker_opens(), 1u);
  EXPECT_EQ(tracker.state(1), resilience::BreakerState::kClosed);

  // Open pushes the replica to the back of the failover walk.
  std::vector<int> order = {0, 1, 2};
  tracker.OrderReplicas(&order);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));

  // After the open window: half-open, exactly one probe slot.
  sim_.Schedule(Millis(41), [] {});
  sim_.Run();
  EXPECT_EQ(tracker.state(0), resilience::BreakerState::kHalfOpen);
  EXPECT_TRUE(tracker.AcquireProbe(0));
  EXPECT_FALSE(tracker.AcquireProbe(0));  // One outstanding probe max.
  EXPECT_EQ(tracker.probes_sent(), 1u);

  // Probe succeeds: closed, back at the front of the walk.
  tracker.OnReply(0, Micros(300), /*ebusy=*/false);
  EXPECT_EQ(tracker.state(0), resilience::BreakerState::kClosed);
  order = {0, 1, 2};
  tracker.OrderReplicas(&order);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(BreakerTest, FailedProbeReopensWithEscalatedWindow) {
  resilience::ReplicaHealthTracker tracker(&sim_, 2, DefaultOptions(), 5);
  for (int i = 0; i < 8; ++i) {
    tracker.OnReply(0, Micros(300), true);
  }
  ASSERT_EQ(tracker.state(0), resilience::BreakerState::kOpen);
  sim_.Schedule(Millis(41), [] {});
  sim_.Run();
  ASSERT_EQ(tracker.state(0), resilience::BreakerState::kHalfOpen);
  ASSERT_TRUE(tracker.AcquireProbe(0));
  tracker.OnReply(0, Micros(300), true);  // Probe rejected: still sick.
  EXPECT_EQ(tracker.state(0), resilience::BreakerState::kOpen);
  EXPECT_EQ(tracker.breaker_opens(), 2u);
  // Escalated: 80 ms window now, so +41 ms is still open.
  sim_.Schedule(Millis(41), [] {});
  sim_.Run();
  EXPECT_EQ(tracker.state(0), resilience::BreakerState::kOpen);
  sim_.Schedule(Millis(41), [] {});
  sim_.Run();
  EXPECT_EQ(tracker.state(0), resilience::BreakerState::kHalfOpen);
}

TEST_F(BreakerTest, ConsecutiveTimeoutsOpenRegardlessOfSamples) {
  // Timeouts (pauses, partitions, drop storms) must open the breaker even
  // with zero reply samples — the OS-side predictor cannot see them.
  resilience::ReplicaHealthTracker tracker(&sim_, 2, DefaultOptions(), 5);
  tracker.OnTimeout(0);
  EXPECT_EQ(tracker.state(0), resilience::BreakerState::kClosed);
  tracker.OnTimeout(0);
  EXPECT_EQ(tracker.state(0), resilience::BreakerState::kOpen);
}

TEST_F(BreakerTest, FailSlowLatencyOpensAgainstClusterBest) {
  resilience::ReplicaHealthOptions opt = DefaultOptions();
  opt.latency_slow_factor = 4.0;
  opt.latency_floor = Millis(2);
  resilience::ReplicaHealthTracker tracker(&sim_, 2, opt, 5);
  for (int i = 0; i < 8; ++i) {
    tracker.OnReply(1, Millis(1), false);   // Healthy baseline.
    tracker.OnReply(0, Millis(30), false);  // Fail-slow but still answering.
  }
  EXPECT_EQ(tracker.state(0), resilience::BreakerState::kOpen);
  EXPECT_EQ(tracker.state(1), resilience::BreakerState::kClosed);
}

#ifndef MITT_OBS_DISABLED
TEST_F(BreakerTest, TransitionsRecordResilienceSpans) {
  obs::Tracer tracer(64);
  sim_.set_tracer(&tracer);
  resilience::ReplicaHealthTracker tracker(&sim_, 2, DefaultOptions(), 5);
  for (int i = 0; i < 8; ++i) {
    tracker.OnReply(0, Micros(300), true);
  }
  sim_.Schedule(Millis(41), [] {});
  sim_.Run();
  ASSERT_EQ(tracker.state(0), resilience::BreakerState::kHalfOpen);
  ASSERT_TRUE(tracker.AcquireProbe(0));
  tracker.OnReply(0, Micros(300), false);

  int opens = 0;
  int half_opens = 0;
  int closes = 0;
  for (const obs::SpanRecord& s : tracer.OrderedSpans()) {
    opens += s.kind == obs::SpanKind::kBreakerOpen && s.node == 0;
    half_opens += s.kind == obs::SpanKind::kBreakerHalfOpen && s.node == 0;
    closes += s.kind == obs::SpanKind::kBreakerClose && s.node == 0;
  }
  EXPECT_EQ(opens, 1);
  EXPECT_EQ(half_opens, 1);
  EXPECT_EQ(closes, 1);
}
#endif  // MITT_OBS_DISABLED

// ------------------------------------------------- Resilient client, e2e

// 3-node DocStore cluster; optionally flood `noisy_nodes` with continuous
// contention (the ClientFixture pattern from client_test.cc).
class ResilientClientTest : public ::testing::Test {
 protected:
  void Build(const std::vector<int>& noisy_nodes,
             cluster::NetworkParams net = cluster::NetworkParams{}, int intensity = 3) {
    cluster::Cluster::Options opt;
    opt.num_nodes = 3;
    opt.node.num_keys = 1 << 18;
    opt.node.os.backend = os::BackendKind::kDiskCfq;
    opt.node.os.mitt_enabled = true;
    opt.network = net;
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, opt);
    for (const int node : noisy_nodes) {
      kv::DocStoreNode& n = cluster_->node(node);
      const int64_t size = 100LL << 30;
      const uint64_t file = n.os().CreateFile(size);
      noise::IoNoiseInjector::Options nopt;
      nopt.streams_per_intensity = 2;
      injectors_.push_back(std::make_unique<noise::IoNoiseInjector>(
          &sim_, &n.os(), file, size,
          std::vector<noise::NoiseEpisode>{{0, Seconds(30), intensity}}, nopt,
          static_cast<uint64_t>(node) + 7));
      injectors_.back()->Start();
    }
  }

  uint64_t KeyWithPrimary(int node, int skip = 0) {
    for (uint64_t key = 0;; ++key) {
      if (cluster_->ReplicasOf(key)[0] == node && skip-- == 0) {
        return key;
      }
    }
  }

  DurationNs RunOneGet(client::GetStrategy& strategy, uint64_t key,
                       client::GetResult* out = nullptr) {
    const TimeNs start = sim_.Now();
    TimeNs done = -1;
    client::GetResult result;
    strategy.Get(key, [&](const client::GetResult& r) {
      result = r;
      done = sim_.Now();
    });
    sim_.RunUntilPredicate([&] { return done >= 0; });
    if (out != nullptr) {
      *out = result;
    }
    return done - start;
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::vector<std::unique_ptr<noise::IoNoiseInjector>> injectors_;
};

TEST_F(ResilientClientTest, FailsOverInstantlyOffNoisyPrimary) {
  Build({0});
  client::ResilientOptions opt;
  opt.deadline = Millis(15);
  client::ResilientMittosStrategy res(&sim_, cluster_.get(), 1, opt);
  sim_.RunUntil(Millis(100));
  client::GetResult result;
  const DurationNs latency = RunOneGet(res, KeyWithPrimary(0), &result);
  EXPECT_TRUE(result.status.ok());
  // The paper's property survives the resilience layer: EBUSY failover is
  // instant, well inside the SLO.
  EXPECT_LT(latency, Millis(15));
  EXPECT_GT(res.ebusy_failovers(), 0u);
  EXPECT_EQ(res.degraded_gets(), 0u);  // A clean replica existed.
}

TEST_F(ResilientClientTest, AllBusyCompletesViaBoundedDegradedPath) {
  Build({0, 1, 2});
  client::ResilientOptions opt;
  opt.deadline = Millis(10);
  client::ResilientMittosStrategy res(&sim_, cluster_.get(), 1, opt);
  sim_.RunUntil(Millis(100));
  client::GetResult result;
  RunOneGet(res, 5, &result);
  // Graceful degradation: the user still gets an answer...
  EXPECT_TRUE(result.status.ok());
  EXPECT_GE(res.degraded_gets(), 1u);
  // ...and no hop ever carried a disabled or negative deadline. The largest
  // deadline on the wire is bounded by the server-side escalation cap.
  EXPECT_GE(res.max_sent_deadline(), 0);
  EXPECT_LE(res.max_sent_deadline(), Seconds(2));
}

TEST_F(ResilientClientTest, BreakerRoutesWalkAwayFromPersistentlySickPrimary) {
  Build({0}, cluster::NetworkParams{}, /*intensity=*/4);
  client::ResilientOptions opt;
  opt.deadline = Millis(15);
  opt.health.min_samples = 4;
  opt.health.open_base = Millis(200);  // Keep the breaker open through the test.
  client::ResilientMittosStrategy res(&sim_, cluster_.get(), 1, opt);
  sim_.RunUntil(Millis(100));
  // Every key's walk starts on the sick node, so the EBUSY EWMA sees it.
  for (int i = 0; i < 12; ++i) {
    RunOneGet(res, KeyWithPrimary(0, i));
  }
  EXPECT_GE(res.health().breaker_opens(), 1u);
  // With the breaker open the walk starts on a healthy replica: no more
  // wasted round trips to node 0.
  const uint64_t failovers_before = res.ebusy_failovers();
  for (int i = 0; i < 4; ++i) {
    RunOneGet(res, KeyWithPrimary(0, 12 + i));
  }
  EXPECT_EQ(res.ebusy_failovers(), failovers_before);
}

TEST_F(ResilientClientTest, SlowLinkNeverSendsNegativeOrDisabledDeadline) {
  // Regression for the deadline-underflow audit: with an 8 ms one-way link
  // and a 10 ms SLO, the budget is gone before the second hop can even be
  // computed — the remaining deadline math underflows. The client must send
  // 0 ("no time left"), never a negative value aliasing sched::kNoDeadline.
  cluster::NetworkParams net;
  net.one_way = Millis(8);
  net.jitter = 0;
  Build({0}, net);
  client::ResilientOptions opt;
  opt.deadline = Millis(10);
  client::ResilientMittosStrategy res(&sim_, cluster_.get(), 1, opt);
  sim_.RunUntil(Millis(100));
  client::GetResult result;
  RunOneGet(res, KeyWithPrimary(0), &result);
  EXPECT_TRUE(result.status.ok());  // Degraded path still answers.
  EXPECT_GE(res.max_sent_deadline(), 0);
  EXPECT_LE(res.max_sent_deadline(), Seconds(2));
  // The budget observed the burned RTT: either it exhausted outright or the
  // degraded path took over; both are bounded outcomes.
  EXPECT_GE(res.degraded_gets() + res.deadline_exhausted(), 1u);
}

TEST_F(ResilientClientTest, ExhaustedBudgetSurfacesStatusWhenDegradationDisabled) {
  cluster::NetworkParams net;
  net.one_way = Millis(8);
  net.jitter = 0;
  Build({0, 1, 2}, net);
  client::ResilientOptions opt;
  opt.deadline = Millis(5);
  opt.degraded_enabled = false;
  client::ResilientMittosStrategy res(&sim_, cluster_.get(), 1, opt);
  sim_.RunUntil(Millis(100));
  client::GetResult result;
  RunOneGet(res, 5, &result);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExhausted);
  EXPECT_GE(res.deadline_exhausted(), 1u);
}

// ---------------------------------------------- Ring coordinator, all-EBUSY

class RingResilienceTest : public ::testing::Test {
 protected:
  void Build(bool resilience_enabled) {
    network_ = std::make_unique<cluster::Network>(&sim_, cluster::NetworkParams{}, 5);
    std::vector<uint64_t> keys(20000);
    for (uint64_t i = 0; i < keys.size(); ++i) {
      keys[i] = i;
    }
    for (int i = 0; i < 3; ++i) {
      lsm::LsmNode::Options opt;
      opt.os.backend = os::BackendKind::kDiskCfq;
      opt.os.mitt_enabled = true;
      nodes_.push_back(std::make_unique<lsm::LsmNode>(&sim_, i, opt));
      nodes_.back()->lsm().BulkLoad(keys);
    }
    kv::RingCoordinator::Options copt;
    copt.deadline = Millis(12);
    copt.mitt_enabled = true;
    copt.resilience_enabled = resilience_enabled;
    coordinator_ = std::make_unique<kv::RingCoordinator>(
        &sim_,
        std::vector<lsm::LsmNode*>{nodes_[0].get(), nodes_[1].get(), nodes_[2].get()},
        network_.get(), copt);
  }

  void SaturateAllNodes() {
    for (auto& node : nodes_) {
      os::Os& os = node->os();
      const uint64_t noise_file = os.CreateFile(100LL << 30);
      for (int i = 0; i < 40; ++i) {
        os::Os::ReadArgs args;
        args.file = noise_file;
        args.offset = static_cast<int64_t>(i) << 30;
        args.size = 1 << 20;
        args.pid = 99;
        args.bypass_cache = true;
        os.Read(args, nullptr);
      }
    }
  }

  Status RunOneGet(uint64_t key) {
    Status status = Status::Internal();
    TimeNs done = -1;
    coordinator_->Get(key, [&](Status s) {
      status = s;
      done = sim_.Now();
    });
    sim_.RunUntilPredicate([&] { return done >= 0; });
    return status;
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Network> network_;
  std::vector<std::unique_ptr<lsm::LsmNode>> nodes_;
  std::unique_ptr<kv::RingCoordinator> coordinator_;
};

TEST_F(RingResilienceTest, NaiveAllEbusyDisablesDeadlineOnLastTry) {
  Build(/*resilience_enabled=*/false);
  SaturateAllNodes();
  const Status status = RunOneGet(123);
  EXPECT_TRUE(status.ok());  // Completes, but only by dropping the SLO.
  EXPECT_GE(coordinator_->failovers(), 2u);
  EXPECT_GE(coordinator_->unbounded_tries(), 1u);  // The behaviour under audit.
}

TEST_F(RingResilienceTest, ResilientAllEbusyCompletesWithBoundedDeadlines) {
  Build(/*resilience_enabled=*/true);
  SaturateAllNodes();
  const Status status = RunOneGet(123);
  EXPECT_TRUE(status.ok());  // 0 user-visible errors in the all-busy world.
  EXPECT_EQ(coordinator_->unbounded_tries(), 0u);
  EXPECT_GE(coordinator_->degraded_gets(), 1u);
  EXPECT_GE(coordinator_->max_sent_deadline(), 0);
  EXPECT_LE(coordinator_->max_sent_deadline(), Seconds(2));
}

TEST_F(RingResilienceTest, ResilientQuietClusterStaysOnFastPath) {
  Build(true);
  const Status status = RunOneGet(123);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(coordinator_->failovers(), 0u);
  EXPECT_EQ(coordinator_->degraded_gets(), 0u);
}

// ---------------------------------------------- Done-exactly-once property

// Satellite (b): every GetStrategy must call done exactly once per get, under
// EBUSY races, timeout/backoff races, drop-retransmit races, and the degraded
// path. ~1000 seeded get-shuffles across the strategy set.
class DoneOncePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DoneOncePropertyTest, EveryStrategyCallsDoneExactlyOnce) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  sim::Simulator sim;
  cluster::Cluster::Options copt;
  copt.num_nodes = 3;
  copt.node.num_keys = 1 << 16;
  copt.node.os.backend = os::BackendKind::kDiskCfq;
  copt.node.os.mitt_enabled = true;
  copt.seed = seed;
  cluster::Cluster cluster(&sim, copt);

  // A hostile world: one noisy node plus lossy links (drops are modeled as
  // lost-then-retransmitted, so late replies race client timers).
  kv::DocStoreNode& noisy = cluster.node(static_cast<int>(seed % 3));
  const int64_t size = 100LL << 30;
  const uint64_t file = noisy.os().CreateFile(size);
  noise::IoNoiseInjector::Options nopt;
  noise::IoNoiseInjector injector(&sim, &noisy.os(), file, size,
                                  {noise::NoiseEpisode{0, Seconds(30), 3}}, nopt, seed + 7);
  injector.Start();
  cluster.network().SetLinkDropProbability(cluster::Network::kNoPeer,
                                           0.05 + 0.1 * rng.Uniform(0.0, 1.0));

  client::TimeoutStrategy::Options topt;
  topt.timeout = Millis(12);
  client::MittosStrategy::Options mopt;
  mopt.deadline = Millis(12);
  client::MittosWaitStrategy::Options wopt;
  wopt.deadline = Millis(12);
  client::ResilientOptions ropt;
  ropt.deadline = Millis(12);
  ropt.health.min_samples = 4;
  client::TimeoutStrategy timeout(&sim, &cluster, seed, topt);
  client::MittosStrategy mittos(&sim, &cluster, seed, mopt);
  client::MittosWaitStrategy mittos_wait(&sim, &cluster, seed, wopt);
  client::ResilientMittosStrategy resilient(&sim, &cluster, seed, ropt);
  std::vector<client::GetStrategy*> strategies = {&timeout, &mittos, &mittos_wait, &resilient};

  sim.RunUntil(Millis(50));
  constexpr int kGetsPerStrategy = 25;  // x4 strategies x10 seeds = 1000 gets.
  int completed = 0;
  std::vector<int> calls;
  calls.reserve(strategies.size() * kGetsPerStrategy);
  for (int i = 0; i < kGetsPerStrategy; ++i) {
    // Shuffle strategy order per round so their events interleave differently
    // every seed.
    for (size_t s = strategies.size(); s > 1; --s) {
      std::swap(strategies[s - 1],
                strategies[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(s) - 1))]);
    }
    for (client::GetStrategy* strategy : strategies) {
      calls.push_back(0);
      int* slot = &calls.back();
      strategy->Get(rng.UniformInt(0, copt.node.num_keys - 1),
                    [slot, &completed](const client::GetResult&) {
                      ++*slot;
                      ++completed;
                    });
    }
    const int expected = static_cast<int>(calls.size());
    sim.RunUntilPredicate([&] { return completed >= expected; });
  }
  sim.Run();  // Drain stragglers (late retransmits, backoff timers).

  ASSERT_EQ(calls.size(), strategies.size() * kGetsPerStrategy);
  for (size_t i = 0; i < calls.size(); ++i) {
    EXPECT_EQ(calls[i], 1) << "get " << i << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoneOncePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ------------------------------------------------------- Scorecard export

TEST(ScorecardJsonTest, HostileScenarioNamesAreEscaped) {
  harness::StrategyScore s;
  s.scenario = "fail\"slow\\disk\n";
  s.strategy = "Mitt\"OS";
  const std::string json = harness::ScorecardJson({s}, Millis(13));
  EXPECT_TRUE(obs::ValidateJsonSyntax(json));
  EXPECT_NE(json.find("fail\\\"slow\\\\disk\\n"), std::string::npos);
}

// ------------------------------------------------- Scorecard determinism

TEST(ResilienceDeterminismTest, ScorecardBitIdenticalAcrossWorkerCounts) {
  harness::ExperimentOptions opt;
  opt.num_nodes = 3;
  opt.num_clients = 2;
  opt.measure_requests = 300;
  opt.warmup_requests = 30;
  opt.pin_primary_node = 0;
  opt.noise = harness::NoiseKind::kContinuous;
  opt.deadline = Millis(15);
  opt.seed = 99;
  fault::FaultPlanBuilder b;
  b.FailSlowDisk(/*node=*/0, Millis(20), Millis(400), 6.0);
  opt.fault_plan = b.Build();

  std::vector<harness::Trial> trials;
  for (const auto kind : {harness::StrategyKind::kMittos, harness::StrategyKind::kMittosResilient}) {
    trials.push_back({opt, kind, ""});
  }
  const auto serial = harness::RunTrialsParallel(trials, /*workers=*/1);
  const auto fanned = harness::RunTrialsParallel(trials, /*workers=*/4);

  ASSERT_EQ(serial.size(), fanned.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const harness::RunResult& a = serial[i];
    const harness::RunResult& f = fanned[i];
    EXPECT_EQ(a.get_latencies.samples(), f.get_latencies.samples()) << a.name;
    EXPECT_EQ(a.ebusy_failovers, f.ebusy_failovers) << a.name;
    EXPECT_EQ(a.degraded_gets, f.degraded_gets) << a.name;
    EXPECT_EQ(a.degraded_sheds, f.degraded_sheds) << a.name;
    EXPECT_EQ(a.deadline_exhausted, f.deadline_exhausted) << a.name;
    EXPECT_EQ(a.retry_denied, f.retry_denied) << a.name;
    EXPECT_EQ(a.max_sent_deadline, f.max_sent_deadline) << a.name;
    EXPECT_EQ(a.user_errors, f.user_errors) << a.name;
  }
}

}  // namespace
}  // namespace mitt
