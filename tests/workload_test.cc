#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/os/os.h"
#include "src/sim/simulator.h"
#include "src/workload/macro_workload.h"
#include "src/workload/synthetic_trace.h"
#include "src/workload/ycsb.h"

namespace mitt::workload {
namespace {

TEST(YcsbTest, UniformCoversKeySpace) {
  YcsbWorkload::Options opt;
  opt.num_keys = 100;
  opt.distribution = KeyDistribution::kUniform;
  YcsbWorkload ycsb(opt);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto op = ycsb.Next();
    ASSERT_LT(op.key, 100u);
    EXPECT_TRUE(op.is_read);  // read_fraction = 1.
    ++hits[op.key];
  }
  for (const int h : hits) {
    EXPECT_GT(h, 100);
  }
}

TEST(YcsbTest, ZipfianIsSkewedButScrambled) {
  YcsbWorkload::Options opt;
  opt.num_keys = 10000;
  opt.distribution = KeyDistribution::kZipfian;
  YcsbWorkload ycsb(opt);
  std::map<uint64_t, int> hits;
  for (int i = 0; i < 50000; ++i) {
    ++hits[ycsb.Next().key];
  }
  int max_hits = 0;
  uint64_t hottest = 0;
  for (const auto& [key, count] : hits) {
    if (count > max_hits) {
      max_hits = count;
      hottest = key;
    }
  }
  EXPECT_GT(max_hits, 1000);  // Strong skew.
  EXPECT_NE(hottest, 0u);     // Scrambling moved the hot key off 0.
}

TEST(YcsbTest, ReadFractionRespected) {
  YcsbWorkload::Options opt;
  opt.num_keys = 1000;
  opt.read_fraction = 0.3;
  opt.distribution = KeyDistribution::kUniform;
  YcsbWorkload ycsb(opt);
  int reads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    reads += ycsb.Next().is_read ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.3, 0.02);
}

TEST(SyntheticTraceTest, FiveProfilesWithPaperNames) {
  const auto& profiles = PaperTraceProfiles();
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles[0].name, "DAPPS");
  EXPECT_EQ(profiles[1].name, "DTRS");
  EXPECT_EQ(profiles[2].name, "EXCH");
  EXPECT_EQ(profiles[3].name, "LMBE");
  EXPECT_EQ(profiles[4].name, "TPCC");
}

TEST(SyntheticTraceTest, RecordsSortedAndInRange) {
  for (const auto& profile : PaperTraceProfiles()) {
    const auto trace = GenerateTrace(profile, Seconds(10), 3);
    ASSERT_GT(trace.size(), 500u) << profile.name;
    TimeNs prev = -1;
    for (const auto& rec : trace) {
      EXPECT_GE(rec.at, prev);
      prev = rec.at;
      EXPECT_GE(rec.offset, 0);
      EXPECT_LE(rec.offset + rec.size, profile.span_bytes);
      EXPECT_GT(rec.size, 0);
    }
  }
}

TEST(SyntheticTraceTest, ReadRatioApproximatelyMatchesProfile) {
  for (const auto& profile : PaperTraceProfiles()) {
    const auto trace = GenerateTrace(profile, Seconds(30), 5);
    int reads = 0;
    for (const auto& rec : trace) {
      reads += rec.is_read ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(reads) / static_cast<double>(trace.size()),
                profile.read_ratio, 0.05)
        << profile.name;
  }
}

TEST(SyntheticTraceTest, DeterministicPerSeed) {
  const auto& profile = PaperTraceProfiles()[0];
  const auto a = GenerateTrace(profile, Seconds(5), 9);
  const auto b = GenerateTrace(profile, Seconds(5), 9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].offset, b[i].offset);
  }
  const auto c = GenerateTrace(profile, Seconds(5), 10);
  EXPECT_NE(a.size(), c.size());
}

TEST(SyntheticTraceTest, BurstsPresent) {
  // Arrival-rate variance across 100ms windows should far exceed a Poisson
  // process with the same mean (burstiness).
  const auto trace = GenerateTrace(PaperTraceProfiles()[2], Seconds(30), 7);  // EXCH.
  std::vector<int> window_counts(300, 0);
  for (const auto& rec : trace) {
    ++window_counts[static_cast<size_t>(rec.at / Millis(100))];
  }
  double mean = 0;
  for (const int c : window_counts) {
    mean += c;
  }
  mean /= static_cast<double>(window_counts.size());
  double var = 0;
  for (const int c : window_counts) {
    var += (c - mean) * (c - mean);
  }
  var /= static_cast<double>(window_counts.size());
  EXPECT_GT(var / mean, 3.0);  // Fano factor >> 1.
}

TEST(MacroWorkloadTest, ProfilesIssueIoUntilHorizon) {
  for (const MacroProfile profile :
       {MacroProfile::kFileserver, MacroProfile::kVarmail, MacroProfile::kWebserver}) {
    sim::Simulator sim;
    os::OsOptions opt;
    opt.backend = os::BackendKind::kDiskCfq;
    opt.mitt_enabled = false;
    os::Os target(&sim, opt);
    const int64_t file_size = 50LL << 30;
    const uint64_t file = target.CreateFile(file_size);
    MacroWorkload::Options wopt;
    wopt.profile = profile;
    wopt.threads = 2;
    MacroWorkload workload(&sim, &target, file, file_size, wopt, 3);
    workload.Start(Millis(500));
    sim.Run();
    EXPECT_GT(workload.ios_issued(), 10u) << MacroProfileName(profile);
    EXPECT_GE(sim.Now(), Millis(400));
  }
}

TEST(MacroWorkloadTest, HadoopScansInBursts) {
  sim::Simulator sim;
  os::OsOptions opt;
  opt.backend = os::BackendKind::kDiskCfq;
  opt.mitt_enabled = false;
  os::Os target(&sim, opt);
  const int64_t file_size = 50LL << 30;
  const uint64_t file = target.CreateFile(file_size);
  MacroWorkload::Options wopt;
  wopt.profile = MacroProfile::kHadoop;
  wopt.threads = 1;
  MacroWorkload workload(&sim, &target, file, file_size, wopt, 3);
  workload.Start(Seconds(20));
  sim.Run();
  EXPECT_GT(workload.ios_issued(), 8u);
}

}  // namespace
}  // namespace mitt::workload
