#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/device/disk_model.h"
#include "src/device/disk_profile.h"
#include "src/device/ssd_model.h"
#include "src/device/ssd_profile.h"
#include "src/sim/simulator.h"

namespace mitt::device {
namespace {

using sched::IoOp;
using sched::IoRequest;

std::unique_ptr<IoRequest> MakeRead(uint64_t id, int64_t offset, int64_t size) {
  auto req = std::make_unique<IoRequest>();
  req->id = id;
  req->op = IoOp::kRead;
  req->offset = offset;
  req->size = size;
  return req;
}

class DiskModelTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  DiskParams params_;
};

TEST_F(DiskModelTest, SingleReadCompletesWithinModelBounds) {
  DiskModel disk(&sim_, params_, 1);
  auto req = MakeRead(1, 500LL << 30, 4096);
  TimeNs done_at = -1;
  disk.set_completion_listener([&](IoRequest*) { done_at = sim_.Now(); });
  disk.Submit(req.get());
  sim_.Run();
  ASSERT_GE(done_at, 0);
  // A random 4KB read should land in the classic 3-12 ms window.
  EXPECT_GT(done_at, Millis(3));
  EXPECT_LT(done_at, Millis(12));
  EXPECT_EQ(disk.completed_count(), 1u);
}

TEST_F(DiskModelTest, ExpectedServiceTimeMatchesMeanOfSamples) {
  DiskModel disk(&sim_, params_, 2);
  auto probe = MakeRead(0, 300LL << 30, 4096);
  const DurationNs expected = disk.ExpectedServiceTime(0, *probe);
  // Sample many one-IO runs from a fixed head position and compare the mean.
  double sum = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    sim::Simulator sim;
    DiskModel d(&sim, params_, 100 + static_cast<uint64_t>(i));
    auto req = MakeRead(1, 300LL << 30, 4096);
    TimeNs done_at = 0;
    d.set_completion_listener([&](IoRequest*) { done_at = sim.Now(); });
    d.Submit(req.get());
    sim.Run();
    sum += static_cast<double>(done_at);
  }
  EXPECT_NEAR(sum / n, static_cast<double>(expected), 0.1 * static_cast<double>(expected));
}

TEST_F(DiskModelTest, SstfReordersByDistance) {
  DiskModel disk(&sim_, params_, 3);
  // First IO seizes the head near offset 0; then queue one far and one near.
  std::vector<uint64_t> completion_order;
  disk.set_completion_listener(
      [&](IoRequest* req) { completion_order.push_back(req->id); });
  auto near_head = MakeRead(1, 1LL << 30, 4096);
  auto far = MakeRead(2, 900LL << 30, 4096);
  auto near2 = MakeRead(3, 2LL << 30, 4096);
  disk.Submit(near_head.get());
  disk.Submit(far.get());    // Submitted before near2...
  disk.Submit(near2.get());  // ...but near2 is closer to the head.
  sim_.Run();
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[0], 1u);
  EXPECT_EQ(completion_order[1], 3u);  // SSTF serves the near IO first.
  EXPECT_EQ(completion_order[2], 2u);
}

TEST_F(DiskModelTest, QueueDepthRespected) {
  params_.queue_depth = 4;
  DiskModel disk(&sim_, params_, 4);
  std::vector<std::unique_ptr<IoRequest>> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(MakeRead(static_cast<uint64_t>(i), i * (10LL << 30), 4096));
    ASSERT_TRUE(disk.CanAccept());
    disk.Submit(reqs.back().get());
  }
  EXPECT_FALSE(disk.CanAccept());
  EXPECT_EQ(disk.Occupancy(), 4u);
  sim_.Run();
  EXPECT_TRUE(disk.CanAccept());
  EXPECT_TRUE(disk.idle());
}

TEST_F(DiskModelTest, NvramWriteAcksFast) {
  DiskModel disk(&sim_, params_, 5);
  auto req = MakeRead(1, 100LL << 30, 4096);
  req->op = IoOp::kWrite;
  TimeNs acked = -1;
  disk.set_completion_listener([&](IoRequest* r) {
    if (r->id == 1) {
      acked = sim_.Now();
    }
  });
  disk.Submit(req.get());
  sim_.Run();
  EXPECT_EQ(acked, params_.nvram_latency);
  // The background destage still happened (2 completions total).
  EXPECT_EQ(disk.completed_count(), 2u);
}

TEST_F(DiskModelTest, WriteWithoutNvramTakesMechanicalTime) {
  params_.nvram_writes = false;
  DiskModel disk(&sim_, params_, 6);
  auto req = MakeRead(1, 100LL << 30, 4096);
  req->op = IoOp::kWrite;
  TimeNs acked = -1;
  disk.set_completion_listener([&](IoRequest*) { acked = sim_.Now(); });
  disk.Submit(req.get());
  sim_.Run();
  EXPECT_GT(acked, Millis(2));
}

TEST_F(DiskModelTest, DestagesContendWithReads) {
  // A burst of buffered writes should delay a subsequent read (the destages
  // occupy the head), even though the writes themselves ack fast.
  DiskModel disk(&sim_, params_, 7);
  std::vector<std::unique_ptr<IoRequest>> writes;
  disk.set_completion_listener([](IoRequest*) {});
  for (int i = 0; i < 8; ++i) {
    writes.push_back(MakeRead(static_cast<uint64_t>(i + 10), i * (50LL << 30), 64 * 1024));
    writes.back()->op = IoOp::kWrite;
    disk.Submit(writes.back().get());
  }
  auto read = MakeRead(1, 500LL << 30, 4096);
  TimeNs read_done = -1;
  disk.set_completion_listener([&](IoRequest* r) {
    if (r->id == 1) {
      read_done = sim_.Now();
    }
  });
  disk.Submit(read.get());
  sim_.Run();
  // Alone the read would take <12ms; behind 8 destages it must take longer.
  EXPECT_GT(read_done, Millis(12));
}

TEST(DiskProfileTest, LearnsServiceTimesWithinTolerance) {
  sim::Simulator sim;
  DiskParams params;
  DiskModel disk(&sim, params, 11);
  const DiskProfile profile = ProfileDisk(&sim, &disk);
  ASSERT_TRUE(profile.valid());

  // The learned model should predict expected service times within ~15%
  // across distances (rotation averages out over samples).
  sim::Simulator sim2;
  DiskModel reference(&sim2, params, 12);
  for (const int64_t dist_gb : {1, 10, 100, 500, 900}) {
    sched::IoRequest io;
    io.op = IoOp::kRead;
    io.offset = dist_gb << 30;
    io.size = 4096;
    const double predicted = static_cast<double>(profile.PredictServiceTime(0, io));
    const double expected = static_cast<double>(reference.ExpectedServiceTime(0, io));
    EXPECT_NEAR(predicted, expected, 0.15 * expected) << "distance " << dist_gb << " GB";
  }
}

TEST(DiskProfileTest, TransferCostLearned) {
  sim::Simulator sim;
  DiskParams params;
  DiskModel disk(&sim, params, 13);
  const DiskProfile profile = ProfileDisk(&sim, &disk);
  EXPECT_NEAR(static_cast<double>(profile.transfer_per_kb()),
              static_cast<double>(params.transfer_per_kb),
              0.2 * static_cast<double>(params.transfer_per_kb));
}

class SsdModelTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  SsdParams params_;
};

TEST_F(SsdModelTest, UncontendedPageReadTakesAbout100us) {
  SsdModel ssd(&sim_, params_, 1);
  auto req = MakeRead(1, 0, params_.page_size);
  TimeNs done_at = -1;
  ssd.set_completion_listener([&](IoRequest*) { done_at = sim_.Now(); });
  ssd.Submit(req.get());
  sim_.Run();
  EXPECT_NEAR(static_cast<double>(done_at), static_cast<double>(Micros(100)),
              static_cast<double>(Micros(5)));
}

TEST_F(SsdModelTest, PageStripingAcrossChips) {
  SsdModel ssd(&sim_, params_, 2);
  EXPECT_EQ(ssd.num_chips(), 128);
  EXPECT_EQ(ssd.ChipOfPage(0), 0);
  EXPECT_EQ(ssd.ChipOfPage(1), 1);
  EXPECT_EQ(ssd.ChipOfPage(128), 0);
  EXPECT_EQ(ssd.ChannelOfChip(0), 0);
  EXPECT_EQ(ssd.ChannelOfChip(17), 1);
}

TEST_F(SsdModelTest, MultiPageReadChoppedAndParallel) {
  SsdModel ssd(&sim_, params_, 3);
  // 8 pages stripe onto 8 different chips across 8 channels: near-parallel.
  auto req = MakeRead(1, 0, 8 * params_.page_size);
  TimeNs done_at = -1;
  ssd.set_completion_listener([&](IoRequest*) { done_at = sim_.Now(); });
  ssd.Submit(req.get());
  sim_.Run();
  EXPECT_LT(done_at, Micros(200));  // Far less than 8 x 100us serial.
  EXPECT_EQ(ssd.completed_count(), 1u);
}

TEST_F(SsdModelTest, SameChipReadsQueue) {
  SsdModel ssd(&sim_, params_, 4);
  const int64_t stride = ssd.num_chips() * params_.page_size;
  std::vector<std::unique_ptr<IoRequest>> reqs;
  std::vector<TimeNs> done;
  ssd.set_completion_listener([&](IoRequest*) { done.push_back(sim_.Now()); });
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(MakeRead(static_cast<uint64_t>(i), i * stride, params_.page_size));
    ssd.Submit(reqs.back().get());
  }
  sim_.Run();
  ASSERT_EQ(done.size(), 4u);
  // Chip is serial: each read waits ~40us media behind the previous.
  EXPECT_GT(done[3], Micros(190));
}

TEST_F(SsdModelTest, ReadBehindEraseIsDelayed) {
  SsdModel ssd(&sim_, params_, 5);
  auto erase = MakeRead(1, 0, params_.page_size);
  erase->op = IoOp::kErase;
  auto read = MakeRead(2, 0, params_.page_size);  // Same chip 0.
  TimeNs read_done = -1;
  ssd.set_completion_listener([&](IoRequest* r) {
    if (r->id == 2) {
      read_done = sim_.Now();
    }
  });
  ssd.Submit(erase.get());
  ssd.Submit(read.get());
  sim_.Run();
  EXPECT_GT(read_done, params_.erase);  // Stuck behind the 6ms erase.
}

TEST_F(SsdModelTest, SlowPagePatternMatchesPaperPrefix) {
  SsdModel ssd(&sim_, params_, 6);
  // Prose layout: pages #0-6 fast, #7 slow, #8-9 fast, then "1122" repeating.
  const std::string expect_prefix = "11111112111122";
  for (size_t i = 0; i < expect_prefix.size(); ++i) {
    const bool slow = ssd.IsSlowPage(static_cast<int64_t>(i) * ssd.num_chips());
    EXPECT_EQ(slow, expect_prefix[i] == '2') << "page " << i;
  }
  // Tail of the block: "...2112".
  const int ppb = params_.pages_per_block;
  EXPECT_TRUE(ssd.IsSlowPage(static_cast<int64_t>(ppb - 4) * ssd.num_chips()));
  EXPECT_FALSE(ssd.IsSlowPage(static_cast<int64_t>(ppb - 3) * ssd.num_chips()));
  EXPECT_FALSE(ssd.IsSlowPage(static_cast<int64_t>(ppb - 2) * ssd.num_chips()));
  EXPECT_TRUE(ssd.IsSlowPage(static_cast<int64_t>(ppb - 1) * ssd.num_chips()));
}

TEST_F(SsdModelTest, SlowPageWriteTakesLonger) {
  SsdModel ssd(&sim_, params_, 7);
  auto fast = MakeRead(1, 0, params_.page_size);  // Page 0: fast.
  fast->op = IoOp::kWrite;
  TimeNs fast_done = -1;
  ssd.set_completion_listener([&](IoRequest*) { fast_done = sim_.Now(); });
  ssd.Submit(fast.get());
  sim_.Run();

  sim::Simulator sim2;
  SsdModel ssd2(&sim2, params_, 8);
  // Page index 7 within chip 0: logical page 7 * 128.
  auto slow = MakeRead(2, 7LL * 128 * params_.page_size, params_.page_size);
  slow->op = IoOp::kWrite;
  TimeNs slow_done = -1;
  ssd2.set_completion_listener([&](IoRequest*) { slow_done = sim2.Now(); });
  ssd2.Submit(slow.get());
  sim2.Run();

  EXPECT_NEAR(static_cast<double>(slow_done - fast_done),
              static_cast<double>(params_.program_slow - params_.program_fast),
              static_cast<double>(Micros(80)));
}

TEST_F(SsdModelTest, GcInjectsChipNoise) {
  SsdModel ssd(&sim_, params_, 9);
  ssd.set_completion_listener(nullptr);
  SsdGc::Options opt;
  opt.mean_interval = Millis(5);
  SsdGc gc(&sim_, &ssd, opt, 10);
  gc.Start();
  sim_.RunUntil(Millis(200));
  gc.Stop();
  EXPECT_GT(gc.rounds(), 10u);
  EXPECT_GT(ssd.completed_count(), 10u);
}

TEST(SsdProfileTest, LearnsPaperConstants) {
  sim::Simulator sim;
  SsdParams params;
  SsdModel ssd(&sim, params, 21);
  const SsdProfile profile = ProfileSsd(&sim, &ssd);
  ASSERT_TRUE(profile.valid());
  EXPECT_NEAR(static_cast<double>(profile.page_read_total), static_cast<double>(Micros(100)),
              static_cast<double>(Micros(8)));
  EXPECT_NEAR(static_cast<double>(profile.channel_delay), static_cast<double>(Micros(60)),
              static_cast<double>(Micros(10)));
  EXPECT_NEAR(static_cast<double>(profile.erase_time), static_cast<double>(Millis(6)),
              static_cast<double>(Micros(200)));
  // The learned program pattern should classify page 0 fast and page 7 slow.
  EXPECT_LT(profile.ProgramTime(0), Millis(1) + Micros(200));
  EXPECT_GT(profile.ProgramTime(7), Millis(2) - Micros(200));
}

}  // namespace
}  // namespace mitt::device
