#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/device/disk_model.h"
#include "src/sched/cfq_scheduler.h"
#include "src/sched/noop_scheduler.h"
#include "src/sim/simulator.h"

namespace mitt::sched {
namespace {

struct Completion {
  uint64_t id;
  Status status;
  TimeNs at;
};

class SchedFixture : public ::testing::Test {
 protected:
  std::unique_ptr<IoRequest> MakeIo(uint64_t id, int64_t offset, int32_t pid = 1,
                                    IoClass io_class = IoClass::kBestEffort,
                                    int8_t priority = 4) {
    auto req = std::make_unique<IoRequest>();
    req->id = id;
    req->op = IoOp::kRead;
    req->offset = offset;
    req->size = 4096;
    req->pid = pid;
    req->io_class = io_class;
    req->priority = priority;
    req->on_complete = [this](const IoRequest& r, Status s) {
      completions_.push_back({r.id, s, sim_.Now()});
    };
    return req;
  }

  sim::Simulator sim_;
  device::DiskParams params_;
  std::vector<Completion> completions_;
};

TEST_F(SchedFixture, NoopFifoOrderIntoDevice) {
  params_.queue_depth = 1;  // Force strict FIFO visibility (no SSTF room).
  device::DiskModel disk(&sim_, params_, 1);
  NoopScheduler noop(&sim_, &disk, nullptr);
  std::vector<std::unique_ptr<IoRequest>> reqs;
  for (int i = 0; i < 5; ++i) {
    reqs.push_back(MakeIo(static_cast<uint64_t>(i), (400 - i * 90) * (1LL << 30)));
    noop.Submit(reqs.back().get());
  }
  sim_.Run();
  ASSERT_EQ(completions_.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(completions_[i].id, i);  // FIFO despite varying offsets.
    EXPECT_TRUE(completions_[i].status.ok());
  }
}

TEST_F(SchedFixture, NoopBacklogsWhenDeviceFull) {
  params_.queue_depth = 2;
  device::DiskModel disk(&sim_, params_, 2);
  NoopScheduler noop(&sim_, &disk, nullptr);
  std::vector<std::unique_ptr<IoRequest>> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(MakeIo(static_cast<uint64_t>(i), i * (10LL << 30)));
    noop.Submit(reqs.back().get());
  }
  EXPECT_EQ(noop.PendingCount(), 8u);
  sim_.Run();
  EXPECT_EQ(completions_.size(), 10u);
  EXPECT_EQ(noop.PendingCount(), 0u);
}

TEST_F(SchedFixture, CfqRealTimeClassBeatsBestEffort) {
  device::DiskModel disk(&sim_, params_, 3);
  CfqScheduler cfq(&sim_, &disk, nullptr);
  std::vector<std::unique_ptr<IoRequest>> reqs;
  // Saturate with one best-effort process...
  for (int i = 0; i < 20; ++i) {
    reqs.push_back(MakeIo(static_cast<uint64_t>(i), i * (20LL << 30), /*pid=*/1));
    cfq.Submit(reqs.back().get());
  }
  // ...then a realtime IO arrives; it must not complete last.
  reqs.push_back(MakeIo(100, 500LL << 30, /*pid=*/2, IoClass::kRealTime, 0));
  cfq.Submit(reqs.back().get());
  sim_.Run();
  ASSERT_EQ(completions_.size(), 21u);
  size_t rt_pos = 0;
  for (size_t i = 0; i < completions_.size(); ++i) {
    if (completions_[i].id == 100) {
      rt_pos = i;
    }
  }
  // It can't preempt IOs already absorbed by the device queue (depth 32 holds
  // all 20 here? no: depth 32 > 20, so all BE IOs are already in the device);
  // with a smaller backlog in the scheduler the RT IO jumps it. Just assert it
  // finished (sanity) and rely on the next test for ordering.
  EXPECT_LT(rt_pos, completions_.size());
}

TEST_F(SchedFixture, CfqRealTimeJumpsSchedulerBacklog) {
  // Depth-1 device queue: the backlog lives in CFQ and the device cannot
  // SSTF-reorder around the realtime IO once dispatched.
  params_.queue_depth = 1;
  device::DiskModel disk(&sim_, params_, 4);
  CfqScheduler cfq(&sim_, &disk, nullptr);
  std::vector<std::unique_ptr<IoRequest>> reqs;
  for (int i = 0; i < 30; ++i) {
    reqs.push_back(MakeIo(static_cast<uint64_t>(i), i * (20LL << 30), /*pid=*/1));
    cfq.Submit(reqs.back().get());
  }
  reqs.push_back(MakeIo(100, 500LL << 30, /*pid=*/2, IoClass::kRealTime, 0));
  cfq.Submit(reqs.back().get());
  sim_.Run();
  ASSERT_EQ(completions_.size(), 31u);
  size_t rt_pos = completions_.size();
  for (size_t i = 0; i < completions_.size(); ++i) {
    if (completions_[i].id == 100) {
      rt_pos = i;
    }
  }
  // The RT IO overtakes the whole CFQ backlog: only the IO already in
  // service (and at most one more dispatch race) can precede it.
  EXPECT_LT(rt_pos, 3u);
}

TEST_F(SchedFixture, CfqSharesBetweenEqualProcesses) {
  params_.queue_depth = 2;
  device::DiskModel disk(&sim_, params_, 5);
  CfqParams cfq_params;
  cfq_params.base_slice = Millis(20);
  CfqScheduler cfq(&sim_, &disk, nullptr, cfq_params);
  std::vector<std::unique_ptr<IoRequest>> reqs;
  // Two processes, same class/priority, 20 IOs each.
  for (int i = 0; i < 20; ++i) {
    for (int pid = 1; pid <= 2; ++pid) {
      reqs.push_back(
          MakeIo(static_cast<uint64_t>(pid * 1000 + i), i * (5LL << 30), pid));
      cfq.Submit(reqs.back().get());
    }
  }
  sim_.Run();
  ASSERT_EQ(completions_.size(), 40u);
  // Round-robin slices: by the halfway point both processes progressed.
  int pid1_done = 0;
  int pid2_done = 0;
  for (size_t i = 0; i < 20; ++i) {
    if (completions_[i].id / 1000 == 1) {
      ++pid1_done;
    } else {
      ++pid2_done;
    }
  }
  EXPECT_GT(pid1_done, 2);
  EXPECT_GT(pid2_done, 2);
}

TEST_F(SchedFixture, CfqIdleClassStarvesBehindBestEffort) {
  params_.queue_depth = 1;
  device::DiskModel disk(&sim_, params_, 6);
  CfqScheduler cfq(&sim_, &disk, nullptr);
  std::vector<std::unique_ptr<IoRequest>> reqs;
  reqs.push_back(MakeIo(500, 100LL << 30, /*pid=*/9, IoClass::kIdle, 7));
  cfq.Submit(reqs.back().get());
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(MakeIo(static_cast<uint64_t>(i), i * (20LL << 30), /*pid=*/1));
    cfq.Submit(reqs.back().get());
  }
  sim_.Run();
  ASSERT_EQ(completions_.size(), 11u);
  // The idle-class IO was submitted first but finishes near the end. (The
  // very first IO may already have been dispatched to the idle device before
  // the best-effort burst arrived; allow that.)
  size_t idle_pos = 0;
  for (size_t i = 0; i < completions_.size(); ++i) {
    if (completions_[i].id == 500) {
      idle_pos = i;
    }
  }
  EXPECT_TRUE(idle_pos == 0 || idle_pos >= 9) << idle_pos;
}

TEST_F(SchedFixture, CfqPendingCountTracksQueues) {
  params_.queue_depth = 1;
  device::DiskModel disk(&sim_, params_, 7);
  CfqScheduler cfq(&sim_, &disk, nullptr);
  std::vector<std::unique_ptr<IoRequest>> reqs;
  for (int i = 0; i < 6; ++i) {
    reqs.push_back(MakeIo(static_cast<uint64_t>(i), i * (30LL << 30)));
    cfq.Submit(reqs.back().get());
  }
  EXPECT_EQ(cfq.PendingCount(), 5u);  // One absorbed by the device.
  EXPECT_EQ(cfq.ProcPendingCount(1), 5u);
  sim_.Run();
  EXPECT_EQ(cfq.PendingCount(), 0u);
}

}  // namespace
}  // namespace mitt::sched
