// src/tenant/: directory/mix determinism, placement map, the SLO-aware
// placement controller's probe -> decide loop, the open-loop tenant driver,
// per-class harvest through the harness, the recorded-trace round trip, and
// scorecard byte-identity across the worker grid (DESIGN.md §4i).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/sim/simulator.h"
#include "src/tenant/controller.h"
#include "src/tenant/placement.h"
#include "src/tenant/tenant.h"
#include "src/tenant/workload.h"
#include "src/trace/cursor.h"

namespace mitt {
namespace {

using tenant::MixOptions;
using tenant::PlacementController;
using tenant::PlacementControllerOptions;
using tenant::PlacementMap;
using tenant::ReplicaGroup;
using tenant::TenantDirectory;
using tenant::TenantId;

// --- Directory / mix ---

TEST(TenantDirectoryTest, BuildMixIsDeterministicAndCoversClasses) {
  MixOptions mix;
  mix.num_tenants = 500;
  mix.total_rate_hz = 10000;
  mix.seed = 7;
  const TenantDirectory a = TenantDirectory::BuildMix(mix);
  const TenantDirectory b = TenantDirectory::BuildMix(mix);
  ASSERT_EQ(a.num_tenants(), 500u);
  ASSERT_EQ(a.num_classes(), 3u);  // gold/silver/bronze defaults.
  std::vector<uint32_t> per_class(a.num_classes(), 0);
  for (TenantId t = 0; t < a.num_tenants(); ++t) {
    EXPECT_EQ(a.class_of(t), b.class_of(t));
    EXPECT_DOUBLE_EQ(a.spec(t).rate_hz, b.spec(t).rate_hz);
    EXPECT_EQ(a.spec(t).key_base, b.spec(t).key_base);
    ++per_class[a.class_of(t)];
  }
  for (uint32_t c = 0; c < a.num_classes(); ++c) {
    EXPECT_GT(per_class[c], 0u) << a.cls(c).name;
  }
  // The Zipf mix sums to (approximately) the requested aggregate rate.
  EXPECT_NEAR(a.total_rate_hz(), 10000.0, 10000.0 * 0.02);
}

TEST(TenantDirectoryTest, SloLookupMatchesClass) {
  MixOptions mix;
  mix.num_tenants = 64;
  const TenantDirectory dir = TenantDirectory::BuildMix(mix);
  for (TenantId t = 0; t < dir.num_tenants(); ++t) {
    EXPECT_EQ(dir.slo_of(t), dir.cls(dir.class_of(t)).slo);
    EXPECT_EQ(dir.priority_of(t), dir.cls(dir.class_of(t)).priority);
  }
}

// --- Placement map ---

TEST(PlacementMapTest, UniformPlacementIsValidAndDeterministic) {
  const PlacementMap a = PlacementMap::Uniform(200, 6, 3, 99);
  const PlacementMap b = PlacementMap::Uniform(200, 6, 3, 99);
  ASSERT_EQ(a.num_tenants(), 200u);
  ASSERT_EQ(a.replication(), 3);
  for (TenantId t = 0; t < 200; ++t) {
    const ReplicaGroup g = a.group(t);
    ASSERT_EQ(g.size, 3);
    EXPECT_EQ(g.node[0], a.primary(t));
    for (int r = 0; r < g.size; ++r) {
      EXPECT_GE(g.node[r], 0);
      EXPECT_LT(g.node[r], 6);
      EXPECT_EQ(g.node[r], b.group(t).node[r]);
      for (int k = 0; k < r; ++k) {
        EXPECT_NE(g.node[r], g.node[k]) << "duplicate replica for tenant " << t;
      }
    }
  }
  EXPECT_EQ(a.version(), 0u);
}

TEST(PlacementMapTest, AssignBumpsVersion) {
  PlacementMap map = PlacementMap::Uniform(10, 4, 2, 1);
  ReplicaGroup g;
  g.size = 2;
  g.node[0] = 3;
  g.node[1] = 1;
  map.Assign(5, g);
  EXPECT_EQ(map.primary(5), 3);
  EXPECT_EQ(map.group(5).node[1], 1);
  EXPECT_EQ(map.version(), 1u);
}

// --- Controller units ---

// Synthetic probe world: per-node cumulative counters the test scripts
// between ticks. Node pressure = d(wait_sum)/d(dispatches).
struct FakeNodes {
  struct Node {
    uint64_t wait_sum_ns = 0;
    uint64_t dispatches = 0;
    uint64_t gets = 0;
    uint64_t ebusy = 0;
    std::vector<uint64_t> tenant_gets;
  };
  std::vector<Node> nodes;

  explicit FakeNodes(int n, uint32_t tenants) : nodes(static_cast<size_t>(n)) {
    for (auto& node : nodes) {
      node.tenant_gets.assign(tenants, 0);
    }
  }

  PlacementController::ProbeFn probe() {
    return [this](int i) {
      const Node& n = nodes[static_cast<size_t>(i)];
      tenant::NodeProbe p;
      p.wait_sum_ns = n.wait_sum_ns;
      p.dispatches = n.dispatches;
      p.gets = n.gets;
      p.ebusy = n.ebusy;
      p.tenant_gets = n.tenant_gets.data();
      p.tenant_count = static_cast<uint32_t>(n.tenant_gets.size());
      return p;
    };
  }

  // Adds one window of traffic: `gets` dispatches at `mean_wait` each,
  // spread over the tenants whose primary is this node.
  void Window(int i, const PlacementMap& map, uint64_t gets, DurationNs mean_wait) {
    Node& n = nodes[static_cast<size_t>(i)];
    n.dispatches += gets;
    n.gets += gets;
    n.wait_sum_ns += gets * static_cast<uint64_t>(mean_wait);
    uint64_t left = gets;
    for (TenantId t = 0; t < n.tenant_gets.size() && left > 0; ++t) {
      if (map.primary(t) == i) {
        n.tenant_gets[t] += 1;
        --left;
      }
    }
    // Dump any remainder on the first owned tenant (keeps sums consistent).
    for (TenantId t = 0; t < n.tenant_gets.size() && left > 0; ++t) {
      if (map.primary(t) == i) {
        n.tenant_gets[t] += left;
        left = 0;
      }
    }
  }
};

struct ControllerWorld {
  sim::Simulator sim;
  TenantDirectory directory;
  PlacementMap map;
  FakeNodes nodes;
  PlacementControllerOptions options;

  ControllerWorld(uint32_t tenants, int num_nodes)
      : directory(TenantDirectory::BuildMix([tenants] {
          MixOptions m;
          m.num_tenants = tenants;
          m.total_rate_hz = 1000;
          return m;
        }())),
        map(PlacementMap::Uniform(tenants, num_nodes, 2, 11)),
        nodes(num_nodes, tenants) {
    options.min_window_dispatches = 4;
    options.pressure_floor = Micros(500);
  }
};

TEST(PlacementControllerTest, QuietClusterNeverMigrates) {
  ControllerWorld w(60, 4);
  PlacementController c(&w.sim, nullptr, &w.directory, &w.map, 4, w.nodes.probe(), w.options);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      w.nodes.Window(i, w.map, 50, Micros(100));  // Under the pressure floor.
    }
    c.TickOnce();
  }
  EXPECT_EQ(c.ticks(), 3u);
  EXPECT_EQ(c.hot_ticks(), 0u);
  EXPECT_EQ(c.migrations(), 0u);
  EXPECT_EQ(w.map.version(), 0u);
}

TEST(PlacementControllerTest, HotNodeDrainsStrictestClassFirst) {
  ControllerWorld w(60, 4);
  PlacementController c(&w.sim, nullptr, &w.directory, &w.map, 4, w.nodes.probe(), w.options);

  // Tick 1 establishes the cumulative baseline; tick 2 sees node 0 imposing
  // 20 ms mean waits while the rest sit at 200 us.
  for (int i = 0; i < 4; ++i) {
    w.nodes.Window(i, w.map, 50, Micros(200));
  }
  c.TickOnce();
  for (int i = 0; i < 4; ++i) {
    w.nodes.Window(i, w.map, 50, i == 0 ? Millis(20) : Micros(200));
  }
  std::vector<TenantId> was_on_hot;
  for (TenantId t = 0; t < w.directory.num_tenants(); ++t) {
    if (w.map.primary(t) == 0) {
      was_on_hot.push_back(t);
    }
  }
  ASSERT_FALSE(was_on_hot.empty());
  c.TickOnce();

  EXPECT_EQ(c.hot_ticks(), 1u);
  EXPECT_GT(c.migrations(), 0u);
  EXPECT_GT(c.pressure(0), c.pressure(1));
  // Every migrated tenant left node 0, landed on healthy distinct replicas.
  uint64_t moved = 0;
  for (TenantId t : was_on_hot) {
    if (w.map.primary(t) != 0) {
      ++moved;
      const ReplicaGroup g = w.map.group(t);
      for (int r = 0; r < g.size; ++r) {
        EXPECT_NE(g.node[r], 0);
        for (int k = 0; k < r; ++k) {
          EXPECT_NE(g.node[r], g.node[k]);
        }
      }
    }
  }
  EXPECT_EQ(moved, c.migrations());
  EXPECT_EQ(w.map.version(), c.migrations());
  // Strictest-first: no class-1 tenant moved while a class-0 tenant stayed
  // behind (priority 0 drains before priority 1, etc.).
  int8_t max_moved_priority = -1;
  int8_t min_stayed_priority = 127;
  for (TenantId t : was_on_hot) {
    const int8_t pr = w.directory.priority_of(t);
    if (w.map.primary(t) != 0) {
      max_moved_priority = std::max(max_moved_priority, pr);
    } else {
      min_stayed_priority = std::min(min_stayed_priority, pr);
    }
  }
  if (max_moved_priority >= 0 && min_stayed_priority < 127) {
    EXPECT_LE(max_moved_priority, min_stayed_priority);
  }
}

TEST(PlacementControllerTest, CooldownPinsMigratedTenants) {
  ControllerWorld w(60, 4);
  w.options.tenant_cooldown_ticks = 100;  // Pin effectively forever.
  PlacementController c(&w.sim, nullptr, &w.directory, &w.map, 4, w.nodes.probe(), w.options);
  for (int i = 0; i < 4; ++i) {
    w.nodes.Window(i, w.map, 50, Micros(200));
  }
  c.TickOnce();
  for (int i = 0; i < 4; ++i) {
    w.nodes.Window(i, w.map, 50, i == 0 ? Millis(20) : Micros(200));
  }
  c.TickOnce();
  const uint64_t first_wave = c.migrations();
  ASSERT_GT(first_wave, 0u);

  // Node 1 (where some tenants landed) now goes hot; the cooled-down
  // migrants must not bounce again.
  std::vector<TenantId> migrants;
  for (TenantId t = 0; t < w.directory.num_tenants(); ++t) {
    if (w.map.primary(t) == 1 && w.map.version() > 0) {
      migrants.push_back(t);
    }
  }
  for (int i = 0; i < 4; ++i) {
    w.nodes.Window(i, w.map, 50, i == 1 ? Millis(20) : Micros(200));
  }
  c.TickOnce();
  (void)migrants;
  // Any tenant that moved in tick 2 and again in tick 3 violates cooldown;
  // version would exceed migrations if Assign were called twice per tenant,
  // so check the counters stay in lockstep instead.
  EXPECT_EQ(w.map.version(), c.migrations());
}

// Weight-aware drain: with equal priorities, the drain order and the load a
// hot node sheds are measured in SloClass::weight-scaled units, so a gold
// whale (weight 8, 3 gets) outranks a bronze mouse (weight 1, 5 gets). The
// raw-gets mode (weight_aware=false) picks the mouse — the pre-weight
// behavior, kept as the control arm of this scripted scenario.
TEST(PlacementControllerTest, WeightAwareDrainMovesWeightedWhaleFirst) {
  for (const bool weight_aware : {true, false}) {
    sim::Simulator sim;
    TenantDirectory dir;
    dir.AddClass({"gold", Millis(10), /*weight=*/8.0, /*priority=*/0});
    dir.AddClass({"bronze", Millis(50), /*weight=*/1.0, /*priority=*/0});
    dir.AddTenant({/*cls=*/0, 100.0, 0, 64});  // Tenant 0: the gold whale.
    for (int i = 0; i < 5; ++i) {
      dir.AddTenant({/*cls=*/1, 100.0, 64, 64});  // Tenants 1..5: bronze mice.
    }
    PlacementMap map = PlacementMap::Uniform(dir.num_tenants(), 4, 2, 1);
    for (TenantId t = 0; t < dir.num_tenants(); ++t) {
      ReplicaGroup g;
      g.size = 2;
      g.node[0] = 0;
      g.node[1] = 1;
      map.Assign(t, g);  // Everyone homed on node 0.
    }
    FakeNodes nodes(4, dir.num_tenants());
    PlacementControllerOptions options;
    options.min_window_dispatches = 4;
    options.pressure_floor = Micros(500);
    options.max_migrations_per_tick = 1;
    options.weight_aware = weight_aware;
    PlacementController c(&sim, nullptr, &dir, &map, 4, nodes.probe(), options);

    c.TickOnce();  // Baseline probe (all counters zero).
    // One hot window on node 0: gold tenant 0 serves 3 gets, bronze tenant 1
    // serves 5, at 3 ms mean wait; healthy nodes serve 8 gets at 200 us.
    for (int i = 0; i < 4; ++i) {
      FakeNodes::Node& n = nodes.nodes[static_cast<size_t>(i)];
      n.dispatches += 8;
      n.gets += 8;
      n.wait_sum_ns += 8 * static_cast<uint64_t>(i == 0 ? Millis(3) : Micros(200));
    }
    nodes.nodes[0].tenant_gets[0] += 3;
    nodes.nodes[0].tenant_gets[1] += 5;
    c.TickOnce();

    ASSERT_EQ(c.migrations(), 1u) << "weight_aware=" << weight_aware;
    if (weight_aware) {
      // Weighted rates: gold 8*3=24 beats bronze 1*5=5 — the whale moves.
      EXPECT_NE(map.primary(0), 0) << "gold whale should drain first";
      EXPECT_EQ(map.primary(1), 0);
    } else {
      // Raw rates: bronze 5 beats gold 3 — the mouse moves.
      EXPECT_EQ(map.primary(0), 0);
      EXPECT_NE(map.primary(1), 0) << "raw-get mouse should drain first";
    }
  }
}

TEST(PlacementControllerTest, MigrationBudgetCapsEachTick) {
  ControllerWorld w(120, 4);
  w.options.max_migrations_per_tick = 3;
  PlacementController c(&w.sim, nullptr, &w.directory, &w.map, 4, w.nodes.probe(), w.options);
  for (int i = 0; i < 4; ++i) {
    w.nodes.Window(i, w.map, 60, Micros(200));
  }
  c.TickOnce();
  for (int i = 0; i < 4; ++i) {
    w.nodes.Window(i, w.map, 60, i == 0 ? Millis(50) : Micros(200));
  }
  c.TickOnce();
  EXPECT_LE(c.migrations(), 3u);
}

// --- Tenant load driver ---

TEST(TenantLoadDriverTest, ShardPartitionsCoverAllTenantsExactlyOnce) {
  MixOptions mix;
  mix.num_tenants = 40;
  mix.total_rate_hz = 40000;
  const TenantDirectory dir = TenantDirectory::BuildMix(mix);

  // Two-shard run: each arrival's tenant must belong to its driver's
  // partition, and both partitions together fire comparable volume.
  uint64_t count[2] = {0, 0};
  sim::Simulator sims[2];
  std::vector<std::unique_ptr<tenant::TenantLoadDriver>> drivers;
  for (int s = 0; s < 2; ++s) {
    tenant::TenantLoadDriver::Options dopt;
    dopt.warmup = Millis(10);
    dopt.duration = Millis(200);
    dopt.shard = s;
    dopt.num_shards = 2;
    dopt.seed = 5;
    drivers.push_back(std::make_unique<tenant::TenantLoadDriver>(
        &sims[s], &dir, dopt, [&count, &dir, s](TenantId t, uint64_t key, bool) {
          EXPECT_EQ(t % 2, static_cast<TenantId>(s));
          const tenant::TenantSpec& spec = dir.spec(t);
          EXPECT_GE(key, spec.key_base);
          EXPECT_LT(key, spec.key_base + spec.key_span);
          ++count[s];
        }));
    drivers.back()->Start();
    sims[s].RunUntilPredicate([&] { return drivers.back()->done(); });
  }
  EXPECT_GT(count[0], 100u);
  EXPECT_GT(count[1], 100u);
  EXPECT_EQ(count[0] + count[1], drivers[0]->dispatched() + drivers[1]->dispatched());
}

// --- Harness integration: per-class harvest ---

harness::ExperimentOptions SmallTenantWorld(bool slo_aware, uint64_t seed) {
  harness::ExperimentOptions opt;
  opt.num_nodes = 4;
  opt.num_clients = 0;
  opt.backend = os::BackendKind::kSsd;
  opt.num_keys_per_node = 1 << 12;
  opt.warm_fraction = 1.0;
  opt.noise = harness::NoiseKind::kNone;
  opt.deadline = Millis(20);
  opt.seed = seed;
  opt.tenants.enabled = true;
  opt.tenants.mix.num_tenants = 120;
  opt.tenants.mix.total_rate_hz = 4000;
  opt.tenants.slo_aware = slo_aware;
  opt.tenants.warmup = Millis(50);
  opt.tenants.duration = Millis(400);
  return opt;
}

TEST(TenantHarnessTest, PerClassHarvestAccountsEveryCompletion) {
  harness::Experiment experiment(SmallTenantWorld(/*slo_aware=*/false, 42));
  const harness::RunResult r = experiment.Run(harness::StrategyKind::kMittos);
  ASSERT_EQ(r.tenant_classes.size(), 3u);
  uint64_t class_requests = 0;
  uint32_t class_tenants = 0;
  for (const harness::TenantClassStats& cls : r.tenant_classes) {
    EXPECT_FALSE(cls.name.empty());
    EXPECT_GT(cls.slo, 0);
    EXPECT_EQ(cls.requests, cls.latencies.count());
    EXPECT_LE(cls.deadline_miss, cls.requests);
    class_requests += cls.requests;
    class_tenants += cls.tenants;
  }
  EXPECT_EQ(class_requests, r.tenant_requests);
  EXPECT_EQ(class_tenants, 120u);
  EXPECT_GT(r.tenant_requests, 500u);
  // Controller off: no ticks, no migrations.
  EXPECT_EQ(r.controller_ticks, 0u);
  EXPECT_EQ(r.tenant_migrations, 0u);
}

TEST(TenantHarnessTest, ControllerRunsWhenSloAware) {
  harness::Experiment experiment(SmallTenantWorld(/*slo_aware=*/true, 42));
  const harness::RunResult r = experiment.Run(harness::StrategyKind::kMittos);
  EXPECT_GT(r.controller_ticks, 0u);  // ~2 ticks in 450 ms at the 200 ms period.
}

// --- Recorded-trace round trip with tenant overlay ---

TEST(TenantHarnessTest, RecordReplayRoundTripOverlaysTenants) {
  const std::string path = "tenant_test_record.mitttrace";
  harness::ExperimentOptions opt = SmallTenantWorld(false, 7);
  opt.record_trace_path = path;
  harness::Experiment experiment(opt);
  const harness::RunResult live = experiment.Run(harness::StrategyKind::kMittos);
  ASSERT_GT(live.recorded_events, 0u);

  // The recorded file is a valid v1 trace with one record per arrival,
  // non-decreasing µs arrivals, streams = tenant ids.
  std::string error;
  auto cursor = trace::FileTraceCursor::Open(path, &error);
  ASSERT_NE(cursor, nullptr) << error;
  EXPECT_EQ(cursor->header().record_count, live.recorded_events);
  trace::TraceEvent event;
  uint64_t records = 0;
  TimeNs prev = 0;
  uint32_t max_stream = 0;
  while (cursor->Next(&event)) {
    EXPECT_GE(event.at, prev);
    prev = event.at;
    max_stream = std::max(max_stream, event.stream);
    ++records;
  }
  EXPECT_EQ(records, live.recorded_events);
  EXPECT_LT(max_stream, 120u);  // Streams are tenant ids.

  // Replaying the file with the tenant overlay drives the same per-class
  // harvest: every stream maps back onto a tenant and its class SLO.
  harness::ExperimentOptions ropt = SmallTenantWorld(false, 7);
  ropt.replay.trace_path = path;
  harness::Experiment replay(ropt);
  const harness::RunResult back = replay.Run(harness::StrategyKind::kMittos);
  EXPECT_EQ(back.replay_events, live.recorded_events);
  ASSERT_EQ(back.tenant_classes.size(), 3u);
  uint64_t replay_class_requests = 0;
  for (const harness::TenantClassStats& cls : back.tenant_classes) {
    replay_class_requests += cls.requests;
  }
  EXPECT_GT(replay_class_requests, 0u);
  std::remove(path.c_str());
}

// --- Worker-grid byte identity ---

std::string TenantScorecard(const std::vector<harness::RunResult>& results) {
  std::string s;
  for (const harness::RunResult& r : results) {
    s += r.name + ":" + std::to_string(r.tenant_requests) + ":" +
         std::to_string(r.tenant_migrations) + ":" + std::to_string(r.controller_ticks) + ":" +
         std::to_string(r.ebusy_failovers);
    for (const harness::TenantClassStats& cls : r.tenant_classes) {
      s += "|" + cls.name + "," + std::to_string(cls.requests) + "," +
           std::to_string(cls.deadline_miss) + "," + std::to_string(cls.failovers) + "," +
           std::to_string(cls.latencies.Percentile(50)) + "," +
           std::to_string(cls.latencies.Percentile(99)) + "," +
           std::to_string(cls.latencies.Max());
    }
    s += "\n";
  }
  return s;
}

TEST(TenantDeterminismTest, ScorecardIsByteIdenticalAcrossWorkerGrid) {
  auto scorecard_at = [](int trial_workers, int intra_workers) {
    std::vector<harness::Trial> trials;
    for (const bool slo_aware : {false, true}) {
      harness::Trial t;
      t.options = SmallTenantWorld(slo_aware, 20170919);
      t.options.num_shards = 2;  // Controller ticks ride ScheduleGlobal.
      t.options.intra_workers = intra_workers;
      t.kind = harness::StrategyKind::kMittos;
      t.rename = slo_aware ? "slo-aware" : "uniform";
      trials.push_back(t);
    }
    return TenantScorecard(harness::RunTrialsParallel(trials, trial_workers));
  };

  const std::string reference = scorecard_at(1, 1);
  ASSERT_FALSE(reference.empty());
  for (const int trial_workers : {1, 4}) {
    for (const int intra_workers : {1, 2}) {
      if (trial_workers == 1 && intra_workers == 1) {
        continue;
      }
      EXPECT_EQ(scorecard_at(trial_workers, intra_workers), reference)
          << "trial=" << trial_workers << " intra=" << intra_workers;
    }
  }
}

}  // namespace
}  // namespace mitt
