#include <gtest/gtest.h>

#include <memory>

#include "src/client/adaptive.h"
#include "src/client/clone.h"
#include "src/client/hedged.h"
#include "src/client/mittos_client.h"
#include "src/client/timeout.h"
#include "src/noise/noise_injector.h"
#include "src/sim/simulator.h"

namespace mitt::client {
namespace {

// A 3-node cluster where node `noisy` is under heavy continuous contention.
class ClientFixture : public ::testing::Test {
 protected:
  void Build(bool mitt_enabled, int noisy_node = -1) {
    cluster::Cluster::Options opt;
    opt.num_nodes = 3;
    opt.node.num_keys = 1 << 18;
    opt.node.os.backend = os::BackendKind::kDiskCfq;
    opt.node.os.mitt_enabled = mitt_enabled;
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, opt);
    if (noisy_node >= 0) {
      kv::DocStoreNode& n = cluster_->node(noisy_node);
      const int64_t size = 100LL << 30;
      const uint64_t file = n.os().CreateFile(size);
      noise::IoNoiseInjector::Options nopt;
      nopt.streams_per_intensity = 2;
      injector_ = std::make_unique<noise::IoNoiseInjector>(
          &sim_, &n.os(), file, size,
          std::vector<noise::NoiseEpisode>{{0, Seconds(30), 3}}, nopt, 99);
      injector_->Start();
    }
  }

  // A key whose primary replica is `node`.
  uint64_t KeyWithPrimary(int node) {
    for (uint64_t key = 0;; ++key) {
      if (cluster_->ReplicasOf(key)[0] == node) {
        return key;
      }
    }
  }

  DurationNs RunOneGet(GetStrategy& strategy, uint64_t key, GetResult* out = nullptr) {
    const TimeNs start = sim_.Now();
    TimeNs done = -1;
    GetResult result;
    strategy.Get(key, [&](const GetResult& r) {
      result = r;
      done = sim_.Now();
    });
    sim_.RunUntilPredicate([&] { return done >= 0; });
    if (out != nullptr) {
      *out = result;
    }
    return done - start;
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<noise::IoNoiseInjector> injector_;
};

TEST_F(ClientFixture, BaseWaitsOutTheNoise) {
  Build(/*mitt_enabled=*/false, /*noisy_node=*/0);
  TimeoutStrategy base(&sim_, cluster_.get(), 1, TimeoutStrategy::Options{});
  sim_.RunUntil(Millis(100));  // Let the noise build a queue.
  GetResult result;
  const DurationNs latency = RunOneGet(base, KeyWithPrimary(0), &result);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.tries, 1);
  EXPECT_GT(latency, Millis(20));  // Stuck behind the noisy queue.
}

TEST_F(ClientFixture, AppTimeoutFailsOverAfterWaiting) {
  Build(false, 0);
  TimeoutStrategy::Options opt;
  opt.name = "AppTO";
  opt.timeout = Millis(15);
  TimeoutStrategy appto(&sim_, cluster_.get(), 1, opt);
  sim_.RunUntil(Millis(100));
  GetResult result;
  const DurationNs latency = RunOneGet(appto, KeyWithPrimary(0), &result);
  EXPECT_TRUE(result.status.ok());
  EXPECT_GE(result.tries, 2);                 // Failed over off the noisy node.
  EXPECT_GT(latency, Millis(15));             // ...but only after the timeout.
  EXPECT_LT(latency, Millis(45));             // Then a clean replica answered.
  EXPECT_GT(appto.timeouts_fired(), 0u);
}

TEST_F(ClientFixture, AppTimeoutWithoutFailoverSurfacesError) {
  Build(false, 0);
  TimeoutStrategy::Options opt;
  opt.timeout = Millis(15);
  opt.failover_on_timeout = false;  // Table 1's surprising behaviour.
  TimeoutStrategy appto(&sim_, cluster_.get(), 1, opt);
  sim_.RunUntil(Millis(100));
  GetResult result;
  RunOneGet(appto, KeyWithPrimary(0), &result);
  EXPECT_EQ(result.status.code(), StatusCode::kTimeout);
}

TEST_F(ClientFixture, CloneTakesFasterReplica) {
  Build(false, 0);
  CloneStrategy clone(&sim_, cluster_.get(), 1);
  sim_.RunUntil(Millis(100));
  // Average over several keys: with 2-of-3 replicas contacted, most requests
  // have at least one clean replica and finish in mechanical time.
  DurationNs total = 0;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    total += RunOneGet(clone, KeyWithPrimary(0) + static_cast<uint64_t>(i) * 7);
  }
  EXPECT_LT(total / n, Millis(25));
}

TEST_F(ClientFixture, HedgedCutsTailAfterDelay) {
  Build(false, 0);
  HedgedStrategy::Options opt;
  opt.hedge_delay = Millis(15);
  HedgedStrategy hedged(&sim_, cluster_.get(), 1, opt);
  sim_.RunUntil(Millis(100));
  GetResult result;
  const DurationNs latency = RunOneGet(hedged, KeyWithPrimary(0), &result);
  EXPECT_TRUE(result.status.ok());
  EXPECT_GT(latency, Millis(15));  // Waited for the hedge to fire...
  EXPECT_LT(latency, Millis(45));  // ...then the clean replica answered.
  EXPECT_GT(hedged.hedges_sent(), 0u);
}

TEST_F(ClientFixture, MittosFailsOverInstantly) {
  Build(/*mitt_enabled=*/true, /*noisy_node=*/0);
  MittosStrategy::Options opt;
  opt.deadline = Millis(15);
  MittosStrategy mittos(&sim_, cluster_.get(), 1, opt);
  sim_.RunUntil(Millis(100));
  GetResult result;
  const DurationNs latency = RunOneGet(mittos, KeyWithPrimary(0), &result);
  EXPECT_TRUE(result.status.ok());
  EXPECT_GE(result.tries, 2);
  // No wait: EBUSY + one extra hop, then a normal read on a clean node.
  EXPECT_LT(latency, Millis(15));
  EXPECT_GT(mittos.ebusy_failovers(), 0u);
}

TEST_F(ClientFixture, MittosLastTryDisablesDeadline) {
  // All three replicas busy: the third try must not return EBUSY.
  cluster::Cluster::Options opt;
  opt.num_nodes = 3;
  opt.node.num_keys = 1 << 18;
  opt.node.os.backend = os::BackendKind::kDiskCfq;
  opt.node.os.mitt_enabled = true;
  cluster_ = std::make_unique<cluster::Cluster>(&sim_, opt);
  std::vector<std::unique_ptr<noise::IoNoiseInjector>> injectors;
  for (int node = 0; node < 3; ++node) {
    kv::DocStoreNode& n = cluster_->node(node);
    const int64_t size = 100LL << 30;
    const uint64_t file = n.os().CreateFile(size);
    noise::IoNoiseInjector::Options nopt;
    injectors.push_back(std::make_unique<noise::IoNoiseInjector>(
        &sim_, &n.os(), file, size,
        std::vector<noise::NoiseEpisode>{{0, Seconds(30), 3}}, nopt,
        static_cast<uint64_t>(node) + 7));
    injectors.back()->Start();
  }
  MittosStrategy::Options mopt;
  mopt.deadline = Millis(10);
  MittosStrategy mittos(&sim_, cluster_.get(), 1, mopt);
  sim_.RunUntil(Millis(100));
  GetResult result;
  RunOneGet(mittos, 5, &result);
  EXPECT_TRUE(result.status.ok());  // Waited on the 3rd replica, no error.
  EXPECT_EQ(result.tries, 3);
}

TEST_F(ClientFixture, SnitchLearnsPersistentSlowNode) {
  Build(false, 0);
  SnitchStrategy::Options opt;
  opt.update_interval = Millis(50);
  SnitchStrategy snitch(&sim_, cluster_.get(), 1, opt);
  sim_.RunUntil(Millis(100));
  const uint64_t key = KeyWithPrimary(0);
  // Feed the snitch some observations of the noisy node.
  for (int i = 0; i < 8; ++i) {
    RunOneGet(snitch, key + static_cast<uint64_t>(i) * 3);
  }
  // After learning, latencies should be low (routes around node 0, which
  // stays noisy the whole time).
  DurationNs total = 0;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    total += RunOneGet(snitch, key + static_cast<uint64_t>(100 + i) * 3);
  }
  EXPECT_LT(total / n, Millis(20));
}

TEST_F(ClientFixture, C3AvoidsSlowReplicaEventually) {
  Build(false, 0);
  C3Strategy c3(&sim_, cluster_.get(), 1, C3Strategy::Options{});
  sim_.RunUntil(Millis(100));
  const uint64_t key = KeyWithPrimary(0);
  for (int i = 0; i < 8; ++i) {
    RunOneGet(c3, key + static_cast<uint64_t>(i) * 3);
  }
  DurationNs total = 0;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    total += RunOneGet(c3, key + static_cast<uint64_t>(100 + i) * 3);
  }
  EXPECT_LT(total / n, Millis(20));
}

TEST_F(ClientFixture, MittosWaitHintPicksLeastBusyWhenAllReject) {
  // All three replicas busy, but with different intensities: the informed
  // last try must go to the least-busy one.
  cluster::Cluster::Options opt;
  opt.num_nodes = 3;
  opt.node.num_keys = 1 << 18;
  opt.node.os.backend = os::BackendKind::kDiskCfq;
  opt.node.os.mitt_enabled = true;
  cluster_ = std::make_unique<cluster::Cluster>(&sim_, opt);
  std::vector<std::unique_ptr<noise::IoNoiseInjector>> injectors;
  for (int node = 0; node < 3; ++node) {
    kv::DocStoreNode& n = cluster_->node(node);
    const int64_t size = 100LL << 30;
    const uint64_t file = n.os().CreateFile(size);
    noise::IoNoiseInjector::Options nopt;
    injectors.push_back(std::make_unique<noise::IoNoiseInjector>(
        &sim_, &n.os(), file, size,
        std::vector<noise::NoiseEpisode>{{0, Seconds(30), node == 1 ? 1 : 4}}, nopt,
        static_cast<uint64_t>(node) + 7));
    injectors.back()->Start();
  }
  MittosWaitStrategy::Options mopt;
  mopt.deadline = Millis(8);
  MittosWaitStrategy mittos(&sim_, cluster_.get(), 1, mopt);
  sim_.RunUntil(Millis(150));
  GetResult result;
  const DurationNs latency = RunOneGet(mittos, 5, &result);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.tries, 4);  // 3 rejections + informed last try.
  EXPECT_GE(mittos.informed_last_tries(), 1u);
  // Node 1 (lightest noise) should serve the last try well below the heavy
  // nodes' queue delays.
  EXPECT_LT(latency, Millis(120));
}

TEST_F(ClientFixture, MittosWaitBehavesLikeMittosWhenOneReplicaClean) {
  Build(/*mitt_enabled=*/true, /*noisy_node=*/0);
  MittosWaitStrategy::Options opt;
  opt.deadline = Millis(15);
  MittosWaitStrategy mittos(&sim_, cluster_.get(), 1, opt);
  sim_.RunUntil(Millis(100));
  GetResult result;
  const DurationNs latency = RunOneGet(mittos, KeyWithPrimary(0), &result);
  EXPECT_TRUE(result.status.ok());
  EXPECT_LT(latency, Millis(15));
  EXPECT_EQ(mittos.informed_last_tries(), 0u);  // Never needed the 4th try.
}

}  // namespace
}  // namespace mitt::client
