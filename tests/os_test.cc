#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/os/os.h"
#include "src/sim/simulator.h"

namespace mitt::os {
namespace {

class OsTest : public ::testing::Test {
 protected:
  OsOptions BaseOptions(BackendKind backend) {
    OsOptions opt;
    opt.backend = backend;
    opt.seed = 7;
    return opt;
  }

  sim::Simulator sim_;
};

TEST_F(OsTest, CacheHitIsFast) {
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t file = os.CreateFile(1 << 20);
  os.Prefault(file, 0, 1 << 20);
  Status result = Status::Internal();
  TimeNs done_at = -1;
  Os::ReadArgs args;
  args.file = file;
  args.offset = 4096;
  args.size = 1024;
  os.Read(args, [&](Status s) {
    result = s;
    done_at = sim_.Now();
  });
  sim_.Run();
  EXPECT_TRUE(result.ok());
  EXPECT_LE(done_at, Micros(50));
}

TEST_F(OsTest, CacheMissGoesToDisk) {
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t file = os.CreateFile(1 << 30);
  Status result = Status::Internal();
  TimeNs done_at = -1;
  Os::ReadArgs args;
  args.file = file;
  args.offset = 100 << 20;
  args.size = 4096;
  os.Read(args, [&](Status s) {
    result = s;
    done_at = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done_at >= 0; });
  EXPECT_TRUE(result.ok());
  EXPECT_GT(done_at, kMillisecond);  // Mechanical IO.
  // And the pages are now cached: a re-read is fast.
  TimeNs start = sim_.Now();
  TimeNs second = -1;
  os.Read(args, [&](Status) { second = sim_.Now(); });
  sim_.RunUntilPredicate([&] { return second >= 0; });
  EXPECT_LE(second - start, Micros(50));
}

TEST_F(OsTest, TinyDeadlineOnMissRejectedImmediately) {
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t file = os.CreateFile(1 << 30);
  Status result = Status::Internal();
  TimeNs done_at = -1;
  Os::ReadArgs args;
  args.file = file;
  args.offset = 0;
  args.size = 4096;
  args.deadline = Micros(100);  // The user expects an in-memory read (§4.4).
  os.Read(args, [&](Status s) {
    result = s;
    done_at = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done_at >= 0; });
  EXPECT_TRUE(result.busy());
  EXPECT_LE(done_at, Micros(10));  // <5us EBUSY path (§3.3).
}

TEST_F(OsTest, VanillaOsIgnoresDeadlines) {
  OsOptions opt = BaseOptions(BackendKind::kDiskCfq);
  opt.mitt_enabled = false;
  Os os(&sim_, opt);
  const uint64_t file = os.CreateFile(1 << 30);
  Status result = Status::Internal();
  TimeNs done_at = -1;
  Os::ReadArgs args;
  args.file = file;
  args.offset = 0;
  args.size = 4096;
  args.deadline = Micros(100);
  os.Read(args, [&](Status s) {
    result = s;
    done_at = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done_at >= 0; });
  EXPECT_TRUE(result.ok());  // Waited out the whole disk IO instead.
  EXPECT_GT(done_at, Micros(200));  // Mechanical IO, not the ~2us EBUSY path.
}

TEST_F(OsTest, BusyDiskRejectsDeadlineRead) {
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t file = os.CreateFile(100LL << 30);
  // Saturate the disk with noise reads (bypass cache, no deadline).
  int noise_done = 0;
  for (int i = 0; i < 40; ++i) {
    Os::ReadArgs noise;
    noise.file = file;
    noise.offset = static_cast<int64_t>(i) * (1LL << 30);
    noise.size = 1 << 20;
    noise.pid = 99;
    noise.bypass_cache = true;
    os.Read(noise, [&](Status) { ++noise_done; });
  }
  Status result = Status::Internal();
  Os::ReadArgs args;
  args.file = file;
  args.offset = 50LL << 30;
  args.size = 4096;
  args.deadline = Millis(20);
  args.pid = 1;
  bool got = false;
  os.Read(args, [&](Status s) {
    result = s;
    got = true;
  });
  sim_.RunUntilPredicate([&] { return got; });
  EXPECT_TRUE(result.busy());
  sim_.Run();
  EXPECT_EQ(noise_done, 40);
}

TEST_F(OsTest, AddrCheckResidentOk) {
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t file = os.CreateFile(1 << 20);
  os.Prefault(file, 0, 1 << 20);
  const auto result = os.AddrCheck(file, 4096, 1024, Micros(100));
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.cost, 82);
}

TEST_F(OsTest, AddrCheckMissReturnsEbusyAndSwapsInBackground) {
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t file = os.CreateFile(1 << 30);
  const auto result = os.AddrCheck(file, 0, 4096, Micros(100));
  EXPECT_TRUE(result.status.busy());
  // §4.4: the OS keeps swapping the data in even after EBUSY.
  sim_.RunUntil(Seconds(1));
  EXPECT_TRUE(os.cache().Resident(file, 0, 4096));
  const auto again = os.AddrCheck(file, 0, 4096, Micros(100));
  EXPECT_TRUE(again.status.ok());
}

TEST_F(OsTest, AddrCheckLargeDeadlineToleratesMiss) {
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t file = os.CreateFile(1 << 30);
  // Deadline far above any disk latency: the caller is willing to fault.
  const auto result = os.AddrCheck(file, 0, 4096, Millis(100));
  EXPECT_TRUE(result.status.ok());
}

TEST_F(OsTest, MmapAccessFaultsAndCaches) {
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t file = os.CreateFile(1 << 30);
  TimeNs done_at = -1;
  os.MmapAccess(file, 8192, 1024, 1, [&](Status s) {
    EXPECT_TRUE(s.ok());
    done_at = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done_at >= 0; });
  EXPECT_GT(done_at, kMillisecond);  // Page fault hit the disk.
  TimeNs start = sim_.Now();
  TimeNs second = -1;
  os.MmapAccess(file, 8192, 1024, 1, [&](Status) { second = sim_.Now(); });
  sim_.RunUntilPredicate([&] { return second >= 0; });
  EXPECT_LE(second - start, Micros(5));  // Now resident.
}

TEST_F(OsTest, BufferedWriteAcksFastDespiteBusyDisk) {
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t file = os.CreateFile(100LL << 30);
  for (int i = 0; i < 40; ++i) {
    Os::ReadArgs noise;
    noise.file = file;
    noise.offset = static_cast<int64_t>(i) * (1LL << 30);
    noise.size = 1 << 20;
    noise.pid = 99;
    noise.bypass_cache = true;
    os.Read(noise, nullptr);
  }
  TimeNs start = sim_.Now();
  TimeNs acked = -1;
  Os::WriteArgs w;
  w.file = file;
  w.offset = 60LL << 30;
  w.size = 4096;
  os.Write(w, [&](Status s) {
    EXPECT_TRUE(s.ok());
    acked = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return acked >= 0; });
  EXPECT_LE(acked - start, Micros(100));  // §7.8.6: writes are unaffected.
}

TEST_F(OsTest, DropCachedFractionEvictsAboutThatMuch) {
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t file = os.CreateFile(400 << 20);
  os.Prefault(file, 0, 400 << 20);
  const size_t before = os.cache().resident_pages();
  os.DropCachedFraction(0.2);
  const size_t after = os.cache().resident_pages();
  const double dropped = 1.0 - static_cast<double>(after) / static_cast<double>(before);
  EXPECT_NEAR(dropped, 0.2, 0.03);
}

TEST_F(OsTest, SsdBackendReadAndReject) {
  Os os(&sim_, BaseOptions(BackendKind::kSsd));
  const uint64_t file = os.CreateFile(1 << 30);
  Status result = Status::Internal();
  TimeNs done_at = -1;
  Os::ReadArgs args;
  args.file = file;
  args.offset = 0;
  args.size = 4096;
  args.deadline = Millis(2);
  args.bypass_cache = true;
  os.Read(args, [&](Status s) {
    result = s;
    done_at = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done_at >= 0; });
  EXPECT_TRUE(result.ok());
  EXPECT_LT(done_at, Millis(1));  // ~100us page read.
}

TEST_F(OsTest, ReadWithWaitHintReportsQueueDelay) {
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t file = os.CreateFile(100LL << 30);
  for (int i = 0; i < 40; ++i) {
    Os::ReadArgs noise;
    noise.file = file;
    noise.offset = static_cast<int64_t>(i) * (1LL << 30);
    noise.size = 1 << 20;
    noise.pid = 99;
    noise.bypass_cache = true;
    os.Read(noise, nullptr);
  }
  Status result = Status::Internal();
  DurationNs hint = -1;
  Os::ReadArgs args;
  args.file = file;
  args.offset = 50LL << 30;
  args.size = 4096;
  args.deadline = Millis(20);
  args.pid = 1;
  bool got = false;
  os.ReadWithWaitHint(args, [&](Status s, DurationNs h) {
    result = s;
    hint = h;
    got = true;
  });
  sim_.RunUntilPredicate([&] { return got; });
  EXPECT_TRUE(result.busy());
  EXPECT_GT(hint, Millis(20));  // The predicted wait that triggered EBUSY.
  sim_.Run();
}

TEST_F(OsTest, EbusyHintMatchesPredictorAndIsObservedOnce) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  sim_.set_tracer(&tracer);
  sim_.set_metrics(&metrics);
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t file = os.CreateFile(100LL << 30);
  for (int i = 0; i < 40; ++i) {
    Os::ReadArgs noise;
    noise.file = file;
    noise.offset = static_cast<int64_t>(i) * (1LL << 30);
    noise.size = 1 << 20;
    noise.pid = 99;
    noise.bypass_cache = true;
    os.Read(noise, nullptr);
  }
  // The hint handed back with EBUSY must be the predictor's wait estimate at
  // submission time, not a post-hoc number: capture it just before the call.
  const DurationNs expected_wait =
      os.mitt_cfq()->PredictedWaitNow(/*pid=*/1, sched::IoClass::kBestEffort);
  Status result = Status::Internal();
  DurationNs hint = -1;
  bool got = false;
  Os::ReadArgs args;
  args.file = file;
  args.offset = 50LL << 30;
  args.size = 4096;
  args.deadline = Millis(20);
  args.pid = 1;
  args.trace = {tracer.NewRequestId(), /*node=*/-1};
  os.ReadWithWaitHint(args, [&](Status s, DurationNs h) {
    result = s;
    hint = h;
    got = true;
  });
  sim_.RunUntilPredicate([&] { return got; });
  ASSERT_TRUE(result.busy());
  EXPECT_EQ(hint, expected_wait);
  EXPECT_GT(hint, Millis(20));
#if MITT_OBS_ENABLED
  // Exactly one rejection: one ebusy_reject span, one ebusy_total increment.
  // (Boot profiling and the noise reads carry no deadline, so nothing else
  // can reject.)
  int reject_spans = 0;
  for (const obs::SpanRecord& span : tracer.OrderedSpans()) {
    if (span.kind == obs::SpanKind::kEbusyReject) {
      ++reject_spans;
      EXPECT_EQ(span.request_id, args.trace.id);
    }
  }
  EXPECT_EQ(reject_spans, 1);
  EXPECT_EQ(metrics.CounterValue("ebusy_total", -1), 1u);
#endif
  sim_.Run();
}

TEST_F(OsTest, FileAllocationDoesNotOverlap) {
  Os os(&sim_, BaseOptions(BackendKind::kDiskCfq));
  const uint64_t a = os.CreateFile(10 << 20);
  const uint64_t b = os.CreateFile(10 << 20);
  EXPECT_NE(a, b);
  EXPECT_NE(os.FileBase(a), os.FileBase(b));
  EXPECT_GE(os.FileBase(b), os.FileBase(a) + (10 << 20));
}

}  // namespace
}  // namespace mitt::os
