#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/cpu_pool.h"
#include "src/cluster/network.h"
#include "src/kv/doc_store_node.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/simulator.h"

namespace mitt::cluster {
namespace {

TEST(CpuPoolTest, SingleCoreSerializes) {
  sim::Simulator sim;
  CpuPool cpu(&sim, 1);
  std::vector<TimeNs> done;
  for (int i = 0; i < 3; ++i) {
    cpu.Execute(Micros(100), [&] { done.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], Micros(100));
  EXPECT_EQ(done[1], Micros(200));
  EXPECT_EQ(done[2], Micros(300));
}

TEST(CpuPoolTest, MultiCoreRunsInParallel) {
  sim::Simulator sim;
  CpuPool cpu(&sim, 4);
  std::vector<TimeNs> done;
  for (int i = 0; i < 4; ++i) {
    cpu.Execute(Micros(100), [&] { done.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(done.size(), 4u);
  for (const TimeNs t : done) {
    EXPECT_EQ(t, Micros(100));
  }
}

TEST(CpuPoolTest, OverloadQueues) {
  sim::Simulator sim;
  CpuPool cpu(&sim, 8);
  // 12 jobs on 8 cores (the §7.5 hedge-contention situation): the last 4
  // wait a full burst.
  std::vector<TimeNs> done;
  for (int i = 0; i < 12; ++i) {
    cpu.Execute(Micros(200), [&] { done.push_back(sim.Now()); });
  }
  EXPECT_EQ(cpu.active(), 8);
  EXPECT_EQ(cpu.queued(), 4u);
  sim.Run();
  ASSERT_EQ(done.size(), 12u);
  EXPECT_EQ(done[7], Micros(200));
  EXPECT_EQ(done[11], Micros(400));
}

TEST(NetworkTest, DeliveryTakesOneHop) {
  sim::Simulator sim;
  NetworkParams params;
  Network net(&sim, params, 3);
  TimeNs delivered = -1;
  net.Deliver([&] { delivered = sim.Now(); });
  sim.Run();
  EXPECT_GE(delivered, params.one_way - params.jitter);
  EXPECT_LE(delivered, params.one_way + params.jitter);
  EXPECT_EQ(net.round_trip_estimate(), 2 * params.one_way);
}

kv::DocStoreNode::Options SmallNodeOptions() {
  kv::DocStoreNode::Options opt;
  opt.num_keys = 1 << 16;
  opt.os.backend = os::BackendKind::kDiskCfq;
  return opt;
}

TEST(ClusterTest, ReplicasAreDistinctAndStable) {
  sim::Simulator sim;
  Cluster::Options opt;
  opt.num_nodes = 20;
  opt.node = SmallNodeOptions();
  opt.node.os.mitt_enabled = false;
  Cluster cluster(&sim, opt);
  for (uint64_t key = 0; key < 500; ++key) {
    const auto replicas = cluster.ReplicasOf(key);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas, cluster.ReplicasOf(key));
    const std::set<int> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(ClusterTest, PrimariesSpreadAcrossNodes) {
  sim::Simulator sim;
  Cluster::Options opt;
  opt.num_nodes = 20;
  opt.node = SmallNodeOptions();
  opt.node.os.mitt_enabled = false;
  Cluster cluster(&sim, opt);
  std::vector<int> hits(20, 0);
  for (uint64_t key = 0; key < 4000; ++key) {
    ++hits[static_cast<size_t>(cluster.ReplicasOf(key)[0])];
  }
  for (const int h : hits) {
    EXPECT_GT(h, 100);
    EXPECT_LT(h, 400);
  }
}

TEST(ClusterTest, SharedCpuPoolIsShared) {
  sim::Simulator sim;
  Cluster::Options opt;
  opt.num_nodes = 6;
  opt.shared_cpu_cores = 8;
  opt.node = SmallNodeOptions();
  opt.node.os.mitt_enabled = false;
  Cluster cluster(&sim, opt);
  EXPECT_EQ(&cluster.node(0).cpu(), &cluster.node(5).cpu());
  EXPECT_FALSE(cluster.node(0).owns_cpu());
}

class DocStoreNodeTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
};

TEST_F(DocStoreNodeTest, CachedGetIsSubMillisecond) {
  kv::DocStoreNode::Options opt = SmallNodeOptions();
  kv::DocStoreNode node(&sim_, 0, opt);
  node.WarmCache(1.0);
  TimeNs done = -1;
  Status status = Status::Internal();
  node.HandleGet(42, sched::kNoDeadline, [&](Status s) {
    status = s;
    done = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done >= 0; });
  EXPECT_TRUE(status.ok());
  EXPECT_LT(done, kMillisecond);
}

TEST_F(DocStoreNodeTest, UncachedGetHitsDisk) {
  kv::DocStoreNode::Options opt = SmallNodeOptions();
  kv::DocStoreNode node(&sim_, 0, opt);
  TimeNs done = -1;
  node.HandleGet(42, sched::kNoDeadline, [&](Status) { done = sim_.Now(); });
  sim_.RunUntilPredicate([&] { return done >= 0; });
  EXPECT_GT(done, kMillisecond);
}

TEST_F(DocStoreNodeTest, MmapPathUsesAddrCheckEbusy) {
  kv::DocStoreNode::Options opt = SmallNodeOptions();
  opt.access = kv::AccessPath::kMmapAddrCheck;
  kv::DocStoreNode node(&sim_, 0, opt);
  node.WarmCache(1.0);
  node.os().DropCachedFraction(1.0);  // Everything swapped out.
  Status status = Status::Internal();
  TimeNs done = -1;
  node.HandleGet(42, Micros(100), [&](Status s) {
    status = s;
    done = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done >= 0; });
  EXPECT_TRUE(status.busy());
  EXPECT_LT(done, Millis(1));  // Instant rejection, no disk wait.
  EXPECT_GT(node.ebusy_returned(), 0u);
}

TEST_F(DocStoreNodeTest, ReadPathPropagatesDeadline) {
  kv::DocStoreNode::Options opt = SmallNodeOptions();
  opt.access = kv::AccessPath::kRead;
  kv::DocStoreNode node(&sim_, 0, opt);
  // Saturate the disk with raw reads so MittCFQ predicts a long wait.
  const uint64_t noise_file = node.os().CreateFile(50LL << 30);
  for (int i = 0; i < 40; ++i) {
    os::Os::ReadArgs args;
    args.file = noise_file;
    args.offset = static_cast<int64_t>(i) << 30;
    args.size = 1 << 20;
    args.pid = 99;
    args.bypass_cache = true;
    node.os().Read(args, nullptr);
  }
  Status status = Status::Internal();
  TimeNs done = -1;
  node.HandleGet(7, Millis(15), [&](Status s) {
    status = s;
    done = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done >= 0; });
  EXPECT_TRUE(status.busy());
  EXPECT_LT(done, kMillisecond);
}

TEST_F(DocStoreNodeTest, ExceptionPathCostsMore) {
  auto run = [&](bool exceptions) {
    sim::Simulator sim;
    kv::DocStoreNode::Options opt = SmallNodeOptions();
    opt.access = kv::AccessPath::kMmapAddrCheck;
    opt.exception_on_ebusy = exceptions;
    kv::DocStoreNode node(&sim, 0, opt);
    TimeNs done = -1;
    node.HandleGet(42, Micros(50), [&](Status) { done = sim.Now(); });
    sim.RunUntilPredicate([&] { return done >= 0; });
    return done;
  };
  const TimeNs exceptionless = run(false);
  const TimeNs with_exceptions = run(true);
  EXPECT_NEAR(static_cast<double>(with_exceptions - exceptionless),
              static_cast<double>(Micros(200)), static_cast<double>(Micros(20)));
}

// ------------------------------------------------- sharded cluster worlds

// A cluster built on the PDES engine: request and reply both cross shards
// (shard 0 -> node's shard -> shard 0), so completion times exercise the
// mailbox path end to end. The whole delivery log must be bit-identical at
// any worker count, including the env-resolved default (workers=0).
TEST(ShardedClusterTest, CrossShardGetsAreBitIdenticalAcrossWorkerCounts) {
  constexpr int kNodes = 16;
  auto run = [](int workers) {
    sim::ShardedEngine::Options eopt;
    eopt.num_shards = 4;
    eopt.lookahead = MinOneWayHop(NetworkParams{});
    eopt.workers = workers;
    sim::ShardedEngine engine(eopt);
    Cluster::Options copt;
    copt.num_nodes = kNodes;
    copt.node = SmallNodeOptions();
    copt.node.num_keys = 1 << 10;
    copt.seed = 7;
    Cluster cluster(&engine, copt);
    cluster.WarmAll(0.5);

    size_t completed = 0;
    std::vector<TimeNs> done(kNodes, -1);
    for (int n = 0; n < kNodes; ++n) {
      engine.shard(0)->ScheduleAt(Micros(10) * (n + 1), [&engine, &cluster, &done,
                                                         &completed, n] {
        cluster.network().DeliverToNode(n, [&engine, &cluster, &done, &completed, n] {
          cluster.node(n).HandleGet(static_cast<uint64_t>(n) * 17, Millis(20),
                                    [&engine, &cluster, &done, &completed, n](Status) {
                                      cluster.network().Deliver(
                                          n, /*dst_shard=*/0,
                                          [&engine, &done, &completed, n] {
                                            done[n] = engine.shard(0)->Now();
                                            ++completed;
                                          });
                                    });
        });
      });
    }
    engine.RunUntilPredicate([&completed] { return completed == kNodes; });
    done.push_back(static_cast<TimeNs>(engine.cross_shard_messages()));
    return done;
  };
  const auto base = run(1);
  EXPECT_GT(base.back(), 0) << "gets must actually cross shards";
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(4), base);
  EXPECT_EQ(run(0), base);  // Env-resolved default (4 under the TSan CI job).
}

TEST_F(DocStoreNodeTest, PutIsBufferedAndFast) {
  kv::DocStoreNode::Options opt = SmallNodeOptions();
  kv::DocStoreNode node(&sim_, 0, opt);
  TimeNs done = -1;
  Status status = Status::Internal();
  node.HandlePut(42, [&](Status s) {
    status = s;
    done = sim_.Now();
  });
  sim_.RunUntilPredicate([&] { return done >= 0; });
  EXPECT_TRUE(status.ok());
  EXPECT_LT(done, Millis(1));
}

}  // namespace
}  // namespace mitt::cluster
