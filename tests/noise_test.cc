#include <gtest/gtest.h>

#include <vector>

#include "src/noise/ec2_noise.h"
#include "src/noise/noise_injector.h"
#include "src/os/os.h"
#include "src/sim/simulator.h"

namespace mitt::noise {
namespace {

TEST(Ec2NoiseModelTest, DeterministicSchedules) {
  Ec2NoiseModel a(Ec2NoiseParams{}, 7);
  Ec2NoiseModel b(Ec2NoiseParams{}, 7);
  const auto sa = a.GenerateSchedule(3, Seconds(600));
  const auto sb = b.GenerateSchedule(3, Seconds(600));
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].start, sb[i].start);
    EXPECT_EQ(sa[i].duration, sb[i].duration);
    EXPECT_EQ(sa[i].intensity, sb[i].intensity);
  }
}

TEST(Ec2NoiseModelTest, NodesDiffer) {
  Ec2NoiseModel model(Ec2NoiseParams{}, 7);
  const auto s0 = model.GenerateSchedule(0, Seconds(600));
  const auto s1 = model.GenerateSchedule(1, Seconds(600));
  ASSERT_FALSE(s0.empty());
  ASSERT_FALSE(s1.empty());
  EXPECT_NE(s0.front().start, s1.front().start);
}

TEST(Ec2NoiseModelTest, EpisodesWithinHorizonAndSubSecondBursts) {
  Ec2NoiseModel model(Ec2NoiseParams{}, 11);
  for (int node = 0; node < 20; ++node) {
    for (const auto& ep : model.GenerateSchedule(node, Seconds(600))) {
      EXPECT_GE(ep.start, 0);
      EXPECT_LT(ep.start, Seconds(600));
      EXPECT_GE(ep.duration, Ec2NoiseParams{}.min_on);
      EXPECT_LE(ep.duration, Ec2NoiseParams{}.max_on + kMillisecond);
      EXPECT_GE(ep.intensity, 1);
      EXPECT_LE(ep.intensity, Ec2NoiseParams{}.max_intensity);
    }
  }
}

TEST(Ec2NoiseModelTest, BusyFractionFewPercent) {
  Ec2NoiseModel model(Ec2NoiseParams{}, 13);
  double total = 0;
  for (int node = 0; node < 20; ++node) {
    const double f = model.BusyFraction(node, Seconds(3600));
    EXPECT_GT(f, 0.001) << node;
    EXPECT_LT(f, 0.25) << node;
    total += f;
  }
  // Average busy fraction calibrated to the §6 observations (~1.5-5%).
  EXPECT_GT(total / 20, 0.005);
  EXPECT_LT(total / 20, 0.09);
}

TEST(Ec2NoiseModelTest, SimultaneouslyBusyNodesMatchObservation3) {
  // Sample the 20-node busy-count distribution at 100ms granularity and
  // check Fig. 3g's shape: P(N) diminishes rapidly; 1-2 busy nodes dominate
  // the busy mass.
  Ec2NoiseModel model(Ec2NoiseParams{}, 17);
  const TimeNs horizon = Seconds(3600);
  std::vector<std::vector<NoiseEpisode>> schedules;
  schedules.reserve(20);
  for (int node = 0; node < 20; ++node) {
    schedules.push_back(model.GenerateSchedule(node, horizon));
  }
  std::vector<int> count_hist(21, 0);
  int samples = 0;
  for (TimeNs t = 0; t < horizon; t += Millis(100)) {
    int busy = 0;
    for (const auto& schedule : schedules) {
      for (const auto& ep : schedule) {
        if (t >= ep.start && t < ep.start + ep.duration) {
          ++busy;
          break;
        }
      }
    }
    ++count_hist[static_cast<size_t>(busy)];
    ++samples;
  }
  const double p0 = static_cast<double>(count_hist[0]) / samples;
  const double p1 = static_cast<double>(count_hist[1]) / samples;
  const double p2 = static_cast<double>(count_hist[2]) / samples;
  const double p3 = static_cast<double>(count_hist[3]) / samples;
  EXPECT_GT(p0, 0.45);
  EXPECT_GT(p1, p2);
  EXPECT_GT(p2, p3);
  EXPECT_GT(p1, 0.1);
  EXPECT_LT(p1, 0.45);
}

TEST(Ec2NoiseModelTest, InterArrivalsSpreadOverSeconds) {
  Ec2NoiseModel model(Ec2NoiseParams{}, 19);
  const auto schedule = model.GenerateSchedule(0, Seconds(7200));
  ASSERT_GT(schedule.size(), 10u);
  DurationNs min_gap = Seconds(10000);
  DurationNs max_gap = 0;
  for (size_t i = 1; i < schedule.size(); ++i) {
    const DurationNs gap = schedule[i].start - (schedule[i - 1].start + schedule[i - 1].duration);
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
  }
  // Bursty: gaps span from sub-second to many seconds (no fixed period).
  EXPECT_LT(min_gap, Seconds(2));
  EXPECT_GT(max_gap, Seconds(15));
}

TEST(IoNoiseInjectorTest, EpisodesMakeDiskBusy) {
  sim::Simulator sim;
  os::OsOptions opt;
  opt.backend = os::BackendKind::kDiskCfq;
  opt.mitt_enabled = false;
  os::Os target(&sim, opt);
  const int64_t file_size = 50LL << 30;
  const uint64_t file = target.CreateFile(file_size);

  IoNoiseInjector::Options nopt;
  nopt.io_size = 1 << 20;
  nopt.streams_per_intensity = 2;
  IoNoiseInjector injector(&sim, &target, file, file_size,
                           {NoiseEpisode{Millis(10), Millis(500), 2}}, nopt, 5);
  injector.Start();

  sim.RunUntil(Millis(200));
  EXPECT_TRUE(injector.noisy_now());
  EXPECT_GT(target.disk()->Occupancy(), 0u);
  sim.RunUntil(Seconds(2));
  sim.Run();
  EXPECT_FALSE(injector.noisy_now());
  EXPECT_GT(injector.ios_issued(), 20u);
}

TEST(IoNoiseInjectorTest, ProbeLatencyRisesDuringEpisode) {
  auto probe_latency = [](bool with_noise) {
    sim::Simulator sim;
    os::OsOptions opt;
    opt.backend = os::BackendKind::kDiskCfq;
    opt.mitt_enabled = false;
    os::Os target(&sim, opt);
    const int64_t file_size = 50LL << 30;
    const uint64_t file = target.CreateFile(file_size);
    std::unique_ptr<IoNoiseInjector> injector;
    if (with_noise) {
      IoNoiseInjector::Options nopt;
      injector = std::make_unique<IoNoiseInjector>(
          &sim, &target, file, file_size,
          std::vector<NoiseEpisode>{NoiseEpisode{0, Seconds(2), 3}}, nopt, 5);
      injector->Start();
    }
    sim.RunUntil(Millis(100));
    TimeNs done = -1;
    const TimeNs start = sim.Now();
    os::Os::ReadArgs args;
    args.file = file;
    args.offset = 10LL << 30;
    args.size = 4096;
    args.bypass_cache = true;
    target.Read(args, [&](Status) { done = sim.Now(); });
    sim.RunUntilPredicate([&] { return done >= 0; });
    return done - start;
  };
  const DurationNs quiet = probe_latency(false);
  const DurationNs noisy = probe_latency(true);
  EXPECT_LT(quiet, Millis(12));
  EXPECT_GT(noisy, quiet * 2);
}

TEST(CacheNoiseInjectorTest, DropsPagesAtEpisodes) {
  sim::Simulator sim;
  os::OsOptions opt;
  opt.backend = os::BackendKind::kDiskCfq;
  opt.mitt_enabled = false;
  os::Os target(&sim, opt);
  const uint64_t file = target.CreateFile(100 << 20);
  target.Prefault(file, 0, 100 << 20);
  const size_t before = target.cache().resident_pages();

  CacheNoiseInjector::Options nopt;
  nopt.file = file;
  nopt.file_size = 100 << 20;
  nopt.drop_fraction_per_intensity = 0.1;
  nopt.restore = false;
  CacheNoiseInjector injector(&sim, &target, {NoiseEpisode{Millis(5), Millis(100), 2}}, nopt, 3);
  injector.Start();
  sim.Run();
  const size_t after = target.cache().resident_pages();
  EXPECT_LT(after, before);
  // Chunked contiguous drops may overlap, so at most ~20% is gone.
  EXPECT_GT(static_cast<double>(after) / static_cast<double>(before), 0.75);
  EXPECT_LT(static_cast<double>(after) / static_cast<double>(before), 0.95);
}

TEST(CacheNoiseInjectorTest, RestoresPagesAfterEpisode) {
  sim::Simulator sim;
  os::OsOptions opt;
  opt.backend = os::BackendKind::kDiskCfq;
  opt.mitt_enabled = false;
  os::Os target(&sim, opt);
  const uint64_t file = target.CreateFile(100 << 20);
  target.Prefault(file, 0, 100 << 20);
  const size_t before = target.cache().resident_pages();

  CacheNoiseInjector::Options nopt;
  nopt.file = file;
  nopt.file_size = 100 << 20;
  nopt.drop_fraction_per_intensity = 0.2;
  CacheNoiseInjector injector(&sim, &target, {NoiseEpisode{Millis(5), Millis(100), 1}}, nopt, 3);
  injector.Start();
  sim.RunUntil(Millis(50));
  EXPECT_LT(target.cache().resident_pages(), before);  // Dropped mid-episode.
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(target.cache().resident_pages(), before);  // Swapped back in.
  EXPECT_EQ(injector.episodes_run(), 1u);
}

}  // namespace
}  // namespace mitt::noise
