#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/device/disk_model.h"
#include "src/device/disk_profile.h"
#include "src/device/ssd_model.h"
#include "src/device/ssd_profile.h"
#include "src/os/mitt_cfq.h"
#include "src/os/mitt_noop.h"
#include "src/os/mitt_ssd.h"
#include "src/sched/cfq_scheduler.h"
#include "src/sched/noop_scheduler.h"
#include "src/sim/simulator.h"

namespace mitt::os {
namespace {

using sched::IoClass;
using sched::IoOp;
using sched::IoRequest;

class MittNoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<device::DiskModel>(&sim_, params_, 1);
    sim::Simulator scratch;
    device::DiskModel twin(&scratch, params_, 99);
    profile_ = device::ProfileDisk(&scratch, &twin);
  }

  std::unique_ptr<IoRequest> MakeIo(uint64_t id, int64_t offset, DurationNs deadline) {
    auto req = std::make_unique<IoRequest>();
    req->id = id;
    req->op = IoOp::kRead;
    req->offset = offset;
    req->size = 4096;
    req->pid = 1;
    req->deadline = deadline;
    req->on_complete = [this](const IoRequest& r, Status s) {
      results_.emplace_back(r.id, s);
    };
    return req;
  }

  sim::Simulator sim_;
  device::DiskParams params_;
  std::unique_ptr<device::DiskModel> disk_;
  device::DiskProfile profile_;
  std::vector<std::pair<uint64_t, Status>> results_;
};

TEST_F(MittNoopTest, AcceptsWhenIdle) {
  MittNoopPredictor predictor(&sim_, profile_, PredictorOptions{});
  sched::NoopScheduler noop(&sim_, disk_.get(), &predictor);
  auto req = MakeIo(1, 100LL << 30, Millis(20));
  noop.Submit(req.get());
  sim_.Run();
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_TRUE(results_[0].second.ok());
  EXPECT_EQ(req->predicted_wait, 0);
  EXPECT_GT(req->predicted_process, Millis(2));
}

TEST_F(MittNoopTest, RejectsWhenQueueExceedsDeadline) {
  MittNoopPredictor predictor(&sim_, profile_, PredictorOptions{});
  sched::NoopScheduler noop(&sim_, disk_.get(), &predictor);
  std::vector<std::unique_ptr<IoRequest>> backlog;
  // ~10 random reads x ~5ms each: predicted wait far above 20ms.
  for (int i = 0; i < 10; ++i) {
    backlog.push_back(MakeIo(static_cast<uint64_t>(i), i * (90LL << 30), sched::kNoDeadline));
    noop.Submit(backlog.back().get());
  }
  auto req = MakeIo(100, 500LL << 30, Millis(20));
  noop.Submit(req.get());
  // EBUSY must be synchronous — before any simulated time elapses.
  ASSERT_FALSE(results_.empty());
  EXPECT_EQ(results_.back().first, 100u);
  EXPECT_TRUE(results_.back().second.busy());
  sim_.Run();
  EXPECT_EQ(results_.size(), 11u);  // Backlog completed OK.
}

TEST_F(MittNoopTest, NoDeadlineNeverRejected) {
  MittNoopPredictor predictor(&sim_, profile_, PredictorOptions{});
  sched::NoopScheduler noop(&sim_, disk_.get(), &predictor);
  std::vector<std::unique_ptr<IoRequest>> backlog;
  for (int i = 0; i < 30; ++i) {
    backlog.push_back(MakeIo(static_cast<uint64_t>(i), i * (30LL << 30), sched::kNoDeadline));
    noop.Submit(backlog.back().get());
  }
  sim_.Run();
  ASSERT_EQ(results_.size(), 30u);
  for (const auto& [id, status] : results_) {
    EXPECT_TRUE(status.ok());
  }
}

TEST_F(MittNoopTest, PredictedWaitTracksBacklog) {
  MittNoopPredictor predictor(&sim_, profile_, PredictorOptions{});
  sched::NoopScheduler noop(&sim_, disk_.get(), &predictor);
  EXPECT_EQ(predictor.PredictedWaitNow(), 0);
  std::vector<std::unique_ptr<IoRequest>> backlog;
  for (int i = 0; i < 5; ++i) {
    backlog.push_back(MakeIo(static_cast<uint64_t>(i), i * (90LL << 30), sched::kNoDeadline));
    noop.Submit(backlog.back().get());
  }
  EXPECT_GT(predictor.PredictedWaitNow(), Millis(10));
  sim_.Run();
  EXPECT_EQ(predictor.PredictedWaitNow(), 0);  // Idle again.
}

TEST_F(MittNoopTest, AccuracyModeFlagsInsteadOfRejecting) {
  PredictorOptions opt;
  opt.accuracy_mode = true;
  MittNoopPredictor predictor(&sim_, profile_, opt);
  sched::NoopScheduler noop(&sim_, disk_.get(), &predictor);
  std::vector<std::unique_ptr<IoRequest>> backlog;
  for (int i = 0; i < 10; ++i) {
    backlog.push_back(MakeIo(static_cast<uint64_t>(i), i * (90LL << 30), sched::kNoDeadline));
    noop.Submit(backlog.back().get());
  }
  auto req = MakeIo(100, 500LL << 30, Millis(20));
  noop.Submit(req.get());
  EXPECT_TRUE(req->ebusy_flagged);
  sim_.Run();
  // All IOs completed OK (nothing was rejected)...
  ASSERT_EQ(results_.size(), 11u);
  for (const auto& [id, status] : results_) {
    EXPECT_TRUE(status.ok());
  }
  // ...and the stats saw one deadline IO, correctly predicted busy.
  EXPECT_EQ(predictor.stats().total, 1u);
  EXPECT_EQ(predictor.stats().flagged, 1u);
  EXPECT_EQ(predictor.stats().false_positives, 0u);
  EXPECT_EQ(predictor.stats().false_negatives, 0u);
}

TEST_F(MittNoopTest, FalsePositiveInjectionRejectsIdleIo) {
  PredictorOptions opt;
  opt.false_positive_rate = 1.0;
  MittNoopPredictor predictor(&sim_, profile_, opt);
  sched::NoopScheduler noop(&sim_, disk_.get(), &predictor);
  auto req = MakeIo(1, 100LL << 30, Millis(20));
  noop.Submit(req.get());
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_TRUE(results_[0].second.busy());
}

TEST_F(MittNoopTest, FalseNegativeInjectionLetsBusyIoThrough) {
  PredictorOptions opt;
  opt.false_negative_rate = 1.0;
  MittNoopPredictor predictor(&sim_, profile_, opt);
  sched::NoopScheduler noop(&sim_, disk_.get(), &predictor);
  std::vector<std::unique_ptr<IoRequest>> backlog;
  for (int i = 0; i < 10; ++i) {
    backlog.push_back(MakeIo(static_cast<uint64_t>(i), i * (90LL << 30), sched::kNoDeadline));
    noop.Submit(backlog.back().get());
  }
  auto req = MakeIo(100, 500LL << 30, Millis(20));
  noop.Submit(req.get());
  sim_.Run();
  ASSERT_EQ(results_.size(), 11u);
  for (const auto& [id, status] : results_) {
    EXPECT_TRUE(status.ok());  // Never rejected.
  }
}

class MittCfqTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<device::DiskModel>(&sim_, params_, 1);
    sim::Simulator scratch;
    device::DiskModel twin(&scratch, params_, 99);
    profile_ = device::ProfileDisk(&scratch, &twin);
  }

  std::unique_ptr<IoRequest> MakeIo(uint64_t id, int64_t offset, DurationNs deadline,
                                    int32_t pid = 1, IoClass io_class = IoClass::kBestEffort) {
    auto req = std::make_unique<IoRequest>();
    req->id = id;
    req->op = IoOp::kRead;
    req->offset = offset;
    req->size = 4096;
    req->pid = pid;
    req->io_class = io_class;
    req->deadline = deadline;
    req->on_complete = [this](const IoRequest& r, Status s) {
      results_.emplace_back(r.id, s);
    };
    return req;
  }

  sim::Simulator sim_;
  device::DiskParams params_;
  std::unique_ptr<device::DiskModel> disk_;
  device::DiskProfile profile_;
  std::vector<std::pair<uint64_t, Status>> results_;
};

TEST_F(MittCfqTest, RejectsBehindHeavyBacklog) {
  MittCfqPredictor predictor(&sim_, profile_, PredictorOptions{}, MittCfqOptions{});
  sched::CfqScheduler cfq(&sim_, disk_.get(), &predictor);
  std::vector<std::unique_ptr<IoRequest>> backlog;
  for (int i = 0; i < 40; ++i) {
    backlog.push_back(
        MakeIo(static_cast<uint64_t>(i), i * (20LL << 30), sched::kNoDeadline, /*pid=*/2));
    cfq.Submit(backlog.back().get());
  }
  auto req = MakeIo(100, 500LL << 30, Millis(20));
  cfq.Submit(req.get());
  ASSERT_FALSE(results_.empty());
  EXPECT_EQ(results_.back().first, 100u);
  EXPECT_TRUE(results_.back().second.busy());
  EXPECT_GT(req->predicted_wait, Millis(20));
  sim_.Run();
}

TEST_F(MittCfqTest, HigherClassArrivalCancelsBumpedIo) {
  params_.queue_depth = 2;  // Keep the backlog inside CFQ queues.
  disk_ = std::make_unique<device::DiskModel>(&sim_, params_, 2);
  MittCfqPredictor predictor(&sim_, profile_, PredictorOptions{}, MittCfqOptions{});
  sched::CfqScheduler cfq(&sim_, disk_.get(), &predictor);

  // A best-effort IO accepted with a deadline just above its predicted wait.
  std::vector<std::unique_ptr<IoRequest>> ios;
  for (int i = 0; i < 3; ++i) {
    ios.push_back(MakeIo(static_cast<uint64_t>(i), i * (40LL << 30), sched::kNoDeadline));
    cfq.Submit(ios.back().get());
  }
  auto victim = MakeIo(50, 300LL << 30, Millis(25));
  cfq.Submit(victim.get());
  ASSERT_TRUE(results_.empty() || results_.back().first != 50u);  // Accepted.

  // A burst of RealTime IOs bumps the best-effort victim past its deadline.
  std::vector<std::unique_ptr<IoRequest>> rt;
  bool victim_cancelled = false;
  for (int i = 0; i < 12; ++i) {
    rt.push_back(MakeIo(static_cast<uint64_t>(200 + i), (100 + i * 60) * (1LL << 30),
                        sched::kNoDeadline, /*pid=*/3, IoClass::kRealTime));
    cfq.Submit(rt.back().get());
    for (const auto& [id, status] : results_) {
      if (id == 50 && status.busy()) {
        victim_cancelled = true;
      }
    }
    if (victim_cancelled) {
      break;
    }
  }
  EXPECT_TRUE(victim_cancelled);
  sim_.Run();
}

TEST_F(MittCfqTest, BumpCancellationDisabledKeepsVictim) {
  params_.queue_depth = 2;
  disk_ = std::make_unique<device::DiskModel>(&sim_, params_, 3);
  MittCfqOptions cfq_opt;
  cfq_opt.bump_cancellation = false;
  MittCfqPredictor predictor(&sim_, profile_, PredictorOptions{}, cfq_opt);
  sched::CfqScheduler cfq(&sim_, disk_.get(), &predictor);

  std::vector<std::unique_ptr<IoRequest>> ios;
  for (int i = 0; i < 3; ++i) {
    ios.push_back(MakeIo(static_cast<uint64_t>(i), i * (40LL << 30), sched::kNoDeadline));
    cfq.Submit(ios.back().get());
  }
  auto victim = MakeIo(50, 300LL << 30, Millis(25));
  cfq.Submit(victim.get());
  std::vector<std::unique_ptr<IoRequest>> rt;
  for (int i = 0; i < 12; ++i) {
    rt.push_back(MakeIo(static_cast<uint64_t>(200 + i), (100 + i * 60) * (1LL << 30),
                        sched::kNoDeadline, /*pid=*/3, IoClass::kRealTime));
    cfq.Submit(rt.back().get());
  }
  sim_.Run();
  for (const auto& [id, status] : results_) {
    if (id == 50) {
      EXPECT_TRUE(status.ok());  // Completed late but never cancelled.
    }
  }
}

class MittSsdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ssd_ = std::make_unique<device::SsdModel>(&sim_, params_, 1);
    sim::Simulator scratch;
    device::SsdModel twin(&scratch, params_, 99);
    profile_ = device::ProfileSsd(&scratch, &twin);
  }

  std::unique_ptr<IoRequest> MakeIo(uint64_t id, int64_t offset, int64_t size,
                                    DurationNs deadline, IoOp op = IoOp::kRead) {
    auto req = std::make_unique<IoRequest>();
    req->id = id;
    req->op = op;
    req->offset = offset;
    req->size = size;
    req->pid = 1;
    req->deadline = deadline;
    req->on_complete = [this](const IoRequest& r, Status s) {
      results_.emplace_back(r.id, s);
    };
    return req;
  }

  sim::Simulator sim_;
  device::SsdParams params_;
  std::unique_ptr<device::SsdModel> ssd_;
  device::SsdProfile profile_;
  std::vector<std::pair<uint64_t, Status>> results_;
};

TEST_F(MittSsdTest, AcceptsFastReadOnIdleSsd) {
  MittSsdPredictor predictor(&sim_, ssd_.get(), profile_, PredictorOptions{}, MittSsdOptions{});
  SsdBlockLayer layer(&sim_, ssd_.get(), &predictor);
  auto req = MakeIo(1, 0, params_.page_size, Millis(1));
  layer.Submit(req.get());
  sim_.Run();
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_TRUE(results_[0].second.ok());
}

TEST_F(MittSsdTest, RejectsReadQueuedBehindErase) {
  MittSsdPredictor predictor(&sim_, ssd_.get(), profile_, PredictorOptions{}, MittSsdOptions{});
  SsdBlockLayer layer(&sim_, ssd_.get(), &predictor);
  auto erase = MakeIo(1, 0, params_.page_size, sched::kNoDeadline, IoOp::kErase);
  layer.Submit(erase.get());
  auto req = MakeIo(2, 0, params_.page_size, Millis(1));  // Same chip 0.
  layer.Submit(req.get());
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_EQ(results_[0].first, 2u);
  EXPECT_TRUE(results_[0].second.busy());
  sim_.Run();
}

TEST_F(MittSsdTest, OtherChipsUnaffectedByBusyChip) {
  MittSsdPredictor predictor(&sim_, ssd_.get(), profile_, PredictorOptions{}, MittSsdOptions{});
  SsdBlockLayer layer(&sim_, ssd_.get(), &predictor);
  auto erase = MakeIo(1, 0, params_.page_size, sched::kNoDeadline, IoOp::kErase);
  layer.Submit(erase.get());
  // Chip 1 (different channel as well): unaffected, accepted.
  auto req = MakeIo(2, params_.page_size, params_.page_size, Millis(1));
  layer.Submit(req.get());
  sim_.Run();
  bool saw_ok = false;
  for (const auto& [id, status] : results_) {
    if (id == 2) {
      EXPECT_TRUE(status.ok());
      saw_ok = true;
    }
  }
  EXPECT_TRUE(saw_ok);
}

TEST_F(MittSsdTest, StripedRequestRejectedIfAnySubIoBusy) {
  MittSsdPredictor predictor(&sim_, ssd_.get(), profile_, PredictorOptions{}, MittSsdOptions{});
  SsdBlockLayer layer(&sim_, ssd_.get(), &predictor);
  auto erase = MakeIo(1, 3 * params_.page_size, params_.page_size, sched::kNoDeadline,
                      IoOp::kErase);  // Chip 3 busy for 6ms.
  layer.Submit(erase.get());
  // An 8-page read covering chips 0..7 — one sub-IO (chip 3) violates.
  auto req = MakeIo(2, 0, 8 * params_.page_size, Millis(1));
  layer.Submit(req.get());
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_TRUE(results_[0].second.busy());
  sim_.Run();
}

TEST_F(MittSsdTest, ChannelContentionCountsTowardWait) {
  MittSsdPredictor predictor(&sim_, ssd_.get(), profile_, PredictorOptions{}, MittSsdOptions{});
  SsdBlockLayer layer(&sim_, ssd_.get(), &predictor);
  // Load chips 16, 32, 48... (channel 0, different chips) with reads.
  std::vector<std::unique_ptr<IoRequest>> load;
  for (int i = 1; i < 8; ++i) {
    const int chip = i * params_.num_channels;  // All on channel 0.
    load.push_back(
        MakeIo(static_cast<uint64_t>(i), static_cast<int64_t>(chip) * params_.page_size,
               params_.page_size, sched::kNoDeadline));
    layer.Submit(load.back().get());
  }
  auto probe = MakeIo(100, 0, params_.page_size, sched::kNoDeadline);
  const DurationNs wait = predictor.PredictedWait(*probe);
  // 7 outstanding same-channel IOs x ~60us channel delay.
  EXPECT_NEAR(static_cast<double>(wait), static_cast<double>(7 * profile_.channel_delay),
              static_cast<double>(Micros(30)));
  sim_.Run();
}

TEST_F(MittSsdTest, PerChipTrackingAblationOverestimates) {
  MittSsdOptions opt;
  opt.per_chip_tracking = false;
  MittSsdPredictor predictor(&sim_, ssd_.get(), profile_, PredictorOptions{}, opt);
  SsdBlockLayer layer(&sim_, ssd_.get(), &predictor);
  auto erase = MakeIo(1, 0, params_.page_size, sched::kNoDeadline, IoOp::kErase);
  layer.Submit(erase.get());
  // Different chip, but the single-queue strawman predicts the whole device
  // busy -> spurious rejection ("ten IOs going to ten separate channels do
  // not create queueing delays" — unless you model it wrong).
  auto req = MakeIo(2, params_.page_size, params_.page_size, Millis(1));
  layer.Submit(req.get());
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_TRUE(results_[0].second.busy());
  sim_.Run();
}

}  // namespace
}  // namespace mitt::os
