#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/latency_recorder.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/table.h"
#include "src/common/time.h"

namespace mitt {
namespace {

TEST(TimeTest, UnitConstants) {
  EXPECT_EQ(Micros(1), 1000);
  EXPECT_EQ(Millis(1), 1'000'000);
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(13)), 13.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(8) + Millis(500)), 8.5);
}

TEST(TimeTest, FormatPicksUnit) {
  EXPECT_EQ(FormatDuration(820), "820ns");
  EXPECT_EQ(FormatDuration(Micros(5)), "5.000us");
  EXPECT_EQ(FormatDuration(Millis(13)), "13.000ms");
  EXPECT_EQ(FormatDuration(Seconds(2)), "2.000s");
}

TEST(StatusTest, Basics) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_FALSE(Status::Ok().busy());
  EXPECT_TRUE(Status::Ebusy().busy());
  EXPECT_FALSE(Status::Ebusy().ok());
  EXPECT_EQ(Status::Ebusy().name(), "EBUSY");
  EXPECT_EQ(Status::NotFound().name(), "NOT_FOUND");
  EXPECT_EQ(Status(), Status::Ok());
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, ForkIndependent) {
  Rng a(7);
  Rng fork = a.Fork();
  EXPECT_NE(a.Next(), fork.Next());
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, BoundedParetoRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.BoundedPareto(1.0, 100.0, 1.3);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(ZipfianTest, RangeAndSkew) {
  Rng rng(29);
  ZipfianGenerator zipf(1000);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Next(rng);
    EXPECT_LT(v, 1000u);
    if (v < 10) {
      ++head;
    }
  }
  // YCSB-zipfian: the hottest 1% of keys should draw far more than 1% of
  // accesses.
  EXPECT_GT(head, n / 10);
}

TEST(LatencyRecorderTest, Percentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.Record(Millis(i));
  }
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_EQ(rec.Percentile(50), Millis(50));
  EXPECT_EQ(rec.Percentile(95), Millis(95));
  EXPECT_EQ(rec.Percentile(100), Millis(100));
  EXPECT_EQ(rec.Min(), Millis(1));
  EXPECT_EQ(rec.Max(), Millis(100));
  EXPECT_NEAR(rec.MeanNs(), static_cast<double>(Millis(50)) + Millis(1) / 2.0,
              static_cast<double>(Millis(1)));
}

TEST(LatencyRecorderTest, EmptyIsSafe) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Percentile(95), 0);
  EXPECT_EQ(rec.Min(), 0);
  EXPECT_EQ(rec.Max(), 0);
  EXPECT_DOUBLE_EQ(rec.MeanNs(), 0.0);
  EXPECT_TRUE(rec.CdfSeries(10).empty());
}

TEST(LatencyRecorderTest, FractionBelow) {
  LatencyRecorder rec;
  for (int i = 1; i <= 10; ++i) {
    rec.Record(Millis(i));
  }
  EXPECT_DOUBLE_EQ(rec.FractionBelow(Millis(5)), 0.5);
  EXPECT_DOUBLE_EQ(rec.FractionBelow(Millis(100)), 1.0);
  EXPECT_DOUBLE_EQ(rec.FractionBelow(0), 0.0);
}

TEST(LatencyRecorderTest, CdfSeriesMonotone) {
  LatencyRecorder rec;
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    rec.Record(rng.UniformInt(0, Millis(100)));
  }
  const auto cdf = rec.CdfSeries(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].latency, cdf[i - 1].latency);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(ReductionTest, PaperFormula) {
  // Footnote 2: (T_other - T_mitt) / T_other.
  EXPECT_DOUBLE_EQ(ReductionPercent(Millis(10), Millis(13)), 100.0 * 3 / 13);
  EXPECT_DOUBLE_EQ(ReductionPercent(Millis(13), Millis(13)), 0.0);
  EXPECT_LT(ReductionPercent(Millis(20), Millis(13)), 0.0);  // Mitt slower -> negative.
  EXPECT_DOUBLE_EQ(ReductionPercent(Millis(5), DurationNs{0}), 0.0);
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "p95"});
  t.AddRow({"Hedged", "13.0"});
  t.AddRow({"MittCFQ", "10.0"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("MittCFQ  10.0"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(10, 0), "10");
}

}  // namespace
}  // namespace mitt
