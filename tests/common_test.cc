#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "src/common/inline_function.h"
#include "src/common/latency_recorder.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/table.h"
#include "src/common/time.h"

namespace mitt {
namespace {

TEST(TimeTest, UnitConstants) {
  EXPECT_EQ(Micros(1), 1000);
  EXPECT_EQ(Millis(1), 1'000'000);
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(13)), 13.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(8) + Millis(500)), 8.5);
}

TEST(TimeTest, FormatPicksUnit) {
  EXPECT_EQ(FormatDuration(820), "820ns");
  EXPECT_EQ(FormatDuration(Micros(5)), "5.000us");
  EXPECT_EQ(FormatDuration(Millis(13)), "13.000ms");
  EXPECT_EQ(FormatDuration(Seconds(2)), "2.000s");
}

TEST(StatusTest, Basics) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_FALSE(Status::Ok().busy());
  EXPECT_TRUE(Status::Ebusy().busy());
  EXPECT_FALSE(Status::Ebusy().ok());
  EXPECT_EQ(Status::Ebusy().name(), "EBUSY");
  EXPECT_EQ(Status::NotFound().name(), "NOT_FOUND");
  EXPECT_EQ(Status(), Status::Ok());
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, ForkIndependent) {
  Rng a(7);
  Rng fork = a.Fork();
  EXPECT_NE(a.Next(), fork.Next());
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, BoundedParetoRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.BoundedPareto(1.0, 100.0, 1.3);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(ZipfianTest, RangeAndSkew) {
  Rng rng(29);
  ZipfianGenerator zipf(1000);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Next(rng);
    EXPECT_LT(v, 1000u);
    if (v < 10) {
      ++head;
    }
  }
  // YCSB-zipfian: the hottest 1% of keys should draw far more than 1% of
  // accesses.
  EXPECT_GT(head, n / 10);
}

TEST(LatencyRecorderTest, Percentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.Record(Millis(i));
  }
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_EQ(rec.Percentile(50), Millis(50));
  EXPECT_EQ(rec.Percentile(95), Millis(95));
  EXPECT_EQ(rec.Percentile(100), Millis(100));
  EXPECT_EQ(rec.Min(), Millis(1));
  EXPECT_EQ(rec.Max(), Millis(100));
  EXPECT_NEAR(rec.MeanNs(), static_cast<double>(Millis(50)) + Millis(1) / 2.0,
              static_cast<double>(Millis(1)));
}

TEST(LatencyRecorderTest, BatchPercentilesMatchPerCallQueries) {
  LatencyRecorder rec;
  Rng rng(37);
  for (int i = 0; i < 3000; ++i) {
    rec.Record(rng.UniformInt(0, Millis(50)));
  }
  const std::vector<double> ps = {0, 0.1, 1, 25, 50, 90, 95, 99, 99.9, 100};
  const std::vector<DurationNs> batch = rec.Percentiles(ps);
  ASSERT_EQ(batch.size(), ps.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(batch[i], rec.Percentile(ps[i])) << "p" << ps[i];
  }
  // The batch result must track later Records, same as per-call queries.
  rec.Record(Millis(500));
  const double p100[] = {100.0};
  EXPECT_EQ(rec.Percentiles(p100).front(), Millis(500));
}

TEST(LatencyRecorderTest, BatchPercentilesEmptyReturnsZeros) {
  LatencyRecorder rec;
  const std::vector<double> ps = {50, 95, 99};
  const std::vector<DurationNs> batch = rec.Percentiles(ps);
  ASSERT_EQ(batch.size(), ps.size());
  for (const DurationNs v : batch) {
    EXPECT_EQ(v, 0);
  }
}

TEST(LatencyRecorderTest, CdfSeriesTinyPointCounts) {
  // Regression: points=1 used to return only the max, leaving the low end of
  // the distribution unrepresented. The first point must cover the low end.
  LatencyRecorder rec;
  for (int i = 1; i <= 10; ++i) {
    rec.Record(Millis(i));
  }
  const auto one = rec.CdfSeries(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].latency, Millis(1));  // The minimum, not the max.
  EXPECT_DOUBLE_EQ(one[0].fraction, 0.1);
  const auto two = rec.CdfSeries(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].latency, Millis(1));
  EXPECT_DOUBLE_EQ(two[0].fraction, 0.1);
  EXPECT_EQ(two[1].latency, Millis(10));
  EXPECT_DOUBLE_EQ(two[1].fraction, 1.0);
}

TEST(LatencyRecorderTest, EmptyIsSafe) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Percentile(95), 0);
  EXPECT_EQ(rec.Min(), 0);
  EXPECT_EQ(rec.Max(), 0);
  EXPECT_DOUBLE_EQ(rec.MeanNs(), 0.0);
  EXPECT_TRUE(rec.CdfSeries(10).empty());
}

TEST(LatencyRecorderTest, FractionBelow) {
  LatencyRecorder rec;
  for (int i = 1; i <= 10; ++i) {
    rec.Record(Millis(i));
  }
  EXPECT_DOUBLE_EQ(rec.FractionBelow(Millis(5)), 0.5);
  EXPECT_DOUBLE_EQ(rec.FractionBelow(Millis(100)), 1.0);
  EXPECT_DOUBLE_EQ(rec.FractionBelow(0), 0.0);
}

TEST(LatencyRecorderTest, CdfSeriesMonotone) {
  LatencyRecorder rec;
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    rec.Record(rng.UniformInt(0, Millis(100)));
  }
  const auto cdf = rec.CdfSeries(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].latency, cdf[i - 1].latency);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(LatencyRecorderTest, PercentileInterleavedWithRecord) {
  // Exercise the scratch-buffer state machine: query, record more, query
  // again — the second query must see the new samples.
  LatencyRecorder rec;
  for (int i = 1; i <= 50; ++i) {
    rec.Record(Millis(i));
  }
  EXPECT_EQ(rec.Percentile(100), Millis(50));
  EXPECT_EQ(rec.Percentile(50), Millis(25));  // Second query on same snapshot.
  for (int i = 51; i <= 100; ++i) {
    rec.Record(Millis(i));
  }
  EXPECT_EQ(rec.Percentile(100), Millis(100));
  EXPECT_EQ(rec.Percentile(50), Millis(50));
  // And mixing in a full-sort consumer keeps selection queries correct.
  EXPECT_DOUBLE_EQ(rec.FractionBelow(Millis(10)), 0.1);
  EXPECT_EQ(rec.Percentile(95), Millis(95));
}

TEST(InlineFunctionTest, SmallCaptureStoredInline) {
  int a = 3, b = 4;
  InlineFunction<int()> fn = [a, b] { return a * b; };
  static_assert(InlineFunction<int()>::kFitsInline<decltype([a, b] { return a * b; })>);
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(), 12);
}

TEST(InlineFunctionTest, MoveEmptiesSource) {
  InlineFunction<int()> fn = [] { return 7; };
  InlineFunction<int()> moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(moved));
  EXPECT_EQ(moved(), 7);
}

TEST(InlineFunctionTest, MoveOnlyCapture) {
  auto p = std::make_unique<int>(41);
  InlineFunction<int()> fn = [p = std::move(p)] { return *p + 1; };
  EXPECT_EQ(fn(), 42);
  // std::function could not hold this lambda at all (target must be copyable).
  InlineFunction<int()> moved = std::move(fn);
  EXPECT_EQ(moved(), 42);
}

TEST(InlineFunctionTest, OversizedCaptureFallsBackToHeap) {
  std::array<int64_t, 16> big{};  // 128 bytes: over the 48-byte inline buffer.
  big[0] = 5;
  big[15] = 6;
  auto lambda = [big] { return big[0] + big[15]; };
  static_assert(!InlineFunction<int64_t()>::kFitsInline<decltype(lambda)>);
  InlineFunction<int64_t()> fn = lambda;
  EXPECT_EQ(fn(), 11);
  InlineFunction<int64_t()> moved = std::move(fn);  // Steals the heap pointer.
  EXPECT_FALSE(static_cast<bool>(fn));              // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(moved(), 11);
}

TEST(InlineFunctionTest, DestroysCaptureOnResetAndReassign) {
  int destroyed = 0;
  struct Tracker {
    int* counter;
    explicit Tracker(int* c) : counter(c) {}
    Tracker(Tracker&& o) noexcept : counter(o.counter) { o.counter = nullptr; }
    ~Tracker() {
      if (counter != nullptr) {
        ++*counter;
      }
    }
  };
  {
    InlineFunction<void()> fn = [t = Tracker(&destroyed)] {};
    EXPECT_EQ(destroyed, 0);
    fn = nullptr;  // Reset destroys the capture.
    EXPECT_EQ(destroyed, 1);
    EXPECT_FALSE(static_cast<bool>(fn));
  }
  {
    InlineFunction<void()> fn = [t = Tracker(&destroyed)] {};
    fn = [] {};  // Reassignment destroys the old target first.
    EXPECT_EQ(destroyed, 2);
  }
  {
    InlineFunction<void()> fn = [t = Tracker(&destroyed)] {};
  }  // Destructor path.
  EXPECT_EQ(destroyed, 3);
}

TEST(InlineFunctionTest, ForwardsArgumentsAndReturn) {
  InlineFunction<int(int, int)> fn = [](int x, int y) { return x - y; };
  EXPECT_EQ(fn(10, 4), 6);
  InlineFunction<std::string(std::string)> echo = [](std::string s) { return s + "!"; };
  EXPECT_EQ(echo("hi"), "hi!");
}

TEST(ReductionTest, PaperFormula) {
  // Footnote 2: (T_other - T_mitt) / T_other.
  EXPECT_DOUBLE_EQ(ReductionPercent(Millis(10), Millis(13)), 100.0 * 3 / 13);
  EXPECT_DOUBLE_EQ(ReductionPercent(Millis(13), Millis(13)), 0.0);
  EXPECT_LT(ReductionPercent(Millis(20), Millis(13)), 0.0);  // Mitt slower -> negative.
  EXPECT_DOUBLE_EQ(ReductionPercent(Millis(5), DurationNs{0}), 0.0);
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "p95"});
  t.AddRow({"Hedged", "13.0"});
  t.AddRow({"MittCFQ", "10.0"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("MittCFQ  10.0"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(10, 0), "10");
}

}  // namespace
}  // namespace mitt
