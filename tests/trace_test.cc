// src/trace/ suite: on-disk format round-trips, reader validation, the CSV
// importer's transforms, the synthetic-cursor unification, the replay
// driver's sharding contract, and replay through the full Experiment stack
// (including scorecard bit-identity across the worker grid).
//
// The checked-in sample trace (tests/data/, path injected via
// MITT_TEST_DATA_DIR) stands in for a real MSR/SNIA download — CI has no
// network.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/scenario_runner.h"
#include "src/sim/simulator.h"
#include "src/trace/cursor.h"
#include "src/trace/import.h"
#include "src/trace/replay.h"
#include "src/trace/writer.h"
#include "src/workload/synthetic_trace.h"

namespace mitt {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + "trace_test_" + name; }

std::string SampleTracePath() { return std::string(MITT_TEST_DATA_DIR) + "/sample_mix.mitttrace"; }

// Writes `events` to a fresh trace at `path`; returns false on any failure.
bool WriteTrace(const std::string& path, const std::vector<trace::TraceEvent>& events,
                uint32_t block_records) {
  trace::TraceWriter::Options opt;
  opt.block_records = block_records;
  std::string error;
  auto writer = trace::TraceWriter::Open(path, opt, &error);
  if (writer == nullptr) {
    return false;
  }
  for (const trace::TraceEvent& e : events) {
    if (!writer->Append(e)) {
      return false;
    }
  }
  return writer->Finish();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A deterministic multi-block event sequence: 5 streams, mixed ops, varied
// sizes, µs-aligned arrivals.
std::vector<trace::TraceEvent> MakeEvents(size_t n) {
  std::vector<trace::TraceEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    trace::TraceEvent e;
    e.at = static_cast<TimeNs>(i) * Micros(7);
    e.offset = static_cast<int64_t>((i * 37) % 1024) * 4096;
    e.len = (i % 3 == 0) ? 4096u : (i % 3 == 1) ? 8192u : 65536u;
    e.op = (i % 4 == 0) ? trace::kOpWrite : trace::kOpRead;
    e.stream = static_cast<uint32_t>(i % 5);
    events.push_back(e);
  }
  return events;
}

// --- Format round-trip ---

TEST(TraceFormatTest, RoundTripIsExactAcrossBlocks) {
  const std::string path = TempPath("roundtrip.mitttrace");
  const auto events = MakeEvents(1000);  // 64-record blocks -> 16 blocks, partial tail.
  ASSERT_TRUE(WriteTrace(path, events, /*block_records=*/64));

  std::string error;
  auto cursor = trace::FileTraceCursor::Open(path, &error);
  ASSERT_NE(cursor, nullptr) << error;
  EXPECT_EQ(cursor->header().record_count, events.size());
  EXPECT_EQ(cursor->header().num_blocks, (events.size() + 63) / 64);
  EXPECT_EQ(cursor->header().num_streams, 5u);
  EXPECT_EQ(cursor->size_hint(), events.size());

  trace::TraceEvent got;
  for (size_t i = 0; i < events.size(); ++i) {
    ASSERT_TRUE(cursor->Next(&got)) << "at record " << i;
    EXPECT_EQ(got.at, events[i].at);
    EXPECT_EQ(got.offset, events[i].offset);
    EXPECT_EQ(got.len, events[i].len);
    EXPECT_EQ(got.op, events[i].op);
    EXPECT_EQ(got.stream, events[i].stream);
  }
  EXPECT_FALSE(cursor->Next(&got));
  EXPECT_EQ(cursor->position(), events.size());

  // Reset replays the identical sequence.
  cursor->Reset();
  ASSERT_TRUE(cursor->Next(&got));
  EXPECT_EQ(got.at, events[0].at);
  std::remove(path.c_str());
}

TEST(TraceFormatTest, SpanBytesDerivedFromLargestExtent) {
  const std::string path = TempPath("span.mitttrace");
  std::vector<trace::TraceEvent> events(2);
  events[0].at = 0;
  events[0].offset = 1 << 20;
  events[0].len = 4096;
  events[1].at = Micros(1);
  events[1].offset = 8 << 20;
  events[1].len = 8192;
  ASSERT_TRUE(WriteTrace(path, events, 16));

  std::string error;
  auto cursor = trace::FileTraceCursor::Open(path, &error);
  ASSERT_NE(cursor, nullptr) << error;
  EXPECT_EQ(cursor->header().span_bytes, (8 << 20) + 8192);
  std::remove(path.c_str());
}

TEST(TraceFormatTest, SubMicrosecondArrivalsTruncate) {
  const std::string path = TempPath("quantize.mitttrace");
  std::vector<trace::TraceEvent> events(2);
  events[0].at = 999;   // ns -> 0 us on disk.
  events[1].at = 1500;  // ns -> 1 us on disk.
  ASSERT_TRUE(WriteTrace(path, events, 16));

  std::string error;
  auto cursor = trace::FileTraceCursor::Open(path, &error);
  ASSERT_NE(cursor, nullptr) << error;
  trace::TraceEvent got;
  ASSERT_TRUE(cursor->Next(&got));
  EXPECT_EQ(got.at, 0);
  ASSERT_TRUE(cursor->Next(&got));
  EXPECT_EQ(got.at, Micros(1));
  std::remove(path.c_str());
}

TEST(TraceFormatTest, WriterRejectsRegressingArrivals) {
  const std::string path = TempPath("regress.mitttrace");
  std::string error;
  auto writer = trace::TraceWriter::Open(path, {}, &error);
  ASSERT_NE(writer, nullptr) << error;
  trace::TraceEvent e;
  e.at = Micros(10);
  ASSERT_TRUE(writer->Append(e));
  e.at = Micros(9);
  EXPECT_FALSE(writer->Append(e));
  EXPECT_FALSE(writer->error().empty());
  EXPECT_FALSE(writer->Finish());  // The error latches.
  std::remove(path.c_str());
}

TEST(TraceFormatTest, WriterRejectsNegativeArrival) {
  const std::string path = TempPath("negative.mitttrace");
  std::string error;
  auto writer = trace::TraceWriter::Open(path, {}, &error);
  ASSERT_NE(writer, nullptr) << error;
  trace::TraceEvent e;
  e.at = -1;
  EXPECT_FALSE(writer->Append(e));
  EXPECT_FALSE(writer->error().empty());
  std::remove(path.c_str());
}

TEST(TraceFormatTest, SameArrivalTwiceIsAllowed) {
  const std::string path = TempPath("ties.mitttrace");
  std::vector<trace::TraceEvent> events(3);
  events[0].at = events[1].at = events[2].at = Micros(5);
  ASSERT_TRUE(WriteTrace(path, events, 16));
  std::remove(path.c_str());
}

// --- Reader validation: a damaged file must never yield records ---

class TraceValidationTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("valid.mitttrace");
    ASSERT_TRUE(WriteTrace(path_, MakeEvents(200), /*block_records=*/32));
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), trace::kHeaderBytes + trace::kFooterBytes);
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(damaged_.c_str());
  }

  // Writes `bytes` to a sibling path and expects Open to reject it.
  void ExpectRejected(const std::string& bytes, const std::string& what) {
    damaged_ = TempPath("damaged.mitttrace");
    WriteFileBytes(damaged_, bytes);
    std::string error;
    auto cursor = trace::FileTraceCursor::Open(damaged_, &error);
    EXPECT_EQ(cursor, nullptr) << what;
    EXPECT_FALSE(error.empty()) << what;
  }

  std::string path_;
  std::string damaged_;
  std::string bytes_;
};

TEST_F(TraceValidationTest, RejectsMissingFile) {
  std::string error;
  EXPECT_EQ(trace::FileTraceCursor::Open(TempPath("nope.mitttrace"), &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST_F(TraceValidationTest, RejectsBadMagic) {
  std::string bad = bytes_;
  bad[0] ^= 0x5A;
  ExpectRejected(bad, "bad magic");
}

TEST_F(TraceValidationTest, RejectsCorruptHeaderChecksum) {
  std::string bad = bytes_;
  bad[24] ^= 0x01;  // record_count field; the stored FNV no longer matches.
  ExpectRejected(bad, "corrupt header");
}

TEST_F(TraceValidationTest, RejectsTruncatedFile) {
  ExpectRejected(bytes_.substr(0, bytes_.size() - 10), "truncated");
}

TEST_F(TraceValidationTest, RejectsTrailingGarbage) {
  ExpectRejected(bytes_ + std::string(1, '\0'), "trailing garbage");
}

TEST_F(TraceValidationTest, RejectsCorruptIndex) {
  std::string bad = bytes_;
  // Flip a byte inside the index region (between payload end and footer).
  bad[bad.size() - trace::kFooterBytes - 4] ^= 0x01;
  ExpectRejected(bad, "corrupt index");
}

TEST_F(TraceValidationTest, RejectsTornUnfinishedFile) {
  // A writer that dies before Finish() leaves the zeroed placeholder header.
  const std::string torn = TempPath("torn.mitttrace");
  {
    std::string error;
    auto writer = trace::TraceWriter::Open(torn, {}, &error);
    ASSERT_NE(writer, nullptr) << error;
    trace::TraceEvent e;
    for (int i = 0; i < 50; ++i) {
      e.at = Micros(i);
      ASSERT_TRUE(writer->Append(e));
    }
    // No Finish(): destructor just closes the fd.
  }
  std::string error;
  EXPECT_EQ(trace::FileTraceCursor::Open(torn, &error), nullptr);
  EXPECT_FALSE(error.empty());
  std::remove(torn.c_str());
}

// --- Seek-by-time ---

TEST(TraceSeekTest, SeekMatchesLinearScan) {
  const std::string path = TempPath("seek.mitttrace");
  const auto events = MakeEvents(500);  // Arrivals every 7 us -> last at 3493 us.
  ASSERT_TRUE(WriteTrace(path, events, /*block_records=*/32));

  std::string error;
  auto cursor = trace::FileTraceCursor::Open(path, &error);
  ASSERT_NE(cursor, nullptr) << error;

  for (const uint64_t probe_us : {0ULL, 1ULL, 7ULL, 100ULL, 333ULL, 1750ULL, 3493ULL}) {
    // Reference: first event with arrival >= probe, by linear scan.
    size_t expect = 0;
    while (expect < events.size() && trace::ArrivalUs(events[expect].at) < probe_us) {
      ++expect;
    }
    ASSERT_LT(expect, events.size());

    ASSERT_TRUE(cursor->SeekToTimeUs(probe_us)) << "probe " << probe_us;
    trace::TraceEvent got;
    ASSERT_TRUE(cursor->Next(&got)) << "probe " << probe_us;
    EXPECT_EQ(got.at, events[expect].at) << "probe " << probe_us;
    EXPECT_EQ(got.offset, events[expect].offset) << "probe " << probe_us;
  }

  // Every event earlier than the probe -> cursor at end.
  EXPECT_FALSE(cursor->SeekToTimeUs(3494));
  trace::TraceEvent got;
  EXPECT_FALSE(cursor->Next(&got));

  // The cursor still works after a failed seek.
  cursor->Reset();
  ASSERT_TRUE(cursor->Next(&got));
  EXPECT_EQ(got.at, events[0].at);
  std::remove(path.c_str());
}

// --- Synthetic cursor unification ---

TEST(SyntheticCursorTest, MatchesGenerateTrace) {
  const auto& profile = workload::PaperTraceProfiles()[0];
  const auto records = workload::GenerateTrace(profile, Seconds(5), /*seed=*/99);
  ASSERT_FALSE(records.empty());

  workload::SyntheticTraceCursor cursor(profile, Seconds(5), /*seed=*/99, /*stream=*/3);
  trace::TraceEvent got;
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_TRUE(cursor.Next(&got)) << "at record " << i;
    EXPECT_EQ(got.at, records[i].at);
    EXPECT_EQ(got.offset, records[i].offset);
    EXPECT_EQ(static_cast<int64_t>(got.len), records[i].size);
    EXPECT_EQ(got.op == trace::kOpRead, records[i].is_read);
    EXPECT_EQ(got.stream, 3u);  // The ctor's stream id tags every event.
  }
  EXPECT_FALSE(cursor.Next(&got));
}

TEST(SyntheticCursorTest, ResetReplaysIdenticalSequence) {
  const auto& profile = workload::PaperTraceProfiles()[2];
  workload::SyntheticTraceCursor cursor(profile, Seconds(2), /*seed=*/7);

  std::vector<trace::TraceEvent> first;
  trace::TraceEvent got;
  while (cursor.Next(&got)) {
    first.push_back(got);
  }
  ASSERT_FALSE(first.empty());

  cursor.Reset();
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(cursor.Next(&got)) << "at record " << i;
    EXPECT_EQ(got.at, first[i].at);
    EXPECT_EQ(got.offset, first[i].offset);
    EXPECT_EQ(got.len, first[i].len);
    EXPECT_EQ(got.op, first[i].op);
  }
  EXPECT_FALSE(cursor.Next(&got));
}

// --- CSV importer ---

// Imports `csv` through a temp trace and returns the decoded events.
std::vector<trace::TraceEvent> ImportToEvents(const std::string& csv,
                                              const trace::CsvImportOptions& opt,
                                              trace::ImportStats* stats) {
  const std::string path = TempPath("import.mitttrace");
  std::string error;
  trace::TraceWriter::Options wopt;
  wopt.span_bytes = opt.remap_span_bytes;
  auto writer = trace::TraceWriter::Open(path, wopt, &error);
  EXPECT_NE(writer, nullptr) << error;
  std::istringstream in(csv);
  EXPECT_TRUE(trace::ImportBlockCsv(in, writer.get(), opt, stats, &error)) << error;
  EXPECT_TRUE(writer->Finish()) << writer->error();

  std::vector<trace::TraceEvent> events;
  auto cursor = trace::FileTraceCursor::Open(path, &error);
  EXPECT_NE(cursor, nullptr) << error;
  if (cursor != nullptr) {
    trace::TraceEvent e;
    while (cursor->Next(&e)) {
      events.push_back(e);
    }
  }
  std::remove(path.c_str());
  return events;
}

TEST(CsvImportTest, FiletimeTicksDetectedAndRebased) {
  // Two MSR-style lines 2e6 ticks (= 0.2 s) apart.
  const std::string csv =
      "128166372000000000,usr,0,Read,383496192,32768,1331\n"
      "128166372002000000,usr,0,Write,4096,4096,900\n";
  trace::ImportStats stats;
  const auto events = ImportToEvents(csv, {}, &stats);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at, 0);
  EXPECT_EQ(events[1].at, Micros(200000));
  EXPECT_EQ(stats.span_us, 200000u);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(events[0].op, trace::kOpRead);
  EXPECT_EQ(events[1].op, trace::kOpWrite);
  EXPECT_EQ(events[0].len, 32768u);
}

TEST(CsvImportTest, FractionalSecondsDetected) {
  const std::string csv =
      "0.5,host,0,Read,0,4096,10\n"
      "1.25,host,0,Read,4096,4096,10\n";
  trace::ImportStats stats;
  const auto events = ImportToEvents(csv, {}, &stats);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at, 0);
  EXPECT_EQ(events[1].at, Micros(750000));
}

TEST(CsvImportTest, RateScaleCompressesArrivals) {
  const std::string csv =
      "0.0,h,0,Read,0,4096,1\n"
      "1.0,h,0,Read,0,4096,1\n";
  trace::CsvImportOptions opt;
  opt.rate_scale = 4.0;
  trace::ImportStats stats;
  const auto events = ImportToEvents(csv, opt, &stats);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].at, Micros(250000));
}

TEST(CsvImportTest, RemapFoldsOffsetsOntoSpan) {
  const int64_t span = 1 << 20;
  const std::string csv = "0.0,h,0,Read," + std::to_string(5 * span + 123) + ",4096,1\n";
  trace::CsvImportOptions opt;
  opt.remap_span_bytes = span;
  trace::ImportStats stats;
  const auto events = ImportToEvents(csv, opt, &stats);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].offset, 123);
}

TEST(CsvImportTest, StreamsMapInFirstAppearanceOrder) {
  const std::string csv =
      "0.0,usr,0,Read,0,4096,1\n"
      "0.1,usr,1,Read,0,4096,1\n"
      "0.2,srv,0,Read,0,4096,1\n"
      "0.3,usr,0,Read,0,4096,1\n";  // Back to the first pair.
  trace::ImportStats stats;
  const auto events = ImportToEvents(csv, {}, &stats);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].stream, 0u);
  EXPECT_EQ(events[1].stream, 1u);
  EXPECT_EQ(events[2].stream, 2u);
  EXPECT_EQ(events[3].stream, 0u);
  EXPECT_EQ(stats.streams, 3u);
}

TEST(CsvImportTest, MalformedLinesSkippedNotFatal) {
  const std::string csv =
      "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n"  // Header.
      "0.0,h,0,Read,0,4096,1\n"
      "garbage line\n"
      "0.5,h,0,Flush,0,4096,1\n"  // Unknown op.
      "1.0,h,0,Write,0,4096,1\n";
  trace::ImportStats stats;
  const auto events = ImportToEvents(csv, {}, &stats);
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(stats.imported, 2u);
  EXPECT_EQ(stats.skipped_malformed, 3u);
}

TEST(CsvImportTest, UnsortedArrivalsClampedToMonotone) {
  const std::string csv =
      "0.0,h,0,Read,0,4096,1\n"
      "1.0,h,0,Read,0,4096,1\n"
      "0.5,h,0,Read,0,4096,1\n"  // Regresses mid-trace -> clamped to 1.0s.
      "2.0,h,0,Read,0,4096,1\n";
  trace::ImportStats stats;
  const auto events = ImportToEvents(csv, {}, &stats);
  ASSERT_EQ(events.size(), 4u);  // The output file validates, so it's monotone.
  EXPECT_EQ(stats.clamped_unsorted, 1u);
  EXPECT_EQ(events[2].at, events[1].at);
  EXPECT_EQ(events[3].at, Micros(2000000));
}

TEST(CsvImportTest, AllMalformedInputFails) {
  const std::string path = TempPath("empty_import.mitttrace");
  std::string error;
  auto writer = trace::TraceWriter::Open(path, {}, &error);
  ASSERT_NE(writer, nullptr) << error;
  std::istringstream in("no records here\nstill none\n");
  trace::ImportStats stats;
  EXPECT_FALSE(trace::ImportBlockCsv(in, writer.get(), {}, &stats, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

// --- Replay driver: sharding, warmup, open-loop timing ---

struct Dispatched {
  uint32_t stream = 0;
  bool measured = false;
  TimeNs when = 0;
};

TEST(ReplayDriverTest, ShardPartitionIsDisjointAndComplete) {
  const std::string path = TempPath("shards.mitttrace");
  const auto events = MakeEvents(120);  // Streams 0..4.
  ASSERT_TRUE(WriteTrace(path, events, 32));

  const int kShards = 3;
  sim::Simulator sim;
  std::vector<std::unique_ptr<trace::FileTraceCursor>> cursors;
  std::vector<std::unique_ptr<trace::TraceReplayDriver>> drivers;
  std::vector<std::map<uint64_t, Dispatched>> seen(kShards);
  for (int s = 0; s < kShards; ++s) {
    std::string error;
    cursors.push_back(trace::FileTraceCursor::Open(path, &error));
    ASSERT_NE(cursors.back(), nullptr) << error;
    trace::TraceReplayDriver::Options ropt;
    ropt.shard = s;
    ropt.num_shards = kShards;
    drivers.push_back(std::make_unique<trace::TraceReplayDriver>(
        &sim, cursors.back().get(), ropt,
        [&seen, s, &sim](const trace::TraceEvent& e, uint64_t global_index, bool measured) {
          seen[s][global_index] = {e.stream, measured, sim.Now()};
        }));
    drivers.back()->Start();
  }
  sim.RunUntilPredicate([&] {
    for (const auto& d : drivers) {
      if (!d->done()) {
        return false;
      }
    }
    return true;
  });

  // Every global index claimed exactly once, by the shard its stream maps to.
  std::set<uint64_t> all;
  uint64_t total = 0;
  for (int s = 0; s < kShards; ++s) {
    total += drivers[s]->dispatched();
    for (const auto& [index, d] : seen[s]) {
      EXPECT_EQ(d.stream % kShards, static_cast<uint32_t>(s));
      EXPECT_TRUE(all.insert(index).second) << "index " << index << " claimed twice";
    }
  }
  EXPECT_EQ(total, events.size());
  EXPECT_EQ(all.size(), events.size());
  std::remove(path.c_str());
}

TEST(ReplayDriverTest, GlobalIndexAndWarmupMatchUnshardedRun) {
  const std::string path = TempPath("warmup.mitttrace");
  ASSERT_TRUE(WriteTrace(path, MakeEvents(150), 32));

  // (global_index -> measured) must be a pure function of the trace, never
  // of the shard layout.
  auto run = [&](int num_shards) {
    std::map<uint64_t, bool> measured_by_index;
    sim::Simulator sim;
    std::vector<std::unique_ptr<trace::FileTraceCursor>> cursors;
    std::vector<std::unique_ptr<trace::TraceReplayDriver>> drivers;
    for (int s = 0; s < num_shards; ++s) {
      std::string error;
      cursors.push_back(trace::FileTraceCursor::Open(path, &error));
      EXPECT_NE(cursors.back(), nullptr) << error;
      trace::TraceReplayDriver::Options ropt;
      ropt.shard = s;
      ropt.num_shards = num_shards;
      ropt.warmup_events = 60;
      drivers.push_back(std::make_unique<trace::TraceReplayDriver>(
          &sim, cursors.back().get(), ropt,
          [&measured_by_index](const trace::TraceEvent&, uint64_t global_index, bool measured) {
            measured_by_index[global_index] = measured;
          }));
      drivers.back()->Start();
    }
    sim.RunUntilPredicate([&] {
      for (const auto& d : drivers) {
        if (!d->done()) {
          return false;
        }
      }
      return true;
    });
    return measured_by_index;
  };

  const auto unsharded = run(1);
  const auto sharded = run(3);
  ASSERT_EQ(unsharded.size(), 150u);
  EXPECT_EQ(unsharded, sharded);
  // The split itself: first 60 global records unmeasured, rest measured.
  for (const auto& [index, measured] : unsharded) {
    EXPECT_EQ(measured, index >= 60) << "index " << index;
  }
  std::remove(path.c_str());
}

TEST(ReplayDriverTest, MaxEventsIsAGlobalCount) {
  const std::string path = TempPath("maxevents.mitttrace");
  ASSERT_TRUE(WriteTrace(path, MakeEvents(100), 32));

  const int kShards = 2;
  sim::Simulator sim;
  std::vector<std::unique_ptr<trace::FileTraceCursor>> cursors;
  std::vector<std::unique_ptr<trace::TraceReplayDriver>> drivers;
  std::set<uint64_t> indices;
  for (int s = 0; s < kShards; ++s) {
    std::string error;
    cursors.push_back(trace::FileTraceCursor::Open(path, &error));
    ASSERT_NE(cursors.back(), nullptr) << error;
    trace::TraceReplayDriver::Options ropt;
    ropt.shard = s;
    ropt.num_shards = kShards;
    ropt.max_events = 30;
    drivers.push_back(std::make_unique<trace::TraceReplayDriver>(
        &sim, cursors.back().get(), ropt,
        [&indices](const trace::TraceEvent&, uint64_t global_index, bool) {
          indices.insert(global_index);
        }));
    drivers.back()->Start();
  }
  sim.RunUntilPredicate(
      [&] { return drivers[0]->done() && drivers[1]->done(); });

  // The first 30 global records, each exactly once — across both shards.
  EXPECT_EQ(indices.size(), 30u);
  EXPECT_EQ(drivers[0]->dispatched() + drivers[1]->dispatched(), 30u);
  for (const uint64_t index : indices) {
    EXPECT_LT(index, 30u);
  }
  std::remove(path.c_str());
}

TEST(ReplayDriverTest, RateScaleCompressesDispatchTimes) {
  const std::string path = TempPath("ratescale.mitttrace");
  std::vector<trace::TraceEvent> events(2);
  events[0].at = Micros(1000);
  events[1].at = Micros(3000);
  ASSERT_TRUE(WriteTrace(path, events, 16));

  sim::Simulator sim;
  std::string error;
  auto cursor = trace::FileTraceCursor::Open(path, &error);
  ASSERT_NE(cursor, nullptr) << error;
  trace::TraceReplayDriver::Options ropt;
  ropt.rate_scale = 2.0;
  std::vector<TimeNs> fired;
  trace::TraceReplayDriver driver(
      &sim, cursor.get(), ropt,
      [&fired, &sim](const trace::TraceEvent&, uint64_t, bool) { fired.push_back(sim.Now()); });
  driver.Start();
  sim.RunUntilPredicate([&] { return driver.done(); });

  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], Micros(500));
  EXPECT_EQ(fired[1], Micros(1500));
  EXPECT_EQ(driver.reads_dispatched() + driver.writes_dispatched(), 2u);
  std::remove(path.c_str());
}

// --- Replay through the full Experiment stack ---

harness::ExperimentOptions SmallReplayWorld() {
  harness::ExperimentOptions opt;
  opt.num_nodes = 2;
  opt.num_clients = 0;
  opt.num_keys_per_node = 1 << 14;
  opt.backend = os::BackendKind::kSsd;
  opt.noise = harness::NoiseKind::kNone;
  opt.seed = 7;
  opt.replay.trace_path = SampleTracePath();
  opt.replay.max_events = 600;
  opt.replay.warmup_events = 100;
  return opt;
}

TEST(ExperimentReplayTest, SampleTraceDrivesOpenLoopGets) {
  harness::Experiment experiment(SmallReplayWorld());
  const harness::RunResult result = experiment.Run(harness::StrategyKind::kMittos);
  EXPECT_EQ(result.replay_events, 600u);
  EXPECT_EQ(result.replay_trace_reads + result.replay_trace_writes, 600u);
  EXPECT_GT(result.replay_trace_reads, 0u);
  EXPECT_GT(result.replay_trace_writes, 0u);
  EXPECT_EQ(result.requests, 600u);  // One Get completion per arrival.
  // Exactly the post-warmup events are measured.
  EXPECT_EQ(result.get_latencies.count(), 500u);
  EXPECT_EQ(result.user_latencies.count(), 500u);
  EXPECT_GT(result.user_latencies.Percentile(50), 0);
}

TEST(ExperimentReplayTest, SyntheticProfileSourceWorks) {
  harness::ExperimentOptions opt = SmallReplayWorld();
  opt.replay.trace_path.clear();
  opt.replay.synthetic_profile = 0;
  opt.replay.synthetic_duration = Seconds(2);
  opt.replay.max_events = 300;
  opt.replay.warmup_events = 50;
  harness::Experiment experiment(opt);
  const harness::RunResult result = experiment.Run(harness::StrategyKind::kBase);
  EXPECT_EQ(result.replay_events, 300u);
  EXPECT_EQ(result.get_latencies.count(), 250u);
}

TEST(ExperimentReplayTest, MissingTraceThrows) {
  harness::ExperimentOptions opt = SmallReplayWorld();
  opt.replay.trace_path = TempPath("does_not_exist.mitttrace");
  harness::Experiment experiment(opt);
  EXPECT_THROW(experiment.Run(harness::StrategyKind::kBase), std::runtime_error);
}

TEST(ExperimentReplayTest, ReplayKeyForIsDeterministicAndInRange) {
  const uint64_t keyspace = 1 << 18;
  const uint64_t a = harness::Experiment::ReplayKeyFor(4096 * 17, 2, keyspace);
  EXPECT_EQ(a, harness::Experiment::ReplayKeyFor(4096 * 17, 2, keyspace));
  EXPECT_LT(a, keyspace);
  // Sequential 4 KB offsets in one stream stay sequential in key space.
  const uint64_t b = harness::Experiment::ReplayKeyFor(4096 * 18, 2, keyspace);
  EXPECT_EQ(b, (a + 1) % keyspace);
  // Streams displace each other.
  EXPECT_NE(a, harness::Experiment::ReplayKeyFor(4096 * 17, 3, keyspace));
}

// The CI-facing contract: identical replay scorecards at every point of the
// {trial workers} x {intra workers} grid. Mirrors bench_replay part 3 at
// test-sized event counts; num_shards=2 keeps the conservative-PDES path in
// play.
TEST(ExperimentReplayTest, ScorecardBitIdenticalAcrossWorkerGrid) {
  auto scorecard = [](int trial_workers, int intra_workers) {
    harness::ScenarioRunner::Options opt;
    opt.base = SmallReplayWorld();
    opt.base.seed = 20170919;
    opt.base.num_nodes = 4;
    opt.base.num_shards = 2;
    opt.base.intra_workers = intra_workers;
    opt.base.replay.max_events = 800;
    opt.base.replay.warmup_events = 80;
    opt.strategies = {harness::StrategyKind::kBase, harness::StrategyKind::kMittos};
    opt.workers = trial_workers;
    harness::ScenarioRunner runner(opt);
    const auto scores = runner.Run({{"healthy", {}, {}}});
    return harness::ScorecardJson(scores, runner.slo_deadline());
  };

  const std::string reference = scorecard(1, 1);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(scorecard(1, 2), reference);
  EXPECT_EQ(scorecard(4, 1), reference);
  EXPECT_EQ(scorecard(4, 2), reference);
}

}  // namespace
}  // namespace mitt
