#include "src/chaos/explorer.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "src/chaos/mutator.h"
#include "src/chaos/shrinker.h"

namespace mitt::chaos {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string SearchReport::ToJson() const {
  std::string j = "{\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  \"trials\": %d,\n  \"shrink_trials\": %d,\n  \"corpus_size\": %zu,\n"
                "  \"coverage_features\": %zu,\n  \"grid_checks\": %d,\n"
                "  \"hit_time_budget\": %s,\n",
                trials, shrink_trials, corpus_size, coverage_features, grid_checks,
                hit_time_budget ? "true" : "false");
  j += buf;
  j += "  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"oracle\": \"" + JsonEscape(f.oracle) + "\", \"strategy\": \"" +
         JsonEscape(f.strategy) + "\", \"detail\": \"" + JsonEscape(f.detail) + "\", ";
    std::snprintf(buf, sizeof(buf),
                  "\"found_at_trial\": %d, \"shrink_trials\": %d, \"plan_episodes\": %zu, "
                  "\"shrunk_episodes\": %zu}",
                  f.found_at_trial, f.shrink_trials, f.plan.size(), f.shrunk.size());
    j += buf;
  }
  j += findings.empty() ? "]\n" : "\n  ]\n";
  j += "}\n";
  return j;
}

SearchReport RunSearch(const ExplorerOptions& options) {
  SearchReport report;
  CoverageMap coverage;
  std::vector<fault::FaultPlan> corpus;
  Rng rng(options.seed);

  MutatorOptions mopt;
  mopt.num_nodes = options.world.num_nodes;
  mopt.horizon = options.world.horizon;
  PlanMutator mutator(mopt, options.seed ^ 0xC4A0'5EEDULL);

  const int64_t deadline_ms =
      options.time_budget_ms > 0 ? NowMs() + options.time_budget_ms : 0;
  auto out_of_time = [&] {
    return deadline_ms != 0 && NowMs() >= deadline_ms;
  };

  // One trial: run, check, harvest coverage, maybe shrink, maybe admit.
  auto run_one = [&](const fault::FaultPlan& plan) {
    ++report.trials;
    const TrialOutcome outcome =
        RunChaosTrial(options.world, plan, options.trial_workers, options.intra_workers);

    for (const Violation& v : outcome.violations) {
      bool seen = false;
      for (const Finding& f : report.findings) {
        if (f.oracle == v.oracle) {
          seen = true;
          break;
        }
      }
      if (seen || static_cast<int>(report.findings.size()) >= options.max_findings) {
        continue;
      }
      Finding f;
      f.oracle = v.oracle;
      f.strategy = v.strategy;
      f.detail = v.detail;
      f.plan = plan;
      f.found_at_trial = report.trials;
      ShrinkOptions sopt;
      sopt.max_trials = options.shrink_budget;
      sopt.trial_workers = options.trial_workers;
      sopt.intra_workers = options.intra_workers;
      const ShrinkResult shrunk = ShrinkPlan(options.world, plan, v.oracle, sopt);
      f.shrunk = shrunk.reproduced ? shrunk.plan : plan;
      f.shrink_trials = shrunk.trials_used;
      report.shrink_trials += shrunk.trials_used;
      report.findings.push_back(std::move(f));
    }

    const std::vector<Feature> features = CollectFeatures(plan, outcome.results);
    if (coverage.AddAll(features) > 0 && corpus.size() < options.max_corpus) {
      // Novel behavior: candidate corpus entrant. The grid determinism
      // oracle re-runs every Nth entrant at the far corner of the worker
      // grid — same world, same plan, so any fingerprint drift is an engine
      // or merge-order bug, reported like any other oracle.
      bool admit = true;
      if (options.grid_check_every > 0 &&
          static_cast<int>(corpus.size()) % options.grid_check_every == 0) {
        ++report.grid_checks;
        const TrialOutcome far = RunChaosTrial(options.world, plan, /*trial_workers=*/4,
                                               /*intra_workers=*/2);
        if (far.fingerprint != outcome.fingerprint &&
            static_cast<int>(report.findings.size()) < options.max_findings) {
          Finding f;
          f.oracle = "determinism";
          f.strategy = "grid";
          f.detail = "fingerprint differs between (trial=" +
                     std::to_string(options.trial_workers) + ",intra=" +
                     std::to_string(options.intra_workers) + ") and (4,2)";
          f.plan = plan;
          f.shrunk = plan;  // A nondeterministic trial cannot be ddmin-shrunk.
          f.found_at_trial = report.trials;
          report.findings.push_back(std::move(f));
          admit = false;
        }
      }
      if (admit) {
        corpus.push_back(plan);
      }
    }
  };

  // --- Seed round: the empty plan plus a few GenerateChaosPlan mixes ---
  run_one(fault::FaultPlan());
  for (int i = 0; i < options.initial_seeds && report.trials < options.max_trials; ++i) {
    if (out_of_time() || static_cast<int>(report.findings.size()) >= options.max_findings) {
      break;
    }
    run_one(mutator.RandomPlan());
  }

  // --- Mutation loop ---
  while (report.trials < options.max_trials &&
         static_cast<int>(report.findings.size()) < options.max_findings) {
    if (out_of_time()) {
      report.hit_time_budget = true;
      break;
    }
    fault::FaultPlan child;
    if (corpus.empty()) {
      child = mutator.RandomPlan();
    } else {
      const double draw = rng.NextDouble();
      if (draw < 0.15) {
        child = mutator.RandomPlan();
      } else if (draw < 0.30 && corpus.size() >= 2) {
        const size_t a = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(corpus.size()) - 1));
        const size_t b = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(corpus.size()) - 1));
        child = mutator.Splice(corpus[a], corpus[b]);
      } else {
        const size_t p = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(corpus.size()) - 1));
        child = mutator.Mutate(corpus[p]);
      }
    }
    run_one(child);
  }

  report.corpus_size = corpus.size();
  report.coverage_features = coverage.size();
  return report;
}

}  // namespace mitt::chaos
