// The chaos-search trial world (DESIGN.md §4j).
//
// One ChaosWorldOptions describes a small, fast, fault-rich simulation —
// paper-scale topology (3 nodes, pinned primary, light contention) with a
// FaultPlan injected on top — that the explorer can afford to run hundreds of
// times. RunChaosTrial() replays ONE FaultPlan against every configured
// strategy with identical seeds, harvests the invariant-oracle ground truth
// (harness::OracleHarvest), checks the oracles, and produces a canonical
// fingerprint string for the determinism oracle: two runs of the same
// (world, plan) must fingerprint byte-identically at ANY
// MITT_TRIAL_WORKERS x MITT_INTRA_WORKERS point, or the engine itself is the
// bug. The shard count is pinned (never auto) because per-shard strategy
// seeds are salted — an unsharded run is a *different* (equally valid)
// simulation, not a comparison point.

#ifndef MITTOS_CHAOS_WORLD_H_
#define MITTOS_CHAOS_WORLD_H_

#include <string>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/harness/experiment.h"

namespace mitt::chaos {

struct ChaosWorldOptions {
  int num_nodes = 3;
  int num_clients = 4;
  size_t requests = 360;     // Measured closed-loop requests.
  size_t warmup = 40;
  DurationNs deadline = Millis(12);
  TimeNs horizon = Millis(700);  // Fault plans live in [0, horizon).
  // Pinned shard count (0 would auto-resolve to 1 at this scale; 2 keeps the
  // cross-shard machinery — mailboxes, barriers, global ticks — inside every
  // chaos trial, where the grid oracle can catch it drifting).
  int num_shards = 2;
  uint64_t seed = 42;
  // Ground-truth plant: reintroduces the denied-retry/late-EBUSY liveness
  // hang (client::ResilientOptions::test_swallow_late_reply). The completion
  // oracle must find it; the acceptance demo shrinks it.
  bool inject_bug = false;
  // Tenant overlay: multi-tenant drivers + SLO-aware placement controller,
  // which arms the placement-validity oracle.
  bool tenants = false;
  std::vector<harness::StrategyKind> strategies = {
      harness::StrategyKind::kMittos, harness::StrategyKind::kMittosResilient};
};

// The full harness options for one (world, plan) trial. Exposed so tests can
// tweak a single knob without re-deriving the recipe.
harness::ExperimentOptions MakeExperimentOptions(const ChaosWorldOptions& world,
                                                 const fault::FaultPlan& plan);

// One invariant-oracle violation. `oracle` is the stable machine-readable
// name (corpus files key expectations on it); `strategy` the RunResult name
// it fired on; `detail` the human-readable evidence.
struct Violation {
  std::string oracle;
  std::string strategy;
  std::string detail;
};

struct TrialOutcome {
  std::vector<harness::RunResult> results;  // One per world.strategies entry.
  std::vector<Violation> violations;
  std::string fingerprint;  // Canonical scorecard (determinism oracle input).
};

// Replays `plan` against every strategy in `world` (fresh simulation each,
// identical seeds) and checks every post-run oracle. `trial_workers` /
// `intra_workers` only change wall-clock parallelism; the outcome (results,
// violations, fingerprint) is bit-identical across the whole grid.
TrialOutcome RunChaosTrial(const ChaosWorldOptions& world, const fault::FaultPlan& plan,
                           int trial_workers = 1, int intra_workers = 1);

// Canonical fingerprint of one run: counters, latency percentiles, the
// oracle harvest, and FNV-1a hashes of the fault and breaker logs. Stable
// across worker grids by construction (everything merged in shard/trial
// order upstream).
std::string ResultFingerprint(const harness::RunResult& result);

}  // namespace mitt::chaos

#endif  // MITTOS_CHAOS_WORLD_H_
