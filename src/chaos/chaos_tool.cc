// chaos_tool — the chaos-search command line (DESIGN.md §4j).
//
//   chaos_tool search [--trials N] [--seed S] [--budget-ms MS] [--inject-bug]
//                     [--tenants] [--out-dir DIR] [--json FILE] [--expect-find]
//       Coverage-guided search. Writes each finding's minimized reproducer to
//       DIR/<oracle>.chaos (when --out-dir is given) and the machine-readable
//       report to FILE. --expect-find exits 1 when NO violation was found —
//       the CI mode that proves the planted bug stays findable.
//
//   chaos_tool replay FILE...
//       Re-executes each corpus file across the full worker grid
//       {trial 1,4} x {intra 1,2}. Exit 2 on any fingerprint mismatch
//       (determinism violation), exit 1 when an expected oracle does not
//       fire or an unexpected one does. Exit 0: every file reproduced
//       bit-identically and matched its expectations.
//
//   chaos_tool shrink FILE [--out FILE2] [--budget N]
//       Re-minimizes FILE's plan against its first expected oracle.
//
// Exit codes are the CI contract: 0 ok, 1 expectation failure, 2 determinism
// failure, 64 usage / IO error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/chaos/corpus.h"
#include "src/chaos/explorer.h"
#include "src/chaos/shrinker.h"
#include "src/chaos/world.h"

namespace {

using namespace mitt;

int Usage() {
  std::fprintf(stderr,
               "usage: chaos_tool search [--trials N] [--seed S] [--budget-ms MS]\n"
               "                         [--inject-bug] [--tenants] [--out-dir DIR]\n"
               "                         [--json FILE] [--expect-find]\n"
               "       chaos_tool replay FILE...\n"
               "       chaos_tool shrink FILE [--out FILE2] [--budget N]\n");
  return 64;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    return false;
  }
  f << content;
  f.flush();
  return static_cast<bool>(f);
}

int RunSearchCmd(int argc, char** argv) {
  chaos::ExplorerOptions opt;
  std::string out_dir;
  std::string json_path;
  bool expect_find = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--trials") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opt.max_trials = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opt.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--budget-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opt.time_budget_ms = std::atoll(v);
    } else if (arg == "--inject-bug") {
      opt.world.inject_bug = true;
    } else if (arg == "--tenants") {
      opt.world.tenants = true;
    } else if (arg == "--out-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      out_dir = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return Usage();
      json_path = v;
    } else if (arg == "--expect-find") {
      expect_find = true;
    } else {
      return Usage();
    }
  }

  const chaos::SearchReport report = chaos::RunSearch(opt);
  std::printf("chaos search: %d trials (+%d shrink), corpus=%zu, features=%zu, findings=%zu\n",
              report.trials, report.shrink_trials, report.corpus_size,
              report.coverage_features, report.findings.size());
  for (const chaos::Finding& f : report.findings) {
    std::printf("  [%s] %s: %s\n    plan %zu episodes -> shrunk %zu (in %d shrink trials)\n",
                f.oracle.c_str(), f.strategy.c_str(), f.detail.c_str(), f.plan.size(),
                f.shrunk.size(), f.shrink_trials);
    if (!out_dir.empty()) {
      chaos::CorpusEntry entry;
      entry.world = opt.world;
      entry.plan = f.shrunk;
      entry.expect = {f.oracle};
      entry.note = "minimized by chaos_tool search (found at trial " +
                   std::to_string(f.found_at_trial) + ")";
      const std::string path = out_dir + "/" + f.oracle + ".chaos";
      std::string error;
      if (!chaos::SaveCorpusEntry(path, entry, &error)) {
        std::fprintf(stderr, "chaos_tool: %s\n", error.c_str());
        return 64;
      }
      std::printf("    wrote %s\n", path.c_str());
    }
  }
  if (!json_path.empty() && !WriteFile(json_path, report.ToJson())) {
    std::fprintf(stderr, "chaos_tool: cannot write %s\n", json_path.c_str());
    return 64;
  }
  if (expect_find && report.findings.empty()) {
    std::fprintf(stderr, "chaos_tool: --expect-find: no violation found\n");
    return 1;
  }
  return 0;
}

// Grid replay of one corpus entry. Returns 0/1/2 per the exit-code contract.
int ReplayEntry(const std::string& path, const chaos::CorpusEntry& entry) {
  struct GridPoint {
    int trial;
    int intra;
  };
  const GridPoint grid[] = {{1, 1}, {4, 1}, {1, 2}, {4, 2}};
  std::string reference;
  std::vector<chaos::Violation> violations;
  for (const GridPoint g : grid) {
    const chaos::TrialOutcome outcome =
        chaos::RunChaosTrial(entry.world, entry.plan, g.trial, g.intra);
    if (reference.empty()) {
      reference = outcome.fingerprint;
      violations = outcome.violations;
    } else if (outcome.fingerprint != reference) {
      std::fprintf(stderr, "%s: DETERMINISM: fingerprint differs at trial=%d intra=%d\n",
                   path.c_str(), g.trial, g.intra);
      return 2;
    }
  }

  int rc = 0;
  for (const std::string& expected : entry.expect) {
    bool fired = false;
    for (const chaos::Violation& v : violations) {
      if (v.oracle == expected) {
        fired = true;
        break;
      }
    }
    if (!fired) {
      std::fprintf(stderr, "%s: expected oracle '%s' did not fire\n", path.c_str(),
                   expected.c_str());
      rc = 1;
    }
  }
  for (const chaos::Violation& v : violations) {
    bool expected = false;
    for (const std::string& e : entry.expect) {
      if (e == v.oracle) {
        expected = true;
        break;
      }
    }
    if (!expected) {
      std::fprintf(stderr, "%s: unexpected violation [%s] %s: %s\n", path.c_str(),
                   v.oracle.c_str(), v.strategy.c_str(), v.detail.c_str());
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("%s: ok (%zu episodes, %zu expected oracle(s), grid bit-identical)\n",
                path.c_str(), entry.plan.size(), entry.expect.size());
  }
  return rc;
}

int RunReplayCmd(int argc, char** argv) {
  if (argc < 1) {
    return Usage();
  }
  int rc = 0;
  for (int i = 0; i < argc; ++i) {
    chaos::CorpusEntry entry;
    std::string error;
    if (!chaos::LoadCorpusEntry(argv[i], &entry, &error)) {
      std::fprintf(stderr, "chaos_tool: %s\n", error.c_str());
      return 64;
    }
    const int entry_rc = ReplayEntry(argv[i], entry);
    if (entry_rc > rc) {
      rc = entry_rc;
    }
  }
  return rc;
}

int RunShrinkCmd(int argc, char** argv) {
  if (argc < 1) {
    return Usage();
  }
  const std::string in_path = argv[0];
  std::string out_path = in_path;
  chaos::ShrinkOptions sopt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      out_path = v;
    } else if (arg == "--budget") {
      const char* v = next();
      if (v == nullptr) return Usage();
      sopt.max_trials = std::atoi(v);
    } else {
      return Usage();
    }
  }
  chaos::CorpusEntry entry;
  std::string error;
  if (!chaos::LoadCorpusEntry(in_path, &entry, &error)) {
    std::fprintf(stderr, "chaos_tool: %s\n", error.c_str());
    return 64;
  }
  if (entry.expect.empty()) {
    std::fprintf(stderr, "chaos_tool: %s has no 'expect' line to shrink against\n",
                 in_path.c_str());
    return 64;
  }
  const chaos::ShrinkResult result =
      chaos::ShrinkPlan(entry.world, entry.plan, entry.expect.front(), sopt);
  if (!result.reproduced) {
    std::fprintf(stderr, "chaos_tool: oracle '%s' did not fire on %s — nothing to shrink\n",
                 entry.expect.front().c_str(), in_path.c_str());
    return 1;
  }
  std::printf("shrink: %zu -> %zu episodes in %d trials\n", entry.plan.size(),
              result.plan.size(), result.trials_used);
  entry.plan = result.plan;
  if (!chaos::SaveCorpusEntry(out_path, entry, &error)) {
    std::fprintf(stderr, "chaos_tool: %s\n", error.c_str());
    return 64;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string cmd = argv[1];
  if (cmd == "search") {
    return RunSearchCmd(argc - 2, argv + 2);
  }
  if (cmd == "replay") {
    return RunReplayCmd(argc - 2, argv + 2);
  }
  if (cmd == "shrink") {
    return RunShrinkCmd(argc - 2, argv + 2);
  }
  return Usage();
}
