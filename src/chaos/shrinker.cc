#include "src/chaos/shrinker.h"

#include <algorithm>

namespace mitt::chaos {
namespace {

using fault::FaultEpisode;
using fault::FaultKind;

bool OracleFires(const ChaosWorldOptions& world, const std::vector<FaultEpisode>& episodes,
                 const std::string& oracle, const ShrinkOptions& options, int* trials) {
  ++*trials;
  const TrialOutcome outcome = RunChaosTrial(world, fault::FaultPlan(episodes),
                                             options.trial_workers, options.intra_workers);
  for (const Violation& v : outcome.violations) {
    if (v.oracle == oracle) {
      return true;
    }
  }
  return false;
}

}  // namespace

ShrinkResult ShrinkPlan(const ChaosWorldOptions& world, const fault::FaultPlan& plan,
                        const std::string& oracle, const ShrinkOptions& options) {
  ShrinkResult result;
  result.plan = plan;
  std::vector<FaultEpisode> current = plan.episodes();

  if (!OracleFires(world, current, oracle, options, &result.trials_used)) {
    return result;  // Not reproducible: hand the caller the input untouched.
  }
  result.reproduced = true;

  // --- Phase 1: ddmin over episode subsets ---
  size_t chunk = std::max<size_t>(1, current.size() / 2);
  while (chunk >= 1 && current.size() > 1 && result.trials_used < options.max_trials) {
    bool dropped_any = false;
    for (size_t at = 0; at < current.size() && result.trials_used < options.max_trials;) {
      const size_t len = std::min(chunk, current.size() - at);
      std::vector<FaultEpisode> candidate;
      candidate.reserve(current.size() - len);
      candidate.insert(candidate.end(), current.begin(),
                       current.begin() + static_cast<ptrdiff_t>(at));
      candidate.insert(candidate.end(), current.begin() + static_cast<ptrdiff_t>(at + len),
                       current.end());
      if (!candidate.empty() &&
          OracleFires(world, candidate, oracle, options, &result.trials_used)) {
        current = std::move(candidate);  // Chunk was irrelevant; keep position.
        dropped_any = true;
      } else {
        at += len;
      }
    }
    if (chunk == 1 && !dropped_any) {
      break;  // 1-minimal.
    }
    chunk = chunk > 1 ? chunk / 2 : 1;
  }

  // --- Phase 2: per-episode duration halving ---
  for (size_t i = 0; i < current.size(); ++i) {
    while (current[i].duration >= Millis(10) && result.trials_used < options.max_trials) {
      std::vector<FaultEpisode> candidate = current;
      candidate[i].duration /= 2;
      if (OracleFires(world, candidate, oracle, options, &result.trials_used)) {
        current = std::move(candidate);
      } else {
        break;
      }
    }
  }

  // --- Phase 3: per-episode severity weakening toward benign ---
  for (size_t i = 0; i < current.size(); ++i) {
    for (int step = 0; step < 6 && result.trials_used < options.max_trials; ++step) {
      std::vector<FaultEpisode> candidate = current;
      FaultEpisode& e = candidate[i];
      if (e.kind == FaultKind::kNetworkDrop) {
        e.severity *= 0.5;
        if (e.severity < 0.05) {
          break;
        }
      } else if (e.severity > 1.0) {
        e.severity = 1.0 + (e.severity - 1.0) * 0.5;
      } else {
        break;  // Severity-free kind (pause, partition, crash): nothing to weaken.
      }
      if (OracleFires(world, candidate, oracle, options, &result.trials_used)) {
        current = std::move(candidate);
      } else {
        break;
      }
    }
  }

  result.plan = fault::FaultPlan(std::move(current));
  return result;
}

}  // namespace mitt::chaos
