// Automatic schedule shrinking: delta-debugging a violating FaultPlan down
// to a minimal reproducer.
//
// Given a plan that trips oracle O, the shrinker repeatedly re-runs the
// trial asking "does O still fire?" while
//   1. ddmin over episode subsets — drop chunks of episodes, halving the
//      chunk size when no chunk can be dropped (Zeller's classic dd-min, so
//      the result is 1-minimal: no single episode can be removed);
//   2. per-episode duration halving — each surviving episode's duration is
//      halved while O keeps firing;
//   3. per-episode severity weakening — severities stepped toward benign
//      (multipliers toward 1.0, drop probabilities halved) while O fires.
//
// Everything is deterministic: the trial world is seeded, the shrink order
// is fixed, and the budget bounds the number of trial executions, so the
// same (world, plan, oracle) shrinks to the same reproducer on every run.

#ifndef MITTOS_CHAOS_SHRINKER_H_
#define MITTOS_CHAOS_SHRINKER_H_

#include <string>

#include "src/chaos/world.h"
#include "src/fault/fault_plan.h"

namespace mitt::chaos {

struct ShrinkOptions {
  int max_trials = 80;  // Trial-execution budget across all three phases.
  // Worker knobs for the re-run trials (wall clock only, never results).
  int trial_workers = 1;
  int intra_workers = 1;
};

struct ShrinkResult {
  fault::FaultPlan plan;   // The minimized plan (== input when nothing held).
  int trials_used = 0;
  bool reproduced = false;  // False: the oracle never fired even on the input.
};

// Minimizes `plan` while `oracle` (a CheckOracles name) keeps firing on
// `world`. The returned plan always still trips the oracle when
// `reproduced` is true.
ShrinkResult ShrinkPlan(const ChaosWorldOptions& world, const fault::FaultPlan& plan,
                        const std::string& oracle, const ShrinkOptions& options);

}  // namespace mitt::chaos

#endif  // MITTOS_CHAOS_SHRINKER_H_
