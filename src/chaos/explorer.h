// Coverage-guided chaos search (the PR's tentpole, DESIGN.md §4j).
//
// The explorer maintains a corpus of "interesting" FaultPlans. Each round it
// picks a parent (or two) from the corpus, derives a child — fresh
// GenerateChaosPlan draw, structural mutation, or cross-plan splice — runs
// one chaos trial, and:
//
//   * checks every invariant oracle; a violation with a not-yet-seen oracle
//     name is shrunk (ShrinkPlan) into a Finding carrying both the original
//     and the minimized plan;
//   * computes the trial's behavior-coverage features; a child contributing
//     novel features enters the corpus (optionally after a worker-grid
//     determinism check — the scorecard must be byte-identical at
//     {trial 1,4} x {intra 1,2}, or the finding IS the engine).
//
// Determinism: the mutation stream is seeded and corpus picks come from the
// same Rng, so a search with time_budget_ms == 0 is fully reproducible;
// wall-clock budgets (CI) trade that for boundedness.

#ifndef MITTOS_CHAOS_EXPLORER_H_
#define MITTOS_CHAOS_EXPLORER_H_

#include <string>
#include <vector>

#include "src/chaos/coverage.h"
#include "src/chaos/world.h"
#include "src/fault/fault_plan.h"

namespace mitt::chaos {

struct ExplorerOptions {
  ChaosWorldOptions world;
  int max_trials = 150;
  uint64_t seed = 1;
  int initial_seeds = 3;   // GenerateChaosPlan-derived corpus seeds.
  int shrink_budget = 80;  // Trial budget per finding's shrink.
  int max_findings = 3;    // Stop after this many distinct-oracle findings.
  size_t max_corpus = 64;
  // Re-run corpus entrants at (trial=4, intra=2) and compare fingerprints
  // against the (1,1) run — the determinism oracle. Applied to every Nth
  // novel entrant (1 = all); 0 disables.
  int grid_check_every = 4;
  // Wall-clock bound in milliseconds; 0 = none (fully deterministic search).
  int64_t time_budget_ms = 0;
  // Worker knobs for trial execution (wall clock only, never results).
  int trial_workers = 1;
  int intra_workers = 1;
};

struct Finding {
  std::string oracle;
  std::string strategy;
  std::string detail;
  fault::FaultPlan plan;     // The child that first tripped the oracle.
  fault::FaultPlan shrunk;   // The minimized reproducer.
  int found_at_trial = 0;
  int shrink_trials = 0;
};

struct SearchReport {
  int trials = 0;            // Search trials (excludes shrink re-runs).
  int shrink_trials = 0;
  size_t corpus_size = 0;
  size_t coverage_features = 0;
  int grid_checks = 0;
  bool hit_time_budget = false;
  std::vector<Finding> findings;

  // Machine-readable summary (coverage + violations) for the CI artifact.
  std::string ToJson() const;
};

SearchReport RunSearch(const ExplorerOptions& options);

}  // namespace mitt::chaos

#endif  // MITTOS_CHAOS_EXPLORER_H_
