// Structural FaultPlan mutations for the chaos explorer.
//
// The explorer's children come from three generators:
//   * RandomPlan()  — a fresh GenerateChaosPlan draw with randomized kind
//                     toggles and a randomized sub-seed (global exploration);
//   * Mutate(p)     — 1..3 structural edits of a corpus parent: drop, split,
//                     merge, shift, stretch/shrink, intensify/weaken,
//                     retarget, add (local exploration);
//   * Splice(a, b)  — a's episodes for one kind swapped against b's (crosses
//                     two interesting schedules).
//
// Every generated plan is canonicalized: sorted into plan order, severities
// clamped to the kind's legal range, and same-target overlapping episodes
// dropped (keep-first) so the injector's last-write-wins overlap semantics
// never silently distort a child — overlap exploration is the
// OverlapPolicy test's job, not the fuzzer's. All randomness comes from the
// mutator's own seeded Rng: same seed, same parent, same children.

#ifndef MITTOS_CHAOS_MUTATOR_H_
#define MITTOS_CHAOS_MUTATOR_H_

#include "src/common/rng.h"
#include "src/fault/fault_plan.h"

namespace mitt::chaos {

struct MutatorOptions {
  int num_nodes = 3;
  TimeNs horizon = Millis(700);
  size_t max_episodes = 24;  // Children are truncated (keep-first) past this.
  DurationNs min_duration = Millis(5);
};

class PlanMutator {
 public:
  PlanMutator(const MutatorOptions& options, uint64_t seed);

  fault::FaultPlan RandomPlan();
  fault::FaultPlan Mutate(const fault::FaultPlan& parent);
  fault::FaultPlan Splice(const fault::FaultPlan& a, const fault::FaultPlan& b);

  // Sort, clamp severities/durations into the kind's legal range, drop
  // same-target overlaps (keep-first) and truncate to max_episodes. Public
  // because the shrinker reuses it after weakening episodes.
  fault::FaultPlan Canonicalize(std::vector<fault::FaultEpisode> episodes) const;

 private:
  fault::FaultEpisode RandomEpisode();
  fault::FaultKind RandomKind();

  MutatorOptions options_;
  Rng rng_;
  uint64_t next_sub_seed_ = 1;
};

}  // namespace mitt::chaos

#endif  // MITTOS_CHAOS_MUTATOR_H_
