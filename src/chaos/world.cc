#include "src/chaos/world.h"

#include <cinttypes>
#include <cstdio>

#include "src/chaos/oracles.h"

namespace mitt::chaos {
namespace {

// FNV-1a over a byte-free integer stream: feed each value as 8 bytes.
struct Fnv {
  uint64_t h = 0xCBF29CE484222325ULL;
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
};

void Append(std::string* s, const char* key, uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, key, v);
  *s += buf;
}

}  // namespace

harness::ExperimentOptions MakeExperimentOptions(const ChaosWorldOptions& world,
                                                 const fault::FaultPlan& plan) {
  harness::ExperimentOptions opt;
  opt.num_nodes = world.num_nodes;
  opt.num_clients = world.num_clients;
  opt.measure_requests = world.requests;
  opt.warmup_requests = world.warmup;
  opt.pin_primary_node = 0;
  opt.backend = os::BackendKind::kDiskCfq;
  opt.num_keys_per_node = 1 << 14;  // Small keyspace: chaos trials must be cheap.
  opt.deadline = world.deadline;
  // Light contention on the pinned primary keeps the device queue non-empty
  // (EBUSY paths reachable) without drowning the injected faults.
  opt.noise = harness::NoiseKind::kContinuous;
  opt.continuous_intensity = 2;
  opt.noise_io_size = 4096;
  opt.noise_priority = 7;
  opt.noise_horizon = world.horizon;
  opt.fault_plan = plan;
  opt.num_shards = world.num_shards;
  opt.seed = world.seed;
  opt.harvest_oracles = true;

  // A tight retry budget + fast-tripping breakers: drop storms then exercise
  // the timer -> denied-retry -> late-reply path within a ~700 ms horizon,
  // which is exactly where the planted liveness bug lives.
  opt.resilience.retry.burst = 1.5;
  opt.resilience.retry.initial = 1.5;
  opt.resilience.retry.refill_per_success = 0.05;
  opt.resilience.health.min_samples = 4;
  opt.resilience.health.open_base = Millis(20);
  opt.resilience.test_swallow_late_reply = world.inject_bug;

  if (world.tenants) {
    opt.tenants.enabled = true;
    opt.tenants.mix.num_tenants = 48;
    opt.tenants.mix.total_rate_hz = 3000;
    opt.tenants.slo_aware = true;
    opt.tenants.warmup = Millis(60);
    opt.tenants.duration = world.horizon - Millis(60);
    opt.tenants.controller.period = Millis(100);
  }
  return opt;
}

std::string ResultFingerprint(const harness::RunResult& r) {
  std::string s = r.name;
  Append(&s, "req", r.requests);
  Append(&s, "n", r.get_latencies.count());
  if (r.get_latencies.count() > 0) {
    Append(&s, "p50", static_cast<uint64_t>(r.get_latencies.Percentile(50)));
    Append(&s, "p99", static_cast<uint64_t>(r.get_latencies.Percentile(99)));
    Append(&s, "max", static_cast<uint64_t>(r.get_latencies.Max()));
  }
  Append(&s, "ebusy", r.ebusy_failovers);
  Append(&s, "tmo", r.timeouts_fired);
  Append(&s, "err", r.user_errors);
  Append(&s, "deg", r.degraded_gets);
  Append(&s, "den", r.retry_denied);
  Append(&s, "exh", r.deadline_exhausted);
  Append(&s, "maxdl", static_cast<uint64_t>(r.max_sent_deadline));
  Append(&s, "issued", r.oracle.gets_issued);
  Append(&s, "done", r.oracle.gets_done);
  Append(&s, "dup", r.oracle.gets_done_duplicate);
  Append(&s, "ok", r.oracle.done_ok);
  Append(&s, "busy", r.oracle.done_busy);
  Append(&s, "bexh", r.oracle.done_exhausted);
  Append(&s, "berr", r.oracle.done_error);
  Append(&s, "breg", r.oracle.budget_regressions);
  Append(&s, "fep", r.fault_episodes);
  Append(&s, "ten", r.tenant_requests);
  Append(&s, "mig", r.tenant_migrations);

  Fnv fault_hash;
  for (const fault::AppliedEpisode& e : r.fault_log) {
    fault_hash.Mix(static_cast<uint64_t>(e.kind));
    fault_hash.Mix(static_cast<uint64_t>(e.node));
    fault_hash.Mix(static_cast<uint64_t>(e.start));
    fault_hash.Mix(static_cast<uint64_t>(e.end));
  }
  Append(&s, "fhash", fault_hash.h);

  Fnv breaker_hash;
  for (const resilience::BreakerTransition& t : r.oracle.breaker_log) {
    breaker_hash.Mix(static_cast<uint64_t>(t.replica));
    breaker_hash.Mix(static_cast<uint64_t>(t.from));
    breaker_hash.Mix(static_cast<uint64_t>(t.to));
    breaker_hash.Mix(static_cast<uint64_t>(t.at));
  }
  Append(&s, "blog", r.oracle.breaker_log.size());
  Append(&s, "bhash", breaker_hash.h);
  return s;
}

TrialOutcome RunChaosTrial(const ChaosWorldOptions& world, const fault::FaultPlan& plan,
                           int trial_workers, int intra_workers) {
  std::vector<harness::Trial> trials;
  trials.reserve(world.strategies.size());
  for (const harness::StrategyKind kind : world.strategies) {
    harness::Trial t;
    t.options = MakeExperimentOptions(world, plan);
    t.options.intra_workers = intra_workers;
    t.kind = kind;
    trials.push_back(t);
  }
  TrialOutcome outcome;
  outcome.results = harness::RunTrialsParallel(trials, trial_workers);
  for (size_t i = 0; i < outcome.results.size(); ++i) {
    const bool resilient = world.strategies[i] == harness::StrategyKind::kMittosResilient;
    CheckOracles(outcome.results[i], resilient, world.tenants, &outcome.violations);
    outcome.fingerprint += ResultFingerprint(outcome.results[i]);
    outcome.fingerprint += '\n';
  }
  return outcome;
}

}  // namespace mitt::chaos
