#include "src/chaos/oracles.h"

#include <cinttypes>
#include <cstdio>

namespace mitt::chaos {
namespace {

using resilience::BreakerState;

void Fail(std::vector<Violation>* out, const harness::RunResult& r, const char* oracle,
          std::string detail) {
  out->push_back({oracle, r.name, std::move(detail)});
}

std::string Counts(const char* a_name, uint64_t a, const char* b_name, uint64_t b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s=%" PRIu64 " %s=%" PRIu64, a_name, a, b_name, b);
  return buf;
}

bool LegalTransition(BreakerState from, BreakerState to) {
  switch (from) {
    case BreakerState::kClosed:
      return to == BreakerState::kOpen;
    case BreakerState::kOpen:
      return to == BreakerState::kHalfOpen;
    case BreakerState::kHalfOpen:
      return to == BreakerState::kClosed || to == BreakerState::kOpen;
  }
  return false;
}

}  // namespace

void CheckOracles(const harness::RunResult& r, bool resilient, bool tenants,
                  std::vector<Violation>* out) {
  const harness::OracleHarvest& h = r.oracle;
  if (!h.enabled) {
    return;  // Nothing harvested, nothing checkable.
  }

  if (h.gets_done != h.gets_issued) {
    Fail(out, r, "completion",
         Counts("issued", h.gets_issued, "done", h.gets_done) +
             " — the run drained with gets still pending (lost/hung get)");
  }
  if (h.gets_done_duplicate != 0) {
    Fail(out, r, "exactly_once",
         Counts("duplicates", h.gets_done_duplicate, "done", h.gets_done));
  }
  const uint64_t classified = h.done_ok + h.done_busy + h.done_exhausted + h.done_error;
  if (classified != h.gets_done) {
    Fail(out, r, "conservation", Counts("classified", classified, "done", h.gets_done));
  }

  if (resilient) {
    if (r.max_sent_deadline < 0 || r.unbounded_deadline_tries != 0) {
      Fail(out, r, "bounded_sends",
           Counts("unbounded_tries", r.unbounded_deadline_tries, "max_sent",
                  static_cast<uint64_t>(r.max_sent_deadline < 0 ? 0 : r.max_sent_deadline)));
    }
    if (h.budget_regressions != 0) {
      Fail(out, r, "budget_monotone",
           Counts("regressions", h.budget_regressions, "issued", h.gets_issued));
    }
    // Per-replica transition chains. Each segment of the merged log is one
    // health tracker's complete chain (one per shard), so legality resets at
    // segment starts — every tracker begins all replicas at closed. A
    // capped-out log cannot be chain-checked — skip rather than lie.
    if (h.breaker_log_dropped == 0) {
      std::vector<BreakerState> state;
      size_t next_segment = 0;
      for (size_t i = 0; i < h.breaker_log.size(); ++i) {
        if (next_segment < h.breaker_segments.size() &&
            h.breaker_segments[next_segment] == i) {
          state.assign(state.size(), BreakerState::kClosed);
          ++next_segment;
        }
        const resilience::BreakerTransition& t = h.breaker_log[i];
        if (t.replica < 0) {
          Fail(out, r, "breaker_legal", "negative replica id in transition log");
          break;
        }
        if (static_cast<size_t>(t.replica) >= state.size()) {
          state.resize(static_cast<size_t>(t.replica) + 1, BreakerState::kClosed);
        }
        BreakerState& prev = state[static_cast<size_t>(t.replica)];
        if (t.from != prev || !LegalTransition(t.from, t.to)) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "replica %d: %s->%s at t=%" PRId64 " (expected from=%s)", t.replica,
                        resilience::BreakerStateName(t.from).data(),
                        resilience::BreakerStateName(t.to).data(), t.at,
                        resilience::BreakerStateName(prev).data());
          Fail(out, r, "breaker_legal", buf);
          break;
        }
        prev = t.to;
      }
    }
  }

  if (tenants && !h.placement_ok) {
    Fail(out, r, "placement_valid", h.placement_detail);
  }
}

std::vector<std::string> AllOracleNames() {
  return {"completion",   "exactly_once",    "conservation",    "bounded_sends",
          "budget_monotone", "breaker_legal", "placement_valid", "determinism"};
}

}  // namespace mitt::chaos
