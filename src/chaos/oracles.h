// Invariant oracles checked after every chaos trial.
//
// Each oracle is a property the system must hold under ANY fault schedule —
// not a performance expectation. The stable oracle names (corpus files and
// findings key on them):
//
//   completion      every issued get eventually completed. The run-until-
//                   drained simulator makes a hung get *visible* instead of
//                   wedging the process: drivers stop issuing, daemons are
//                   the only events left, the run returns with
//                   gets_done < gets_issued. This is the oracle the planted
//                   PR-5 denied-retry hang trips.
//   exactly_once    no get completed twice (duplicate done callbacks).
//   conservation    first completions split exactly into ok / busy /
//                   deadline-exhausted / error — no unclassified outcome.
//   bounded_sends   (resilient only) every sent deadline bounded: no
//                   deadline-disabled blasts, max_sent_deadline >= 0.
//   budget_monotone (resilient only) a primary-walk hop never sent a larger
//                   remaining budget than the previous hop of the same get.
//   breaker_legal   (resilient only) per-replica breaker transitions form a
//                   chain through the legal state machine: closed->open,
//                   open->half_open, half_open->{closed,open}.
//   placement_valid (tenant worlds) the final placement map routes every
//                   tenant to in-range, duplicate-free replica groups.
//   determinism     (checked by the explorer / replay tool, not here) the
//                   trial fingerprint is byte-identical across the
//                   MITT_TRIAL_WORKERS x MITT_INTRA_WORKERS grid.

#ifndef MITTOS_CHAOS_ORACLES_H_
#define MITTOS_CHAOS_ORACLES_H_

#include <vector>

#include "src/chaos/world.h"
#include "src/harness/experiment.h"

namespace mitt::chaos {

// Appends one Violation per failed oracle for this run. `resilient` arms the
// resilient-strategy-only oracles; `tenants` arms placement_valid.
void CheckOracles(const harness::RunResult& result, bool resilient, bool tenants,
                  std::vector<Violation>* out);

// All oracle names CheckOracles can emit (for tool help / validation).
std::vector<std::string> AllOracleNames();

}  // namespace mitt::chaos

#endif  // MITTOS_CHAOS_ORACLES_H_
