#include "src/chaos/corpus.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/fault/plan_serde.h"

namespace mitt::chaos {
namespace {

constexpr std::string_view kHeader = "# mittos chaos corpus v1";

std::vector<std::string_view> Tokens(std::string_view line) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') {
      ++j;
    }
    if (j > i) {
      out.push_back(line.substr(i, j - i));
    }
    i = j;
  }
  return out;
}

bool ParseI64(std::string_view s, int64_t* out) {
  if (s.empty() || s.size() >= 32) {
    return false;
  }
  char buf[32];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 10);
  if (end != buf + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseWorldLine(std::string_view line, ChaosWorldOptions* world, std::string* error) {
  const std::vector<std::string_view> tokens = Tokens(line);
  for (size_t i = 1; i < tokens.size(); ++i) {
    const size_t eq = tokens[i].find('=');
    if (eq == std::string_view::npos || eq == 0) {
      *error = "malformed world token '" + std::string(tokens[i]) + "'";
      return false;
    }
    const std::string_view key = tokens[i].substr(0, eq);
    int64_t v = 0;
    if (!ParseI64(tokens[i].substr(eq + 1), &v)) {
      *error = "unparsable world value '" + std::string(tokens[i]) + "'";
      return false;
    }
    if (key == "nodes") {
      world->num_nodes = static_cast<int>(v);
    } else if (key == "clients") {
      world->num_clients = static_cast<int>(v);
    } else if (key == "requests") {
      world->requests = static_cast<size_t>(v);
    } else if (key == "warmup") {
      world->warmup = static_cast<size_t>(v);
    } else if (key == "deadline") {
      world->deadline = v;
    } else if (key == "horizon") {
      world->horizon = v;
    } else if (key == "shards") {
      world->num_shards = static_cast<int>(v);
    } else if (key == "seed") {
      world->seed = static_cast<uint64_t>(v);
    } else if (key == "bug") {
      world->inject_bug = v != 0;
    } else if (key == "tenants") {
      world->tenants = v != 0;
    } else {
      *error = "unknown world key '" + std::string(key) + "'";
      return false;
    }
  }
  return true;
}

}  // namespace

std::string CorpusEntryToText(const CorpusEntry& entry) {
  std::string out(kHeader);
  out += '\n';
  if (!entry.note.empty()) {
    out += "# ";
    out += entry.note;
    out += '\n';
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "world nodes=%d clients=%d requests=%zu warmup=%zu deadline=%" PRId64
                " horizon=%" PRId64 " shards=%d seed=%" PRIu64 " bug=%d tenants=%d",
                entry.world.num_nodes, entry.world.num_clients, entry.world.requests,
                entry.world.warmup, entry.world.deadline, entry.world.horizon,
                entry.world.num_shards, entry.world.seed, entry.world.inject_bug ? 1 : 0,
                entry.world.tenants ? 1 : 0);
  out += buf;
  out += '\n';
  for (const std::string& oracle : entry.expect) {
    out += "expect ";
    out += oracle;
    out += '\n';
  }
  for (const fault::FaultEpisode& e : entry.plan.episodes()) {
    out += fault::EpisodeToLine(e);
    out += '\n';
  }
  return out;
}

bool CorpusEntryFromText(std::string_view text, CorpusEntry* out, std::string* error) {
  CorpusEntry entry;
  std::vector<fault::FaultEpisode> episodes;
  bool saw_world = false;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    std::string_view line =
        nl == std::string_view::npos ? text.substr(pos) : text.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const std::vector<std::string_view> tokens = Tokens(line);
    std::string line_error;
    if (tokens[0] == "world") {
      if (!ParseWorldLine(line, &entry.world, &line_error)) {
        *error = "line " + std::to_string(line_no) + ": " + line_error;
        return false;
      }
      saw_world = true;
    } else if (tokens[0] == "expect") {
      if (tokens.size() != 2) {
        *error = "line " + std::to_string(line_no) + ": expect takes exactly one oracle name";
        return false;
      }
      entry.expect.emplace_back(tokens[1]);
    } else if (tokens[0] == "episode") {
      fault::FaultEpisode e;
      if (!fault::EpisodeFromLine(line, &e, &line_error)) {
        *error = "line " + std::to_string(line_no) + ": " + line_error;
        return false;
      }
      episodes.push_back(e);
    } else {
      *error = "line " + std::to_string(line_no) + ": unknown directive '" +
               std::string(tokens[0]) + "'";
      return false;
    }
  }
  if (!saw_world) {
    *error = "no 'world' line";
    return false;
  }
  entry.plan = fault::FaultPlan(std::move(episodes));
  *out = std::move(entry);
  return true;
}

bool SaveCorpusEntry(const std::string& path, const CorpusEntry& entry, std::string* error) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    *error = "cannot open for write: " + path;
    return false;
  }
  f << CorpusEntryToText(entry);
  f.flush();
  if (!f) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

bool LoadCorpusEntry(const std::string& path, CorpusEntry* out, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    *error = "cannot open: " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return CorpusEntryFromText(ss.str(), out, error);
}

}  // namespace mitt::chaos
