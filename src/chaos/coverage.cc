#include "src/chaos/coverage.h"

namespace mitt::chaos {
namespace {

constexpr Feature kPlanNamespace = 0x80000000u;
constexpr Feature kStrategyStride = 4096;

int Log2Bucket(uint64_t v) {
  int b = 0;
  while (v > 1 && b < 31) {
    v >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

std::vector<Feature> CollectFeatures(const fault::FaultPlan& plan,
                                     const std::vector<harness::RunResult>& results) {
  std::vector<Feature> out;

  // --- Plan features (strategy-independent) ---
  uint64_t kind_count[8] = {};
  for (const fault::FaultEpisode& e : plan.episodes()) {
    kind_count[static_cast<size_t>(e.kind) & 7]++;
  }
  for (int k = 0; k < 8; ++k) {
    if (kind_count[k] > 0) {
      out.push_back(kPlanNamespace | static_cast<Feature>(k));
      out.push_back(kPlanNamespace | static_cast<Feature>(0x100 + k * 32 +
                                                          Log2Bucket(kind_count[k])));
    }
  }
  out.push_back(kPlanNamespace |
                static_cast<Feature>(0x200 + Log2Bucket(plan.size() + 1)));

  // --- Per-strategy outcome features ---
  for (size_t si = 0; si < results.size(); ++si) {
    const harness::RunResult& r = results[si];
    const harness::OracleHarvest& h = r.oracle;
    const Feature base = static_cast<Feature>(si) * kStrategyStride;

    const uint64_t outcome_counters[] = {
        r.ebusy_failovers,
        r.timeouts_fired,
        r.degraded_gets,
        r.retry_denied,
        r.deadline_exhausted,
        r.user_errors,
        h.done_busy,
        h.done_exhausted,
        h.done_error,
        h.gets_done_duplicate,
        h.gets_issued - (h.gets_done < h.gets_issued ? h.gets_done : h.gets_issued),
        static_cast<uint64_t>(h.breaker_log.size()),
        r.tenant_migrations,
    };
    const int num_outcomes = static_cast<int>(sizeof(outcome_counters) / sizeof(uint64_t));

    for (int bit = 0; bit < num_outcomes; ++bit) {
      if (outcome_counters[bit] == 0) {
        continue;
      }
      out.push_back(base + 16 + static_cast<Feature>(bit));
      // Volume bucket: 3 timeouts and 300 timeouts are different behaviors.
      out.push_back(base + 1024 + static_cast<Feature>(bit) * 32 +
                    static_cast<Feature>(Log2Bucket(outcome_counters[bit])));
      // Kind x outcome interactions.
      for (int k = 0; k < 8; ++k) {
        if (kind_count[k] > 0) {
          out.push_back(base + 2048 + static_cast<Feature>(k) * 16 + static_cast<Feature>(bit));
        }
      }
    }

    // Breaker transition edges actually exercised.
    for (const resilience::BreakerTransition& t : h.breaker_log) {
      out.push_back(base + 512 + static_cast<Feature>(t.from) * 4 + static_cast<Feature>(t.to));
    }
  }
  return out;
}

size_t CoverageMap::AddAll(const std::vector<Feature>& features) {
  size_t novel = 0;
  for (const Feature f : features) {
    novel += seen_.insert(f).second ? 1 : 0;
  }
  return novel;
}

size_t CoverageMap::CountNovel(const std::vector<Feature>& features) const {
  size_t novel = 0;
  for (const Feature f : features) {
    novel += seen_.count(f) == 0 ? 1 : 0;
  }
  return novel;
}

}  // namespace mitt::chaos
