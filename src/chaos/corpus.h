// Chaos corpus files: self-contained, replayable (world, plan, expectation)
// records — the checked-in reproducers `chaos_tool replay` re-executes.
//
//   # mittos chaos corpus v1
//   # <free-form note lines>
//   world nodes=3 clients=4 requests=360 warmup=40 deadline=12000000 ...
//         ... horizon=700000000 shards=2 seed=42 bug=1 tenants=0   (one line)
//   expect completion
//   episode kind=network_drop node=0 start=...
//
// `expect <oracle>` lines (0+) name the oracle(s) the plan is known to trip:
// replay fails when an expected oracle does NOT fire (the regression healed
// or the reproducer rotted) and when an UNexpected oracle fires. A file with
// no expect lines asserts the plan is violation-free — the benign-corpus
// regression mode. The same exact-round-trip rules as plan_serde apply.

#ifndef MITTOS_CHAOS_CORPUS_H_
#define MITTOS_CHAOS_CORPUS_H_

#include <string>
#include <vector>

#include "src/chaos/world.h"
#include "src/fault/fault_plan.h"

namespace mitt::chaos {

struct CorpusEntry {
  ChaosWorldOptions world;
  fault::FaultPlan plan;
  std::vector<std::string> expect;  // Oracle names expected to fire.
  std::string note;                 // Free-form provenance (one line).
};

std::string CorpusEntryToText(const CorpusEntry& entry);
bool CorpusEntryFromText(std::string_view text, CorpusEntry* out, std::string* error);

// File wrappers over the text forms. Load fails loudly on malformed files.
bool SaveCorpusEntry(const std::string& path, const CorpusEntry& entry, std::string* error);
bool LoadCorpusEntry(const std::string& path, CorpusEntry* out, std::string* error);

}  // namespace mitt::chaos

#endif  // MITTOS_CHAOS_CORPUS_H_
