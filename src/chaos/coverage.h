// Coverage signal for the chaos explorer.
//
// A trial's coverage is a set of small integer features describing WHAT the
// fault schedule was and WHAT the system did about it:
//
//   * plan features   — which FaultKinds appear, log2-bucketed episode counts
//                       (namespace 0x8000_0000, strategy-independent);
//   * outcome bits    — per strategy: did failovers / timeouts / degraded
//                       reads / retry denials / exhausted budgets / user
//                       errors / duplicate or missing completions happen;
//   * kind x outcome  — per strategy: each plan kind crossed with each
//                       outcome bit (the "drop storm while degraded reads
//                       fire" style interactions the mutator should chase);
//   * breaker edges   — per strategy: which (from -> to) breaker transitions
//                       the trial exercised;
//   * count buckets   — per strategy: log2 buckets of the volume counters,
//                       so "3 timeouts" and "300 timeouts" are different
//                       behaviors.
//
// A trial enters the corpus iff it contributes at least one feature the map
// has never seen — classic coverage-guided fuzzing, with behavior tuples
// standing in for branch edges.

#ifndef MITTOS_CHAOS_COVERAGE_H_
#define MITTOS_CHAOS_COVERAGE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/harness/experiment.h"

namespace mitt::chaos {

using Feature = uint32_t;

// All features of one trial (plan + one entry per strategy result, in result
// order). Deterministic in its inputs.
std::vector<Feature> CollectFeatures(const fault::FaultPlan& plan,
                                     const std::vector<harness::RunResult>& results);

class CoverageMap {
 public:
  // Inserts every feature; returns how many were new.
  size_t AddAll(const std::vector<Feature>& features);
  // How many of these features are not yet in the map (no mutation).
  size_t CountNovel(const std::vector<Feature>& features) const;
  size_t size() const { return seen_.size(); }
  const std::set<Feature>& seen() const { return seen_; }

 private:
  std::set<Feature> seen_;
};

}  // namespace mitt::chaos

#endif  // MITTOS_CHAOS_COVERAGE_H_
