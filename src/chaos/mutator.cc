#include "src/chaos/mutator.h"

#include <algorithm>
#include <cstddef>

namespace mitt::chaos {
namespace {

using fault::FaultEpisode;
using fault::FaultKind;

// Severity range per kind. Multiplier kinds live in [1, 100]; kNetworkDrop's
// severity is a probability in [0.05, 1]; the remaining kinds ignore it.
void ClampSeverity(FaultEpisode* e) {
  switch (e->kind) {
    case FaultKind::kFailSlowDisk:
    case FaultKind::kSsdReadRetry:
    case FaultKind::kNetworkDegrade:
      e->severity = std::clamp(e->severity, 1.0, 100.0);
      break;
    case FaultKind::kNetworkDrop:
      e->severity = std::clamp(e->severity, 0.05, 1.0);
      break;
    case FaultKind::kNetworkPartition:
    case FaultKind::kNodePause:
    case FaultKind::kNodeCrashRestart:
      e->severity = 1.0;
      break;
  }
}

// Weakening direction for the shrinker-style ops: toward benign.
void Weaken(FaultEpisode* e) {
  if (e->kind == FaultKind::kNetworkDrop) {
    e->severity *= 0.5;
  } else {
    e->severity = 1.0 + (e->severity - 1.0) * 0.5;
  }
  ClampSeverity(e);
}

void Intensify(FaultEpisode* e) {
  if (e->kind == FaultKind::kNetworkDrop) {
    e->severity = e->severity * 1.5;
  } else {
    e->severity = 1.0 + (e->severity - 1.0) * 1.5 + 0.5;
  }
  ClampSeverity(e);
}

}  // namespace

PlanMutator::PlanMutator(const MutatorOptions& options, uint64_t seed)
    : options_(options), rng_(seed) {}

FaultKind PlanMutator::RandomKind() {
  // The disk-backed chaos world exercises every kind except SSD read-retry
  // (meaningless on a rotational backend).
  static constexpr FaultKind kKinds[] = {
      FaultKind::kFailSlowDisk,     FaultKind::kNetworkDegrade, FaultKind::kNetworkDrop,
      FaultKind::kNetworkPartition, FaultKind::kNodePause,      FaultKind::kNodeCrashRestart,
  };
  return kKinds[rng_.UniformInt(0, 5)];
}

FaultEpisode PlanMutator::RandomEpisode() {
  FaultEpisode e;
  e.kind = RandomKind();
  e.node = static_cast<int>(rng_.UniformInt(0, options_.num_nodes - 1));
  e.start = static_cast<TimeNs>(
      rng_.UniformInt(0, std::max<int64_t>(1, options_.horizon - options_.min_duration)));
  const DurationNs max_dur = std::max<DurationNs>(options_.min_duration, options_.horizon / 4);
  e.duration = rng_.UniformInt(options_.min_duration, max_dur);
  switch (e.kind) {
    case FaultKind::kFailSlowDisk:
      e.severity = rng_.Uniform(2.0, 20.0);
      break;
    case FaultKind::kSsdReadRetry:
      e.severity = rng_.Uniform(5.0, 40.0);
      break;
    case FaultKind::kNetworkDegrade:
      e.severity = rng_.Uniform(2.0, 40.0);
      break;
    case FaultKind::kNetworkDrop:
      e.severity = rng_.Uniform(0.2, 1.0);
      break;
    default:
      e.severity = 1.0;
      break;
  }
  ClampSeverity(&e);
  return e;
}

fault::FaultPlan PlanMutator::Canonicalize(std::vector<FaultEpisode> episodes) const {
  for (FaultEpisode& e : episodes) {
    ClampSeverity(&e);
    if (e.start < 0) {
      e.start = 0;
    }
    if (e.start >= options_.horizon) {
      e.start = options_.horizon - options_.min_duration;
    }
    e.duration = std::max(e.duration, options_.min_duration);
    if (e.end() > options_.horizon) {
      // Slide back first, truncate only when the episode is longer than the
      // whole horizon — keeps every canonical episode inside [0, horizon].
      e.start = std::max<TimeNs>(0, options_.horizon - e.duration);
      if (e.end() > options_.horizon) {
        e.duration = options_.horizon - e.start;
      }
    }
    e.node = std::clamp(e.node, -1, options_.num_nodes - 1);
  }
  // Sort into plan order, then keep-first drop of same-target overlaps: the
  // injector would last-write-wins them, making the child behave unlike its
  // genome — a coverage signal made of lies.
  fault::FaultPlan sorted(std::move(episodes));
  std::vector<FaultEpisode> kept;
  for (const FaultEpisode& e : sorted.episodes()) {
    bool overlaps = false;
    for (const FaultEpisode& k : kept) {
      if (fault::EpisodesOverlap(k, e)) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) {
      kept.push_back(e);
    }
    if (kept.size() >= options_.max_episodes) {
      break;
    }
  }
  return fault::FaultPlan(std::move(kept));
}

fault::FaultPlan PlanMutator::RandomPlan() {
  fault::ChaosOptions chaos;
  chaos.fail_slow_disk = rng_.Bernoulli(0.7);
  chaos.network_degrade = rng_.Bernoulli(0.5);
  chaos.network_drop = rng_.Bernoulli(0.7);
  chaos.network_partition = rng_.Bernoulli(0.3);
  chaos.node_pause = rng_.Bernoulli(0.5);
  chaos.node_crash = rng_.Bernoulli(0.2);
  chaos.ssd_read_retry = false;
  chaos.mean_gap = options_.horizon / 4;
  chaos.min_on = Millis(30);
  chaos.max_on = std::max<DurationNs>(Millis(60), options_.horizon / 4);
  chaos.blast_radius = rng_.Uniform(0.3, 1.0);
  chaos.drop_probability = rng_.Uniform(0.3, 1.0);
  chaos.pause_duration = Millis(static_cast<int64_t>(rng_.UniformInt(20, 120)));
  chaos.restart_duration = Millis(static_cast<int64_t>(rng_.UniformInt(40, 160)));
  const uint64_t sub_seed = rng_.Next() ^ (next_sub_seed_++ * 0x9E3779B97F4A7C15ULL);
  fault::FaultPlan plan =
      GenerateChaosPlan(chaos, options_.num_nodes, options_.horizon, sub_seed);
  return Canonicalize(plan.episodes());
}

fault::FaultPlan PlanMutator::Mutate(const fault::FaultPlan& parent) {
  std::vector<FaultEpisode> eps = parent.episodes();
  const int ops = static_cast<int>(rng_.UniformInt(1, 3));
  for (int op = 0; op < ops; ++op) {
    if (eps.empty()) {
      eps.push_back(RandomEpisode());
      continue;
    }
    const size_t i = static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(eps.size()) - 1));
    switch (rng_.UniformInt(0, 8)) {
      case 0:  // Drop.
        eps.erase(eps.begin() + static_cast<ptrdiff_t>(i));
        break;
      case 1: {  // Split into two halves with a gap.
        FaultEpisode& e = eps[i];
        if (e.duration >= 4 * options_.min_duration) {
          FaultEpisode tail = e;
          const DurationNs half = e.duration / 2;
          e.duration = half - options_.min_duration;
          tail.start = e.start + half + options_.min_duration;
          tail.duration = half - options_.min_duration;
          eps.push_back(tail);
        }
        break;
      }
      case 2: {  // Merge with the episode's nearest same-kind sibling.
        for (size_t j = 0; j < eps.size(); ++j) {
          if (j != i && eps[j].kind == eps[i].kind && eps[j].node == eps[i].node) {
            eps[i].start = std::min(eps[i].start, eps[j].start);
            const TimeNs end = std::max(eps[i].end(), eps[j].end());
            eps[i].duration = end - eps[i].start;
            eps.erase(eps.begin() + static_cast<ptrdiff_t>(j));
            break;
          }
        }
        break;
      }
      case 3:  // Shift in time.
        eps[i].start += rng_.UniformInt(-options_.horizon / 8, options_.horizon / 8);
        break;
      case 4:  // Stretch / shrink.
        eps[i].duration =
            static_cast<DurationNs>(static_cast<double>(eps[i].duration) * rng_.Uniform(0.5, 2.0));
        break;
      case 5:  // Intensify.
        Intensify(&eps[i]);
        break;
      case 6:  // Weaken.
        Weaken(&eps[i]);
        break;
      case 7:  // Retarget.
        eps[i].node = static_cast<int>(rng_.UniformInt(0, options_.num_nodes - 1));
        break;
      default:  // Add a fresh episode.
        eps.push_back(RandomEpisode());
        break;
    }
  }
  return Canonicalize(std::move(eps));
}

fault::FaultPlan PlanMutator::Splice(const fault::FaultPlan& a, const fault::FaultPlan& b) {
  // Swap one kind's episodes: a's schedule with b's episodes of that kind.
  const FaultKind kind = RandomKind();
  std::vector<FaultEpisode> eps;
  for (const FaultEpisode& e : a.episodes()) {
    if (e.kind != kind) {
      eps.push_back(e);
    }
  }
  for (const FaultEpisode& e : b.episodes()) {
    if (e.kind == kind) {
      eps.push_back(e);
    }
  }
  if (eps.empty()) {
    return Mutate(a);
  }
  return Canonicalize(std::move(eps));
}

}  // namespace mitt::chaos
