// DeadlineBudget: the remaining-SLO accounting for one replicated get.
//
// The paper's failover story re-sends the *full* deadline on every hop, so a
// get that burns two failover round trips effectively promises the user
// deadline + 2 RTTs — the SLO silently inflates with every retry. A
// DeadlineBudget is anchored at the instant the user issued the get; every
// hop asks Remaining(now) and sends only what is left, so the end-to-end
// promise stays the one the user made.
//
// Underflow discipline (the PR's deadline audit): a late hop naively
// computing `deadline - elapsed` can go negative, and a negative value is a
// trap — sched::kNoDeadline is -1, so an underflow of exactly one tick turns
// "you are out of time" into "take as long as you like". Remaining() clamps
// at zero and never returns a negative value for a bounded budget; callers
// detect exhaustion via Exhausted() and surface StatusCode::kDeadlineExhausted
// instead of sending a corrupted deadline down the stack.

#ifndef MITTOS_RESILIENCE_DEADLINE_BUDGET_H_
#define MITTOS_RESILIENCE_DEADLINE_BUDGET_H_

#include "src/common/time.h"
#include "src/sched/io_request.h"

namespace mitt::resilience {

class DeadlineBudget {
 public:
  // `total` = the user's SLO; sched::kNoDeadline (or any negative value)
  // means unlimited. `start` = the instant the logical get was issued.
  DeadlineBudget(DurationNs total, TimeNs start) : total_(total), start_(start) {}

  bool unlimited() const { return total_ < 0; }

  // Time left of the SLO at `now`, clamped at 0. Unlimited budgets pass
  // sched::kNoDeadline through unchanged.
  DurationNs Remaining(TimeNs now) const {
    if (unlimited()) {
      return sched::kNoDeadline;
    }
    const DurationNs remaining = total_ - (now - start_);
    return remaining > 0 ? remaining : 0;
  }

  bool Exhausted(TimeNs now) const { return !unlimited() && Remaining(now) == 0; }

  // Elapsed wall time since the get was issued (network RTTs + server time
  // + client-side backoffs all deduct through here).
  DurationNs Elapsed(TimeNs now) const { return now - start_; }

  DurationNs total() const { return total_; }
  TimeNs start() const { return start_; }

 private:
  DurationNs total_;
  TimeNs start_;
};

// Normalizes a deadline computed by hop arithmetic: any negative value that
// is not exactly sched::kNoDeadline is an underflow and clamps to 0 ("no
// time left") rather than aliasing into "no deadline".
constexpr DurationNs ClampDeadline(DurationNs deadline) {
  if (deadline == sched::kNoDeadline) {
    return deadline;
  }
  return deadline < 0 ? 0 : deadline;
}

}  // namespace mitt::resilience

#endif  // MITTOS_RESILIENCE_DEADLINE_BUDGET_H_
