// Per-replica health tracking + circuit breakers for failover ordering.
//
// The paper's client walks the replica set primary-first on every get, which
// under a fail-slow primary means every request pays a wasted round trip to
// the sick node — and, worse, the stale-profile predictor occasionally
// *admits* an IO there, handing the user the full degraded-media latency.
// The tracker keeps, per replica:
//
//   * an EWMA of the EBUSY rate (fast-reject pressure),
//   * an EWMA of successful reply latency (catches fail-slow nodes the
//     predictor still admits),
//   * a consecutive-timeout strike counter (catches pauses / partitions /
//     drop storms the OS cannot see at all),
//
// feeding a classic closed / open / half-open circuit breaker. An open
// breaker pushes the replica to the back of the failover order; after a
// deterministic, seeded open window the breaker half-opens and admits exactly
// one probe request, whose outcome closes the breaker or re-opens it with an
// exponentially escalated window. All timing derives from simulated time and
// the tracker's own seeded RNG, so runs are bit-identical at any
// MITT_TRIAL_WORKERS setting.
//
// State transitions are recorded as `resilience.breaker_*` instant spans
// (node-labeled, request id 0) and counted in `resilience_breaker_open_total`
// so a Chrome trace shows exactly when the client gave up on a replica.

#ifndef MITTOS_RESILIENCE_REPLICA_HEALTH_H_
#define MITTOS_RESILIENCE_REPLICA_HEALTH_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace mitt::resilience {

enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

std::string_view BreakerStateName(BreakerState state);

// One breaker state change, in occurrence order. Recorded (when
// ReplicaHealthOptions::record_transitions is on) for the chaos-search
// breaker-legality oracle: the legal machine is closed->open (trip),
// open->half_open (window elapsed), half_open->closed (probe succeeded) and
// half_open->open (probe failed); anything else is a tracker bug.
struct BreakerTransition {
  int replica = 0;
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
  TimeNs at = 0;

  bool operator==(const BreakerTransition&) const = default;
};

struct ReplicaHealthOptions {
  // EWMA weight of the newest sample.
  double ewma_alpha = 0.25;
  // Minimum observations before a breaker may open (keeps healthy worlds
  // from tripping on startup noise).
  int min_samples = 12;
  // EBUSY-rate EWMA at or above which the breaker opens.
  double open_ebusy_threshold = 0.85;
  // Open when the replica's success-latency EWMA exceeds this multiple of
  // the healthiest replica's (and at least `latency_floor`). Clients raise
  // the floor to their SLO deadline: ordinary contention that still meets
  // the deadline is the predictor's job (wait or reject), not the
  // breaker's — only SLO-breaking latency marks a replica fail-slow.
  double latency_slow_factor = 4.0;
  DurationNs latency_floor = Millis(2);
  // Consecutive timeouts (no reply before the client's attempt timer) that
  // open the breaker regardless of the EWMAs.
  int timeout_strikes_to_open = 2;
  // Open-window schedule: base * 2^(reopenings), capped, +/- jitter.
  DurationNs open_base = Millis(40);
  DurationNs open_max = Millis(1600);
  double open_jitter = 0.25;  // Fraction of the window drawn as +/- jitter.
  // Keep an in-order BreakerTransition log (for the chaos oracles). Off by
  // default: long benches would otherwise grow an unbounded vector.
  bool record_transitions = false;
  size_t transition_log_cap = 65536;  // Further transitions count as dropped.
};

class ReplicaHealthTracker {
 public:
  ReplicaHealthTracker(sim::Simulator* sim, int num_replicas,
                       const ReplicaHealthOptions& options, uint64_t seed);

  // --- Observations (all at the current simulated time) ---
  // A reply arrived `latency` after the request was sent. `ebusy` marks a
  // fast rejection; other statuses count as successes for breaker purposes
  // (the replica is alive and answering).
  void OnReply(int replica, DurationNs latency, bool ebusy);
  // The client's attempt timer fired before any reply (drop storm, pause,
  // partition — the fault_active-era failures EBUSY cannot signal).
  void OnTimeout(int replica);
  // Batch observation for control-loop consumers (src/tenant/'s placement
  // controller): one call folds a whole control window's server-side
  // aggregates — `replies` handled gets of which `ebusy` fast-rejected, with
  // `mean_latency` over the successes — into the same EWMAs one window-sized
  // sample at a time. No-op for an empty window.
  void OnWindow(int replica, uint64_t replies, uint64_t ebusy, DurationNs mean_latency);

  // Effective breaker state at the current time (lazily advances open ->
  // half-open when the open window elapses).
  BreakerState state(int replica);

  // True when a half-open breaker has a probe slot free; AcquireProbe takes
  // it (at most one outstanding probe per replica).
  bool AcquireProbe(int replica);

  // Reorders `replicas` in place for a failover walk: closed first (original
  // order preserved — keeps the primary-first bias among healthy nodes),
  // then half-open (probe candidates), open last. Deterministic stable
  // partition, no RNG.
  void OrderReplicas(std::vector<int>* replicas);

  // --- Introspection ---
  double ebusy_rate(int replica) const { return stats_[Index(replica)].ebusy_ewma; }
  double latency_ewma(int replica) const { return stats_[Index(replica)].latency_ewma; }
  uint64_t breaker_opens() const { return breaker_opens_; }
  uint64_t probes_sent() const { return probes_sent_; }
  // In-order transition log (empty unless options.record_transitions).
  const std::vector<BreakerTransition>& transitions() const { return transitions_; }
  uint64_t transitions_dropped() const { return transitions_dropped_; }

 private:
  struct ReplicaStats {
    double ebusy_ewma = 0.0;
    double latency_ewma = 0.0;  // Successful replies only; 0 = no sample yet.
    int samples = 0;
    int timeout_strikes = 0;
    int reopenings = 0;  // Consecutive open cycles without a closing probe.
    BreakerState state = BreakerState::kClosed;
    TimeNs open_until = 0;
    bool probe_inflight = false;
  };

  size_t Index(int replica) const { return static_cast<size_t>(replica); }
  void MaybeOpen(int replica);
  void Open(int replica);
  void Close(int replica);
  void RecordTransition(int replica, BreakerState from, BreakerState to);

  sim::Simulator* sim_;
  ReplicaHealthOptions options_;
  Rng rng_;
  std::vector<ReplicaStats> stats_;
  uint64_t breaker_opens_ = 0;
  uint64_t probes_sent_ = 0;
  std::vector<BreakerTransition> transitions_;
  uint64_t transitions_dropped_ = 0;
};

}  // namespace mitt::resilience

#endif  // MITTOS_RESILIENCE_REPLICA_HEALTH_H_
