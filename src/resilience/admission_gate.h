// Server-side brownout gate for degraded (all-replicas-busy) reads.
//
// The paper's last-resort move — re-send with the deadline disabled — trades
// bounded latency for unbounded queueing: under sustained overload every
// client's last try piles onto one replica's queue with no admission control
// at all. The gate makes the degraded path explicit and *bounded*: a node
// accepts at most `max_inflight` degraded reads at a time; beyond that it
// sheds (Status::Unavailable + its wait hint) so the client can try the next
// replica or back off, instead of growing an invisible convoy. Degraded
// reads that are admitted still carry bounded deadlines (escalated per
// retry, capped) — the deadline is never disabled.

#ifndef MITTOS_RESILIENCE_ADMISSION_GATE_H_
#define MITTOS_RESILIENCE_ADMISSION_GATE_H_

#include <cstdint>

namespace mitt::resilience {

struct AdmissionGateOptions {
  // Maximum concurrently admitted degraded reads per node. Small by design:
  // the degraded path exists to guarantee completion, not throughput.
  int max_inflight = 8;
};

class AdmissionGate {
 public:
  explicit AdmissionGate(const AdmissionGateOptions& options) : options_(options) {}

  // Returns true and takes a slot if the gate has capacity; false = shed.
  bool TryAdmit() {
    if (inflight_ >= options_.max_inflight) {
      ++sheds_;
      return false;
    }
    ++inflight_;
    ++admits_;
    return true;
  }

  // Releases a slot taken by TryAdmit (on completion, success or not).
  void Release() { --inflight_; }

  int inflight() const { return inflight_; }
  uint64_t admits() const { return admits_; }
  uint64_t sheds() const { return sheds_; }

 private:
  AdmissionGateOptions options_;
  int inflight_ = 0;
  uint64_t admits_ = 0;
  uint64_t sheds_ = 0;
};

}  // namespace mitt::resilience

#endif  // MITTOS_RESILIENCE_ADMISSION_GATE_H_
