#include "src/resilience/replica_health.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mitt::resilience {

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

ReplicaHealthTracker::ReplicaHealthTracker(sim::Simulator* sim, int num_replicas,
                                           const ReplicaHealthOptions& options, uint64_t seed)
    : sim_(sim), options_(options), rng_(seed), stats_(static_cast<size_t>(num_replicas)) {}

void ReplicaHealthTracker::OnReply(int replica, DurationNs latency, bool ebusy) {
  ReplicaStats& s = stats_[Index(replica)];
  const double a = options_.ewma_alpha;
  s.ebusy_ewma = (1.0 - a) * s.ebusy_ewma + a * (ebusy ? 1.0 : 0.0);
  if (!ebusy) {
    const double sample = static_cast<double>(latency);
    s.latency_ewma = s.latency_ewma == 0.0 ? sample : (1.0 - a) * s.latency_ewma + a * sample;
  }
  ++s.samples;
  s.timeout_strikes = 0;  // Any reply proves the replica is reachable.

  if (state(replica) == BreakerState::kHalfOpen && s.probe_inflight) {
    // This reply settles the probe: a successful (non-EBUSY) answer closes
    // the breaker; an EBUSY probe re-opens with an escalated window.
    s.probe_inflight = false;
    if (ebusy) {
      ++s.reopenings;
      Open(replica);
    } else {
      Close(replica);
    }
    return;
  }
  MaybeOpen(replica);
}

void ReplicaHealthTracker::OnWindow(int replica, uint64_t replies, uint64_t ebusy,
                                    DurationNs mean_latency) {
  if (replies == 0) {
    return;
  }
  ReplicaStats& s = stats_[Index(replica)];
  const double a = options_.ewma_alpha;
  const double ebusy_frac =
      static_cast<double>(ebusy) / static_cast<double>(replies);
  s.ebusy_ewma = (1.0 - a) * s.ebusy_ewma + a * ebusy_frac;
  if (ebusy < replies && mean_latency > 0) {
    const double sample = static_cast<double>(mean_latency);
    s.latency_ewma = s.latency_ewma == 0.0 ? sample : (1.0 - a) * s.latency_ewma + a * sample;
  }
  // One window = one sample for min_samples purposes: the warmup guard is
  // about EWMA convergence, and the window EWMA converges per window.
  ++s.samples;
  s.timeout_strikes = 0;
  MaybeOpen(replica);
}

void ReplicaHealthTracker::OnTimeout(int replica) {
  ReplicaStats& s = stats_[Index(replica)];
  ++s.samples;
  ++s.timeout_strikes;
  if (state(replica) == BreakerState::kHalfOpen && s.probe_inflight) {
    s.probe_inflight = false;
    ++s.reopenings;
    Open(replica);
    return;
  }
  if (s.state == BreakerState::kClosed &&
      s.timeout_strikes >= options_.timeout_strikes_to_open) {
    Open(replica);
  }
}

BreakerState ReplicaHealthTracker::state(int replica) {
  ReplicaStats& s = stats_[Index(replica)];
  if (s.state == BreakerState::kOpen && sim_->Now() >= s.open_until) {
    s.state = BreakerState::kHalfOpen;
    s.probe_inflight = false;
    RecordTransition(replica, BreakerState::kOpen, BreakerState::kHalfOpen);
  }
  return s.state;
}

bool ReplicaHealthTracker::AcquireProbe(int replica) {
  ReplicaStats& s = stats_[Index(replica)];
  if (state(replica) != BreakerState::kHalfOpen || s.probe_inflight) {
    return false;
  }
  s.probe_inflight = true;
  ++probes_sent_;
  return true;
}

void ReplicaHealthTracker::OrderReplicas(std::vector<int>* replicas) {
  // Stable two-pass partition: closed, then half-open, then open. Keeps the
  // primary-first bias among equally-healthy replicas and uses no RNG, so
  // the walk order is a pure function of breaker states.
  std::stable_sort(replicas->begin(), replicas->end(), [this](int a, int b) {
    auto rank = [this](int r) {
      switch (state(r)) {
        case BreakerState::kClosed:
          return 0;
        case BreakerState::kHalfOpen:
          return 1;
        case BreakerState::kOpen:
          return 2;
      }
      return 2;
    };
    return rank(a) < rank(b);
  });
}

void ReplicaHealthTracker::MaybeOpen(int replica) {
  ReplicaStats& s = stats_[Index(replica)];
  if (s.state != BreakerState::kClosed || s.samples < options_.min_samples) {
    return;
  }
  if (s.ebusy_ewma >= options_.open_ebusy_threshold) {
    Open(replica);
    return;
  }
  // Latency comparison against the healthiest replica with data: a replica
  // whose success latency EWMA is `latency_slow_factor`x the cluster best
  // (and above the absolute floor) is fail-slow even if it never rejects.
  if (s.latency_ewma > 0.0) {
    double best = s.latency_ewma;
    for (const ReplicaStats& other : stats_) {
      if (other.latency_ewma > 0.0) {
        best = std::min(best, other.latency_ewma);
      }
    }
    if (s.latency_ewma >= best * options_.latency_slow_factor &&
        s.latency_ewma >= static_cast<double>(options_.latency_floor)) {
      Open(replica);
    }
  }
}

void ReplicaHealthTracker::Open(int replica) {
  ReplicaStats& s = stats_[Index(replica)];
  const BreakerState from = s.state;
  // Escalate the window exponentially with consecutive re-openings, capped,
  // then jitter it so replicas tripped at the same instant do not probe in
  // lockstep. The jitter draw comes from the tracker's own seeded stream —
  // deterministic across runs and worker counts.
  DurationNs window = options_.open_base;
  for (int i = 0; i < s.reopenings && window < options_.open_max; ++i) {
    window *= 2;
  }
  window = std::min(window, options_.open_max);
  const double jitter = rng_.Uniform(-options_.open_jitter, options_.open_jitter);
  window += static_cast<DurationNs>(static_cast<double>(window) * jitter);
  if (window < Micros(1)) {
    window = Micros(1);
  }
  s.state = BreakerState::kOpen;
  s.open_until = sim_->Now() + window;
  s.probe_inflight = false;
  s.timeout_strikes = 0;
  ++breaker_opens_;
  RecordTransition(replica, from, BreakerState::kOpen);
}

void ReplicaHealthTracker::Close(int replica) {
  ReplicaStats& s = stats_[Index(replica)];
  const BreakerState from = s.state;
  s.state = BreakerState::kClosed;
  s.reopenings = 0;
  s.timeout_strikes = 0;
  // Forget the sick-era EWMAs: the replica must re-earn its health record
  // rather than instantly re-tripping on stale samples.
  s.ebusy_ewma = 0.0;
  s.latency_ewma = 0.0;
  s.samples = 0;
  RecordTransition(replica, from, BreakerState::kClosed);
}

void ReplicaHealthTracker::RecordTransition(int replica, BreakerState from, BreakerState to) {
  if (options_.record_transitions) {
    if (transitions_.size() < options_.transition_log_cap) {
      transitions_.push_back({replica, from, to, sim_->Now()});
    } else {
      ++transitions_dropped_;
    }
  }
  if (obs::Tracer* tracer = sim_->tracer()) {
    obs::SpanKind kind = obs::SpanKind::kBreakerOpen;
    if (to == BreakerState::kHalfOpen) {
      kind = obs::SpanKind::kBreakerHalfOpen;
    } else if (to == BreakerState::kClosed) {
      kind = obs::SpanKind::kBreakerClose;
    }
    // request id 0: breaker transitions are per-replica, not per-request.
    tracer->RecordInstant(kind, obs::TraceContext{0, replica}, sim_->Now());
  }
  if (obs::MetricsRegistry* metrics = sim_->metrics()) {
    if (to == BreakerState::kOpen) {
      metrics->counter("resilience_breaker_open_total", replica).Add();
    } else if (to == BreakerState::kClosed) {
      metrics->counter("resilience_breaker_close_total", replica).Add();
    }
  }
}

}  // namespace mitt::resilience
