// Client-side retry governance: token-bucket retry budgets and
// decorrelated-jitter backoff.
//
// EBUSY failovers are cheap and bounded (at most replication-1 extra hops),
// but *non*-EBUSY retries — a dropped packet, a paused node, a partition —
// are where retry storms come from: every client re-sending into a degraded
// cluster multiplies the load that degraded it. Two standard controls:
//
//   * RetryBudget: a token bucket refilled by successful requests. A retry
//     costs one token; when the bucket is dry the client waits for the
//     outstanding attempt (or fails) instead of amplifying. The refill rate
//     bounds cluster-wide retry amplification at ~refill_per_success.
//   * DecorrelatedJitterBackoff: next = min(cap, uniform(base, prev * 3)) —
//     spreads retries of synchronized clients apart instead of letting them
//     re-collide every base*2^n (the classic exponential-backoff thundering
//     herd). Deterministic: each instance owns a seeded Rng stream.

#ifndef MITTOS_RESILIENCE_RETRY_POLICY_H_
#define MITTOS_RESILIENCE_RETRY_POLICY_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace mitt::resilience {

struct RetryBudgetOptions {
  // Tokens granted per successful request (fractional accrual).
  double refill_per_success = 0.1;
  // Bucket capacity: the largest retry burst one client may emit.
  double burst = 3.0;
  // Initial fill, so a client can retry before its first success.
  double initial = 3.0;
};

class RetryBudget {
 public:
  explicit RetryBudget(const RetryBudgetOptions& options)
      : options_(options), tokens_(options.initial) {}

  // A request completed successfully: accrue refill (capped at burst).
  void OnSuccess() {
    tokens_ += options_.refill_per_success;
    if (tokens_ > options_.burst) {
      tokens_ = options_.burst;
    }
  }

  // Returns true and consumes one token if a retry is allowed now.
  bool TryAcquire() {
    if (tokens_ < 1.0) {
      ++denied_;
      return false;
    }
    tokens_ -= 1.0;
    ++granted_;
    return true;
  }

  double tokens() const { return tokens_; }
  uint64_t granted() const { return granted_; }
  uint64_t denied() const { return denied_; }

 private:
  RetryBudgetOptions options_;
  double tokens_;
  uint64_t granted_ = 0;
  uint64_t denied_ = 0;
};

struct BackoffOptions {
  DurationNs base = Micros(500);
  DurationNs cap = Millis(20);
};

// AWS-style decorrelated jitter: sleep = min(cap, uniform(base, prev * 3)).
class DecorrelatedJitterBackoff {
 public:
  DecorrelatedJitterBackoff(const BackoffOptions& options, uint64_t seed)
      : options_(options), rng_(seed), prev_(options.base) {}

  DurationNs Next() {
    const double lo = static_cast<double>(options_.base);
    const double hi = static_cast<double>(prev_) * 3.0;
    DurationNs sleep = hi <= lo ? options_.base
                                : static_cast<DurationNs>(rng_.Uniform(lo, hi));
    if (sleep > options_.cap) {
      sleep = options_.cap;
    }
    prev_ = sleep;
    return sleep;
  }

  // A success resets the ladder so the next incident starts from base.
  void Reset() { prev_ = options_.base; }

 private:
  BackoffOptions options_;
  Rng rng_;
  DurationNs prev_;
};

}  // namespace mitt::resilience

#endif  // MITTOS_RESILIENCE_RETRY_POLICY_H_
