#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

namespace mitt::sim {

void Simulator::HeapPopTop() {
  const Handle carried = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) {
    return;
  }
  size_t i = 0;
  for (;;) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      break;
    }
    const size_t end_child = std::min(first_child + 4, n);
    size_t best = first_child;
    for (size_t c = first_child + 1; c < end_child; ++c) {
      if (HandleLess(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!HandleLess(heap_[best], carried)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = carried;
}

void Simulator::ReleaseSlot(uint32_t index) {
  Slot& slot = SlotAt(index);
  slot.fn = nullptr;  // Destroy any remaining capture state.
  ++slot.generation;  // Invalidates all ids handed out for the old occupant.
  slot.occupied = false;
  slot.cancelled = false;
  slot.next_free = free_head_;
  free_head_ = index;
}

bool Simulator::Cancel(EventId id) {
  const uint32_t index = SlotOf(id);
  if (index >= num_slots_) {
    return false;  // Never issued (covers kInvalidEventId).
  }
  Slot& slot = SlotAt(index);
  if (!slot.occupied || slot.generation != GenerationOf(id) || slot.cancelled) {
    return false;  // Already fired, already cancelled, or slot recycled.
  }
  slot.cancelled = true;
  --live_events_;
  return true;
}

bool Simulator::Step() {
  while (!HeapEmpty()) {
    const Handle top = HeapTop();
    HeapPopTop();
    Slot& slot = SlotAt(top.slot);
    if (!slot.daemon) {
      --non_daemon_pending_;
    }
    if (slot.cancelled) {
      ReleaseSlot(top.slot);
      continue;
    }
    now_ = top.when;
    ++executed_;
    --live_events_;
    // Invalidate the event's id *before* invoking so a Cancel() of this
    // event's own id returns false, then run the closure in place: the slot
    // stays off the free list while the closure executes (recursive
    // Schedule() calls cannot reuse it) and arena blocks keep its address
    // stable even if those calls grow the pool.
    ++slot.generation;
    slot.fn();
    ReleaseSlot(top.slot);
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (non_daemon_pending_ > 0 && Step()) {
  }
}

void Simulator::RunUntil(TimeNs deadline) {
  while (!HeapEmpty()) {
    const Handle top = HeapTop();
    // Skip cancelled events without advancing time.
    const Slot& slot = SlotAt(top.slot);
    if (slot.cancelled) {
      if (!slot.daemon) {
        --non_daemon_pending_;
      }
      ReleaseSlot(top.slot);
      HeapPopTop();
      continue;
    }
    if (top.when > deadline) {
      break;
    }
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

TimeNs Simulator::NextEventTime() {
  while (!HeapEmpty()) {
    const Handle top = HeapTop();
    const Slot& slot = SlotAt(top.slot);
    if (!slot.cancelled) {
      return top.when;
    }
    if (!slot.daemon) {
      --non_daemon_pending_;
    }
    ReleaseSlot(top.slot);
    HeapPopTop();
  }
  return -1;
}

void Simulator::RunWindow(TimeNs end) {
  while (!HeapEmpty()) {
    const Handle top = HeapTop();
    const Slot& slot = SlotAt(top.slot);
    if (slot.cancelled) {
      if (!slot.daemon) {
        --non_daemon_pending_;
      }
      ReleaseSlot(top.slot);
      HeapPopTop();
      continue;
    }
    if (top.when >= end) {
      break;
    }
    Step();  // Top is live and inside the window: executes exactly it.
  }
}

bool Simulator::RunUntilPredicate(const std::function<bool()>& pred) {
  if (pred()) {
    return true;
  }
  while (non_daemon_pending_ > 0 && Step()) {
    if (pred()) {
      return true;
    }
  }
  return false;
}

}  // namespace mitt::sim
