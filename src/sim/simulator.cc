#include "src/sim/simulator.h"

#include <utility>

namespace mitt::sim {

EventId Simulator::Schedule(DurationNs delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleInternal(now_ + delay, /*daemon=*/false, std::move(fn));
}

EventId Simulator::ScheduleAt(TimeNs when, std::function<void()> fn) {
  return ScheduleInternal(when, /*daemon=*/false, std::move(fn));
}

EventId Simulator::ScheduleDaemon(DurationNs delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleInternal(now_ + delay, /*daemon=*/true, std::move(fn));
}

EventId Simulator::ScheduleInternal(TimeNs when, bool daemon, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  const uint64_t seq = next_seq_++;
  const EventId id = seq;  // seq doubles as a unique id (never reused).
  heap_.push(Event{when, seq, id, daemon, std::move(fn)});
  if (!daemon) {
    ++non_daemon_pending_;
  }
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return false;
  }
  // Ids are monotonically increasing; an id >= next_seq_ was never issued.
  if (id >= next_seq_) {
    return false;
  }
  const bool inserted = cancelled_.insert(id).second;
  if (inserted) {
    ++cancelled_pending_;
  }
  return inserted;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    if (!ev.daemon) {
      --non_daemon_pending_;
    }
    const auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_pending_;
      continue;
    }
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (non_daemon_pending_ > 0 && Step()) {
  }
}

void Simulator::RunUntil(TimeNs deadline) {
  while (!heap_.empty()) {
    // Skip cancelled events without advancing time.
    if (cancelled_.count(heap_.top().id) > 0) {
      const Event& top = heap_.top();
      if (!top.daemon) {
        --non_daemon_pending_;
      }
      cancelled_.erase(top.id);
      --cancelled_pending_;
      heap_.pop();
      continue;
    }
    if (heap_.top().when > deadline) {
      break;
    }
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulator::RunUntilPredicate(const std::function<bool()>& pred) {
  if (pred()) {
    return true;
  }
  while (non_daemon_pending_ > 0 && Step()) {
    if (pred()) {
      return true;
    }
  }
  return false;
}

}  // namespace mitt::sim
