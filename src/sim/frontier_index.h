// Tournament-tree min index over per-shard event frontiers.
//
// The sharded engine needs, at every conservative barrier: the earliest
// pending event time across shards (the window frontier), the shard holding
// it, the earliest time among the *other* shards (the fusion horizon — see
// sharded_engine.h "quiet-frontier fusion"), and the set of shards with
// events below a window end. A flat rescan is O(S) per window and was the
// dominant bookkeeping term in low-density worlds where windows hold ~11
// events; this index makes every update O(log S) and lets the per-window
// cost scale with the shards that actually moved.
//
// Layout: a complete binary tree over `cap` (= S rounded up to a power of
// two) leaves, stored as the classic implicit array of 2*cap nodes; leaf s
// lives at cap+s and every internal node holds the min of its children.
// Absent frontiers (shard has no runnable event) are stored as kEmpty =
// INT64_MAX so min() composition needs no special cases. All operations are
// single-threaded (engine-coordinator only) and allocation-free after
// construction.

#ifndef MITTOS_SIM_FRONTIER_INDEX_H_
#define MITTOS_SIM_FRONTIER_INDEX_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/time.h"

namespace mitt::sim {

class FrontierIndex {
 public:
  static constexpr TimeNs kEmpty = std::numeric_limits<TimeNs>::max();

  explicit FrontierIndex(int num_shards) : n_(num_shards) {
    cap_ = 1;
    while (cap_ < n_) {
      cap_ <<= 1;
    }
    tree_.assign(static_cast<size_t>(cap_) * 2, kEmpty);
  }

  // Sets shard s's frontier (kEmpty = no runnable event) and repairs the
  // min path to the root. O(log S).
  void Set(int s, TimeNs t) {
    size_t i = static_cast<size_t>(cap_ + s);
    if (tree_[i] == t) {
      return;
    }
    tree_[i] = t;
    for (i >>= 1; i >= 1; i >>= 1) {
      const TimeNs m = std::min(tree_[i * 2], tree_[i * 2 + 1]);
      if (tree_[i] == m) {
        break;  // Upper path already correct.
      }
      tree_[i] = m;
    }
  }

  TimeNs Get(int s) const { return tree_[static_cast<size_t>(cap_ + s)]; }

  // Earliest frontier over all shards (kEmpty when none has events). O(1).
  TimeNs Min() const { return tree_[1]; }

  // The lowest-numbered shard holding Min(). Descends left-first, so ties
  // resolve to the smaller shard id deterministically. O(log S).
  int MinShard() const {
    size_t i = 1;
    const TimeNs m = tree_[1];
    while (i < static_cast<size_t>(cap_)) {
      i = (tree_[i * 2] == m) ? i * 2 : i * 2 + 1;
    }
    return static_cast<int>(i - static_cast<size_t>(cap_));
  }

  // Earliest frontier excluding `min_shard` (pass MinShard()): the min over
  // every sibling subtree along the root-to-leaf path. This is the fusion
  // horizon — no other shard can run before it. O(log S).
  TimeNs MinExcluding(int min_shard) const {
    TimeNs best = kEmpty;
    size_t i = static_cast<size_t>(cap_ + min_shard);
    while (i > 1) {
      best = std::min(best, tree_[i ^ 1]);  // Sibling subtree.
      i >>= 1;
    }
    return best;
  }

  // Calls f(shard) for every shard with frontier < bound, in ascending shard
  // order (left-to-right descent). Skips whole subtrees that cannot match,
  // so the cost is O(hits * log S) rather than O(S).
  template <typename F>
  void ForEachBelow(TimeNs bound, F&& f) const {
    CollectBelow(1, bound, f);
  }

 private:
  template <typename F>
  void CollectBelow(size_t i, TimeNs bound, F& f) const {
    if (tree_[i] >= bound) {
      return;
    }
    if (i >= static_cast<size_t>(cap_)) {
      const int s = static_cast<int>(i - static_cast<size_t>(cap_));
      if (s < n_) {
        f(s);
      }
      return;
    }
    CollectBelow(i * 2, bound, f);
    CollectBelow(i * 2 + 1, bound, f);
  }

  int n_;
  int cap_;
  std::vector<TimeNs> tree_;
};

}  // namespace mitt::sim

#endif  // MITTOS_SIM_FRONTIER_INDEX_H_
