#include "src/sim/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace mitt::sim {

namespace {

// Which (engine, shard) the calling thread is executing for. Each trial owns
// its own engine, so a thread pool from harness::RunTrialsParallel keeps the
// engines fully independent: the pointer match below makes CurrentShardId()
// correct even when several engines are alive at once.
struct ShardContext {
  const ShardedEngine* engine = nullptr;
  int shard = 0;
};
thread_local ShardContext tls_shard_context;

}  // namespace

int DefaultIntraWorkers() {
  if (const char* env = std::getenv("MITT_INTRA_WORKERS")) {
    const int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return 1;
}

ShardedEngine::ShardedEngine(const Options& options) : options_(options) {
  const int num_shards = options_.num_shards < 1 ? 1 : options_.num_shards;
  assert(num_shards == 1 || options_.lookahead > 0);
  workers_ = options_.workers > 0 ? options_.workers : DefaultIntraWorkers();
  if (workers_ > num_shards) {
    workers_ = num_shards;
  }
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    auto sim = std::make_unique<Simulator>();
    sim->SetShardContext(this, s);
    shards_.push_back(std::move(sim));
  }
  mail_.resize(static_cast<size_t>(num_shards) * static_cast<size_t>(num_shards));
  cp_prev_executed_.resize(static_cast<size_t>(num_shards), 0);
  cp_worker_load_.resize(static_cast<size_t>(num_shards), 0);
}

ShardedEngine::~ShardedEngine() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : pool_) {
    t.join();
  }
}

int ShardedEngine::CurrentShardId() const {
  const ShardContext& ctx = tls_shard_context;
  return ctx.engine == this ? ctx.shard : 0;
}

void ShardedEngine::Post(int dst_shard, TimeNs when, Callback fn) {
  const int src = CurrentShardId();
  // Conservative bound: a correctly derived lookahead makes this clamp a
  // no-op; it exists so an under-estimated hop (e.g. a fault multiplier
  // below 1.0) degrades to a deterministic delay instead of a causality
  // violation.
  if (when < window_end_) {
    when = window_end_;
  }
  mailbox(src, dst_shard).msgs.push_back({when, std::move(fn)});
}

void ShardedEngine::ScheduleGlobal(TimeNs when, Callback fn) {
  const TimeNs now = Now();
  if (when < now) {
    when = now;
  }
  globals_.push_back({when, next_global_seq_++, std::move(fn)});
  std::push_heap(globals_.begin(), globals_.end(), [](const GlobalEvent& a, const GlobalEvent& b) {
    return a.when != b.when ? a.when > b.when : a.seq > b.seq;  // Min-heap.
  });
}

TimeNs ShardedEngine::Now() const {
  TimeNs now = 0;
  for (const auto& shard : shards_) {
    now = std::max(now, shard->Now());
  }
  return now;
}

uint64_t ShardedEngine::executed_events() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->executed_events();
  }
  return total;
}

uint64_t ShardedEngine::critical_path_events(int workers) const {
  for (size_t k = 0; k < kNumCpWorkerCounts; ++k) {
    if (kCpWorkerCounts[k] == workers) {
      return critical_path_[k];
    }
  }
  return 0;
}

void ShardedEngine::AccumulateCriticalPath() {
  const size_t num_shards = shards_.size();
  for (size_t s = 0; s < num_shards; ++s) {
    const uint64_t executed = shards_[s]->executed_events();
    cp_worker_load_[s] = executed - cp_prev_executed_[s];  // Reused as delta.
    cp_prev_executed_[s] = executed;
  }
  for (size_t k = 0; k < kNumCpWorkerCounts; ++k) {
    const size_t w = static_cast<size_t>(kCpWorkerCounts[k]);
    uint64_t max_load = 0;
    for (size_t worker = 0; worker < w && worker < num_shards; ++worker) {
      uint64_t load = 0;
      for (size_t s = worker; s < num_shards; s += w) {
        load += cp_worker_load_[s];
      }
      max_load = std::max(max_load, load);
    }
    critical_path_[k] += max_load;
  }
}

size_t ShardedEngine::TotalNonDaemonPending() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->non_daemon_pending();
  }
  return total;
}

void ShardedEngine::Run() { RunLoop(nullptr); }

bool ShardedEngine::RunUntilPredicate(const std::function<bool()>& pred) {
  assert(pred != nullptr);
  return RunLoop(pred);
}

TimeNs ShardedEngine::RunGlobalsUpTo(TimeNs t) {
  const auto later = [](const GlobalEvent& a, const GlobalEvent& b) {
    return a.when != b.when ? a.when > b.when : a.seq > b.seq;
  };
  while (!globals_.empty() && globals_.front().when <= t) {
    std::pop_heap(globals_.begin(), globals_.end(), later);
    GlobalEvent g = std::move(globals_.back());
    globals_.pop_back();
    // Quiesced execution at exactly g.when: every shard clock reads g.when,
    // so a global mutation (fault apply, pause, crash) timestamps its spans
    // and its scheduled follow-ups consistently on every shard it touches.
    for (auto& shard : shards_) {
      shard->AdvanceTo(g.when);
    }
    g.fn();
  }
  return globals_.empty() ? kNoPendingEvent : globals_.front().when;
}

void ShardedEngine::DrainMailboxes() {
  const int num_shards = static_cast<int>(shards_.size());
  for (int dst = 0; dst < num_shards; ++dst) {
    drain_scratch_.clear();
    for (int src = 0; src < num_shards; ++src) {
      const auto& row = mailbox(src, dst).msgs;
      for (uint32_t i = 0; i < row.size(); ++i) {
        drain_scratch_.push_back({row[i].when, src, i});
      }
    }
    if (drain_scratch_.empty()) {
      continue;
    }
    // The deterministic tie-break: (time, source shard, send sequence).
    // Insertion order assigns destination-side seq numbers, so two messages
    // tied with a destination-local event fire after it (they were scheduled
    // later) and against each other in this sorted order — independent of
    // which worker ran which shard.
    std::sort(drain_scratch_.begin(), drain_scratch_.end(),
              [](const MsgRef& a, const MsgRef& b) {
                if (a.when != b.when) {
                  return a.when < b.when;
                }
                if (a.src != b.src) {
                  return a.src < b.src;
                }
                return a.index < b.index;
              });
    Simulator* dst_sim = shards_[static_cast<size_t>(dst)].get();
    for (const MsgRef& ref : drain_scratch_) {
      auto& row = mailbox(ref.src, dst).msgs;
      dst_sim->ScheduleAt(ref.when, std::move(row[ref.index].fn));
    }
    cross_messages_ += drain_scratch_.size();
    for (int src = 0; src < num_shards; ++src) {
      mailbox(src, dst).msgs.clear();  // Capacity retained (zero-alloc path).
    }
  }
}

void ShardedEngine::RunShardSubset(TimeNs window_end, int worker) {
  // Static assignment: shard s always runs on worker s % workers_. Shards
  // never migrate between threads, so per-shard heap blocks are allocated
  // and freed by the same thread (no cross-arena malloc traffic) and a
  // shard's working set stays warm in one core's cache across windows.
  for (const int s : ready_shards_) {
    if (s % workers_ != worker) {
      continue;
    }
    tls_shard_context = {this, s};
    shards_[static_cast<size_t>(s)]->RunWindow(window_end);
  }
  tls_shard_context = {this, 0};
  // Every worker checks in, including ones whose subset was empty this
  // window — the barrier must know no thread is still *reading*
  // ready_shards_ before the coordinator refills it for the next epoch.
  const std::lock_guard<std::mutex> lock(mu_);
  ++workers_done_;
  if (workers_done_ == static_cast<size_t>(workers_)) {
    done_cv_.notify_all();
  }
}

void ShardedEngine::WorkerLoop(int worker_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    TimeNs window_end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) {
        return;
      }
      seen_epoch = epoch_;
      window_end = pool_window_end_;
    }
    RunShardSubset(window_end, worker_index);
  }
}

void ShardedEngine::ExecuteWindow(TimeNs window_end) {
  window_end_ = window_end;
  if (workers_ <= 1 || ready_shards_.size() <= 1) {
    // Single-worker (or single-ready-shard) windows run inline in shard
    // order — the exact schedule a multi-worker run is measured against.
    for (const int s : ready_shards_) {
      tls_shard_context = {this, s};
      shards_[static_cast<size_t>(s)]->RunWindow(window_end);
    }
    tls_shard_context = {this, 0};
    return;
  }
  if (pool_.empty()) {
    pool_.reserve(static_cast<size_t>(workers_ - 1));
    for (int w = 1; w < workers_; ++w) {
      pool_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    pool_window_end_ = window_end;
    workers_done_ = 0;
    ++epoch_;
  }
  work_cv_.notify_all();
  RunShardSubset(window_end, /*worker=*/0);  // The coordinator is worker 0.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_done_ == static_cast<size_t>(workers_); });
}

bool ShardedEngine::RunLoop(const std::function<bool()>& pred) {
  next_times_.resize(shards_.size(), kNoPendingEvent);
  std::vector<TimeNs>& next_times = next_times_;
  const bool debug_timing = std::getenv("MITT_ENGINE_TIMING") != nullptr;
  double drain_sec = 0, exec_sec = 0;
  const auto loop_t0 = std::chrono::steady_clock::now();
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    DrainMailboxes();
    if (debug_timing) {
      drain_sec += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }
    if (pred != nullptr && pred()) {
      if (debug_timing) {
        const double total =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - loop_t0).count();
        std::fprintf(stderr, "[engine] total=%.2fs drain=%.2fs exec=%.2fs other=%.2fs\n",
                     total, drain_sec, exec_sec, total - drain_sec - exec_sec);
      }
      return true;
    }
    if (TotalNonDaemonPending() == 0) {
      return false;  // Drained (pending global events are daemon-like).
    }
    TimeNs global_min = kNoPendingEvent;
    for (size_t s = 0; s < shards_.size(); ++s) {
      next_times[s] = shards_[s]->NextEventTime();
      if (next_times[s] >= 0 && (global_min < 0 || next_times[s] < global_min)) {
        global_min = next_times[s];
      }
    }
    if (global_min < 0) {
      return false;
    }
    if (!globals_.empty() && globals_.front().when <= global_min) {
      // Globals due at the frontier run first, quiesced; they may schedule
      // shard events or further globals, so recompute from scratch.
      RunGlobalsUpTo(global_min);
      continue;
    }
    TimeNs window_end = global_min + options_.lookahead;
    if (window_end == global_min) {
      // Zero lookahead is only legal single-shard (see the ctor assert);
      // RunWindow's end is exclusive, so open the window one tick past the
      // frontier or no event would ever be admitted.
      ++window_end;
    }
    if (!globals_.empty() && globals_.front().when < window_end) {
      window_end = globals_.front().when;  // > global_min, checked above.
    }
    {
      // Refill under mu_: a pool worker draining the tail of the previous
      // epoch may still be reading ready_shards_ in its claim check.
      const std::lock_guard<std::mutex> lock(mu_);
      ready_shards_.clear();
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (next_times[s] >= 0 && next_times[s] < window_end) {
          ready_shards_.push_back(static_cast<int>(s));
        }
      }
    }
    const auto e0 = std::chrono::steady_clock::now();
    ExecuteWindow(window_end);
    if (debug_timing) {
      exec_sec += std::chrono::duration<double>(std::chrono::steady_clock::now() - e0).count();
    }
    window_end_ = 0;  // Quiesced: no clamp floor between windows.
    AccumulateCriticalPath();
    ++windows_;
  }
}

}  // namespace mitt::sim
