#include "src/sim/sharded_engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace mitt::sim {

namespace {

// Which (engine, shard) the calling thread is executing for. Each trial owns
// its own engine, so a thread pool from harness::RunTrialsParallel keeps the
// engines fully independent: the pointer match below makes CurrentShardId()
// correct even when several engines are alive at once.
struct ShardContext {
  const ShardedEngine* engine = nullptr;
  int shard = 0;
};
thread_local ShardContext tls_shard_context;

// Spin iterations before parking on the futex (atomic wait). Windows are
// microseconds apart when the engine is busy, so a short spin usually
// catches the next epoch without a syscall; parking keeps idle workers off
// the cores during long fused stretches and at end of run.
constexpr int kBarrierSpins = 1024;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

}  // namespace

int DefaultIntraWorkers() {
  if (const char* env = std::getenv("MITT_INTRA_WORKERS")) {
    const int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return 1;
}

int DefaultRebalancePeriod() {
  if (const char* env = std::getenv("MITT_ENGINE_REBALANCE")) {
    const int v = std::atoi(env);
    if (v >= 0) {
      return v;
    }
  }
  return 64;
}

bool DefaultFusionEnabled() {
  if (const char* env = std::getenv("MITT_ENGINE_FUSION")) {
    return std::atoi(env) != 0;
  }
  return true;
}

ShardedEngine::ShardedEngine(const Options& options)
    : options_(options),
      frontier_(options.num_shards < 1 ? 1 : options.num_shards) {
  const int num_shards = options_.num_shards < 1 ? 1 : options_.num_shards;
  assert(num_shards == 1 || options_.lookahead > 0);
  workers_ = options_.workers > 0 ? options_.workers : DefaultIntraWorkers();
  if (workers_ > num_shards) {
    workers_ = num_shards;
  }
  rebalance_period_ =
      options_.rebalance_period >= 0 ? options_.rebalance_period : DefaultRebalancePeriod();
  fusion_ = options_.fusion >= 0 ? options_.fusion != 0 : DefaultFusionEnabled();

  const auto S = static_cast<size_t>(num_shards);
  shards_.reserve(S);
  for (int s = 0; s < num_shards; ++s) {
    auto sim = std::make_unique<Simulator>();
    sim->SetShardContext(this, s);
    shards_.push_back(std::move(sim));
  }
  mail_.resize(S * S);
  dirty_rows_.resize(S);
  for (auto& lane : dirty_rows_) {
    lane.reserve(S);  // A row enters its src's lane at most once per window.
  }
  drain_rows_.reserve(4 * S);
  merge_heap_.reserve(S);
  nd_cache_.resize(S, 0);

  cp_prev_executed_.resize(S, 0);
  cp_window_delta_.resize(S, 0);
  rebalance_load_.resize(S, 0);
  lpt_order_.resize(S);
  const size_t max_bins = std::max<size_t>(S, 32);
  cp_bin_scratch_.resize(max_bins, 0);
  lpt_bins_.resize(max_bins, 0);
  assignment_.resize(S);
  for (int s = 0; s < num_shards; ++s) {
    assignment_[static_cast<size_t>(s)] = static_cast<uint8_t>(s % workers_);
  }
  for (size_t k = 0; k < kNumCpWorkerCounts; ++k) {
    const int w = std::min(kCpWorkerCounts[k], num_shards);
    maps_[k].resize(S);
    for (int s = 0; s < num_shards; ++s) {
      maps_[k][static_cast<size_t>(s)] = static_cast<uint8_t>(s % w);
    }
    worker_events_[k].resize(static_cast<size_t>(w), 0);
    worker_events_static_[k].resize(static_cast<size_t>(w), 0);
  }
  ready_shards_.reserve(S);
}

ShardedEngine::~ShardedEngine() {
  shutdown_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (std::thread& t : pool_) {
    t.join();
  }
}

int ShardedEngine::CurrentShardId() const {
  const ShardContext& ctx = tls_shard_context;
  return ctx.engine == this ? ctx.shard : 0;
}

void ShardedEngine::Post(int dst_shard, TimeNs when, Callback fn) {
  const int src = CurrentShardId();
  // Conservative bound: a correctly derived lookahead makes this clamp a
  // no-op; it exists so an under-estimated hop (e.g. a fault multiplier
  // below 1.0) degrades to a deterministic delay instead of a causality
  // violation.
  if (when < window_end_) {
    when = window_end_;
  }
  Mailbox& row = mailbox(src, dst_shard);
  if (row.msgs.empty()) {
    // First message on this row this window: enter src's dirty lane (only
    // src's thread touches it) and bump the coordinator's traffic count.
    // The relaxed increment is ordered before the coordinator's read by the
    // barrier check-in edges (see the memory-ordering contract below).
    dirty_rows_[static_cast<size_t>(src)].push_back(dst_shard);
    dirty_count_.fetch_add(1, std::memory_order_relaxed);
    row.sorted = true;
    row.max_when = when;
  } else if (when < row.max_when) {
    row.sorted = false;  // A jittered hop overtook an earlier send.
  } else {
    row.max_when = when;
  }
  row.msgs.push_back({when, std::move(fn)});
}

void ShardedEngine::ScheduleGlobal(TimeNs when, Callback fn) {
  const TimeNs now = Now();
  if (when < now) {
    when = now;
  }
  globals_.push_back({when, next_global_seq_++, std::move(fn)});
  std::push_heap(globals_.begin(), globals_.end(), [](const GlobalEvent& a, const GlobalEvent& b) {
    return a.when != b.when ? a.when > b.when : a.seq > b.seq;  // Min-heap.
  });
}

TimeNs ShardedEngine::Now() const {
  TimeNs now = 0;
  for (const auto& shard : shards_) {
    now = std::max(now, shard->Now());
  }
  return now;
}

uint64_t ShardedEngine::executed_events() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->executed_events();
  }
  return total;
}

uint64_t ShardedEngine::critical_path_events(int workers) const {
  for (size_t k = 0; k < kNumCpWorkerCounts; ++k) {
    if (kCpWorkerCounts[k] == workers) {
      return critical_path_[k];
    }
  }
  return 0;
}

uint64_t ShardedEngine::critical_path_events_static(int workers) const {
  for (size_t k = 0; k < kNumCpWorkerCounts; ++k) {
    if (kCpWorkerCounts[k] == workers) {
      return critical_path_static_[k];
    }
  }
  return 0;
}

namespace {
double ImbalanceOf(const std::vector<uint64_t>& bins) {
  uint64_t total = 0;
  uint64_t max = 0;
  for (const uint64_t b : bins) {
    total += b;
    max = std::max(max, b);
  }
  if (total == 0) {
    return 0;
  }
  const double mean = static_cast<double>(total) / static_cast<double>(bins.size());
  return static_cast<double>(max) / mean;
}
}  // namespace

double ShardedEngine::imbalance_ratio(int workers) const {
  for (size_t k = 0; k < kNumCpWorkerCounts; ++k) {
    if (kCpWorkerCounts[k] == workers) {
      return ImbalanceOf(worker_events_[k]);
    }
  }
  return 0;
}

double ShardedEngine::imbalance_ratio_static(int workers) const {
  for (size_t k = 0; k < kNumCpWorkerCounts; ++k) {
    if (kCpWorkerCounts[k] == workers) {
      return ImbalanceOf(worker_events_static_[k]);
    }
  }
  return 0;
}

// --- Per-window event-count histogram --------------------------------------

void ShardedEngine::WindowHistogram::Record(uint64_t value) {
  ++total;
  int b;
  if (value < (uint64_t{1} << kSubBits)) {
    b = static_cast<int>(value);  // 0..7 exact.
  } else {
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - kSubBits;
    const auto sub =
        static_cast<int>((value >> shift) & ((uint64_t{1} << kSubBits) - 1));
    b = ((msb - kSubBits + 1) << kSubBits) + sub;
  }
  if (b >= kBuckets) {
    b = kBuckets - 1;
  }
  ++counts[b];
}

double ShardedEngine::WindowHistogram::Percentile(double p) const {
  if (total == 0) {
    return 0;
  }
  const auto target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total - 1)) + 1;
  uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cum += counts[b];
    if (cum >= target) {
      if (b < (1 << kSubBits)) {
        return static_cast<double>(b);
      }
      const int msb = (b >> kSubBits) + kSubBits - 1;
      const int shift = msb - kSubBits;
      const uint64_t lo =
          ((uint64_t{1} << kSubBits) + static_cast<uint64_t>(b & ((1 << kSubBits) - 1)))
          << shift;
      const uint64_t width = uint64_t{1} << shift;
      return static_cast<double>(lo) + static_cast<double>(width - 1) / 2.0;
    }
  }
  return 0;
}

double ShardedEngine::events_per_window_percentile(double p) const {
  return window_hist_.Percentile(p);
}

// --- Cached frontier / pending bookkeeping ---------------------------------

void ShardedEngine::RefreshShard(int s) {
  Simulator* sim = shards_[static_cast<size_t>(s)].get();
  // NextEventTime first: it lazily pops tombstones, which adjusts the
  // non-daemon count read on the next line.
  const TimeNs t = sim->NextEventTime();
  frontier_.Set(s, t < 0 ? FrontierIndex::kEmpty : t);
  const size_t nd = sim->non_daemon_pending();
  nd_total_ = nd_total_ - nd_cache_[static_cast<size_t>(s)] + nd;
  nd_cache_[static_cast<size_t>(s)] = nd;
}

void ShardedEngine::RefreshAllShards() {
  for (int s = 0; s < num_shards(); ++s) {
    RefreshShard(s);
  }
}

// --- Load accounting & adaptive maps ---------------------------------------

void ShardedEngine::AccountWindow() {
  uint64_t window_events = 0;
  for (const int s : ready_shards_) {
    const auto idx = static_cast<size_t>(s);
    const uint64_t executed = shards_[idx]->executed_events();
    const uint64_t delta = executed - cp_prev_executed_[idx];
    cp_prev_executed_[idx] = executed;
    cp_window_delta_[idx] = delta;
    rebalance_load_[idx] += delta;
    window_events += delta;
  }
  window_hist_.Record(window_events);
  const int num = num_shards();
  for (size_t k = 0; k < kNumCpWorkerCounts; ++k) {
    const int w = std::min(kCpWorkerCounts[k], num);
    std::fill(cp_bin_scratch_.begin(), cp_bin_scratch_.begin() + w, 0);
    for (const int s : ready_shards_) {
      cp_bin_scratch_[maps_[k][static_cast<size_t>(s)]] += cp_window_delta_[static_cast<size_t>(s)];
    }
    uint64_t max_load = 0;
    for (int worker = 0; worker < w; ++worker) {
      worker_events_[k][static_cast<size_t>(worker)] += cp_bin_scratch_[static_cast<size_t>(worker)];
      max_load = std::max(max_load, cp_bin_scratch_[static_cast<size_t>(worker)]);
    }
    critical_path_[k] += max_load;

    std::fill(cp_bin_scratch_.begin(), cp_bin_scratch_.begin() + w, 0);
    for (const int s : ready_shards_) {
      cp_bin_scratch_[static_cast<size_t>(s % w)] += cp_window_delta_[static_cast<size_t>(s)];
    }
    max_load = 0;
    for (int worker = 0; worker < w; ++worker) {
      worker_events_static_[k][static_cast<size_t>(worker)] +=
          cp_bin_scratch_[static_cast<size_t>(worker)];
      max_load = std::max(max_load, cp_bin_scratch_[static_cast<size_t>(worker)]);
    }
    critical_path_static_[k] += max_load;
  }
  ++windows_since_rebalance_;
}

void ShardedEngine::AccountFusedWindow(int s) {
  const auto idx = static_cast<size_t>(s);
  const uint64_t executed = shards_[idx]->executed_events();
  const uint64_t delta = executed - cp_prev_executed_[idx];
  cp_prev_executed_[idx] = executed;
  rebalance_load_[idx] += delta;
  window_hist_.Record(delta);
  // Single active shard: the busiest bin is its bin under every map.
  const int num = num_shards();
  for (size_t k = 0; k < kNumCpWorkerCounts; ++k) {
    const int w = std::min(kCpWorkerCounts[k], num);
    critical_path_[k] += delta;
    critical_path_static_[k] += delta;
    worker_events_[k][maps_[k][idx]] += delta;
    worker_events_static_[k][static_cast<size_t>(s % w)] += delta;
  }
  ++windows_since_rebalance_;
}

void ShardedEngine::LptPack(const std::vector<int>& order, const std::vector<uint64_t>& loads,
                            int workers, std::vector<uint64_t>& bin_scratch,
                            std::vector<uint8_t>& out) {
  std::fill(bin_scratch.begin(), bin_scratch.begin() + workers, 0);
  for (const int s : order) {
    int best = 0;
    for (int w = 1; w < workers; ++w) {
      if (bin_scratch[static_cast<size_t>(w)] < bin_scratch[static_cast<size_t>(best)]) {
        best = w;  // Strict <: ties stay on the lowest worker id.
      }
    }
    out[static_cast<size_t>(s)] = static_cast<uint8_t>(best);
    bin_scratch[static_cast<size_t>(best)] += loads[static_cast<size_t>(s)];
  }
}

void ShardedEngine::Rebalance() {
  // Deterministic LPT: heaviest shard first onto the least-loaded worker,
  // every tie broken by id. Inputs are executed-event counts (deterministic)
  // and the repack happens at a quiesced barrier, so the maps are identical
  // at any actual worker count — and assignment never affects event order,
  // only which thread runs a shard.
  windows_since_rebalance_ = 0;
  const int num = num_shards();
  for (int s = 0; s < num; ++s) {
    lpt_order_[static_cast<size_t>(s)] = s;
  }
  std::sort(lpt_order_.begin(), lpt_order_.end(), [&](int a, int b) {
    const uint64_t la = rebalance_load_[static_cast<size_t>(a)];
    const uint64_t lb = rebalance_load_[static_cast<size_t>(b)];
    return la != lb ? la > lb : a < b;
  });
  for (size_t k = 0; k < kNumCpWorkerCounts; ++k) {
    const int w = std::min(kCpWorkerCounts[k], num);
    LptPack(lpt_order_, rebalance_load_, w, lpt_bins_, maps_[k]);
  }
  LptPack(lpt_order_, rebalance_load_, workers_, lpt_bins_, assignment_);
  std::fill(rebalance_load_.begin(), rebalance_load_.end(), 0);
}

// --- Globals ----------------------------------------------------------------

TimeNs ShardedEngine::RunGlobalsUpTo(TimeNs t) {
  const auto later = [](const GlobalEvent& a, const GlobalEvent& b) {
    return a.when != b.when ? a.when > b.when : a.seq > b.seq;
  };
  while (!globals_.empty() && globals_.front().when <= t) {
    std::pop_heap(globals_.begin(), globals_.end(), later);
    GlobalEvent g = std::move(globals_.back());
    globals_.pop_back();
    // Quiesced execution at exactly g.when: every shard clock reads g.when,
    // so a global mutation (fault apply, pause, crash) timestamps its spans
    // and its scheduled follow-ups consistently on every shard it touches.
    for (auto& shard : shards_) {
      shard->AdvanceTo(g.when);
    }
    g.fn();
  }
  return globals_.empty() ? kNoPendingEvent : globals_.front().when;
}

// --- Mailbox drain: O(dirty rows + messages), not O(S^2) --------------------

void ShardedEngine::DrainMailboxes() {
  // Gather the dirty rows (per-src lanes, written only by their own shard's
  // thread during the window; the barrier's check-in edges make them visible
  // here) into (dst, src) pairs and group by destination.
  drain_rows_.clear();
  const int num = num_shards();
  for (int src = 0; src < num; ++src) {
    auto& lane = dirty_rows_[static_cast<size_t>(src)];
    for (const int dst : lane) {
      drain_rows_.push_back({dst, src});
    }
    lane.clear();
  }
  dirty_count_.store(0, std::memory_order_relaxed);
  std::sort(drain_rows_.begin(), drain_rows_.end());  // (dst, then src).

  size_t i = 0;
  while (i < drain_rows_.size()) {
    const int dst = drain_rows_[i].first;
    size_t end = i;
    bool all_sorted = true;
    while (end < drain_rows_.size() && drain_rows_[end].first == dst) {
      all_sorted = all_sorted && mailbox(drain_rows_[end].second, dst).sorted;
      ++end;
    }
    Simulator* dst_sim = shards_[static_cast<size_t>(dst)].get();

    // The deterministic tie-break: (time, source shard, send sequence).
    // Insertion order assigns destination-side seq numbers, so two messages
    // tied with a destination-local event fire after it (they were scheduled
    // later) and against each other in this order — independent of which
    // worker ran which shard.
    if (all_sorted) {
      // Every row stayed time-ordered (the common case: hops from one shard
      // mostly arrive in send order): k-way merge on (when, src) — keys are
      // unique per head since each src feeds one row. O(M log k).
      const auto head_after = [](const MergeHead& a, const MergeHead& b) {
        return a.when != b.when ? a.when > b.when : a.src > b.src;
      };
      merge_heap_.clear();
      for (size_t r = i; r < end; ++r) {
        const int src = drain_rows_[r].second;
        const auto& row = mailbox(src, dst);
        merge_heap_.push_back(
            {row.msgs[0].when, src, 0, static_cast<uint32_t>(row.msgs.size())});
        std::push_heap(merge_heap_.begin(), merge_heap_.end(), head_after);
      }
      while (!merge_heap_.empty()) {
        std::pop_heap(merge_heap_.begin(), merge_heap_.end(), head_after);
        MergeHead& h = merge_heap_.back();
        auto& row = mailbox(h.src, dst);
        dst_sim->ScheduleAt(h.when, std::move(row.msgs[h.index].fn));
        ++cross_messages_;
        if (++h.index < h.size) {
          h.when = row.msgs[h.index].when;
          std::push_heap(merge_heap_.begin(), merge_heap_.end(), head_after);
        } else {
          merge_heap_.pop_back();
        }
      }
    } else {
      // A jittered hop overtook an earlier send somewhere: fall back to the
      // flat (when, src, index) sort over this destination's dirty rows.
      drain_scratch_.clear();
      for (size_t r = i; r < end; ++r) {
        const int src = drain_rows_[r].second;
        const auto& row = mailbox(src, dst).msgs;
        for (uint32_t m = 0; m < row.size(); ++m) {
          drain_scratch_.push_back({row[m].when, src, m});
        }
      }
      std::sort(drain_scratch_.begin(), drain_scratch_.end(),
                [](const MsgRef& a, const MsgRef& b) {
                  if (a.when != b.when) {
                    return a.when < b.when;
                  }
                  if (a.src != b.src) {
                    return a.src < b.src;
                  }
                  return a.index < b.index;
                });
      for (const MsgRef& ref : drain_scratch_) {
        auto& row = mailbox(ref.src, dst).msgs;
        dst_sim->ScheduleAt(ref.when, std::move(row[ref.index].fn));
      }
      cross_messages_ += drain_scratch_.size();
    }

    for (size_t r = i; r < end; ++r) {
      Mailbox& row = mailbox(drain_rows_[r].second, dst);
      row.msgs.clear();  // Capacity retained (zero-alloc path).
      row.sorted = true;
      row.max_when = 0;
    }
    RefreshShard(dst);  // New events landed: frontier + non-daemon count moved.
    i = end;
  }
}

// --- Worker pool: sense-reversing atomic epoch barrier ----------------------
//
// Memory-ordering contract (the happens-before edges every mailbox row and
// shard heap relies on; TSan CI runs the suite at MITT_INTRA_WORKERS=4):
//
//  publish:  coordinator writes (drained shard heaps, ready_shards_,
//            assignment_, pool_window_end_, workers_done_ = 0) …
//            → epoch_.fetch_add(release)
//            → worker epoch_.load(acquire) sees the bump
//            ⇒ all coordinator writes visible to every worker.
//  check-in: worker writes (its shards' heaps/clocks, its mailbox rows, its
//            dirty lane, its relaxed dirty_count_ bumps) …
//            → workers_done_.fetch_add(release)
//            → coordinator workers_done_.load(acquire) reads workers_
//            ⇒ all worker writes visible to the coordinator's drain.
//  worker→worker (a shard or a mailbox row migrating between workers under
//            an adaptive repack): transitively through the two edges above —
//            A's check-in happens-before the barrier's drain, which
//            happens-before the next epoch publish B acquires.
//
// epoch_ is the generalized sense of a sense-reversing barrier: it only
// increments, so no done-flag ever needs a reset that could race with a
// late waiter, and workers_done_ is reset by the coordinator strictly
// between epochs (after every check-in of the previous one was observed).
// Both sides spin kBarrierSpins before parking on C++20 atomic wait/notify
// (a futex on Linux), so back-to-back windows stay syscall-free while idle
// stretches — long fused batches, end of run — leave the cores free.

void ShardedEngine::RunShardSubset(TimeNs window_end, int worker) {
  for (const int s : ready_shards_) {
    if (assignment_[static_cast<size_t>(s)] != worker) {
      continue;
    }
    tls_shard_context = {this, s};
    shards_[static_cast<size_t>(s)]->RunWindow(window_end);
  }
  tls_shard_context = {this, 0};
  // Every worker checks in, including ones whose subset was empty this
  // window — the barrier must know no thread is still *reading*
  // ready_shards_ before the coordinator refills it for the next epoch.
  const uint32_t done = workers_done_.fetch_add(1, std::memory_order_release) + 1;
  if (done == static_cast<uint32_t>(workers_)) {
    workers_done_.notify_all();
  }
}

void ShardedEngine::WorkerLoop(int worker_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    uint64_t e = epoch_.load(std::memory_order_acquire);
    int spins = 0;
    while (e == seen_epoch) {
      if (++spins < kBarrierSpins) {
        CpuRelax();
      } else {
        epoch_.wait(e, std::memory_order_acquire);
        spins = 0;
      }
      e = epoch_.load(std::memory_order_acquire);
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    seen_epoch = e;
    RunShardSubset(pool_window_end_, worker_index);
  }
}

void ShardedEngine::ExecuteWindow(TimeNs window_end) {
  window_end_ = window_end;
  if (workers_ <= 1 || ready_shards_.size() <= 1) {
    // Single-worker (or single-ready-shard) windows run inline in shard
    // order — the exact schedule a multi-worker run is measured against.
    for (const int s : ready_shards_) {
      tls_shard_context = {this, s};
      shards_[static_cast<size_t>(s)]->RunWindow(window_end);
    }
    tls_shard_context = {this, 0};
    return;
  }
  if (pool_.empty()) {
    pool_.reserve(static_cast<size_t>(workers_ - 1));
    for (int w = 1; w < workers_; ++w) {
      pool_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }
  pool_window_end_ = window_end;
  workers_done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  RunShardSubset(window_end, /*worker=*/0);  // The coordinator is worker 0.
  uint32_t done = workers_done_.load(std::memory_order_acquire);
  int spins = 0;
  while (done != static_cast<uint32_t>(workers_)) {
    if (++spins < kBarrierSpins) {
      CpuRelax();
    } else {
      workers_done_.wait(done, std::memory_order_acquire);
      spins = 0;
    }
    done = workers_done_.load(std::memory_order_acquire);
  }
}

// --- The window loop --------------------------------------------------------

void ShardedEngine::Run() { RunLoop(nullptr); }

bool ShardedEngine::RunUntilPredicate(const std::function<bool()>& pred) {
  assert(pred != nullptr);
  return RunLoop(pred);
}

bool ShardedEngine::RunLoop(const std::function<bool()>& pred) {
  // Events may have been scheduled since the last call (setup, a previous
  // RunUntilPredicate round): resync every cached frontier once; inside the
  // loop only shards that moved are re-read.
  RefreshAllShards();
  const bool debug_timing = std::getenv("MITT_ENGINE_TIMING") != nullptr;
  double drain_sec = 0, exec_sec = 0;
  const auto loop_t0 = std::chrono::steady_clock::now();
  for (;;) {
    if (dirty_count_.load(std::memory_order_relaxed) != 0) {
      const auto t0 = std::chrono::steady_clock::now();
      DrainMailboxes();
      if (debug_timing) {
        drain_sec += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      }
    }
    if (pred != nullptr && pred()) {
      if (debug_timing) {
        const double total =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - loop_t0).count();
        std::fprintf(stderr,
                     "[engine] total=%.2fs drain=%.2fs exec=%.2fs other=%.2fs "
                     "windows=%llu fused=%llu\n",
                     total, drain_sec, exec_sec, total - drain_sec - exec_sec,
                     static_cast<unsigned long long>(windows_),
                     static_cast<unsigned long long>(fused_windows_));
      }
      return true;
    }
    if (nd_total_ == 0) {
      return false;  // Drained (pending global events are daemon-like).
    }
    const TimeNs global_min = frontier_.Min();
    if (global_min == FrontierIndex::kEmpty) {
      return false;  // Only tombstones/daemons left.
    }
    if (!globals_.empty() && globals_.front().when <= global_min) {
      // Globals due at the frontier run first, quiesced; they may schedule
      // shard events or further globals anywhere, so resync everything.
      RunGlobalsUpTo(global_min);
      RefreshAllShards();
      continue;
    }
    TimeNs window_end = global_min + options_.lookahead;
    if (window_end == global_min) {
      // Zero lookahead is only legal single-shard (see the ctor assert);
      // RunWindow's end is exclusive, so open the window one tick past the
      // frontier or no event would ever be admitted.
      ++window_end;
    }
    if (!globals_.empty() && globals_.front().when < window_end) {
      window_end = globals_.front().when;  // > global_min, checked above.
    }

    // Quiet-frontier fusion: exactly one shard below the horizon and no
    // buffered traffic. The window is provably interaction-free — posts from
    // it land at >= t + lookahead >= window_end (the lookahead bound) and
    // every other shard is parked at or past the horizon — so it runs inline
    // with O(1) bookkeeping: no drain scan, no pool handoff, one frontier
    // leaf update. Window boundaries and pred-check instants are exactly the
    // unfused schedule's, so results are byte-identical either way.
    if (fusion_ && dirty_count_.load(std::memory_order_relaxed) == 0) {
      const int s = frontier_.MinShard();
      if (frontier_.MinExcluding(s) >= window_end) {
        window_end_ = window_end;
        tls_shard_context = {this, s};
        shards_[static_cast<size_t>(s)]->RunWindow(window_end);
        tls_shard_context = {this, 0};
        window_end_ = 0;
        RefreshShard(s);
        AccountFusedWindow(s);
        ++windows_;
        ++fused_windows_;
        continue;
      }
    }

    // Full barrier path. The previous epoch's check-ins completed before
    // ExecuteWindow returned, so refilling ready_shards_ needs no lock.
    ready_shards_.clear();
    frontier_.ForEachBelow(window_end, [this](int s) { ready_shards_.push_back(s); });
    if (rebalance_period_ > 0 &&
        windows_since_rebalance_ >= static_cast<uint64_t>(rebalance_period_)) {
      Rebalance();
    }
    const auto e0 = std::chrono::steady_clock::now();
    ExecuteWindow(window_end);
    if (debug_timing) {
      exec_sec += std::chrono::duration<double>(std::chrono::steady_clock::now() - e0).count();
    }
    window_end_ = 0;  // Quiesced: no clamp floor between windows.
    for (const int s : ready_shards_) {
      RefreshShard(s);
    }
    AccountWindow();
    ++windows_;
  }
}

}  // namespace mitt::sim
