// Intra-trial parallel discrete-event engine: conservative PDES over shards.
//
// One trial used to be one single-threaded Simulator, so a scenario was
// capped near the paper's ~20-node scale no matter how many cores the host
// has (`harness::RunTrialsParallel` only parallelizes *across* trials). The
// ShardedEngine splits one simulated world into S shards — each shard is a
// full Simulator (same slot-arena event pool, same 4-ary handle heap) owning
// a disjoint set of actors (nodes, their OS/device/scheduler stacks, the
// clients homed on it) — and drives them with conservative time windows:
//
//   lookahead L  = the minimum one-way network hop (cluster::Network's
//                  one_way - jitter): any cross-shard interaction is a
//                  network message, so an event executing at time t cannot
//                  affect another shard before t + L.
//   window       = [*, global_min + L) where global_min is the earliest
//                  pending event across all shards. Every shard may execute
//                  its events strictly below the window end with no
//                  communication, in parallel.
//   barrier      = cross-shard messages buffered during the window are
//                  drained into their destination shards in deterministic
//                  (time, source shard, send sequence) order, global_min is
//                  recomputed, and the next window opens.
//
// Determinism contract (the invariant every subsystem relies on): results
// are bit-identical at any MITT_INTRA_WORKERS value, including 1, and
// composable with MITT_TRIAL_WORKERS. Worker count only decides which thread
// executes a shard's window — never the order of events. The pieces:
//   * within a shard, events fire in (time, per-shard seq) order exactly as
//     in a plain Simulator;
//   * mailbox drains are sorted by (time, src shard, per-pair seq) and
//     inserted at the barrier, so destination-side tie-breaking is a pure
//     function of the simulation, not of thread scheduling;
//   * shard-crossing layers (cluster::Network) keep one RNG stream per
//     source shard, consumed only by that shard's thread;
//   * fault/world mutations that touch cross-shard state run as *global
//     events*: timestamped closures executed while every shard is quiesced
//     at a barrier, before any shard event at an equal-or-later time.
//
// Hot-path budget: mailbox slots hold InlineFunction closures (48-byte SBO)
// in vectors that retain capacity across windows, so the steady-state
// cross-shard send->drain->fire path performs zero heap allocations (gated
// by tests/alloc_test.cc). The shard count is a pure function of the
// scenario (never of worker count or hardware), which is what makes the
// worker-count invariance total.

#ifndef MITTOS_SIM_SHARDED_ENGINE_H_
#define MITTOS_SIM_SHARDED_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace mitt::sim {

// Worker count used when ShardedEngine::Options.workers <= 0:
// $MITT_INTRA_WORKERS if set, otherwise 1 (conservative default so
// trial-level parallelism is never oversubscribed implicitly).
int DefaultIntraWorkers();

class ShardedEngine {
 public:
  struct Options {
    int num_shards = 1;
    // Conservative lookahead; must be > 0 when num_shards > 1. Derive it
    // from the minimum cross-shard interaction latency (for cluster worlds:
    // NetworkParams.one_way - NetworkParams.jitter).
    DurationNs lookahead = 0;
    // Threads executing shard windows. <= 0 resolves via
    // DefaultIntraWorkers(). Results are bit-identical at any value.
    int workers = 0;
  };

  explicit ShardedEngine(const Options& options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  ~ShardedEngine();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Simulator* shard(int s) { return shards_[static_cast<size_t>(s)].get(); }
  DurationNs lookahead() const { return options_.lookahead; }
  int workers() const { return workers_; }

  // The shard executing on the calling thread during a window; outside any
  // window (setup, barriers, global events) this is shard 0. Used by
  // cluster::Network to pick the caller's RNG lane / mailbox row without
  // threading a shard id through every layer.
  int CurrentShardId() const;

  // Cross-shard message: run `fn` on `dst_shard` at absolute time `when`.
  // Must be called from the engine's own execution contexts (a shard window
  // on a worker thread, a global event, or setup before Run). `when` is
  // clamped to the open window's end — the conservative bound messages are
  // guaranteed to respect when the lookahead is derived correctly.
  void Post(int dst_shard, TimeNs when, Callback fn);

  // Global event: `fn` runs at absolute time `when` while every shard is
  // quiesced (all shard clocks advanced to `when`, no window executing), and
  // before any shard event with an equal or later timestamp. Daemon-like:
  // pending global events never keep Run() alive. Use for mutations of
  // cross-shard state (network link faults, node pause/crash injection).
  void ScheduleGlobal(TimeNs when, Callback fn);

  // Runs windows until no shard holds a non-daemon event and no message is
  // in flight (the multi-shard analogue of Simulator::Run()).
  void Run();

  // Runs windows until `pred()` returns true — checked at every barrier,
  // while quiesced — or the engine drains. Returns true if the predicate was
  // satisfied. Predicate evaluation is deterministic: barriers fall at the
  // same simulated times for any worker count.
  bool RunUntilPredicate(const std::function<bool()>& pred);

  // Largest shard clock (the simulated time the world has reached).
  TimeNs Now() const;

  uint64_t executed_events() const;       // Summed over shards.
  uint64_t cross_shard_messages() const { return cross_messages_; }
  uint64_t windows_run() const { return windows_; }

  // Critical-path event count for a hypothetical `workers`-thread run under
  // the engine's static shard map (shard s -> worker s % workers): the sum
  // over windows of the busiest worker's event count. executed_events() /
  // critical_path_events(w) is the wall-clock speedup an w-core host could
  // reach, computed deterministically from event counts — it is how the
  // scaling bench reports parallelism on hosts with fewer cores than
  // workers. Tracked for workers in {1, 2, 4, 8, 16, 32}; returns 0 for
  // other values.
  uint64_t critical_path_events(int workers) const;

 private:
  struct Mailbox {
    // One row per (src, dst) pair; written only by src's thread during a
    // window, drained only at barriers. Capacity is retained across windows.
    struct Msg {
      TimeNs when;
      Callback fn;
    };
    std::vector<Msg> msgs;
  };

  struct GlobalEvent {
    TimeNs when;
    uint64_t seq;
    Callback fn;
  };

  // Sort key for deterministic mailbox drains.
  struct MsgRef {
    TimeNs when;
    int src;
    uint32_t index;
  };

  Mailbox& mailbox(int src, int dst) {
    return mail_[static_cast<size_t>(src) * shards_.size() + static_cast<size_t>(dst)];
  }

  bool RunLoop(const std::function<bool()>& pred);
  // Advances every shard clock to `t` and fires due global events. Returns
  // the time of the next pending global event (or kNoPendingEvent).
  TimeNs RunGlobalsUpTo(TimeNs t);
  void DrainMailboxes();
  void ExecuteWindow(TimeNs window_end);  // Parallel phase + barrier.
  void WorkerLoop(int worker_index);
  void RunShardSubset(TimeNs window_end, int worker);
  void AccumulateCriticalPath();  // Per-window load bookkeeping (quiesced).
  size_t TotalNonDaemonPending() const;

  static constexpr TimeNs kNoPendingEvent = -1;

  Options options_;
  int workers_ = 1;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<Mailbox> mail_;  // num_shards^2 rows, indexed [src * S + dst].
  std::vector<MsgRef> drain_scratch_;
  std::vector<TimeNs> next_times_;  // RunLoop scratch (alloc-free re-entry).
  std::vector<GlobalEvent> globals_;  // Min-heap on (when, seq).
  uint64_t next_global_seq_ = 1;
  TimeNs window_end_ = 0;  // Conservative horizon while a window is open.
  uint64_t cross_messages_ = 0;
  uint64_t windows_ = 0;

  // Critical-path accounting (see critical_path_events()). kCpWorkerCounts
  // lists the hypothetical worker counts tracked; scratch vectors avoid
  // per-window allocation.
  static constexpr int kCpWorkerCounts[] = {1, 2, 4, 8, 16, 32};
  static constexpr size_t kNumCpWorkerCounts = sizeof(kCpWorkerCounts) / sizeof(int);
  uint64_t critical_path_[kNumCpWorkerCounts] = {};
  std::vector<uint64_t> cp_prev_executed_;
  std::vector<uint64_t> cp_worker_load_;

  // Worker pool (created lazily on the first multi-worker Run). Coordination
  // is a mutex + condvar epoch barrier: the coordinator refills ready_shards_
  // and publishes a window (epoch bump), each worker runs its statically
  // assigned subset (shard s belongs to worker s % workers_ — a fixed map, so
  // a shard's allocations and cache-warm state stay on one thread across
  // windows), and the coordinator waits until every ready shard is done. The
  // mutex handoffs establish the happens-before edges that make mailbox rows
  // and shard heaps safely visible across threads (TSan-verified in CI).
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
  TimeNs pool_window_end_ = 0;
  std::vector<int> ready_shards_;  // Refilled under mu_ between epochs.
  size_t workers_done_ = 0;        // Guarded by mu_. Check-ins this epoch.
};

}  // namespace mitt::sim

#endif  // MITTOS_SIM_SHARDED_ENGINE_H_
