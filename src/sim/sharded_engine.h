// Intra-trial parallel discrete-event engine: conservative PDES over shards.
//
// One trial used to be one single-threaded Simulator, so a scenario was
// capped near the paper's ~20-node scale no matter how many cores the host
// has (`harness::RunTrialsParallel` only parallelizes *across* trials). The
// ShardedEngine splits one simulated world into S shards — each shard is a
// full Simulator (same slot-arena event pool, same 4-ary handle heap) owning
// a disjoint set of actors (nodes, their OS/device/scheduler stacks, the
// clients homed on it) — and drives them with conservative time windows:
//
//   lookahead L  = the minimum one-way network hop (cluster::Network's
//                  one_way - jitter): any cross-shard interaction is a
//                  network message, so an event executing at time t cannot
//                  affect another shard before t + L.
//   window       = [*, global_min + L) where global_min is the earliest
//                  pending event across all shards. Every shard may execute
//                  its events strictly below the window end with no
//                  communication, in parallel.
//   barrier      = cross-shard messages buffered during the window are
//                  drained into their destination shards in deterministic
//                  (time, source shard, send sequence) order, global_min is
//                  recomputed, and the next window opens.
//
// Determinism contract (the invariant every subsystem relies on): results
// are bit-identical at any MITT_INTRA_WORKERS value, including 1, and
// composable with MITT_TRIAL_WORKERS. Worker count only decides which thread
// executes a shard's window — never the order of events. The pieces:
//   * within a shard, events fire in (time, per-shard seq) order exactly as
//     in a plain Simulator;
//   * mailbox drains are sorted by (time, src shard, per-pair seq) and
//     inserted at the barrier, so destination-side tie-breaking is a pure
//     function of the simulation, not of thread scheduling;
//   * shard-crossing layers (cluster::Network) keep one RNG stream per
//     source shard, consumed only by that shard's thread;
//   * fault/world mutations that touch cross-shard state run as *global
//     events*: timestamped closures executed while every shard is quiesced
//     at a barrier, before any shard event at an equal-or-later time.
//
// Scale-out machinery (all of it schedule-preserving — the event order, and
// therefore every scorecard, is byte-identical with each feature on or off
// and at any worker count):
//
//   * Quiet-frontier window FUSION. When exactly one shard holds events
//     below the window end (SecondMin >= global_min + L) and no cross-shard
//     message is buffered, the window cannot interact with any other shard:
//     messages posted inside it land at >= t + L >= window_end (the
//     lookahead bound), and every other shard is parked at or beyond the
//     horizon. Such windows run inline on the coordinator with O(1)
//     bookkeeping — no drain scan, no pool handoff, no frontier rescan (only
//     the active shard's leaf updates) — and a post or a second shard
//     arriving at the frontier falls back to a full barrier, which drains
//     the mailbox exactly where the unfused engine would have. Window
//     boundaries, pred-check instants, and message delivery barriers are
//     identical to the unfused schedule; only the per-window cost changes.
//     Disk-bound low-density worlds (~11 events/shard-window) spend most
//     windows here. fused_windows() counts them; windows_run() counts all.
//   * ADAPTIVE shard->worker assignment. Per-shard executed-event deltas are
//     accumulated per window; every rebalance_period windows the coordinator
//     repacks the shard->worker map with a deterministic LPT bin-packing
//     (heaviest shard first onto the least-loaded worker, ties by lowest
//     id). Assignment only picks *which thread* runs a shard, never event
//     order, so determinism is free; the load inputs are deterministic event
//     counts, so the maps are identical at any actual worker count.
//   * SENSE-REVERSING ATOMIC BARRIER. The per-window pool handoff is a
//     monotone epoch counter (the generalized sense — no flag ever needs a
//     racy reset) plus a done counter, spin-then-park on C++20 atomic
//     wait/notify. Memory-ordering contract in sharded_engine.cc.
//   * O(active) BOOKKEEPING. Mailbox drains walk per-source dirty-row lists
//     (never the S^2 row matrix), k-way-merge rows that stayed time-sorted
//     and sort only rows a jittered hop reordered; the global frontier lives
//     in a FrontierIndex tournament tree (O(log S) per moved shard); the
//     non-daemon pending total is maintained incrementally. Per-window cost
//     scales with the shards and messages that actually moved.
//
// Hot-path budget: mailbox slots hold InlineFunction closures (48-byte SBO)
// in vectors that retain capacity across windows, and every scratch
// structure (drain refs, dirty lists, ready list, LPT bins, frontiers) is
// sized at construction, so the steady-state window loop — barrier, fusion,
// and rebalance paths included — performs zero heap allocations (gated by
// tests/alloc_test.cc). The shard count is a pure function of the scenario
// (never of worker count or hardware), which is what makes the worker-count
// invariance total.

#ifndef MITTOS_SIM_SHARDED_ENGINE_H_
#define MITTOS_SIM_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/time.h"
#include "src/sim/frontier_index.h"
#include "src/sim/simulator.h"

namespace mitt::sim {

// Worker count used when ShardedEngine::Options.workers <= 0:
// $MITT_INTRA_WORKERS if set, otherwise 1 (conservative default so
// trial-level parallelism is never oversubscribed implicitly).
int DefaultIntraWorkers();

// Env-resolved defaults for the engine knobs below. Exposed for tests.
int DefaultRebalancePeriod();  // $MITT_ENGINE_REBALANCE, else 64.
bool DefaultFusionEnabled();   // $MITT_ENGINE_FUSION != "0", else true.

class ShardedEngine {
 public:
  struct Options {
    int num_shards = 1;
    // Conservative lookahead; must be > 0 when num_shards > 1. Derive it
    // from the minimum cross-shard interaction latency (for cluster worlds:
    // NetworkParams.one_way - NetworkParams.jitter).
    DurationNs lookahead = 0;
    // Threads executing shard windows. <= 0 resolves via
    // DefaultIntraWorkers(). Results are bit-identical at any value.
    int workers = 0;
    // Windows between adaptive LPT repacks of the shard->worker map.
    // 0 = static map (shard s on worker s % workers, the pre-overhaul
    // behavior); < 0 resolves via DefaultRebalancePeriod(). Never affects
    // results, only which thread runs which shard.
    int rebalance_period = -1;
    // Quiet-frontier window fusion. 0 = off, 1 = on; < 0 resolves via
    // DefaultFusionEnabled(). Schedule-preserving: results and window
    // counts are identical either way, only per-window cost changes.
    int fusion = -1;
  };

  explicit ShardedEngine(const Options& options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  ~ShardedEngine();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Simulator* shard(int s) { return shards_[static_cast<size_t>(s)].get(); }
  DurationNs lookahead() const { return options_.lookahead; }
  int workers() const { return workers_; }

  // The shard executing on the calling thread during a window; outside any
  // window (setup, barriers, global events) this is shard 0. Used by
  // cluster::Network to pick the caller's RNG lane / mailbox row without
  // threading a shard id through every layer.
  int CurrentShardId() const;

  // Cross-shard message: run `fn` on `dst_shard` at absolute time `when`.
  // Must be called from the engine's own execution contexts (a shard window
  // on a worker thread, a global event, or setup before Run). `when` is
  // clamped to the open window's end — the conservative bound messages are
  // guaranteed to respect when the lookahead is derived correctly.
  void Post(int dst_shard, TimeNs when, Callback fn);

  // Global event: `fn` runs at absolute time `when` while every shard is
  // quiesced (all shard clocks advanced to `when`, no window executing), and
  // before any shard event with an equal or later timestamp. Daemon-like:
  // pending global events never keep Run() alive. Use for mutations of
  // cross-shard state (network link faults, node pause/crash injection).
  void ScheduleGlobal(TimeNs when, Callback fn);

  // Runs windows until no shard holds a non-daemon event and no message is
  // in flight (the multi-shard analogue of Simulator::Run()).
  void Run();

  // Runs windows until `pred()` returns true — checked at every barrier,
  // while quiesced — or the engine drains. Returns true if the predicate was
  // satisfied. Predicate evaluation is deterministic: barriers fall at the
  // same simulated times for any worker count (and with fusion on or off).
  bool RunUntilPredicate(const std::function<bool()>& pred);

  // Largest shard clock (the simulated time the world has reached).
  TimeNs Now() const;

  uint64_t executed_events() const;       // Summed over shards.
  uint64_t cross_shard_messages() const { return cross_messages_; }
  uint64_t windows_run() const { return windows_; }
  // Windows executed through the quiet-frontier fast path: no mailbox
  // drain, no pool handoff, O(1) bookkeeping. windows_run() includes them;
  // windows_run() - fused_windows() is the number of full barriers paid.
  uint64_t fused_windows() const { return fused_windows_; }

  // Critical-path event count for a hypothetical `workers`-thread run: the
  // sum over windows of the busiest worker's event count under the engine's
  // shard->worker map policy (adaptive LPT maps maintained per hypothetical
  // count when rebalancing is on, the static s % workers map when off).
  // executed_events() / critical_path_events(w) is the wall-clock speedup a
  // w-core host could reach, computed deterministically from event counts —
  // it is how the scaling bench reports parallelism on hosts with fewer
  // cores than workers. Tracked for workers in {1, 2, 4, 8, 16, 32};
  // returns 0 for other values. critical_path_events_static(w) is the same
  // sum under the static map regardless of policy — the before/after pair
  // the scaling bench reports.
  uint64_t critical_path_events(int workers) const;
  uint64_t critical_path_events_static(int workers) const;

  // Whole-run executed-event imbalance for a hypothetical `workers`-thread
  // run: max over workers of total events executed, divided by the mean —
  // 1.0 is a perfect split. Same tracked counts as critical_path_events();
  // returns 0 for untracked counts or before any window ran. The adaptive
  // flavor reflects the engine's map policy; the static flavor always bins
  // by s % workers.
  double imbalance_ratio(int workers) const;
  double imbalance_ratio_static(int workers) const;

  // Approximate percentile (p in [0, 100]) of executed events per window,
  // from a fixed-size log-bucket histogram (8 sub-buckets per octave,
  // <= ~12% relative error) — allocation-free by construction. 0 before any
  // window ran.
  double events_per_window_percentile(double p) const;

 private:
  struct Mailbox {
    // One row per (src, dst) pair; written only by src's thread during a
    // window, drained only at barriers. Capacity is retained across
    // windows. max_when/sorted track whether appends stayed time-ordered:
    // sorted rows k-way-merge at the drain, unsorted ones (a jittered hop
    // overtaking an earlier send) are index-sorted first.
    struct Msg {
      TimeNs when;
      Callback fn;
    };
    std::vector<Msg> msgs;
    TimeNs max_when = 0;
    bool sorted = true;
  };

  struct GlobalEvent {
    TimeNs when;
    uint64_t seq;
    Callback fn;
  };

  // Sort key for deterministic mailbox drains.
  struct MsgRef {
    TimeNs when;
    int src;
    uint32_t index;
  };

  // Head of one mailbox row inside the k-way drain merge.
  struct MergeHead {
    TimeNs when;
    int src;
    uint32_t index;
    uint32_t size;
  };

  // Log-bucket histogram of per-window executed-event counts (see
  // events_per_window_percentile). 8 linear sub-buckets per power of two.
  struct WindowHistogram {
    static constexpr int kSubBits = 3;
    static constexpr int kBuckets = 64 << kSubBits;
    uint64_t counts[kBuckets] = {};
    uint64_t total = 0;
    void Record(uint64_t value);
    double Percentile(double p) const;
  };

  Mailbox& mailbox(int src, int dst) {
    return mail_[static_cast<size_t>(src) * shards_.size() + static_cast<size_t>(dst)];
  }

  bool RunLoop(const std::function<bool()>& pred);
  // Advances every shard clock to `t` and fires due global events. Returns
  // the time of the next pending global event (or kNoPendingEvent).
  TimeNs RunGlobalsUpTo(TimeNs t);
  void DrainMailboxes();
  void ExecuteWindow(TimeNs window_end);  // Parallel phase + barrier.
  void WorkerLoop(int worker_index);
  void RunShardSubset(TimeNs window_end, int worker);
  // Re-reads shard s's frontier + non-daemon count into the caches after it
  // executed, received messages, or a global touched the world.
  void RefreshShard(int s);
  void RefreshAllShards();
  // Per-window load bookkeeping for the shards in ready_shards_ (quiesced).
  void AccountWindow();
  // One-shard window accounting for the fusion fast path: O(tracked counts).
  void AccountFusedWindow(int s);
  // Deterministic LPT repack of every maintained shard->worker map from the
  // loads accumulated since the last repack. Runs quiesced at a barrier.
  void Rebalance();
  static void LptPack(const std::vector<int>& order, const std::vector<uint64_t>& loads,
                      int workers, std::vector<uint64_t>& bin_scratch,
                      std::vector<uint8_t>& out);

  static constexpr TimeNs kNoPendingEvent = -1;

  Options options_;
  int workers_ = 1;
  int rebalance_period_ = 0;
  bool fusion_ = true;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<Mailbox> mail_;  // num_shards^2 rows, indexed [src * S + dst].
  std::vector<GlobalEvent> globals_;  // Min-heap on (when, seq).
  uint64_t next_global_seq_ = 1;
  TimeNs window_end_ = 0;  // Conservative horizon while a window is open.
  uint64_t cross_messages_ = 0;
  uint64_t windows_ = 0;
  uint64_t fused_windows_ = 0;

  // --- O(active) barrier bookkeeping -------------------------------------
  // Per-source dirty row lists: dirty_rows_[src] holds the dst ids of rows
  // src made non-empty this window. Written only by src's thread (its own
  // lane), gathered by the coordinator at the barrier. dirty_count_ is the
  // coordinator's O(1) "any traffic?" check; relaxed increments are ordered
  // by the barrier's acquire/release edges before the coordinator reads it.
  std::vector<std::vector<int>> dirty_rows_;
  std::atomic<uint32_t> dirty_count_{0};
  std::vector<MsgRef> drain_scratch_;       // Unsorted-row fallback.
  std::vector<MergeHead> merge_heap_;       // K-way merge of sorted rows.
  std::vector<std::pair<int, int>> drain_rows_;  // (dst, src) gathered rows.
  // Cached per-shard state, refreshed only for shards that moved:
  FrontierIndex frontier_;                  // Earliest live event per shard.
  std::vector<size_t> nd_cache_;            // Per-shard non-daemon pending.
  size_t nd_total_ = 0;

  // --- Load accounting & adaptive maps -----------------------------------
  // kCpWorkerCounts lists the hypothetical worker counts tracked; every
  // scratch vector below is sized at construction (alloc-free windows).
  static constexpr int kCpWorkerCounts[] = {1, 2, 4, 8, 16, 32};
  static constexpr size_t kNumCpWorkerCounts = sizeof(kCpWorkerCounts) / sizeof(int);
  uint64_t critical_path_[kNumCpWorkerCounts] = {};
  uint64_t critical_path_static_[kNumCpWorkerCounts] = {};
  std::vector<uint64_t> cp_prev_executed_;  // Per-shard last-seen executed.
  std::vector<uint64_t> cp_window_delta_;   // Per-shard events this window.
  std::vector<uint64_t> cp_bin_scratch_;    // Per-worker bins, reused.
  // maps_[k][s] = worker running shard s in a hypothetical
  // kCpWorkerCounts[k]-thread run; assignment_[s] = worker for the actual
  // pool. Static (s % w) until the first Rebalance(), then LPT-packed.
  std::vector<uint8_t> maps_[kNumCpWorkerCounts];
  std::vector<uint8_t> assignment_;
  std::vector<uint64_t> worker_events_[kNumCpWorkerCounts];   // Adaptive bins.
  std::vector<uint64_t> worker_events_static_[kNumCpWorkerCounts];
  std::vector<uint64_t> rebalance_load_;    // Per-shard events since repack.
  std::vector<int> lpt_order_;              // Shard ids, sorted by load.
  std::vector<uint64_t> lpt_bins_;          // Per-worker packed load.
  uint64_t windows_since_rebalance_ = 0;
  WindowHistogram window_hist_;

  // --- Worker pool: sense-reversing atomic epoch barrier -----------------
  // (created lazily on the first multi-worker window; full memory-ordering
  // contract at the implementation). epoch_ is the generalized sense: it
  // only ever increments, so no flag needs a reset that could race with a
  // late waiter. Workers spin briefly then park on C++20 atomic wait.
  std::vector<std::thread> pool_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> workers_done_{0};
  std::atomic<bool> shutdown_{false};
  TimeNs pool_window_end_ = 0;     // Published by the epoch_ release store.
  std::vector<int> ready_shards_;  // Refilled between epochs (quiesced).
};

}  // namespace mitt::sim

#endif  // MITTOS_SIM_SHARDED_ENGINE_H_
