// Deterministic discrete-event simulation engine.
//
// Every MittOS component — devices, schedulers, the OS, network links,
// clients, noise injectors — is an actor that schedules callbacks on one
// Simulator. Events fire in (time, sequence) order, so two events at the same
// instant fire in scheduling order and a run is reproducible bit-for-bit.
//
// Hot-path design (see DESIGN.md "Event engine internals"):
//  - Closures are InlineFunction<void()> (src/common/inline_function.h):
//    captures up to 48 bytes live inline, so the steady-state Schedule->fire
//    path performs zero heap allocations.
//  - Event bodies live in a pooled slot arena (fixed-size blocks, stable
//    addresses) recycled through a free list; the priority queue orders small
//    trivially-copyable handles (time, seq, slot), never the closures
//    themselves. Popping invokes the closure *in place* in its slot —
//    closures are moved once at Schedule() and never copied.
//  - Cancellation sets a tombstone flag directly on the pooled slot (no side
//    lookup table). EventIds encode (slot, generation), so a stale id — an
//    event that already fired or was already cancelled — is detected by a
//    generation mismatch and Cancel() returns false instead of corrupting
//    the pending-event accounting.

#ifndef MITTOS_SIM_SIMULATOR_H_
#define MITTOS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/time.h"
#include "src/obs/gate.h"

namespace mitt::obs {
class MetricsRegistry;
class Tracer;
}  // namespace mitt::obs

namespace mitt::sim {

class ShardedEngine;

// Handle for cancelling a scheduled event. Encodes (pool slot + 1) in the
// high 32 bits and the slot's generation in the low 32 bits; 0 is never a
// valid id. Ids are unique over any realistic run (a slot must be reused
// 2^32 times for a generation to repeat).
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

// The event callback type. Move-only; captures up to kInlineFunctionBytes
// are stored inline (no allocation), larger captures fall back to the heap.
using Callback = InlineFunction<void()>;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules `fn` to run `delay` from now (delay < 0 is clamped to 0).
  // Defined inline: the schedule path is hot enough that cross-TU call
  // overhead shows up in bench_simcore.
  EventId Schedule(DurationNs delay, Callback fn) {
    if (delay < 0) {
      delay = 0;
    }
    return ScheduleInternal(now_ + delay, /*daemon=*/false, std::move(fn));
  }

  // Schedules `fn` at absolute time `when` (clamped to Now()).
  EventId ScheduleAt(TimeNs when, Callback fn) {
    return ScheduleInternal(when, /*daemon=*/false, std::move(fn));
  }

  // Daemon variants: periodic/background timers (cache flushers, snitch
  // refreshes, GC) that must not keep Run() alive. Run() returns once only
  // daemon events remain; a daemon event still fires if a non-daemon event
  // later than it exists.
  EventId ScheduleDaemon(DurationNs delay, Callback fn) {
    if (delay < 0) {
      delay = 0;
    }
    return ScheduleInternal(now_ + delay, /*daemon=*/true, std::move(fn));
  }

  // Cancels a pending event. Returns true if the event was still pending;
  // returns false for ids that already fired or were already cancelled.
  bool Cancel(EventId id);

  // Runs until the event queue is empty.
  void Run();

  // Runs until simulated time reaches `deadline` (events at exactly `deadline`
  // are executed) or the queue drains.
  void RunUntil(TimeNs deadline);

  // Runs until `pred()` returns true (checked after each event) or the queue
  // drains. Returns true if the predicate was satisfied.
  bool RunUntilPredicate(const std::function<bool()>& pred);

  // Live (scheduled, not cancelled, not yet fired) events.
  size_t pending_events() const { return live_events_; }
  uint64_t executed_events() const { return executed_; }
  // Heap entries (including tombstones) that are non-daemon — the engine's
  // termination count; matches what Run() uses internally.
  size_t non_daemon_pending() const { return non_daemon_pending_; }

  // --- Sharded-engine hooks (src/sim/sharded_engine.h) ---
  //
  // A Simulator either runs standalone (legacy single-threaded mode; every
  // hook below is inert and engine() is nullptr) or as one shard of a
  // ShardedEngine, which drives it through RunWindow/AdvanceTo/NextEventTime
  // at conservative-window barriers. Components query shard_id()/engine() to
  // route cross-shard interactions; none of this touches the Step() hot path.
  void SetShardContext(ShardedEngine* engine, int shard_id) {
    engine_ = engine;
    shard_id_ = shard_id;
  }
  ShardedEngine* engine() const { return engine_; }
  int shard_id() const { return shard_id_; }

  // Time of the earliest live event, or -1 when the queue holds nothing
  // runnable. Lazily pops tombstoned entries off the top.
  TimeNs NextEventTime();

  // Executes every event with timestamp strictly below `end`. Does NOT
  // advance Now() to `end` afterwards — between windows the engine advances
  // quiesced shard clocks explicitly (AdvanceTo) only when a global event
  // needs a consistent timestamp.
  void RunWindow(TimeNs end);

  // Forward-only clock jump. Engine-internal: only valid while this shard is
  // quiesced at a barrier (no event mid-flight).
  void AdvanceTo(TimeNs t) {
    if (now_ < t) {
      now_ = t;
    }
  }

  // Pool introspection (perf monitoring; see bench_simcore).
  size_t pool_capacity() const { return num_slots_; }

  // --- Observability hooks (src/obs/) ---
  //
  // One tracer/metrics registry per simulator keeps tracing deterministic:
  // each parallel trial owns its own simulator and therefore its own span
  // buffer and counters, merged in trial order by the harness. Attach before
  // building the world — instrumented layers cache their metric handles at
  // construction or first use.
  //
  // The accessors compile to constant nullptr under MITT_OBS_DISABLED, so
  // every `if (auto* t = sim->tracer())` recording site folds away; with obs
  // compiled in but nothing attached, a site costs one null-check.
  obs::Tracer* tracer() const {
#if MITT_OBS_ENABLED
    return tracer_;
#else
    return nullptr;
#endif
  }
  obs::MetricsRegistry* metrics() const {
#if MITT_OBS_ENABLED
    return metrics_;
#else
    return nullptr;
#endif
  }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  static constexpr uint32_t kNoSlot = UINT32_MAX;
  // Slots live in fixed-size arena blocks so their addresses are stable:
  // Step() invokes a closure *in place* (no pop-side move) even while the
  // callback schedules new events and grows the pool.
  static constexpr size_t kSlotBlockShift = 10;
  static constexpr size_t kSlotBlockSize = size_t{1} << kSlotBlockShift;

  // Closure storage, recycled through a free list. The generation counter
  // distinguishes the slot's current occupant from ids handed out for
  // previous occupants.
  struct Slot {
    Callback fn;
    uint32_t generation = 1;
    uint32_t next_free = kNoSlot;
    bool daemon = false;
    bool cancelled = false;
    bool occupied = false;
  };

  // What the heap actually orders: 24 trivially-copyable bytes.
  struct Handle {
    TimeNs when;
    uint64_t seq;
    uint32_t slot;
  };
  static bool HandleLess(const Handle& a, const Handle& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }

  // 4-ary min-heap over handles: half the tree depth of a binary heap and
  // sibling nodes share cache lines, which measurably cuts sift cost at the
  // pending-event counts the experiments run at (see BENCH_simcore.json).
  // Hole-based sifting: carry the moving handle in registers and shift
  // entries into the hole — half the memory traffic of swap-based sifting.
  void HeapPush(Handle h) {
    size_t i = heap_.size();
    heap_.push_back(h);  // Placeholder; overwritten below.
    while (i > 0) {
      const size_t parent = (i - 1) >> 2;
      if (!HandleLess(h, heap_[parent])) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = h;
  }

  void HeapPopTop();
  const Handle& HeapTop() const { return heap_[0]; }
  bool HeapEmpty() const { return heap_.empty(); }

  EventId ScheduleInternal(TimeNs when, bool daemon, Callback fn) {
    if (when < now_) {
      when = now_;
    }
    const uint32_t index = AcquireSlot();
    Slot& slot = SlotAt(index);
    slot.fn = std::move(fn);
    slot.daemon = daemon;
    slot.occupied = true;
    HeapPush(Handle{when, next_seq_++, index});
    ++live_events_;
    if (!daemon) {
      ++non_daemon_pending_;
    }
    return MakeId(index, slot.generation);
  }

  Slot& SlotAt(uint32_t index) {
    return slot_blocks_[index >> kSlotBlockShift][index & (kSlotBlockSize - 1)];
  }

  uint32_t AcquireSlot() {
    if (free_head_ != kNoSlot) {
      const uint32_t index = free_head_;
      free_head_ = SlotAt(index).next_free;
      return index;
    }
    if (num_slots_ == slot_blocks_.size() * kSlotBlockSize) {
      slot_blocks_.push_back(std::make_unique<Slot[]>(kSlotBlockSize));
    }
    return static_cast<uint32_t>(num_slots_++);
  }

  void ReleaseSlot(uint32_t index);

  static uint32_t SlotOf(EventId id) {
    return static_cast<uint32_t>(id >> 32) - 1;  // Wraps to UINT32_MAX for id < 2^32.
  }
  static uint32_t GenerationOf(EventId id) { return static_cast<uint32_t>(id); }
  static EventId MakeId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(slot + 1) << 32) | generation;
  }

  // Pops and executes the earliest event. Returns false if the queue is empty.
  bool Step();

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;

  ShardedEngine* engine_ = nullptr;
  int shard_id_ = 0;

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  size_t live_events_ = 0;
  size_t non_daemon_pending_ = 0;  // Heap entries (incl. tombstones) that are non-daemon.
  std::vector<Handle> heap_;
  std::vector<std::unique_ptr<Slot[]>> slot_blocks_;
  size_t num_slots_ = 0;
  uint32_t free_head_ = kNoSlot;
};

}  // namespace mitt::sim

#endif  // MITTOS_SIM_SIMULATOR_H_
