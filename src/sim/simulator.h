// Deterministic discrete-event simulation engine.
//
// Every MittOS component — devices, schedulers, the OS, network links,
// clients, noise injectors — is an actor that schedules callbacks on one
// Simulator. Events fire in (time, sequence) order, so two events at the same
// instant fire in scheduling order and a run is reproducible bit-for-bit.

#ifndef MITTOS_SIM_SIMULATOR_H_
#define MITTOS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/time.h"

namespace mitt::sim {

// Handle for cancelling a scheduled event. Cancellation is lazy: the event
// stays queued but its callback is skipped when it reaches the front.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules `fn` to run `delay` from now (delay < 0 is clamped to 0).
  EventId Schedule(DurationNs delay, std::function<void()> fn);

  // Schedules `fn` at absolute time `when` (clamped to Now()).
  EventId ScheduleAt(TimeNs when, std::function<void()> fn);

  // Daemon variants: periodic/background timers (cache flushers, snitch
  // refreshes, GC) that must not keep Run() alive. Run() returns once only
  // daemon events remain; a daemon event still fires if a non-daemon event
  // later than it exists.
  EventId ScheduleDaemon(DurationNs delay, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event was still pending.
  bool Cancel(EventId id);

  // Runs until the event queue is empty.
  void Run();

  // Runs until simulated time reaches `deadline` (events at exactly `deadline`
  // are executed) or the queue drains.
  void RunUntil(TimeNs deadline);

  // Runs until `pred()` returns true (checked after each event) or the queue
  // drains. Returns true if the predicate was satisfied.
  bool RunUntilPredicate(const std::function<bool()>& pred);

  size_t pending_events() const { return heap_.size() - cancelled_pending_; }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimeNs when;
    uint64_t seq;
    EventId id;
    bool daemon;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  EventId ScheduleInternal(TimeNs when, bool daemon, std::function<void()> fn);

  // Pops and executes the earliest event. Returns false if the queue is empty.
  bool Step();

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  size_t cancelled_pending_ = 0;
  size_t non_daemon_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> heap_;
  // Cancelled event ids not yet popped off the heap.
  std::unordered_set<EventId> cancelled_;
};

}  // namespace mitt::sim

#endif  // MITTOS_SIM_SIMULATOR_H_
