// mitt::fault — deterministic fail-slow / fault-injection plans.
//
// The noise layer (src/noise/) models *contention*: well-behaved hardware
// shared with greedy neighbors. This subsystem models the other half of the
// paper's motivation — hardware and nodes that misbehave outright: fail-slow
// disks whose media degrades under the predictor that profiled them, SSD
// chips stuck in read-retry storms, network delay spikes / drops /
// partitions, and nodes that pause stop-the-world or crash and come back
// with a cold cache.
//
// A FaultPlan is a typed episode schedule, built either from explicit
// episodes or from a seeded RNG (GenerateChaosPlan), and replayed exactly —
// the same plan against the same world produces bit-identical fault delivery
// at any MITT_TRIAL_WORKERS setting, because delivery is driven entirely by
// simulator events and per-component seeded RNGs (no wall clock, no shared
// mutable state across trials).

#ifndef MITTOS_FAULT_FAULT_PLAN_H_
#define MITTOS_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace mitt::fault {

enum class FaultKind : uint8_t {
  // Fail-slow rotational disk: service times ramp up to `severity`x over the
  // episode (degrading-media curve), then the device recovers (remap /
  // replacement). The DiskProfile the predictor learned stays stale.
  kFailSlowDisk,
  // SSD read-retry latency storm on one chip (`chip` >= 0) or every chip
  // (`chip` == -1): media reads take `severity`x their profiled time while
  // the firmware retries around a marginal page.
  kSsdReadRetry,
  // Link delay spike: one-way latency to/from `node` (or every link when
  // `node` < 0) is multiplied by `severity`.
  kNetworkDegrade,
  // Lossy link: each message to/from `node` is dropped with probability
  // `severity` and redelivered after the transport's retransmit timeout —
  // lost-then-retransmitted, so closed loops stay live while timeout and
  // hedged client paths trigger.
  kNetworkDrop,
  // Transient partition: messages to/from `node` are held and delivered
  // (fresh network hop each) when the partition heals at episode end.
  kNetworkPartition,
  // Stop-the-world node pause (GC, VM freeze): the node's CPU pool starts no
  // new work for `duration`; in-flight bursts finish, arrivals queue.
  kNodePause,
  // Crash + restart with a cold page cache: every resident page is lost at
  // episode start and the node accepts no new work for `duration`.
  kNodeCrashRestart,
};

std::string_view FaultKindName(FaultKind kind);

struct FaultEpisode {
  FaultKind kind = FaultKind::kFailSlowDisk;
  int node = 0;              // Target node (network kinds: link peer; <0 = all).
  TimeNs start = 0;
  DurationNs duration = 0;
  double severity = 1.0;     // Kind-specific magnitude (see FaultKind docs).
  int chip = -1;             // kSsdReadRetry only: target chip, -1 = all.

  TimeNs end() const { return start + duration; }

  bool operator==(const FaultEpisode&) const = default;
};

// True when the two episodes would drive the *same* injector target (same
// kind on an overlapping node/chip selector) over an overlapping time range.
// The injector does not compose same-target episodes: the later Begin
// overwrites the earlier one's multiplier and the earlier End clears the
// fault while the later episode is nominally still active (last-write-wins,
// first-end-clears). Overlaps are therefore almost always plan bugs; see
// FaultPlanBuilder::SetOverlapPolicy.
bool EpisodesOverlap(const FaultEpisode& a, const FaultEpisode& b);

// One fault activation as actually applied by the injector, logged in
// activation order — the replayable ground truth a determinism check (or a
// post-mortem) compares across worker counts.
struct AppliedEpisode {
  FaultKind kind = FaultKind::kFailSlowDisk;
  int node = 0;
  TimeNs start = 0;
  TimeNs end = 0;
  double severity = 1.0;
  int chip = -1;

  bool operator==(const AppliedEpisode&) const = default;
};

// An immutable, (start, node, kind)-sorted episode schedule.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEpisode> episodes);

  const std::vector<FaultEpisode>& episodes() const { return episodes_; }
  bool empty() const { return episodes_.empty(); }
  size_t size() const { return episodes_.size(); }

  // Same-target overlap diagnostics recorded by FaultPlanBuilder::Build()
  // under OverlapPolicy::kWarn (empty for plans built directly from episode
  // vectors). Deterministic: one line per overlapping pair, in sorted-plan
  // order.
  const std::vector<std::string>& overlap_warnings() const { return overlap_warnings_; }

 private:
  friend class FaultPlanBuilder;
  std::vector<FaultEpisode> episodes_;
  std::vector<std::string> overlap_warnings_;
};

// Deterministic same-target overlap scan over a *sorted* episode list.
// Returns one human-readable line per overlapping pair, in plan order — the
// shared engine behind FaultPlanBuilder::Build() and the chaos mutator's
// well-formedness filter.
std::vector<std::string> FindOverlaps(const std::vector<FaultEpisode>& sorted_episodes);

// What FaultPlanBuilder::Build() does about same-target overlapping episodes.
// The injector's precedence for overlaps is last-write-wins on Begin and
// first-end-clears on End (see EpisodesOverlap) — surprising enough that the
// builder flags them instead of letting plans silently under-inject:
//   kWarn   (default) — build the plan as given, recording one deterministic
//                       warning line per overlapping pair on the plan.
//   kReject — throw std::invalid_argument naming the first overlapping pair.
//   kAllow  — legacy behavior: build silently (for plans that deliberately
//             exploit the overwrite semantics).
enum class OverlapPolicy : uint8_t { kAllow, kWarn, kReject };

// Fluent builder for hand-written scenarios. Episodes may be added in any
// order; Build() sorts them into deterministic delivery order.
class FaultPlanBuilder {
 public:
  FaultPlanBuilder& Add(const FaultEpisode& episode);

  FaultPlanBuilder& SetOverlapPolicy(OverlapPolicy policy);

  FaultPlanBuilder& FailSlowDisk(int node, TimeNs start, DurationNs duration, double multiplier);
  FaultPlanBuilder& SsdReadRetry(int node, TimeNs start, DurationNs duration, double multiplier,
                                 int chip = -1);
  FaultPlanBuilder& NetworkDegrade(int node, TimeNs start, DurationNs duration, double multiplier);
  FaultPlanBuilder& NetworkDrop(int node, TimeNs start, DurationNs duration, double drop_prob);
  FaultPlanBuilder& NetworkPartition(int node, TimeNs start, DurationNs duration);
  FaultPlanBuilder& NodePause(int node, TimeNs start, DurationNs duration);
  FaultPlanBuilder& NodeCrashRestart(int node, TimeNs start, DurationNs restart_time);

  // Repeated episodes of one kind on one node: exponential gaps around
  // `mean_gap`, uniform durations in [min_on, max_on], all derived from
  // `seed` — the fault-side analogue of an EC2 noise schedule. Every episode
  // lies entirely within [0, horizon): an on-duration that would cross the
  // horizon is truncated to end exactly there (the RNG stream is unchanged,
  // so all earlier episodes are identical to the untruncated schedule).
  FaultPlanBuilder& RepeatEpisodes(FaultKind kind, int node, TimeNs horizon, DurationNs mean_gap,
                                   DurationNs min_on, DurationNs max_on, double severity,
                                   uint64_t seed, int chip = -1);

  FaultPlan Build();

 private:
  std::vector<FaultEpisode> episodes_;
  OverlapPolicy overlap_policy_ = OverlapPolicy::kWarn;
};

// Seeded chaos mix: every enabled fault class sprinkled independently across
// `num_nodes` nodes over [0, horizon). Deterministic in (options, num_nodes,
// horizon, seed).
struct ChaosOptions {
  bool fail_slow_disk = true;
  bool ssd_read_retry = false;   // Only meaningful on SSD-backed worlds.
  bool network_degrade = true;
  bool network_drop = false;     // Lossy-link storms (retransmit-visible).
  bool network_partition = false;
  bool node_pause = true;
  bool node_crash = false;

  DurationNs mean_gap = Seconds(20);       // Mean quiet gap per (kind, node).
  DurationNs min_on = Millis(200);
  DurationNs max_on = Seconds(2);
  double fail_slow_multiplier = 4.0;
  double read_retry_multiplier = 25.0;
  double network_multiplier = 20.0;
  double drop_probability = 0.85;          // kNetworkDrop severity, in (0, 1].
  DurationNs pause_duration = Millis(120);
  DurationNs restart_duration = Millis(250);
  // Fraction of nodes each fault class may strike (>=1 node always eligible).
  double blast_radius = 0.25;
};

FaultPlan GenerateChaosPlan(const ChaosOptions& options, int num_nodes, TimeNs horizon,
                            uint64_t seed);

}  // namespace mitt::fault

#endif  // MITTOS_FAULT_FAULT_PLAN_H_
