#include "src/fault/injector.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/sharded_engine.h"

namespace mitt::fault {

FaultInjector::FaultInjector(sim::Simulator* sim, cluster::Cluster* cluster, FaultPlan plan)
    : sim_(sim), cluster_(cluster), plan_(std::move(plan)) {}

void FaultInjector::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  const TimeNs now = sim_->Now();
  for (size_t i = 0; i < plan_.size(); ++i) {
    const FaultEpisode& e = plan_.episodes()[i];
    const DurationNs delay = e.start > now ? e.start - now : 0;
    // Daemon-like: a pending fault schedule must not keep Run() alive once
    // the workload has drained.
    ScheduleFaultEvent(delay, [this, i] { Begin(i); });
  }
}

void FaultInjector::ScheduleFaultEvent(DurationNs delay, sim::Callback fn) {
  if (sim::ShardedEngine* engine = sim_->engine(); engine != nullptr) {
    engine->ScheduleGlobal(sim_->Now() + delay, std::move(fn));
    return;
  }
  sim_->ScheduleDaemon(delay, std::move(fn));
}

bool FaultInjector::Applicable(const FaultEpisode& e) const {
  const int n = cluster_->num_nodes();
  switch (e.kind) {
    case FaultKind::kFailSlowDisk:
      return e.node >= 0 && e.node < n && cluster_->node(e.node).os().disk() != nullptr;
    case FaultKind::kSsdReadRetry: {
      if (e.node < 0 || e.node >= n) {
        return false;
      }
      const device::SsdModel* ssd = cluster_->node(e.node).os().ssd();
      return ssd != nullptr && e.chip < ssd->num_chips();
    }
    case FaultKind::kNetworkDegrade:
    case FaultKind::kNetworkDrop:
      return e.node < n;  // node < 0 targets the whole fabric.
    case FaultKind::kNetworkPartition:
      return e.node >= 0 && e.node < n;  // A link, not the fabric.
    case FaultKind::kNodePause:
    case FaultKind::kNodeCrashRestart:
      return e.node >= 0 && e.node < n;
  }
  return false;
}

void FaultInjector::ApplyDiskMultiplier(const FaultEpisode& e, double multiplier) {
  cluster_->node(e.node).os().disk()->set_service_time_multiplier(multiplier);
}

void FaultInjector::ApplySsdMultiplier(const FaultEpisode& e, double multiplier) {
  device::SsdModel* ssd = cluster_->node(e.node).os().ssd();
  if (e.chip >= 0) {
    ssd->set_chip_read_multiplier(e.chip, multiplier);
    return;
  }
  for (int c = 0; c < ssd->num_chips(); ++c) {
    ssd->set_chip_read_multiplier(c, multiplier);
  }
}

void FaultInjector::Begin(size_t index) {
  const FaultEpisode& e = plan_.episodes()[index];
  if (!Applicable(e)) {
    ++episodes_skipped_;
    if (obs::MetricsRegistry* m = sim_->metrics(); m != nullptr) {
      m->counter("fault_skipped_total", e.node).Add();
    }
    return;
  }
  ++episodes_begun_;
  const TimeNs begin_time = sim_->Now();
  // Recorded at begin with the episode's scheduled window, so a run that
  // ends mid-episode (a long degradation outliving the workload) still shows
  // the fault in its trace. request_id 0 = not tied to one request; the
  // Chrome export shows these as node-scoped background spans.
  if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
    tr->RecordSpan(obs::SpanKind::kFaultActive, obs::TraceContext{0, e.node}, begin_time,
                   begin_time + e.duration);
  }
  if (obs::MetricsRegistry* m = sim_->metrics(); m != nullptr) {
    m->counter("fault_episodes_total", e.node).Add();
  }

  switch (e.kind) {
    case FaultKind::kFailSlowDisk: {
      // Degrading media: ramp to full severity in kRampSteps equal steps
      // across the first quarter of the episode. The predictor profiled the
      // healthy device, so its error grows as the ramp climbs.
      const DurationNs ramp = e.duration / 4;
      for (int s = 1; s <= kRampSteps; ++s) {
        const double m = 1.0 + (e.severity - 1.0) * s / kRampSteps;
        ScheduleFaultEvent(ramp * s / kRampSteps, [this, index, m] {
          ApplyDiskMultiplier(plan_.episodes()[index], m);
        });
      }
      break;
    }
    case FaultKind::kSsdReadRetry:
      ApplySsdMultiplier(e, e.severity);
      break;
    case FaultKind::kNetworkDegrade:
      cluster_->network().SetLinkDelayMultiplier(e.node, e.severity);
      break;
    case FaultKind::kNetworkDrop:
      cluster_->network().SetLinkDropProbability(e.node, std::clamp(e.severity, 0.0, 1.0));
      break;
    case FaultKind::kNetworkPartition:
      cluster_->network().SetLinkPartitioned(e.node, true);
      break;
    case FaultKind::kNodePause:
      cluster_->node(e.node).Pause(e.duration);
      break;
    case FaultKind::kNodeCrashRestart:
      cluster_->node(e.node).CrashRestart(e.duration);
      break;
  }

  ScheduleFaultEvent(e.duration, [this, index, begin_time] { End(index, begin_time); });
}

void FaultInjector::End(size_t index, TimeNs actual_start) {
  const FaultEpisode& e = plan_.episodes()[index];
  switch (e.kind) {
    case FaultKind::kFailSlowDisk:
      ApplyDiskMultiplier(e, 1.0);  // Remapped / replaced: healthy again.
      break;
    case FaultKind::kSsdReadRetry:
      ApplySsdMultiplier(e, 1.0);
      break;
    case FaultKind::kNetworkDegrade:
      cluster_->network().SetLinkDelayMultiplier(e.node, 1.0);
      break;
    case FaultKind::kNetworkDrop:
      cluster_->network().SetLinkDropProbability(e.node, 0.0);
      break;
    case FaultKind::kNetworkPartition:
      cluster_->network().SetLinkPartitioned(e.node, false);  // Flushes held.
      break;
    case FaultKind::kNodePause:
    case FaultKind::kNodeCrashRestart:
      break;  // The CPU pool's own resume event lifts the pause.
  }

  applied_.push_back(
      {e.kind, e.node, actual_start, sim_->Now(), e.severity, e.chip});
}

}  // namespace mitt::fault
