#include "src/fault/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mitt::fault {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailSlowDisk:
      return "fail_slow_disk";
    case FaultKind::kSsdReadRetry:
      return "ssd_read_retry";
    case FaultKind::kNetworkDegrade:
      return "network_degrade";
    case FaultKind::kNetworkDrop:
      return "network_drop";
    case FaultKind::kNetworkPartition:
      return "network_partition";
    case FaultKind::kNodePause:
      return "node_pause";
    case FaultKind::kNodeCrashRestart:
      return "node_crash_restart";
  }
  return "?";
}

namespace {

void SortEpisodes(std::vector<FaultEpisode>& episodes) {
  std::stable_sort(episodes.begin(), episodes.end(),
                   [](const FaultEpisode& a, const FaultEpisode& b) {
                     if (a.start != b.start) {
                       return a.start < b.start;
                     }
                     if (a.node != b.node) {
                       return a.node < b.node;
                     }
                     return static_cast<uint8_t>(a.kind) < static_cast<uint8_t>(b.kind);
                   });
}

// One warning line for an overlapping (earlier, later) pair, in plan order.
std::string OverlapLine(const FaultEpisode& a, const FaultEpisode& b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "overlap: %s node=%d [%lld, %lld) and node=%d [%lld, %lld)",
                std::string(FaultKindName(a.kind)).c_str(), a.node,
                static_cast<long long>(a.start), static_cast<long long>(a.end()), b.node,
                static_cast<long long>(b.start), static_cast<long long>(b.end()));
  return buf;
}

}  // namespace

bool EpisodesOverlap(const FaultEpisode& a, const FaultEpisode& b) {
  if (a.kind != b.kind) {
    return false;  // Distinct kinds drive distinct injector knobs.
  }
  // Node selectors overlap when equal or either is the all-nodes wildcard.
  if (a.node != b.node && a.node >= 0 && b.node >= 0) {
    return false;
  }
  // SSD read-retry: chip selectors overlap when equal or either is all-chips.
  if (a.kind == FaultKind::kSsdReadRetry && a.chip != b.chip && a.chip >= 0 && b.chip >= 0) {
    return false;
  }
  return a.start < b.end() && b.start < a.end();
}

std::vector<std::string> FindOverlaps(const std::vector<FaultEpisode>& sorted_episodes) {
  std::vector<std::string> warnings;
  for (size_t i = 0; i < sorted_episodes.size(); ++i) {
    for (size_t j = i + 1; j < sorted_episodes.size(); ++j) {
      // Sorted by start: once j starts at/after i's end, no later j overlaps
      // i either — except wildcard-node pairs, which the inner check still
      // sees because overlap requires time intersection regardless.
      if (sorted_episodes[j].start >= sorted_episodes[i].end()) {
        break;
      }
      if (EpisodesOverlap(sorted_episodes[i], sorted_episodes[j])) {
        warnings.push_back(OverlapLine(sorted_episodes[i], sorted_episodes[j]));
      }
    }
  }
  return warnings;
}

FaultPlan::FaultPlan(std::vector<FaultEpisode> episodes) : episodes_(std::move(episodes)) {
  SortEpisodes(episodes_);
}

FaultPlanBuilder& FaultPlanBuilder::Add(const FaultEpisode& episode) {
  episodes_.push_back(episode);
  return *this;
}

FaultPlanBuilder& FaultPlanBuilder::SetOverlapPolicy(OverlapPolicy policy) {
  overlap_policy_ = policy;
  return *this;
}

FaultPlanBuilder& FaultPlanBuilder::FailSlowDisk(int node, TimeNs start, DurationNs duration,
                                                 double multiplier) {
  return Add({FaultKind::kFailSlowDisk, node, start, duration, multiplier, -1});
}

FaultPlanBuilder& FaultPlanBuilder::SsdReadRetry(int node, TimeNs start, DurationNs duration,
                                                 double multiplier, int chip) {
  return Add({FaultKind::kSsdReadRetry, node, start, duration, multiplier, chip});
}

FaultPlanBuilder& FaultPlanBuilder::NetworkDegrade(int node, TimeNs start, DurationNs duration,
                                                   double multiplier) {
  return Add({FaultKind::kNetworkDegrade, node, start, duration, multiplier, -1});
}

FaultPlanBuilder& FaultPlanBuilder::NetworkDrop(int node, TimeNs start, DurationNs duration,
                                                double drop_prob) {
  return Add({FaultKind::kNetworkDrop, node, start, duration, drop_prob, -1});
}

FaultPlanBuilder& FaultPlanBuilder::NetworkPartition(int node, TimeNs start, DurationNs duration) {
  return Add({FaultKind::kNetworkPartition, node, start, duration, 1.0, -1});
}

FaultPlanBuilder& FaultPlanBuilder::NodePause(int node, TimeNs start, DurationNs duration) {
  return Add({FaultKind::kNodePause, node, start, duration, 1.0, -1});
}

FaultPlanBuilder& FaultPlanBuilder::NodeCrashRestart(int node, TimeNs start,
                                                     DurationNs restart_time) {
  return Add({FaultKind::kNodeCrashRestart, node, start, restart_time, 1.0, -1});
}

FaultPlanBuilder& FaultPlanBuilder::RepeatEpisodes(FaultKind kind, int node, TimeNs horizon,
                                                   DurationNs mean_gap, DurationNs min_on,
                                                   DurationNs max_on, double severity,
                                                   uint64_t seed, int chip) {
  Rng rng(seed ^ (static_cast<uint64_t>(kind) << 32) ^ static_cast<uint64_t>(node + 1));
  TimeNs t = static_cast<TimeNs>(rng.Exponential(static_cast<double>(mean_gap)));
  while (t < horizon) {
    auto on = static_cast<DurationNs>(
        rng.Uniform(static_cast<double>(min_on), static_cast<double>(max_on)));
    // Truncate (never shift) so the episode stays inside [0, horizon) while
    // every earlier draw — and therefore every earlier episode — is
    // byte-identical to the unclamped schedule.
    const DurationNs clamped = std::min(on, horizon - t);
    if (clamped > 0) {
      Add({kind, node, t, clamped, severity, chip});
    }
    t += on + static_cast<TimeNs>(rng.Exponential(static_cast<double>(mean_gap)));
  }
  return *this;
}

FaultPlan FaultPlanBuilder::Build() {
  FaultPlan plan(std::move(episodes_));
  episodes_.clear();
  if (overlap_policy_ != OverlapPolicy::kAllow) {
    std::vector<std::string> warnings = FindOverlaps(plan.episodes());
    if (!warnings.empty() && overlap_policy_ == OverlapPolicy::kReject) {
      throw std::invalid_argument("FaultPlanBuilder: " + warnings.front());
    }
    plan.overlap_warnings_ = std::move(warnings);
  }
  return plan;
}

FaultPlan GenerateChaosPlan(const ChaosOptions& options, int num_nodes, TimeNs horizon,
                            uint64_t seed) {
  FaultPlanBuilder builder;
  Rng pick_rng(seed ^ 0xFA417);
  const int radius =
      std::max(1, static_cast<int>(static_cast<double>(num_nodes) * options.blast_radius));

  // Each fault class independently picks `radius` victim nodes (deterministic
  // draw order: kinds in enum order, nodes low-to-high within each draw).
  auto victims = [&](FaultKind kind) {
    std::vector<int> chosen;
    for (int i = 0; i < radius; ++i) {
      chosen.push_back(static_cast<int>(pick_rng.UniformInt(0, num_nodes - 1)));
    }
    std::sort(chosen.begin(), chosen.end());
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    (void)kind;
    return chosen;
  };

  if (options.fail_slow_disk) {
    for (const int node : victims(FaultKind::kFailSlowDisk)) {
      builder.RepeatEpisodes(FaultKind::kFailSlowDisk, node, horizon, options.mean_gap,
                             options.min_on, options.max_on, options.fail_slow_multiplier,
                             seed ^ 0xF51);
    }
  }
  if (options.ssd_read_retry) {
    for (const int node : victims(FaultKind::kSsdReadRetry)) {
      const int chip = static_cast<int>(pick_rng.UniformInt(0, 127));
      builder.RepeatEpisodes(FaultKind::kSsdReadRetry, node, horizon, options.mean_gap,
                             options.min_on, options.max_on, options.read_retry_multiplier,
                             seed ^ 0x55D, chip);
    }
  }
  if (options.network_degrade) {
    for (const int node : victims(FaultKind::kNetworkDegrade)) {
      builder.RepeatEpisodes(FaultKind::kNetworkDegrade, node, horizon, options.mean_gap,
                             options.min_on, options.max_on, options.network_multiplier,
                             seed ^ 0xDE6);
    }
  }
  if (options.network_drop) {
    for (const int node : victims(FaultKind::kNetworkDrop)) {
      builder.RepeatEpisodes(FaultKind::kNetworkDrop, node, horizon, options.mean_gap,
                             options.min_on, options.max_on, options.drop_probability,
                             seed ^ 0xD409);
    }
  }
  if (options.network_partition) {
    for (const int node : victims(FaultKind::kNetworkPartition)) {
      builder.RepeatEpisodes(FaultKind::kNetworkPartition, node, horizon, options.mean_gap * 2,
                             options.min_on, options.max_on, 1.0, seed ^ 0x9A7);
    }
  }
  if (options.node_pause) {
    for (const int node : victims(FaultKind::kNodePause)) {
      builder.RepeatEpisodes(FaultKind::kNodePause, node, horizon, options.mean_gap,
                             options.pause_duration, options.pause_duration, 1.0, seed ^ 0x6C);
    }
  }
  if (options.node_crash) {
    for (const int node : victims(FaultKind::kNodeCrashRestart)) {
      builder.RepeatEpisodes(FaultKind::kNodeCrashRestart, node, horizon, options.mean_gap * 4,
                             options.restart_duration, options.restart_duration, 1.0,
                             seed ^ 0xC4A5);
    }
  }
  return builder.Build();
}

}  // namespace mitt::fault
