// Text serialization for FaultPlan — the chaos-search corpus substrate.
//
// A serialized plan is a line-oriented UTF-8 document: a `# mittos fault
// plan v1` header, then one `episode` line per episode in plan (sorted)
// order. Round-trips are exact: severities are printed with enough digits
// (%.17g) that parse(print(plan)) == plan bit-for-bit, which is what lets a
// checked-in reproducer file replay the same simulation byte-identically
// years later.
//
//   # mittos fault plan v1
//   episode kind=network_drop node=0 start=120000000 dur=40000000 severity=0.85 chip=-1
//
// Unknown keys and malformed lines are hard errors (a corpus file that
// half-parses is worse than one that fails loudly); blank lines and `#`
// comments are skipped.

#ifndef MITTOS_FAULT_PLAN_SERDE_H_
#define MITTOS_FAULT_PLAN_SERDE_H_

#include <string>
#include <string_view>

#include "src/fault/fault_plan.h"

namespace mitt::fault {

// Reverse of FaultKindName. Returns false (out untouched) on unknown names.
bool FaultKindFromName(std::string_view name, FaultKind* out);

// One `episode ...` line (no trailing newline) / its exact inverse.
std::string EpisodeToLine(const FaultEpisode& episode);
bool EpisodeFromLine(std::string_view line, FaultEpisode* out, std::string* error);

std::string FaultPlanToText(const FaultPlan& plan);
// Parses a full document. On failure returns false and sets *error to a
// message naming the offending line.
bool FaultPlanFromText(std::string_view text, FaultPlan* out, std::string* error);

}  // namespace mitt::fault

#endif  // MITTOS_FAULT_PLAN_SERDE_H_
