// FaultInjector: replays a FaultPlan against a live cluster.
//
// Start() schedules one daemon begin event per episode (daemon so an idle
// fault schedule never keeps Simulator::Run() alive after the workload
// drains); each begin applies the fault through the target layer's injection
// hook and schedules the matching clear. Fail-slow disks degrade through an
// 8-step ramp across the first quarter of the episode — media ages, it does
// not flip a switch — which is what makes the predictor's profiled model go
// stale *gradually* (organic prediction error, vs the artificially injected
// error of Fig. 10).
//
// Every activation is logged as an AppliedEpisode (ground truth for the
// 1-vs-N-worker determinism check), emitted as a `fault_active` span into the
// trial's obs ring, and counted in the `fault_episodes_total` metric.

#ifndef MITTOS_FAULT_INJECTOR_H_
#define MITTOS_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/fault/fault_plan.h"
#include "src/sim/simulator.h"

namespace mitt::fault {

class FaultInjector {
 public:
  FaultInjector(sim::Simulator* sim, cluster::Cluster* cluster, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every episode (as daemon events). Call once, before Run().
  void Start();

  const FaultPlan& plan() const { return plan_; }

  // Episodes fully applied (begin + clear), in clear order. Bit-identical
  // across MITT_TRIAL_WORKERS settings for the same plan and world.
  const std::vector<AppliedEpisode>& applied() const { return applied_; }

  uint64_t episodes_begun() const { return episodes_begun_; }
  // Episodes that target a hook absent from this world (e.g. a disk fault on
  // an SSD-backed node) or an out-of-range node.
  uint64_t episodes_skipped() const { return episodes_skipped_; }

 private:
  static constexpr int kRampSteps = 8;

  void Begin(size_t index);
  void End(size_t index, TimeNs actual_start);
  // Sharded worlds (sim->engine() != nullptr) run every fault transition as
  // a ShardedEngine *global event* — executed while all shards are quiesced,
  // because faults mutate cross-shard state (network links, remote nodes).
  // Unsharded worlds keep the legacy daemon scheduling, bit-identical with
  // prior releases. Both variants never keep the run alive on their own.
  void ScheduleFaultEvent(DurationNs delay, sim::Callback fn);
  // True if the episode's target exists in this world.
  bool Applicable(const FaultEpisode& episode) const;
  void ApplyDiskMultiplier(const FaultEpisode& episode, double multiplier);
  void ApplySsdMultiplier(const FaultEpisode& episode, double multiplier);

  sim::Simulator* sim_;
  cluster::Cluster* cluster_;
  FaultPlan plan_;
  std::vector<AppliedEpisode> applied_;
  uint64_t episodes_begun_ = 0;
  uint64_t episodes_skipped_ = 0;
  bool started_ = false;
};

}  // namespace mitt::fault

#endif  // MITTOS_FAULT_INJECTOR_H_
