#include "src/fault/plan_serde.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mitt::fault {
namespace {

constexpr std::string_view kHeader = "# mittos fault plan v1";

const FaultKind kAllKinds[] = {
    FaultKind::kFailSlowDisk,   FaultKind::kSsdReadRetry, FaultKind::kNetworkDegrade,
    FaultKind::kNetworkDrop,    FaultKind::kNetworkPartition,
    FaultKind::kNodePause,      FaultKind::kNodeCrashRestart,
};

// Splits `line` into whitespace-separated tokens.
std::vector<std::string_view> Tokens(std::string_view line) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') {
      ++j;
    }
    if (j > i) {
      out.push_back(line.substr(i, j - i));
    }
    i = j;
  }
  return out;
}

bool SplitKeyValue(std::string_view token, std::string_view* key, std::string_view* value) {
  const size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

bool ParseI64(std::string_view s, int64_t* out) {
  if (s.empty()) {
    return false;
  }
  char buf[32];
  if (s.size() >= sizeof(buf)) {
    return false;
  }
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 10);
  if (end != buf + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) {
    return false;
  }
  char buf[64];
  if (s.size() >= sizeof(buf)) {
    return false;
  }
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

bool FaultKindFromName(std::string_view name, FaultKind* out) {
  for (const FaultKind kind : kAllKinds) {
    if (FaultKindName(kind) == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::string EpisodeToLine(const FaultEpisode& episode) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "episode kind=%s node=%d start=%lld dur=%lld severity=%.17g chip=%d",
                std::string(FaultKindName(episode.kind)).c_str(), episode.node,
                static_cast<long long>(episode.start), static_cast<long long>(episode.duration),
                episode.severity, episode.chip);
  return buf;
}

bool EpisodeFromLine(std::string_view line, FaultEpisode* out, std::string* error) {
  const std::vector<std::string_view> tokens = Tokens(line);
  if (tokens.empty() || tokens[0] != "episode") {
    if (error != nullptr) {
      *error = "expected 'episode' line: " + std::string(line);
    }
    return false;
  }
  FaultEpisode e;
  bool saw_kind = false;
  for (size_t i = 1; i < tokens.size(); ++i) {
    std::string_view key;
    std::string_view value;
    if (!SplitKeyValue(tokens[i], &key, &value)) {
      if (error != nullptr) {
        *error = "malformed token '" + std::string(tokens[i]) + "'";
      }
      return false;
    }
    int64_t iv = 0;
    if (key == "kind") {
      if (!FaultKindFromName(value, &e.kind)) {
        if (error != nullptr) {
          *error = "unknown fault kind '" + std::string(value) + "'";
        }
        return false;
      }
      saw_kind = true;
    } else if (key == "node" && ParseI64(value, &iv)) {
      e.node = static_cast<int>(iv);
    } else if (key == "start" && ParseI64(value, &iv)) {
      e.start = iv;
    } else if (key == "dur" && ParseI64(value, &iv)) {
      e.duration = iv;
    } else if (key == "severity" && ParseDouble(value, &e.severity)) {
      // Parsed in place.
    } else if (key == "chip" && ParseI64(value, &iv)) {
      e.chip = static_cast<int>(iv);
    } else {
      if (error != nullptr) {
        *error = "unknown or unparsable token '" + std::string(tokens[i]) + "'";
      }
      return false;
    }
  }
  if (!saw_kind) {
    if (error != nullptr) {
      *error = "episode line missing kind=";
    }
    return false;
  }
  *out = e;
  return true;
}

std::string FaultPlanToText(const FaultPlan& plan) {
  std::string out(kHeader);
  out += '\n';
  for (const FaultEpisode& e : plan.episodes()) {
    out += EpisodeToLine(e);
    out += '\n';
  }
  return out;
}

bool FaultPlanFromText(std::string_view text, FaultPlan* out, std::string* error) {
  std::vector<FaultEpisode> episodes;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    std::string_view line =
        nl == std::string_view::npos ? text.substr(pos) : text.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') {
      continue;
    }
    FaultEpisode e;
    std::string line_error;
    if (!EpisodeFromLine(line, &e, &line_error)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + line_error;
      }
      return false;
    }
    episodes.push_back(e);
  }
  *out = FaultPlan(std::move(episodes));
  return true;
}

}  // namespace mitt::fault
