// "No TT in NoSQL" study (§2, Table 1).
//
// The paper analyzed six NoSQL systems under a severe one-second rotating IO
// contention and reported, per system: no failover in the default config
// (coarse default timeouts of 5-75 s), whether setting a 100 ms timeout
// actually triggers failover (three systems instead surface read errors),
// and whether cloning / hedged requests are available.
//
// We reproduce the study behaviourally: each system is modelled by its
// client-side tail-tolerance configuration (timeout value, failover-on-
// timeout behaviour, clone/hedge support, snitching) and driven against the
// same simulated contention. The mark placement in the paper's Table 1 is
// partially garbled in the text; where ambiguous we follow the prose ("three
// of them do not failover on a timeout", "only two employ cloning and none
// employ hedged/tied requests").

#ifndef MITTOS_STUDY_NOSQL_STUDY_H_
#define MITTOS_STUDY_NOSQL_STUDY_H_

#include <string>
#include <vector>

#include "src/common/time.h"

namespace mitt::study {

struct NosqlSystemModel {
  std::string name;
  DurationNs default_timeout;
  bool failover_on_timeout;  // Behaviour once a 100 ms timeout is configured.
  bool supports_clone;
  bool supports_hedged;
  bool snitching;
};

const std::vector<NosqlSystemModel>& PaperNosqlSystems();

struct NosqlStudyRow {
  std::string name;
  DurationNs default_timeout;
  bool default_tt;             // Any failover observed in default config?
  DurationNs default_p99;      // Observed p99 under rotating contention.
  bool failover_at_100ms;      // Failovers observed with a 100 ms timeout?
  uint64_t errors_at_100ms;    // Read errors surfaced to users instead.
  bool supports_clone;
  bool supports_hedged;
};

struct NosqlStudyOptions {
  size_t requests = 3000;
  uint64_t seed = 17;
};

// Runs every system through the §2 methodology: 3 replicas, thousands of 1KB
// reads, severe 1-second rotating contention.
std::vector<NosqlStudyRow> RunNosqlStudy(const NosqlStudyOptions& options);

}  // namespace mitt::study

#endif  // MITTOS_STUDY_NOSQL_STUDY_H_
