#include "src/study/nosql_study.h"

#include "src/harness/experiment.h"

namespace mitt::study {

const std::vector<NosqlSystemModel>& PaperNosqlSystems() {
  static const std::vector<NosqlSystemModel>* systems = [] {
    auto* s = new std::vector<NosqlSystemModel>;
    s->push_back({"Cassandra", Seconds(12), true, true, false, true});
    s->push_back({"Couchbase", Seconds(75), false, false, false, false});
    s->push_back({"HBase", Seconds(60), true, true, false, false});
    s->push_back({"MongoDB", Seconds(30), false, false, false, false});
    s->push_back({"Riak", Seconds(10), false, false, false, false});
    s->push_back({"Voldemort", Seconds(5), true, false, false, false});
    return s;
  }();
  return *systems;
}

std::vector<NosqlStudyRow> RunNosqlStudy(const NosqlStudyOptions& options) {
  std::vector<NosqlStudyRow> rows;
  for (const NosqlSystemModel& system : PaperNosqlSystems()) {
    harness::ExperimentOptions exp;
    exp.num_nodes = 3;  // 3 replicas, 1 client node (§2).
    exp.num_clients = 4;
    exp.measure_requests = options.requests;
    exp.warmup_requests = 100;
    exp.noise = harness::NoiseKind::kRotating;
    exp.rotate_period = Seconds(1);
    exp.noise_horizon = Seconds(600);
    exp.num_keys_per_node = 1 << 20;
    exp.seed = options.seed;

    NosqlStudyRow row;
    row.name = system.name;
    row.default_timeout = system.default_timeout;
    row.supports_clone = system.supports_clone;
    row.supports_hedged = system.supports_hedged;

    // Default configuration: the system's own (coarse) timeout. Snitching
    // systems route by replica score but still never time out.
    {
      harness::ExperimentOptions def = exp;
      def.app_timeout = system.default_timeout;
      harness::Experiment experiment(def);
      harness::RunResult result = system.snitching
                                      ? experiment.Run(harness::StrategyKind::kSnitch)
                                      : experiment.Run(harness::StrategyKind::kAppTimeout);
      row.default_tt = result.timeouts_fired > 0;
      row.default_p99 = result.get_latencies.Percentile(99);
    }

    // Forced 100 ms timeout: do we see failovers, or user-visible errors?
    {
      harness::ExperimentOptions exp100 = exp;
      exp100.app_timeout = Millis(100);
      exp100.app_timeout_failover = system.failover_on_timeout;
      harness::Experiment experiment(exp100);
      harness::RunResult result = experiment.Run(harness::StrategyKind::kAppTimeout);
      row.failover_at_100ms = system.failover_on_timeout && result.timeouts_fired > 0;
      row.errors_at_100ms = result.user_errors;
    }

    rows.push_back(row);
  }
  return rows;
}

}  // namespace mitt::study
