#include "src/kv/doc_store_node.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"
#include "src/resilience/deadline_budget.h"

namespace mitt::kv {

DocStoreNode::DocStoreNode(sim::Simulator* sim, int node_id, const Options& options,
                           cluster::CpuPool* shared_cpu)
    : sim_(sim), node_id_(node_id), options_(options), degraded_gate_(options.admission) {
  os::OsOptions os_options = options_.os;
  os_options.seed ^= static_cast<uint64_t>(node_id) * 0x1000'0001ULL;
  os_options.node_label = node_id;
  os_ = std::make_unique<os::Os>(sim_, os_options);
  if (shared_cpu != nullptr) {
    cpu_ = shared_cpu;
  } else {
    owned_cpu_ = std::make_unique<cluster::CpuPool>(sim_, options_.cpu_cores);
    cpu_ = owned_cpu_.get();
  }
  data_file_ = os_->CreateFile(data_file_size());
  if (options_.tenant_slots > 0) {
    tenant_gets_.assign(options_.tenant_slots, 0);
    tenant_ebusy_.assign(options_.tenant_slots, 0);
  }
}

void DocStoreNode::WarmCache(double fraction) {
  const auto warm_keys =
      static_cast<int64_t>(static_cast<double>(options_.num_keys) * fraction);
  for (int64_t k = 0; k < warm_keys; ++k) {
    os_->Prefault(data_file_, k * options_.slot_size, options_.doc_size);
  }
}

void DocStoreNode::Pause(DurationNs duration) { cpu_->PauseFor(duration); }

void DocStoreNode::CrashRestart(DurationNs downtime) {
  ++crashes_;
  // The process image is gone: restart with a cold page cache, and stall all
  // request handling for the downtime.
  os_->DropCachedFraction(1.0);
  cpu_->PauseFor(downtime);
}

void DocStoreNode::HandleGet(uint64_t key, DurationNs deadline,
                             std::function<void(Status)> reply, obs::TraceContext trace,
                             uint32_t tenant) {
  HandleGetWithHint(
      key, deadline, [reply = std::move(reply)](Status s, DurationNs) { reply(s); }, trace,
      tenant);
}

void DocStoreNode::HandleGetWithHint(uint64_t key, DurationNs deadline, RichReplyFn reply,
                                     obs::TraceContext trace, uint32_t tenant) {
  ++gets_served_;
  if (tenant < tenant_gets_.size()) {
    ++tenant_gets_[tenant];
  }
  cpu_->Execute(options_.handler_cpu / 2,
                [this, key, deadline, trace, tenant, reply = std::move(reply)] {
                  DoRead(key, deadline, std::move(reply), trace, tenant);
                });
}

void DocStoreNode::DoRead(uint64_t key, DurationNs deadline, RichReplyFn reply,
                          obs::TraceContext trace, uint32_t tenant) {
  const int64_t offset = OffsetOfKey(key);

  auto finish = [this, tenant, reply = std::move(reply)](Status status, DurationNs hint) {
    if (status.busy()) {
      ++ebusy_returned_;
      if (tenant < tenant_ebusy_.size()) {
        ++tenant_ebusy_[tenant];
      }
    }
    // Reply serialization plus (optionally) the C++ exception unwind the
    // paper eliminated with the exceptionless retry path.
    DurationNs cost = options_.handler_cpu / 2;
    if (status.busy() && options_.exception_on_ebusy) {
      cost += options_.exception_cost;
    }
    cpu_->Execute(cost, [reply, status, hint] { reply(status, hint); });
  };

  if (options_.access == AccessPath::kMmapAddrCheck) {
    const auto check = os_->AddrCheck(data_file_, offset, options_.doc_size, deadline, trace);
    if (check.status.busy()) {
      // Fail over instantly; the OS keeps swapping the page in behind us.
      // The wait hint is the device floor (the page must come off the disk).
      const DurationNs hint = os_->MinDeviceLatency();
      sim_->Schedule(check.cost, [finish, hint] { finish(Status::Ebusy(), hint); });
      return;
    }
    sim_->Schedule(check.cost, [this, offset, finish] {
      os_->MmapAccess(data_file_, offset, options_.doc_size, options_.server_pid,
                      [finish](Status s) { finish(s, 0); });
    });
    return;
  }

  os::Os::ReadArgs args;
  args.file = data_file_;
  args.offset = offset;
  args.size = options_.doc_size;
  args.deadline = deadline;
  args.pid = options_.server_pid;
  args.trace = trace;
  os_->ReadWithWaitHint(args, [finish](Status s, DurationNs hint) { finish(s, hint); });
}

void DocStoreNode::HandleDegradedGet(uint64_t key, DurationNs deadline, RichReplyFn reply,
                                     obs::TraceContext trace) {
  ++gets_served_;
  const obs::TraceContext server_trace{trace.id, node_id_};
  if (!degraded_gate_.TryAdmit()) {
    // Shed: the degraded path is already at capacity. Reply as fast as an
    // EBUSY reject, with the device floor as the wait hint, so the client
    // walks on instead of queueing invisibly behind the convoy.
    if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
      tr->RecordInstant(obs::SpanKind::kShed, server_trace, sim_->Now());
    }
    if (obs::MetricsRegistry* m = sim_->metrics()) {
      m->counter("resilience_shed_total", node_id_).Add();
    }
    const DurationNs hint = os_->MinDeviceLatency();
    cpu_->Execute(options_.handler_cpu / 2,
                  [reply = std::move(reply), hint] { reply(Status::Unavailable(), hint); });
    return;
  }
  if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
    tr->RecordInstant(obs::SpanKind::kDegradedGet, server_trace, sim_->Now());
  }
  if (obs::MetricsRegistry* m = sim_->metrics()) {
    m->counter("resilience_degraded_admit_total", node_id_).Add();
  }
  // Bounded-deadline discipline: negative values clamp to 0 (kNoDeadline must
  // not sneak through the degraded path), and nothing exceeds the cap.
  DurationNs first = resilience::ClampDeadline(deadline);
  if (first < 0 || first > options_.degraded_deadline_cap) {
    first = options_.degraded_deadline_cap;
  }
  cpu_->Execute(options_.handler_cpu / 2,
                [this, key, first, trace, reply = std::move(reply)]() mutable {
                  DegradedAttempt(key, first, 0, std::move(reply), trace);
                });
}

void DocStoreNode::DegradedAttempt(uint64_t key, DurationNs deadline, int attempt,
                                   RichReplyFn reply, obs::TraceContext trace) {
  degraded_max_deadline_ = std::max(degraded_max_deadline_, deadline);
  os::Os::ReadArgs args;
  args.file = data_file_;
  args.offset = OffsetOfKey(key);
  args.size = options_.doc_size;
  args.deadline = deadline;
  args.pid = options_.server_pid;
  args.trace = trace;
  os_->ReadWithWaitHint(
      args, [this, key, deadline, attempt, trace, reply = std::move(reply)](
                Status s, DurationNs hint) mutable {
        if (!s.busy() || attempt + 1 >= options_.degraded_max_attempts) {
          // Done (success, or attempts exhausted — surface the last status;
          // with the escalation below the deadline reaches the cap long
          // before the attempt limit, so exhaustion means a real outage).
          degraded_gate_.Release();
          cpu_->Execute(options_.handler_cpu / 2,
                        [reply = std::move(reply), s, hint] { reply(s, hint); });
          return;
        }
        // EBUSY: the predictor says the queue needs ~hint to drain. Wait it
        // out (the admission slot stays held — that is the "queue server-side
        // behind the gate" part), then re-issue with an escalated, still
        // bounded deadline.
        DurationNs next = std::max(deadline * 2, hint + deadline);
        next = std::min(next, options_.degraded_deadline_cap);
        const DurationNs wait = std::max<DurationNs>(hint, Micros(50));
        sim_->Schedule(wait, [this, key, next, attempt, trace,
                              reply = std::move(reply)]() mutable {
          DegradedAttempt(key, next, attempt + 1, std::move(reply), trace);
        });
      });
}

void DocStoreNode::HandlePut(uint64_t key, std::function<void(Status)> reply) {
  cpu_->Execute(options_.handler_cpu / 2, [this, key, reply = std::move(reply)] {
    os::Os::WriteArgs args;
    args.file = data_file_;
    args.offset = OffsetOfKey(key);
    args.size = options_.doc_size;
    args.pid = options_.server_pid;
    os_->Write(args, [this, reply](Status s) {
      cpu_->Execute(options_.handler_cpu / 2, [reply, s] { reply(s); });
    });
  });
}

}  // namespace mitt::kv
