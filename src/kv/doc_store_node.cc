#include "src/kv/doc_store_node.h"

#include <utility>

namespace mitt::kv {

DocStoreNode::DocStoreNode(sim::Simulator* sim, int node_id, const Options& options,
                           cluster::CpuPool* shared_cpu)
    : sim_(sim), node_id_(node_id), options_(options) {
  os::OsOptions os_options = options_.os;
  os_options.seed ^= static_cast<uint64_t>(node_id) * 0x1000'0001ULL;
  os_options.node_label = node_id;
  os_ = std::make_unique<os::Os>(sim_, os_options);
  if (shared_cpu != nullptr) {
    cpu_ = shared_cpu;
  } else {
    owned_cpu_ = std::make_unique<cluster::CpuPool>(sim_, options_.cpu_cores);
    cpu_ = owned_cpu_.get();
  }
  data_file_ = os_->CreateFile(data_file_size());
}

void DocStoreNode::WarmCache(double fraction) {
  const auto warm_keys =
      static_cast<int64_t>(static_cast<double>(options_.num_keys) * fraction);
  for (int64_t k = 0; k < warm_keys; ++k) {
    os_->Prefault(data_file_, k * options_.slot_size, options_.doc_size);
  }
}

void DocStoreNode::Pause(DurationNs duration) { cpu_->PauseFor(duration); }

void DocStoreNode::CrashRestart(DurationNs downtime) {
  ++crashes_;
  // The process image is gone: restart with a cold page cache, and stall all
  // request handling for the downtime.
  os_->DropCachedFraction(1.0);
  cpu_->PauseFor(downtime);
}

void DocStoreNode::HandleGet(uint64_t key, DurationNs deadline,
                             std::function<void(Status)> reply, obs::TraceContext trace) {
  HandleGetWithHint(
      key, deadline, [reply = std::move(reply)](Status s, DurationNs) { reply(s); }, trace);
}

void DocStoreNode::HandleGetWithHint(uint64_t key, DurationNs deadline, RichReplyFn reply,
                                     obs::TraceContext trace) {
  ++gets_served_;
  cpu_->Execute(options_.handler_cpu / 2, [this, key, deadline, trace, reply = std::move(reply)] {
    DoRead(key, deadline, std::move(reply), trace);
  });
}

void DocStoreNode::DoRead(uint64_t key, DurationNs deadline, RichReplyFn reply,
                          obs::TraceContext trace) {
  const int64_t offset = OffsetOfKey(key);

  auto finish = [this, reply = std::move(reply)](Status status, DurationNs hint) {
    if (status.busy()) {
      ++ebusy_returned_;
    }
    // Reply serialization plus (optionally) the C++ exception unwind the
    // paper eliminated with the exceptionless retry path.
    DurationNs cost = options_.handler_cpu / 2;
    if (status.busy() && options_.exception_on_ebusy) {
      cost += options_.exception_cost;
    }
    cpu_->Execute(cost, [reply, status, hint] { reply(status, hint); });
  };

  if (options_.access == AccessPath::kMmapAddrCheck) {
    const auto check = os_->AddrCheck(data_file_, offset, options_.doc_size, deadline, trace);
    if (check.status.busy()) {
      // Fail over instantly; the OS keeps swapping the page in behind us.
      // The wait hint is the device floor (the page must come off the disk).
      const DurationNs hint = os_->MinDeviceLatency();
      sim_->Schedule(check.cost, [finish, hint] { finish(Status::Ebusy(), hint); });
      return;
    }
    sim_->Schedule(check.cost, [this, offset, finish] {
      os_->MmapAccess(data_file_, offset, options_.doc_size, options_.server_pid,
                      [finish](Status s) { finish(s, 0); });
    });
    return;
  }

  os::Os::ReadArgs args;
  args.file = data_file_;
  args.offset = offset;
  args.size = options_.doc_size;
  args.deadline = deadline;
  args.pid = options_.server_pid;
  args.trace = trace;
  os_->ReadWithWaitHint(args, [finish](Status s, DurationNs hint) { finish(s, hint); });
}

void DocStoreNode::HandlePut(uint64_t key, std::function<void(Status)> reply) {
  cpu_->Execute(options_.handler_cpu / 2, [this, key, reply = std::move(reply)] {
    os::Os::WriteArgs args;
    args.file = data_file_;
    args.offset = OffsetOfKey(key);
    args.size = options_.doc_size;
    args.pid = options_.server_pid;
    os_->Write(args, [this, reply](Status s) {
      cpu_->Execute(options_.handler_cpu / 2, [reply, s] { reply(s); });
    });
  });
}

}  // namespace mitt::kv
