#include "src/kv/ring_coordinator.h"

namespace mitt::kv {

RingCoordinator::RingCoordinator(sim::Simulator* sim, std::vector<lsm::LsmNode*> nodes,
                                 cluster::Network* network, const Options& options)
    : sim_(sim), nodes_(std::move(nodes)), network_(network), options_(options) {}

std::vector<int> RingCoordinator::ReplicasOf(uint64_t key) const {
  std::vector<int> replicas;
  const uint64_t mixed = key * 0xC2B2'AE3D'27D4'EB4FULL;
  const int primary = static_cast<int>(mixed % nodes_.size());
  for (int r = 0; r < options_.replication; ++r) {
    replicas.push_back((primary + r) % static_cast<int>(nodes_.size()));
  }
  return replicas;
}

void RingCoordinator::Get(uint64_t key, std::function<void(Status)> done) {
  Attempt(key, 0, std::make_shared<std::function<void(Status)>>(std::move(done)));
}

void RingCoordinator::Attempt(uint64_t key, int try_index,
                              std::shared_ptr<std::function<void(Status)>> done) {
  const auto replicas = ReplicasOf(key);
  const bool last_try = try_index + 1 >= static_cast<int>(replicas.size());
  const DurationNs deadline =
      (options_.mitt_enabled && !last_try) ? options_.deadline : sched::kNoDeadline;
  lsm::LsmNode* node = nodes_[static_cast<size_t>(replicas[static_cast<size_t>(try_index)])];
  network_->Deliver([this, node, key, deadline, try_index, done] {
    node->HandleGet(key, deadline, [this, key, try_index, done](Status status) {
      network_->Deliver([this, key, try_index, done, status] {
        if (status.busy()) {
          ++failovers_;
          Attempt(key, try_index + 1, done);
          return;
        }
        (*done)(status);
      });
    });
  });
}

void RingCoordinator::Put(uint64_t key, std::function<void(Status)> done) {
  const auto replicas = ReplicasOf(key);
  auto first = std::make_shared<bool>(true);
  auto shared_done = std::make_shared<std::function<void(Status)>>(std::move(done));
  for (const int r : replicas) {
    lsm::LsmNode* node = nodes_[static_cast<size_t>(r)];
    network_->Deliver([this, node, key, first, shared_done] {
      node->HandlePut(key, [this, first, shared_done](Status s) {
        network_->Deliver([first, shared_done, s] {
          if (*first) {
            *first = false;
            (*shared_done)(s);
          }
        });
      });
    });
  }
}

}  // namespace mitt::kv
