#include "src/kv/ring_coordinator.h"

#include <algorithm>

namespace mitt::kv {

RingCoordinator::RingCoordinator(sim::Simulator* sim, std::vector<lsm::LsmNode*> nodes,
                                 cluster::Network* network, const Options& options)
    : sim_(sim),
      nodes_(std::move(nodes)),
      network_(network),
      options_(options),
      home_shard_(sim->shard_id()) {
  if (options_.resilience_enabled) {
    health_ = std::make_unique<resilience::ReplicaHealthTracker>(
        sim_, static_cast<int>(nodes_.size()), options_.health, options_.seed ^ 0x51A6'B07DULL);
    backoff_ = std::make_unique<resilience::DecorrelatedJitterBackoff>(
        options_.backoff, options_.seed ^ 0x0FF5'E77AULL);
  }
}

std::vector<int> RingCoordinator::ReplicasOf(uint64_t key) const {
  std::vector<int> replicas;
  const uint64_t mixed = key * 0xC2B2'AE3D'27D4'EB4FULL;
  const int primary = static_cast<int>(mixed % nodes_.size());
  for (int r = 0; r < options_.replication; ++r) {
    replicas.push_back((primary + r) % static_cast<int>(nodes_.size()));
  }
  return replicas;
}

// One resilient get: the deadline budget, health-ordered walk, and degraded
// fallback state shared across its hops.
struct RingCoordinator::GetState {
  uint64_t key = 0;
  std::vector<int> replicas;
  size_t next = 0;
  resilience::DeadlineBudget budget{0, 0};
  std::shared_ptr<std::function<void(Status)>> done;
  Status last_status = Status::Unavailable();
};

void RingCoordinator::Get(uint64_t key, std::function<void(Status)> done) {
  auto shared_done = std::make_shared<std::function<void(Status)>>(std::move(done));
  if (!options_.resilience_enabled) {
    Attempt(key, 0, std::move(shared_done));
    return;
  }
  auto g = std::make_shared<GetState>();
  g->key = key;
  g->replicas = ReplicasOf(key);
  health_->OrderReplicas(&g->replicas);
  g->budget = resilience::DeadlineBudget(options_.mitt_enabled ? options_.deadline
                                                               : sched::kNoDeadline,
                                         sim_->Now());
  g->done = std::move(shared_done);
  ResilientAttempt(std::move(g));
}

void RingCoordinator::Attempt(uint64_t key, int try_index,
                              std::shared_ptr<std::function<void(Status)>> done) {
  const auto replicas = ReplicasOf(key);
  const bool last_try = try_index + 1 >= static_cast<int>(replicas.size());
  const DurationNs deadline =
      (options_.mitt_enabled && !last_try) ? options_.deadline : sched::kNoDeadline;
  if (options_.mitt_enabled && last_try) {
    ++unbounded_tries_;
  }
  lsm::LsmNode* node = nodes_[static_cast<size_t>(replicas[static_cast<size_t>(try_index)])];
  // Request hop onto the replica's shard, reply hop back to the
  // coordinator's home shard (where `done` and the failover walk live).
  network_->Deliver(cluster::Network::kNoPeer, NodeShard(node),
                    [this, node, key, deadline, try_index, done] {
    node->HandleGet(key, deadline, [this, key, try_index, done](Status status) {
      network_->Deliver(cluster::Network::kNoPeer, home_shard_,
                        [this, key, try_index, done, status] {
        if (status.busy()) {
          ++failovers_;
          Attempt(key, try_index + 1, done);
          return;
        }
        (*done)(status);
      });
    });
  });
}

void RingCoordinator::ResilientAttempt(std::shared_ptr<GetState> g) {
  if (g->next >= g->replicas.size() || g->budget.Exhausted(sim_->Now())) {
    // Every replica rejected (or the SLO is already gone): degraded path,
    // never a deadline-disabled blast.
    DegradedAttempt(std::move(g), 0);
    return;
  }
  const size_t index = g->next++;
  lsm::LsmNode* node = nodes_[static_cast<size_t>(g->replicas[index])];
  const int replica = g->replicas[index];
  // Each hop carries only what is left of the SLO, clamped at 0.
  const DurationNs remaining = resilience::ClampDeadline(g->budget.Remaining(sim_->Now()));
  if (remaining >= 0) {
    max_sent_deadline_ = std::max(max_sent_deadline_, remaining);
  }
  const TimeNs sent_at = sim_->Now();
  network_->Deliver(cluster::Network::kNoPeer, NodeShard(node),
                    [this, node, g, remaining, replica, sent_at] {
    node->HandleGet(g->key, remaining, [this, g, replica, sent_at](Status status) {
      network_->Deliver(cluster::Network::kNoPeer, home_shard_,
                        [this, g, replica, sent_at, status] {
        health_->OnReply(replica, sim_->Now() - sent_at, status.busy());
        if (status.busy()) {
          ++failovers_;
          ResilientAttempt(g);
          return;
        }
        (*g->done)(status);
      });
    });
  });
}

void RingCoordinator::DegradedAttempt(std::shared_ptr<GetState> g, int round) {
  // Walk replicas in health order through the bounded degraded path; a shed
  // moves to the next replica, a fully-shed walk backs off and re-walks.
  auto walk = std::make_shared<size_t>(0);
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, g, round, walk, step] {
    if (*walk >= g->replicas.size()) {
      if (round + 1 >= options_.degraded_max_rounds) {
        (*g->done)(g->last_status);
        *step = nullptr;
        return;
      }
      const DurationNs delay = backoff_->Next();
      sim_->Schedule(delay, [this, g, round] { DegradedAttempt(g, round + 1); });
      *step = nullptr;
      return;
    }
    const size_t index = (*walk)++;
    lsm::LsmNode* node = nodes_[static_cast<size_t>(g->replicas[index])];
    ++degraded_gets_;
    // At least the full SLO, bounded; the node escalates (capped) from there.
    const DurationNs deadline =
        std::max(resilience::ClampDeadline(g->budget.Remaining(sim_->Now())), options_.deadline);
    max_sent_deadline_ = std::max(max_sent_deadline_, deadline);
    network_->Deliver(cluster::Network::kNoPeer, NodeShard(node),
                      [this, node, g, deadline, step] {
      node->HandleDegradedGet(g->key, deadline, [this, g, step](Status status) {
        network_->Deliver(cluster::Network::kNoPeer, home_shard_,
                          [this, g, step, status] {
          g->last_status = status;
          if (status.code() == StatusCode::kUnavailable) {
            ++degraded_sheds_seen_;
            (*step)();
            return;
          }
          (*g->done)(status);
          *step = nullptr;
        });
      });
    });
  };
  (*step)();
}

void RingCoordinator::Put(uint64_t key, std::function<void(Status)> done) {
  const auto replicas = ReplicasOf(key);
  auto first = std::make_shared<bool>(true);
  auto shared_done = std::make_shared<std::function<void(Status)>>(std::move(done));
  for (const int r : replicas) {
    lsm::LsmNode* node = nodes_[static_cast<size_t>(r)];
    network_->Deliver(cluster::Network::kNoPeer, NodeShard(node),
                      [this, node, key, first, shared_done] {
      node->HandlePut(key, [this, first, shared_done](Status s) {
        network_->Deliver(cluster::Network::kNoPeer, home_shard_,
                          [first, shared_done, s] {
          if (*first) {
            *first = false;
            (*shared_done)(s);
          }
        });
      });
    });
  }
}

}  // namespace mitt::kv
