// DocStoreNode: one MongoDB-like storage server (§5).
//
// A node stores `num_keys` fixed-size documents in one data file on its own
// OS instance. Reads follow one of two access paths, matching the paper's two
// MongoDB modifications:
//
//   * kMmapAddrCheck — MongoDB's default mmap() data access, guarded by the
//     new addrcheck() syscall (82 ns) before dereferencing; EBUSY fails over
//     without waiting while the OS swaps the page in, in the background.
//   * kRead — the read(..., deadline) syscall; the deadline propagates into
//     the IO scheduler, where MittNoop/MittCFQ/MittSSD accept or reject.
//
// Every request costs handler CPU on the node's CpuPool (Fig. 8's contention
// lives here), and EBUSY handling is "exceptionless" by default — the paper
// measured 200 us for a C++ exception round trip and added a direct retry
// path; `exception_on_ebusy` restores the expensive path for ablation.

#ifndef MITTOS_KV_DOC_STORE_NODE_H_
#define MITTOS_KV_DOC_STORE_NODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/cpu_pool.h"
#include "src/common/status.h"
#include "src/obs/trace.h"
#include "src/os/os.h"
#include "src/resilience/admission_gate.h"
#include "src/sim/simulator.h"

namespace mitt::kv {

enum class AccessPath {
  kMmapAddrCheck,
  kRead,
};

class DocStoreNode {
 public:
  struct Options {
    int64_t num_keys = 1 << 20;
    int64_t doc_size = 1024;   // 1 KB documents (YCSB workloads, §7).
    int64_t slot_size = 4096;  // One page per document slot.
    AccessPath access = AccessPath::kRead;
    int cpu_cores = 8;
    DurationNs handler_cpu = Micros(30);   // Parse + dispatch + reply.
    DurationNs exception_cost = Micros(200);
    bool exception_on_ebusy = false;  // Paper default: exceptionless path.
    int32_t server_pid = 1;
    os::OsOptions os;

    // Degraded (all-replicas-busy) read path (src/resilience/): bounded
    // admission behind a load-shed gate, bounded escalating deadlines —
    // the replacement for the paper's deadline-disabled last try.
    resilience::AdmissionGateOptions admission;
    int degraded_max_attempts = 10;
    DurationNs degraded_deadline_cap = Seconds(2);

    // Per-tenant accounting (src/tenant/): >0 sizes dense gets/EBUSY counter
    // arrays indexed by tenant id — two array increments on the get path,
    // no allocation. 0 disables (single-tenant worlds pay nothing).
    uint32_t tenant_slots = 0;
  };

  // Requests without a tenant (single-tenant worlds, background traffic).
  static constexpr uint32_t kNoTenant = 0xFFFFFFFFu;

  // `shared_cpu` (optional) makes several nodes contend for one physical
  // CPU pool — the §7.5 setup of six MongoDB processes on one 8-thread
  // machine. When null the node owns its own pool.
  DocStoreNode(sim::Simulator* sim, int node_id, const Options& options,
               cluster::CpuPool* shared_cpu = nullptr);

  DocStoreNode(const DocStoreNode&) = delete;
  DocStoreNode& operator=(const DocStoreNode&) = delete;

  // Serves one get(). `deadline` of sched::kNoDeadline means no SLO (vanilla
  // request). Replies with kOk or kEbusy. `trace` identifies the originating
  // client request for src/obs/ (default: untraced); `tenant` attributes the
  // get to a tenant slot when accounting is enabled.
  void HandleGet(uint64_t key, DurationNs deadline, std::function<void(Status)> reply,
                 obs::TraceContext trace = {}, uint32_t tenant = kNoTenant);

  // §7.8.1 extension: EBUSY replies carry the OS' predicted wait so the
  // client can pick the least-busy replica when all replicas reject.
  using RichReplyFn = std::function<void(Status, DurationNs predicted_wait)>;
  void HandleGetWithHint(uint64_t key, DurationNs deadline, RichReplyFn reply,
                         obs::TraceContext trace = {}, uint32_t tenant = kNoTenant);

  // Degraded read (all replicas rejected): admission is bounded by the shed
  // gate — over capacity replies kUnavailable (+ wait hint) immediately.
  // Admitted reads loop on EBUSY, waiting out the predicted wait and
  // escalating the deadline (capped at degraded_deadline_cap, never
  // disabled), so completion is guaranteed without unbounded queueing.
  void HandleDegradedGet(uint64_t key, DurationNs deadline, RichReplyFn reply,
                         obs::TraceContext trace = {});

  // Serves one put() — buffered write (§7.8.6).
  void HandlePut(uint64_t key, std::function<void(Status)> reply);

  // Pre-loads a fraction of the documents into the OS cache.
  void WarmCache(double fraction);

  // --- Fault hooks (src/fault/) ---
  // Stop-the-world pause (language-runtime GC, hypervisor freeze): no handler
  // burst starts until the pause lifts. In-flight device IO keeps completing,
  // but its reply serialization queues behind the pause, so clients see the
  // full stall — exactly the failure MittOS's EBUSY cannot predict and the
  // failover path must absorb.
  void Pause(DurationNs duration);
  // Process crash + restart: down for `downtime` (requests stall as in Pause),
  // then back with a cold page cache — the post-restart miss storm is the
  // interesting part.
  void CrashRestart(DurationNs downtime);
  uint64_t crashes() const { return crashes_; }

  int node_id() const { return node_id_; }
  sim::Simulator* sim() const { return sim_; }  // The owning shard's clock.
  os::Os& os() { return *os_; }
  cluster::CpuPool& cpu() { return *cpu_; }
  bool owns_cpu() const { return owned_cpu_ != nullptr; }
  uint64_t data_file() const { return data_file_; }
  int64_t data_file_size() const { return options_.num_keys * options_.slot_size; }
  const Options& options() const { return options_; }
  uint64_t gets_served() const { return gets_served_; }
  uint64_t ebusy_returned() const { return ebusy_returned_; }
  // Per-tenant cumulative counters (empty unless Options::tenant_slots > 0);
  // probed by the placement controller, borrowed not copied.
  const uint64_t* tenant_gets_data() const { return tenant_gets_.data(); }
  const uint64_t* tenant_ebusy_data() const { return tenant_ebusy_.data(); }
  uint32_t tenant_slots() const { return static_cast<uint32_t>(tenant_gets_.size()); }
  uint64_t degraded_admits() const { return degraded_gate_.admits(); }
  uint64_t degraded_sheds() const { return degraded_gate_.sheds(); }
  // Largest deadline the degraded path ever issued — the boundedness proof.
  DurationNs degraded_max_deadline() const { return degraded_max_deadline_; }

 private:
  int64_t OffsetOfKey(uint64_t key) const {
    return static_cast<int64_t>(key % static_cast<uint64_t>(options_.num_keys)) *
           options_.slot_size;
  }

  void DoRead(uint64_t key, DurationNs deadline, RichReplyFn reply, obs::TraceContext trace,
              uint32_t tenant);
  void DegradedAttempt(uint64_t key, DurationNs deadline, int attempt, RichReplyFn reply,
                       obs::TraceContext trace);

  sim::Simulator* sim_;
  int node_id_;
  Options options_;
  std::unique_ptr<os::Os> os_;
  std::unique_ptr<cluster::CpuPool> owned_cpu_;
  cluster::CpuPool* cpu_ = nullptr;
  uint64_t data_file_ = 0;
  uint64_t gets_served_ = 0;
  uint64_t ebusy_returned_ = 0;
  std::vector<uint64_t> tenant_gets_;
  std::vector<uint64_t> tenant_ebusy_;
  uint64_t crashes_ = 0;
  resilience::AdmissionGate degraded_gate_;
  DurationNs degraded_max_deadline_ = 0;
};

}  // namespace mitt::kv

#endif  // MITTOS_KV_DOC_STORE_NODE_H_
