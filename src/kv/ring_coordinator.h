// Riak-style replicated coordinator over LSM nodes (§5's two-level
// integration): the coordinator fans a get() to the primary replica first;
// if LevelDB's read path surfaces EBUSY, the coordinator instantly fails over
// to the next replica, disabling the deadline on the last try. With
// mitt_enabled = false it behaves like vanilla Riak (wait, no deadline).

#ifndef MITTOS_KV_RING_COORDINATOR_H_
#define MITTOS_KV_RING_COORDINATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/network.h"
#include "src/common/status.h"
#include "src/lsm/lsm_node.h"
#include "src/sim/simulator.h"

namespace mitt::kv {

class RingCoordinator {
 public:
  struct Options {
    int replication = 3;
    DurationNs deadline = Millis(13);
    bool mitt_enabled = true;
  };

  RingCoordinator(sim::Simulator* sim, std::vector<lsm::LsmNode*> nodes,
                  cluster::Network* network, const Options& options);

  // The replica set for a key, primary first.
  std::vector<int> ReplicasOf(uint64_t key) const;

  // Replicated get with EBUSY failover.
  void Get(uint64_t key, std::function<void(Status)> done);

  // Replicated put: writes all replicas, acks after the first (Riak w=1).
  void Put(uint64_t key, std::function<void(Status)> done);

  uint64_t failovers() const { return failovers_; }

 private:
  void Attempt(uint64_t key, int try_index, std::shared_ptr<std::function<void(Status)>> done);

  sim::Simulator* sim_;
  std::vector<lsm::LsmNode*> nodes_;
  cluster::Network* network_;
  Options options_;
  uint64_t failovers_ = 0;
};

}  // namespace mitt::kv

#endif  // MITTOS_KV_RING_COORDINATOR_H_
