// Riak-style replicated coordinator over LSM nodes (§5's two-level
// integration): the coordinator fans a get() to the primary replica first;
// if LevelDB's read path surfaces EBUSY, the coordinator instantly fails over
// to the next replica, disabling the deadline on the last try. With
// mitt_enabled = false it behaves like vanilla Riak (wait, no deadline).

#ifndef MITTOS_KV_RING_COORDINATOR_H_
#define MITTOS_KV_RING_COORDINATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/network.h"
#include "src/common/status.h"
#include "src/lsm/lsm_node.h"
#include "src/resilience/deadline_budget.h"
#include "src/resilience/replica_health.h"
#include "src/resilience/retry_policy.h"
#include "src/sim/simulator.h"

namespace mitt::kv {

class RingCoordinator {
 public:
  struct Options {
    int replication = 3;
    DurationNs deadline = Millis(13);
    bool mitt_enabled = true;
    // Resilience mode (src/resilience/): hops carry the *remaining* deadline
    // budget (clamped at 0, never disabled), the failover walk is reordered
    // by per-replica circuit breakers, and the all-replicas-EBUSY case goes
    // through the nodes' bounded degraded path instead of a deadline-
    // disabled last try.
    bool resilience_enabled = false;
    resilience::ReplicaHealthOptions health;
    resilience::BackoffOptions backoff;
    int degraded_max_rounds = 12;
    uint64_t seed = 1;
  };

  RingCoordinator(sim::Simulator* sim, std::vector<lsm::LsmNode*> nodes,
                  cluster::Network* network, const Options& options);

  // The replica set for a key, primary first.
  std::vector<int> ReplicasOf(uint64_t key) const;

  // Replicated get with EBUSY failover.
  void Get(uint64_t key, std::function<void(Status)> done);

  // Replicated put: writes all replicas, acks after the first (Riak w=1).
  void Put(uint64_t key, std::function<void(Status)> done);

  uint64_t failovers() const { return failovers_; }
  uint64_t unbounded_tries() const { return unbounded_tries_; }
  uint64_t degraded_gets() const { return degraded_gets_; }
  uint64_t degraded_sheds_seen() const { return degraded_sheds_seen_; }
  DurationNs max_sent_deadline() const { return max_sent_deadline_; }
  const resilience::ReplicaHealthTracker* health() const { return health_.get(); }

 private:
  struct GetState;

  void Attempt(uint64_t key, int try_index, std::shared_ptr<std::function<void(Status)>> done);
  void ResilientAttempt(std::shared_ptr<GetState> g);
  void DegradedAttempt(std::shared_ptr<GetState> g, int round);

  // Shard owning a replica (0 unsharded). Coordinator state — budgets,
  // health, counters, the degraded walk — only mutates on home_shard_.
  int NodeShard(const lsm::LsmNode* node) const {
    return network_->ShardOfNode(node->node_id());
  }

  sim::Simulator* sim_;
  std::vector<lsm::LsmNode*> nodes_;
  cluster::Network* network_;
  Options options_;
  int home_shard_ = 0;
  std::unique_ptr<resilience::ReplicaHealthTracker> health_;
  std::unique_ptr<resilience::DecorrelatedJitterBackoff> backoff_;
  uint64_t failovers_ = 0;
  uint64_t unbounded_tries_ = 0;
  uint64_t degraded_gets_ = 0;
  uint64_t degraded_sheds_seen_ = 0;
  DurationNs max_sent_deadline_ = 0;
};

}  // namespace mitt::kv

#endif  // MITTOS_KV_RING_COORDINATOR_H_
