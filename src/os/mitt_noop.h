// MittNoop (§4.1): admission prediction for the noop (FIFO) disk scheduler.
//
// O(1) per IO: the predictor tracks the disk's next-free time
// (T_nextFree). An arriving IO's wait is T_nextFree - T_now; if
// T_wait > T_deadline + T_hop the IO is rejected with EBUSY. On acceptance
// T_nextFree += T_processNewIO, where the processing time comes from the
// measured DiskProfile (Appendix A). On completion the diff between actual
// and predicted processing time recalibrates T_nextFree.

#ifndef MITTOS_OS_MITT_NOOP_H_
#define MITTOS_OS_MITT_NOOP_H_

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/device/disk_profile.h"
#include "src/os/predictor_common.h"
#include "src/sched/io_request.h"
#include "src/sim/simulator.h"

namespace mitt::os {

class MittNoopPredictor {
 public:
  MittNoopPredictor(sim::Simulator* sim, device::DiskProfile profile,
                    const PredictorOptions& options);

  // Called by the scheduler for every arriving IO *before* queueing. Fills
  // req->predicted_wait / predicted_process, and returns true if the IO must
  // be rejected with EBUSY (in accuracy mode: sets req->ebusy_flagged and
  // returns false instead).
  bool ShouldReject(sched::IoRequest* req);

  // Accounting for an accepted IO (extends T_nextFree).
  void OnAccepted(const sched::IoRequest& req);

  // Completion hook: calibrates T_nextFree with the actual-vs-predicted diff
  // and, in accuracy mode, accounts false positives/negatives.
  void OnCompletion(const sched::IoRequest& req, DurationNs actual_process);

  // Predicted wait for an IO arriving now (exposed for the "return expected
  // wait time" extension discussed in §7.8.1/§8.1).
  DurationNs PredictedWaitNow() const;

  const PredictionStats& stats() const { return stats_; }
  const PredictorOptions& options() const { return options_; }

 private:
  sim::Simulator* sim_;
  device::DiskProfile profile_;
  PredictorOptions options_;
  Rng error_rng_;
  PredictionStats stats_;

  TimeNs next_free_ = 0;
  // Offset of the most recently accepted IO: the queue tail the next IO's
  // seek is predicted from.
  int64_t tail_offset_ = 0;
};

}  // namespace mitt::os

#endif  // MITTOS_OS_MITT_NOOP_H_
