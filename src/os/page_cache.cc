#include "src/os/page_cache.h"

namespace mitt::os {

PageCache::PageCache(const PageCacheParams& params) : params_(params) {}

uint32_t PageCache::FindIndex(uint64_t key) const {
  if (slots_.empty()) {
    return kNil;
  }
  // Load factor <= 1/2 guarantees an unused slot terminates the probe.
  uint32_t i = HashIndex(key);
  while (slots_[i].used) {
    if (slots_[i].key == key) {
      return i;
    }
    i = (i + 1) & Mask();
  }
  return kNil;
}

void PageCache::UnlinkLru(uint32_t i) {
  const Slot& s = slots_[i];
  if (s.prev != kNil) {
    slots_[s.prev].next = s.next;
  } else {
    head_ = s.next;
  }
  if (s.next != kNil) {
    slots_[s.next].prev = s.prev;
  } else {
    tail_ = s.prev;
  }
}

void PageCache::LinkMru(uint32_t i) {
  Slot& s = slots_[i];
  s.prev = tail_;
  s.next = kNil;
  if (tail_ != kNil) {
    slots_[tail_].next = i;
  } else {
    head_ = i;
  }
  tail_ = i;
}

void PageCache::MoveSlot(uint32_t from, uint32_t to) {
  Slot& dst = slots_[to];
  const Slot& src = slots_[from];
  dst.key = src.key;
  dst.prev = src.prev;
  dst.next = src.next;
  dst.used = true;
  slots_[from].used = false;
  // The LRU chain still points at `from`; redirect its neighbors (or the
  // chain ends) to `to`.
  if (dst.prev != kNil) {
    slots_[dst.prev].next = to;
  } else {
    head_ = to;
  }
  if (dst.next != kNil) {
    slots_[dst.next].prev = to;
  } else {
    tail_ = to;
  }
}

void PageCache::EraseIndex(uint32_t i) {
  UnlinkLru(i);
  slots_[i].used = false;
  --count_;
  // Backward-shift deletion: walk the probe cluster after the hole and pull
  // back any entry whose probe path crossed it, so lookups never need
  // tombstones.
  uint32_t hole = i;
  uint32_t j = (i + 1) & Mask();
  while (slots_[j].used) {
    const uint32_t home = HashIndex(slots_[j].key);
    if (((j - home) & Mask()) >= ((j - hole) & Mask())) {
      MoveSlot(j, hole);
      hole = j;
    }
    j = (j + 1) & Mask();
  }
}

void PageCache::PlaceNew(uint64_t key) {
  uint32_t i = HashIndex(key);
  while (slots_[i].used) {
    i = (i + 1) & Mask();
  }
  slots_[i].key = key;
  slots_[i].used = true;
  ++count_;
  LinkMru(i);
}

void PageCache::Grow() {
  std::vector<Slot> old = std::move(slots_);
  const uint32_t old_head = head_;
  slots_.assign(old.size() * 2, Slot{});
  head_ = tail_ = kNil;
  count_ = 0;
  // Re-insert in LRU-to-MRU order: appending at MRU preserves the order.
  for (uint32_t i = old_head; i != kNil;) {
    const uint32_t next = old[i].next;
    PlaceNew(old[i].key);
    i = next;
  }
}

void PageCache::InsertOne(uint64_t key) {
  if (slots_.empty()) {
    // Size the table once, for the declared capacity at load factor 1/2:
    // 48 bytes per capacity page, ~1% of the memory the cache models.
    // Growing from small through doublings would re-insert every resident
    // page once per doubling while a large cache warms.
    size_t want = kInitialSlots;
    while (want < params_.capacity_pages * 2) {
      want <<= 1;
    }
    slots_.assign(want, Slot{});
  }
  const uint32_t hit = FindIndex(key);
  if (hit != kNil) {
    UnlinkLru(hit);
    LinkMru(hit);
    return;
  }
  if (count_ >= params_.capacity_pages && count_ > 0) {
    EraseIndex(head_);  // Evict the LRU page.
  }
  if ((count_ + 1) * 2 > slots_.size()) {
    Grow();
  }
  PlaceNew(key);
}

bool PageCache::Resident(uint64_t file, int64_t offset, int64_t len) const {
  const int64_t first = offset / params_.page_size;
  const int64_t last = (offset + (len > 0 ? len : 1) - 1) / params_.page_size;
  for (int64_t p = first; p <= last; ++p) {
    if (FindIndex(Key(file, p)) == kNil) {
      return false;
    }
  }
  return true;
}

void PageCache::Insert(uint64_t file, int64_t offset, int64_t len) {
  const int64_t first = offset / params_.page_size;
  const int64_t last = (offset + (len > 0 ? len : 1) - 1) / params_.page_size;
  for (int64_t p = first; p <= last; ++p) {
    InsertOne(Key(file, p));
  }
}

void PageCache::Touch(uint64_t file, int64_t offset, int64_t len) {
  const int64_t first = offset / params_.page_size;
  const int64_t last = (offset + (len > 0 ? len : 1) - 1) / params_.page_size;
  for (int64_t p = first; p <= last; ++p) {
    const uint32_t i = FindIndex(Key(file, p));
    if (i != kNil) {
      UnlinkLru(i);
      LinkMru(i);
    }
  }
}

void PageCache::EvictRange(uint64_t file, int64_t offset, int64_t len) {
  const int64_t first = offset / params_.page_size;
  const int64_t last = (offset + (len > 0 ? len : 1) - 1) / params_.page_size;
  for (int64_t p = first; p <= last; ++p) {
    const uint32_t i = FindIndex(Key(file, p));
    if (i != kNil) {
      EraseIndex(i);
    }
  }
}

void PageCache::EvictFraction(double fraction, Rng& rng) {
  if (fraction <= 0 || count_ == 0) {
    return;
  }
  // One Bernoulli draw per resident page, like the old map-order walk; the
  // walk is now in canonical LRU order. Erasure shifts slots around, so
  // collect keys first.
  std::vector<uint64_t> victims;
  victims.reserve(static_cast<size_t>(static_cast<double>(count_) * fraction) + 1);
  for (uint32_t i = head_; i != kNil; i = slots_[i].next) {
    if (rng.Bernoulli(fraction)) {
      victims.push_back(slots_[i].key);
    }
  }
  for (const uint64_t key : victims) {
    const uint32_t i = FindIndex(key);
    if (i != kNil) {
      EraseIndex(i);
    }
  }
}

}  // namespace mitt::os
