#include "src/os/page_cache.h"

#include <vector>

namespace mitt::os {

PageCache::PageCache(const PageCacheParams& params) : params_(params) {}

bool PageCache::Resident(uint64_t file, int64_t offset, int64_t len) const {
  const int64_t first = offset / params_.page_size;
  const int64_t last = (offset + (len > 0 ? len : 1) - 1) / params_.page_size;
  for (int64_t p = first; p <= last; ++p) {
    if (map_.find(Key(file, p)) == map_.end()) {
      return false;
    }
  }
  return true;
}

void PageCache::InsertOne(uint64_t key) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.end(), lru_, it->second);
    return;
  }
  if (map_.size() >= params_.capacity_pages && !lru_.empty()) {
    map_.erase(lru_.front());
    lru_.pop_front();
  }
  lru_.push_back(key);
  map_[key] = std::prev(lru_.end());
}

void PageCache::Insert(uint64_t file, int64_t offset, int64_t len) {
  const int64_t first = offset / params_.page_size;
  const int64_t last = (offset + (len > 0 ? len : 1) - 1) / params_.page_size;
  for (int64_t p = first; p <= last; ++p) {
    InsertOne(Key(file, p));
  }
}

void PageCache::Touch(uint64_t file, int64_t offset, int64_t len) {
  const int64_t first = offset / params_.page_size;
  const int64_t last = (offset + (len > 0 ? len : 1) - 1) / params_.page_size;
  for (int64_t p = first; p <= last; ++p) {
    const auto it = map_.find(Key(file, p));
    if (it != map_.end()) {
      lru_.splice(lru_.end(), lru_, it->second);
    }
  }
}

void PageCache::EvictRange(uint64_t file, int64_t offset, int64_t len) {
  const int64_t first = offset / params_.page_size;
  const int64_t last = (offset + (len > 0 ? len : 1) - 1) / params_.page_size;
  for (int64_t p = first; p <= last; ++p) {
    const auto it = map_.find(Key(file, p));
    if (it != map_.end()) {
      lru_.erase(it->second);
      map_.erase(it);
    }
  }
}

void PageCache::EvictFraction(double fraction, Rng& rng) {
  if (fraction <= 0 || map_.empty()) {
    return;
  }
  std::vector<uint64_t> victims;
  victims.reserve(static_cast<size_t>(static_cast<double>(map_.size()) * fraction) + 1);
  for (const auto& [key, it] : map_) {
    if (rng.Bernoulli(fraction)) {
      victims.push_back(key);
    }
  }
  for (const uint64_t key : victims) {
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.erase(it->second);
      map_.erase(it);
    }
  }
}

}  // namespace mitt::os
