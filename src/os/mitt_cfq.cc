#include "src/os/mitt_cfq.h"

#include <algorithm>

namespace mitt::os {
namespace {

int ClassRank(sched::IoClass c) { return static_cast<int>(c); }

}  // namespace

MittCfqPredictor::MittCfqPredictor(sim::Simulator* sim, device::DiskProfile profile,
                                   const PredictorOptions& options,
                                   const MittCfqOptions& cfq_options)
    : sim_(sim),
      profile_(std::move(profile)),
      options_(options),
      cfq_options_(cfq_options),
      error_rng_(options.error_seed) {}

DurationNs MittCfqPredictor::PredictProcess(const sched::IoRequest& req) const {
  if (!cfq_options_.use_profile) {
    return cfq_options_.flat_service_estimate;
  }
  const auto it = procs_.find(req.pid);
  const int64_t from = it != procs_.end() ? it->second.tail_offset : 0;
  const auto base = static_cast<double>(profile_.PredictServiceTime(from, req));
  return static_cast<DurationNs>(base * model_gain_);
}

DurationNs MittCfqPredictor::WaitEstimate(int32_t pid, sched::IoClass io_class) const {
  // Device queue first: everything already dispatched must finish.
  DurationNs wait = std::max<DurationNs>(0, device_next_free_ - sim_->Now());
  // Then every pending IO in classes that CFQ serves before ours, plus the
  // pending IOs of our own class (round-robin: assume they are ahead).
  for (int c = 0; c <= ClassRank(io_class); ++c) {
    wait += classes_[c].pending_total;
  }
  // SSTF-reordering risk: on a busy device, later-arriving nearer IOs can
  // overtake this process' IOs up to the firmware's anti-starvation bound.
  if (cfq_options_.starvation_margin &&
      device_inflight_ >= cfq_options_.busy_device_inflight) {
    const auto it = procs_.find(pid);
    if (it != procs_.end()) {
      wait += static_cast<DurationNs>(it->second.starvation_margin_ns);
    }
  }
  return wait;
}

DurationNs MittCfqPredictor::PredictedWaitNow(int32_t pid, sched::IoClass io_class) const {
  return WaitEstimate(pid, io_class);
}

bool MittCfqPredictor::ShouldReject(sched::IoRequest* req) {
  const DurationNs wait = WaitEstimate(req->pid, req->io_class);
  req->predicted_wait = wait;
  req->predicted_process = PredictProcess(*req);

  if (!req->has_deadline()) {
    return false;
  }

  bool reject = wait > req->deadline + options_.failover_hop;
  if (reject && options_.false_negative_rate > 0 &&
      error_rng_.Bernoulli(options_.false_negative_rate)) {
    reject = false;
  } else if (!reject && options_.false_positive_rate > 0 &&
             error_rng_.Bernoulli(options_.false_positive_rate)) {
    reject = true;
  }

  if (reject && options_.accuracy_mode) {
    req->ebusy_flagged = true;
    return false;
  }
  return reject;
}

std::vector<sched::IoRequest*> MittCfqPredictor::OnAccepted(sched::IoRequest* req) {
  ProcShadow& proc = procs_[req->pid];
  proc.io_class = req->io_class;
  proc.pending_total += req->predicted_process;
  proc.pending_count += 1;
  proc.tail_offset = req->offset + req->size;
  classes_[ClassRank(req->io_class)].pending_total += req->predicted_process;

  std::vector<sched::IoRequest*> victims;
  if (!cfq_options_.bump_cancellation) {
    return victims;
  }

  // Insert this IO into the tolerable-time table (deadline-carrying IOs
  // only): tolerance = slack left after the predicted wait.
  if (req->has_deadline() && !req->ebusy_flagged) {
    ClassState& cls = classes_[ClassRank(req->io_class)];
    const DurationNs tolerance =
        req->deadline + options_.failover_hop - req->predicted_wait;
    const DurationNs stored = tolerance + cls.debt;
    const int64_t bucket = stored / cfq_options_.tolerable_bucket;
    cls.by_tolerance[bucket].push_back(req);
    tolerance_index_[req] = bucket;
  }

  // This arrival bumps every pending IO of *lower* classes back by its
  // predicted processing time; collect the ones whose tolerance goes
  // negative.
  for (int c = ClassRank(req->io_class) + 1; c < 3; ++c) {
    ClassState& cls = classes_[c];
    cls.debt += req->predicted_process;
    while (!cls.by_tolerance.empty()) {
      auto it = cls.by_tolerance.begin();
      // Entries in bucket b have stored tolerance in
      // [b*bucket, (b+1)*bucket); all are certainly negative once
      // (b+1)*bucket <= debt, and possibly negative when b*bucket < debt.
      const int64_t bucket_lo = it->first * cfq_options_.tolerable_bucket;
      if (bucket_lo >= cls.debt) {
        break;
      }
      const int64_t bucket_hi = bucket_lo + cfq_options_.tolerable_bucket;
      if (bucket_hi <= cls.debt) {
        for (sched::IoRequest* victim : it->second) {
          tolerance_index_.erase(victim);
          victims.push_back(victim);
        }
        cls.by_tolerance.erase(it);
        continue;
      }
      // Boundary bucket: keep it. Bucketing to 1 ms means IOs within the
      // boundary bucket are given the benefit of the doubt, exactly the
      // granularity loss the paper accepts by grouping by 1 ms.
      break;
    }
  }

  if (options_.accuracy_mode) {
    for (sched::IoRequest* victim : victims) {
      victim->ebusy_flagged = true;
    }
    victims.clear();
  }
  for (sched::IoRequest* victim : victims) {
    ForgetPending(victim);
  }
  return victims;
}

void MittCfqPredictor::RemoveFromToleranceTable(sched::IoRequest* req) {
  const auto idx = tolerance_index_.find(req);
  if (idx == tolerance_index_.end()) {
    return;
  }
  ClassState& cls = classes_[ClassRank(req->io_class)];
  const auto bucket_it = cls.by_tolerance.find(idx->second);
  if (bucket_it != cls.by_tolerance.end()) {
    auto& vec = bucket_it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), req), vec.end());
    if (vec.empty()) {
      cls.by_tolerance.erase(bucket_it);
    }
  }
  tolerance_index_.erase(idx);
}

void MittCfqPredictor::ForgetPending(sched::IoRequest* req) {
  RemoveFromToleranceTable(req);
  auto it = procs_.find(req->pid);
  if (it != procs_.end()) {
    it->second.pending_total -= req->predicted_process;
    it->second.pending_count -= 1;
    if (it->second.pending_total < 0) {
      it->second.pending_total = 0;
    }
  }
  ClassState& cls = classes_[ClassRank(req->io_class)];
  cls.pending_total -= req->predicted_process;
  if (cls.pending_total < 0) {
    cls.pending_total = 0;
  }
}

void MittCfqPredictor::OnDispatch(sched::IoRequest* req) {
  ForgetPending(req);
  ++device_inflight_;
  const TimeNs now = sim_->Now();
  if (device_next_free_ < now) {
    device_next_free_ = now;
  }
  device_next_free_ += req->predicted_process;
}

void MittCfqPredictor::OnCompletion(const sched::IoRequest& req, DurationNs actual_process) {
  device_inflight_ = std::max(0, device_inflight_ - 1);
  if (cfq_options_.starvation_margin && req.predicted_wait > Millis(2)) {
    // Observed wait beyond the queue-total estimate (0 when the estimate was
    // sufficient, letting the margin decay in calm periods). predicted_wait
    // already contained the margin applied at accept, so add the current
    // margin back to sample the excess over the *base* estimate.
    const DurationNs actual_wait = (sim_->Now() - req.submit_time) - actual_process;
    double& margin = procs_[req.pid].starvation_margin_ns;
    // Signed sample (a symmetric-error workload must not ratchet the margin
    // up); the margin itself is kept non-negative.
    const double excess =
        std::clamp(static_cast<double>(actual_wait - req.predicted_wait) + margin,
                   -static_cast<double>(Millis(100)), static_cast<double>(Millis(100)));
    margin = (1.0 - cfq_options_.margin_ewma_alpha) * margin +
             cfq_options_.margin_ewma_alpha * excess;
    margin = std::max(margin, 0.0);
  }
  if (options_.calibrate && req.op != sched::IoOp::kWrite) {
    // Bounded diff (see MittNoop): transient destage interference must not
    // swing the estimate; writes calibrate nothing (NVRAM ack vs destage).
    device_next_free_ += std::clamp<DurationNs>(actual_process - req.predicted_process,
                                                -Millis(5), Millis(5));
    if (cfq_options_.gain_calibration && req.predicted_process > 0) {
      // Fold the SSTF-reordering advantage (and any device drift) into the
      // service model: gain tracks actual/predicted service time.
      double ratio = static_cast<double>(actual_process) /
                     static_cast<double>(req.predicted_process);
      ratio = std::clamp(ratio * model_gain_, 0.1, 10.0);
      model_gain_ = (1.0 - cfq_options_.gain_ewma_alpha) * model_gain_ +
                    cfq_options_.gain_ewma_alpha * ratio;
    }
  }
  if (options_.accuracy_mode && req.has_deadline()) {
    stats_.Account(req, sim_->Now() - req.submit_time);
  }
}

}  // namespace mitt::os
