#include "src/os/mitt_cfq.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace mitt::os {
namespace {

int ClassRank(sched::IoClass c) { return static_cast<int>(c); }

}  // namespace

// --- ToleranceWheel ---------------------------------------------------------

void MittCfqPredictor::ToleranceWheel::Insert(sched::IoRequest* req, int64_t bucket) {
  EnsureSpan(bucket);
  Bucket& b = buckets_[Index(bucket)];
  req->tol_bucket = bucket;
  req->in_tolerance = true;
  req->tol_next = nullptr;
  req->tol_prev = b.tail;
  if (b.tail != nullptr) {
    b.tail->tol_next = req;
  } else {
    b.head = req;
  }
  b.tail = req;
  if (count_ == 0) {
    min_ = max_ = bucket;
  } else {
    min_ = std::min(min_, bucket);
    max_ = std::max(max_, bucket);
  }
  ++count_;
}

void MittCfqPredictor::ToleranceWheel::Remove(sched::IoRequest* req) {
  Bucket& b = buckets_[Index(req->tol_bucket)];
  if (req->tol_prev != nullptr) {
    req->tol_prev->tol_next = req->tol_next;
  } else {
    b.head = req->tol_next;
  }
  if (req->tol_next != nullptr) {
    req->tol_next->tol_prev = req->tol_prev;
  } else {
    b.tail = req->tol_prev;
  }
  req->tol_prev = req->tol_next = nullptr;
  req->in_tolerance = false;
  --count_;
}

int64_t MittCfqPredictor::ToleranceWheel::MinBucket() {
  while (buckets_[Index(min_)].head == nullptr) {
    ++min_;
  }
  return min_;
}

void MittCfqPredictor::ToleranceWheel::PopBucketInto(int64_t bucket,
                                                     std::vector<sched::IoRequest*>* out) {
  Bucket& b = buckets_[Index(bucket)];
  for (sched::IoRequest* it = b.head; it != nullptr;) {
    sched::IoRequest* next = it->tol_next;
    it->tol_prev = it->tol_next = nullptr;
    it->in_tolerance = false;
    out->push_back(it);
    --count_;
    it = next;
  }
  b.head = b.tail = nullptr;
}

void MittCfqPredictor::ToleranceWheel::EnsureSpan(int64_t bucket) {
  if (buckets_.empty()) {
    buckets_.resize(kInitialBuckets);
  }
  if (count_ == 0) {
    return;  // A single bucket always fits.
  }
  int64_t lo = std::min(min_, bucket);
  int64_t hi = std::max(max_, bucket);
  if (hi - lo + 1 <= static_cast<int64_t>(buckets_.size())) {
    return;
  }
  // The hints may be stale after removals; shrink them to the real occupied
  // range before paying for a grow.
  Tighten();
  lo = std::min(min_, bucket);
  hi = std::max(max_, bucket);
  if (hi - lo + 1 <= static_cast<int64_t>(buckets_.size())) {
    return;
  }
  Grow(hi - lo + 1);
}

void MittCfqPredictor::ToleranceWheel::Tighten() {
  while (min_ < max_ && buckets_[Index(min_)].head == nullptr) {
    ++min_;
  }
  while (max_ > min_ && buckets_[Index(max_)].head == nullptr) {
    --max_;
  }
}

void MittCfqPredictor::ToleranceWheel::Grow(int64_t needed_span) {
  size_t cap = buckets_.size();
  while (static_cast<int64_t>(cap) < needed_span) {
    cap *= 2;
  }
  std::vector<Bucket> next(cap);
  // Within [min_, max_] the old ring has no aliasing (span <= old capacity),
  // and each bucket maps to a distinct slot in the larger ring.
  const size_t old_mask = buckets_.size() - 1;
  for (int64_t b = min_; b <= max_; ++b) {
    const Bucket& old_b = buckets_[static_cast<uint64_t>(b) & old_mask];
    if (old_b.head != nullptr && old_b.head->tol_bucket == b) {
      next[static_cast<uint64_t>(b) & (cap - 1)] = old_b;
    }
  }
  buckets_ = std::move(next);
}

// --- MittCfqPredictor -------------------------------------------------------

MittCfqPredictor::MittCfqPredictor(sim::Simulator* sim, device::DiskProfile profile,
                                   const PredictorOptions& options,
                                   const MittCfqOptions& cfq_options)
    : sim_(sim),
      profile_(std::move(profile)),
      options_(options),
      cfq_options_(cfq_options),
      error_rng_(options.error_seed) {
  procs_.reserve(64);
  victims_.reserve(16);
}

DurationNs MittCfqPredictor::PredictProcess(const sched::IoRequest& req) const {
  if (!cfq_options_.use_profile) {
    return cfq_options_.flat_service_estimate;
  }
  const auto it = procs_.find(req.pid);
  const int64_t from = it != procs_.end() ? it->second.tail_offset : 0;
  const auto base = static_cast<double>(profile_.PredictServiceTime(from, req));
  return static_cast<DurationNs>(base * model_gain_);
}

void MittCfqPredictor::AddClassPending(int rank, DurationNs delta) {
  DurationNs& total = classes_[rank].pending_total;
  const DurationNs before = total;
  total += delta;
  if (total < 0) {
    total = 0;
  }
  const DurationNs applied = total - before;
  for (int c = rank; c < 3; ++c) {
    prefix_wait_[c] += applied;
  }
}

DurationNs MittCfqPredictor::WaitEstimate(int32_t pid, sched::IoClass io_class) const {
#ifdef MITT_PREDICT_CHECK
  CheckAggregates();
#endif
  // Device queue first: everything already dispatched must finish. Then every
  // pending IO in classes that CFQ serves before ours, plus the pending IOs
  // of our own class (round-robin: assume they are ahead) — the prefix sum.
  DurationNs wait = std::max<DurationNs>(0, device_next_free_ - sim_->Now()) +
                    prefix_wait_[ClassRank(io_class)];
  // SSTF-reordering risk: on a busy device, later-arriving nearer IOs can
  // overtake this process' IOs up to the firmware's anti-starvation bound.
  if (cfq_options_.starvation_margin &&
      device_inflight_ >= cfq_options_.busy_device_inflight) {
    const auto it = procs_.find(pid);
    if (it != procs_.end()) {
      wait += static_cast<DurationNs>(it->second.starvation_margin_ns);
    }
  }
  return wait;
}

DurationNs MittCfqPredictor::PredictedWaitNow(int32_t pid, sched::IoClass io_class) const {
  return WaitEstimate(pid, io_class);
}

bool MittCfqPredictor::ShouldReject(sched::IoRequest* req) {
  const DurationNs wait = WaitEstimate(req->pid, req->io_class);
  req->predicted_wait = wait;
  req->predicted_process = PredictProcess(*req);

  if (!req->has_deadline()) {
    return false;
  }

  bool reject = wait > req->deadline + options_.failover_hop;
  if (reject && options_.false_negative_rate > 0 &&
      error_rng_.Bernoulli(options_.false_negative_rate)) {
    reject = false;
  } else if (!reject && options_.false_positive_rate > 0 &&
             error_rng_.Bernoulli(options_.false_positive_rate)) {
    reject = true;
  }

  if (reject && options_.accuracy_mode) {
    req->ebusy_flagged = true;
    return false;
  }
  return reject;
}

const std::vector<sched::IoRequest*>& MittCfqPredictor::OnAccepted(sched::IoRequest* req) {
  ProcShadow& proc = procs_[req->pid];
  proc.io_class = req->io_class;
  proc.pending_total += req->predicted_process;
  proc.pending_count += 1;
  proc.tail_offset = req->offset + req->size;
  AddClassPending(ClassRank(req->io_class), req->predicted_process);

  victims_.clear();
  if (!cfq_options_.bump_cancellation) {
    return victims_;
  }

  // Insert this IO into the tolerable-time wheel (deadline-carrying IOs
  // only): tolerance = slack left after the predicted wait.
  if (req->has_deadline() && !req->ebusy_flagged) {
    ClassState& cls = classes_[ClassRank(req->io_class)];
    const DurationNs tolerance =
        req->deadline + options_.failover_hop - req->predicted_wait;
    const DurationNs stored = tolerance + cls.debt;
    const int64_t bucket = stored / cfq_options_.tolerable_bucket;
    cls.wheel.Insert(req, bucket);
#ifdef MITT_PREDICT_CHECK
    check_by_tolerance_[ClassRank(req->io_class)][bucket].push_back(req);
    check_index_[req] = bucket;
#endif
  }

  // This arrival bumps every pending IO of *lower* classes back by its
  // predicted processing time; collect the ones whose tolerance goes
  // negative.
  for (int c = ClassRank(req->io_class) + 1; c < 3; ++c) {
    ClassState& cls = classes_[c];
    cls.debt += req->predicted_process;
    while (!cls.wheel.empty()) {
      const int64_t bucket = cls.wheel.MinBucket();
      // Entries in bucket b have stored tolerance in
      // [b*bucket, (b+1)*bucket); all are certainly negative once
      // (b+1)*bucket <= debt, and possibly negative when b*bucket < debt.
      const int64_t bucket_lo = bucket * cfq_options_.tolerable_bucket;
      if (bucket_lo >= cls.debt) {
        break;
      }
      const int64_t bucket_hi = bucket_lo + cfq_options_.tolerable_bucket;
      if (bucket_hi <= cls.debt) {
        cls.wheel.PopBucketInto(bucket, &victims_);
        continue;
      }
      // Boundary bucket: keep it. Bucketing to 1 ms means IOs within the
      // boundary bucket are given the benefit of the doubt, exactly the
      // granularity loss the paper accepts by grouping by 1 ms.
      break;
    }
  }

#ifdef MITT_PREDICT_CHECK
  // Replay the pop on the map-based oracle and demand identical victims.
  std::vector<sched::IoRequest*> oracle;
  for (int c = ClassRank(req->io_class) + 1; c < 3; ++c) {
    auto& table = check_by_tolerance_[c];
    const DurationNs debt = classes_[c].debt;
    while (!table.empty()) {
      auto it = table.begin();
      const int64_t bucket_lo = it->first * cfq_options_.tolerable_bucket;
      if (bucket_lo >= debt) {
        break;
      }
      if (bucket_lo + cfq_options_.tolerable_bucket <= debt) {
        for (sched::IoRequest* victim : it->second) {
          check_index_.erase(victim);
          oracle.push_back(victim);
        }
        table.erase(it);
        continue;
      }
      break;
    }
  }
  if (oracle != victims_) {
    std::fprintf(stderr,
                 "MittCfq predict-check: wheel victims (%zu) diverge from map "
                 "oracle (%zu)\n",
                 victims_.size(), oracle.size());
    std::abort();
  }
  CheckAggregates();
#endif

  if (options_.accuracy_mode) {
    for (sched::IoRequest* victim : victims_) {
      victim->ebusy_flagged = true;
    }
    victims_.clear();
  }
  for (sched::IoRequest* victim : victims_) {
    ForgetPending(victim);
  }
  return victims_;
}

void MittCfqPredictor::RemoveFromToleranceTable(sched::IoRequest* req) {
  if (!req->in_tolerance) {
    return;
  }
  ClassState& cls = classes_[ClassRank(req->io_class)];
  cls.wheel.Remove(req);
#ifdef MITT_PREDICT_CHECK
  const auto idx = check_index_.find(req);
  if (idx == check_index_.end()) {
    std::fprintf(stderr, "MittCfq predict-check: wheel entry missing from oracle\n");
    std::abort();
  }
  auto& table = check_by_tolerance_[ClassRank(req->io_class)];
  const auto bucket_it = table.find(idx->second);
  auto& vec = bucket_it->second;
  vec.erase(std::remove(vec.begin(), vec.end(), req), vec.end());
  if (vec.empty()) {
    table.erase(bucket_it);
  }
  check_index_.erase(idx);
#endif
}

void MittCfqPredictor::ForgetPending(sched::IoRequest* req) {
  RemoveFromToleranceTable(req);
  auto it = procs_.find(req->pid);
  if (it != procs_.end()) {
    it->second.pending_total -= req->predicted_process;
    it->second.pending_count -= 1;
    if (it->second.pending_total < 0) {
      it->second.pending_total = 0;
    }
  }
  AddClassPending(ClassRank(req->io_class), -req->predicted_process);
}

void MittCfqPredictor::OnDispatch(sched::IoRequest* req) {
  ForgetPending(req);
  ++device_inflight_;
  const TimeNs now = sim_->Now();
  if (device_next_free_ < now) {
    device_next_free_ = now;
  }
  device_next_free_ += req->predicted_process;
}

void MittCfqPredictor::OnCompletion(const sched::IoRequest& req, DurationNs actual_process) {
  device_inflight_ = std::max(0, device_inflight_ - 1);
  if (cfq_options_.starvation_margin && req.predicted_wait > Millis(2)) {
    // Observed wait beyond the queue-total estimate (0 when the estimate was
    // sufficient, letting the margin decay in calm periods). predicted_wait
    // already contained the margin applied at accept, so add the current
    // margin back to sample the excess over the *base* estimate.
    const DurationNs actual_wait = (sim_->Now() - req.submit_time) - actual_process;
    double& margin = procs_[req.pid].starvation_margin_ns;
    // Signed sample (a symmetric-error workload must not ratchet the margin
    // up); the margin itself is kept non-negative.
    const double excess =
        std::clamp(static_cast<double>(actual_wait - req.predicted_wait) + margin,
                   -static_cast<double>(Millis(100)), static_cast<double>(Millis(100)));
    margin = (1.0 - cfq_options_.margin_ewma_alpha) * margin +
             cfq_options_.margin_ewma_alpha * excess;
    margin = std::max(margin, 0.0);
  }
  if (options_.calibrate && req.op != sched::IoOp::kWrite) {
    // Bounded diff (see MittNoop): transient destage interference must not
    // swing the estimate; writes calibrate nothing (NVRAM ack vs destage).
    device_next_free_ += std::clamp<DurationNs>(actual_process - req.predicted_process,
                                                -Millis(5), Millis(5));
    if (cfq_options_.gain_calibration && req.predicted_process > 0) {
      // Fold the SSTF-reordering advantage (and any device drift) into the
      // service model: gain tracks actual/predicted service time.
      double ratio = static_cast<double>(actual_process) /
                     static_cast<double>(req.predicted_process);
      ratio = std::clamp(ratio * model_gain_, 0.1, 10.0);
      model_gain_ = (1.0 - cfq_options_.gain_ewma_alpha) * model_gain_ +
                    cfq_options_.gain_ewma_alpha * ratio;
    }
  }
  if (options_.accuracy_mode && req.has_deadline()) {
    stats_.Account(req, sim_->Now() - req.submit_time);
  }
}

#ifdef MITT_PREDICT_CHECK
void MittCfqPredictor::CheckAggregates() const {
  DurationNs prefix = 0;
  size_t wheel_total = 0;
  for (int c = 0; c < 3; ++c) {
    prefix += classes_[c].pending_total;
    if (prefix_wait_[c] != prefix) {
      std::fprintf(stderr,
                   "MittCfq predict-check: prefix_wait_[%d]=%lld != recomputed %lld\n",
                   c, static_cast<long long>(prefix_wait_[c]),
                   static_cast<long long>(prefix));
      std::abort();
    }
    wheel_total += classes_[c].wheel.size();
  }
  if (wheel_total != check_index_.size()) {
    std::fprintf(stderr,
                 "MittCfq predict-check: wheel holds %zu entries, oracle %zu\n",
                 wheel_total, check_index_.size());
    std::abort();
  }
}
#endif

}  // namespace mitt::os
