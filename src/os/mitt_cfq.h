// MittCFQ (§4.2): admission prediction for the CFQ scheduler.
//
// Performance: instead of iterating all pending IOs (O(N)), the predictor
// keeps the predicted total IO time of each process node (O(P)), aggregated
// per service class, plus an O(1) next-free-time estimate for the device
// queue, so a deadline check is O(1) in the number of pending IOs.
//
// Accuracy: IOs accepted earlier can later be "bumped to the back" by newly
// arriving higher-class IOs. The predictor keeps a hash table keyed by
// tolerable time (grouped in 1 ms buckets, exactly as in the paper): when a
// higher-class IO with predicted processing time T arrives, every lower-class
// pending IO's tolerable time shrinks by T; IOs whose tolerable time turns
// negative are cancelled with EBUSY. The shrink is O(1) via a per-class debt
// counter — an entry's effective tolerance is (stored - debt).

#ifndef MITTOS_OS_MITT_CFQ_H_
#define MITTOS_OS_MITT_CFQ_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"
#include "src/device/disk_profile.h"
#include "src/os/predictor_common.h"
#include "src/sched/io_request.h"
#include "src/sim/simulator.h"

namespace mitt::os {

struct MittCfqOptions {
  // Precision features; disabling them reproduces the §7.6 ablation
  // ("without our precision improvements, inaccuracy can be as high as 47%").
  bool bump_cancellation = true;  // The tolerable-time hash table.
  bool use_profile = true;        // Profiled service model vs. a flat constant.
  // Optional multiplicative gain on the service model, calibrated from
  // predicted-vs-actual completion diffs. With writes charged their destage
  // cost up front the additive next-free calibration suffices, and the gain
  // slightly over-corrects; kept as an experimental knob, off by default.
  bool gain_calibration = false;
  double gain_ewma_alpha = 0.05;
  // Appendix A also models the device's SSTF *ordering*: a far-from-head IO
  // entering a busy device queue waits behind nearer IOs — including ones
  // that arrive later — up to the device's anti-starvation bound. We learn
  // that extra wait online (EWMA of observed wait beyond the queue-total
  // estimate, gated on a busy device) instead of hard-coding firmware
  // geometry.
  bool starvation_margin = true;
  double margin_ewma_alpha = 0.1;
  int busy_device_inflight = 3;  // Gate: margin applies at this occupancy.
  DurationNs flat_service_estimate = Millis(6);
  DurationNs tolerable_bucket = Millis(1);
};

class MittCfqPredictor {
 public:
  MittCfqPredictor(sim::Simulator* sim, device::DiskProfile profile,
                   const PredictorOptions& options, const MittCfqOptions& cfq_options);

  // Deadline check for an arriving IO; fills prediction metadata. Returns
  // true if it must be rejected (accuracy mode: flags instead).
  bool ShouldReject(sched::IoRequest* req);

  // Registers an accepted IO; applies the tolerable-time shrink to
  // lower-class pending IOs and returns those whose deadline is now
  // unmeetable. The scheduler must dequeue each victim and complete it with
  // EBUSY (in accuracy mode the victims are flagged and the list is empty).
  std::vector<sched::IoRequest*> OnAccepted(sched::IoRequest* req);

  // The IO moved from the CFQ queues into the device queue.
  void OnDispatch(sched::IoRequest* req);

  // The device finished the IO; calibrates the next-free-time.
  void OnCompletion(const sched::IoRequest& req, DurationNs actual_process);

  DurationNs PredictedWaitNow(int32_t pid, sched::IoClass io_class) const;

  const PredictionStats& stats() const { return stats_; }

 private:
  struct ProcShadow {
    sched::IoClass io_class = sched::IoClass::kBestEffort;
    DurationNs pending_total = 0;
    int pending_count = 0;
    int64_t tail_offset = 0;
    // Per-process SSTF-overtaking margin: each process has its own locality,
    // so its IOs see their own reordering penalty on a busy device.
    double starvation_margin_ns = 0;
  };

  struct ClassState {
    DurationNs pending_total = 0;
    DurationNs debt = 0;  // Cumulative tolerable-time shrink.
    // stored tolerance bucket -> IOs in that bucket. An entry's effective
    // tolerance is (stored - debt); stored values are bucketed to 1 ms.
    std::map<int64_t, std::vector<sched::IoRequest*>> by_tolerance;
  };

  DurationNs PredictProcess(const sched::IoRequest& req) const;
  DurationNs WaitEstimate(int32_t pid, sched::IoClass io_class) const;
  void RemoveFromToleranceTable(sched::IoRequest* req);
  void ForgetPending(sched::IoRequest* req);

  sim::Simulator* sim_;
  device::DiskProfile profile_;
  PredictorOptions options_;
  MittCfqOptions cfq_options_;
  Rng error_rng_;
  PredictionStats stats_;

  std::unordered_map<int32_t, ProcShadow> procs_;
  ClassState classes_[3];
  std::unordered_map<const sched::IoRequest*, int64_t> tolerance_index_;
  TimeNs device_next_free_ = 0;
  double model_gain_ = 1.0;  // EWMA of actual/predicted service time.
  int device_inflight_ = 0;
};

}  // namespace mitt::os

#endif  // MITTOS_OS_MITT_CFQ_H_
