// MittCFQ (§4.2): admission prediction for the CFQ scheduler.
//
// Performance: the predictor keeps running aggregates — per-class pending
// totals folded into prefix sums, plus an O(1) next-free-time estimate for
// the device queue — updated incrementally on accept/dispatch/cancel, so a
// deadline check is a handful of loads regardless of queue depth.
//
// Accuracy: IOs accepted earlier can later be "bumped to the back" by newly
// arriving higher-class IOs. The predictor keeps a tolerance wheel keyed by
// tolerable time (grouped in 1 ms buckets, exactly as in the paper): when a
// higher-class IO with predicted processing time T arrives, every lower-class
// pending IO's tolerable time shrinks by T; IOs whose tolerable time turns
// negative are cancelled with EBUSY. The shrink is O(1) via a per-class debt
// counter — an entry's effective tolerance is (stored - debt). The wheel is
// a power-of-two ring of intrusive doubly-linked bucket lists threaded
// through the IoRequest tol_prev/tol_next fields, so insert, remove and
// bucket pops never allocate (the pre-overhaul std::map + index hash paid
// two node allocations and three hash/tree lookups per deadline IO).
//
// Building with -DMITT_PREDICT_CHECK=ON keeps the old map-based structures
// in lockstep as an oracle and aborts if any incremental answer diverges.

#ifndef MITTOS_OS_MITT_CFQ_H_
#define MITTOS_OS_MITT_CFQ_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#ifdef MITT_PREDICT_CHECK
#include <map>
#endif

#include "src/common/time.h"
#include "src/device/disk_profile.h"
#include "src/os/predictor_common.h"
#include "src/sched/io_request.h"
#include "src/sim/simulator.h"

namespace mitt::os {

struct MittCfqOptions {
  // Precision features; disabling them reproduces the §7.6 ablation
  // ("without our precision improvements, inaccuracy can be as high as 47%").
  bool bump_cancellation = true;  // The tolerable-time wheel.
  bool use_profile = true;        // Profiled service model vs. a flat constant.
  // Optional multiplicative gain on the service model, calibrated from
  // predicted-vs-actual completion diffs. With writes charged their destage
  // cost up front the additive next-free calibration suffices, and the gain
  // slightly over-corrects; kept as an experimental knob, off by default.
  bool gain_calibration = false;
  double gain_ewma_alpha = 0.05;
  // Appendix A also models the device's SSTF *ordering*: a far-from-head IO
  // entering a busy device queue waits behind nearer IOs — including ones
  // that arrive later — up to the device's anti-starvation bound. We learn
  // that extra wait online (EWMA of observed wait beyond the queue-total
  // estimate, gated on a busy device) instead of hard-coding firmware
  // geometry.
  bool starvation_margin = true;
  double margin_ewma_alpha = 0.1;
  int busy_device_inflight = 3;  // Gate: margin applies at this occupancy.
  DurationNs flat_service_estimate = Millis(6);
  DurationNs tolerable_bucket = Millis(1);
};

class MittCfqPredictor {
 public:
  MittCfqPredictor(sim::Simulator* sim, device::DiskProfile profile,
                   const PredictorOptions& options, const MittCfqOptions& cfq_options);

  // Deadline check for an arriving IO; fills prediction metadata. Returns
  // true if it must be rejected (accuracy mode: flags instead).
  bool ShouldReject(sched::IoRequest* req);

  // Registers an accepted IO; applies the tolerable-time shrink to
  // lower-class pending IOs and returns those whose deadline is now
  // unmeetable. The scheduler must dequeue each victim and complete it with
  // EBUSY (in accuracy mode the victims are flagged and the list is empty).
  // The returned list is a reused internal buffer, valid until the next
  // OnAccepted call.
  const std::vector<sched::IoRequest*>& OnAccepted(sched::IoRequest* req);

  // The IO moved from the CFQ queues into the device queue.
  void OnDispatch(sched::IoRequest* req);

  // The device finished the IO; calibrates the next-free-time.
  void OnCompletion(const sched::IoRequest& req, DurationNs actual_process);

  DurationNs PredictedWaitNow(int32_t pid, sched::IoClass io_class) const;

  const PredictionStats& stats() const { return stats_; }

 private:
  struct ProcShadow {
    sched::IoClass io_class = sched::IoClass::kBestEffort;
    DurationNs pending_total = 0;
    int pending_count = 0;
    int64_t tail_offset = 0;
    // Per-process SSTF-overtaking margin: each process has its own locality,
    // so its IOs see their own reordering penalty on a busy device.
    double starvation_margin_ns = 0;
  };

  // Power-of-two ring of tolerance buckets holding intrusive doubly-linked
  // lists (tol_prev/tol_next on the IoRequest). Bucket indices are absolute
  // (they grow with the cumulative debt); the ring only needs to cover the
  // *span* of live buckets, which is bounded by the largest tolerable time
  // (~deadline + failover hop) divided by the bucket width.
  class ToleranceWheel {
   public:
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }

    void Insert(sched::IoRequest* req, int64_t bucket);
    void Remove(sched::IoRequest* req);
    // Requires !empty(): index of the smallest occupied bucket.
    int64_t MinBucket();
    // Appends bucket's entries to *out in insertion order and empties it.
    void PopBucketInto(int64_t bucket, std::vector<sched::IoRequest*>* out);

   private:
    struct Bucket {
      sched::IoRequest* head = nullptr;
      sched::IoRequest* tail = nullptr;
    };

    static constexpr size_t kInitialBuckets = 128;

    size_t Index(int64_t bucket) const {
      return static_cast<uint64_t>(bucket) & (buckets_.size() - 1);
    }
    void EnsureSpan(int64_t bucket);
    void Tighten();
    void Grow(int64_t needed_span);

    std::vector<Bucket> buckets_;
    // Conservative occupied range: every live entry's bucket lies within
    // [min_, max_]. Removals leave the hints stale (too wide); MinBucket and
    // EnsureSpan re-tighten lazily. Invariant: max_ - min_ + 1 <= capacity,
    // so ring slots never alias within the live range.
    int64_t min_ = 0;
    int64_t max_ = 0;
    size_t count_ = 0;
  };

  struct ClassState {
    DurationNs pending_total = 0;
    DurationNs debt = 0;  // Cumulative tolerable-time shrink.
    // stored tolerance bucket -> IOs in that bucket. An entry's effective
    // tolerance is (stored - debt); stored values are bucketed to 1 ms.
    ToleranceWheel wheel;
  };

  DurationNs PredictProcess(const sched::IoRequest& req) const;
  DurationNs WaitEstimate(int32_t pid, sched::IoClass io_class) const;
  void RemoveFromToleranceTable(sched::IoRequest* req);
  void ForgetPending(sched::IoRequest* req);
  // Adjusts a class's pending total (clamped at zero, as the pre-overhaul
  // code did) and folds the applied delta into the prefix sums.
  void AddClassPending(int rank, DurationNs delta);

  sim::Simulator* sim_;
  device::DiskProfile profile_;
  PredictorOptions options_;
  MittCfqOptions cfq_options_;
  Rng error_rng_;
  PredictionStats stats_;

  std::unordered_map<int32_t, ProcShadow> procs_;
  ClassState classes_[3];
  // prefix_wait_[c] == sum of classes_[0..c].pending_total: the queue part of
  // a class-c wait estimate in a single load.
  DurationNs prefix_wait_[3] = {0, 0, 0};
  std::vector<sched::IoRequest*> victims_;  // Reused OnAccepted result buffer.
  TimeNs device_next_free_ = 0;
  double model_gain_ = 1.0;  // EWMA of actual/predicted service time.
  int device_inflight_ = 0;

#ifdef MITT_PREDICT_CHECK
  // Pre-overhaul structures maintained in lockstep as a recompute oracle.
  void CheckAggregates() const;
  std::map<int64_t, std::vector<sched::IoRequest*>> check_by_tolerance_[3];
  std::unordered_map<const sched::IoRequest*, int64_t> check_index_;
#endif
};

}  // namespace mitt::os

#endif  // MITTOS_OS_MITT_CFQ_H_
