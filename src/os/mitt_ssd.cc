#include "src/os/mitt_ssd.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace mitt::os {

MittSsdPredictor::MittSsdPredictor(sim::Simulator* sim, const device::SsdModel* ssd,
                                   device::SsdProfile profile, const PredictorOptions& options,
                                   const MittSsdOptions& ssd_options)
    : sim_(sim),
      ssd_(ssd),
      profile_(std::move(profile)),
      options_(options),
      ssd_options_(ssd_options),
      error_rng_(options.error_seed) {
  chip_next_free_.assign(static_cast<size_t>(ssd_->num_chips()), 0);
  channel_outstanding_.assign(static_cast<size_t>(ssd_->params().num_channels), 0);
}

DurationNs MittSsdPredictor::SubIoService(const sched::IoRequest& req,
                                          int64_t logical_page) const {
  // Chip-occupancy time only: the channel transfer is accounted separately
  // through the outstanding-IO term of the wait formula, so charging it to
  // the chip as well would double-count it and over-reject.
  switch (req.op) {
    case sched::IoOp::kRead:
      return profile_.page_read_total - profile_.channel_delay;
    case sched::IoOp::kWrite: {
      if (!ssd_options_.use_program_pattern) {
        return profile_.ProgramTime(0);
      }
      const int64_t in_chip = logical_page / ssd_->num_chips();
      const int pos = static_cast<int>(in_chip % ssd_->params().pages_per_block);
      return profile_.ProgramTime(pos);
    }
    case sched::IoOp::kErase:
      return profile_.erase_time;
  }
  return 0;
}

DurationNs MittSsdPredictor::PredictedWait(const sched::IoRequest& req) const {
  const TimeNs now = sim_->Now();
  if (!ssd_options_.per_chip_tracking) {
    // Strawman single-queue model: the whole device is busy until the max of
    // all chip next-free times — the maintained running maximum.
#ifdef MITT_PREDICT_CHECK
    TimeNs walked = 0;
    for (const TimeNs t : chip_next_free_) {
      walked = std::max(walked, t);
    }
    if (walked != busiest_next_free_) {
      std::fprintf(stderr,
                   "MittSsd predict-check: busiest_next_free_=%lld != chip walk %lld\n",
                   static_cast<long long>(busiest_next_free_),
                   static_cast<long long>(walked));
      std::abort();
    }
#endif
    return std::max<DurationNs>(0, busiest_next_free_ - now);
  }
  const int64_t first = ssd_->PageOfOffset(req.offset);
  const int64_t last = ssd_->PageOfOffset(req.offset + std::max<int64_t>(req.size, 1) - 1);
  DurationNs worst = 0;
  for (int64_t p = first; p <= last; ++p) {
    const int chip = ssd_->ChipOfPage(p);
    const int channel = ssd_->ChannelOfChip(chip);
    const DurationNs wait =
        std::max<DurationNs>(0, chip_next_free_[chip] - now) +
        profile_.channel_delay * channel_outstanding_[channel];
    worst = std::max(worst, wait);
  }
  return worst;
}

bool MittSsdPredictor::ShouldReject(sched::IoRequest* req) {
  const DurationNs wait = PredictedWait(*req);
  req->predicted_wait = wait;
  req->predicted_process = SubIoService(*req, ssd_->PageOfOffset(req->offset));

  if (!req->has_deadline()) {
    return false;
  }
  bool reject = wait > req->deadline + options_.failover_hop;
  if (reject && options_.false_negative_rate > 0 &&
      error_rng_.Bernoulli(options_.false_negative_rate)) {
    reject = false;
  } else if (!reject && options_.false_positive_rate > 0 &&
             error_rng_.Bernoulli(options_.false_positive_rate)) {
    reject = true;
  }
  if (reject && options_.accuracy_mode) {
    req->ebusy_flagged = true;
    return false;
  }
  return reject;
}

void MittSsdPredictor::OnAccepted(sched::IoRequest* req) {
  const TimeNs now = sim_->Now();
  const int64_t first = ssd_->PageOfOffset(req->offset);
  const int64_t last = ssd_->PageOfOffset(req->offset + std::max<int64_t>(req->size, 1) - 1);
  for (int64_t p = first; p <= last; ++p) {
    const int chip = ssd_->ChipOfPage(p);
    const int channel = ssd_->ChannelOfChip(chip);
    TimeNs& free_at = chip_next_free_[chip];
    if (free_at < now) {
      free_at = now;
    }
    free_at += SubIoService(*req, p);
    busiest_next_free_ = std::max(busiest_next_free_, free_at);
    ++channel_outstanding_[channel];
#ifdef MITT_PREDICT_CHECK
    check_channels_of_[req->id].push_back(channel);
#endif
  }
  req->ssd_tracked = true;
}

void MittSsdPredictor::OnCompletion(sched::IoRequest* req) {
  // Device-internal IOs (GC) go straight to the device and never pass
  // admission; they carry no accounting to unwind.
  if (req->ssd_tracked) {
    req->ssd_tracked = false;
    // Recompute the channels the request touched — same page walk, and
    // therefore the same decrement order, as OnAccepted.
    const int64_t first = ssd_->PageOfOffset(req->offset);
    const int64_t last =
        ssd_->PageOfOffset(req->offset + std::max<int64_t>(req->size, 1) - 1);
#ifdef MITT_PREDICT_CHECK
    const auto it = check_channels_of_.find(req->id);
    if (it == check_channels_of_.end() ||
        it->second.size() != static_cast<size_t>(last - first + 1)) {
      std::fprintf(stderr, "MittSsd predict-check: channel list mismatch for io %llu\n",
                   static_cast<unsigned long long>(req->id));
      std::abort();
    }
#endif
    for (int64_t p = first; p <= last; ++p) {
      const int channel = ssd_->ChannelOfChip(ssd_->ChipOfPage(p));
#ifdef MITT_PREDICT_CHECK
      if (it->second[static_cast<size_t>(p - first)] != channel) {
        std::fprintf(stderr, "MittSsd predict-check: recomputed channel diverges\n");
        std::abort();
      }
#endif
      channel_outstanding_[channel] = std::max(0, channel_outstanding_[channel] - 1);
    }
#ifdef MITT_PREDICT_CHECK
    check_channels_of_.erase(it);
#endif
  }
  if (options_.accuracy_mode && req->has_deadline()) {
    stats_.Account(*req, sim_->Now() - req->submit_time);
  }
}

SsdBlockLayer::SsdBlockLayer(sim::Simulator* sim, device::SsdModel* ssd,
                             MittSsdPredictor* predictor)
    : sim_(sim), ssd_(ssd), predictor_(predictor), obs_(sim) {
  ssd_->set_completion_listener([this](sched::IoRequest* req) { OnDeviceCompletion(req); });
}

void SsdBlockLayer::Submit(sched::IoRequest* req) {
  req->submit_time = sim_->Now();
  obs_.Touch(*req);
  if (predictor_ != nullptr) {
    const bool reject = predictor_->ShouldReject(req);
    obs_.OnPredict(*req, reject);
    if (reject) {
      if (req->on_complete) {
        auto cb = std::move(req->on_complete);
        cb(*req, Status::Ebusy());
      }
      return;
    }
    predictor_->OnAccepted(req);
  }
  // No block-layer queue: the IO goes straight to the device, so queue_wait
  // is zero-length and device-internal queueing shows up as device_service.
  // The wait-sum aggregate is settled at completion instead (OnDeviceSojourn).
  obs_.OnDispatch(*req);
  ssd_->Submit(req);
}

void SsdBlockLayer::OnDeviceCompletion(sched::IoRequest* req) {
  if (predictor_ != nullptr) {
    predictor_->OnCompletion(req);
  }
  obs_.OnDeviceSojourn(*req);
  obs_.OnServiceDone(*req);
  if (req->on_complete) {
    auto cb = std::move(req->on_complete);
    cb(*req, Status::Ok());
  }
}

}  // namespace mitt::os
