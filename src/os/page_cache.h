// OS buffer/page cache: page-granular LRU over (file, page) keys.
//
// MittCache (§4.4) is a thin layer over this table: residency lookups are
// O(1) hash-table probes ("addrcheck traverses existing hash tables in
// O(1)"), and multi-tenant memory contention is emulated by evicting a
// fraction of the resident pages (the paper injects cache misses the same
// way, with posix_fadvise, §7.1/§7.4).

#ifndef MITTOS_OS_PAGE_CACHE_H_
#define MITTOS_OS_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace mitt::os {

struct PageCacheParams {
  int64_t page_size = 4096;
  size_t capacity_pages = 1 << 20;  // 4 GiB of 4 KiB pages.
};

class PageCache {
 public:
  explicit PageCache(const PageCacheParams& params);

  // True iff every page of [offset, offset+len) of `file` is resident.
  // Does not touch LRU state (AddrCheck must not perturb eviction order).
  bool Resident(uint64_t file, int64_t offset, int64_t len) const;

  // Marks the range resident, evicting LRU pages if over capacity.
  void Insert(uint64_t file, int64_t offset, int64_t len);

  // Moves the range's pages to the MRU end (a completed read access).
  void Touch(uint64_t file, int64_t offset, int64_t len);

  // Evicts pages covering the range, if resident.
  void EvictRange(uint64_t file, int64_t offset, int64_t len);

  // Evicts approximately `fraction` of all resident pages, chosen uniformly —
  // the noisy-neighbor memory contention / VM ballooning effect (§6, §7.1).
  void EvictFraction(double fraction, Rng& rng);

  size_t resident_pages() const { return map_.size(); }
  const PageCacheParams& params() const { return params_; }

 private:
  using LruList = std::list<uint64_t>;  // Keys, LRU at front / MRU at back.

  static uint64_t Key(uint64_t file, int64_t page) {
    return (file << 40) | static_cast<uint64_t>(page);
  }

  void InsertOne(uint64_t key);

  PageCacheParams params_;
  LruList lru_;
  std::unordered_map<uint64_t, LruList::iterator> map_;
};

}  // namespace mitt::os

#endif  // MITTOS_OS_PAGE_CACHE_H_
