// OS buffer/page cache: page-granular LRU over (file, page) keys.
//
// MittCache (§4.4) is a thin layer over this table: residency lookups are
// O(1) hash-table probes ("addrcheck traverses existing hash tables in
// O(1)"), and multi-tenant memory contention is emulated by evicting a
// fraction of the resident pages (the paper injects cache misses the same
// way, with posix_fadvise, §7.1/§7.4).
//
// Storage is a single open-addressing hash table (linear probing, load
// factor <= 1/2, backward-shift deletion) whose slots double as intrusive
// LRU links (prev/next slot indices). One flat array replaces the old
// std::list + unordered_map pair, which paid two node allocations per
// resident page and three pointer chases per touch; at steady state no
// operation allocates.

#ifndef MITTOS_OS_PAGE_CACHE_H_
#define MITTOS_OS_PAGE_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace mitt::os {

struct PageCacheParams {
  int64_t page_size = 4096;
  size_t capacity_pages = 1 << 20;  // 4 GiB of 4 KiB pages.
};

class PageCache {
 public:
  explicit PageCache(const PageCacheParams& params);

  // True iff every page of [offset, offset+len) of `file` is resident.
  // Does not touch LRU state (AddrCheck must not perturb eviction order).
  bool Resident(uint64_t file, int64_t offset, int64_t len) const;

  // Marks the range resident, evicting LRU pages if over capacity.
  void Insert(uint64_t file, int64_t offset, int64_t len);

  // Moves the range's pages to the MRU end (a completed read access).
  void Touch(uint64_t file, int64_t offset, int64_t len);

  // Evicts pages covering the range, if resident.
  void EvictRange(uint64_t file, int64_t offset, int64_t len);

  // Evicts approximately `fraction` of all resident pages, chosen uniformly —
  // the noisy-neighbor memory contention / VM ballooning effect (§6, §7.1).
  // Pages are considered in LRU order (one Bernoulli draw per resident page,
  // as before).
  void EvictFraction(double fraction, Rng& rng);

  size_t resident_pages() const { return count_; }
  const PageCacheParams& params() const { return params_; }

 private:
  static constexpr uint32_t kNil = 0xFFFF'FFFFu;
  static constexpr size_t kInitialSlots = 1024;

  struct Slot {
    uint64_t key = 0;
    uint32_t prev = kNil;  // Towards LRU.
    uint32_t next = kNil;  // Towards MRU.
    bool used = false;
  };

  static uint64_t Key(uint64_t file, int64_t page) {
    return (file << 40) | static_cast<uint64_t>(page);
  }
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
  uint32_t Mask() const { return static_cast<uint32_t>(slots_.size() - 1); }
  uint32_t HashIndex(uint64_t key) const {
    return static_cast<uint32_t>(Mix(key)) & Mask();
  }

  uint32_t FindIndex(uint64_t key) const;
  void InsertOne(uint64_t key);
  void EraseIndex(uint32_t i);
  void MoveSlot(uint32_t from, uint32_t to);
  void UnlinkLru(uint32_t i);
  void LinkMru(uint32_t i);
  void PlaceNew(uint64_t key);  // Probe a free slot, fill it, link at MRU.
  void Grow();

  PageCacheParams params_;
  std::vector<Slot> slots_;  // Power-of-two size, capacity-sized on first insert.
  uint32_t head_ = kNil;     // LRU end.
  uint32_t tail_ = kNil;     // MRU end.
  size_t count_ = 0;
};

}  // namespace mitt::os

#endif  // MITTOS_OS_PAGE_CACHE_H_
