// MittSSD (§4.3): admission prediction for a host-managed (OpenChannel) SSD.
//
// Unlike the disk, the SSD has no single queue: every chip queues
// independently and channels add transfer delays. The predictor therefore
// keeps the next-available time of *every chip* (O(1) wait computation per
// sub-IO) plus per-channel outstanding-IO counts:
//
//   T_wait = max(0, T_chipNextFree - T_now) + channel_delay * #IOSameChannel
//
// A large IO is striped page-by-page across chips; "if any sub-IO violates
// the deadline, EBUSY is returned for the entire request; all sub-pages are
// not submitted."
//
// The latency constants come from an SsdProfile (vendor spec or the §4.3
// profiling: page read ~100 us, channel delay ~60 us, the per-block
// "11111121121122...2112" program-time pattern stored as a 512-item array,
// erase ~6 ms).
//
// Incremental aggregates: the strawman (single-queue) estimate is a running
// maximum of the chip next-free times (exact, since they only ever advance),
// and completion-side channel accounting is recomputed from the request's
// offset/size instead of a per-request hash-map entry — the request's
// ssd_tracked flag marks IOs that passed admission (device-internal GC IOs
// bypass it). Building with -DMITT_PREDICT_CHECK=ON keeps the old map in
// lockstep and aborts on divergence.

#ifndef MITTOS_OS_MITT_SSD_H_
#define MITTOS_OS_MITT_SSD_H_

#include <cstdint>
#include <vector>

#ifdef MITT_PREDICT_CHECK
#include <unordered_map>
#endif

#include "src/common/time.h"
#include "src/device/ssd_model.h"
#include "src/device/ssd_profile.h"
#include "src/os/predictor_common.h"
#include "src/sched/io_request.h"
#include "src/sched/sched_obs.h"
#include "src/sched/scheduler.h"
#include "src/sim/simulator.h"

namespace mitt::os {

struct MittSsdOptions {
  // Ablation (§7.6): model chip-level parallelism. When false, the predictor
  // treats the SSD as one FIFO queue (the "block-level calculation will be
  // inaccurate" strawman of §4.3).
  bool per_chip_tracking = true;
  // Ablation: use the profiled per-page program-time pattern; when false all
  // programs are assumed fast (the source of the "up to 6%" inaccuracy).
  bool use_program_pattern = true;
};

class MittSsdPredictor {
 public:
  MittSsdPredictor(sim::Simulator* sim, const device::SsdModel* ssd, device::SsdProfile profile,
                   const PredictorOptions& options, const MittSsdOptions& ssd_options);

  // Deadline check across all sub-pages; fills prediction metadata. Returns
  // true if the whole request must be rejected (accuracy mode: flags).
  bool ShouldReject(sched::IoRequest* req);

  // Registers an accepted request: advances the next-free time of every chip
  // it touches and the outstanding counts of every channel. Marks the
  // request ssd_tracked so OnCompletion knows to unwind the accounting.
  void OnAccepted(sched::IoRequest* req);

  void OnCompletion(sched::IoRequest* req);

  // Worst-case predicted wait across the request's sub-pages, for EBUSY-with-
  // wait-time extensions (§7.8.1).
  DurationNs PredictedWait(const sched::IoRequest& req) const;

  const PredictionStats& stats() const { return stats_; }

 private:
  DurationNs SubIoService(const sched::IoRequest& req, int64_t logical_page) const;

  sim::Simulator* sim_;
  const device::SsdModel* ssd_;  // Topology only (white-box device layout).
  device::SsdProfile profile_;
  PredictorOptions options_;
  MittSsdOptions ssd_options_;
  Rng error_rng_;
  PredictionStats stats_;

  std::vector<TimeNs> chip_next_free_;
  std::vector<int> channel_outstanding_;
  // Running max of chip_next_free_ (exact: entries only ever advance), so
  // the strawman estimate needs no chip walk.
  TimeNs busiest_next_free_ = 0;

#ifdef MITT_PREDICT_CHECK
  // Pre-overhaul per-request channel lists, kept as a recompute oracle.
  std::unordered_map<uint64_t, std::vector<int>> check_channels_of_;
#endif
};

// The SSD sits under a noop-style block layer ("the use of noop is
// suggested" for SSDs); this layer applies the MittSSD admission check and
// forwards everything else straight to the device.
class SsdBlockLayer : public sched::IoScheduler {
 public:
  SsdBlockLayer(sim::Simulator* sim, device::SsdModel* ssd, MittSsdPredictor* predictor);

  void Submit(sched::IoRequest* req) override;
  size_t PendingCount() const override { return 0; }
  const sched::SchedObs* observer() const override { return &obs_; }

 private:
  void OnDeviceCompletion(sched::IoRequest* req);

  sim::Simulator* sim_;
  device::SsdModel* ssd_;
  MittSsdPredictor* predictor_;
  sched::SchedObs obs_;
};

}  // namespace mitt::os

#endif  // MITTOS_OS_MITT_SSD_H_
