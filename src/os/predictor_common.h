// Types shared by the Mitt* admission predictors: options (including the
// §7.7 error-injection knobs and the §7.6 accuracy-accounting mode) and the
// false-positive/false-negative statistics of Figure 9.

#ifndef MITTOS_OS_PREDICTOR_COMMON_H_
#define MITTOS_OS_PREDICTOR_COMMON_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sched/io_request.h"

namespace mitt::os {

struct PredictorOptions {
  // T_hop: one failover hop; an IO is rejected when the predicted wait
  // exceeds deadline + failover_hop (§4.1).
  DurationNs failover_hop = Micros(300);

  // Continuous calibration of the next-free-time via the predicted-vs-actual
  // diff attached to the IO descriptor (§4.1). Disabling this is the
  // "without our precision improvements" ablation (§7.6).
  bool calibrate = true;

  // §7.6 accuracy accounting: never return EBUSY; instead set
  // IoRequest::ebusy_flagged and let the IO run so the actual completion time
  // can be compared against the deadline.
  bool accuracy_mode = false;

  // §7.7 error injection. With probability false_negative_rate, an IO the
  // predictor wants to reject is let through; with probability
  // false_positive_rate, an IO that meets its deadline is rejected anyway.
  double false_negative_rate = 0.0;
  double false_positive_rate = 0.0;
  uint64_t error_seed = 1234;
};

// Figure 9's inaccuracy accounting, valid in accuracy_mode: "false positives
// (EBUSY is returned, but T_processActual <= T_deadline) and false negatives
// (EBUSY is not returned, but T_processActual > T_deadline)."
struct PredictionStats {
  uint64_t total = 0;
  uint64_t flagged = 0;  // IOs the predictor would have rejected.
  uint64_t false_positives = 0;
  uint64_t false_negatives = 0;
  // Sum over inaccurate IOs of |actual - deadline|, to report how far off
  // the mispredictions are ("all the diffs are <3ms / <1ms on average").
  double wrong_diff_sum_ns = 0;

  double InaccuracyPercent() const {
    if (total == 0) {
      return 0.0;
    }
    return 100.0 * static_cast<double>(false_positives + false_negatives) /
           static_cast<double>(total);
  }
  double MeanWrongDiffNs() const {
    const uint64_t wrong = false_positives + false_negatives;
    return wrong == 0 ? 0.0 : wrong_diff_sum_ns / static_cast<double>(wrong);
  }

  // Records the outcome of one completed deadline-carrying IO.
  void Account(const sched::IoRequest& req, DurationNs actual_latency) {
    ++total;
    const bool violated = actual_latency > req.deadline;
    if (req.ebusy_flagged) {
      ++flagged;
      if (!violated) {
        ++false_positives;
        wrong_diff_sum_ns += static_cast<double>(req.deadline - actual_latency);
      }
    } else if (violated) {
      ++false_negatives;
      wrong_diff_sum_ns += static_cast<double>(actual_latency - req.deadline);
    }
  }
};

}  // namespace mitt::os

#endif  // MITTOS_OS_PREDICTOR_COMMON_H_
