#include "src/os/mitt_noop.h"

#include <algorithm>

namespace mitt::os {

MittNoopPredictor::MittNoopPredictor(sim::Simulator* sim, device::DiskProfile profile,
                                     const PredictorOptions& options)
    : sim_(sim), profile_(std::move(profile)), options_(options), error_rng_(options.error_seed) {}

DurationNs MittNoopPredictor::PredictedWaitNow() const {
  return std::max<DurationNs>(0, next_free_ - sim_->Now());
}

bool MittNoopPredictor::ShouldReject(sched::IoRequest* req) {
  const TimeNs now = sim_->Now();
  if (next_free_ < now) {
    // Disk went idle; re-anchor the estimate (§4.1: "T_nextFree will
    // automatically be calibrated when the disk is idle").
    next_free_ = now;
  }
  const DurationNs wait = next_free_ - now;
  req->predicted_wait = wait;
  req->predicted_process = profile_.PredictServiceTime(tail_offset_, *req);

  if (!req->has_deadline()) {
    return false;
  }

  bool reject = wait > req->deadline + options_.failover_hop;
  // §7.7 error injection.
  if (reject && options_.false_negative_rate > 0 &&
      error_rng_.Bernoulli(options_.false_negative_rate)) {
    reject = false;
  } else if (!reject && options_.false_positive_rate > 0 &&
             error_rng_.Bernoulli(options_.false_positive_rate)) {
    reject = true;
  }

  if (reject && options_.accuracy_mode) {
    req->ebusy_flagged = true;
    return false;
  }
  return reject;
}

void MittNoopPredictor::OnAccepted(const sched::IoRequest& req) {
  const TimeNs now = sim_->Now();
  if (next_free_ < now) {
    next_free_ = now;
  }
  next_free_ += req.predicted_process;
  tail_offset_ = req.offset + req.size;
}

void MittNoopPredictor::OnCompletion(const sched::IoRequest& req, DurationNs actual_process) {
  // NVRAM-acked writes complete in microseconds while their destage runs
  // later; calibrating on the ack would cancel the pre-charged destage cost.
  if (options_.calibrate && req.op != sched::IoOp::kWrite) {
    // §4.1: T_diff = T_processActual - T_processNewIO; T_nextFree += T_diff.
    // The diff is bounded: a single completion delayed by background destage
    // traffic must not swing the whole estimate.
    const DurationNs diff =
        std::clamp<DurationNs>(actual_process - req.predicted_process, -Millis(5), Millis(5));
    next_free_ += diff;
  }
  if (options_.accuracy_mode && req.has_deadline()) {
    stats_.Account(req, sim_->Now() - req.submit_time);
  }
}

}  // namespace mitt::os
