// The MittOS syscall surface for one machine: a page cache on top of an IO
// scheduler on top of a disk or SSD, with the Mitt* admission predictors
// wired in (§3.2, §4).
//
// The interface mirrors the paper's additions to Linux:
//   * Read(..., deadline)  -> data later, or EBUSY (possibly immediately);
//   * AddrCheck(..., deadline) -> synchronous residency probe for mmap-ed
//     regions (82 ns), with background swap-in after an EBUSY;
//   * Write(...)           -> buffered by default (user-facing write
//     latencies are not affected by drive contention, §7.8.6).
//
// Vanilla-Linux behaviour (the "Base" lines in every figure) is the same Os
// with `mitt_enabled = false`: deadlines are ignored, nothing is rejected.

#ifndef MITTOS_OS_OS_H_
#define MITTOS_OS_OS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/device/disk_model.h"
#include "src/device/disk_profile.h"
#include "src/device/ssd_model.h"
#include "src/device/ssd_profile.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/os/mitt_cfq.h"
#include "src/os/mitt_noop.h"
#include "src/os/mitt_ssd.h"
#include "src/os/page_cache.h"
#include "src/sched/cfq_scheduler.h"
#include "src/sched/io_pool.h"
#include "src/sched/noop_scheduler.h"
#include "src/sched/scheduler.h"
#include "src/sim/simulator.h"

namespace mitt::os {

enum class BackendKind {
  kDiskNoop,  // noop scheduler + disk (MittNoop, §4.1)
  kDiskCfq,   // CFQ scheduler + disk (MittCFQ, §4.2)
  kSsd,       // noop-style block layer + OpenChannel SSD (MittSSD, §4.3)
};

struct OsOptions {
  BackendKind backend = BackendKind::kDiskCfq;
  bool mitt_enabled = true;

  device::DiskParams disk;
  device::SsdParams ssd;
  sched::CfqParams cfq;
  PageCacheParams cache;

  PredictorOptions predictor;
  MittCfqOptions mitt_cfq;
  MittSsdOptions mitt_ssd;

  // Syscall-path costs. Making a system call and receiving EBUSY takes <5 us
  // (§3.3); AddrCheck costs 82 ns (§4.4); a buffer-cache hit is tens of us
  // end-to-end.
  DurationNs syscall_overhead = Micros(2);
  DurationNs hit_latency = Micros(15);
  DurationNs mmap_access_cost = kMicrosecond;
  DurationNs addrcheck_cost = 82;

  // Background flush of buffered writes.
  DurationNs flush_interval = Millis(500);

  // Node label stamped on spans and metrics this machine emits (src/obs/);
  // -1 for single-machine setups.
  int node_label = -1;

  uint64_t seed = 1;
};

class Os {
 public:
  Os(sim::Simulator* sim, const OsOptions& options);
  ~Os();

  Os(const Os&) = delete;
  Os& operator=(const Os&) = delete;

  // --- Files (contiguous regions of the backing device) ---
  uint64_t CreateFile(int64_t size_bytes);
  int64_t FileBase(uint64_t file) const;

  // --- Read syscall with SLO (§3.2) ---
  struct ReadArgs {
    uint64_t file = 0;
    int64_t offset = 0;
    int64_t size = 4096;
    DurationNs deadline = sched::kNoDeadline;
    int32_t pid = 0;
    sched::IoClass io_class = sched::IoClass::kBestEffort;
    int8_t priority = 4;
    bool bypass_cache = false;  // O_DIRECT-style; used by noise tenants.
    obs::TraceContext trace;    // Originating client request (id 0: untraced).
  };
  void Read(const ReadArgs& args, std::function<void(Status)> done);

  // §7.8.1 / §8.1 extension: like Read, but EBUSY responses carry the
  // predictor's wait estimate, so the application can route to the
  // least-busy replica when every replica rejects ("extending the MittOS
  // interface to return the expected wait time, with which MongoDB can
  // choose the shortest wait time when all replicas return EBUSY").
  // Move-only; captures up to 48 bytes without allocating (InlineFunction).
  using RichReadFn = sched::IoDoneFn;
  void ReadWithWaitHint(const ReadArgs& args, RichReadFn done);

  // --- Write syscall: buffered by default, sync hits the device ---
  struct WriteArgs {
    uint64_t file = 0;
    int64_t offset = 0;
    int64_t size = 4096;
    int32_t pid = 0;
    sched::IoClass io_class = sched::IoClass::kBestEffort;
    int8_t priority = 4;
    bool sync = false;
  };
  void Write(const WriteArgs& args, std::function<void(Status)> done);

  // --- AddrCheck syscall (§4.4): synchronous page-table probe ---
  struct AddrCheckResult {
    Status status;
    DurationNs cost;  // Simulated syscall cost the caller must account for.
  };
  AddrCheckResult AddrCheck(uint64_t file, int64_t offset, int64_t size, DurationNs deadline,
                            const obs::TraceContext& trace = {});

  // mmap-ed access without AddrCheck: page faults block (vanilla MongoDB).
  void MmapAccess(uint64_t file, int64_t offset, int64_t size, int32_t pid,
                  std::function<void(Status)> done);

  // --- Setup / noise helpers ---
  void Prefault(uint64_t file, int64_t offset, int64_t size);  // Warm the cache.
  void DropCachedFraction(double fraction);                    // Memory contention.

  PageCache& cache() { return *cache_; }
  sched::IoScheduler& scheduler() { return *scheduler_; }
  device::DiskModel* disk() { return disk_.get(); }
  device::SsdModel* ssd() { return ssd_.get(); }
  MittNoopPredictor* mitt_noop() { return mitt_noop_.get(); }
  MittCfqPredictor* mitt_cfq() { return mitt_cfq_.get(); }
  MittSsdPredictor* mitt_ssd() { return mitt_ssd_.get(); }
  const device::DiskProfile& disk_profile() const { return disk_profile_; }
  const device::SsdProfile& ssd_profile() const { return ssd_profile_; }
  const OsOptions& options() const { return options_; }

  // Smallest possible device IO latency; an SLO below this on a cache miss is
  // rejected immediately (§4.4).
  DurationNs MinDeviceLatency() const;

 private:
  void SubmitDeviceRead(uint64_t file, int64_t offset, int64_t size, DurationNs deadline,
                        int32_t pid, sched::IoClass io_class, int8_t priority, bool fill_cache,
                        obs::TraceContext trace, RichReadFn done);
  void SubmitDeviceWrite(const WriteArgs& args, std::function<void(Status)> done);
  // Scheduler completion for a device read/write: page-cache fill, syscall
  // accounting, and the return-path delivery event. The descriptor stays
  // alive (carrying the caller's `done`) until that event fires.
  void ReadComplete(sched::IoRequest* req, Status status);
  void WriteComplete(sched::IoRequest* req, Status status);

  // Records the syscall-level span/counters for one finished read attempt.
  // `end` is the simulated instant the result reaches the caller; it may lie
  // (deterministically) in the future of the recording instant.
  void TraceReadDone(const obs::TraceContext& trace, TimeNs begin, TimeNs end, DurationNs deadline,
                     Status status);
  void FlushTick();
  sched::IoRequest* NewRequest();

  sim::Simulator* sim_;
  OsOptions options_;
  Rng rng_;

  // Cached obs metric handles (null when no registry is attached to the
  // simulator at construction time; map references are stable).
  obs::Counter* ebusy_total_ = nullptr;
  obs::Counter* cache_hit_total_ = nullptr;
  obs::Counter* cache_miss_total_ = nullptr;
  obs::Counter* deadline_hit_total_ = nullptr;
  obs::Counter* deadline_miss_total_ = nullptr;

  std::unique_ptr<device::DiskModel> disk_;
  std::unique_ptr<device::SsdModel> ssd_;
  device::DiskProfile disk_profile_;
  device::SsdProfile ssd_profile_;
  std::unique_ptr<MittNoopPredictor> mitt_noop_;
  std::unique_ptr<MittCfqPredictor> mitt_cfq_;
  std::unique_ptr<MittSsdPredictor> mitt_ssd_;
  std::unique_ptr<sched::IoScheduler> scheduler_;
  std::unique_ptr<PageCache> cache_;

  // File ids are handed out sequentially from 1; index = file id.
  // file_bases_[0] is a sentinel for unknown handles.
  std::vector<int64_t> file_bases_{0};
  int64_t next_alloc_ = 0;
  uint64_t next_io_ = 1;

  // Slot arena for every in-flight IO descriptor this Os owns (device reads
  // and writes, plus hit/floor-path descriptors that only carry `done` to the
  // delivery event).
  sched::IoRequestPool pool_;

  struct DirtyRange {
    uint64_t file;
    int64_t offset;
    int64_t size;
  };
  std::vector<DirtyRange> dirty_;
  std::vector<DirtyRange> flush_batch_;  // Reused swap target for FlushTick.
  sim::EventId flush_event_ = sim::kInvalidEventId;
};

}  // namespace mitt::os

#endif  // MITTOS_OS_OS_H_
