#include "src/os/os.h"

#include <algorithm>
#include <utility>

namespace mitt::os {
namespace {

constexpr int64_t kAllocAlignment = 64LL * 1024 * 1024;

int64_t AlignUp(int64_t v, int64_t a) { return (v + a - 1) / a * a; }

}  // namespace

Os::Os(sim::Simulator* sim, const OsOptions& options)
    : sim_(sim), options_(options), rng_(options.seed) {
  switch (options_.backend) {
    case BackendKind::kDiskNoop:
    case BackendKind::kDiskCfq: {
      disk_ = std::make_unique<device::DiskModel>(sim_, options_.disk, rng_.Next());
      // Profile an identical twin device on a scratch simulator so the boot
      // profile does not perturb this machine's state (the paper's profiling
      // is a one-time offline pass).
      if (options_.mitt_enabled) {
        sim::Simulator scratch;
        device::DiskModel twin(&scratch, options_.disk, options_.seed ^ 0x5eedf00d);
        disk_profile_ = ProfileDisk(&scratch, &twin);
      }
      if (options_.backend == BackendKind::kDiskNoop) {
        if (options_.mitt_enabled) {
          mitt_noop_ =
              std::make_unique<MittNoopPredictor>(sim_, disk_profile_, options_.predictor);
        }
        scheduler_ = std::make_unique<sched::NoopScheduler>(sim_, disk_.get(), mitt_noop_.get());
      } else {
        if (options_.mitt_enabled) {
          mitt_cfq_ = std::make_unique<MittCfqPredictor>(sim_, disk_profile_, options_.predictor,
                                                         options_.mitt_cfq);
        }
        scheduler_ = std::make_unique<sched::CfqScheduler>(sim_, disk_.get(), mitt_cfq_.get(),
                                                           options_.cfq);
      }
      break;
    }
    case BackendKind::kSsd: {
      ssd_ = std::make_unique<device::SsdModel>(sim_, options_.ssd, rng_.Next());
      if (options_.mitt_enabled) {
        sim::Simulator scratch;
        device::SsdModel twin(&scratch, options_.ssd, options_.seed ^ 0x5eedf00d);
        ssd_profile_ = ProfileSsd(&scratch, &twin);
        mitt_ssd_ = std::make_unique<MittSsdPredictor>(sim_, ssd_.get(), ssd_profile_,
                                                       options_.predictor, options_.mitt_ssd);
      }
      scheduler_ = std::make_unique<SsdBlockLayer>(sim_, ssd_.get(), mitt_ssd_.get());
      break;
    }
  }
  cache_ = std::make_unique<PageCache>(options_.cache);
  flush_event_ = sim_->ScheduleDaemon(options_.flush_interval, [this] { FlushTick(); });

  if (obs::MetricsRegistry* mx = sim_->metrics()) {
    const int node = options_.node_label;
    ebusy_total_ = &mx->counter("ebusy_total", node);
    cache_hit_total_ = &mx->counter("cache_hit_total", node);
    cache_miss_total_ = &mx->counter("cache_miss_total", node);
    deadline_hit_total_ = &mx->counter("deadline_hit_total", node);
    deadline_miss_total_ = &mx->counter("deadline_miss_total", node);
  }
}

Os::~Os() { sim_->Cancel(flush_event_); }

uint64_t Os::CreateFile(int64_t size_bytes) {
  const uint64_t id = file_bases_.size();
  file_bases_.push_back(next_alloc_);
  next_alloc_ += AlignUp(size_bytes, kAllocAlignment);
  return id;
}

int64_t Os::FileBase(uint64_t file) const {
  return file < file_bases_.size() ? file_bases_[file] : 0;
}

DurationNs Os::MinDeviceLatency() const {
  if (ssd_ != nullptr) {
    return options_.ssd.chip_read + options_.ssd.channel_xfer;
  }
  // Fastest possible disk IO: near-sequential settle plus transfer.
  return options_.disk.seek_base / 10 + options_.disk.transfer_per_kb * 4;
}

sched::IoRequest* Os::NewRequest() {
  sched::IoRequest* req = pool_.Acquire();
  req->id = next_io_++;
  return req;
}

void Os::Read(const ReadArgs& args, std::function<void(Status)> done) {
  if (done) {
    ReadWithWaitHint(args, [done = std::move(done)](Status s, DurationNs) { done(s); });
  } else {
    ReadWithWaitHint(args, nullptr);
  }
}

void Os::TraceReadDone(const obs::TraceContext& trace, TimeNs begin, TimeNs end,
                       DurationNs deadline, Status status) {
  if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled() && trace.traced()) {
    tr->RecordSpan(obs::SpanKind::kSyscall, trace, begin, end);
    if (status.busy()) {
      tr->RecordInstant(obs::SpanKind::kEbusyReject, trace, end);
    }
  }
  if (status.busy()) {
    if (ebusy_total_ != nullptr) {
      ebusy_total_->Add();
    }
  } else if (deadline != sched::kNoDeadline) {
    obs::Counter* c = (end - begin) <= deadline ? deadline_hit_total_ : deadline_miss_total_;
    if (c != nullptr) {
      c->Add();
    }
  }
}

void Os::ReadWithWaitHint(const ReadArgs& orig_args, RichReadFn done) {
  ReadArgs args = orig_args;
  // Defensive underflow clamp: a negative deadline that is not exactly
  // kNoDeadline is client hop arithmetic gone wrong ("deadline - elapsed"
  // past zero). It must read as "no time left", not alias into "no SLO".
  if (args.deadline < 0 && args.deadline != sched::kNoDeadline) {
    args.deadline = 0;
  }
  obs::TraceContext trace = args.trace;
  trace.node = options_.node_label;
  const TimeNs t0 = sim_->Now();

  if (!args.bypass_cache) {
    if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled() && trace.traced()) {
      tr->RecordInstant(obs::SpanKind::kCacheLookup, trace, t0);
    }
    if (cache_->Resident(args.file, args.offset, args.size)) {
      if (cache_hit_total_ != nullptr) {
        cache_hit_total_->Add();
      }
      cache_->Touch(args.file, args.offset, args.size);
      TraceReadDone(trace, t0, t0 + options_.hit_latency, args.deadline, Status::Ok());
      // `done` (64 bytes) would overflow the event's inline capture, so a
      // pooled descriptor carries it to the delivery event. The null-`done`
      // arm still schedules an (empty) event: event sequence numbers feed
      // tie-breaking, so the event COUNT must not depend on the callback.
      if (done) {
        sched::IoRequest* req = pool_.Acquire();
        req->done = std::move(done);
        sim_->Schedule(options_.hit_latency, [this, req] {
          auto cb = std::move(req->done);
          pool_.Release(req);
          cb(Status::Ok(), 0);
        });
      } else {
        sim_->Schedule(options_.hit_latency, [] {});
      }
      return;
    }
    if (cache_miss_total_ != nullptr) {
      cache_miss_total_->Add();
    }
  }

  const bool slo_active = options_.mitt_enabled && args.deadline != sched::kNoDeadline;
  if (slo_active && args.deadline < MinDeviceLatency()) {
    // §4.4: the user expected an in-memory read; the data is not resident and
    // no device IO can make the deadline. Reject without queueing anything.
    // The wait hint is the device floor: the soonest any retry here could
    // complete.
    const DurationNs hint = MinDeviceLatency();
    TraceReadDone(trace, t0, t0 + options_.syscall_overhead, args.deadline, Status::Ebusy());
    if (done) {
      sched::IoRequest* req = pool_.Acquire();
      req->done = std::move(done);
      req->predicted_wait = hint;
      sim_->Schedule(options_.syscall_overhead, [this, req] {
        auto cb = std::move(req->done);
        const DurationNs wait_hint = req->predicted_wait;
        pool_.Release(req);
        cb(Status::Ebusy(), wait_hint);
      });
    } else {
      sim_->Schedule(options_.syscall_overhead, [] {});
    }
    return;
  }

  SubmitDeviceRead(args.file, args.offset, args.size,
                   options_.mitt_enabled ? args.deadline : sched::kNoDeadline, args.pid,
                   args.io_class, args.priority, !args.bypass_cache, trace, std::move(done));
}

void Os::SubmitDeviceRead(uint64_t file, int64_t offset, int64_t size, DurationNs deadline,
                          int32_t pid, sched::IoClass io_class, int8_t priority, bool fill_cache,
                          obs::TraceContext trace, RichReadFn done) {
  sched::IoRequest* req = NewRequest();
  req->op = sched::IoOp::kRead;
  req->file = file;
  req->file_offset = offset;
  req->fill_cache = fill_cache;
  req->offset = FileBase(file) + offset;
  req->size = size;
  req->pid = pid;
  req->io_class = io_class;
  req->priority = priority;
  req->deadline = deadline;
  trace.node = options_.node_label;
  req->trace = trace;
  req->done = std::move(done);
  req->on_complete = [this](const sched::IoRequest& r, Status status) {
    ReadComplete(const_cast<sched::IoRequest*>(&r), status);
  };
  scheduler_->Submit(req);
}

void Os::ReadComplete(sched::IoRequest* req, Status status) {
  if (status.ok() && req->fill_cache) {
    cache_->Insert(req->file, req->file_offset, req->size);
  }
  const DurationNs return_cost =
      status.busy() ? options_.syscall_overhead : options_.syscall_overhead / 2;
  if (req->trace.traced() || req->has_deadline()) {
    // submit_time == the syscall entry instant: submission into the
    // scheduler is synchronous.
    TraceReadDone(req->trace, req->submit_time, sim_->Now() + return_cost, req->deadline, status);
  }
  if (req->done) {
    // The descriptor stays alive to carry `done` and the wait hint to the
    // delivery event; it is released there, before the callback runs, so the
    // callback can issue a new IO that reuses the slot.
    sim_->Schedule(return_cost, [this, req, status] {
      auto cb = std::move(req->done);
      const DurationNs hint = req->predicted_wait;
      pool_.Release(req);
      cb(status, hint);
    });
  } else {
    pool_.Release(req);
  }
}

void Os::Write(const WriteArgs& args, std::function<void(Status)> done) {
  if (args.sync) {
    SubmitDeviceWrite(args, std::move(done));
    return;
  }
  // Buffered write: dirty the cache, acknowledge immediately, flush later
  // (§7.8.6: "writes are first buffered to memory and flushed in the
  // background, thus user-facing write latencies are not directly affected by
  // drive-level contention").
  cache_->Insert(args.file, args.offset, args.size);
  dirty_.push_back(DirtyRange{args.file, args.offset, args.size});
  sim_->Schedule(options_.hit_latency, [done = std::move(done)] {
    if (done) {
      done(Status::Ok());
    }
  });
}

void Os::SubmitDeviceWrite(const WriteArgs& args, std::function<void(Status)> done) {
  sched::IoRequest* req = NewRequest();
  req->op = sched::IoOp::kWrite;
  req->offset = FileBase(args.file) + args.offset;
  req->size = args.size;
  req->pid = args.pid;
  req->io_class = args.io_class;
  req->priority = args.priority;
  req->trace.node = options_.node_label;  // Untraced, but labelled for metrics.
  if (done) {
    req->done = [cb = std::move(done)](Status s, DurationNs) { cb(s); };
  }
  req->on_complete = [this](const sched::IoRequest& r, Status status) {
    WriteComplete(const_cast<sched::IoRequest*>(&r), status);
  };
  scheduler_->Submit(req);
}

void Os::WriteComplete(sched::IoRequest* req, Status status) {
  if (req->done) {
    sim_->Schedule(options_.syscall_overhead / 2, [this, req, status] {
      auto cb = std::move(req->done);
      pool_.Release(req);
      cb(status, 0);
    });
  } else {
    pool_.Release(req);
  }
}

void Os::FlushTick() {
  // Flush dirty ranges accumulated since the last tick as background
  // (kernel) writes with no deadline. The batch vector is a reused member:
  // swapping keeps both buffers' capacity across ticks. Without the reserve,
  // the capacities ping-pong between the two buffers and the smaller one
  // regrows every other tick.
  flush_batch_.clear();
  flush_batch_.swap(dirty_);
  if (dirty_.capacity() < flush_batch_.capacity()) {
    dirty_.reserve(flush_batch_.capacity());
  }
  for (const DirtyRange& d : flush_batch_) {
    WriteArgs args;
    args.file = d.file;
    args.offset = d.offset;
    args.size = d.size;
    args.pid = 0;  // kswapd/flusher.
    args.sync = true;
    SubmitDeviceWrite(args, nullptr);
  }
  flush_event_ = sim_->ScheduleDaemon(options_.flush_interval, [this] { FlushTick(); });
}

Os::AddrCheckResult Os::AddrCheck(uint64_t file, int64_t offset, int64_t size, DurationNs deadline,
                                  const obs::TraceContext& trace) {
  const DurationNs cost = options_.addrcheck_cost;
  obs::TraceContext ctx = trace;
  ctx.node = options_.node_label;
  const TimeNs t0 = sim_->Now();
  obs::Tracer* tr = sim_->tracer();
  const bool record = tr != nullptr && tr->enabled() && ctx.traced();
  if (record) {
    tr->RecordInstant(obs::SpanKind::kCacheLookup, ctx, t0);
    tr->RecordSpan(obs::SpanKind::kSyscall, ctx, t0, t0 + cost);
  }
  if (cache_->Resident(file, offset, size)) {
    if (cache_hit_total_ != nullptr) {
      cache_hit_total_->Add();
    }
    return {Status::Ok(), cost};
  }
  if (cache_miss_total_ != nullptr) {
    cache_miss_total_->Add();
  }
  if (!options_.mitt_enabled) {
    return {Status::Ok(), cost};  // Vanilla kernel: no such syscall semantics.
  }
  // Not resident: predict whether a device fill could still meet the
  // deadline; propagate to the IO layer's estimate (§4.4).
  DurationNs predicted = MinDeviceLatency();
  if (mitt_cfq_ != nullptr) {
    predicted += mitt_cfq_->PredictedWaitNow(0, sched::IoClass::kBestEffort);
  } else if (mitt_noop_ != nullptr) {
    predicted += mitt_noop_->PredictedWaitNow();
  }
  if (deadline == sched::kNoDeadline || deadline >= predicted) {
    return {Status::Ok(), cost};
  }
  // EBUSY — but for fairness keep swapping the data in, in the background,
  // so this tenant's pages still get populated (§4.4).
  if (record) {
    tr->RecordInstant(obs::SpanKind::kEbusyReject, ctx, t0 + cost);
  }
  if (ebusy_total_ != nullptr) {
    ebusy_total_->Add();
  }
  SubmitDeviceRead(file, offset, size, sched::kNoDeadline, 0, sched::IoClass::kBestEffort, 7,
                   /*fill_cache=*/true, /*trace=*/{}, nullptr);
  return {Status::Ebusy(), cost};
}

void Os::MmapAccess(uint64_t file, int64_t offset, int64_t size, int32_t pid,
                    std::function<void(Status)> done) {
  if (cache_->Resident(file, offset, size)) {
    cache_->Touch(file, offset, size);
    sim_->Schedule(options_.mmap_access_cost, [done = std::move(done)] { done(Status::Ok()); });
    return;
  }
  // Page fault: a blocking device read with no deadline (no syscall is
  // involved, so the OS cannot signal EBUSY, §4.4).
  SubmitDeviceRead(file, offset, size, sched::kNoDeadline, pid, sched::IoClass::kBestEffort, 4,
                   /*fill_cache=*/true, /*trace=*/{},
                   [done = std::move(done)](Status s, DurationNs) { done(s); });
}

void Os::Prefault(uint64_t file, int64_t offset, int64_t size) {
  cache_->Insert(file, offset, size);
}

void Os::DropCachedFraction(double fraction) { cache_->EvictFraction(fraction, rng_); }

}  // namespace mitt::os
