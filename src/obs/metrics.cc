#include "src/obs/metrics.h"

#include "src/common/table.h"

namespace mitt::obs {

Counter& MetricsRegistry::counter(std::string_view name, int node) {
  return counters_[Key{std::string(name), node}];
}

Gauge& MetricsRegistry::gauge(std::string_view name, int node) {
  return gauges_[Key{std::string(name), node}];
}

LatencyRecorder& MetricsRegistry::histogram(std::string_view name, int node) {
  return histograms_[Key{std::string(name), node}];
}

uint64_t MetricsRegistry::CounterValue(std::string_view name, int node) const {
  const auto it = counters_.find(Key{std::string(name), node});
  return it == counters_.end() ? 0 : it->second.value();
}

uint64_t MetricsRegistry::CounterTotal(std::string_view name) const {
  uint64_t total = 0;
  for (const auto& [key, counter] : counters_) {
    if (key.name == name) {
      total += counter.value();
    }
  }
  return total;
}

double MetricsRegistry::GaugeValue(std::string_view name, int node) const {
  const auto it = gauges_.find(Key{std::string(name), node});
  return it == gauges_.end() ? 0.0 : it->second.value();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [key, src] : other.counters_) {
    counters_[key].Add(src.value());
  }
  for (const auto& [key, src] : other.gauges_) {
    gauges_[key].Add(src.value());
  }
  for (const auto& [key, src] : other.histograms_) {
    histograms_[key].MergeFrom(src);
  }
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void PrintMetricsTable(const MetricsRegistry& metrics) {
  Table table({"metric", "node", "value"});
  std::string prev_name;
  uint64_t run_total = 0;
  int run_rows = 0;
  auto flush_total = [&] {
    if (run_rows > 1) {
      table.AddRow({prev_name, "all", std::to_string(run_total)});
    }
    run_total = 0;
    run_rows = 0;
  };
  for (const auto& [key, counter] : metrics.counters()) {
    if (key.name != prev_name) {
      flush_total();
      prev_name = key.name;
    }
    table.AddRow({key.name, key.node < 0 ? "-" : std::to_string(key.node),
                  std::to_string(counter.value())});
    run_total += counter.value();
    ++run_rows;
  }
  flush_total();
  for (const auto& [key, gauge] : metrics.gauges()) {
    table.AddRow({key.name, key.node < 0 ? "-" : std::to_string(key.node),
                  Table::Num(gauge.value(), 2)});
  }
  table.Print();
}

}  // namespace mitt::obs
