#include "src/obs/trace.h"

#include <algorithm>

namespace mitt::obs {

std::string_view SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSyscall:
      return "syscall";
    case SpanKind::kCacheLookup:
      return "cache_lookup";
    case SpanKind::kPredict:
      return "predict";
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kDeviceService:
      return "device_service";
    case SpanKind::kEbusyReject:
      return "ebusy_reject";
    case SpanKind::kFailover:
      return "failover";
    case SpanKind::kFaultActive:
      return "fault_active";
    case SpanKind::kBreakerOpen:
      return "resilience.breaker_open";
    case SpanKind::kBreakerHalfOpen:
      return "resilience.breaker_half_open";
    case SpanKind::kBreakerClose:
      return "resilience.breaker_close";
    case SpanKind::kDegradedGet:
      return "resilience.degraded_get";
    case SpanKind::kShed:
      return "resilience.shed";
    case SpanKind::kBackoff:
      return "resilience.backoff";
  }
  return "?";
}

Tracer::Tracer(size_t capacity) { ring_.resize(capacity == 0 ? 1 : capacity); }

void Tracer::RecordSpan(SpanKind kind, const TraceContext& ctx, TimeNs begin, TimeNs end) {
  if (!enabled_) {
    return;
  }
  SpanRecord& slot = ring_[head_];
  slot.request_id = ctx.id;
  slot.begin = begin;
  slot.end = end;
  slot.node = ctx.node;
  slot.kind = kind;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) {
    ++size_;
  }
  ++recorded_;
}

std::vector<SpanRecord> Tracer::OrderedSpans() const {
  std::vector<SpanRecord> out;
  out.reserve(size_);
  // Oldest record sits at head_ once the ring has wrapped, at 0 before.
  const size_t start = size_ == ring_.size() ? head_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::Clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
}

std::vector<SpanRecord> MergeShardSpans(const std::vector<const Tracer*>& shard_tracers) {
  std::vector<SpanRecord> merged;
  size_t total = 0;
  for (const Tracer* tracer : shard_tracers) {
    total += tracer->size();
  }
  merged.reserve(total);
  for (const Tracer* tracer : shard_tracers) {
    const std::vector<SpanRecord> spans = tracer->OrderedSpans();
    merged.insert(merged.end(), spans.begin(), spans.end());
  }
  std::stable_sort(merged.begin(), merged.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.begin != b.begin) {
      return a.begin < b.begin;
    }
    return a.end < b.end;
  });
  return merged;
}

}  // namespace mitt::obs
