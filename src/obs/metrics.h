// Named counters, gauges, and histograms with node labels.
//
// Experiments and benches read these instead of threading ad-hoc local
// counters through every layer: the OS increments `ebusy_total`,
// `cache_hit_total`, `deadline_miss_total`; the schedulers keep
// `predictor_accept_total`/`predictor_reject_total` and the `queue_depth`
// gauge. A metric is identified by (name, node); node -1 means "no node
// label" (client-side or single-machine setups).
//
// Determinism: metrics live in std::map keyed by (name, node), so iteration
// order — and therefore every printed table — is independent of insertion
// order. Each trial owns its own registry (attached to its Simulator), so
// parallel trial runs stay bit-identical.
//
// Cost: lookup is a map probe; recording through a cached Counter*/Gauge* is
// one add. Instrumented layers resolve their metric handles once (lazily, on
// first use) and record through the cached pointers — std::map node
// addresses are stable. With MITT_OBS_DISABLED, Simulator::metrics() is
// constant null and every site folds away.

#ifndef MITTOS_OBS_METRICS_H_
#define MITTOS_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/latency_recorder.h"
#include "src/obs/gate.h"

namespace mitt::obs {

class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  struct Key {
    std::string name;
    int node = -1;
    auto operator<=>(const Key&) const = default;
  };

  // Find-or-create. References are stable for the registry's lifetime.
  Counter& counter(std::string_view name, int node = -1);
  Gauge& gauge(std::string_view name, int node = -1);
  LatencyRecorder& histogram(std::string_view name, int node = -1);

  // Read-side lookups; missing metrics read as zero/empty.
  uint64_t CounterValue(std::string_view name, int node = -1) const;
  uint64_t CounterTotal(std::string_view name) const;  // Summed over nodes.
  double GaugeValue(std::string_view name, int node = -1) const;

  const std::map<Key, Counter>& counters() const { return counters_; }
  const std::map<Key, Gauge>& gauges() const { return gauges_; }
  const std::map<Key, LatencyRecorder>& histograms() const { return histograms_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Folds `other` into this registry: counters and gauges add, histograms
  // append samples. Sharded harvests merge per-shard registries in shard
  // order; map keying keeps the result independent of merge interleaving.
  void MergeFrom(const MetricsRegistry& other);

  void Clear();

 private:
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, LatencyRecorder> histograms_;
};

// Prints every counter and gauge as a (metric, node, value) table, one row
// per labeled instance plus a summed "all" row for multi-node counters.
void PrintMetricsTable(const MetricsRegistry& metrics);

}  // namespace mitt::obs

#endif  // MITTOS_OBS_METRICS_H_
