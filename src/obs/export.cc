#include "src/obs/export.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "src/common/table.h"

namespace mitt::obs {
namespace {

// pid layout: one process group per (trial group, node). Nodes get pids
// starting at kNodePidBase within their group block so "node -1" (client
// side) lands on pid 1 of the block.
constexpr int kGroupPidStride = 1024;
constexpr int kNodePidBase = 2;

int PidOf(size_t group_index, int32_t node) {
  return static_cast<int>(group_index) * kGroupPidStride + kNodePidBase + node;
}

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(out, "\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ChromeTraceJson(std::span<const TraceGroup> groups) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Process-name metadata first, in (group, node) order.
  for (size_t g = 0; g < groups.size(); ++g) {
    std::map<int32_t, bool> nodes;
    for (const SpanRecord& s : groups[g].spans) {
      nodes[s.node] = true;
    }
    for (const auto& [node, unused] : nodes) {
      AppendF(out, "%s\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":",
              first ? "" : ",", PidOf(g, node));
      const std::string label = JsonEscape(groups[g].label);
      if (node < 0) {
        out += "\"" + label + "/client\"}}";
      } else {
        out += "\"" + label + "/node";
        AppendF(out, "%d\"}}", node);
      }
      first = false;
    }
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const SpanRecord& s : groups[g].spans) {
      const char* name = SpanKindName(s.kind).data();  // Literal-backed, NUL-terminated.
      const double ts_us = static_cast<double>(s.begin) / 1000.0;
      if (s.begin == s.end) {
        AppendF(out,
                "%s\n{\"name\":\"%s\",\"cat\":\"obs\",\"ph\":\"i\",\"s\":\"t\","
                "\"ts\":%.3f,\"pid\":%d,\"tid\":%llu}",
                first ? "" : ",", name, ts_us, PidOf(g, s.node),
                static_cast<unsigned long long>(s.request_id));
      } else {
        AppendF(out,
                "%s\n{\"name\":\"%s\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":%.3f,"
                "\"dur\":%.3f,\"pid\":%d,\"tid\":%llu}",
                first ? "" : ",", name, ts_us,
                static_cast<double>(s.end - s.begin) / 1000.0, PidOf(g, s.node),
                static_cast<unsigned long long>(s.request_id));
      }
      first = false;
    }
  }
  out += "\n]}\n";
  return out;
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans, std::string_view label) {
  TraceGroup group;
  group.label = std::string(label);
  group.spans = spans;
  return ChromeTraceJson(std::span<const TraceGroup>(&group, 1));
}

// --- JSON validator ----------------------------------------------------------

namespace {

struct JsonParser {
  std::string_view text;
  size_t pos = 0;
  int depth = 0;

  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }
  bool Eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ParseString() {
    if (!Eat('"')) {
      return false;
    }
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos >= text.size()) {
          return false;
        }
        ++pos;  // Accept any escaped char (validator, not decoder).
      }
    }
    return false;
  }

  bool ParseNumber() {
    const size_t start = pos;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
    }
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    return pos > start;
  }

  bool ParseLiteral(std::string_view lit) {
    if (text.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  bool ParseValue() {
    if (++depth > kMaxDepth) {
      return false;
    }
    SkipWs();
    bool ok = false;
    if (pos >= text.size()) {
      ok = false;
    } else if (text[pos] == '{') {
      ok = ParseObject();
    } else if (text[pos] == '[') {
      ok = ParseArray();
    } else if (text[pos] == '"') {
      ok = ParseString();
    } else if (text[pos] == 't') {
      ok = ParseLiteral("true");
    } else if (text[pos] == 'f') {
      ok = ParseLiteral("false");
    } else if (text[pos] == 'n') {
      ok = ParseLiteral("null");
    } else {
      ok = ParseNumber();
    }
    --depth;
    return ok;
  }

  bool ParseObject() {
    if (!Eat('{')) {
      return false;
    }
    SkipWs();
    if (Eat('}')) {
      return true;
    }
    for (;;) {
      SkipWs();
      if (!ParseString()) {
        return false;
      }
      SkipWs();
      if (!Eat(':') || !ParseValue()) {
        return false;
      }
      SkipWs();
      if (Eat('}')) {
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }

  bool ParseArray() {
    if (!Eat('[')) {
      return false;
    }
    SkipWs();
    if (Eat(']')) {
      return true;
    }
    for (;;) {
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (Eat(']')) {
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }
};

}  // namespace

bool ValidateJsonSyntax(std::string_view text) {
  JsonParser parser{text};
  if (!parser.ParseValue()) {
    return false;
  }
  parser.SkipWs();
  return parser.pos == text.size();
}

// --- Latency breakdown -------------------------------------------------------

std::string_view RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kCacheHit:
      return "cache_hit";
    case RequestOutcome::kAccepted:
      return "accepted";
    case RequestOutcome::kRejected:
      return "rejected";
    case RequestOutcome::kFailedOver:
      return "failed_over";
  }
  return "?";
}

LatencyBreakdown ComputeLatencyBreakdown(std::span<const SpanRecord> spans) {
  LatencyBreakdown out;
  // Group by request id; std::map keeps request order deterministic.
  std::map<uint64_t, std::vector<const SpanRecord*>> by_request;
  for (const SpanRecord& s : spans) {
    if (s.request_id == 0) {
      ++out.untraced_spans;
      continue;
    }
    by_request[s.request_id].push_back(&s);
  }

  BreakdownRow rows[4];
  for (int i = 0; i < 4; ++i) {
    rows[i].outcome = static_cast<RequestOutcome>(i);
  }

  for (auto& [id, request_spans] : by_request) {
    std::stable_sort(request_spans.begin(), request_spans.end(),
                     [](const SpanRecord* a, const SpanRecord* b) { return a->begin < b->begin; });
    // Syscall spans, and whether each contains a rejection instant.
    const SpanRecord* last_success = nullptr;
    int syscalls = 0;
    int rejected_syscalls = 0;
    for (const SpanRecord* s : request_spans) {
      if (s->kind != SpanKind::kSyscall) {
        continue;
      }
      ++syscalls;
      bool rejected = false;
      for (const SpanRecord* r : request_spans) {
        if (r->kind == SpanKind::kEbusyReject && r->node == s->node && r->begin >= s->begin &&
            r->end <= s->end) {
          rejected = true;
          break;
        }
      }
      if (rejected) {
        ++rejected_syscalls;
      } else {
        last_success = s;
      }
    }
    if (syscalls == 0) {
      continue;  // Window lost to ring overwrite; nothing to attribute.
    }

    RequestOutcome outcome;
    DurationNs queue = 0;
    DurationNs device = 0;
    DurationNs e2e = 0;
    if (last_success == nullptr) {
      outcome = RequestOutcome::kRejected;
      // Attribute the fast-rejection round trips: sum of rejected syscall
      // spans (their duration is the EBUSY syscall overhead).
      for (const SpanRecord* s : request_spans) {
        if (s->kind == SpanKind::kSyscall) {
          e2e += s->end - s->begin;
        }
      }
    } else {
      for (const SpanRecord* s : request_spans) {
        if (s->begin < last_success->begin || s->end > last_success->end ||
            s->node != last_success->node) {
          continue;
        }
        if (s->kind == SpanKind::kQueueWait) {
          queue += s->end - s->begin;
        } else if (s->kind == SpanKind::kDeviceService) {
          device += s->end - s->begin;
        }
      }
      e2e = last_success->end - last_success->begin;
      if (rejected_syscalls > 0) {
        outcome = RequestOutcome::kFailedOver;
      } else if (queue == 0 && device == 0) {
        outcome = RequestOutcome::kCacheHit;
      } else {
        outcome = RequestOutcome::kAccepted;
      }
    }

    BreakdownRow& row = rows[static_cast<int>(outcome)];
    ++row.requests;
    row.queue_wait.Record(queue);
    row.device_service.Record(device);
    row.syscall_overhead.Record(std::max<DurationNs>(0, e2e - queue - device));
    row.end_to_end.Record(e2e);
  }

  for (BreakdownRow& row : rows) {
    if (row.requests > 0) {
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

void PrintLatencyBreakdown(const LatencyBreakdown& breakdown) {
  Table table({"outcome", "n", "component", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean (ms)"});
  const std::vector<double> pcts = {50, 95, 99};
  for (const BreakdownRow& row : breakdown.rows) {
    struct Component {
      const char* name;
      const LatencyRecorder* rec;
    };
    const Component components[] = {
        {"queue_wait", &row.queue_wait},
        {"device_service", &row.device_service},
        {"syscall_overhead", &row.syscall_overhead},
        {"end_to_end", &row.end_to_end},
    };
    bool first = true;
    for (const Component& c : components) {
      const auto values = c.rec->Percentiles(pcts);
      table.AddRow({first ? std::string(RequestOutcomeName(row.outcome)) : "",
                    first ? std::to_string(row.requests) : "", c.name,
                    Table::Num(ToMillis(values[0]), 3), Table::Num(ToMillis(values[1]), 3),
                    Table::Num(ToMillis(values[2]), 3),
                    Table::Num(c.rec->MeanNs() / kMillisecond, 3)});
      first = false;
    }
  }
  table.Print();
  if (breakdown.untraced_spans > 0) {
    std::printf("(untraced background/noise spans: %llu)\n",
                static_cast<unsigned long long>(breakdown.untraced_spans));
  }
}

}  // namespace mitt::obs
