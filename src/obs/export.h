// Trace consumers: Chrome trace_event JSON export and the per-layer
// latency-breakdown table.
//
// The JSON is the Chrome Trace Event Format ("traceEvents" array of "X"
// complete events, microsecond timestamps) — load it in chrome://tracing or
// https://ui.perfetto.dev. pid encodes (trial, node) so a merged multi-trial
// export shows each trial's nodes as separate process groups; tid is the
// request id, so one row per request shows its whole syscall -> queue ->
// device -> (reject/failover) story.
//
// The breakdown table answers the attribution question directly: for each
// request outcome (cache hit / accepted device IO / rejected / failed-over),
// the p50/p95/p99 of queue-wait vs device-service vs syscall-overhead, where
// syscall overhead := end-to-end minus queue minus device — the residual the
// OS itself spent (admission check, completion delivery).

#ifndef MITTOS_OBS_EXPORT_H_
#define MITTOS_OBS_EXPORT_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/latency_recorder.h"
#include "src/obs/trace.h"

namespace mitt::obs {

// One trial's (or run's) spans plus the label shown in the trace viewer.
struct TraceGroup {
  std::string label;
  std::vector<SpanRecord> spans;
};

// Serializes groups (in order) to Chrome trace_event JSON. Deterministic:
// output depends only on the groups' contents and order. Labels are escaped
// with JsonEscape, so hostile strings (quotes, backslashes, control chars)
// cannot break the document.
std::string ChromeTraceJson(std::span<const TraceGroup> groups);
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans,
                            std::string_view label = "run");

// Escapes a string for embedding inside a JSON string literal: quotes,
// backslashes, and control characters (U+0000..U+001F as \uXXXX). Every
// exporter that emits caller-supplied text (trace labels, scenario names)
// must route it through here.
std::string JsonEscape(std::string_view text);

// Minimal structural JSON validator (objects, arrays, strings, numbers,
// literals). Used by tests and the quickstart smoke test to check exported
// traces parse, without an external JSON dependency.
bool ValidateJsonSyntax(std::string_view text);

// --- Latency breakdown -------------------------------------------------------

enum class RequestOutcome : uint8_t {
  kCacheHit,    // Syscall served from the page cache (no device IO).
  kAccepted,    // Device IO accepted and completed in one try.
  kRejected,    // Every syscall of the request ended in EBUSY.
  kFailedOver,  // >=1 EBUSY, then a later syscall succeeded.
};

std::string_view RequestOutcomeName(RequestOutcome outcome);

struct BreakdownRow {
  RequestOutcome outcome = RequestOutcome::kAccepted;
  uint64_t requests = 0;
  LatencyRecorder queue_wait;
  LatencyRecorder device_service;
  LatencyRecorder syscall_overhead;
  LatencyRecorder end_to_end;  // Across all the request's syscall spans.
};

struct LatencyBreakdown {
  std::vector<BreakdownRow> rows;  // One per outcome present, in enum order.
  uint64_t untraced_spans = 0;     // Spans with request id 0 (noise IOs).
};

// Groups spans by request id and classifies each request. Spans of a request
// whose syscall window is incomplete (ring overwrote its start) are skipped.
LatencyBreakdown ComputeLatencyBreakdown(std::span<const SpanRecord> spans);

// Paper-style table: one row per (outcome, component), p50/p95/p99 in ms.
void PrintLatencyBreakdown(const LatencyBreakdown& breakdown);

}  // namespace mitt::obs

#endif  // MITTOS_OBS_EXPORT_H_
