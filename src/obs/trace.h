// Span-based per-request tracing against simulated time.
//
// Every MittOS figure is a question about where a request's time went:
// queued behind a noisy neighbor in CFQ, stuck behind a chip program in
// MittSSD, or rejected fast with EBUSY. The tracer answers it with spans —
// (request id, kind, [begin, end], node) records — emitted by each layer a
// request crosses:
//
//   client get  ──────────────────────────────────────────────▶ done
//      │ syscall      [Os::Read entry .. completion delivery]
//      │   cache_lookup   (instant, at entry)
//      │   predict        (instant, at admission check)
//      │   queue_wait     [scheduler enqueue .. device dispatch]
//      │   device_service [dispatch .. device completion]
//      │   ebusy_reject   (instant, when the predictor rejects)
//      │ failover         (instant, client-side retry on EBUSY)
//
// Determinism: span timestamps are simulated time, request ids are handed
// out by a per-simulator counter, and each trial owns its own Tracer whose
// buffer is merged in trial order — so trace output is bit-identical for any
// MITT_TRIAL_WORKERS setting.
//
// Cost: recording is a bounds-checked ring-buffer append behind a null-check
// on Simulator::tracer(); with MITT_OBS_DISABLED the null-check is a
// compile-time constant and the whole path folds away (see gate.h).

#ifndef MITTOS_OBS_TRACE_H_
#define MITTOS_OBS_TRACE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/time.h"
#include "src/obs/gate.h"

namespace mitt::obs {

// Identifies one logical client request across layers and failover retries.
// id 0 means "untraced" (noise-tenant and background IOs): layer spans are
// still recorded for them — they are the contention the trace exists to
// show — but they do not form per-request groups in the breakdown.
struct TraceContext {
  uint64_t id = 0;
  int32_t node = -1;  // Node label; -1 while client-side.

  bool traced() const { return id != 0; }
};

enum class SpanKind : uint8_t {
  kSyscall,        // Os::Read/ReadWithWaitHint/AddrCheck entry -> reply.
  kCacheLookup,    // Page-cache residency probe (instant).
  kPredict,        // Mitt* admission check (instant).
  kQueueWait,      // Scheduler enqueue -> device dispatch.
  kDeviceService,  // Device dispatch -> completion.
  kEbusyReject,    // Fast rejection (instant).
  kFailover,       // Client-side failover hop (instant).
  kFaultActive,    // src/fault/ episode window [inject, clear] on a node.
  // src/resilience/ events ("resilience.*" in exported traces):
  kBreakerOpen,      // Circuit breaker tripped open for a replica (instant).
  kBreakerHalfOpen,  // Open window elapsed; probing allowed (instant).
  kBreakerClose,     // Probe succeeded; replica back in rotation (instant).
  kDegradedGet,      // All-busy degraded read issued to min-hint replica (instant).
  kShed,             // Server admission gate shed a degraded read (instant).
  kBackoff,          // Client retry backoff window [start, resume].
};

std::string_view SpanKindName(SpanKind kind);

struct SpanRecord {
  uint64_t request_id = 0;
  TimeNs begin = 0;
  TimeNs end = 0;
  int32_t node = -1;
  SpanKind kind = SpanKind::kSyscall;
};

// Fixed-capacity ring buffer of spans for one simulator. When full, the
// oldest spans are overwritten (and counted in dropped()) so a long run
// keeps its most recent window — the part a tail investigation looks at.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = size_t{1} << 18;

  explicit Tracer(size_t capacity = kDefaultCapacity);

  // Runtime flag: a disabled tracer records nothing and hands out no ids.
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Deterministic per-simulator request ids, starting at 1.
  uint64_t NewRequestId() { return next_request_id_++; }

  // Namespaces this tracer's request ids: subsequent ids are base+1,
  // base+2, ... Sharded runs give shard s the base s<<40 so ids from
  // different shards never collide and a request's home shard is readable
  // from its id. Base 0 (the default) is the legacy single-shard stream.
  void SetRequestIdBase(uint64_t base) { next_request_id_ = base + 1; }

  void RecordSpan(SpanKind kind, const TraceContext& ctx, TimeNs begin, TimeNs end);
  void RecordInstant(SpanKind kind, const TraceContext& ctx, TimeNs at) {
    RecordSpan(kind, ctx, at, at);
  }

  // Spans oldest-to-newest (unwraps the ring).
  std::vector<SpanRecord> OrderedSpans() const;

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  uint64_t recorded() const { return recorded_; }
  uint64_t dropped() const { return recorded_ - size_; }

  void Clear();

 private:
  std::vector<SpanRecord> ring_;
  size_t head_ = 0;  // Next write position.
  size_t size_ = 0;
  uint64_t recorded_ = 0;
  uint64_t next_request_id_ = 1;
  bool enabled_ = true;
};

// Deterministic merge of per-shard trace rings at harvest time: shard rings
// are concatenated in shard order, then stable-sorted by (begin, end) — so
// the result is chronological, ties resolve by shard index, and the output
// is byte-identical for any MITT_INTRA_WORKERS / MITT_TRIAL_WORKERS setting
// (each ring's content is itself deterministic; only which *thread* filled
// it varies). Drop-oldest truncation is per-shard and equally deterministic.
std::vector<SpanRecord> MergeShardSpans(const std::vector<const Tracer*>& shard_tracers);

}  // namespace mitt::obs

#endif  // MITTOS_OBS_TRACE_H_
