// Compile-time gate for the obs subsystem (tracing + metrics).
//
// Configuring with -DMITT_OBS_DISABLED=ON defines MITT_OBS_DISABLED and
// turns Simulator::tracer()/metrics() into constant-null inline functions,
// so every `if (auto* t = sim->tracer())` recording site is dead-code
// eliminated — the zero-cost path CI keeps honest (see .github/workflows).
// The obs classes themselves still compile either way; only the hooks that
// feed them are removed.
//
// This header is intentionally dependency-free: simulator.h includes it.

#ifndef MITTOS_OBS_GATE_H_
#define MITTOS_OBS_GATE_H_

#ifdef MITT_OBS_DISABLED
#define MITT_OBS_ENABLED 0
#else
#define MITT_OBS_ENABLED 1
#endif

#endif  // MITTOS_OBS_GATE_H_
