// Shared experiment driver used by the benchmark binaries and examples.
//
// An Experiment describes one of the paper's evaluation setups: a cluster of
// DocStore nodes on a chosen backend (disk+CFQ, disk+noop, SSD, or cache-
// resident data), a noise regime (EC2 replay, continuous one-node noise,
// cache drops, rotating contention, or macro workload mixes), and a YCSB
// client population with a scale factor. Run(kind) builds a *fresh* world
// with identical seeds for every strategy, so CDFs are comparable point by
// point — the simulated analogue of the paper's noise replays (§7.2).
//
// Methodology detail preserved from the paper: deadline, timeout, and hedge
// values all default to the p95 latency observed on a Base run with the same
// seeds ("we use 13ms, the p95 latency, for deadline and timeout values").

#ifndef MITTOS_HARNESS_EXPERIMENT_H_
#define MITTOS_HARNESS_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/client/resilient.h"
#include "src/client/strategy.h"
#include "src/cluster/cluster.h"
#include "src/common/latency_recorder.h"
#include "src/fault/fault_plan.h"
#include "src/kv/doc_store_node.h"
#include "src/noise/ec2_noise.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/os/os.h"
#include "src/tenant/controller.h"
#include "src/trace/cursor.h"
#include "src/workload/ycsb.h"

namespace mitt::noise {
class IoNoiseInjector;
class CacheNoiseInjector;
}  // namespace mitt::noise
namespace mitt::workload {
class MacroWorkload;
}  // namespace mitt::workload

namespace mitt::harness {

enum class NoiseKind {
  kNone,
  kEc2,           // Per-node EC2-style bursty episodes (IO noise).
  kContinuous,    // One node under constant contention (§7.1 micro).
  kCacheDrop,       // Episodic page-cache eviction (transient balloons).
  kStaticCacheDrop, // One-time swap-out of a per-node fraction (§7.1, §7.4:
                    // "we swapped out P% of the cached data ... manual
                    // swapping"). No restore; faults heal pages on access.
  kRotating,      // 1-busy/(N-1)-free rotating every period (§7.8.3, §2).
  kMacroMix,      // filebench + Hadoop tenants on every node (§7.8.1).
};

enum class StrategyKind {
  kBase,
  kAppTimeout,
  kClone,
  kHedged,
  kSnitch,
  kC3,
  kMittos,
  kMittosWait,       // §7.8.1 extension: EBUSY carries the predicted wait.
  kMittosResilient,  // src/resilience/: budgeted, health-ordered, gated failover.
};

std::string_view StrategyKindName(StrategyKind kind);

struct ExperimentOptions {
  // Topology & workload.
  int num_nodes = 20;
  int num_clients = 20;
  int scale_factor = 1;  // SF parallel gets per user request (§7.3).
  size_t measure_requests = 12000;
  size_t warmup_requests = 400;
  workload::KeyDistribution distribution = workload::KeyDistribution::kUniform;
  int64_t num_keys_per_node = 1 << 21;  // 8 GB of 4 KB slots on disk nodes.
  // Pin all keys so their primary replica is this node (micro experiments
  // direct all gets at the noisy node); -1 disables.
  int pin_primary_node = -1;

  // Node / OS configuration.
  os::BackendKind backend = os::BackendKind::kDiskCfq;
  kv::AccessPath access = kv::AccessPath::kRead;
  size_t cache_pages = 1 << 17;  // 512 MB page cache.
  double warm_fraction = 0.0;
  int cpu_cores = 8;
  int shared_cpu_cores = 0;  // >0: all nodes share one CPU pool (§7.5).
  DurationNs handler_cpu = Micros(30);  // Per-request handler CPU burst.
  os::PredictorOptions predictor;
  os::MittCfqOptions mitt_cfq;
  os::MittSsdOptions mitt_ssd;

  // SLO / strategy parameters. Values <0 mean "derive from the Base run's
  // p95" via RunAll().
  DurationNs deadline = -2;
  DurationNs hedge_delay = -2;
  DurationNs app_timeout = -2;
  bool app_timeout_failover = true;

  // Observability (src/obs/). Metrics are always collected (near-free);
  // span tracing is opt-in because a traced run records a span per layer per
  // request. Both are inert when the obs subsystem is compiled out.
  bool trace = false;
  size_t trace_capacity = obs::Tracer::kDefaultCapacity;

  // Noise.
  NoiseKind noise = NoiseKind::kEc2;
  noise::Ec2NoiseParams ec2;
  int64_t noise_io_size = 1 << 20;
  sched::IoOp noise_op = sched::IoOp::kRead;
  sched::IoClass noise_class = sched::IoClass::kBestEffort;
  int8_t noise_priority = 4;
  int noise_streams = 2;            // Streams per intensity unit.
  int continuous_intensity = 2;     // Intensity for kContinuous.
  // kContinuous default targets ONE node (the pinned primary); this floods
  // every node instead — the all-replicas-busy world the degraded path is
  // judged on.
  bool continuous_all_nodes = false;
  int noise_only_node = -1;         // >=0: restrict noise to this node.
  double cache_drop_fraction = 0.2;
  DurationNs rotate_period = Seconds(1);
  TimeNs noise_horizon = Seconds(120);

  // Faults (src/fault/). An empty plan injects nothing. Like noise, the same
  // plan replays identically for every strategy so CDFs stay comparable.
  fault::FaultPlan fault_plan;

  // --- Open-loop trace replay (src/trace/) ---
  // When enabled(), the closed-loop YCSB driver is replaced by a
  // TraceReplayDriver: every trace arrival becomes one client Get through
  // the full client -> kv -> OS stack at its (rate-scaled) arrival time,
  // and measure/warmup_requests are ignored in favor of the trace's own
  // event counts. Offsets map onto the experiment keyspace via
  // ReplayKeyFor(); arrivals are pre-partitioned per shard in trace order
  // (stream % num_shards), so results stay bit-identical at any
  // MITT_TRIAL_WORKERS x MITT_INTRA_WORKERS.
  struct ReplayConfig {
    // On-disk columnar trace (trace_tool import-csv / gen output).
    std::string trace_path;
    // Or a synthetic paper trace: index into workload::PaperTraceProfiles()
    // (-1 = none). Ignored when trace_path is set.
    int synthetic_profile = -1;
    DurationNs synthetic_duration = Seconds(60);
    // Arrival compression (>1 = denser); same convention as the accuracy
    // benches: scaled arrival = at / rate_scale.
    double rate_scale = 1.0;
    uint64_t max_events = 0;     // 0 = the whole trace.
    uint64_t warmup_events = 0;  // Leading events dispatched unmeasured.

    bool enabled() const { return !trace_path.empty() || synthetic_profile >= 0; }
  };
  ReplayConfig replay;

  // --- Multi-tenant SLO classes (src/tenant/) ---
  // When enabled, the world gets a TenantDirectory (mix.num_tenants tenants
  // over gold/silver/bronze-style SLO classes), a tenant->replica
  // PlacementMap attached to every strategy, and per-tenant accounting on
  // every node. The workload becomes open-loop TenantLoadDrivers (one per
  // shard, partition `tenant % num_shards`) unless replay is also enabled —
  // then the trace drives arrivals and streams overlay onto tenants via
  // `stream % num_tenants`. Each get carries the tenant's class SLO as its
  // deadline; completions are harvested per class into
  // RunResult::tenant_classes.
  struct TenantConfig {
    bool enabled = false;
    // mix.keyspace is overridden with the experiment keyspace.
    tenant::MixOptions mix;
    // Run the PlacementController: probe per-node predictor aggregates +
    // breaker state each period and migrate tenants off hot nodes. Off =
    // naive uniform placement for the whole run (the bench baseline).
    bool slo_aware = false;
    tenant::PlacementControllerOptions controller;
    DurationNs warmup = Millis(300);   // Arrivals before this are unmeasured.
    DurationNs duration = Seconds(2);  // Measured arrival window.
  };
  TenantConfig tenants;

  // When set, every live arrival (replay, tenant, or closed-loop YCSB) is
  // captured and written back out as a v1 columnar trace at this path when
  // the run completes — `trace_tool record`'s underlying hook. Sharded runs
  // merge per-shard recorders in shard order and sort by arrival time, so
  // the file is bit-identical at any worker count.
  std::string record_trace_path;

  // Resilience knobs for StrategyKind::kMittosResilient (deadline comes from
  // `deadline` above; the name/deadline fields here are overridden).
  client::ResilientOptions resilience;

  // --- Intra-trial sharding (src/sim/sharded_engine.h) ---
  // Shard count for the conservative-PDES engine. 0 = auto: 1 below 64
  // nodes (the legacy single-threaded engine, zero overhead), otherwise
  // ~num_nodes/32 capped at 32. Must stay a pure function of the scenario —
  // NEVER derive it from worker count or hardware, or bit-identity across
  // MITT_INTRA_WORKERS dies. Forced to 1 when shared_cpu_cores > 0 (a
  // shared CPU pool is cross-shard state).
  int num_shards = 0;
  // Threads driving shard windows inside ONE trial. 0 = $MITT_INTRA_WORKERS
  // (default 1). Any value produces bit-identical results; it composes with
  // MITT_TRIAL_WORKERS (total threads ~= product, so split the budget).
  int intra_workers = 0;
  // Engine knobs, forwarded to ShardedEngine::Options verbatim. Both are
  // schedule-preserving (results identical at any setting):
  // windows between adaptive LPT repacks (0 = static s % workers map,
  // < 0 = $MITT_ENGINE_REBALANCE else 64) ...
  int engine_rebalance = -1;
  // ... and quiet-frontier window fusion (0 = off, 1 = on,
  // < 0 = $MITT_ENGINE_FUSION != "0" else on).
  int engine_fusion = -1;

  // Per-trial invariant-oracle harvest (src/chaos/): wrap every issued get
  // with exactly-once / conservation accounting, record breaker transitions,
  // and validate the placement map after the run. Off by default — the wrap
  // allocates a per-get latch, which the hot benches must not pay.
  bool harvest_oracles = false;

  uint64_t seed = 42;
};

// The shard count Run() will actually use (auto resolution above).
int ResolveShards(const ExperimentOptions& options);

// Ground truth for the chaos-search invariant oracles, collected when
// ExperimentOptions::harvest_oracles is on. Every get issued by the driver is
// wrapped: the wrapper counts the issue, the first completion (split by
// status), and any *extra* completion (the exactly-once violation). A run
// that drains with gets_done < gets_issued lost a get — the liveness
// violation the PR 5 denied-retry hang produced. Sharded runs merge
// per-shard harvests in shard order, so the harvest itself is bit-identical
// at any worker grid.
struct OracleHarvest {
  bool enabled = false;
  uint64_t gets_issued = 0;
  uint64_t gets_done = 0;            // First completions only.
  uint64_t gets_done_duplicate = 0;  // Completions past the first (must be 0).
  uint64_t done_ok = 0;
  uint64_t done_busy = 0;
  uint64_t done_exhausted = 0;
  uint64_t done_error = 0;  // Everything else (timeout, unavailable, ...).
  // ResilientMittosStrategy::budget_regressions() summed over shards.
  uint64_t budget_regressions = 0;
  // Breaker transition log in shard order (resilient strategy only). Each
  // shard owns an independent health tracker, so the concatenated log holds
  // one complete chain per tracker: breaker_segments marks where each
  // tracker's chain begins, and per-replica legality resets at every
  // segment start (every tracker starts all replicas at closed).
  std::vector<resilience::BreakerTransition> breaker_log;
  std::vector<size_t> breaker_segments;
  uint64_t breaker_log_dropped = 0;
  // Placement-map validity, checked after a tenant-enabled run.
  bool placement_ok = true;
  std::string placement_detail;

  void MergeFrom(const OracleHarvest& other);
};

// Per-SLO-class harvest of a tenant-enabled run: one entry per class in
// directory order. deadline_miss counts measured completions slower than the
// class SLO (the per-class tail the placement controller defends);
// failovers counts extra server contacts (EBUSY rejects / timeouts that
// moved the get to another replica).
struct TenantClassStats {
  std::string name;
  DurationNs slo = 0;
  uint32_t tenants = 0;  // Tenants belonging to this class.
  uint64_t requests = 0;
  uint64_t deadline_miss = 0;
  uint64_t failovers = 0;
  uint64_t errors = 0;
  LatencyRecorder latencies;
};

struct RunResult {
  std::string name;
  LatencyRecorder user_latencies;  // One sample per user request (max of SF gets).
  LatencyRecorder get_latencies;   // One sample per individual get.
  uint64_t requests = 0;
  uint64_t ebusy_failovers = 0;
  uint64_t hedges_sent = 0;
  uint64_t timeouts_fired = 0;
  uint64_t user_errors = 0;  // Timeout surfaced to the user (no failover).
  uint64_t noise_ios = 0;    // IOs the noise injectors issued during the run.
  TimeNs sim_duration = 0;

  // Engine harvest: total simulator events executed (summed over shards),
  // plus — for sharded runs — conservative-window and mailbox counters.
  // events/s on sim_events is what bench_scalecore reports.
  uint64_t sim_events = 0;
  int num_shards = 1;
  uint64_t engine_windows = 0;
  // Windows that ran through the quiet-frontier fast path (no drain scan,
  // no pool handoff); engine_windows - engine_fused_windows = barriers paid.
  uint64_t engine_fused_windows = 0;
  uint64_t cross_shard_messages = 0;
  // Executed events per window, approximate percentiles from the engine's
  // log-bucket histogram (0 for unsharded runs).
  double events_per_window_p50 = 0;
  double events_per_window_p99 = 0;
  // (workers, critical-path events) pairs under the engine's map policy
  // (adaptive when rebalancing is on): sim_events / cp is the ideal w-core
  // speedup, deterministic and host-independent (see
  // ShardedEngine::critical_path_events()). critical_path_static is the
  // same sum under the frozen s % workers map — the before/after pair.
  std::vector<std::pair<int, uint64_t>> critical_path;
  std::vector<std::pair<int, uint64_t>> critical_path_static;
  // Whole-run per-worker executed-event imbalance (max/mean, 1.0 = perfect)
  // per hypothetical worker count, adaptive map vs static s % w map.
  std::vector<std::pair<int, double>> imbalance;
  std::vector<std::pair<int, double>> imbalance_static;

  // Resilience harvest (src/resilience/). For naive strategies,
  // unbounded_deadline_tries counts deadline-disabled last-try sends; the
  // resilient strategy keeps it at 0 and reports its largest sent deadline
  // instead (the boundedness proof).
  uint64_t degraded_gets = 0;
  uint64_t degraded_sheds = 0;
  uint64_t deadline_exhausted = 0;
  uint64_t retry_denied = 0;
  uint64_t unbounded_deadline_tries = 0;
  DurationNs max_sent_deadline = 0;

  // Replay harvest (src/trace/): open-loop arrivals dispatched, split by the
  // trace's own op column (both dispatch as Gets; the split is bookkeeping).
  uint64_t replay_events = 0;
  uint64_t replay_trace_reads = 0;
  uint64_t replay_trace_writes = 0;

  // Tenant harvest (src/tenant/): per-class stats merged in shard order,
  // plus the placement controller's counters (0 when slo_aware is off).
  std::vector<TenantClassStats> tenant_classes;
  uint64_t tenant_requests = 0;  // Measured tenant completions, all classes.
  uint64_t tenant_migrations = 0;
  uint64_t controller_ticks = 0;
  uint64_t controller_hot_ticks = 0;
  uint64_t breaker_opens = 0;

  // Trace recorder harvest (`record_trace_path`): arrivals written back out.
  uint64_t recorded_events = 0;

  // Fault harvest (src/fault/): episodes fully applied during the run, in
  // clear order — the determinism check compares these across worker counts.
  std::vector<fault::AppliedEpisode> fault_log;
  uint64_t fault_episodes = 0;
  uint64_t fault_skipped = 0;

  // Oracle harvest (chaos search): populated when harvest_oracles is on.
  OracleHarvest oracle;

  // Observability harvest (src/obs/): the run's metrics registry, plus — for
  // traced runs — the span buffer oldest-to-newest. Trial-order merging keeps
  // traces bit-identical at any MITT_TRIAL_WORKERS setting.
  obs::MetricsRegistry metrics;
  std::vector<obs::SpanRecord> trace_spans;
  uint64_t trace_dropped = 0;
};

// Compressed EC2 noise preset: same per-node busy fraction and sub-second
// burstiness as §6, but with shorter quiet gaps so a few simulated minutes of
// workload meet enough episodes for stable p95-p99 statistics.
noise::Ec2NoiseParams CompressedEc2Noise();

class Experiment {
 public:
  explicit Experiment(const ExperimentOptions& options) : options_(options) {}

  // Builds a fresh cluster+noise world and drives the workload through the
  // given strategy.
  RunResult Run(StrategyKind kind);

  // Runs Base first, derives p95-based deadline/hedge/timeout when those are
  // negative, then runs the remaining kinds. Results are in input order with
  // Base first.
  std::vector<RunResult> RunAll(const std::vector<StrategyKind>& kinds);

  const ExperimentOptions& options() const { return options_; }
  DurationNs derived_p95() const { return derived_p95_; }

  // The deterministic trace-offset -> keyspace mapping the replay driver
  // uses: block number plus a per-stream golden-ratio displacement, mod the
  // keyspace — per-stream sequential runs survive, streams don't collide.
  static uint64_t ReplayKeyFor(int64_t offset, uint32_t stream, uint64_t keyspace);

 private:
  struct World;

  // Sharded driver: same world recipe, but nodes/clients spread over the
  // engine's shards; used by Run() when ResolveShards() > 1.
  RunResult RunSharded(StrategyKind kind, int num_shards);
  cluster::Cluster::Options BuildClusterOptions(StrategyKind kind) const;
  // Builds the noise regime against each node's own simulator (its shard's,
  // or the single legacy simulator — identical pointer when unsharded).
  void BuildNoise(cluster::Cluster& cluster,
                  std::vector<std::unique_ptr<noise::IoNoiseInjector>>& io_noise,
                  std::vector<std::unique_ptr<noise::CacheNoiseInjector>>& cache_noise,
                  std::vector<std::unique_ptr<workload::MacroWorkload>>& macro_noise);
  // One fresh cursor over the configured replay source (each shard owns its
  // own). Throws std::runtime_error if the trace cannot be opened.
  std::unique_ptr<trace::TraceCursor> MakeReplayCursor() const;
  // `seed_salt` decorrelates per-shard strategy instances; 0 = the legacy
  // stream.
  std::unique_ptr<client::GetStrategy> MakeStrategy(StrategyKind kind, sim::Simulator* sim,
                                                    cluster::Cluster* cluster,
                                                    uint64_t seed_salt = 0);
  // Accumulates (+=) so per-shard strategy instances sum into one result.
  void CollectCounters(StrategyKind kind, const client::GetStrategy& strategy, RunResult* out);

  ExperimentOptions options_;
  DurationNs derived_p95_ = 0;
};

// --- Deterministic parallel trial runner ---
//
// Multi-trial benches (Fig. 4/6/9, all-in-one) run many independent
// simulations: each trial owns its own Simulator and RNG seeds, so trials
// are embarrassingly parallel. RunTrials fans trial indices out across a
// worker pool (atomic work queue over std::thread) and merges results *in
// trial order*, so the merged output is bit-identical to a serial run —
// worker count only changes wall-clock time, never results.
//
// Determinism contract: the trial function must derive all randomness from
// its trial index / captured options (no shared mutable state, no wall
// clock). Everything under src/ follows this already — every component owns
// an Rng seeded from the experiment seed.

// Worker count used when `workers <= 0`: $MITT_TRIAL_WORKERS if set,
// otherwise std::thread::hardware_concurrency().
int DefaultTrialWorkers();

namespace internal {
// Runs body(0), ..., body(n-1) across the pool; with an effective worker
// count of 1 runs inline, in index order. Rethrows the first trial
// exception after all workers join.
void RunTrialsIndexed(size_t n, int workers, const std::function<void(size_t)>& body);
}  // namespace internal

template <typename T>
std::vector<T> RunTrials(size_t num_trials, const std::function<T(size_t)>& trial,
                         int workers = 0) {
  std::vector<T> results(num_trials);
  internal::RunTrialsIndexed(num_trials, workers,
                             [&](size_t i) { results[i] = trial(i); });
  return results;
}

// The common bench pattern: one fresh Experiment world per (options,
// strategy) pair, all fanned out together.
struct Trial {
  ExperimentOptions options;
  StrategyKind kind = StrategyKind::kBase;
  std::string rename;  // Optional RunResult name override (e.g. "NoNoise").
};
std::vector<RunResult> RunTrialsParallel(const std::vector<Trial>& trials, int workers = 0);

// Prints a paper-style CDF comparison (one column per result, rows at fixed
// percentiles) plus the %-reduction table of Fig. 5b/6d.
void PrintPercentileTable(const std::vector<RunResult>& results,
                          const std::vector<double>& percentiles, bool user_level);
void PrintReductionTable(const RunResult& mitt, const std::vector<RunResult>& others,
                         const std::vector<double>& percentiles, bool user_level);

}  // namespace mitt::harness

#endif  // MITTOS_HARNESS_EXPERIMENT_H_
