#include "src/harness/scenario_runner.h"

#include <sstream>
#include <utility>

#include "src/common/table.h"
#include "src/obs/export.h"

namespace mitt::harness {
namespace {

StrategyScore ScoreOf(const RunResult& r, const std::string& scenario,
                      const std::string& strategy, DurationNs slo) {
  StrategyScore score;
  score.scenario = scenario;
  score.strategy = strategy;
  score.p50_ms = ToMillis(r.get_latencies.Percentile(50));
  score.p95_ms = ToMillis(r.get_latencies.Percentile(95));
  score.p99_ms = ToMillis(r.get_latencies.Percentile(99));
  score.deadline_miss_pct = 100.0 * (1.0 - r.get_latencies.FractionBelow(slo));
  score.failovers = r.ebusy_failovers + r.hedges_sent + r.timeouts_fired;
  score.fault_episodes = r.fault_episodes;
  score.user_errors = r.user_errors;
  score.degraded_gets = r.degraded_gets;
  score.degraded_sheds = r.degraded_sheds;
  score.deadline_exhausted = r.deadline_exhausted;
  score.unbounded_tries = r.unbounded_deadline_tries;
  score.max_sent_deadline_ms = ToMillis(r.max_sent_deadline);
  return score;
}

}  // namespace

std::vector<StrategyScore> ScenarioRunner::Run(const std::vector<FaultScenario>& scenarios) {
  // Phase A: healthy world, Base strategy -> the SLO every scenario is
  // judged against. Faults must not leak into the calibration run.
  ExperimentOptions healthy = options_.base;
  healthy.fault_plan = fault::FaultPlan();
  Experiment probe(healthy);
  const RunResult base = probe.Run(StrategyKind::kBase);
  slo_deadline_ = base.get_latencies.Percentile(95);
  if (slo_deadline_ <= 0) {
    slo_deadline_ = Millis(13);  // The paper's fallback deadline.
  }

  // Phase B: scenario x strategy, fresh identical-seed worlds, fanned out
  // across the deterministic trial runner.
  std::vector<Trial> trials;
  trials.reserve(scenarios.size() * options_.strategies.size());
  for (const FaultScenario& scenario : scenarios) {
    for (const StrategyKind kind : options_.strategies) {
      Trial t;
      t.options = options_.base;
      t.options.fault_plan = scenario.plan;
      if (scenario.customize) {
        scenario.customize(t.options);
      }
      if (t.options.deadline < 0) {
        t.options.deadline = slo_deadline_;
      }
      if (t.options.hedge_delay < 0) {
        t.options.hedge_delay = slo_deadline_;
      }
      if (t.options.app_timeout < 0) {
        t.options.app_timeout = slo_deadline_;
      }
      t.kind = kind;
      t.rename = scenario.name + "/" + std::string(StrategyKindName(kind));
      trials.push_back(std::move(t));
    }
  }
  results_ = RunTrialsParallel(trials, options_.workers);

  std::vector<StrategyScore> scores;
  scores.reserve(results_.size());
  size_t i = 0;
  for (const FaultScenario& scenario : scenarios) {
    for (const StrategyKind kind : options_.strategies) {
      scores.push_back(ScoreOf(results_[i++], scenario.name,
                               std::string(StrategyKindName(kind)), slo_deadline_));
    }
  }
  return scores;
}

void PrintScorecard(const std::vector<StrategyScore>& scores, DurationNs slo_deadline) {
  Table table({"scenario", "strategy", "p50 (ms)", "p95 (ms)", "p99 (ms)",
               "miss% @" + Table::Num(ToMillis(slo_deadline), 1) + "ms", "failovers",
               "episodes", "errors", "degraded", "sheds", "exhausted", "unbounded",
               "maxDL (ms)"});
  for (const StrategyScore& s : scores) {
    table.AddRow({s.scenario, s.strategy, Table::Num(s.p50_ms, 2), Table::Num(s.p95_ms, 2),
                  Table::Num(s.p99_ms, 2), Table::Num(s.deadline_miss_pct, 2),
                  Table::Num(static_cast<double>(s.failovers), 0),
                  Table::Num(static_cast<double>(s.fault_episodes), 0),
                  Table::Num(static_cast<double>(s.user_errors), 0),
                  Table::Num(static_cast<double>(s.degraded_gets), 0),
                  Table::Num(static_cast<double>(s.degraded_sheds), 0),
                  Table::Num(static_cast<double>(s.deadline_exhausted), 0),
                  Table::Num(static_cast<double>(s.unbounded_tries), 0),
                  Table::Num(s.max_sent_deadline_ms, 2)});
  }
  table.Print();
}

std::string ScorecardJson(const std::vector<StrategyScore>& scores, DurationNs slo_deadline) {
  std::ostringstream out;
  out << "{\n  \"slo_deadline_ms\": " << ToMillis(slo_deadline) << ",\n  \"scores\": [\n";
  for (size_t i = 0; i < scores.size(); ++i) {
    const StrategyScore& s = scores[i];
    out << "    {\"scenario\": \"" << obs::JsonEscape(s.scenario) << "\", \"strategy\": \""
        << obs::JsonEscape(s.strategy) << "\", \"p50_ms\": " << s.p50_ms
        << ", \"p95_ms\": " << s.p95_ms << ", \"p99_ms\": " << s.p99_ms
        << ", \"deadline_miss_pct\": " << s.deadline_miss_pct
        << ", \"failovers\": " << s.failovers << ", \"fault_episodes\": " << s.fault_episodes
        << ", \"user_errors\": " << s.user_errors << ", \"degraded_gets\": " << s.degraded_gets
        << ", \"degraded_sheds\": " << s.degraded_sheds
        << ", \"deadline_exhausted\": " << s.deadline_exhausted
        << ", \"unbounded_tries\": " << s.unbounded_tries
        << ", \"max_sent_deadline_ms\": " << s.max_sent_deadline_ms << "}"
        << (i + 1 < scores.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace mitt::harness
