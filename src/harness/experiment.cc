#include "src/harness/experiment.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "src/client/adaptive.h"
#include "src/client/clone.h"
#include "src/client/hedged.h"
#include "src/client/mittos_client.h"
#include "src/client/timeout.h"
#include "src/common/table.h"
#include "src/fault/injector.h"
#include "src/noise/noise_injector.h"
#include "src/sched/sched_obs.h"
#include "src/sim/sharded_engine.h"
#include "src/tenant/workload.h"
#include "src/trace/recorder.h"
#include "src/trace/replay.h"
#include "src/workload/macro_workload.h"
#include "src/workload/synthetic_trace.h"

namespace mitt::harness {
namespace {

constexpr DurationNs kFallbackDeadline = Millis(13);

DurationNs Resolve(DurationNs value, DurationNs fallback) {
  return value >= 0 ? value : fallback;
}

// Decorrelates per-shard seed streams (strategy instances, id namespaces).
constexpr uint64_t kShardSeedStride = 0x9E37'79B9'7F4A'7C15ULL;

// Per-SLO-class accumulation for tenant-enabled runs; one vector per shard,
// merged in shard order at harvest (the determinism contract).
struct ClassAgg {
  uint64_t requests = 0;
  uint64_t deadline_miss = 0;
  uint64_t failovers = 0;
  uint64_t errors = 0;
  LatencyRecorder latencies;
};

void RecordTenantCompletion(const tenant::TenantDirectory& directory,
                            std::vector<ClassAgg>& aggs, tenant::TenantId t,
                            DurationNs latency, const client::GetResult& r) {
  ClassAgg& agg = aggs[directory.class_of(t)];
  ++agg.requests;
  agg.latencies.Record(latency);
  if (latency > directory.slo_of(t)) {
    ++agg.deadline_miss;
  }
  agg.failovers += static_cast<uint64_t>(r.tries - 1);
  if (!r.status.ok() && !r.status.busy()) {
    ++agg.errors;
  }
}

// The controller's view of one node: the scheduler's O(1) predictor
// aggregates (wait sums / dispatches / rejects maintained by sched::SchedObs)
// plus the node's get/EBUSY totals and per-tenant arrival counters. Reads
// cross-shard state, so it must only run while the world is quiesced — the
// controller guarantees that (ticks are ScheduleGlobal events).
tenant::PlacementController::ProbeFn MakeNodeProbe(cluster::Cluster* cluster) {
  return [cluster](int node) {
    tenant::NodeProbe p;
    kv::DocStoreNode& n = cluster->node(node);
    if (const sched::SchedObs* o = n.os().scheduler().observer()) {
      p.wait_sum_ns = o->wait_sum_ns();
      p.dispatches = o->dispatches();
      p.rejects = o->rejects();
    }
    p.gets = n.gets_served();
    p.ebusy = n.ebusy_returned();
    p.tenant_gets = n.tenant_gets_data();
    p.tenant_count = n.tenant_slots();
    return p;
  };
}

// Folds the (already shard-order-merged) class aggregates and controller
// counters into the result.
void HarvestTenants(const tenant::TenantDirectory& directory, std::vector<ClassAgg>& aggs,
                    tenant::PlacementController* controller, RunResult* out) {
  std::vector<uint32_t> members(directory.num_classes(), 0);
  for (tenant::TenantId t = 0; t < directory.num_tenants(); ++t) {
    ++members[directory.class_of(t)];
  }
  for (uint32_t c = 0; c < directory.num_classes(); ++c) {
    TenantClassStats stats;
    stats.name = directory.cls(c).name;
    stats.slo = directory.cls(c).slo;
    stats.tenants = members[c];
    ClassAgg& agg = aggs[c];
    stats.requests = agg.requests;
    stats.deadline_miss = agg.deadline_miss;
    stats.failovers = agg.failovers;
    stats.errors = agg.errors;
    stats.latencies = std::move(agg.latencies);
    out->tenant_requests += stats.requests;
    out->tenant_classes.push_back(std::move(stats));
  }
  if (controller != nullptr) {
    out->tenant_migrations = controller->migrations();
    out->controller_ticks = controller->ticks();
    out->controller_hot_ticks = controller->hot_ticks();
    out->breaker_opens = controller->health().breaker_opens();
  }
}

// Wraps a get's completion callback for the oracle harvest: counts the issue
// here, the first completion (split by status) and any duplicate completion
// in the wrapper. Null harvest = oracles off = the callback passes through
// untouched (no per-get latch allocation on the hot benches).
client::GetDoneFn WrapOracleDone(OracleHarvest* h, client::GetDoneFn done) {
  if (h == nullptr) {
    return done;
  }
  ++h->gets_issued;
  auto calls = std::make_shared<int>(0);
  return [h, calls, done = std::move(done)](const client::GetResult& r) {
    if (++*calls > 1) {
      ++h->gets_done_duplicate;
    } else {
      ++h->gets_done;
      if (r.status.ok()) {
        ++h->done_ok;
      } else if (r.status.busy()) {
        ++h->done_busy;
      } else if (r.status.code() == StatusCode::kDeadlineExhausted) {
        ++h->done_exhausted;
      } else {
        ++h->done_error;
      }
    }
    done(r);
  };
}

// Placement-map validity oracle: every group node in [0, num_nodes), no
// duplicate node within a group. Run after the workload (the controller only
// mutates the map at quiesced ticks, so post-run state is the final word).
void ValidatePlacement(const tenant::PlacementMap& map, int num_nodes, OracleHarvest* h) {
  if (h == nullptr) {
    return;
  }
  for (tenant::TenantId t = 0; t < map.num_tenants(); ++t) {
    const tenant::ReplicaGroup g = map.group(t);
    for (int r = 0; r < g.size; ++r) {
      if (g.node[r] < 0 || g.node[r] >= num_nodes) {
        h->placement_ok = false;
        h->placement_detail = "tenant " + std::to_string(t) + " replica " + std::to_string(r) +
                              " out of range: " + std::to_string(g.node[r]);
        return;
      }
      for (int k = 0; k < r; ++k) {
        if (g.node[k] == g.node[r]) {
          h->placement_ok = false;
          h->placement_detail = "tenant " + std::to_string(t) + " duplicate replica node " +
                                std::to_string(g.node[r]);
          return;
        }
      }
    }
  }
}

}  // namespace

void OracleHarvest::MergeFrom(const OracleHarvest& other) {
  enabled = enabled || other.enabled;
  gets_issued += other.gets_issued;
  gets_done += other.gets_done;
  gets_done_duplicate += other.gets_done_duplicate;
  done_ok += other.done_ok;
  done_busy += other.done_busy;
  done_exhausted += other.done_exhausted;
  done_error += other.done_error;
  budget_regressions += other.budget_regressions;
  for (const size_t seg : other.breaker_segments) {
    breaker_segments.push_back(breaker_log.size() + seg);
  }
  breaker_log.insert(breaker_log.end(), other.breaker_log.begin(), other.breaker_log.end());
  breaker_log_dropped += other.breaker_log_dropped;
  if (!other.placement_ok && placement_ok) {
    placement_ok = false;
    placement_detail = other.placement_detail;
  }
}

int ResolveShards(const ExperimentOptions& options) {
  if (options.shared_cpu_cores > 0) {
    return 1;  // A shared CPU pool is inherently cross-shard state.
  }
  if (options.num_shards > 0) {
    return std::min(options.num_shards, options.num_nodes);
  }
  // Auto: small paper-scale topologies stay on the legacy single-threaded
  // engine (zero window overhead); fleet-scale worlds get ~32 nodes/shard.
  if (options.num_nodes < 64) {
    return 1;
  }
  return std::min(32, options.num_nodes / 32);
}

int DefaultTrialWorkers() {
  if (const char* env = std::getenv("MITT_TRIAL_WORKERS")) {
    const int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void internal::RunTrialsIndexed(size_t n, int workers,
                                const std::function<void(size_t)>& body) {
  if (workers <= 0) {
    workers = DefaultTrialWorkers();
  }
  const size_t pool = std::min(static_cast<size_t>(workers), n);
  if (pool <= 1) {
    for (size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;
  auto drain = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) {
        return;
      }
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) {
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(pool - 1);
  for (size_t t = 1; t < pool; ++t) {
    threads.emplace_back(drain);
  }
  drain();  // The calling thread is a worker too.
  for (std::thread& t : threads) {
    t.join();
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

std::vector<RunResult> RunTrialsParallel(const std::vector<Trial>& trials, int workers) {
  return RunTrials<RunResult>(
      trials.size(),
      [&trials](size_t i) {
        const Trial& t = trials[i];
        Experiment experiment(t.options);
        RunResult result = experiment.Run(t.kind);
        if (!t.rename.empty()) {
          result.name = t.rename;
        }
        return result;
      },
      workers);
}

std::string_view StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kBase:
      return "Base";
    case StrategyKind::kAppTimeout:
      return "AppTO";
    case StrategyKind::kClone:
      return "Clone";
    case StrategyKind::kHedged:
      return "Hedged";
    case StrategyKind::kSnitch:
      return "Snitch";
    case StrategyKind::kC3:
      return "C3";
    case StrategyKind::kMittos:
      return "MittOS";
    case StrategyKind::kMittosWait:
      return "MittOS+wait";
    case StrategyKind::kMittosResilient:
      return "MittOS+res";
  }
  return "?";
}

noise::Ec2NoiseParams CompressedEc2Noise() {
  noise::Ec2NoiseParams p;
  p.mean_off = Millis(3500);
  p.off_sigma = 1.1;
  p.min_on = Millis(80);
  p.max_on = Millis(600);
  p.on_alpha = 1.3;
  p.max_intensity = 4;
  p.extra_stream_prob = 0.35;
  p.hot_node_fraction = 0.15;
  p.hot_node_off_scale = 0.5;
  return p;
}

std::unique_ptr<client::GetStrategy> Experiment::MakeStrategy(StrategyKind kind,
                                                              sim::Simulator* sim,
                                                              cluster::Cluster* cluster,
                                                              uint64_t seed_salt) {
  const uint64_t seed = (options_.seed ^ 0xC11E'47F0) + kShardSeedStride * seed_salt;
  const DurationNs deadline = Resolve(options_.deadline, kFallbackDeadline);
  switch (kind) {
    case StrategyKind::kBase: {
      client::TimeoutStrategy::Options opt;
      opt.name = "Base";
      opt.timeout = Seconds(30);  // The NoSQL-default coarse timeout (§2).
      return std::make_unique<client::TimeoutStrategy>(sim, cluster, seed, opt);
    }
    case StrategyKind::kAppTimeout: {
      client::TimeoutStrategy::Options opt;
      opt.name = "AppTO";
      opt.timeout = Resolve(options_.app_timeout, deadline);
      opt.failover_on_timeout = options_.app_timeout_failover;
      return std::make_unique<client::TimeoutStrategy>(sim, cluster, seed, opt);
    }
    case StrategyKind::kClone:
      return std::make_unique<client::CloneStrategy>(sim, cluster, seed);
    case StrategyKind::kHedged: {
      client::HedgedStrategy::Options opt;
      opt.hedge_delay = Resolve(options_.hedge_delay, deadline);
      return std::make_unique<client::HedgedStrategy>(sim, cluster, seed, opt);
    }
    case StrategyKind::kSnitch:
      return std::make_unique<client::SnitchStrategy>(sim, cluster, seed,
                                                      client::SnitchStrategy::Options{});
    case StrategyKind::kC3:
      return std::make_unique<client::C3Strategy>(sim, cluster, seed,
                                                  client::C3Strategy::Options{});
    case StrategyKind::kMittos: {
      client::MittosStrategy::Options opt;
      opt.deadline = deadline;
      return std::make_unique<client::MittosStrategy>(sim, cluster, seed, opt);
    }
    case StrategyKind::kMittosWait: {
      client::MittosWaitStrategy::Options opt;
      opt.deadline = deadline;
      return std::make_unique<client::MittosWaitStrategy>(sim, cluster, seed, opt);
    }
    case StrategyKind::kMittosResilient: {
      client::ResilientOptions opt = options_.resilience;
      opt.name = "MittOS+res";
      opt.deadline = deadline;
      // The breaker-legality oracle needs the in-order transition log.
      opt.health.record_transitions = opt.health.record_transitions || options_.harvest_oracles;
      return std::make_unique<client::ResilientMittosStrategy>(sim, cluster, seed, opt);
    }
  }
  return nullptr;
}

void Experiment::CollectCounters(StrategyKind kind, const client::GetStrategy& strategy,
                                 RunResult* out) {
  switch (kind) {
    case StrategyKind::kBase:
    case StrategyKind::kAppTimeout:
      out->timeouts_fired +=
          static_cast<const client::TimeoutStrategy&>(strategy).timeouts_fired();
      break;
    case StrategyKind::kHedged:
      out->hedges_sent += static_cast<const client::HedgedStrategy&>(strategy).hedges_sent();
      break;
    case StrategyKind::kMittos: {
      const auto& s = static_cast<const client::MittosStrategy&>(strategy);
      out->ebusy_failovers += s.ebusy_failovers();
      out->unbounded_deadline_tries += s.unbounded_tries();
      break;
    }
    case StrategyKind::kMittosWait: {
      const auto& s = static_cast<const client::MittosWaitStrategy&>(strategy);
      out->ebusy_failovers += s.ebusy_failovers();
      out->unbounded_deadline_tries += s.informed_last_tries();
      break;
    }
    case StrategyKind::kMittosResilient: {
      const auto& s = static_cast<const client::ResilientMittosStrategy&>(strategy);
      out->ebusy_failovers += s.ebusy_failovers();
      out->timeouts_fired += s.timeouts_fired();
      out->degraded_gets += s.degraded_gets();
      out->degraded_sheds += s.degraded_sheds_seen();
      out->deadline_exhausted += s.deadline_exhausted();
      out->retry_denied += s.retry_denied();
      out->max_sent_deadline = std::max(out->max_sent_deadline, s.max_sent_deadline());
      out->oracle.budget_regressions += s.budget_regressions();
      const auto& transitions = s.health().transitions();
      if (!transitions.empty()) {
        // One tracker instance = one legality segment (sharded runs collect
        // once per shard, and every tracker starts its replicas at closed).
        out->oracle.breaker_segments.push_back(out->oracle.breaker_log.size());
      }
      out->oracle.breaker_log.insert(out->oracle.breaker_log.end(), transitions.begin(),
                                     transitions.end());
      out->oracle.breaker_log_dropped += s.health().transitions_dropped();
      break;
    }
    default:
      break;
  }
}

uint64_t Experiment::ReplayKeyFor(int64_t offset, uint32_t stream, uint64_t keyspace) {
  const uint64_t block = static_cast<uint64_t>(offset) >> 12;  // 4 KB slots.
  return (block + static_cast<uint64_t>(stream) * kShardSeedStride) % keyspace;
}

std::unique_ptr<trace::TraceCursor> Experiment::MakeReplayCursor() const {
  if (!options_.replay.trace_path.empty()) {
    std::string error;
    auto cursor = trace::FileTraceCursor::Open(options_.replay.trace_path, &error);
    if (cursor == nullptr) {
      throw std::runtime_error("replay trace: " + error);
    }
    return cursor;
  }
  const auto& profiles = workload::PaperTraceProfiles();
  const size_t index = static_cast<size_t>(options_.replay.synthetic_profile);
  if (index >= profiles.size()) {
    throw std::runtime_error("replay: synthetic_profile out of range");
  }
  // Same seed stream the accuracy benches use for their synthetic replays.
  return std::make_unique<workload::SyntheticTraceCursor>(
      profiles[index], options_.replay.synthetic_duration, options_.seed ^ 0x7ACE,
      static_cast<uint32_t>(index));
}

cluster::Cluster::Options Experiment::BuildClusterOptions(StrategyKind kind) const {
  cluster::Cluster::Options copt;
  copt.num_nodes = options_.num_nodes;
  copt.replication = std::min(3, options_.num_nodes);
  copt.seed = options_.seed;
  copt.shared_cpu_cores = options_.shared_cpu_cores;
  copt.node.num_keys = options_.num_keys_per_node;
  copt.node.access = options_.access;
  copt.node.cpu_cores = options_.cpu_cores;
  copt.node.handler_cpu = options_.handler_cpu;
  copt.node.os.backend = options_.backend;
  copt.node.os.cache.capacity_pages = options_.cache_pages;
  copt.node.os.mitt_enabled = kind == StrategyKind::kMittos ||
                              kind == StrategyKind::kMittosWait ||
                              kind == StrategyKind::kMittosResilient;
  copt.node.os.predictor = options_.predictor;
  copt.node.os.mitt_cfq = options_.mitt_cfq;
  copt.node.os.mitt_ssd = options_.mitt_ssd;
  copt.node.os.seed = options_.seed;
  if (options_.tenants.enabled) {
    // Per-tenant get/EBUSY counters on every node (the controller's probe
    // input); sized to the directory BuildMix will produce.
    copt.node.tenant_slots = options_.tenants.mix.num_tenants;
  }
  return copt;
}

void Experiment::BuildNoise(cluster::Cluster& cluster,
                            std::vector<std::unique_ptr<noise::IoNoiseInjector>>& io_noise,
                            std::vector<std::unique_ptr<noise::CacheNoiseInjector>>& cache_noise,
                            std::vector<std::unique_ptr<workload::MacroWorkload>>& macro_noise) {
  // Every injector runs on its node's own simulator (that node's shard in a
  // sharded world, the single legacy simulator otherwise) — noise is node-
  // local by construction, so it never crosses a shard boundary.
  const noise::Ec2NoiseModel ec2(options_.ec2, options_.seed ^ 0xEC2);

  auto make_io_injector = [&](int node, std::vector<noise::NoiseEpisode> schedule) {
    kv::DocStoreNode& n = cluster.node(node);
    const int64_t noise_file_size = 200LL << 30;
    const uint64_t noise_file = n.os().CreateFile(noise_file_size);
    noise::IoNoiseInjector::Options opt;
    opt.io_size = options_.noise_io_size;
    opt.streams_per_intensity = options_.noise_streams;
    opt.op = options_.noise_op;
    opt.pid = 9000 + node;
    opt.io_class = options_.noise_class;
    opt.priority = options_.noise_priority;
    io_noise.push_back(std::make_unique<noise::IoNoiseInjector>(
        n.sim(), &n.os(), noise_file, noise_file_size, std::move(schedule), opt,
        options_.seed ^ (0x4015EULL + static_cast<uint64_t>(node))));
    io_noise.back()->Start();
  };

  switch (options_.noise) {
    case NoiseKind::kNone:
      break;
    case NoiseKind::kEc2:
      for (int node = 0; node < options_.num_nodes; ++node) {
        if (options_.noise_only_node >= 0 && node != options_.noise_only_node) {
          continue;
        }
        make_io_injector(node, ec2.GenerateSchedule(node, options_.noise_horizon));
      }
      break;
    case NoiseKind::kContinuous: {
      if (options_.continuous_all_nodes) {
        // Every replica under constant contention: the all-busy world where
        // every hop returns EBUSY and only the degraded path completes gets.
        for (int node = 0; node < options_.num_nodes; ++node) {
          make_io_injector(node, {noise::NoiseEpisode{0, options_.noise_horizon,
                                                      options_.continuous_intensity}});
        }
        break;
      }
      const int node = options_.pin_primary_node >= 0 ? options_.pin_primary_node : 0;
      make_io_injector(node, {noise::NoiseEpisode{0, options_.noise_horizon,
                                                  options_.continuous_intensity}});
      break;
    }
    case NoiseKind::kCacheDrop:
    case NoiseKind::kStaticCacheDrop:
      for (int node = 0; node < options_.num_nodes; ++node) {
        if (options_.noise_only_node >= 0 && node != options_.noise_only_node) {
          continue;
        }
        kv::DocStoreNode& n = cluster.node(node);
        noise::CacheNoiseInjector::Options opt;
        opt.file = n.data_file();
        opt.file_size = n.data_file_size();
        std::vector<noise::NoiseEpisode> schedule;
        if (options_.noise == NoiseKind::kStaticCacheDrop) {
          // One permanent swap-out whose size varies per node, mimicking the
          // per-node cache-miss-rate spread of Fig. 3c.
          opt.drop_fraction_per_intensity =
              options_.cache_drop_fraction * (0.5 + 0.25 * (node % 5));
          opt.restore = false;
          schedule.push_back({0, options_.noise_horizon, 1});
        } else {
          opt.drop_fraction_per_intensity = options_.cache_drop_fraction;
          schedule = ec2.GenerateSchedule(node, options_.noise_horizon);
        }
        cache_noise.push_back(std::make_unique<noise::CacheNoiseInjector>(
            n.sim(), &n.os(), std::move(schedule), opt,
            options_.seed ^ (0xCACEULL + static_cast<uint64_t>(node))));
        cache_noise.back()->Start();
      }
      break;
    case NoiseKind::kRotating:
      for (int node = 0; node < options_.num_nodes; ++node) {
        std::vector<noise::NoiseEpisode> schedule;
        for (TimeNs t = 0; t < options_.noise_horizon;
             t += options_.rotate_period * options_.num_nodes) {
          schedule.push_back({t + node * options_.rotate_period, options_.rotate_period, 4});
        }
        make_io_injector(node, std::move(schedule));
      }
      break;
    case NoiseKind::kMacroMix:
      for (int node = 0; node < options_.num_nodes; ++node) {
        kv::DocStoreNode& n = cluster.node(node);
        const int64_t file_size = 100LL << 30;
        const uint64_t file = n.os().CreateFile(file_size);
        workload::MacroWorkload::Options opt;
        opt.profile = static_cast<workload::MacroProfile>(node % 3);
        opt.threads = 3;
        opt.pid = 8000 + node;
        macro_noise.push_back(std::make_unique<workload::MacroWorkload>(
            n.sim(), &n.os(), file, file_size, opt,
            options_.seed ^ (0x3ACULL + static_cast<uint64_t>(node))));
        macro_noise.back()->Start(options_.noise_horizon);
        if (node % 4 == 0) {
          workload::MacroWorkload::Options hopt;
          hopt.profile = workload::MacroProfile::kHadoop;
          hopt.threads = 2;
          hopt.pid = 8500 + node;
          macro_noise.push_back(std::make_unique<workload::MacroWorkload>(
              n.sim(), &n.os(), file, file_size, hopt,
              options_.seed ^ (0x4ADULL + static_cast<uint64_t>(node))));
          macro_noise.back()->Start(options_.noise_horizon);
        }
      }
      break;
  }
}

RunResult Experiment::Run(StrategyKind kind) {
  if (const int shards = ResolveShards(options_); shards > 1) {
    return RunSharded(kind, shards);
  }

  // Declared before the simulator so every world component is torn down
  // before its observability sinks.
  obs::MetricsRegistry metrics;
  std::unique_ptr<obs::Tracer> tracer;

  sim::Simulator sim;
  sim.set_metrics(&metrics);
  if (options_.trace) {
    tracer = std::make_unique<obs::Tracer>(options_.trace_capacity);
    sim.set_tracer(tracer.get());
  }

  cluster::Cluster cluster(&sim, BuildClusterOptions(kind));
  if (options_.warm_fraction > 0) {
    cluster.WarmAll(options_.warm_fraction);
  }

  // --- Noise (identical schedules for every strategy) ---
  std::vector<std::unique_ptr<noise::IoNoiseInjector>> io_noise;
  std::vector<std::unique_ptr<noise::CacheNoiseInjector>> cache_noise;
  std::vector<std::unique_ptr<workload::MacroWorkload>> macro_noise;
  BuildNoise(cluster, io_noise, cache_noise, macro_noise);

  // --- Faults (same plan replayed for every strategy) ---
  std::unique_ptr<fault::FaultInjector> faults;
  if (!options_.fault_plan.empty()) {
    faults = std::make_unique<fault::FaultInjector>(&sim, &cluster, options_.fault_plan);
    faults->Start();
  }

  // --- Strategy & clients ---
  auto strategy = MakeStrategy(kind, &sim, &cluster);
  RunResult result;
  result.name = std::string(StrategyKindName(kind));
  OracleHarvest* oracle = options_.harvest_oracles ? &result.oracle : nullptr;
  if (oracle != nullptr) {
    oracle->enabled = true;
  }

  const uint64_t keyspace = static_cast<uint64_t>(options_.num_keys_per_node) *
                            static_cast<uint64_t>(options_.num_nodes);

  // --- Tenant world (src/tenant/): directory, placement, controller ---
  tenant::TenantDirectory directory;
  std::unique_ptr<tenant::PlacementMap> placement;
  std::unique_ptr<tenant::PlacementController> controller;
  std::vector<ClassAgg> class_aggs;
  if (options_.tenants.enabled) {
    tenant::MixOptions mix = options_.tenants.mix;
    mix.keyspace = keyspace;
    if (mix.classes.empty()) {
      mix.classes = tenant::TenantDirectory::DefaultClasses();
    }
    directory = tenant::TenantDirectory::BuildMix(mix);
    placement = std::make_unique<tenant::PlacementMap>(tenant::PlacementMap::Uniform(
        directory.num_tenants(), options_.num_nodes, std::min(3, options_.num_nodes),
        options_.seed ^ 0x9A7C));
    strategy->set_placement(placement.get());
    class_aggs.resize(directory.num_classes());
    if (options_.tenants.slo_aware) {
      controller = std::make_unique<tenant::PlacementController>(
          &sim, /*engine=*/nullptr, &directory, placement.get(), options_.num_nodes,
          MakeNodeProbe(&cluster), options_.tenants.controller);
      controller->Start();
    }
  }

  trace::TraceRecorder recorder;
  const bool recording = !options_.record_trace_path.empty();

  if (options_.replay.enabled()) {
    // Open-loop trace replay: the driver fires one Get per trace arrival at
    // its scaled arrival time; nothing waits for completions. With the
    // tenant world enabled, trace streams overlay onto tenants
    // (stream % num_tenants) and each get carries its class SLO.
    auto cursor = MakeReplayCursor();
    trace::TraceReplayDriver::Options ropt;
    ropt.rate_scale = options_.replay.rate_scale;
    ropt.max_events = options_.replay.max_events;
    ropt.warmup_events = options_.replay.warmup_events;
    uint64_t completed = 0;
    trace::TraceReplayDriver driver(
        &sim, cursor.get(), ropt,
        [&](const trace::TraceEvent& event, uint64_t /*global_index*/, bool measured) {
          const TimeNs start = sim.Now();
          if (recording) {
            recorder.Record(start, event.offset, event.len, event.op, event.stream);
          }
          client::GetContext ctx;
          if (options_.tenants.enabled) {
            ctx.tenant = event.stream % directory.num_tenants();
            ctx.deadline = directory.slo_of(ctx.tenant);
          }
          const tenant::TenantId t = ctx.tenant;
          strategy->Get(ReplayKeyFor(event.offset, event.stream, keyspace), ctx,
                        WrapOracleDone(oracle,
                        [&, t, start, measured](const client::GetResult& get_result) {
                          const DurationNs latency = sim.Now() - start;
                          if (measured) {
                            result.get_latencies.Record(latency);
                            result.user_latencies.Record(latency);
                            if (t != tenant::kNoTenant) {
                              RecordTenantCompletion(directory, class_aggs, t, latency,
                                                     get_result);
                            }
                          }
                          if (!get_result.status.ok() && !get_result.status.busy()) {
                            ++result.user_errors;
                          }
                          ++completed;
                        }));
        });
    driver.Start();
    // Arrivals drain first (done()), then the tail of in-flight gets.
    sim.RunUntilPredicate([&] { return driver.done() && completed >= driver.dispatched(); });
    result.requests = completed;
    result.replay_events = driver.dispatched();
    result.replay_trace_reads = driver.reads_dispatched();
    result.replay_trace_writes = driver.writes_dispatched();
  } else if (options_.tenants.enabled) {
    // Open-loop tenant mix: arrivals at the directory's combined rate, each
    // routed by the placement map and carrying its class SLO as deadline.
    tenant::TenantLoadDriver::Options dopt;
    dopt.warmup = options_.tenants.warmup;
    dopt.duration = options_.tenants.duration;
    dopt.seed = options_.seed ^ 0x7E4A;
    uint64_t completed = 0;
    tenant::TenantLoadDriver driver(
        &sim, &directory, dopt, [&](tenant::TenantId t, uint64_t key, bool measured) {
          const TimeNs start = sim.Now();
          if (recording) {
            recorder.Record(start, static_cast<int64_t>(key) << 12, 4096, trace::kOpRead, t);
          }
          strategy->Get(key, client::GetContext{t, directory.slo_of(t)},
                        WrapOracleDone(oracle,
                        [&, t, start, measured](const client::GetResult& get_result) {
                          const DurationNs latency = sim.Now() - start;
                          if (measured) {
                            result.get_latencies.Record(latency);
                            result.user_latencies.Record(latency);
                            RecordTenantCompletion(directory, class_aggs, t, latency,
                                                   get_result);
                          }
                          if (!get_result.status.ok() && !get_result.status.busy()) {
                            ++result.user_errors;
                          }
                          ++completed;
                        }));
        });
    driver.Start();
    sim.RunUntilPredicate([&] { return driver.done() && completed >= driver.dispatched(); });
    result.requests = completed;
  } else {
    const size_t target = options_.warmup_requests + options_.measure_requests;
    size_t issued = 0;
    size_t completed = 0;

    struct Client {
      std::unique_ptr<workload::YcsbWorkload> workload;
      Rng rng{0};
    };
    auto clients = std::make_shared<std::vector<Client>>(
        static_cast<size_t>(options_.num_clients));
    for (int c = 0; c < options_.num_clients; ++c) {
      workload::YcsbWorkload::Options wopt;
      wopt.num_keys = keyspace;
      wopt.distribution = options_.distribution;
      wopt.seed = options_.seed ^ (0xC0FFEEULL + static_cast<uint64_t>(c));
      (*clients)[static_cast<size_t>(c)].workload = std::make_unique<workload::YcsbWorkload>(wopt);
      (*clients)[static_cast<size_t>(c)].rng = Rng(wopt.seed ^ 0x77);
    }

    auto next_key = [&, this](Client& cl) -> uint64_t {
      for (int attempt = 0; attempt < 512; ++attempt) {
        const uint64_t key = cl.workload->Next().key;
        if (options_.pin_primary_node < 0 ||
            cluster.ReplicasOf(key)[0] == options_.pin_primary_node) {
          return key;
        }
      }
      return 0;
    };

    // Closed-loop client driver.
    auto issue = std::make_shared<std::function<void(size_t)>>();
    *issue = [&, this, issue](size_t client_idx) {
      if (issued >= target) {
        return;
      }
      const size_t request_index = issued++;
      Client& cl = (*clients)[client_idx];
      const TimeNs start = sim.Now();
      const bool measured = request_index >= options_.warmup_requests;
      auto remaining = std::make_shared<int>(options_.scale_factor);
      for (int s = 0; s < options_.scale_factor; ++s) {
        const uint64_t key = next_key(cl);
        const TimeNs get_start = sim.Now();
        if (recording) {
          recorder.Record(get_start, static_cast<int64_t>(key) << 12, 4096, trace::kOpRead,
                          static_cast<uint32_t>(client_idx));
        }
        strategy->Get(key, WrapOracleDone(oracle, [&, issue, client_idx, start, get_start,
                                                   measured, remaining](
                               const client::GetResult& get_result) {
          if (measured) {
            result.get_latencies.Record(sim.Now() - get_start);
          }
          if (!get_result.status.ok() && !get_result.status.busy()) {
            ++result.user_errors;
          }
          if (--*remaining > 0) {
            return;
          }
          if (measured) {
            result.user_latencies.Record(sim.Now() - start);
          }
          ++completed;
          (*issue)(client_idx);
        }));
      }
    };
    for (int c = 0; c < options_.num_clients; ++c) {
      (*issue)(static_cast<size_t>(c));
    }

    sim.RunUntilPredicate([&] { return completed >= target; });

    // The driver lambda captures its own shared_ptr (so in-flight completions
    // can re-issue); clear the function to break that cycle or it leaks.
    *issue = nullptr;

    result.requests = completed;
  }

  if (options_.tenants.enabled) {
    HarvestTenants(directory, class_aggs, controller.get(), &result);
    ValidatePlacement(*placement, options_.num_nodes, oracle);
  }
  if (recording) {
    std::string error;
    if (!recorder.WriteTo(options_.record_trace_path, &error)) {
      throw std::runtime_error("record trace: " + error);
    }
    result.recorded_events = recorder.records();
  }
  for (const auto& injector : io_noise) {
    result.noise_ios += injector->ios_issued();
  }
  result.sim_duration = sim.Now();
  result.sim_events = sim.executed_events();
  if (faults != nullptr) {
    result.fault_log = faults->applied();
    result.fault_episodes = faults->episodes_begun();
    result.fault_skipped = faults->episodes_skipped();
  }
  CollectCounters(kind, *strategy, &result);
  if (tracer != nullptr) {
    result.trace_spans = tracer->OrderedSpans();
    result.trace_dropped = tracer->dropped();
  }
  result.metrics = std::move(metrics);
  return result;
}

RunResult Experiment::RunSharded(StrategyKind kind, int num_shards) {
  // Per-shard observability sinks, declared before the engine so every world
  // component is torn down before what it writes into. Merged in shard order
  // at harvest — the merge order is part of the determinism contract.
  std::vector<obs::MetricsRegistry> metrics(static_cast<size_t>(num_shards));
  std::vector<std::unique_ptr<obs::Tracer>> tracers(static_cast<size_t>(num_shards));

  const cluster::Cluster::Options copt = BuildClusterOptions(kind);

  sim::ShardedEngine::Options eopt;
  eopt.num_shards = num_shards;
  eopt.lookahead = cluster::MinOneWayHop(copt.network);
  eopt.workers = options_.intra_workers;
  eopt.rebalance_period = options_.engine_rebalance;
  eopt.fusion = options_.engine_fusion;
  sim::ShardedEngine engine(eopt);

  for (int s = 0; s < num_shards; ++s) {
    engine.shard(s)->set_metrics(&metrics[static_cast<size_t>(s)]);
    if (options_.trace) {
      auto& tracer = tracers[static_cast<size_t>(s)];
      tracer = std::make_unique<obs::Tracer>(options_.trace_capacity);
      // Shard-namespaced ids: no collisions, home shard readable from the id.
      tracer->SetRequestIdBase(static_cast<uint64_t>(s) << 40);
      engine.shard(s)->set_tracer(tracer.get());
    }
  }

  cluster::Cluster cluster(&engine, copt);
  if (options_.warm_fraction > 0) {
    cluster.WarmAll(options_.warm_fraction);
  }

  std::vector<std::unique_ptr<noise::IoNoiseInjector>> io_noise;
  std::vector<std::unique_ptr<noise::CacheNoiseInjector>> cache_noise;
  std::vector<std::unique_ptr<workload::MacroWorkload>> macro_noise;
  BuildNoise(cluster, io_noise, cache_noise, macro_noise);

  // Fault episodes mutate cross-shard state (network links, whole nodes), so
  // the injector schedules them as engine-global events (see
  // FaultInjector::ScheduleFaultEvent); building it on shard 0 keeps its
  // clock and RNG on the legacy stream.
  std::unique_ptr<fault::FaultInjector> faults;
  if (!options_.fault_plan.empty()) {
    faults = std::make_unique<fault::FaultInjector>(engine.shard(0), &cluster,
                                                    options_.fault_plan);
    faults->Start();
  }

  RunResult result;
  result.name = std::string(StrategyKindName(kind));

  // Each shard gets its own strategy instance (salted seed stream) and its
  // own harvest sinks; clients are dealt round-robin onto shards and drive
  // their home shard's strategy only, so all driver state is shard-local.
  // Replies are routed back to the request's home shard (see
  // client/strategy.cc and kv/ring_coordinator.cc), which makes every
  // mutation below single-threaded within a window.
  struct ShardCtx {
    std::unique_ptr<client::GetStrategy> strategy;
    LatencyRecorder get_latencies;
    LatencyRecorder user_latencies;
    uint64_t user_errors = 0;
    size_t completed = 0;
    std::vector<ClassAgg> class_aggs;  // Tenant runs: per-class, this shard.
    trace::TraceRecorder recorder;     // record_trace_path: this shard's arrivals.
    OracleHarvest oracle;              // harvest_oracles: this shard's counts.
  };
  std::vector<ShardCtx> shard_ctx(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shard_ctx[static_cast<size_t>(s)].strategy =
        MakeStrategy(kind, engine.shard(s), &cluster, static_cast<uint64_t>(s));
  }

  const uint64_t keyspace = static_cast<uint64_t>(options_.num_keys_per_node) *
                            static_cast<uint64_t>(options_.num_nodes);

  // --- Tenant world: one directory + placement map shared by all shards.
  // Shard threads read the map only inside windows; the controller writes it
  // only from quiesced ScheduleGlobal ticks (see src/tenant/placement.h).
  tenant::TenantDirectory directory;
  std::unique_ptr<tenant::PlacementMap> placement;
  std::unique_ptr<tenant::PlacementController> controller;
  if (options_.tenants.enabled) {
    tenant::MixOptions mix = options_.tenants.mix;
    mix.keyspace = keyspace;
    if (mix.classes.empty()) {
      mix.classes = tenant::TenantDirectory::DefaultClasses();
    }
    directory = tenant::TenantDirectory::BuildMix(mix);
    placement = std::make_unique<tenant::PlacementMap>(tenant::PlacementMap::Uniform(
        directory.num_tenants(), options_.num_nodes, std::min(3, options_.num_nodes),
        options_.seed ^ 0x9A7C));
    for (ShardCtx& ctx : shard_ctx) {
      ctx.strategy->set_placement(placement.get());
      ctx.class_aggs.resize(directory.num_classes());
    }
    if (options_.tenants.slo_aware) {
      controller = std::make_unique<tenant::PlacementController>(
          engine.shard(0), &engine, &directory, placement.get(), options_.num_nodes,
          MakeNodeProbe(&cluster), options_.tenants.controller);
      controller->Start();
    }
  }

  const bool recording = !options_.record_trace_path.empty();

  if (options_.replay.enabled()) {
    // Open-loop replay, pre-partitioned per shard in trace order: every
    // shard owns its own cursor over the whole trace and claims the records
    // with stream % num_shards == s. The partition is a pure function of
    // the trace — worker count never moves an arrival, so scorecards stay
    // bit-identical across MITT_INTRA_WORKERS. Completions route back to
    // the issuing shard (see client/strategy.cc), keeping every ShardCtx
    // mutation shard-local.
    std::vector<std::unique_ptr<trace::TraceCursor>> cursors;
    std::vector<std::unique_ptr<trace::TraceReplayDriver>> drivers;
    cursors.reserve(static_cast<size_t>(num_shards));
    drivers.reserve(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      cursors.push_back(MakeReplayCursor());
      trace::TraceReplayDriver::Options ropt;
      ropt.rate_scale = options_.replay.rate_scale;
      ropt.max_events = options_.replay.max_events;
      ropt.warmup_events = options_.replay.warmup_events;
      ropt.shard = s;
      ropt.num_shards = num_shards;
      sim::Simulator* sim = engine.shard(s);
      ShardCtx* ctx = &shard_ctx[static_cast<size_t>(s)];
      client::GetStrategy* strategy = ctx->strategy.get();
      const bool tenants_on = options_.tenants.enabled;
      OracleHarvest* oracle = options_.harvest_oracles ? &ctx->oracle : nullptr;
      drivers.push_back(std::make_unique<trace::TraceReplayDriver>(
          sim, cursors.back().get(), ropt,
          [sim, ctx, strategy, keyspace, recording, tenants_on, oracle, &directory](
              const trace::TraceEvent& event, uint64_t /*global_index*/, bool measured) {
            const TimeNs start = sim->Now();
            if (recording) {
              ctx->recorder.Record(start, event.offset, event.len, event.op, event.stream);
            }
            client::GetContext gctx;
            if (tenants_on) {
              gctx.tenant = event.stream % directory.num_tenants();
              gctx.deadline = directory.slo_of(gctx.tenant);
            }
            const tenant::TenantId t = gctx.tenant;
            strategy->Get(ReplayKeyFor(event.offset, event.stream, keyspace), gctx,
                          WrapOracleDone(oracle,
                          [sim, ctx, t, start, measured,
                           &directory](const client::GetResult& get_result) {
                            const DurationNs latency = sim->Now() - start;
                            if (measured) {
                              ctx->get_latencies.Record(latency);
                              ctx->user_latencies.Record(latency);
                              if (t != tenant::kNoTenant) {
                                RecordTenantCompletion(directory, ctx->class_aggs, t,
                                                       latency, get_result);
                              }
                            }
                            if (!get_result.status.ok() && !get_result.status.busy()) {
                              ++ctx->user_errors;
                            }
                            ++ctx->completed;
                          }));
          }));
      drivers.back()->Start();
    }

    // The predicate runs at quiesced barriers, so summing shard counters is
    // race-free: arrivals drain first, then the in-flight tail.
    engine.RunUntilPredicate([&] {
      uint64_t dispatched = 0;
      uint64_t completed = 0;
      bool all_done = true;
      for (int s = 0; s < num_shards; ++s) {
        all_done = all_done && drivers[static_cast<size_t>(s)]->done();
        dispatched += drivers[static_cast<size_t>(s)]->dispatched();
        completed += shard_ctx[static_cast<size_t>(s)].completed;
      }
      return all_done && completed >= dispatched;
    });

    for (const auto& driver : drivers) {
      result.replay_events += driver->dispatched();
      result.replay_trace_reads += driver->reads_dispatched();
      result.replay_trace_writes += driver->writes_dispatched();
    }
  } else if (options_.tenants.enabled) {
    // Open-loop tenant mix, one driver per shard owning the deterministic
    // partition `tenant % num_shards == s` — the same contract as replay, so
    // scorecards stay bit-identical across MITT_INTRA_WORKERS.
    std::vector<std::unique_ptr<tenant::TenantLoadDriver>> drivers;
    drivers.reserve(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      tenant::TenantLoadDriver::Options dopt;
      dopt.warmup = options_.tenants.warmup;
      dopt.duration = options_.tenants.duration;
      dopt.shard = s;
      dopt.num_shards = num_shards;
      dopt.seed = options_.seed ^ 0x7E4A;
      sim::Simulator* sim = engine.shard(s);
      ShardCtx* ctx = &shard_ctx[static_cast<size_t>(s)];
      client::GetStrategy* strategy = ctx->strategy.get();
      OracleHarvest* oracle = options_.harvest_oracles ? &ctx->oracle : nullptr;
      drivers.push_back(std::make_unique<tenant::TenantLoadDriver>(
          sim, &directory, dopt,
          [sim, ctx, strategy, recording, oracle, &directory](tenant::TenantId t, uint64_t key,
                                                              bool measured) {
            const TimeNs start = sim->Now();
            if (recording) {
              ctx->recorder.Record(start, static_cast<int64_t>(key) << 12, 4096,
                                   trace::kOpRead, t);
            }
            strategy->Get(key, client::GetContext{t, directory.slo_of(t)},
                          WrapOracleDone(oracle,
                          [sim, ctx, t, start, measured,
                           &directory](const client::GetResult& get_result) {
                            const DurationNs latency = sim->Now() - start;
                            if (measured) {
                              ctx->get_latencies.Record(latency);
                              ctx->user_latencies.Record(latency);
                              RecordTenantCompletion(directory, ctx->class_aggs, t, latency,
                                                     get_result);
                            }
                            if (!get_result.status.ok() && !get_result.status.busy()) {
                              ++ctx->user_errors;
                            }
                            ++ctx->completed;
                          }));
          }));
      drivers.back()->Start();
    }

    engine.RunUntilPredicate([&] {
      uint64_t dispatched = 0;
      uint64_t completed = 0;
      bool all_done = true;
      for (int s = 0; s < num_shards; ++s) {
        all_done = all_done && drivers[static_cast<size_t>(s)]->done();
        dispatched += drivers[static_cast<size_t>(s)]->dispatched();
        completed += shard_ctx[static_cast<size_t>(s)].completed;
      }
      return all_done && completed >= dispatched;
    });
  } else {
    const size_t target = options_.warmup_requests + options_.measure_requests;
    const size_t num_clients = static_cast<size_t>(options_.num_clients);

    // The legacy driver splits warmup from measurement with one global issue
    // counter; sharded trials cannot share a counter without racing, so each
    // client gets a fixed quota (and warmup share) up front. The split is a
    // pure function of (client count, request counts) — independent of worker
    // count, so scorecards stay bit-identical across MITT_INTRA_WORKERS.
    struct Client {
      std::unique_ptr<workload::YcsbWorkload> workload;
      Rng rng{0};
      int shard = 0;
      size_t quota = 0;        // Requests this client will issue in total.
      size_t warmup = 0;       // First `warmup` of them are unmeasured.
      size_t issued = 0;
    };
    auto clients = std::make_shared<std::vector<Client>>(num_clients);
    for (size_t c = 0; c < num_clients; ++c) {
      Client& cl = (*clients)[c];
      workload::YcsbWorkload::Options wopt;
      wopt.num_keys = keyspace;
      wopt.distribution = options_.distribution;
      wopt.seed = options_.seed ^ (0xC0FFEEULL + static_cast<uint64_t>(c));
      cl.workload = std::make_unique<workload::YcsbWorkload>(wopt);
      cl.rng = Rng(wopt.seed ^ 0x77);
      cl.shard = static_cast<int>(c % static_cast<size_t>(num_shards));
      cl.quota = target / num_clients + (c < target % num_clients ? 1 : 0);
      cl.warmup = options_.warmup_requests / num_clients +
                  (c < options_.warmup_requests % num_clients ? 1 : 0);
    }

    auto next_key = [&, this](Client& cl) -> uint64_t {
      for (int attempt = 0; attempt < 512; ++attempt) {
        const uint64_t key = cl.workload->Next().key;
        if (options_.pin_primary_node < 0 ||
            cluster.ReplicasOf(key)[0] == options_.pin_primary_node) {
          return key;
        }
      }
      return 0;
    };

    // Closed-loop driver; runs entirely on the client's home shard.
    auto issue = std::make_shared<std::function<void(size_t)>>();
    *issue = [&, issue](size_t client_idx) {
      Client& cl = (*clients)[client_idx];
      if (cl.issued >= cl.quota) {
        return;
      }
      const size_t request_index = cl.issued++;
      ShardCtx& ctx = shard_ctx[static_cast<size_t>(cl.shard)];
      sim::Simulator* sim = engine.shard(cl.shard);
      const TimeNs start = sim->Now();
      const bool measured = request_index >= cl.warmup;
      auto remaining = std::make_shared<int>(options_.scale_factor);
      for (int s = 0; s < options_.scale_factor; ++s) {
        const uint64_t key = next_key(cl);
        const TimeNs get_start = sim->Now();
        if (recording) {
          ctx.recorder.Record(get_start, static_cast<int64_t>(key) << 12, 4096,
                              trace::kOpRead, static_cast<uint32_t>(client_idx));
        }
        OracleHarvest* oracle = options_.harvest_oracles ? &ctx.oracle : nullptr;
        ctx.strategy->Get(key, WrapOracleDone(oracle,
                               [&, issue, client_idx, start, get_start, measured, remaining](
                                   const client::GetResult& get_result) {
          ShardCtx& cb_ctx = shard_ctx[static_cast<size_t>((*clients)[client_idx].shard)];
          sim::Simulator* cb_sim = engine.shard((*clients)[client_idx].shard);
          if (measured) {
            cb_ctx.get_latencies.Record(cb_sim->Now() - get_start);
          }
          if (!get_result.status.ok() && !get_result.status.busy()) {
            ++cb_ctx.user_errors;
          }
          if (--*remaining > 0) {
            return;
          }
          if (measured) {
            cb_ctx.user_latencies.Record(cb_sim->Now() - start);
          }
          ++cb_ctx.completed;
          (*issue)(client_idx);
        }));
      }
    };
    for (size_t c = 0; c < num_clients; ++c) {
      (*issue)(c);
    }

    // Quotas drain the driver naturally; the predicate ends the run at the
    // first quiesced barrier where every quota has completed (so daemons —
    // noise streams, breaker probes — cannot keep the engine alive).
    engine.RunUntilPredicate([&] {
      size_t completed = 0;
      for (const ShardCtx& ctx : shard_ctx) {
        completed += ctx.completed;
      }
      return completed >= target;
    });

    *issue = nullptr;  // Break the driver lambda's self-reference cycle.
  }

  for (const ShardCtx& ctx : shard_ctx) {
    result.requests += ctx.completed;
    result.user_errors += ctx.user_errors;
  }
  result.oracle.enabled = options_.harvest_oracles;
  for (ShardCtx& ctx : shard_ctx) {
    result.get_latencies.MergeFrom(ctx.get_latencies);
    result.user_latencies.MergeFrom(ctx.user_latencies);
    // Shard-order merge keeps the combined breaker log deterministic at any
    // MITT_INTRA_WORKERS (each shard's log is already in its own sim order).
    result.oracle.MergeFrom(ctx.oracle);
    CollectCounters(kind, *ctx.strategy, &result);
  }
  if (options_.tenants.enabled) {
    std::vector<ClassAgg> merged(directory.num_classes());
    for (ShardCtx& ctx : shard_ctx) {
      for (uint32_t c = 0; c < directory.num_classes(); ++c) {
        ClassAgg& m = merged[c];
        ClassAgg& a = ctx.class_aggs[c];
        m.requests += a.requests;
        m.deadline_miss += a.deadline_miss;
        m.failovers += a.failovers;
        m.errors += a.errors;
        m.latencies.MergeFrom(a.latencies);
      }
    }
    HarvestTenants(directory, merged, controller.get(), &result);
    ValidatePlacement(*placement, options_.num_nodes,
                      options_.harvest_oracles ? &result.oracle : nullptr);
  }
  if (recording) {
    trace::TraceRecorder merged;
    for (const ShardCtx& ctx : shard_ctx) {
      merged.MergeFrom(ctx.recorder);
    }
    std::string error;
    if (!merged.WriteTo(options_.record_trace_path, &error)) {
      throw std::runtime_error("record trace: " + error);
    }
    result.recorded_events = merged.records();
  }
  for (const auto& injector : io_noise) {
    result.noise_ios += injector->ios_issued();
  }
  result.sim_duration = engine.Now();
  result.sim_events = engine.executed_events();
  result.num_shards = num_shards;
  result.engine_windows = engine.windows_run();
  result.engine_fused_windows = engine.fused_windows();
  result.cross_shard_messages = engine.cross_shard_messages();
  result.events_per_window_p50 = engine.events_per_window_percentile(50);
  result.events_per_window_p99 = engine.events_per_window_percentile(99);
  for (const int w : {1, 2, 4, 8, 16, 32}) {
    if (const uint64_t cp = engine.critical_path_events(w); cp != 0) {
      result.critical_path.emplace_back(w, cp);
    }
    if (const uint64_t cp = engine.critical_path_events_static(w); cp != 0) {
      result.critical_path_static.emplace_back(w, cp);
    }
    if (const double r = engine.imbalance_ratio(w); r != 0) {
      result.imbalance.emplace_back(w, r);
    }
    if (const double r = engine.imbalance_ratio_static(w); r != 0) {
      result.imbalance_static.emplace_back(w, r);
    }
  }
  if (faults != nullptr) {
    result.fault_log = faults->applied();
    result.fault_episodes = faults->episodes_begun();
    result.fault_skipped = faults->episodes_skipped();
  }
  if (options_.trace) {
    std::vector<const obs::Tracer*> shard_tracers;
    shard_tracers.reserve(tracers.size());
    for (const auto& tracer : tracers) {
      shard_tracers.push_back(tracer.get());
      result.trace_dropped += tracer->dropped();
    }
    result.trace_spans = obs::MergeShardSpans(shard_tracers);
  }
  for (obs::MetricsRegistry& shard_metrics : metrics) {
    result.metrics.MergeFrom(shard_metrics);
  }
  return result;
}

std::vector<RunResult> Experiment::RunAll(const std::vector<StrategyKind>& kinds) {
  std::vector<RunResult> results;
  RunResult base = Run(StrategyKind::kBase);
  derived_p95_ = base.get_latencies.Percentile(95);
  if (derived_p95_ <= 0) {
    derived_p95_ = kFallbackDeadline;
  }
  if (options_.deadline < 0) {
    options_.deadline = derived_p95_;
  }
  if (options_.hedge_delay < 0) {
    options_.hedge_delay = derived_p95_;
  }
  if (options_.app_timeout < 0) {
    options_.app_timeout = derived_p95_;
  }
  for (const StrategyKind kind : kinds) {
    if (kind == StrategyKind::kBase) {
      results.push_back(std::move(base));
      continue;
    }
    results.push_back(Run(kind));
  }
  return results;
}

void PrintPercentileTable(const std::vector<RunResult>& results,
                          const std::vector<double>& percentiles, bool user_level) {
  std::vector<std::string> header = {"pct"};
  for (const auto& r : results) {
    header.push_back(r.name + " (ms)");
  }
  Table table(std::move(header));
  // One sorted pass per result instead of one per table cell.
  std::vector<std::vector<DurationNs>> columns;
  columns.reserve(results.size());
  for (const auto& r : results) {
    const auto& rec = user_level ? r.user_latencies : r.get_latencies;
    columns.push_back(rec.Percentiles(percentiles));
  }
  for (size_t pi = 0; pi < percentiles.size(); ++pi) {
    const double p = percentiles[pi];
    std::vector<std::string> row = {"p" + Table::Num(p, p == static_cast<int>(p) ? 0 : 1)};
    for (const auto& column : columns) {
      row.push_back(Table::Num(ToMillis(column[pi]), 2));
    }
    table.AddRow(std::move(row));
  }
  {
    std::vector<std::string> row = {"avg"};
    for (const auto& r : results) {
      const auto& rec = user_level ? r.user_latencies : r.get_latencies;
      row.push_back(Table::Num(rec.MeanNs() / kMillisecond, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

void PrintReductionTable(const RunResult& mitt, const std::vector<RunResult>& others,
                         const std::vector<double>& percentiles, bool user_level) {
  std::vector<std::string> header = {"vs"};
  for (const double p : percentiles) {
    header.push_back("p" + Table::Num(p, 0) + " (%)");
  }
  header.push_back("avg (%)");
  Table table(std::move(header));
  const auto& mitt_rec = user_level ? mitt.user_latencies : mitt.get_latencies;
  const std::vector<DurationNs> mitt_ps = mitt_rec.Percentiles(percentiles);
  for (const auto& other : others) {
    const auto& other_rec = user_level ? other.user_latencies : other.get_latencies;
    const std::vector<DurationNs> other_ps = other_rec.Percentiles(percentiles);
    std::vector<std::string> row = {other.name};
    for (size_t pi = 0; pi < percentiles.size(); ++pi) {
      row.push_back(Table::Num(ReductionPercent(mitt_ps[pi], other_ps[pi]), 1));
    }
    row.push_back(Table::Num(ReductionPercent(mitt_rec.MeanNs(), other_rec.MeanNs()), 1));
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace mitt::harness
