// ScenarioRunner: fault plans x client strategies -> SLO scorecard.
//
// The chaos-engineering question MittOS raises (§8, "fail-slow" related
// work): the predictors were profiled on a *healthy* device — do fast
// rejects still help when the hardware misbehaves underneath them? The
// runner answers it the way the paper answers Fig. 5:
//
//   Phase A: one healthy Base run derives the SLO deadline (its p95, the
//            paper's "13ms" rule) so every scenario is judged against the
//            same healthy-world expectation.
//   Phase B: every (scenario, strategy) pair gets a fresh world with
//            identical seeds and the scenario's fault plan replayed exactly;
//            pairs fan out across the deterministic parallel trial runner,
//            so the scorecard is bit-identical at any MITT_TRIAL_WORKERS.
//
// The scorecard reports, per pair: p50/p95/p99, the deadline-miss fraction
// (CDF at the SLO), failovers (EBUSY + hedges + timeouts), and how many
// fault episodes actually landed.

#ifndef MITTOS_HARNESS_SCENARIO_RUNNER_H_
#define MITTOS_HARNESS_SCENARIO_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/harness/experiment.h"

namespace mitt::harness {

struct FaultScenario {
  std::string name;
  fault::FaultPlan plan;
  // Optional per-scenario world tweak, applied after the base options and the
  // plan are installed (e.g. flip continuous_all_nodes for an all-busy world).
  std::function<void(ExperimentOptions&)> customize;
};

struct StrategyScore {
  std::string scenario;
  std::string strategy;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double deadline_miss_pct = 0;  // % of gets slower than the SLO deadline.
  uint64_t failovers = 0;        // EBUSY failovers + hedges sent + timeouts fired.
  uint64_t fault_episodes = 0;   // Episodes that landed during the run.
  uint64_t user_errors = 0;
  // Resilience columns (0 for strategies without the subsystem).
  uint64_t degraded_gets = 0;        // Gets that used the bounded degraded path.
  uint64_t degraded_sheds = 0;       // Admission-gate sheds the client saw.
  uint64_t deadline_exhausted = 0;   // Budgets that hit zero before an accept.
  uint64_t unbounded_tries = 0;      // Deadline-disabled sends (naive last try).
  double max_sent_deadline_ms = 0;   // Largest deadline ever put on the wire.
};

class ScenarioRunner {
 public:
  struct Options {
    // World/workload shared by every pair; its fault_plan field is ignored
    // (each scenario supplies its own).
    ExperimentOptions base;
    std::vector<StrategyKind> strategies = {StrategyKind::kBase, StrategyKind::kAppTimeout,
                                            StrategyKind::kHedged, StrategyKind::kMittos};
    int workers = 0;  // RunTrialsParallel worker count (0 = default).
  };

  explicit ScenarioRunner(Options options) : options_(std::move(options)) {}

  // Runs phase A + phase B; scores are in (scenario-major, strategy-minor)
  // input order. Raw RunResults (same order) stay available via results().
  std::vector<StrategyScore> Run(const std::vector<FaultScenario>& scenarios);

  DurationNs slo_deadline() const { return slo_deadline_; }
  const std::vector<RunResult>& results() const { return results_; }

 private:
  Options options_;
  DurationNs slo_deadline_ = 0;
  std::vector<RunResult> results_;
};

// Paper-style table: one row per (scenario, strategy).
void PrintScorecard(const std::vector<StrategyScore>& scores, DurationNs slo_deadline);

// Machine-readable scorecard for BENCH_*.json artifacts.
std::string ScorecardJson(const std::vector<StrategyScore>& scores, DurationNs slo_deadline);

}  // namespace mitt::harness

#endif  // MITTOS_HARNESS_SCENARIO_RUNNER_H_
