#include "src/trace/import.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <utility>
#include <vector>

namespace mitt::trace {
namespace {

// FILETIME ticks are 100 ns since 1601: any plausible capture timestamp is
// ~1.2e17..1.5e17 ticks. Fractional-second exports are < ~1e10. Everything
// between is ambiguous and treated as microseconds already.
constexpr double kFiletimeThreshold = 1e15;

struct CsvRecord {
  double timestamp = 0;  // Raw, units resolved by magnitude.
  std::string host;
  uint32_t disk = 0;
  bool is_read = true;
  int64_t offset = 0;
  int64_t size = 0;
};

// Splits one CSV line into the 7 MSR fields. Tolerates trailing fields
// (some exports append extra columns) but requires the first six.
bool ParseLine(const std::string& line, CsvRecord* out) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (fields.size() < 7) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  if (fields.size() < 6) {
    return false;
  }
  char* end = nullptr;
  out->timestamp = std::strtod(fields[0].c_str(), &end);
  if (end == fields[0].c_str() || out->timestamp < 0) {
    return false;
  }
  out->host = fields[1];
  out->disk = static_cast<uint32_t>(std::strtoul(fields[2].c_str(), nullptr, 10));
  std::string type = fields[3];
  for (char& c : type) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (type == "read" || type == "r") {
    out->is_read = true;
  } else if (type == "write" || type == "w") {
    out->is_read = false;
  } else {
    return false;
  }
  out->offset = std::strtoll(fields[4].c_str(), &end, 10);
  if (end == fields[4].c_str() || out->offset < 0) {
    return false;
  }
  out->size = std::strtoll(fields[5].c_str(), &end, 10);
  if (end == fields[5].c_str() || out->size <= 0) {
    return false;
  }
  return true;
}

uint64_t ToMicros(double raw) {
  if (raw > kFiletimeThreshold) {
    return static_cast<uint64_t>(raw / 10.0);  // FILETIME ticks -> us.
  }
  if (raw < 1e10) {
    return static_cast<uint64_t>(raw * 1e6);  // Seconds -> us.
  }
  return static_cast<uint64_t>(raw);  // Already microseconds.
}

}  // namespace

bool ImportBlockCsv(std::istream& in, TraceWriter* writer, const CsvImportOptions& options,
                    ImportStats* stats, std::string* error) {
  ImportStats local;
  std::map<std::pair<std::string, uint32_t>, uint32_t> stream_ids;
  bool have_base = false;
  uint64_t base_us = 0;
  uint64_t prev_us = 0;
  const double rate = options.rate_scale > 0 ? options.rate_scale : 1.0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.back() == '\r') {
      if (!line.empty()) {
        line.pop_back();
      }
      if (line.empty()) {
        continue;
      }
    }
    ++local.lines;
    CsvRecord rec;
    if (!ParseLine(line, &rec)) {
      ++local.skipped_malformed;  // Headers and ragged tails land here.
      continue;
    }
    uint64_t us = ToMicros(rec.timestamp);
    if (options.rebase_time) {
      if (!have_base) {
        base_us = us;
        have_base = true;
      }
      us = us >= base_us ? us - base_us : 0;
    }
    us = static_cast<uint64_t>(static_cast<double>(us) / rate);
    if (local.imported > 0 && us < prev_us) {
      us = prev_us;  // MSR traces are sorted but not strictly; clamp ties.
      ++local.clamped_unsorted;
    }
    prev_us = us;

    TraceEvent event;
    event.at = static_cast<TimeNs>(us) * 1000;
    event.offset = options.remap_span_bytes > 0 ? rec.offset % options.remap_span_bytes
                                                : rec.offset;
    event.len = static_cast<uint32_t>(rec.size);
    event.op = rec.is_read ? kOpRead : kOpWrite;
    const auto [it, inserted] = stream_ids.try_emplace(
        {rec.host, rec.disk}, static_cast<uint32_t>(stream_ids.size()));
    event.stream = it->second;
    (void)inserted;

    if (!writer->Append(event)) {
      if (error != nullptr) {
        *error = "write failed: " + writer->error();
      }
      return false;
    }
    rec.is_read ? ++local.reads : ++local.writes;
    ++local.imported;
    local.span_us = us;
    if (options.max_records > 0 && local.imported >= options.max_records) {
      break;
    }
  }
  local.streams = static_cast<uint32_t>(stream_ids.size());
  if (stats != nullptr) {
    *stats = local;
  }
  if (local.imported == 0) {
    if (error != nullptr) {
      *error = "no parseable records in input";
    }
    return false;
  }
  return true;
}

bool ImportBlockCsvFile(const std::string& csv_path, const std::string& out_path,
                        const CsvImportOptions& options, ImportStats* stats,
                        std::string* error) {
  std::ifstream in(csv_path);
  if (!in.is_open()) {
    if (error != nullptr) {
      *error = "cannot open csv: " + csv_path;
    }
    return false;
  }
  TraceWriter::Options wopt;
  wopt.span_bytes = options.remap_span_bytes;
  auto writer = TraceWriter::Open(out_path, wopt, error);
  if (writer == nullptr) {
    return false;
  }
  if (!ImportBlockCsv(in, writer.get(), options, stats, error)) {
    return false;
  }
  if (!writer->Finish()) {
    if (error != nullptr) {
      *error = "finish failed: " + writer->error();
    }
    return false;
  }
  return true;
}

}  // namespace mitt::trace
